// Command clamwin is a demonstration CLAM client for the window server:
// it connects to a running clamd, loads the sweeping class, simulates a
// user dragging out two windows, receives the "window created" events as
// distributed upcalls, and renders the server's framebuffer as ASCII art.
//
// Usage:
//
//	clamd -listen unix:/tmp/clam.sock &
//	clamwin -connect unix:/tmp/clam.sock
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"clam"
	"clam/internal/wm"
)

func main() {
	connect := flag.String("connect", "unix:/tmp/clam.sock", "server address as network:address")
	grid := flag.Int("grid", 8, "window alignment grid loaded into the sweep module (0 = off)")
	flag.Parse()

	network, addr, ok := strings.Cut(*connect, ":")
	if !ok {
		log.Fatalf("clamwin: bad -connect %q", *connect)
	}
	c, err := clam.Dial(network, addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	screen, err := c.NamedObject("screen")
	if err != nil {
		log.Fatal(err)
	}
	base, err := c.NamedObject("basewindow")
	if err != nil {
		log.Fatal(err)
	}

	// Load the sweeping layer into the server with this client's choice
	// of options (§2.1).
	sweep, err := c.NewExact("sweep", 1)
	if err != nil {
		log.Fatal(err)
	}
	must(sweep.Call("Attach", base))
	must(sweep.Call("SetGrid", int64(*grid)))

	// Each swept-out window gets created and decorated with a title bar —
	// the deco class is loaded into the server like the sweep class.
	created := make(chan wm.Rect, 1)
	winNo := 0
	must(sweep.Call("OnCreated", func(r wm.Rect) {
		var w *clam.Remote
		if err := base.CallInto("Create", []any{&w}, r, int64(3)); err != nil {
			log.Printf("clamwin: create: %v", err)
			created <- r
			return
		}
		winNo++
		deco, err := c.New("deco", 0)
		if err == nil {
			if err := deco.Call("Attach", w, fmt.Sprintf("WIN %d", winNo)); err != nil {
				log.Printf("clamwin: deco: %v", err)
			}
		}
		created <- r
	}))

	// A status label drawn by the server's label class.
	label, err := c.New("label", 0)
	if err == nil {
		must(label.Call("Attach", base, int64(4), int64(4)))
		must(label.Call("SetText", "CLAM DEMO"))
	}

	drag := func(x0, y0, x1, y1 int16) wm.Rect {
		must(screen.Call("InjectMouse", wm.MouseEvent{Kind: wm.MouseDown, X: x0, Y: y0, Buttons: wm.ButtonLeft}))
		steps := x1 - x0
		for d := int16(1); d < steps; d++ {
			must(screen.Async("InjectMouse", wm.MouseEvent{
				Kind: wm.MouseMove, X: x0 + d, Y: y0 + d*(y1-y0)/steps,
			}))
		}
		must(screen.Call("InjectMouseWait", wm.MouseEvent{Kind: wm.MouseUp, X: x1, Y: y1}))
		return <-created
	}

	r1 := drag(30, 30, 200, 140)
	fmt.Printf("clamwin: swept window %v\n", r1)
	r2 := drag(250, 60, 420, 300)
	fmt.Printf("clamwin: swept window %v\n", r2)

	var moves int64
	must(sweep.CallInto("MoveCount", []any{&moves}))
	sent, received := c.SessionStats()
	fmt.Printf("clamwin: %d motion events stayed in the server; %d/%d frames sent/received by this client\n",
		moves, sent, received)

	// Measurement is just another loadable class: query the server's own
	// counters remotely.
	if stats, err := c.New("stats", 0); err == nil {
		var summary string
		if err := stats.CallInto("Summary", []any{&summary}); err == nil {
			fmt.Println("clamwin: server stats:", summary)
		}
	}

	renderScreen(c, screen)
}

// renderScreen fetches the framebuffer and prints a downsampled ASCII
// view.
func renderScreen(c *clam.Client, screen *clam.Remote) {
	var w, h int64
	must(screen.CallInto("Width", []any{&w}))
	must(screen.CallInto("Height", []any{&h}))
	var pix []byte
	must(screen.CallInto("Snapshot", []any{&pix}))

	const cols = 80
	rows := int(h * cols / w / 2) // terminal cells are ~2:1
	shades := []byte(" .:-=+*#%@")
	fmt.Printf("clamwin: screen %dx%d (downsampled to %dx%d):\n", w, h, cols, rows)
	var sb strings.Builder
	for ry := 0; ry < rows; ry++ {
		for rx := 0; rx < cols; rx++ {
			x := int64(rx) * w / cols
			y := int64(ry) * h / int64(rows)
			v := pix[y*w+x]
			sb.WriteByte(shades[int(v)%len(shades)])
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
