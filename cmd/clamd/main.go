// Command clamd runs a CLAM server: the dynamic-loading, RPC and
// distributed-upcall engine with the window-management and protocol-stack
// class libraries available for loading. The server binary itself
// contains no application behavior until a client loads a class (§2).
//
// Usage:
//
//	clamd -listen unix:/tmp/clam.sock
//	clamd -listen tcp:127.0.0.1:7047 -width 640 -height 480
//	clamd -listen tcp:0.0.0.0:7047 -heartbeat 2s -liveness 10s \
//	      -max-sessions 64 -slow-consumer-limit 3
//	clamd -listen unix:/tmp/mid.sock -upstream unix:/tmp/clam.sock \
//	      -import framer,transport
//	clamd -listen tcp:10.0.0.1:7047 -mesh-name a \
//	      -mesh-peer b=tcp:10.0.0.2:7047,c=tcp:10.0.0.3:7047
//	clamd -listen tcp:10.0.0.4:7047 -mesh-name d -mesh-seed tcp:10.0.0.1:7047
//
// The -upstream form runs a middle tier: the server stacks on a lower
// CLAM server, re-exports the named objects as proxies, relays calls on
// them down, and relays the lower server's upcalls up into its own
// clients. The -mesh-* forms join a federated mesh instead: N peer
// servers share one consistent-hash object space, any member routes
// calls to the owner, and a joiner may learn the membership from a
// single live seed member's roster.
//
// See OPERATIONS.md for tuning guidance on the robustness flags and the
// middle-tier deployment notes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clam"
	"clam/internal/benchlib"
	"clam/internal/proto"
	"clam/internal/wm"
)

func main() {
	listen := flag.String("listen", "unix:/tmp/clam.sock", "address to serve, as network:address (unix:PATH or tcp:HOST:PORT)")
	width := flag.Int("width", 640, "simulated display width")
	height := flag.Int("height", 480, "simulated display height")
	quiet := flag.Bool("quiet", false, "suppress per-session diagnostics")
	upTimeout := flag.Duration("upcall-timeout", 0, "bound on each distributed-upcall wait (0 = default 30s)")
	heartbeat := flag.Duration("heartbeat", 0, "interval between liveness pings to each client (0 = disabled)")
	liveness := flag.Duration("liveness", 0, "silence window after which a client is evicted (0 = 3x -heartbeat)")
	maxSessions := flag.Int("max-sessions", 0, "cap on concurrent client sessions (0 = unlimited)")
	slowLimit := flag.Int("slow-consumer-limit", 0, "evict a client after this many consecutive upcall failures (0 = disabled)")
	resumeWindow := flag.Duration("resume-window", 0, "grace period a disconnected session is parked for resumption instead of evicted (0 = disabled)")
	journalDir := flag.String("journal", "", "directory for the write-ahead journal; parked sessions then survive a server crash-restart (empty = disabled)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "open the upstream circuit after this many consecutive failed reconnects (0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an opened upstream circuit stays open (0 = default 5s)")
	maxUpcalls := flag.Int("max-client-upcalls", 0, "concurrent upcalls allowed per client (0 = the paper's limit of 1)")
	dispatchWorkers := flag.Int("dispatch-workers", 0, "bound on concurrently running call handlers (0 = max(2, GOMAXPROCS))")
	fanoutShards := flag.Int("fanout-shards", 0, "shard count for the multicast subscription table, rounded up to a power of two (0 = default 32)")
	serialDispatch := flag.Bool("serial-dispatch", false, "use the original serial per-session dispatcher instead of the per-object executor")
	upstream := flag.String("upstream", "", "lower CLAM server to stack on, as network:address; this server relays calls down and upcalls up")
	imports := flag.String("import", "", "comma-separated named objects to re-export from the -upstream server as proxies")
	meshName := flag.String("mesh-name", "", "this server's unique name in a federated mesh; enables JoinMesh")
	meshPeers := flag.String("mesh-peer", "", "comma-separated mesh members as name=network:address; requires -mesh-name")
	meshSeed := flag.String("mesh-seed", "", "one live mesh member as network:address; its roster supplies the membership (alternative to -mesh-peer)")
	shmOn := flag.Bool("shm", false, "offer same-host clients the shared-memory ring transport (unix listeners only; clients fall back to the socket)")
	shmRing := flag.Int("shm-ring", 0, "per-direction shm ring size in bytes, rounded up to a power of two (0 = 1 MiB default); requires -shm")
	maxQueueDelay := flag.Duration("max-queue-delay", 0, "refuse synchronous calls whose estimated dispatch-queue wait exceeds this, or would exhaust their deadline budget (0 = disabled)")
	noShed := flag.Bool("no-shed", false, "disable expired-budget shedding (ablation: doomed calls execute anyway; cancels still shed)")
	flag.Parse()

	network, addr, ok := strings.Cut(*listen, ":")
	if !ok || (network != "unix" && network != "tcp") {
		log.Fatalf("clamd: bad -listen %q; want unix:PATH or tcp:HOST:PORT", *listen)
	}
	if *imports != "" && *upstream == "" {
		log.Fatal("clamd: -import requires -upstream")
	}
	if (*meshPeers != "" || *meshSeed != "") && *meshName == "" {
		log.Fatal("clamd: -mesh-peer/-mesh-seed require -mesh-name")
	}
	if *shmRing != 0 && !*shmOn {
		log.Fatal("clamd: -shm-ring requires -shm")
	}
	if *shmOn && network != "unix" {
		log.Fatal("clamd: -shm requires a unix -listen address (the rendezvous broker lives next to the socket)")
	}

	lib := clam.NewLibrary()
	wm.MustRegister(lib, wm.Config{Width: int16(*width), Height: int16(*height)})
	proto.MustRegister(lib)
	if err := benchlib.Register(lib); err != nil {
		log.Fatal(err)
	}
	if err := clam.RegisterStatsClass(lib); err != nil {
		log.Fatal(err)
	}

	opts := []clam.ServerOption{}
	if *quiet {
		opts = append(opts, clam.WithServerLog(func(string, ...any) {}))
	}
	if *upTimeout > 0 {
		opts = append(opts, clam.WithUpcallTimeout(*upTimeout))
	}
	if *heartbeat > 0 {
		opts = append(opts, clam.WithHeartbeat(*heartbeat, *liveness))
	}
	if *maxSessions > 0 {
		opts = append(opts, clam.WithMaxSessions(*maxSessions))
	}
	if *slowLimit > 0 {
		opts = append(opts, clam.WithSlowConsumerLimit(*slowLimit))
	}
	if *maxUpcalls > 0 {
		opts = append(opts, clam.WithMaxClientUpcalls(*maxUpcalls))
	}
	if *dispatchWorkers > 0 {
		opts = append(opts, clam.WithDispatchWorkers(*dispatchWorkers))
	}
	if *serialDispatch {
		opts = append(opts, clam.WithPerObjectDispatch(false))
	}
	if *fanoutShards > 0 {
		opts = append(opts, clam.WithFanoutShards(*fanoutShards))
	}
	if *resumeWindow > 0 {
		opts = append(opts, clam.WithResumeWindow(*resumeWindow))
	}
	if *journalDir != "" {
		opts = append(opts, clam.WithJournal(*journalDir))
	}
	if *breakerThreshold > 0 {
		opts = append(opts, clam.WithUpstreamBreaker(*breakerThreshold, *breakerCooldown))
	}
	if *shmOn {
		opts = append(opts, clam.WithSharedMemory(*shmRing))
	}
	if *maxQueueDelay > 0 {
		opts = append(opts, clam.WithMaxQueueDelay(*maxQueueDelay))
	}
	if *noShed {
		opts = append(opts, clam.WithoutDeadlineShedding())
	}
	srv := clam.NewServer(lib, opts...)

	// Bootstrap the base abstractions clients expect, per §4.2.
	sobj, _, err := srv.CreateInstance("screen", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("screen", sobj)
	wobj, _, err := srv.CreateInstance("window", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("basewindow", wobj)
	fobj, _, err := srv.CreateInstance("framer", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("framer", fobj)
	tobj, _, err := srv.CreateInstance("transport", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("transport", tobj)
	aobj, _, err := srv.CreateInstance("assembler", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("assembler", aobj)
	eobj, _, err := srv.CreateInstance("echo", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("echo", eobj)
	pobj, _, err := srv.CreateInstance("pinger", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("pinger", pobj)

	// Middle-tier placement (§1's layering across address spaces): dial a
	// lower CLAM server and re-export selected base instances as proxies.
	// Calls on them relay down; their upcalls relay back up through this
	// server into our clients.
	if *upstream != "" {
		unet, uaddr, ok := strings.Cut(*upstream, ":")
		if !ok || (unet != "unix" && unet != "tcp") {
			log.Fatalf("clamd: bad -upstream %q; want unix:PATH or tcp:HOST:PORT", *upstream)
		}
		up, err := srv.DialUpstream(unet, uaddr)
		if err != nil {
			log.Fatalf("clamd: dialing upstream: %v", err)
		}
		if *imports != "" {
			names := strings.Split(*imports, ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
			if err := srv.ImportNamed(up, names...); err != nil {
				log.Fatalf("clamd: importing from upstream: %v", err)
			}
			fmt.Printf("clamd: stacked on %s, re-exporting: %s\n", *upstream, strings.Join(names, ", "))
		} else {
			fmt.Printf("clamd: stacked on %s\n", *upstream)
		}
	}

	if network == "unix" {
		os.Remove(addr) // stale socket from a previous run
	}
	ln, err := srv.Listen(network, addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clamd: serving on %s:%s (display %dx%d); classes: %s\n",
		network, ln.Addr(), *width, *height, strings.Join(lib.Names(), ", "))

	// Federated mesh membership (DESIGN.md §6.6): join a horizontal peer
	// mesh sharing one consistent-hash object space. Joined after Listen so
	// peers handling our announce can dial us back immediately.
	if *meshName != "" {
		peers, err := parseMeshPeers(*meshPeers)
		if err != nil {
			log.Fatalf("clamd: %v", err)
		}
		if *meshSeed != "" {
			snet, saddr, ok := strings.Cut(*meshSeed, ":")
			if !ok || (snet != "unix" && snet != "tcp") {
				log.Fatalf("clamd: bad -mesh-seed %q; want unix:PATH or tcp:HOST:PORT", *meshSeed)
			}
			more, err := fetchRoster(snet, saddr, *meshName)
			if err != nil {
				log.Fatalf("clamd: seeding mesh from %s: %v", *meshSeed, err)
			}
			peers = append(peers, more...)
		}
		self := clam.MeshPeer{Name: *meshName, Network: network, Addr: addr}
		if err := srv.JoinMesh(self, peers...); err != nil {
			log.Fatalf("clamd: joining mesh: %v", err)
		}
		fmt.Printf("clamd: mesh member %q with %d peers\n", *meshName, len(peers))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	m := srv.Metrics()
	fmt.Printf("clamd: shutting down — %d sync + %d async calls in %d batches, %d upcalls (%d failed, %d timed out), %d loads, %d faults\n",
		m.SyncCalls, m.AsyncCalls, m.Batches, m.Upcalls, m.UpcallFailures, m.UpcallTimeouts, m.Loads, m.Faults)
	if m.Evictions > 0 || m.RejectedSessions > 0 {
		fmt.Printf("clamd: robustness — %d clients evicted, %d sessions rejected\n",
			m.Evictions, m.RejectedSessions)
	}
	if m.HeartbeatsSent > 0 {
		fmt.Printf("clamd: heartbeats — %d sent, %d received\n",
			m.HeartbeatsSent, m.HeartbeatsReceived)
	}
	if f := m.Forwarding; f.CallsRelayedDown > 0 || f.UpcallsRelayedUp > 0 || f.ProxyHandlesLive > 0 {
		fmt.Printf("clamd: forwarding — %d calls relayed down, %d upcalls relayed up, %d proxy handles live\n",
			f.CallsRelayedDown, f.UpcallsRelayedUp, f.ProxyHandlesLive)
	}
	if ms := m.Mesh; ms.Enabled {
		fmt.Printf("clamd: mesh — member %q, %d/%d peers up, %d named resolutions routed, %d peer-down refusals\n",
			ms.Self, ms.PeersUp, ms.Peers, ms.RoutedNamed, ms.PeerDownFailures)
	}
	if r := m.Resilience; r.Reconnects > 0 || r.ReplayedCalls > 0 || r.DedupDrops > 0 || r.RetransmitDrops > 0 || r.BreakerOpens > 0 {
		fmt.Printf("clamd: resilience — %d reconnects, %d calls replayed, %d duplicates dropped, %d retransmit drops, %d breaker opens\n",
			r.Reconnects, r.ReplayedCalls, r.DedupDrops, r.RetransmitDrops, r.BreakerOpens)
	}
	if j := m.Journal; j.Enabled {
		fmt.Printf("clamd: journal — %d appends (%d synced, %d fsyncs), %d compactions, %d bytes; recovered %d sessions / %d handles / %d subs%s\n",
			j.Appends, j.SyncAppends, j.Fsyncs, j.Compactions, j.SizeBytes,
			j.RecoveredSessions, j.RecoveredHandles, j.RecoveredSubs,
			map[bool]string{true: " (torn tail truncated)", false: ""}[j.TornTailTruncated])
	}
	if fo := m.Fanout; fo.EventsPublished > 0 || fo.SubscribersLive > 0 {
		fmt.Printf("clamd: fanout — %d subscribers on %d topics (%d shards), %d published + %d relayed, %d delivered (%d failed), %d coalesced, drops %d oldest / %d newest / %d closed\n",
			fo.SubscribersLive, fo.Topics, fo.Shards, fo.EventsPublished, fo.EventsRelayed,
			fo.EventsDelivered, fo.DeliveryFailures, fo.EventsCoalesced,
			fo.QueueDropsOldest, fo.QueueDropsNewest, fo.QueueDropsClosed)
	}
	if tr := m.Transport; tr.ShmEnabled || tr.WritevFlushes > 0 {
		fmt.Printf("clamd: transport — %d shm sessions, %d socket fallbacks, %d doorbell wakeups (%d parks), ring high-water %d B, %d writev flushes carrying %d frames\n",
			tr.ShmSessions, tr.SocketFallbacks, tr.DoorbellWakeups, tr.DoorbellSleeps,
			tr.RingHighWater, tr.WritevFlushes, tr.WritevFrames)
	}
	if o := m.Overload; o.BudgetedCalls > 0 || o.ShedExpired > 0 || o.ShedCancelled > 0 || o.ShedAdmission > 0 || o.CancelsReceived > 0 {
		fmt.Printf("clamd: overload — %d budgeted calls, shed %d expired / %d cancelled / %d at admission, %d cancels received (%d mid-handler, %d propagated), queue-wait EWMA %s\n",
			o.BudgetedCalls, o.ShedExpired, o.ShedCancelled, o.ShedAdmission,
			o.CancelsReceived, o.HandlerCancels, o.CancelsPropagated,
			time.Duration(o.QueueDelayEWMANanos))
	}
	if d := m.Dispatch; d.PerObject {
		fmt.Printf("clamd: dispatch — %d workers, peak parallelism %d, %d queued, %d worker stalls\n",
			d.Workers, d.Parallelism, d.QueueDepth, d.WorkerStalls)
	}
	if top := m.TopCalls(5); len(top) > 0 {
		fmt.Printf("clamd: busiest methods: %v\n", top)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if network == "unix" {
		os.Remove(addr)
	}
}

// parseMeshPeers parses the -mesh-peer list: comma-separated entries of
// the form name=network:address.
func parseMeshPeers(spec string) ([]clam.MeshPeer, error) {
	if spec == "" {
		return nil, nil
	}
	var peers []clam.MeshPeer
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, where, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -mesh-peer entry %q; want name=network:address", entry)
		}
		pnet, paddr, ok := strings.Cut(where, ":")
		if !ok || (pnet != "unix" && pnet != "tcp") {
			return nil, fmt.Errorf("bad -mesh-peer address %q; want unix:PATH or tcp:HOST:PORT", where)
		}
		peers = append(peers, clam.MeshPeer{Name: name, Network: pnet, Addr: paddr})
	}
	return peers, nil
}

// fetchRoster dials one live mesh member and reads its membership view
// (the "mesh" class's Roster), so a joining server needs only a single
// seed address instead of the full peer list.
func fetchRoster(network, addr, self string) ([]clam.MeshPeer, error) {
	c, err := clam.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	r, err := c.New("mesh", 1)
	if err != nil {
		return nil, err
	}
	var roster string
	if err := r.CallInto("Roster", []any{&roster}); err != nil {
		return nil, err
	}
	var peers []clam.MeshPeer
	for _, line := range strings.Split(strings.TrimSpace(roster), "\n") {
		f := strings.Fields(line)
		if len(f) != 4 || f[0] == self {
			continue
		}
		peers = append(peers, clam.MeshPeer{Name: f[0], Network: f[1], Addr: f[2]})
	}
	return peers, nil
}
