// Overload goodput matrix (BENCH_7): what deadline-budget shedding buys
// when offered load exceeds capacity. Each cell boots a server whose
// capacity is fixed (W dispatch workers, each call holding the handler
// for -overload-hold), then drives it closed-loop with mult×W clients,
// each call carrying a -overload-deadline budget. Goodput counts only
// calls that completed successfully within their deadline.
//
// The shed column runs the §6.8 machinery end to end: budgets on the
// wire, expired-budget shedding at dispatch, and the admission layer
// (WithMaxQueueDelay = deadline/2) refusing calls at the read loop once
// the queue-wait estimate says they are doomed — so a refused client
// learns in microseconds, not after burning its whole deadline, and the
// workers spend their time on calls that can still make it. The noshed
// column is the pre-change ablation: WithoutDeadlineShedding on the
// server and no budgets from the clients, so every call executes in
// arrival order no matter how dead it is — the classic congestion
// collapse this PR exists to prevent.
//
// The acceptance bar (EXPERIMENTS.md §BENCH_7): at ≥2× offered overload,
// goodput with shedding at least 2× the no-shed ablation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/benchlib"
	"clam/internal/core"
)

var (
	overloadOnly     = flag.Bool("overload", false, "run only the overload goodput matrix (BENCH_7 rows)")
	overloadDur      = flag.Duration("overload-dur", time.Second, "measured wall time per overload cell")
	overloadWorkers  = flag.Int("overload-workers", 4, "dispatch workers (server capacity = workers/hold)")
	overloadHold     = flag.Duration("overload-hold", time.Millisecond, "handler hold time per call")
	overloadDeadline = flag.Duration("overload-deadline", 2500*time.Microsecond, "per-call deadline budget")
	overloadJSON     = flag.String("overload-json", "", "write overload results (BENCH_7.json) to this path")
)

// overloadCell is one matrix cell: an offered-load multiplier (clients =
// mult × workers) with shedding on or off.
type overloadCell struct {
	mult int
	shed bool
}

// overloadRow is one measured cell, as it lands in BENCH_7.json.
type overloadRow struct {
	Name        string  `json:"name"`
	Mult        int     `json:"offered_mult"`
	Shed        bool    `json:"shed"`
	Clients     int     `json:"clients"`
	Attempts    uint64  `json:"attempts"`
	Successes   uint64  `json:"successes"`
	ShedByPeer  uint64  `json:"shed_by_server"`
	GoodputPS   float64 `json:"goodput_per_sec"`
	SuccessRate float64 `json:"success_rate"`
}

type overloadReport struct {
	Schema     string        `json:"schema"`
	Go         string        `json:"go"`
	Workers    int           `json:"workers"`
	HoldUS     int64         `json:"hold_us"`
	DeadlineUS int64         `json:"deadline_us"`
	CellDurMS  int64         `json:"cell_dur_ms"`
	CapacityPS float64       `json:"capacity_per_sec"`
	Rows       []overloadRow `json:"rows"`
}

// runOverloadCell boots one server+client pair and drives it closed-loop
// for dur, returning attempts, in-deadline successes, and server-side
// sheds. Every client goroutine targets its own pinger object, so the
// per-object lanes spread the load across the worker pool instead of
// serializing it behind one object.
func runOverloadCell(cell overloadCell, workers int, hold, deadline, dur time.Duration) overloadRow {
	dir, err := os.MkdirTemp("", "clambench-ov")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srvOpts := []core.ServerOption{core.WithDispatchWorkers(workers)}
	if cell.shed {
		srvOpts = append(srvOpts, core.WithMaxQueueDelay(deadline/2))
	} else {
		srvOpts = append(srvOpts, core.WithoutDeadlineShedding())
	}
	fx, err := benchlib.Boot("unix", dir, srvOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer fx.Server.Close()

	clients := cell.mult * workers
	if _, err := fx.PublishPingers(clients); err != nil {
		log.Fatal(err)
	}
	// One dialed client per load generator: each is its own session, as
	// real overload is many callers, not one caller multiplexing.
	rems := make([]*core.Remote, clients)
	for i := range rems {
		c, err := core.Dial(fx.Network, fx.Addr, quietClient())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		if rems[i], err = c.NamedObject(fmt.Sprintf("pinger%d", i)); err != nil {
			log.Fatal(err)
		}
	}

	holdUS := hold.Microseconds()
	var attempts, successes atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup

	worker := func(rem *core.Remote) {
		defer wg.Done()
		var out int64
		for !stop.Load() {
			attempts.Add(1)
			if cell.shed {
				// The deadline rides the context onto the wire as a
				// budget; an in-deadline reply is a success by
				// construction — the call would have errored otherwise.
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				err := rem.CallIntoCtx(ctx, "Hold", []any{&out}, holdUS)
				cancel()
				if err == nil {
					successes.Add(1)
				} else {
					// Refused or timed out: back off a breath so a
					// rejected client does not spin the read loop.
					time.Sleep(deadline / 8)
				}
				continue
			}
			// Ablation: no budget, no cancel — the client waits for the
			// real reply however late, and scores it against the deadline
			// after the fact. This is the pre-change system verbatim.
			start := time.Now()
			if err := rem.CallInto("Hold", []any{&out}, holdUS); err == nil &&
				time.Since(start) <= deadline {
				successes.Add(1)
			}
		}
	}

	// Warmup: let the queue and the admission EWMA reach steady state
	// before counting.
	wg.Add(clients)
	for i := range rems {
		go worker(rems[i])
	}
	time.Sleep(dur / 4)
	attempts.Store(0)
	successes.Store(0)
	start := time.Now()
	time.Sleep(dur)
	att, succ := attempts.Load(), successes.Load()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	m := fx.Server.Metrics()
	shedTotal := m.Overload.ShedExpired + m.Overload.ShedCancelled + m.Overload.ShedAdmission
	name := fmt.Sprintf("goodput_%dx_noshed", cell.mult)
	if cell.shed {
		name = fmt.Sprintf("goodput_%dx_shed", cell.mult)
	}
	row := overloadRow{
		Name:       name,
		Mult:       cell.mult,
		Shed:       cell.shed,
		Clients:    clients,
		Attempts:   att,
		Successes:  succ,
		ShedByPeer: shedTotal,
		GoodputPS:  float64(succ) / elapsed.Seconds(),
	}
	if att > 0 {
		row.SuccessRate = float64(succ) / float64(att)
	}
	return row
}

// runOverload measures the matrix, prints the table, and optionally
// writes BENCH_7.json.
func runOverload(dur time.Duration, workers int, hold, deadline time.Duration, jsonOut string) {
	capacity := float64(workers) / hold.Seconds()
	fmt.Println("CLAM overload matrix — BENCH_7: goodput under offered overload, shedding on/off")
	fmt.Printf("(%d workers × %v hold ⇒ capacity %.0f calls/s; deadline %v; %v per cell)\n",
		workers, hold, capacity, deadline, dur)
	fmt.Println()
	fmt.Printf("%-20s %8s %10s %10s %12s %9s %10s\n",
		"cell", "clients", "attempts", "successes", "goodput/s", "success%", "srv sheds")

	rep := overloadReport{
		Schema:     "clam-bench-overload-v1",
		Go:         runtime.Version(),
		Workers:    workers,
		HoldUS:     hold.Microseconds(),
		DeadlineUS: deadline.Microseconds(),
		CellDurMS:  dur.Milliseconds(),
		CapacityPS: capacity,
	}
	byName := map[string]overloadRow{}
	for _, cell := range []overloadCell{
		{1, true}, {1, false},
		{2, true}, {2, false},
		{4, true}, {4, false},
	} {
		row := runOverloadCell(cell, workers, hold, deadline, dur)
		rep.Rows = append(rep.Rows, row)
		byName[row.Name] = row
		fmt.Printf("%-20s %8d %10d %10d %12.0f %8.1f%% %10d\n",
			row.Name, row.Clients, row.Attempts, row.Successes,
			row.GoodputPS, row.SuccessRate*100, row.ShedByPeer)
	}

	shed4, noshed4 := byName["goodput_4x_shed"], byName["goodput_4x_noshed"]
	fmt.Println()
	fmt.Println("Acceptance checks:")
	status := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	ok := shed4.GoodputPS >= 2*noshed4.GoodputPS && shed4.Successes > 0
	fmt.Printf("  [%s] at 4x offered load, goodput with shedding >= 2x the no-shed ablation (%.0f/s vs %.0f/s)\n",
		status(ok), shed4.GoodputPS, noshed4.GoodputPS)

	if jsonOut != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
}
