// Fan-out rows for the multicast subsystem (BENCH_4): one Publish
// multiplied across N live subscribers through the sharded registration
// table and per-subscriber bounded queues. The matrix sweeps subscriber
// count × event-burst size and reports the aggregate delivery rate; the
// scale row holds ≥10k live subscribers (each a full client session over
// an in-memory pipe) and prices the per-session footprint; the tree row
// stacks a middle tier on a lower server and verifies by counters that
// the chain multiplies locally — the lower server delivers each event
// ONCE (to the mid tier), the mid tier re-publishes it to its K local
// subscribers.
//
// Subscribers connect over net.Pipe (core.SelfDial), so the rows measure
// the fan-out engine — snapshot, enqueue, drain, upcall — without kernel
// socket limits capping the subscriber count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/core"
	"clam/internal/dynload"
)

var (
	fanOnly   = flag.Bool("fanout", false, "run only the fan-out matrix (BENCH_4 rows)")
	fanSubs   = flag.Int("fanout-subs", 10000, "live subscribers in the scale row")
	fanEvents = flag.Int("fanout-events", 200, "events per matrix cell (the burst the publisher emits)")
	fanJSON   = flag.String("fanout-json", "", "write fan-out results (BENCH_4.json) to this path")
)

// fanFixture is one server with n subscribed client sessions, each a
// real *core.Client over an in-memory pipe counting its deliveries.
type fanFixture struct {
	srv     *core.Server
	clients []*core.Client
	got     atomic.Int64 // total deliveries across all subscribers
}

func quietClient() core.DialOption { return core.WithClientLog(func(string, ...any) {}) }

// newFanFixture boots a server with one multicast topic and subscribes n
// clients through a bounded dial pool. The queue is sized to hold a full
// burst so matrix cells are lossless: every published event must arrive
// at every subscriber or the cell times out.
func newFanFixture(n, maxEvents int) *fanFixture {
	fx := &fanFixture{}
	fx.srv = core.NewServer(dynload.NewLibrary(), core.WithServerLog(func(string, ...any) {}))
	if err := fx.srv.RegisterMulticast("ev", (func(int64))(nil),
		core.WithFanoutQueue(maxEvents+8)); err != nil {
		log.Fatal(err)
	}
	fx.subscribe(n)
	return fx
}

// subscribe dials and subscribes n clients, 32 at a time.
func (fx *fanFixture) subscribe(n int) {
	fx.clients = make([]*core.Client, n)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	sem := make(chan struct{}, 32)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := core.SelfDial(fx.srv, quietClient())
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			fx.clients[i] = c
			if _, err := c.Subscribe("ev", func(int64) { fx.got.Add(1) }); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(i)
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		log.Fatalf("clambench: fan-out subscribe: %v", err)
	}
}

func (fx *fanFixture) close() {
	for _, c := range fx.clients {
		if c != nil {
			c.Close()
		}
	}
	fx.srv.Close()
}

// runFanCell publishes a burst of `events` distinct events and waits for
// every subscriber to receive every one. Returns the wall time from the
// first Publish to the last delivery.
func (fx *fanFixture) runCell(subs, events int) time.Duration {
	base := fx.got.Load()
	want := base + int64(subs)*int64(events)
	start := time.Now()
	for i := 0; i < events; i++ {
		if n, err := fx.srv.Publish("ev", int64(i)); err != nil {
			log.Fatal(err)
		} else if n != subs {
			log.Fatalf("clambench: Publish reached %d of %d subscribers", n, subs)
		}
	}
	deadline := time.Now().Add(3 * time.Minute)
	for fx.got.Load() < want {
		if time.Now().After(deadline) {
			log.Fatalf("clambench: fan-out cell %dx%d stalled: %d of %d deliveries",
				subs, events, fx.got.Load()-base, want-base)
		}
		time.Sleep(200 * time.Microsecond)
	}
	d := time.Since(start)
	f := fx.srv.Metrics().Fanout
	if f.DeliveryFailures > 0 || f.QueueDropsOldest > 0 || f.QueueDropsNewest > 0 {
		log.Fatalf("clambench: fan-out cell %dx%d lost events: %d failures, %d/%d drops",
			subs, events, f.DeliveryFailures, f.QueueDropsOldest, f.QueueDropsNewest)
	}
	return d
}

// --- Report -----------------------------------------------------------------

type fanCellResult struct {
	Name             string  `json:"name"`
	Subscribers      int     `json:"subscribers"`
	Events           int     `json:"events"`
	NsPerDelivery    float64 `json:"ns_per_delivery"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
}

type fanScaleResult struct {
	Subscribers       int     `json:"subscribers"`
	Events            int     `json:"events"`
	BytesPerSession   float64 `json:"bytes_per_session"`
	SubscribeUsPerSub float64 `json:"subscribe_us_per_session"`
	NsPerDelivery     float64 `json:"ns_per_delivery"`
	DeliveriesPerSec  float64 `json:"deliveries_per_sec"`
	Shards            uint64  `json:"shards"`
}

type fanTreeResult struct {
	Events          int    `json:"events"`
	MidSubscribers  int    `json:"mid_subscribers"`
	BottomDelivered uint64 `json:"bottom_delivered"`
	MidRelayed      uint64 `json:"mid_relayed"`
	MidDelivered    uint64 `json:"mid_delivered"`
	Verified        bool   `json:"verified"`
}

type fanReport struct {
	Schema string          `json:"schema"`
	Go     string          `json:"go"`
	Matrix []fanCellResult `json:"matrix"`
	Scale  fanScaleResult  `json:"scale"`
	Tree   fanTreeResult   `json:"tree"`
}

func cellResult(subs, events int, d time.Duration) fanCellResult {
	total := float64(subs) * float64(events)
	ns := float64(d.Nanoseconds()) / total
	return fanCellResult{
		Name:             fmt.Sprintf("fanout_s%d_e%d", subs, events),
		Subscribers:      subs,
		Events:           events,
		NsPerDelivery:    ns,
		DeliveriesPerSec: 1e9 / ns,
	}
}

// runFanout measures the matrix, the scale row and the tree row, prints
// the table and shape checks, and optionally writes BENCH_4.json.
func runFanout(maxSubs, events int, jsonPath string) {
	if maxSubs < 1 {
		maxSubs = 1
	}
	if events < 2 {
		events = 2
	}
	rep := fanReport{Schema: "clam-bench-fanout-v1", Go: runtime.Version()}

	fmt.Println("Fan-out (one Publish × N live subscriber sessions, in-memory pipes):")
	fmt.Printf("  %-24s %14s %16s\n", "", "µs/delivery", "deliveries/sec")

	// Matrix: subscriber count × burst size, below the scale row.
	subsList := []int{}
	for _, s := range []int{16, 256, 2048} {
		if s < maxSubs {
			subsList = append(subsList, s)
		}
	}
	burstList := []int{events / 4, events}
	if burstList[0] < 10 {
		burstList[0] = 10
	}
	if burstList[0] >= burstList[1] {
		burstList = burstList[1:]
	}
	for _, subs := range subsList {
		fx := newFanFixture(subs, burstList[len(burstList)-1])
		for _, burst := range burstList {
			d := fx.runCell(subs, burst)
			r := cellResult(subs, burst, d)
			rep.Matrix = append(rep.Matrix, r)
			fmt.Printf("  %-24s %14.2f %16.0f\n", r.Name, r.NsPerDelivery/1e3, r.DeliveriesPerSec)
		}
		fx.close()
	}

	// Scale row: maxSubs live subscribers, with the live per-session
	// footprint priced as the post-GC heap delta across subscription.
	scaleEvents := events / 10
	if scaleEvents < 10 {
		scaleEvents = 10
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	subStart := time.Now()
	fx := newFanFixture(maxSubs, scaleEvents)
	subDur := time.Since(subStart)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	live := fx.srv.Metrics().Fanout
	if live.SubscribersLive != uint64(maxSubs) {
		log.Fatalf("clambench: scale row has %d live subscribers, want %d", live.SubscribersLive, maxSubs)
	}
	d := fx.runCell(maxSubs, scaleEvents)
	r := cellResult(maxSubs, scaleEvents, d)
	rep.Scale = fanScaleResult{
		Subscribers:       maxSubs,
		Events:            scaleEvents,
		BytesPerSession:   float64(m1.HeapAlloc-m0.HeapAlloc) / float64(maxSubs),
		SubscribeUsPerSub: float64(subDur.Microseconds()) / float64(maxSubs),
		NsPerDelivery:     r.NsPerDelivery,
		DeliveriesPerSec:  r.DeliveriesPerSec,
		Shards:            live.Shards,
	}
	fmt.Printf("  %-24s %14.2f %16.0f   (%.0f B/session live, %.1f µs to subscribe, %d shards)\n",
		fmt.Sprintf("scale_s%d_e%d", maxSubs, scaleEvents), r.NsPerDelivery/1e3, r.DeliveriesPerSec,
		rep.Scale.BytesPerSession, rep.Scale.SubscribeUsPerSub, live.Shards)
	fx.close()

	// Tree row: bottom → mid → K subscribers. The counters are the
	// verification: the bottom fans each event out ONCE (its only
	// subscriber is the mid tier's relay), the mid tier multiplies it
	// into K local deliveries.
	treeSubs := 16
	if maxSubs < treeSubs {
		treeSubs = maxSubs
	}
	rep.Tree = runFanTree(treeSubs, scaleEvents)

	fmt.Println()
	fmt.Println("Fan-out shape checks:")
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	check(fmt.Sprintf("scale row sustained %d live subscribers losslessly", maxSubs),
		rep.Scale.Subscribers == maxSubs)
	check("tree multiplies at the mid tier: bottom delivered E, mid relayed E, mid delivered E*K",
		rep.Tree.Verified)

	if jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
}

// runFanTree stacks a mid tier on a bottom server over an in-memory
// pipe, subscribes k clients to the mid tier, publishes on the BOTTOM,
// and verifies the multiplication by counters.
func runFanTree(k, events int) fanTreeResult {
	quiet := core.WithServerLog(func(string, ...any) {})
	bottom := core.NewServer(dynload.NewLibrary(), quiet)
	defer bottom.Close()
	if err := bottom.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		log.Fatal(err)
	}
	mid := core.NewServer(dynload.NewLibrary(), quiet)
	defer mid.Close()
	up, err := core.SelfDialUpstream(mid, bottom, quietClient())
	if err != nil {
		log.Fatal(err)
	}
	defer up.Close()
	if err := mid.RegisterMulticast("ev", (func(int64))(nil),
		core.WithFanoutQueue(events+8)); err != nil {
		log.Fatal(err)
	}

	var got atomic.Int64
	clients := make([]*core.Client, k)
	for i := range clients {
		c, err := core.SelfDial(mid, quietClient())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		if _, err := c.Subscribe("ev", func(int64) { got.Add(1) }); err != nil {
			log.Fatal(err)
		}
	}

	want := int64(k) * int64(events)
	for i := 0; i < events; i++ {
		if _, err := bottom.Publish("ev", int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Minute)
	for got.Load() < want {
		if time.Now().After(deadline) {
			log.Fatalf("clambench: fan-out tree stalled: %d of %d deliveries", got.Load(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}

	bf := bottom.Metrics().Fanout
	mf := mid.Metrics().Fanout
	res := fanTreeResult{
		Events:          events,
		MidSubscribers:  k,
		BottomDelivered: bf.EventsDelivered,
		MidRelayed:      mf.EventsRelayed,
		MidDelivered:    mf.EventsDelivered,
	}
	res.Verified = bf.EventsDelivered == uint64(events) &&
		mf.EventsRelayed == uint64(events) &&
		mf.EventsDelivered == uint64(events)*uint64(k)
	fmt.Printf("  tree %d ev × %d subs: bottom delivered %d (once per event), mid relayed %d, mid delivered %d\n",
		events, k, res.BottomDelivered, res.MidRelayed, res.MidDelivered)
	return res
}
