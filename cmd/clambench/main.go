// Command clambench regenerates the paper's evaluation: Figure 5.1
// ("Procedure Call Costs", ICDCS 1988 §5) row by row, plus the ablation
// experiments from DESIGN.md. For each row it prints the paper's
// MicroVAX-II measurement next to the measured cost here; the absolute
// numbers differ by decades of hardware, so the claims under test are the
// orderings and ratios (see EXPERIMENTS.md).
//
// Usage:
//
//	clambench                       # full run
//	clambench -iters 500            # cheaper run
//	clambench -json BENCH_2.json    # also emit machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"clam/internal/benchlib"
	"clam/internal/bundle"
	"clam/internal/core"
	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/task"
	"clam/internal/wire"
	"clam/internal/wm"
	"clam/internal/xdr"

	"bytes"
	"net"
	"reflect"
)

var (
	iters    = flag.Int("iters", 2000, "iterations per measured row")
	jsonPath = flag.String("json", "", "write machine-readable results (BENCH_*.json) to this path")
)

// measure runs fn iters times and returns the mean cost per iteration.
func measure(n int, fn func()) time.Duration {
	return measureCost(n, fn).dur
}

// cost is one row's per-operation price: wall time plus heap traffic.
type cost struct {
	dur      time.Duration
	bytesOp  float64
	allocsOp float64
}

// measureCost runs fn n times and returns the mean per-iteration cost.
// Heap traffic is a whole-process runtime.MemStats delta across the timed
// loop: it includes the read loops and dispatcher serving the call, which
// is the honest per-operation figure for a client/server exchange (and
// why it can differ slightly from testing.B's per-goroutine view).
func measureCost(n int, fn func()) cost {
	// Warm up: connections, stub caches, pools.
	warm := n / 10
	if warm < 10 {
		warm = 10
	}
	for i := 0; i < warm; i++ {
		fn()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return cost{
		dur:      dur / time.Duration(n),
		bytesOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
		allocsOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
	}
}

type row struct {
	label   string
	key     string
	paperUS float64
	cost    cost
}

func main() {
	flag.Parse()
	n := *iters

	if *fanOnly {
		runFanout(*fanSubs, *fanEvents, *fanJSON)
		return
	}
	if *meshOnly {
		runMesh(*meshIters, *meshJSON)
		return
	}
	if *transportOnly {
		runTransport(*transportN, *transportJSON)
		return
	}
	if *overloadOnly {
		runOverload(*overloadDur, *overloadWorkers, *overloadHold, *overloadDeadline, *overloadJSON)
		return
	}

	fmt.Println("CLAM reproduction — Figure 5.1: Procedure Call Costs")
	fmt.Println("(paper: MicroVAX-II, 4.3BSD, 1988; here: this machine, Go)")
	fmt.Println()

	rows := []row{
		{"Statically linked procedure call", "static_call", 19, benchStatic(n * 1000)},
		{"Dyn-loaded proc calling dyn-loaded proc", "dyn_to_dyn_call", 21, benchDynToDyn(n * 1000)},
		{"Upcall - both procedures in the server", "local_upcall", 19, benchLocalUpcall(n * 1000)},
		{"Remote call - same machine (UNIX domain)", "remote_call_unix", 7200, benchRemoteCall(n, "unix", nil)},
		{"Remote upcall - same machine (UNIX domain)", "remote_upcall_unix", 7200, benchRemoteUpcall(n, "unix", nil)},
		{"Remote call - same machine (TCP/IP)", "remote_call_tcp", 11500, benchRemoteCall(n, "tcp", nil)},
		{"Remote upcall - same machine (TCP/IP)", "remote_upcall_tcp", 11500, benchRemoteUpcall(n, "tcp", nil)},
		{"Remote call - different machines (TCP/IP)", "remote_call_wan", 12400,
			benchRemoteCall(n/4, "tcp", benchlib.WANDialer(450*time.Microsecond, 0))},
		{"Remote upcall - different machines (TCP/IP)", "remote_upcall_wan", 12800,
			benchRemoteUpcall(n/4, "tcp", benchlib.WANDialer(450*time.Microsecond, 0))},
	}

	fmt.Printf("%-46s %12s %14s %10s %10s\n", "", "paper (µs)", "measured (µs)", "B/op", "allocs/op")
	for _, r := range rows {
		fmt.Printf("%-46s %12.0f %14.3f %10.0f %10.1f\n",
			r.label, r.paperUS, float64(r.cost.dur.Nanoseconds())/1e3, r.cost.bytesOp, r.cost.allocsOp)
	}

	local := rows[0].cost.dur
	fmt.Println()
	fmt.Println("Shape checks (paper claims → measured):")
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	check("local upcall within ~20x of a static call (paper: 19 vs 19)",
		rows[2].cost.dur < 20*maxDur(local, 10*time.Nanosecond))
	check("crossing an address space costs >=100x a local call (paper: ~380x)",
		rows[3].cost.dur > 100*maxDur(rows[2].cost.dur, 10*time.Nanosecond))
	check("UNIX-domain remote call cheaper than TCP (paper: 7200 < 11500)",
		rows[3].cost.dur < rows[5].cost.dur)
	check("different machines dearer than same machine TCP (paper: 12400 > 11500)",
		rows[7].cost.dur > rows[5].cost.dur)
	check("remote upcall within 3x of remote call, same transport (paper: equal)",
		rows[4].cost.dur < 3*rows[3].cost.dur && rows[6].cost.dur < 3*rows[5].cost.dur)

	fmt.Println()
	fmt.Println("Extras (beyond the paper's table):")
	pipe := benchRemoteCallPipe(n)
	fmt.Printf("  Remote call - same process (in-memory pipe): %.3f µs, %.0f B/op, %.1f allocs/op — protocol cost without kernel IPC\n",
		float64(pipe.dur.Nanoseconds())/1e3, pipe.bytesOp, pipe.allocsOp)

	fmt.Println()
	fmt.Println("Ablations (DESIGN.md A-1..A-5):")
	ablateBatching(n)
	ablateSweepPlacement(n / 8)
	ablateTaskReuse(n * 10)
	ablateTreeBundling(n * 10)
	ablateHandles(n * 1000)
	ablateUpcallConcurrency(n / 20)
	poolOn, poolOff := ablatePooling(n)
	tput := runThroughput(n)

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, n, rows, tput, pipe, poolOn, poolOff); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}

// ablatePooling reruns the UNIX-domain remote call with frame pooling
// disabled, isolating what the sync.Pool recycling in internal/wire buys
// on the hot path. Pooling is restored before returning.
func ablatePooling(n int) (on, off cost) {
	run := func() cost {
		fx, c, cleanup := benchFixture("unix", nil)
		defer cleanup()
		_ = fx
		rem, err := c.NamedObject("pinger")
		if err != nil {
			log.Fatal(err)
		}
		var out int64
		return measureCost(n, func() {
			if err := rem.CallInto("Ping", []any{&out}); err != nil {
				log.Fatal(err)
			}
		})
	}
	on = run()
	wire.SetPooling(false)
	off = run()
	wire.SetPooling(true)
	fmt.Printf("  A-7 frame pooling (remote call, unix): pooled %.0f B/op %.1f allocs/op, unpooled %.0f B/op %.1f allocs/op\n",
		on.bytesOp, on.allocsOp, off.bytesOp, off.allocsOp)
	return on, off
}

// --- Machine-readable report -------------------------------------------------

type jsonResult struct {
	Name        string  `json:"name"`
	PaperUS     float64 `json:"paper_us,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type jsonReport struct {
	Schema             string                `json:"schema"`
	Go                 string                `json:"go"`
	Iters              int                   `json:"iters"`
	Fig51              []jsonResult          `json:"fig51"`
	Extras             []jsonResult          `json:"extras"`
	Ablations          map[string]jsonResult `json:"ablations"`
	Throughput         []jsonResult          `json:"throughput"`
	Baseline           jsonBaseline          `json:"baseline_pre_change"`
	ThroughputBaseline jsonBaseline          `json:"baseline_pre_change_throughput"`
}

type jsonBaseline struct {
	Source  string       `json:"source"`
	Results []jsonResult `json:"results"`
}

// preChangeBaseline is the `go test -bench` capture taken on this repo
// immediately before the allocation overhaul (tree of commit ecb9e6b,
// Intel Xeon @ 2.70GHz). It is embedded so every BENCH_*.json carries its
// own before/after comparison; the allocs/op and bytes/op columns are the
// ones the overhaul targets.
var preChangeBaseline = jsonBaseline{
	Source: "go test -bench 'Fig51|Extra_RemoteCallPipe' -benchmem, pre-change tree (ecb9e6b)",
	Results: []jsonResult{
		{Name: "static_call", NsPerOp: 2.833, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "dyn_to_dyn_call", NsPerOp: 2.263, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "local_upcall", NsPerOp: 19.54, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "remote_call_pipe", NsPerOp: 10264, BytesPerOp: 1699, AllocsPerOp: 46},
		{Name: "remote_call_unix", NsPerOp: 9731, BytesPerOp: 1700, AllocsPerOp: 46},
		{Name: "remote_upcall_unix", NsPerOp: 20687, BytesPerOp: 1633, AllocsPerOp: 45},
		{Name: "remote_call_tcp", NsPerOp: 12904, BytesPerOp: 1699, AllocsPerOp: 46},
		{Name: "remote_upcall_tcp", NsPerOp: 19735, BytesPerOp: 1688, AllocsPerOp: 45},
		{Name: "remote_call_wan", NsPerOp: 1121072, BytesPerOp: 1827, AllocsPerOp: 48},
		{Name: "remote_upcall_wan", NsPerOp: 1146725, BytesPerOp: 1714, AllocsPerOp: 47},
	},
}

// preChangeThroughput is the throughput matrix captured on the serial
// per-session dispatcher — the engine this repo shipped before the
// per-object executor (the serial ablation reproduces it exactly, so the
// capture ran these same rows under WithPerObjectDispatch(false) on the
// tree of commit c9aedfd, Intel Xeon @ 2.70GHz, GOMAXPROCS=1). Embedded
// so every BENCH_3.json carries the before/after the executor targets:
// cross-object rows are the ones per-object dispatch must beat.
var preChangeThroughput = jsonBaseline{
	Source: "clambench throughput rows, serial dispatcher (WithPerObjectDispatch(false)), pre-executor tree (c9aedfd)",
	Results: []jsonResult{
		{Name: "same_object_8x4_serial", NsPerOp: 846500},
		{Name: "cross_object_8x4_serial", NsPerOp: 794300},
		{Name: "twohop_cross_4x2_serial", NsPerOp: 388100},
	},
}

func writeReport(path string, n int, rows, tput []row, pipe, poolOn, poolOff cost) error {
	rep := jsonReport{
		Schema: "clam-bench-v1",
		Go:     runtime.Version(),
		Iters:  n,
		Extras: []jsonResult{toResult("remote_call_pipe", 0, pipe)},
		Ablations: map[string]jsonResult{
			"pooling_on":  toResult("remote_call_unix_pooled", 0, poolOn),
			"pooling_off": toResult("remote_call_unix_unpooled", 0, poolOff),
		},
		Baseline:           preChangeBaseline,
		ThroughputBaseline: preChangeThroughput,
	}
	for _, r := range rows {
		rep.Fig51 = append(rep.Fig51, toResult(r.key, r.paperUS, r.cost))
	}
	for _, r := range tput {
		rep.Throughput = append(rep.Throughput, toResult(r.key, 0, r.cost))
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func toResult(name string, paperUS float64, c cost) jsonResult {
	return jsonResult{
		Name:        name,
		PaperUS:     paperUS,
		NsPerOp:     float64(c.dur.Nanoseconds()),
		BytesPerOp:  c.bytesOp,
		AllocsPerOp: c.allocsOp,
	}
}

func benchRemoteCallPipe(n int) cost {
	dir, err := os.MkdirTemp("", "clambench-pipe")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fx, err := benchlib.Boot("unix", dir)
	if err != nil {
		log.Fatal(err)
	}
	defer fx.Server.Close()
	c, err := core.SelfDial(fx.Server, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		log.Fatal(err)
	}
	var out int64
	return measureCost(n, func() {
		if err := rem.CallInto("Ping", []any{&out}); err != nil {
			log.Fatal(err)
		}
	})
}

// ablateUpcallConcurrency measures the §4.4 relaxation: four concurrent
// 1ms upcalls under the paper's serial limit vs the relaxed mode.
func ablateUpcallConcurrency(n int) {
	if n < 5 {
		n = 5
	}
	run := func(srvOpts []core.ServerOption, dialOpts []core.DialOption) time.Duration {
		dir, err := os.MkdirTemp("", "clambench-cu")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		fx, err := benchlib.Boot("unix", dir, srvOpts...)
		if err != nil {
			log.Fatal(err)
		}
		defer fx.Server.Close()
		opts := append([]core.DialOption{core.WithClientLog(func(string, ...any) {})}, dialOpts...)
		c, err := core.Dial(fx.Network, fx.Addr, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		echo, err := c.NamedObject("echo")
		if err != nil {
			log.Fatal(err)
		}
		if err := echo.Call("Register", func(x int64) int64 {
			time.Sleep(time.Millisecond)
			return x
		}); err != nil {
			log.Fatal(err)
		}
		fn := fx.Echo.Proc()
		return measure(n, func() {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					fn(1)
				}()
			}
			wg.Wait()
		})
	}
	serial := run(nil, nil)
	relaxed := run(
		[]core.ServerOption{core.WithMaxClientUpcalls(4)},
		[]core.DialOption{core.WithUpcallHandlers(4)})
	fmt.Printf("  A-6 upcall concurrency (4 x 1ms handlers): serial limit %v, relaxed %v (%.2fx) — the §4.4 future-work relaxation\n",
		serial, relaxed, float64(serial)/float64(relaxed))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// --- Figure 5.1 rows ---------------------------------------------------------

func benchStatic(n int) cost {
	var acc int64
	d := measureCost(n, func() { acc = benchlib.StaticCall(acc) })
	_ = acc
	return d
}

func benchDynToDyn(n int) cost {
	lib := dynload.NewLibrary()
	if err := benchlib.Register(lib); err != nil {
		log.Fatal(err)
	}
	ld := dynload.NewLoader(lib)
	pc, _ := ld.Load("pinger", 0)
	rc, _ := ld.Load("relay", 0)
	pObj, _ := pc.New(nil)
	rObj, _ := rc.New(nil)
	relay := rObj.(*benchlib.Relay)
	relay.SetTarget(pObj.(*benchlib.Pinger))
	return measureCost(n, func() { relay.Relay() })
}

func benchLocalUpcall(n int) cost {
	e := &benchlib.Echo{}
	e.Register(func(x int64) int64 { return x + 1 })
	return measureCost(n, func() {
		if _, err := e.Call(1); err != nil {
			log.Fatal(err)
		}
	})
}

func benchFixture(network string, dial func(string, string) (net.Conn, error)) (*benchlib.Fixture, *core.Client, func()) {
	dir, err := os.MkdirTemp("", "clambench")
	if err != nil {
		log.Fatal(err)
	}
	fx, err := benchlib.Boot(network, dir)
	if err != nil {
		log.Fatal(err)
	}
	opts := []core.DialOption{core.WithClientLog(func(string, ...any) {})}
	if dial != nil {
		opts = append(opts, core.WithDialFunc(dial))
	}
	c, err := core.Dial(fx.Network, fx.Addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	cleanup := func() {
		c.Close()
		fx.Server.Close()
		os.RemoveAll(dir)
	}
	return fx, c, cleanup
}

func benchRemoteCall(n int, network string, dial func(string, string) (net.Conn, error)) cost {
	fx, c, cleanup := benchFixture(network, dial)
	defer cleanup()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		log.Fatal(err)
	}
	var out int64
	d := measureCost(n, func() {
		if err := rem.CallInto("Ping", []any{&out}); err != nil {
			log.Fatal(err)
		}
	})
	_ = fx
	return d
}

func benchRemoteUpcall(n int, network string, dial func(string, string) (net.Conn, error)) cost {
	fx, c, cleanup := benchFixture(network, dial)
	defer cleanup()
	echo, err := c.NamedObject("echo")
	if err != nil {
		log.Fatal(err)
	}
	if err := echo.Call("Register", func(x int64) int64 { return x + 1 }); err != nil {
		log.Fatal(err)
	}
	fn := fx.Echo.Proc()
	if fn == nil {
		log.Fatal("clambench: registration did not reach the server")
	}
	return measureCost(n, func() { fn(1) })
}

// --- Ablations -----------------------------------------------------------------

func ablateBatching(n int) {
	run := func(opts ...core.DialOption) time.Duration {
		fx, c1, cleanup := benchFixture("unix", nil)
		defer cleanup()
		defer c1.Close()
		c2, err := core.Dial(fx.Network, fx.Addr,
			append([]core.DialOption{core.WithClientLog(func(string, ...any) {})}, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		defer c2.Close()
		rem, err := c2.NamedObject("pinger")
		if err != nil {
			log.Fatal(err)
		}
		const burst = 32
		return measure(n/4, func() {
			for j := 0; j < burst; j++ {
				if err := rem.Async("Ping"); err != nil {
					log.Fatal(err)
				}
			}
			if err := c2.Sync(); err != nil {
				log.Fatal(err)
			}
		})
	}
	batched := run(core.WithMaxBatch(64))
	unbatched := run(core.WithoutClientBatching())
	fmt.Printf("  A-1 batching: 32 async calls+sync — batched %v, unbatched %v (%.2fx)\n",
		batched, unbatched, float64(unbatched)/float64(batched))
}

func ablateSweepPlacement(n int) {
	const moves = 32
	boot := func() (*core.Server, *wm.Screen, string) {
		lib := dynload.NewLibrary()
		wm.MustRegister(lib, wm.Config{Width: 300, Height: 300})
		srv := core.NewServer(lib, core.WithServerLog(func(string, ...any) {}))
		sobj, _, err := srv.CreateInstance("screen", 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetNamed("screen", sobj)
		wobj, _, err := srv.CreateInstance("window", 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetNamed("basewindow", wobj)
		dir, err := os.MkdirTemp("", "clambench-wm")
		if err != nil {
			log.Fatal(err)
		}
		ln, err := srv.Listen("unix", dir+"/clam.sock")
		if err != nil {
			log.Fatal(err)
		}
		return srv, sobj.(*wm.Screen), ln.Addr().String()
	}
	drive := func(scr *wm.Screen) {
		scr.InjectMouse(wm.MouseEvent{Kind: wm.MouseDown, X: 10, Y: 10, Buttons: wm.ButtonLeft})
		for d := int16(1); d <= moves; d++ {
			scr.InjectMouse(wm.MouseEvent{Kind: wm.MouseMove, X: 10 + d, Y: 10 + d})
		}
		scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseUp, X: 10 + moves, Y: 10 + moves})
	}

	// Builtin placement.
	scr := wm.NewScreen(300, 300, nil)
	base := wm.NewBaseWindow(scr)
	sw := wm.NewSweep()
	sw.SetTransparent(true)
	sw.Attach(base)
	sw.OnCreated(func(wm.Rect) {})
	builtin := measure(n, func() { drive(scr) })

	// Server-loaded placement.
	srv, scr2, sock := boot()
	c, err := core.Dial("unix", sock, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		log.Fatal(err)
	}
	baseRem, _ := c.NamedObject("basewindow")
	sweepRem, err := c.NewExact("sweep", 1)
	if err != nil {
		log.Fatal(err)
	}
	must(sweepRem.Call("Attach", baseRem))
	must(sweepRem.Call("SetTransparent", true))
	created := make(chan wm.Rect, 1)
	must(sweepRem.Call("OnCreated", func(r wm.Rect) { created <- r }))
	server := measure(n, func() {
		drive(scr2)
		<-created
	})
	c.Close()
	srv.Close()

	// Client-side placement.
	srv3, scr3, sock3 := boot()
	c3, err := core.Dial("unix", sock3, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		log.Fatal(err)
	}
	base3, _ := c3.NamedObject("basewindow")
	done := make(chan struct{}, 1)
	var anchor wm.Point
	must(base3.Call("PostMouse", func(ev wm.MouseEvent) {
		switch ev.Kind {
		case wm.MouseDown:
			anchor = ev.Pos()
		case wm.MouseUp:
			_ = anchor
			done <- struct{}{}
		}
	}))
	client := measure(n, func() {
		drive(scr3)
		<-done
	})
	c3.Close()
	srv3.Close()

	fmt.Printf("  A-2 sweep placement (%d-move gesture): builtin %v, server-loaded %v, client-side %v (client/server %.1fx)\n",
		moves, builtin, server, client, float64(client)/float64(server))
}

func ablateTaskReuse(n int) {
	run := func(opts ...task.Option) time.Duration {
		s := task.New(opts...)
		defer s.Close()
		return measure(n, func() {
			done := make(chan struct{})
			if err := s.Spawn(func(*task.Task) { close(done) }); err != nil {
				log.Fatal(err)
			}
			<-done
		})
	}
	pooled := run()
	fresh := run(task.WithoutReuse())
	fmt.Printf("  A-3 task reuse: pooled %v, fresh-per-event %v (%.2fx)\n",
		pooled, fresh, float64(fresh)/float64(pooled))
}

func ablateTreeBundling(n int) {
	reg := bundle.NewRegistry()
	root := bundle.NewTree(6)
	typ := reflect.TypeOf(root)
	node := reg.MustCompile(typ)
	closure, err := reg.CompileClosure(typ)
	if err != nil {
		log.Fatal(err)
	}
	run := func(f bundle.Func) (time.Duration, int) {
		var size int
		d := measure(n, func() {
			var buf bytes.Buffer
			if err := f(&bundle.Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(root)); err != nil {
				log.Fatal(err)
			}
			size = buf.Len()
			out := reflect.New(typ).Elem()
			if err := f(&bundle.Ctx{}, xdr.NewDecoder(&buf), out); err != nil {
				log.Fatal(err)
			}
		})
		return d, size
	}
	nd, ns := run(node)
	cd, cs := run(closure)
	ud, us := run(bundle.NodeAndChildrenBundler)
	fmt.Printf("  A-4 tree bundling (63-node threaded tree): node-only %v/%dB, closure %v/%dB, user %v/%dB\n",
		nd, ns, cd, cs, ud, us)
}

func ablateHandles(n int) {
	tbl := handle.NewTable()
	type obj struct{ x int }
	h, err := tbl.Put(&obj{}, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	d := measure(n, func() {
		if _, err := tbl.Get(h); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("  A-5 handle validation: %v per lookup (tag check included)\n", d)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
