// Mesh routing rows (BENCH_5): what a federated-mesh hop costs. The
// matrix prices a synchronous call on an object owned by the entered
// member (local), the same call routed one mesh hop to another owner
// (routed), and an upcall chained back across that hop — against two
// ablation baselines: a plain no-mesh server (the 1-peer degenerate case
// must stay at parity with it) and the old vertical chain's forwarded
// call (the mesh hop rides the identical peerLink machinery, so routed
// and chain numbers should agree).
//
// Members listen on real unix sockets — the hop crosses the same wire a
// deployment would — and every row is verified for exactness before it
// is timed (async adds land exactly, triggers return the handler's
// answer), so a row that measures a broken path dies instead of
// reporting it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"

	"clam/internal/core"
	"clam/internal/dynload"
)

var (
	meshOnly  = flag.Bool("mesh", false, "run only the mesh routing matrix (BENCH_5 rows)")
	meshIters = flag.Int("mesh-iters", 400, "iterations per mesh row")
	meshJSON  = flag.String("mesh-json", "", "write mesh results (BENCH_5.json) to this path")
)

// meshTally is the bench class placed into the mesh: a counter plus an
// upcall trigger, so one class exercises both directions across the hop.
type meshTally struct {
	mu    sync.Mutex
	total int64
	fn    func(int32) int32
}

func (t *meshTally) Add(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total += n
}

func (t *meshTally) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

func (t *meshTally) Register(fn func(int32) int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fn = fn
}

func (t *meshTally) Trigger(x int32) (int32, error) {
	t.mu.Lock()
	fn := t.fn
	t.mu.Unlock()
	if fn == nil {
		return 0, fmt.Errorf("no handler registered")
	}
	return fn(x), nil
}

func meshBenchLibrary() *dynload.Library {
	lib := dynload.NewLibrary()
	lib.MustRegister(dynload.Class{
		Name: "tally", Version: 1, Type: reflect.TypeOf(&meshTally{}),
		New: func(any) (any, error) { return &meshTally{}, nil },
	})
	return lib
}

func quietServer() core.ServerOption { return core.WithServerLog(func(string, ...any) {}) }

// meshBenchFixture is a full mesh of servers on unix sockets plus a
// client entered at the first member.
type meshBenchFixture struct {
	dir    string
	names  []string
	srvs   map[string]*core.Server
	paths  map[string]string
	client *core.Client
}

func newMeshBenchFixture(names []string) *meshBenchFixture {
	dir, err := os.MkdirTemp("", "clam-mesh-bench")
	if err != nil {
		log.Fatal(err)
	}
	fx := &meshBenchFixture{
		dir:   dir,
		names: names,
		srvs:  make(map[string]*core.Server),
		paths: make(map[string]string),
	}
	for i, name := range names {
		srv := core.NewServer(meshBenchLibrary(), quietServer())
		path := filepath.Join(dir, fmt.Sprintf("m%d.sock", i))
		if _, err := srv.Listen("unix", path); err != nil {
			log.Fatal(err)
		}
		fx.srvs[name] = srv
		fx.paths[name] = path
	}
	for _, name := range names {
		var peers []core.MeshPeer
		for _, other := range names {
			if other != name {
				peers = append(peers, core.MeshPeer{Name: other, Network: "unix", Addr: fx.paths[other]})
			}
		}
		if err := fx.srvs[name].JoinMesh(core.MeshPeer{Name: name, Network: "unix", Addr: fx.paths[name]}, peers...); err != nil {
			log.Fatalf("clambench: JoinMesh(%s): %v", name, err)
		}
	}
	fx.client, err = core.Dial("unix", fx.paths[names[0]], quietClient())
	if err != nil {
		log.Fatal(err)
	}
	return fx
}

// tallyOwnedBy probes names until the directory assigns one to owner,
// creates it there, and returns the client's remote for it.
func (fx *meshBenchFixture) tallyOwnedBy(owner string) *core.Remote {
	entry := fx.srvs[fx.names[0]]
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("tally-%s-%d", owner, i)
		if got, _ := entry.MeshOwner(name); got != owner {
			continue
		}
		if err := entry.MeshCreateNamed("tally", name); err != nil {
			log.Fatalf("clambench: MeshCreateNamed(%s): %v", name, err)
		}
		r, err := fx.client.NamedObject(name)
		if err != nil {
			log.Fatalf("clambench: NamedObject(%s): %v", name, err)
		}
		return r
	}
	log.Fatalf("clambench: directory never assigned a name to %s", owner)
	return nil
}

func (fx *meshBenchFixture) close() {
	fx.client.Close()
	for _, srv := range fx.srvs {
		srv.Close()
	}
	os.RemoveAll(fx.dir)
}

// verifyTally proves the path carries batched asyncs exactly before it is
// timed: k adds, a Sync, and the total must have grown by exactly k.
func verifyTally(c *core.Client, r *core.Remote, k int64) {
	var before, after int64
	if err := r.CallInto("Total", []any{&before}); err != nil {
		log.Fatalf("clambench: mesh verify Total: %v", err)
	}
	for i := int64(0); i < k; i++ {
		if err := r.Async("Add", int64(1)); err != nil {
			log.Fatalf("clambench: mesh verify Add: %v", err)
		}
	}
	if err := c.Sync(); err != nil {
		log.Fatalf("clambench: mesh verify Sync: %v", err)
	}
	if err := r.CallInto("Total", []any{&after}); err != nil {
		log.Fatalf("clambench: mesh verify Total: %v", err)
	}
	if after-before != k {
		log.Fatalf("clambench: mesh path lost adds: %d of %d landed", after-before, k)
	}
}

// --- Report -----------------------------------------------------------------

type meshRowResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

type meshReport struct {
	Schema           string          `json:"schema"`
	Go               string          `json:"go"`
	Iters            int             `json:"iters"`
	Rows             []meshRowResult `json:"rows"`
	RoutedOverLocal  float64         `json:"routed_over_local"`
	SoloOverDirect   float64         `json:"solo_over_direct"`
	RoutedOverChain  float64         `json:"routed_over_chain"`
	UpcallOverRouted float64         `json:"upcall_over_routed"`
}

// runMesh measures the matrix, prints the table and parity checks, and
// optionally writes BENCH_5.json.
func runMesh(n int, jsonPath string) {
	if n < 20 {
		n = 20
	}
	rep := meshReport{Schema: "clam-bench-mesh-v1", Go: runtime.Version(), Iters: n}
	rows := map[string]cost{}
	add := func(name string, c cost) {
		rows[name] = c
		rep.Rows = append(rep.Rows, meshRowResult{
			Name:     name,
			NsPerOp:  float64(c.dur.Nanoseconds()),
			BytesOp:  c.bytesOp,
			AllocsOp: c.allocsOp,
		})
	}

	// Baseline: a plain server, no mesh anywhere near it.
	{
		srv := core.NewServer(meshBenchLibrary(), quietServer())
		dir, err := os.MkdirTemp("", "clam-mesh-bench")
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, "direct.sock")
		if _, err := srv.Listen("unix", path); err != nil {
			log.Fatal(err)
		}
		obj, _, err := srv.CreateInstance("tally", 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetNamed("t", obj)
		c, err := core.Dial("unix", path, quietClient())
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.NamedObject("t")
		if err != nil {
			log.Fatal(err)
		}
		verifyTally(c, r, 100)
		var total int64
		add("direct_call", measureCost(n, func() {
			if err := r.CallInto("Total", []any{&total}); err != nil {
				log.Fatal(err)
			}
		}))
		c.Close()
		srv.Close()
		os.RemoveAll(dir)
	}

	// Ablation: a 1-member mesh degenerates to the same local serve path.
	{
		fx := newMeshBenchFixture([]string{"solo"})
		r := fx.tallyOwnedBy("solo")
		verifyTally(fx.client, r, 100)
		var total int64
		add("mesh_solo_call", measureCost(n, func() {
			if err := r.CallInto("Total", []any{&total}); err != nil {
				log.Fatal(err)
			}
		}))
		if routed := fx.srvs["solo"].Metrics().Mesh.RoutedNamed; routed != 0 {
			log.Fatalf("clambench: solo mesh routed %d resolutions; want 0", routed)
		}
		fx.close()
	}

	// The old vertical hop: a chain-forwarded call through a middle tier,
	// over the same unix-socket wire the mesh hop crosses.
	{
		dir, err := os.MkdirTemp("", "clam-mesh-bench")
		if err != nil {
			log.Fatal(err)
		}
		bottom := core.NewServer(meshBenchLibrary(), quietServer())
		bottomPath := filepath.Join(dir, "bottom.sock")
		if _, err := bottom.Listen("unix", bottomPath); err != nil {
			log.Fatal(err)
		}
		obj, _, err := bottom.CreateInstance("tally", 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		bottom.SetNamed("t", obj)
		mid := core.NewServer(meshBenchLibrary(), quietServer())
		midPath := filepath.Join(dir, "mid.sock")
		if _, err := mid.Listen("unix", midPath); err != nil {
			log.Fatal(err)
		}
		up, err := mid.DialUpstream("unix", bottomPath, quietClient())
		if err != nil {
			log.Fatal(err)
		}
		if err := mid.ImportNamed(up, "t"); err != nil {
			log.Fatal(err)
		}
		c, err := core.Dial("unix", midPath, quietClient())
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.NamedObject("t")
		if err != nil {
			log.Fatal(err)
		}
		verifyTally(c, r, 100)
		var total int64
		add("chain_forwarded_call", measureCost(n, func() {
			if err := r.CallInto("Total", []any{&total}); err != nil {
				log.Fatal(err)
			}
		}))
		c.Close()
		mid.Close()
		bottom.Close()
		os.RemoveAll(dir)
	}

	// The mesh matrix proper: a 3-member mesh, client entered at "a".
	{
		fx := newMeshBenchFixture([]string{"a", "b", "c"})
		local := fx.tallyOwnedBy("a")
		routed := fx.tallyOwnedBy("b")
		verifyTally(fx.client, local, 100)
		verifyTally(fx.client, routed, 100)

		var total int64
		add("mesh_local_call", measureCost(n, func() {
			if err := local.CallInto("Total", []any{&total}); err != nil {
				log.Fatal(err)
			}
		}))
		add("mesh_routed_call", measureCost(n, func() {
			if err := routed.CallInto("Total", []any{&total}); err != nil {
				log.Fatal(err)
			}
		}))

		// Routed upcall: the handler lives in the client, the trigger runs
		// at the owner, the upcall chains owner → entry member → client.
		if err := routed.Call("Register", func(x int32) int32 { return 2 * x }); err != nil {
			log.Fatal(err)
		}
		var doubled int32
		add("mesh_routed_upcall", measureCost(n, func() {
			if err := routed.CallInto("Trigger", []any{&doubled}, int32(21)); err != nil {
				log.Fatal(err)
			}
			if doubled != 42 {
				log.Fatalf("clambench: routed upcall returned %d, want 42", doubled)
			}
		}))
		if ms := fx.srvs["a"].Metrics().Mesh; !ms.Enabled || ms.RoutedNamed == 0 {
			log.Fatalf("clambench: mesh matrix never routed (stats %+v)", ms)
		}
		fx.close()
	}

	ns := func(name string) float64 { return float64(rows[name].dur.Nanoseconds()) }
	rep.RoutedOverLocal = ns("mesh_routed_call") / ns("mesh_local_call")
	rep.SoloOverDirect = ns("mesh_solo_call") / ns("direct_call")
	rep.RoutedOverChain = ns("mesh_routed_call") / ns("chain_forwarded_call")
	rep.UpcallOverRouted = ns("mesh_routed_upcall") / ns("mesh_routed_call")

	fmt.Println("Mesh routing matrix (unix sockets, 3-member mesh, client entered at one member):")
	fmt.Printf("  %-24s %12s %12s %10s\n", "", "µs/op", "B/op", "allocs/op")
	for _, r := range rep.Rows {
		fmt.Printf("  %-24s %12.2f %12.0f %10.1f\n", r.Name, r.NsPerOp/1e3, r.BytesOp, r.AllocsOp)
	}
	fmt.Println()
	fmt.Println("Mesh shape checks:")
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	check(fmt.Sprintf("1-peer mesh at parity with the plain server (x%.2f, want < 1.5)", rep.SoloOverDirect),
		rep.SoloOverDirect < 1.5)
	check(fmt.Sprintf("routed call at parity with the chain-forwarded call (x%.2f, want 0.5-2.0)", rep.RoutedOverChain),
		rep.RoutedOverChain > 0.5 && rep.RoutedOverChain < 2.0)
	check(fmt.Sprintf("routing costs one extra hop over local (x%.2f, want > 1)", rep.RoutedOverLocal),
		rep.RoutedOverLocal > 1)

	if jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
}
