// Transport matrix (BENCH_6): the same call, upcall, and throughput
// workloads priced across every byte transport the stack speaks — TCP and
// UNIX-domain sockets (vectored writev batching), an in-process pipe
// (protocol cost without kernel IPC), and the shared-memory ring pair
// (WithSharedMemory): mmap'd SPSC rings with eventfd doorbells armed only
// when a side is about to sleep, so the hot path crosses address spaces
// without a syscall. The ablation row re-dials the shm server with
// WithoutSharedMemory, isolating what the rings buy over the very socket
// they replace.
//
// The acceptance bar this matrix pins (EXPERIMENTS.md §BENCH_6): the shm
// call row under 5µs round-trip at ≤10 allocs/op, and the socket rows at
// parity or better with the embedded pre-change capture.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"clam/internal/benchlib"
	"clam/internal/core"
	"clam/internal/shm"
)

var (
	transportOnly = flag.Bool("transport", false, "run only the transport matrix (BENCH_6 rows)")
	transportN    = flag.Int("transport-iters", 2000, "iterations per transport row")
	transportJSON = flag.String("transport-json", "", "write transport results (BENCH_6.json) to this path")
)

// transportCase is one column of the matrix: how to boot the server and
// how to dial it.
type transportCase struct {
	name    string
	network string
	srvOpts []core.ServerOption
	dialOps []core.DialOption
	selfD   bool // dial through core.SelfDial (in-memory pipe)
	skip    string
}

func transportCases() []transportCase {
	cases := []transportCase{
		{name: "unix", network: "unix"},
		{name: "tcp", network: "tcp"},
		{name: "pipe", network: "unix", selfD: true},
	}
	shmCase := transportCase{
		name:    "shm",
		network: "unix",
		srvOpts: []core.ServerOption{core.WithSharedMemory(0)},
	}
	ablation := transportCase{
		name:    "shm_off_ablation",
		network: "unix",
		srvOpts: []core.ServerOption{core.WithSharedMemory(0)},
		dialOps: []core.DialOption{core.WithoutSharedMemory()},
	}
	if !shm.Supported() {
		shmCase.skip = "unsupported platform"
		ablation.skip = "unsupported platform"
	}
	return append(cases, shmCase, ablation)
}

// transportFixture boots one server+client pair for a matrix cell.
func transportFixture(tc transportCase) (*benchlib.Fixture, *core.Client, func()) {
	dir, err := os.MkdirTemp("", "clambench-tr")
	if err != nil {
		log.Fatal(err)
	}
	fx, err := benchlib.Boot(tc.network, dir, tc.srvOpts...)
	if err != nil {
		log.Fatal(err)
	}
	var c *core.Client
	if tc.selfD {
		c, err = core.SelfDial(fx.Server, quietClient())
	} else {
		c, err = core.Dial(fx.Network, fx.Addr, append([]core.DialOption{quietClient()}, tc.dialOps...)...)
	}
	if err != nil {
		log.Fatal(err)
	}
	return fx, c, func() {
		c.Close()
		fx.Server.Close()
		os.RemoveAll(dir)
	}
}

// transportCall prices the synchronous call row on one transport.
func transportCall(n int, tc transportCase) cost {
	fx, c, cleanup := transportFixture(tc)
	defer cleanup()
	_ = fx
	rem, err := c.NamedObject("pinger")
	if err != nil {
		log.Fatal(err)
	}
	var out int64
	return measureCost(n, func() {
		if err := rem.CallInto("Ping", []any{&out}); err != nil {
			log.Fatal(err)
		}
	})
}

// transportUpcall prices the distributed-upcall row (server → client →
// server) on one transport.
func transportUpcall(n int, tc transportCase) cost {
	fx, c, cleanup := transportFixture(tc)
	defer cleanup()
	echo, err := c.NamedObject("echo")
	if err != nil {
		log.Fatal(err)
	}
	if err := echo.Call("Register", func(x int64) int64 { return x + 1 }); err != nil {
		log.Fatal(err)
	}
	fn := fx.Echo.Proc()
	if fn == nil {
		log.Fatal("clambench: registration did not reach the server")
	}
	return measureCost(n, func() { fn(1) })
}

// transportThroughput prices a pipelined async burst: 64 calls and one
// Sync per op, the shape the vectored writev path batches.
func transportThroughput(n int, tc transportCase) cost {
	fx, c, cleanup := transportFixture(tc)
	defer cleanup()
	_ = fx
	rem, err := c.NamedObject("pinger")
	if err != nil {
		log.Fatal(err)
	}
	const burst = 64
	per := measureCost(n/8+8, func() {
		for i := 0; i < burst; i++ {
			if err := rem.Async("Ping"); err != nil {
				log.Fatal(err)
			}
		}
		if err := c.Sync(); err != nil {
			log.Fatal(err)
		}
	})
	// Report per call, not per burst, so the column is comparable.
	per.dur /= burst
	per.bytesOp /= burst
	per.allocsOp /= burst
	return per
}

// preChangeTransport is the matrix captured on the tree of commit 91c5b7a
// (bufio single-stream writes, no shm, Intel Xeon @ 2.70GHz) — the
// pre-change baseline BENCH_6's acceptance compares against. remote_*
// rows are clambench Fig 5.1 captures (BENCH_3.json) on that tree.
var preChangeTransport = jsonBaseline{
	Source: "clambench Fig5.1 rows, pre-shm tree (91c5b7a): bufio writes, socket-only",
	Results: []jsonResult{
		{Name: "call_unix", NsPerOp: 8831, BytesPerOp: 720.372, AllocsPerOp: 17.0045},
		{Name: "upcall_unix", NsPerOp: 9400, BytesPerOp: 736.22, AllocsPerOp: 20.003},
		{Name: "call_tcp", NsPerOp: 12082, BytesPerOp: 720.349, AllocsPerOp: 17.006},
	},
}

type transportReport struct {
	Schema   string       `json:"schema"`
	Go       string       `json:"go"`
	Iters    int          `json:"iters"`
	Rows     []jsonResult `json:"rows"`
	Skipped  []string     `json:"skipped,omitempty"`
	Baseline jsonBaseline `json:"baseline_pre_change"`
}

// runTransport measures the matrix, prints the table, and optionally
// writes BENCH_6.json.
func runTransport(n int, jsonOut string) {
	fmt.Println("CLAM transport matrix — BENCH_6: one protocol, four byte transports")
	fmt.Println("(call: sync round-trip; upcall: server→client→server; tput: 64-call async burst, per call)")
	fmt.Println()
	fmt.Printf("%-18s %14s %10s %10s\n", "row", "measured (µs)", "B/op", "allocs/op")

	rep := transportReport{
		Schema:   "clam-bench-transport-v1",
		Go:       runtime.Version(),
		Iters:    n,
		Baseline: preChangeTransport,
	}
	var mu sync.Mutex
	emit := func(name string, c cost) {
		fmt.Printf("%-18s %14.3f %10.0f %10.1f\n",
			name, float64(c.dur.Nanoseconds())/1e3, c.bytesOp, c.allocsOp)
		mu.Lock()
		rep.Rows = append(rep.Rows, toResult(name, 0, c))
		mu.Unlock()
	}
	var callUnix, callShm cost
	for _, tc := range transportCases() {
		if tc.skip != "" {
			fmt.Printf("%-18s skipped: %s\n", tc.name, tc.skip)
			rep.Skipped = append(rep.Skipped, tc.name+": "+tc.skip)
			continue
		}
		call := transportCall(n, tc)
		emit("call_"+tc.name, call)
		emit("upcall_"+tc.name, transportUpcall(n, tc))
		emit("tput_"+tc.name, transportThroughput(n, tc))
		switch tc.name {
		case "unix":
			callUnix = call
		case "shm":
			callShm = call
		}
	}

	if callShm.dur > 0 {
		fmt.Println()
		fmt.Println("Acceptance checks:")
		status := func(ok bool) string {
			if ok {
				return "PASS"
			}
			return "FAIL"
		}
		fmt.Printf("  [%s] shm call < 5µs or >= 1.7x faster than unix (shm %.3fµs, unix %.3fµs)\n",
			status(callShm.dur < 5*time.Microsecond ||
				float64(callUnix.dur) >= 1.7*float64(callShm.dur)),
			float64(callShm.dur.Nanoseconds())/1e3, float64(callUnix.dur.Nanoseconds())/1e3)
		fmt.Printf("  [%s] shm call row <= 10 allocs/op (%.1f)\n",
			status(callShm.allocsOp <= 10), callShm.allocsOp)
		fmt.Printf("  [%s] unix call at parity or better vs pre-change capture (%.0fns vs %.0fns +5%% band)\n",
			status(float64(callUnix.dur.Nanoseconds()) <= preChangeTransport.Results[0].NsPerOp*1.05),
			float64(callUnix.dur.Nanoseconds()), preChangeTransport.Results[0].NsPerOp)
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
}
