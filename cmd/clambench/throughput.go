// Throughput rows for the per-object dispatch executor: N client
// sessions × M in-flight pipelined synchronous calls, same-object vs
// cross-object, one hop vs a two-hop forwarding chain, and a
// worker-count sweep. Each handler parks in Pinger.Hold for ~50µs — the
// stand-in for a handler that waits on I/O or a lower layer — so the
// dispatch engine, not the wire, is the bottleneck: the serial
// dispatcher admits one handler at a time while the per-object executor
// overlaps independent objects. Calls are synchronous from separate
// goroutines because §3.4 pins one session's asynchronous calls to
// program order; only independent synchronous calls may legally overlap.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"clam/internal/benchlib"
	"clam/internal/core"
	"clam/internal/dynload"
)

// holdMicros matches the Hold argument bench_test.go uses, so `go test
// -bench Throughput` and clambench measure the same workload.
const holdMicros = int64(50)

// tputConfig names one throughput row.
type tputConfig struct {
	key      string
	clients  int
	inflight int
	hops     int
	cross    bool
	workers  int // 0 = engine default, >0 = WithDispatchWorkers, -1 = serial dispatcher
}

func (c tputConfig) serverOpts() []core.ServerOption {
	switch {
	case c.workers < 0:
		return []core.ServerOption{core.WithPerObjectDispatch(false)}
	case c.workers > 0:
		return []core.ServerOption{core.WithDispatchWorkers(c.workers)}
	}
	return nil
}

// benchThroughput completes ~n Hold calls spread over clients × inflight
// workers and returns the mean wall time per completed call; throughput
// is its inverse.
func benchThroughput(n int, cfg tputConfig) cost {
	dir, err := os.MkdirTemp("", "clambench-tput")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fx, err := benchlib.Boot("unix", dir, cfg.serverOpts()...)
	if err != nil {
		log.Fatal(err)
	}
	defer fx.Server.Close()

	names := make([]string, cfg.clients)
	for i := range names {
		names[i] = "pinger"
	}
	if cfg.cross {
		if _, err := fx.PublishPingers(cfg.clients); err != nil {
			log.Fatal(err)
		}
		for i := range names {
			names[i] = fmt.Sprintf("pinger%d", i)
		}
	}

	network, addr := fx.Network, fx.Addr
	if cfg.hops == 2 {
		lib := dynload.NewLibrary()
		if err := benchlib.Register(lib); err != nil {
			log.Fatal(err)
		}
		mid := core.NewServer(lib, append([]core.ServerOption{
			core.WithServerLog(func(string, ...any) {}),
		}, cfg.serverOpts()...)...)
		defer mid.Close()
		up, err := core.SelfDialUpstream(mid, fx.Server, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			log.Fatal(err)
		}
		uniq := make([]string, 0, len(names))
		seen := make(map[string]bool)
		for _, nm := range names {
			if !seen[nm] {
				seen[nm] = true
				uniq = append(uniq, nm)
			}
		}
		if err := mid.ImportNamed(up, uniq...); err != nil {
			log.Fatal(err)
		}
		ln, err := mid.Listen("unix", dir+"/mid.sock")
		if err != nil {
			log.Fatal(err)
		}
		network, addr = "unix", ln.Addr().String()
	}

	conns := make([]*core.Client, cfg.clients)
	objs := make([]*core.Remote, cfg.clients)
	for i := range conns {
		c, err := core.Dial(network, addr, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
		if objs[i], err = c.NamedObject(names[i]); err != nil {
			log.Fatal(err)
		}
	}

	runOps := func(per int) {
		var wg sync.WaitGroup
		for i := 0; i < cfg.clients; i++ {
			for j := 0; j < cfg.inflight; j++ {
				wg.Add(1)
				go func(obj *core.Remote) {
					defer wg.Done()
					var out int64
					for k := 0; k < per; k++ {
						if err := obj.CallInto("Hold", []any{&out}, holdMicros); err != nil {
							log.Fatal(err)
						}
					}
				}(objs[i])
			}
		}
		wg.Wait()
	}

	per := n / (cfg.clients * cfg.inflight)
	if per < 1 {
		per = 1
	}
	runOps(2) // warm: connections, handle caches, worker pool
	start := time.Now()
	runOps(per)
	total := per * cfg.clients * cfg.inflight
	return cost{dur: time.Since(start) / time.Duration(total)}
}

// callsPerSec renders a per-op duration as throughput.
func callsPerSec(c cost) float64 {
	if c.dur <= 0 {
		return 0
	}
	return 1e9 / float64(c.dur.Nanoseconds())
}

// runThroughput measures the matrix and prints the table; the returned
// rows feed the JSON report.
func runThroughput(n int) []row {
	configs := []tputConfig{
		{key: "same_object_8x4", clients: 8, inflight: 4, hops: 1, cross: false, workers: 8},
		{key: "same_object_8x4_serial", clients: 8, inflight: 4, hops: 1, cross: false, workers: -1},
		{key: "cross_object_8x4", clients: 8, inflight: 4, hops: 1, cross: true, workers: 8},
		{key: "cross_object_8x4_serial", clients: 8, inflight: 4, hops: 1, cross: true, workers: -1},
		{key: "cross_object_1x4", clients: 1, inflight: 4, hops: 1, cross: true, workers: 8},
		{key: "cross_object_4x4", clients: 4, inflight: 4, hops: 1, cross: true, workers: 8},
		{key: "twohop_cross_4x2", clients: 4, inflight: 2, hops: 2, cross: true, workers: 4},
		{key: "twohop_cross_4x2_serial", clients: 4, inflight: 2, hops: 2, cross: true, workers: -1},
		// Worker sweep: same cross-object load, pool size 1 → 8.
		{key: "cross_object_8x4_w1", clients: 8, inflight: 4, hops: 1, cross: true, workers: 1},
		{key: "cross_object_8x4_w2", clients: 8, inflight: 4, hops: 1, cross: true, workers: 2},
		{key: "cross_object_8x4_w4", clients: 8, inflight: 4, hops: 1, cross: true, workers: 4},
	}
	fmt.Println()
	fmt.Println("Throughput (pipelined Hold(50µs) handlers; clients × in-flight):")
	fmt.Printf("  %-28s %14s %14s\n", "", "µs/call", "calls/sec")
	rows := make([]row, 0, len(configs))
	byKey := make(map[string]cost, len(configs))
	for _, cfg := range configs {
		c := benchThroughput(n, cfg)
		byKey[cfg.key] = c
		fmt.Printf("  %-28s %14.1f %14.0f\n", cfg.key,
			float64(c.dur.Nanoseconds())/1e3, callsPerSec(c))
		rows = append(rows, row{label: cfg.key, key: cfg.key, cost: c})
	}

	fmt.Println()
	fmt.Println("Dispatch shape checks (per-object executor vs serial dispatcher):")
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	check("cross-object 8x4 at least 2x the live serial ablation",
		2*byKey["cross_object_8x4"].dur <= byKey["cross_object_8x4_serial"].dur)
	if base := baselineThroughputNs("cross_object_8x4_serial"); base > 0 {
		check("cross-object 8x4 at least 2x the embedded pre-change baseline",
			2*float64(byKey["cross_object_8x4"].dur.Nanoseconds()) <= base)
	}
	check("same-object stays serialized: per-object within 2x of serial",
		byKey["same_object_8x4"].dur <= 2*byKey["same_object_8x4_serial"].dur)
	check("two-hop chain gains from pipelined relays",
		byKey["twohop_cross_4x2"].dur < byKey["twohop_cross_4x2_serial"].dur)
	return rows
}

// baselineThroughputNs looks a row up in the embedded pre-change
// throughput baseline (0 when absent).
func baselineThroughputNs(key string) float64 {
	for _, r := range preChangeThroughput.Results {
		if r.Name == key {
			return r.NsPerOp
		}
	}
	return 0
}
