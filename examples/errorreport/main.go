// Errorreport: the paper's §4.3 fault-handling pattern. A buggy class is
// dynamically loaded into the server; the server catches its faults
// (memory errors, divide by zero) instead of crashing, keeps serving, and
// notifies the client with an error-report upcall carried by a fresh
// task. Run with: go run ./examples/errorreport
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"clam"
)

// Flaky is a user-supplied module with bugs the server must survive.
type Flaky struct {
	divisor int64
	items   []string
}

// SetDivisor configures the class; zero plants a divide-by-zero bomb.
func (f *Flaky) SetDivisor(n int64) { f.divisor = n }

// Ratio divides — and faults when the divisor was left at zero.
func (f *Flaky) Ratio(x int64) int64 {
	return x / f.divisor // divide by zero when misconfigured
}

// Item indexes without a bounds check — the paper's memory fault.
func (f *Flaky) Item(i int64) string {
	return f.items[i]
}

// Fine is a healthy method proving the instance still works after faults.
func (f *Flaky) Fine() int64 { return 42 }

func main() {
	lib := clam.NewLibrary()
	lib.MustRegister(clam.Class{
		Name:    "flaky",
		Version: 1,
		Type:    reflect.TypeOf(&Flaky{}),
		New:     func(env any) (any, error) { return &Flaky{}, nil },
	})
	srv := clam.NewServer(lib, clam.WithServerLog(func(string, ...any) {}))
	defer srv.Close()

	dir, err := os.MkdirTemp("", "clam-errorreport")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "clam.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		log.Fatal(err)
	}

	c, err := clam.Dial("unix", sock, clam.WithClientLog(func(string, ...any) {}))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Register for error-report upcalls before poking the faulty class.
	reports := make(chan clam.FaultReport, 4)
	c.OnFault(func(r clam.FaultReport) { reports <- r })

	flaky, err := c.New("flaky", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Synchronous call: the fault comes back as the call's status.
	var out int64
	err = flaky.CallInto("Ratio", []any{&out}, int64(10))
	fmt.Printf("sync fault reported to caller: %v\n", err != nil)

	// Asynchronous call: no reply exists, so the server starts a task
	// that reports the fault on the upcall channel.
	if err := flaky.Async("Item", int64(99)); err != nil {
		log.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	r := <-reports
	fmt.Printf("async fault upcall: class=%s method=%s\n", r.Class, r.Method)

	// The server survived both faults; the class still answers.
	var fine int64
	if err := flaky.CallInto("Fine", []any{&fine}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server alive, healthy method returns %d\n", fine)
}
