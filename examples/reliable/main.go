// Reliable: the ARQ extension of the layered protocol stack (§1's
// motivating workload, extended with acknowledgments and retransmission).
// A sender pushes messages across a simulated lossy device; the receiving
// stack discards corrupt frames, reorders, deduplicates, acknowledges,
// and still delivers every message intact. Run with:
// go run ./examples/reliable
package main

import (
	"fmt"
	"math/rand/v2"

	"clam/internal/proto"
)

func main() {
	const lossRate = 0.25
	rng := rand.New(rand.NewPCG(2026, 7))

	// Receiving stack: framer → transport → assembler.
	rxFramer := proto.NewFramer()
	rxTransport := proto.NewTransport()
	rxTransport.Attach(rxFramer)
	rxAssembler := proto.NewAssembler()
	rxAssembler.Attach(rxTransport)

	var delivered []string
	rxAssembler.OnMessage(func(m proto.Message) {
		delivered = append(delivered, string(m.Data))
	})

	// The sender's reverse channel carries acknowledgments.
	ackFramer := proto.NewFramer()

	// Both directions lose a quarter of their chunks.
	lost := 0
	forward := func(b []byte) {
		if rng.Float64() < lossRate {
			lost++
			return
		}
		rxFramer.Feed(b)
	}
	reverse := func(b []byte) {
		if rng.Float64() < lossRate {
			lost++
			return
		}
		ackFramer.Feed(b)
	}

	sender := proto.NewReliableSender(8, forward)
	sender.AttachReverse(ackFramer)
	rxTransport.EmitAcks(func(next uint32) {
		if fb, err := proto.EncodeFrame(proto.EncodeAck(next)); err == nil {
			reverse(fb)
		}
	})

	messages := []string{
		"upcalls structure the layers",
		"acknowledgments flow back down",
		"retransmission fills the gaps",
	}
	for _, m := range messages {
		if err := sender.Send([]byte(m)); err != nil {
			fmt.Println("send:", err)
			return
		}
	}

	rounds := 0
	for len(delivered) < len(messages) && rounds < 500 {
		sender.Tick() // the retransmission timer
		rounds++
	}

	for i, m := range delivered {
		fmt.Printf("delivered %d: %q\n", i+1, m)
	}
	sent, retrans, acked := sender.Stats()
	good, bad := rxFramer.Stats()
	dups, queued, _ := rxTransport.Stats()
	fmt.Printf("link dropped %d chunks; sender: %d packets + %d retransmissions (%d acked); receiver: %d frames ok, %d discarded, %d duplicates dropped, %d reordered\n",
		lost, sent, retrans, acked, good, bad, dups, queued)
	if len(delivered) == len(messages) {
		fmt.Println("all messages intact despite the loss")
	}
}
