// Mirror: incremental remote display. The client keeps a local copy of
// the server's framebuffer synchronized purely through damage upcalls —
// the server tells the client *what changed*, the client fetches just
// those rectangles. This is the display-protocol pattern the upcall
// machinery makes natural. Run with: go run ./examples/mirror
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"clam"
	"clam/internal/dynload"
	"clam/internal/wm"
)

func main() {
	lib := dynload.NewLibrary()
	wm.MustRegister(lib, wm.Config{Width: 160, Height: 120})
	srv := clam.NewServer(lib)
	defer srv.Close()

	sobj, _, err := srv.CreateInstance("screen", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	scr := sobj.(*wm.Screen)
	srv.SetNamed("screen", scr)
	wobj, _, err := srv.CreateInstance("window", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("basewindow", wobj)

	dir, err := os.MkdirTemp("", "clam-mirror")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "clam.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		log.Fatal(err)
	}

	c, err := clam.Dial("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	screen, err := c.NamedObject("screen")
	if err != nil {
		log.Fatal(err)
	}
	base, err := c.NamedObject("basewindow")
	if err != nil {
		log.Fatal(err)
	}

	// The client-side mirror, updated only through damage upcalls.
	const w, h = 160, 120
	var mu sync.Mutex
	mirror := make([]byte, w*h)
	var fetched int
	must(screen.Call("OnDamage", func(rects []wm.Rect) {
		for _, r := range rects {
			var pix []byte
			if err := screen.CallInto("ReadRect", []any{&pix}, r); err != nil {
				log.Printf("mirror: read: %v", err)
				continue
			}
			mu.Lock()
			i := 0
			for y := r.Y; y < r.Y+r.H; y++ {
				for x := r.X; x < r.X+r.W; x++ {
					mirror[int(y)*w+int(x)] = pix[i]
					i++
				}
			}
			fetched += len(pix)
			mu.Unlock()
		}
	}))

	// Draw a scene with batched asynchronous calls, then flush the damage
	// once: one upcall covers the whole burst.
	var win *clam.Remote
	must(base.CallInto("Create", []any{&win}, wm.R(20, 20, 80, 60), int64(3)))
	must(win.Async("FillRect", wm.R(5, 5, 20, 20), int64(7)))
	must(win.Async("Border", int64(9)))
	var posted int64
	must(screen.CallInto("FlushDamage", []any{&posted}))

	// Verify the mirror against the server's ground truth.
	var snapshot []byte
	must(screen.CallInto("Snapshot", []any{&snapshot}))
	mu.Lock()
	match := bytes.Equal(mirror, snapshot)
	f := fetched
	mu.Unlock()
	fmt.Printf("mirror in sync: %v (fetched %d of %d pixels — %.1f%%)\n",
		match, f, w*h, 100*float64(f)/float64(w*h))

	// A second, smaller change costs a proportionally smaller fetch.
	before := f
	must(win.Call("FillRect", wm.R(0, 0, 4, 4), int64(5)))
	must(screen.CallInto("FlushDamage", []any{&posted}))
	must(screen.CallInto("Snapshot", []any{&snapshot}))
	mu.Lock()
	match = bytes.Equal(mirror, snapshot)
	delta := fetched - before
	mu.Unlock()
	fmt.Printf("after small update: in sync: %v (fetched only %d more pixels)\n", match, delta)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
