// Sweep: the paper's §2.1 example. A client loads the sweeping class
// into the window server, drags out a rectangle, and receives the single
// "window created" event as a distributed upcall — then the same drag is
// repeated with the sweeping logic in the client (the X-style placement)
// to show how many events cross the address-space boundary in each
// design. Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clam"
	"clam/internal/dynload"
	"clam/internal/wm"
)

func main() {
	// Window server: the wm classes are loadable, none linked in until
	// requested. Screen and base window are created at startup, as in
	// §4.2.
	lib := dynload.NewLibrary()
	wm.MustRegister(lib, wm.Config{Width: 400, Height: 300})
	srv := clam.NewServer(lib)
	defer srv.Close()

	sobj, _, err := srv.CreateInstance("screen", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	scr := sobj.(*wm.Screen)
	srv.SetNamed("screen", scr)
	wobj, _, err := srv.CreateInstance("window", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("basewindow", wobj)

	dir, err := os.MkdirTemp("", "clam-sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "clam.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		log.Fatal(err)
	}

	c, err := clam.Dial("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	base, err := c.NamedObject("basewindow")
	if err != nil {
		log.Fatal(err)
	}
	screen, err := c.NamedObject("screen")
	if err != nil {
		log.Fatal(err)
	}

	drag := func(x0, y0 int16) {
		// Simulated user: press, 60 motions, release. InjectMouseWait is
		// itself an RPC here, standing in for the device driver; the
		// final call waits so the whole gesture has been delivered when
		// drag returns.
		must(screen.Call("InjectMouse", wm.MouseEvent{Kind: wm.MouseDown, X: x0, Y: y0, Buttons: wm.ButtonLeft}))
		for d := int16(1); d <= 60; d++ {
			must(screen.Async("InjectMouse", wm.MouseEvent{Kind: wm.MouseMove, X: x0 + d, Y: y0 + d/2}))
		}
		must(screen.Call("InjectMouseWait", wm.MouseEvent{Kind: wm.MouseUp, X: x0 + 60, Y: y0 + 30}))
		must(c.Sync())
	}

	// --- Placement 1: sweeping layer loaded into the server ---------------
	sweep, err := c.NewExact("sweep", 1)
	if err != nil {
		log.Fatal(err)
	}
	must(sweep.Call("Attach", base))
	must(sweep.Call("SetGrid", int64(10))) // the client's choice of alignment

	created := make(chan wm.Rect, 1)
	must(sweep.Call("OnCreated", func(r wm.Rect) {
		// The one distributed upcall: create the window from the client.
		var w *clam.Remote
		if err := base.CallInto("Create", []any{&w}, r, int64(6)); err != nil {
			log.Printf("create: %v", err)
		}
		created <- r
	}))

	beforeS, beforeR := c.SessionStats()
	drag(40, 40)
	r := <-created
	afterS, afterR := c.SessionStats()
	var moves int64
	must(sweep.CallInto("MoveCount", []any{&moves}))
	fmt.Printf("server-loaded sweep: window %v created; %d motion events handled in the server, ~%d messages crossed\n",
		r, moves, afterS+afterR-beforeS-beforeR)

	// --- Placement 2: sweeping logic in the client (X-style) --------------
	var clientMoves int
	clientDone := make(chan wm.Rect, 1)
	var anchor, cur wm.Point
	active := false
	must(base.Call("PostMouse", func(ev wm.MouseEvent) {
		// Every input event crosses to the client before being
		// interpreted.
		switch ev.Kind {
		case wm.MouseDown:
			active, anchor, cur = true, ev.Pos(), ev.Pos()
		case wm.MouseMove:
			if active {
				clientMoves++
				cur = ev.Pos()
			}
		case wm.MouseUp:
			if active {
				active = false
				r := wm.Rect{X: anchor.X, Y: anchor.Y, W: cur.X - anchor.X, H: ev.Y - anchor.Y}.Canon()
				clientDone <- r
			}
		}
	}))

	beforeS, beforeR = c.SessionStats()
	drag(150, 100)
	r2 := <-clientDone
	afterS, afterR = c.SessionStats()
	fmt.Printf("client-side sweep:   window %v computed; %d motion events crossed to the client, ~%d messages crossed\n",
		r2, clientMoves, afterS+afterR-beforeS-beforeR)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
