// Quickstart: a CLAM server with one loadable class, and a client that
// loads it, calls it synchronously and asynchronously, and receives a
// distributed upcall. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"sync"

	"clam"
)

// Counter is the class we will load into the server. It is ordinary Go
// code: the only distribution-aware part is that OnChange stores func
// values, which arrive as distributed-upcall proxies when registered from
// another address space.
type Counter struct {
	mu        sync.Mutex
	total     int64
	observers []func(int64)
}

// Add increases the counter and upcalls every observer with the new
// total.
func (c *Counter) Add(n int64) {
	c.mu.Lock()
	c.total += n
	total := c.total
	obs := append(([]func(int64))(nil), c.observers...)
	c.mu.Unlock()
	for _, fn := range obs {
		fn(total)
	}
}

// Total returns the current value.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// OnChange registers an observer procedure.
func (c *Counter) OnChange(fn func(int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observers = append(c.observers, fn)
}

func main() {
	// --- server side -----------------------------------------------------
	lib := clam.NewLibrary()
	lib.MustRegister(clam.Class{
		Name:    "counter",
		Version: 1,
		Type:    reflect.TypeOf(&Counter{}),
		New:     func(env any) (any, error) { return &Counter{}, nil },
	})
	srv := clam.NewServer(lib)
	defer srv.Close()

	dir, err := os.MkdirTemp("", "clam-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "clam.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		log.Fatal(err)
	}

	// --- client side -------------------------------------------------------
	c, err := clam.Dial("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Dynamically load the class and create an instance in the server.
	counter, err := c.New("counter", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Register for upcalls: this func runs here, in the client, whenever
	// the server-side counter changes.
	changes := make(chan int64, 16)
	if err := counter.Call("OnChange", func(total int64) {
		changes <- total
	}); err != nil {
		log.Fatal(err)
	}

	// A synchronous call: the upcall fires during it.
	if err := counter.Call("Add", int64(40)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("upcall saw total:", <-changes)

	// Asynchronous calls batch into one message; Sync flushes and waits.
	for i := 0; i < 2; i++ {
		if err := counter.Async("Add", int64(1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("upcall saw total:", <-changes)
	fmt.Println("upcall saw total:", <-changes)

	var total int64
	if err := counter.CallInto("Total", []any{&total}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("final total:", total)
}
