// Protostack: the paper's layered-network-protocol motivation (§1),
// spread across THREE address spaces. A device/transport server sits at
// the bottom; an assembly server stacks on top of it as a middle tier
// (DialUpstream); the application layer lives in the client, attached to
// the middle. Device bytes injected by the client descend two hops
// through proxy handles; every layer event climbs back up as an upcall,
// with the inter-process hops crossing as distributed upcalls:
//
//	client  ──Feed──▶ middle ──relay──▶ bottom: Framer → Transport
//	client ◀─OnMessage── middle: Assembler ◀──OnPacket upcall── bottom
//
// Run with: go run ./examples/protostack
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clam"
	"clam/internal/proto"
)

func main() {
	dir, err := os.MkdirTemp("", "clam-protostack")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Bottom address space: the device server. Framing and transport load
	// here; the transport auto-attaches to the framer through the
	// constructor environment.
	deviceLib := clam.NewLibrary()
	proto.MustRegister(deviceLib)
	device := clam.NewServer(deviceLib)
	defer device.Close()
	fobj, _, err := device.CreateInstance("framer", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	device.SetNamed("framer", fobj)
	tobj, _, err := device.CreateInstance("transport", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	device.SetNamed("transport", tobj)
	deviceSock := filepath.Join(dir, "device.sock")
	if _, err := device.Listen("unix", deviceSock); err != nil {
		log.Fatal(err)
	}

	// Middle address space: the assembly server. It is a client of the
	// device server (upstream) and a server to the application client —
	// the symmetric endpoint role the layering of §1 calls for.
	asmLib := clam.NewLibrary()
	proto.MustRegister(asmLib)
	assembly := clam.NewServer(asmLib)
	defer assembly.Close()
	up, err := assembly.DialUpstream("unix", deviceSock)
	if err != nil {
		log.Fatal(err)
	}
	// Re-export the bottom's framer and transport so the client can reach
	// the device layers through the middle: calls on the proxies are
	// relayed down one hop.
	if err := assembly.ImportNamed(up, "framer", "transport"); err != nil {
		log.Fatal(err)
	}
	aobj, _, err := assembly.CreateInstance("assembler", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	assembly.SetNamed("assembler", aobj)
	asm := aobj.(*proto.Assembler)

	// Inter-layer registration across the bottom hop (§4.1): the middle's
	// assembler registers its Packet procedure with the bottom's
	// transport. Each in-order packet now crosses the device→assembly
	// boundary as a distributed upcall.
	transport, err := up.NamedObject("transport")
	if err != nil {
		log.Fatal(err)
	}
	if err := transport.Call("OnPacket", asm.Packet); err != nil {
		log.Fatal(err)
	}

	asmSock := filepath.Join(dir, "assembly.sock")
	if _, err := assembly.Listen("unix", asmSock); err != nil {
		log.Fatal(err)
	}

	// Top address space: the application client, attached to the middle.
	c, err := clam.Dial("unix", asmSock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The application layer registers for complete messages with the
	// middle's assembler — the second upcall hop. The registration crosses
	// one address space; afterwards the assembler cannot tell this
	// observer from a local one.
	assembler, err := c.NamedObject("assembler")
	if err != nil {
		log.Fatal(err)
	}
	msgs := make(chan proto.Message, 8)
	if err := assembler.Call("OnMessage", func(m proto.Message) {
		msgs <- m
	}); err != nil {
		log.Fatal(err)
	}

	// "framer" at the middle is a proxy for the bottom's framer: calls on
	// it descend both hops.
	framer, err := c.NamedObject("framer")
	if err != nil {
		log.Fatal(err)
	}

	// The client can also tap a layer two address spaces down: this
	// packet observer registers through the middle's transport proxy, so
	// each in-order packet climbs bottom → middle → client, translated at
	// every hop (§3.5.2 procedure-pointer forwarding).
	packets := make(chan proto.Packet, 16)
	transportProxy, err := c.NamedObject("transport")
	if err != nil {
		log.Fatal(err)
	}
	if err := transportProxy.Call("OnPacket", func(p proto.Packet) {
		packets <- p
	}); err != nil {
		log.Fatal(err)
	}

	// A simulated peer produces the device byte stream: three messages,
	// fragmented at a 6-byte MTU, with the first message's frames
	// replayed once — the transport at the bottom must drop the replays.
	sender := proto.NewSender(6)
	var stream []byte
	var wantPackets int
	for i, text := range []string{"hello upcalls", "the middle message", "goodbye"} {
		b, err := sender.Send([]byte(text))
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, b...)
		if i == 0 {
			stream = append(stream, b...) // duplicated frames, stale seqs
		}
		wantPackets += (len(text) + 5) / 6
	}

	// Inject the bytes at the device layer, in awkward chunks, via relayed
	// asynchronous RPC — the driver happens to live two address spaces up.
	// Sync flushes the batch down both hops (§3.4 across the chain).
	for off := 0; off < len(stream); off += 11 {
		end := off + 11
		if end > len(stream) {
			end = len(stream)
		}
		if err := framer.Async("Feed", stream[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		log.Fatal(err)
	}

	// Completion is signalled by the upcalls themselves: every surviving
	// packet reaches the tap and every message reaches the application.
	for i := 0; i < 3; i++ {
		m := <-msgs
		fmt.Printf("message %d (%d packets): %q\n", i+1, m.Packets, m.Data)
	}
	for i := 0; i < wantPackets; i++ {
		<-packets
	}

	// Layer statistics show where events were absorbed — gathered with a
	// two-hop relayed call and a one-hop local call.
	var good, bad int64
	if err := framer.CallInto("Stats", []any{&good, &bad}); err != nil {
		log.Fatal(err)
	}
	var dups, queued, next int64
	if err := transport.CallInto("Stats", []any{&dups, &queued, &next}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("framing layer: %d frames validated, %d discarded\n", good, bad)
	fmt.Printf("transport layer: %d duplicates dropped, %d queued, next seq %d\n", dups, queued, next)
	fmt.Printf("application layer: %d packets observed through the two-hop tap\n", wantPackets)
	fwd := assembly.Metrics().Forwarding
	fmt.Printf("middle tier: %d calls relayed down, %d upcalls relayed up, %d proxy handles live\n",
		fwd.CallsRelayedDown, fwd.UpcallsRelayedUp, fwd.ProxyHandlesLive)
}
