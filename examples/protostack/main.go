// Protostack: the paper's layered-network-protocol motivation (§1). A
// three-layer protocol stack is dynamically loaded into a CLAM server;
// device bytes are injected at the bottom, propagate upward through the
// framing, transport and assembly layers — each mapping, queueing or
// discarding events — and each completed message crosses to the client as
// a distributed upcall. Run with: go run ./examples/protostack
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clam"
	"clam/internal/proto"
)

func main() {
	lib := clam.NewLibrary()
	proto.MustRegister(lib)
	srv := clam.NewServer(lib)
	defer srv.Close()

	// Build the server-side stack bottom-up and publish the layers.
	fobj, _, err := srv.CreateInstance("framer", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("framer", fobj)
	tobj, _, err := srv.CreateInstance("transport", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("transport", tobj)
	aobj, _, err := srv.CreateInstance("assembler", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetNamed("assembler", aobj)

	dir, err := os.MkdirTemp("", "clam-protostack")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "clam.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		log.Fatal(err)
	}

	c, err := clam.Dial("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	framer, err := c.NamedObject("framer")
	if err != nil {
		log.Fatal(err)
	}
	assembler, err := c.NamedObject("assembler")
	if err != nil {
		log.Fatal(err)
	}

	// The application layer lives in the client: register for complete
	// messages. The registration crosses one address space; afterwards
	// the assembler cannot tell this observer from a local one.
	msgs := make(chan proto.Message, 8)
	if err := assembler.Call("OnMessage", func(m proto.Message) {
		msgs <- m
	}); err != nil {
		log.Fatal(err)
	}

	// A simulated peer produces the device byte stream: three messages,
	// fragmented at a 6-byte MTU, delivered with the middle message's
	// packets reordered and one frame duplicated.
	sender := proto.NewSender(6)
	var stream []byte
	for _, text := range []string{"hello upcalls", "the middle message", "goodbye"} {
		b, err := sender.Send([]byte(text))
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, b...)
	}

	// Inject the bytes at the device layer, in awkward chunks, via RPC —
	// the driver happens to live in another address space.
	for off := 0; off < len(stream); off += 11 {
		end := off + 11
		if end > len(stream) {
			end = len(stream)
		}
		if err := framer.Async("Feed", stream[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		m := <-msgs
		fmt.Printf("message %d (%d packets): %q\n", i+1, m.Packets, m.Data)
	}

	// Layer statistics show where events were absorbed.
	var good, bad int64
	if err := framer.CallInto("Stats", []any{&good, &bad}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("framing layer: %d frames validated, %d discarded\n", good, bad)
}
