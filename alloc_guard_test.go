// Allocation tripwires for the two cross-address-space hot paths, the
// Figure 5.1 rows whose budgets EXPERIMENTS.md pins: remote call (~19
// allocs/op) and remote upcall (~20 allocs/op). testing.AllocsPerRun only
// counts the calling goroutine, which misses the read loops and executor
// workers actually serving the exchange, so these guards measure the
// whole-process runtime.MemStats delta — the same method clambench uses
// for BENCH_*.json. Budgets leave slack over the measured steady state so
// GC noise does not flake, while a structural regression (a per-dispatch
// allocation creeping into the executor, say) still fails loudly.
package clam_test

import (
	"runtime"
	"testing"

	"clam/internal/benchlib"
	"clam/internal/core"
	"clam/internal/shm"
)

const (
	// Measured steady state is ~10 allocs/op (BENCH_6.json); budgeted +4.
	maxRemoteCallAllocs = 14
	// Measured steady state is ~14 allocs/op (BENCH_6.json); budgeted +4.
	maxRemoteUpcallAllocs = 18
	// The shared-memory call row's budget is a hard ceiling, not a slack
	// band: the sub-5µs target depends on the ring path staying this lean
	// (measured steady state is ~8 allocs/op).
	maxShmCallAllocs = 10
)

// processAllocsPerOp runs fn n times after a warmup and returns the mean
// whole-process Mallocs delta per iteration.
func processAllocsPerOp(t *testing.T, n int, fn func()) float64 {
	t.Helper()
	for i := 0; i < n/4+10; i++ {
		fn()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

func TestAllocGuardRemoteCall(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard needs a steady process; skipped in -short")
	}
	fx, err := benchlib.Boot("unix", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Server.Close()
	c, err := core.Dial(fx.Network, fx.Addr, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	allocs := processAllocsPerOp(t, 400, func() {
		if err := rem.CallInto("Ping", []any{&n}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxRemoteCallAllocs {
		t.Errorf("remote call allocates %.1f objects/op process-wide, budget %d", allocs, maxRemoteCallAllocs)
	}
}

func TestAllocGuardRemoteUpcall(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard needs a steady process; skipped in -short")
	}
	fx, err := benchlib.Boot("unix", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Server.Close()
	c, err := core.Dial(fx.Network, fx.Addr, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	echo, err := c.NamedObject("echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := echo.Call("Register", func(x int64) int64 { return x + 1 }); err != nil {
		t.Fatal(err)
	}
	fn := fx.Echo.Proc()
	if fn == nil {
		t.Fatal("registration did not reach the server")
	}
	var v int64
	allocs := processAllocsPerOp(t, 400, func() {
		v = fn(v) // distributed upcall: server → client → server
	})
	if allocs > maxRemoteUpcallAllocs {
		t.Errorf("remote upcall allocates %.1f objects/op process-wide, budget %d", allocs, maxRemoteUpcallAllocs)
	}
}

func TestAllocGuardShmCall(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard needs a steady process; skipped in -short")
	}
	if !shm.Supported() {
		t.Skip("shared-memory transport unsupported on this platform")
	}
	fx, err := benchlib.Boot("unix", t.TempDir(), core.WithSharedMemory(0))
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Server.Close()
	c, err := core.Dial(fx.Network, fx.Addr, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	allocs := processAllocsPerOp(t, 400, func() {
		if err := rem.CallInto("Ping", []any{&n}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxShmCallAllocs {
		t.Errorf("shm remote call allocates %.1f objects/op process-wide, budget %d", allocs, maxShmCallAllocs)
	}
	if tr := fx.Server.Metrics().Transport; tr.ShmSessions == 0 {
		t.Error("guard measured a socket session, not rings (ShmSessions = 0)")
	}
}
