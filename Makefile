GO ?= go

.PHONY: verify build fmtcheck vet test race benchsmoke bench benchfull chaos crash fuzzsmoke

# Tier-1 verification: everything must be green before a merge.
verify: build fmtcheck vet test race benchsmoke chaos crash fuzzsmoke

build:
	$(GO) build ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages additionally run under the race detector:
# sessions, heartbeats, eviction, upcall queues, the RUC table and the
# task scheduler all share state across goroutines. wire and rpc ride
# along so the allocation guards are also exercised with the race
# runtime's different allocator behaviour.
race:
	$(GO) test -race ./internal/core/... ./internal/mesh ./internal/upcall/... ./internal/wire ./internal/rpc ./internal/ruc ./internal/task

# Fault-injection and resurrection tests, twice under the race detector:
# scripted link kills, flap schedules, session resumes and chain healing
# are timing-sensitive, so -count=2 shakes out order-dependent passes.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Resume|Reconnect|Flap|Resurrect|Disconnect|Kill|Breaker|Partition|PeerDown|Cancel|Deadline' ./internal/core/... ./internal/wire

# The crash-restart suite: a re-exec'd server process is SIGKILLed
# mid-burst and restarted on its write-ahead journal (DESIGN.md §6.5);
# the at-most-once ledger must balance exactly. The journal's own
# torn-tail/compaction tests ride along.
crash:
	$(GO) test -race -count=2 -run 'Crash|Kill|ReplayGap|Retransmit' ./internal/core/...
	$(GO) test -race -count=2 ./internal/journal/...

# Every benchmark body runs exactly once: catches bit-rotted bench code
# (fixture boot failures, renamed methods) without paying for measurement.
# The fan-out matrix rides along at toy scale — it is self-checking (cells
# are lossless-or-fatal, the tree row verifies its counters), so this also
# smoke-tests the multicast path end to end.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/clambench -fanout -fanout-subs 64 -fanout-events 20
	$(GO) run ./cmd/clambench -mesh -mesh-iters 50
	$(GO) run ./cmd/clambench -transport -transport-iters 100
	$(GO) run ./cmd/clambench -overload -overload-dur 300ms

# Reproducible bench pipeline: regenerates BENCH_3.json (Fig 5.1 suite,
# pooling ablation and the dispatch-throughput matrix, with the embedded
# pre-change baselines for comparison), BENCH_4.json (the fan-out matrix,
# 10k-subscriber scale row and mid-tier multiplication proof) and
# BENCH_5.json (the mesh routing matrix: local vs routed calls/upcalls,
# with the 1-peer ablation parity row against the chain numbers) and
# BENCH_6.json (the transport matrix: the same call/upcall/throughput
# rows across tcp, unix, pipe and the shared-memory rings, with the
# WithoutSharedMemory ablation and the pre-shm baseline embedded).
# See EXPERIMENTS.md for the schemas.
bench:
	$(GO) run ./cmd/clambench -iters 300 -json BENCH_3.json
	$(GO) run ./cmd/clambench -fanout -fanout-json BENCH_4.json
	$(GO) run ./cmd/clambench -mesh -mesh-json BENCH_5.json
	$(GO) run ./cmd/clambench -transport -transport-json BENCH_6.json
	$(GO) run ./cmd/clambench -overload -overload-json BENCH_7.json

# The full testing.B suite, for apples-to-apples -benchmem numbers.
benchfull:
	$(GO) test -bench=. -benchmem

# Short coverage-guided fuzzing of the wire parsers a hostile peer can
# reach pre-session: the frame header and the MsgCancel body. A few
# seconds each is enough to catch parser regressions in CI; run
# `go test -fuzz FuzzFrameHeader ./internal/wire` for a real campaign.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz 'FuzzFrameHeader' -fuzztime 5s ./internal/wire
	$(GO) test -run '^$$' -fuzz 'FuzzCancelBody' -fuzztime 5s ./internal/wire
