GO ?= go

.PHONY: verify build vet test race bench

# Tier-1 verification: everything must be green before a merge.
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages additionally run under the race detector:
# sessions, heartbeats, eviction and upcall queues all share state across
# goroutines.
race:
	$(GO) test -race ./internal/core/... ./internal/upcall/...

bench:
	$(GO) test -bench=. -benchmem
