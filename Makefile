GO ?= go

.PHONY: verify build fmtcheck vet test race bench benchfull

# Tier-1 verification: everything must be green before a merge.
verify: build fmtcheck vet test race

build:
	$(GO) build ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages additionally run under the race detector:
# sessions, heartbeats, eviction, upcall queues, the RUC table and the
# task scheduler all share state across goroutines. wire and rpc ride
# along so the allocation guards are also exercised with the race
# runtime's different allocator behaviour.
race:
	$(GO) test -race ./internal/core/... ./internal/upcall/... ./internal/wire ./internal/rpc ./internal/ruc ./internal/task

# Reproducible bench pipeline: regenerates BENCH_2.json (Fig 5.1 suite +
# pooling ablation, with the embedded pre-change baseline for comparison).
# See EXPERIMENTS.md for the schema.
bench:
	$(GO) run ./cmd/clambench -iters 300 -json BENCH_2.json

# The full testing.B suite, for apples-to-apples -benchmem numbers.
benchfull:
	$(GO) test -bench=. -benchmem
