// Package clam is a Go reproduction of CLAM, the server structuring
// system of "Distributed Upcalls: A Mechanism for Layering Asynchronous
// Abstractions" (Cohrs, Miller & Call, ICDCS 1988).
//
// CLAM pairs two mechanisms. Remote procedure calls give clients
// synchronous, downward access through layers of abstraction that may
// live in another address space; distributed upcalls let a lower layer —
// typically inside a server — call upward through those same layers,
// crossing back into client address spaces, so servers can initiate
// asynchronous, independent action. Around this core the system provides
// dynamic loading of class modules into a running server, object handles
// (capabilities) for pointers that cross address spaces, automatic and
// programmer-defined parameter bundlers, batched asynchronous calls, and
// non-preemptive tasks.
//
// A minimal server:
//
//	lib := clam.NewLibrary()
//	lib.MustRegister(clam.Class{
//		Name: "counter", Version: 1, Type: reflect.TypeOf(&Counter{}),
//		New:  func(env any) (any, error) { return &Counter{}, nil },
//	})
//	srv := clam.NewServer(lib)
//	ln, _ := srv.Listen("unix", "/tmp/clam.sock")
//	defer srv.Close()
//
// And a client that loads the class, calls it, and receives upcalls:
//
//	c, _ := clam.Dial("unix", "/tmp/clam.sock")
//	obj, _ := c.New("counter", 0)
//	obj.Call("Add", int64(2))                       // synchronous RPC
//	obj.Async("Add", int64(3))                      // batched, no reply
//	var total int64
//	obj.CallInto("Total", []any{&total})            // results
//	obj.Call("OnChange", func(n int64) {            // distributed upcall
//		fmt.Println("counter is now", n)            // runs in this client
//	})
//
// A func passed as an RPC argument becomes a remote procedure pointer:
// the server receives an ordinary func value whose invocation performs a
// distributed upcall back into the registering client. A pointer to a
// loaded class instance returned by the server becomes a *Remote handle
// on the client, whose method calls are RPCs back into the server.
//
// The subsystems live in internal packages (see DESIGN.md for the map);
// this package re-exports the public surface.
package clam

import (
	"clam/internal/bundle"
	"clam/internal/core"
	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/task"
	"clam/internal/upcall"
	"clam/internal/wire"
)

// Core client/server types.
type (
	// Server hosts dynamically loaded classes and serves CLAM clients.
	Server = core.Server
	// ServerOption configures NewServer.
	ServerOption = core.ServerOption
	// Client is a CLAM client process with its two channels.
	Client = core.Client
	// DialOption configures Dial.
	DialOption = core.DialOption
	// Remote is a client-held handle to a server object.
	Remote = core.Remote
	// Env is what loaded class constructors receive.
	Env = core.Env
	// FaultReport is the error-report upcall payload.
	FaultReport = core.FaultReport
)

// Dynamic loading types.
type (
	// Library is the set of classes available for loading.
	Library = dynload.Library
	// Class describes one loadable, versioned module.
	Class = dynload.Class
	// Loaded is a class loaded into a server.
	Loaded = dynload.Loaded
	// Fault is the error produced when loaded code panics.
	Fault = dynload.Fault
)

// Bundling types.
type (
	// MethodSpec refines parameter bundling for one method.
	MethodSpec = bundle.MethodSpec
	// ParamSpec configures one parameter's mode and bundler.
	ParamSpec = bundle.ParamSpec
	// Mode is a parameter transfer direction.
	Mode = bundle.Mode
	// Registry holds custom bundlers.
	Registry = bundle.Registry
)

// Parameter modes, as in the paper's const / out / inout specifiers.
const (
	In    = bundle.In
	Out   = bundle.Out
	InOut = bundle.InOut
)

// Handle is the capability type for objects that cross address spaces.
type Handle = handle.Handle

// Task types, for servers and modules that start asynchronous activities.
type (
	// Sched is the non-preemptive task scheduler.
	Sched = task.Sched
	// Task is one lightweight process.
	Task = task.Task
	// TaskEvent is a condition tasks block on.
	TaskEvent = task.Event
)

// UpcallRegistry is the local registration/dispatch state a lower-level
// object keeps (queue/discard policies included).
type UpcallRegistry = upcall.Registry

// Upcall policies for events with no registered handler.
const (
	// UpcallDiscard throws unclaimed events away.
	UpcallDiscard = upcall.Discard
	// UpcallQueue keeps unclaimed events for later replay; posting to a
	// full queue is an error.
	UpcallQueue = upcall.Queue
	// UpcallDropOldest queues like UpcallQueue but a full queue evicts
	// its oldest event instead of rejecting the new one.
	UpcallDropOldest = upcall.DropOldest
	// UpcallBlock queues like UpcallQueue but a Post against a full queue
	// waits for a Drain, Replay or Register — backpressure, not loss.
	UpcallBlock = upcall.Block
)

// NewUpcallRegistry returns an empty upcall registry.
func NewUpcallRegistry(opts ...upcall.Option) *UpcallRegistry {
	return upcall.NewRegistry(opts...)
}

// WithUpcallPolicy sets a registry's no-handler policy.
// Example: clam.NewUpcallRegistry(clam.WithUpcallPolicy(clam.UpcallDropOldest)).
var WithUpcallPolicy = upcall.WithPolicy

// WithUpcallMaxQueue bounds each event queue of a registry.
// Example: clam.NewUpcallRegistry(clam.WithUpcallMaxQueue(256)).
var WithUpcallMaxQueue = upcall.WithMaxQueue

// SimLink wraps a net.Conn with propagation latency and a bandwidth
// ceiling, for emulating wide-area links.
type SimLink = wire.SimLink

// NewServer returns a server drawing loadable classes from lib.
func NewServer(lib *Library, opts ...ServerOption) *Server {
	return core.NewServer(lib, opts...)
}

// Dial connects to a CLAM server, establishing the RPC and upcall
// channels.
func Dial(network, addr string, opts ...DialOption) (*Client, error) {
	return core.Dial(network, addr, opts...)
}

// SelfDial connects a client to srv inside the same process over an
// in-memory pipe — the degenerate layer placement, useful for tests and
// for separating protocol cost from IPC cost.
func SelfDial(srv *Server, opts ...DialOption) (*Client, error) {
	return core.SelfDial(srv, opts...)
}

// SelfDialUpstream stacks srv on lower inside one process: srv dials
// lower over an in-memory pipe and attaches the connection for
// forwarding, exactly as Server.DialUpstream does across machines. Use
// Server.ImportNamed afterwards to re-export the lower server's base
// instances as proxies.
func SelfDialUpstream(srv, lower *Server, opts ...DialOption) (*Client, error) {
	return core.SelfDialUpstream(srv, lower, opts...)
}

// NewLibrary returns an empty class library.
func NewLibrary() *Library { return dynload.NewLibrary() }

// NewSched returns a non-preemptive task scheduler with reuse enabled.
func NewSched(opts ...task.Option) *Sched { return task.New(opts...) }

// Guard runs fn, converting a panic in loaded code into a *Fault error.
func Guard(fn func() error) error { return dynload.Guard(fn) }

// RegisterStatsClass adds the built-in "stats" class (remote access to
// Server.Metrics) to a library.
func RegisterStatsClass(lib *Library) error { return core.RegisterStatsClass(lib) }

// MetricsSnapshot is a point-in-time copy of a server's counters.
type MetricsSnapshot = core.MetricsSnapshot

// ClientMetricsSnapshot is a point-in-time copy of a client's
// robustness counters (retries, timeouts, heartbeats), from
// Client.Metrics.
type ClientMetricsSnapshot = core.ClientMetricsSnapshot

// LinkStats is the per-endpoint transport health block (retries,
// timeouts, heartbeats) shared by MetricsSnapshot and
// ClientMetricsSnapshot — one vocabulary for both ends of a link.
type LinkStats = core.LinkStats

// ForwardingStats counts a middle tier's relay activity: calls relayed
// to the upstream server, upcalls relayed up into clients, and live
// proxy handles (see Server.DialUpstream).
type ForwardingStats = core.ForwardingStats

// DispatchStats describes a server's dispatch engine: worker bound,
// per-object mode, observed parallelism high-water mark, live queue
// depth, and worker stalls (handler blocks that released a slot).
type DispatchStats = core.DispatchStats

// ResilienceStats counts session-resurrection events: reconnects
// completed, asynchronous calls replayed after them, duplicate frames
// suppressed by the receive window, and circuit-breaker trips. Appears
// in both MetricsSnapshot and ClientMetricsSnapshot.
type ResilienceStats = core.ResilienceStats

// FanoutStats counts a server's multicast activity: live subscribers,
// declared topics, events published/relayed/delivered, coalesced pending
// events, and queue drops split by cause (see Server.RegisterMulticast).
type FanoutStats = core.FanoutStats

// JournalStats describes a server's write-ahead journal (WithJournal):
// append/fsync/compaction counters, file size, and what the last restart
// recovered. Enabled is false when the server runs without a journal.
type JournalStats = core.JournalStats

// TransportStats describes the byte-transport fast paths: shared-memory
// ring sessions vs. socket fallbacks, doorbell wakeups and ring occupancy
// (WithSharedMemory), and vectored socket write batching. Appears in
// MetricsSnapshot.
type TransportStats = core.TransportStats

// OverloadStats counts deadline-budget and cancellation activity: calls
// carrying budgets, calls shed before execution (budget spent, cancelled,
// or refused at admission), cancels received/propagated, and the
// admission layer's queue-wait estimate. Appears in MetricsSnapshot.
type OverloadStats = core.OverloadStats

// MulticastOption configures a topic declared with
// Server.RegisterMulticast.
type MulticastOption = core.MulticastOption

// Multicast topic options.
var (
	// WithCoalesce makes a topic last-event-wins: a newly published
	// event replaces a subscriber's pending tail instead of queueing
	// behind it — right for state-valued events where only the latest
	// matters.
	// Example: srv.RegisterMulticast("damage", (func(int64))(nil), clam.WithCoalesce()).
	WithCoalesce = core.WithCoalesce
	// WithFanoutQueue bounds each subscriber's pending-event queue.
	// Example: srv.RegisterMulticast("ev", (func(int64))(nil), clam.WithFanoutQueue(64)).
	WithFanoutQueue = core.WithFanoutQueue
	// WithFanoutPolicy selects the full-queue behaviour per subscriber:
	// UpcallDropOldest (default), UpcallBlock (backpressure) or
	// UpcallQueue (reject newest).
	// Example: srv.RegisterMulticast("ev", (func(int64))(nil), clam.WithFanoutPolicy(clam.UpcallBlock)).
	WithFanoutPolicy = core.WithFanoutPolicy
)

// RegisterFanoutClass adds the built-in "fanout" class (remote multicast
// subscription management) to a library. NewServer registers it
// automatically; exported for libraries shared across servers.
func RegisterFanoutClass(lib *Library) error { return core.RegisterFanoutClass(lib) }

// MeshPeer names one member of a federated server mesh for
// Server.JoinMesh: its unique mesh name and where it listens. Client may
// carry an already-dialed connection; when nil, JoinMesh dials Addr.
type MeshPeer = core.MeshPeer

// MeshStats describes a server's mesh membership: self name, member and
// up counts, named resolutions routed to owning peers, and calls refused
// fast because the owner was down. Appears in MetricsSnapshot.
type MeshStats = core.MeshStats

// ErrPeerDown marks a call routed to a mesh member currently believed
// dead: the call fails fast instead of queueing behind the dead link,
// and the object stays where its handles live until the owner rejoins.
var ErrPeerDown = core.ErrPeerDown

// IsPeerDown reports whether err is ErrPeerDown, including the remote
// form a routed call returns after crossing a hop.
func IsPeerDown(err error) bool { return core.IsPeerDown(err) }

// RetryPolicy shapes client-side retries of idempotent-marked calls:
// attempt budget, exponential backoff with a ceiling, and jitter.
type RetryPolicy = core.RetryPolicy

// DefaultRetryPolicy is the policy WithRetry uses when given a zero
// Attempts count: 3 attempts, 50ms base backoff doubling to 1s, ±20%
// jitter.
var DefaultRetryPolicy = core.DefaultRetryPolicy

// Call-failure sentinels, testable with errors.Is.
var (
	// ErrCallTimeout marks a synchronous call abandoned at its deadline;
	// the only error the retry layer considers retryable.
	ErrCallTimeout = core.ErrCallTimeout
	// ErrServerUnresponsive marks a call failed because the client-side
	// liveness window (WithClientHeartbeat) expired.
	ErrServerUnresponsive = core.ErrServerUnresponsive
	// ErrDisconnected marks a call failed because the link dropped while
	// a session resume is (or may be) in progress; retryable for methods
	// marked idempotent (see Remote.MarkIdempotent and WithRetry).
	ErrDisconnected = core.ErrDisconnected
	// ErrReplayGap marks a resume abandoned because the bounded replay
	// buffer had already dropped unacknowledged calls the server never
	// executed; not retryable — the session's at-most-once ledger cannot
	// be made whole, so the client fails definitively instead of silently
	// losing calls.
	ErrReplayGap = core.ErrReplayGap
	// ErrDeadlineExceeded marks a call the server refused without
	// executing because its deadline budget was spent (or a cancel
	// reached it first) — a definitive "did not run", retryable under
	// WithRetry for methods marked idempotent. Calls that were already
	// executing when their deadline passed return it too, via the
	// handler's context.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
)

// Server options.
var (
	// WithUpcallTimeout bounds distributed-upcall waits.
	// Example: clam.NewServer(lib, clam.WithUpcallTimeout(5*time.Second)).
	WithUpcallTimeout = core.WithUpcallTimeout
	// WithServerLog directs server diagnostics.
	// Example: clam.NewServer(lib, clam.WithServerLog(log.Printf)).
	WithServerLog = core.WithServerLog
	// WithScheduler substitutes the server's task scheduler.
	// Example: clam.NewServer(lib, clam.WithScheduler(clam.NewSched())).
	WithScheduler = core.WithScheduler
	// WithMaxClientUpcalls relaxes the one-active-upcall-per-client
	// limit, the future-work extension §4.4 anticipates.
	// Example: clam.NewServer(lib, clam.WithMaxClientUpcalls(4)).
	WithMaxClientUpcalls = core.WithMaxClientUpcalls
	// WithHeartbeat pings each session every interval on both channels
	// and evicts clients silent for longer than the liveness window;
	// zero interval (the default) disables heartbeats.
	// Example: clam.NewServer(lib, clam.WithHeartbeat(2*time.Second, 10*time.Second)).
	WithHeartbeat = core.WithHeartbeat
	// WithMaxSessions caps concurrent client sessions; excess dials are
	// refused at the handshake. Zero (the default) means unlimited.
	// Example: clam.NewServer(lib, clam.WithMaxSessions(64)).
	WithMaxSessions = core.WithMaxSessions
	// WithSlowConsumerLimit evicts a client after n consecutive upcall
	// transport failures (timeouts or disconnects). Zero disables.
	// Example: clam.NewServer(lib, clam.WithSlowConsumerLimit(3)).
	WithSlowConsumerLimit = core.WithSlowConsumerLimit
	// WithDispatchWorkers bounds the per-object executor's worker pool
	// (default max(2, GOMAXPROCS)); blocked handlers release their slot.
	// Example: clam.NewServer(lib, clam.WithDispatchWorkers(8)).
	WithDispatchWorkers = core.WithDispatchWorkers
	// WithPerObjectDispatch selects the dispatch engine: true (default)
	// serializes calls per target object and runs distinct objects
	// concurrently; false restores the serial per-session dispatcher.
	// Example: clam.NewServer(lib, clam.WithPerObjectDispatch(false)).
	WithPerObjectDispatch = core.WithPerObjectDispatch
	// WithResumeWindow parks a disconnected session for the given grace
	// period instead of evicting it: handles, upcall registrations and
	// the duplicate-suppression window survive, and a client presenting
	// the session's resume token reattaches transparently. Zero (the
	// default) disables resurrection entirely.
	// Example: clam.NewServer(lib, clam.WithResumeWindow(30*time.Second)).
	WithResumeWindow = core.WithResumeWindow
	// WithJournal records grants, handle mints, registrations and receive
	// marks in an append-only journal under dir, and replays it on the
	// next start so parked sessions survive a server crash-restart —
	// durable session resurrection. Implies a 30s resume window unless
	// WithResumeWindow says otherwise.
	// Example: clam.NewServer(lib, clam.WithJournal("/var/lib/clamd")).
	WithJournal = core.WithJournal
	// WithUpstreamBreaker arms a circuit breaker on each upstream link:
	// after threshold consecutive failed reconnect attempts the circuit
	// opens for cooldown, failing forwarded calls fast instead of
	// queueing behind a flapping upstream.
	// Example: clam.NewServer(lib, clam.WithUpstreamBreaker(5, 10*time.Second)).
	WithUpstreamBreaker = core.WithUpstreamBreaker
	// WithFanoutShards sets the multicast subscription table's shard
	// count (rounded up to a power of two); raise it when subscribe/
	// unsubscribe churn contends with publishing.
	// Example: clam.NewServer(lib, clam.WithFanoutShards(128)).
	WithFanoutShards = core.WithFanoutShards
	// WithSharedMemory offers same-host clients the shared-memory ring
	// transport: each unix Listen also starts an shm rendezvous broker at
	// <addr>.shm, and clients fall back to the socket transparently (see
	// internal/shm). ringBytes is the per-direction ring size; 0 selects
	// the 1 MiB default. No-op on platforms without the transport.
	// Example: clam.NewServer(lib, clam.WithSharedMemory(0)).
	WithSharedMemory = core.WithSharedMemory
	// WithMaxQueueDelay arms the admission layer: synchronous calls whose
	// estimated dispatch-queue wait exceeds d — or would alone exhaust
	// the call's deadline budget — are refused at the read loop with
	// ErrDeadlineExceeded instead of queueing. Zero (the default)
	// disables admission control.
	// Example: clam.NewServer(lib, clam.WithMaxQueueDelay(50*time.Millisecond)).
	WithMaxQueueDelay = core.WithMaxQueueDelay
	// WithoutDeadlineShedding disables expired-budget shedding — the
	// ablation baseline for the overload goodput matrix (clambench
	// -overload). Cancelled calls are still shed: a cancelled call must
	// never run.
	// Example: clam.NewServer(lib, clam.WithoutDeadlineShedding()).
	WithoutDeadlineShedding = core.WithoutDeadlineShedding
)

// Dial options.
var (
	// WithDialFunc substitutes the connection dialer.
	// Example: clam.Dial("unix", path, clam.WithDialFunc(myDial)).
	WithDialFunc = core.WithDialFunc
	// WithoutClientBatching disables asynchronous call batching.
	// Example: clam.Dial("unix", path, clam.WithoutClientBatching()).
	WithoutClientBatching = core.WithoutClientBatching
	// WithMaxBatch sets the batch auto-flush threshold.
	// Example: clam.Dial("unix", path, clam.WithMaxBatch(64)).
	WithMaxBatch = core.WithMaxBatch
	// WithCallTimeout bounds synchronous call round trips; an expired
	// call fails with ErrCallTimeout. Per-call deadlines come from
	// Remote.CallCtx / Remote.CallIntoCtx.
	// Example: clam.Dial("unix", path, clam.WithCallTimeout(3*time.Second)).
	WithCallTimeout = core.WithCallTimeout
	// WithClientLog directs client diagnostics.
	// Example: clam.Dial("unix", path, clam.WithClientLog(log.Printf)).
	WithClientLog = core.WithClientLog
	// WithUpcallHandlers runs concurrent upcall-handler workers,
	// pairing with WithMaxClientUpcalls.
	// Example: clam.Dial("unix", path, clam.WithUpcallHandlers(4)).
	WithUpcallHandlers = core.WithUpcallHandlers
	// WithRetry re-sends calls to methods marked idempotent (see
	// Remote.MarkIdempotent) when they time out, with exponential
	// backoff; a zero-Attempts policy selects DefaultRetryPolicy.
	// Example: clam.Dial("unix", path, clam.WithRetry(clam.RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond})).
	WithRetry = core.WithRetry
	// WithClientHeartbeat pings the server every interval and fails all
	// pending calls with ErrServerUnresponsive when nothing (pong or
	// traffic) arrives within the liveness window; zero interval (the
	// default) disables it.
	// Example: clam.Dial("unix", path, clam.WithClientHeartbeat(2*time.Second, 10*time.Second)).
	WithClientHeartbeat = core.WithClientHeartbeat
	// WithoutSharedMemory dials the socket directly even when the server
	// offers a same-host shm rendezvous — the transport ablation switch.
	// Example: clam.Dial("unix", path, clam.WithoutSharedMemory()).
	WithoutSharedMemory = core.WithoutSharedMemory
)

// WithoutTaskReuse disables the scheduler's task pool (the reuse
// ablation's baseline).
// Example: clam.NewSched(clam.WithoutTaskReuse()).
var WithoutTaskReuse = task.WithoutReuse
