// Benchmarks reproducing the paper's evaluation: one benchmark per row of
// Figure 5.1 ("Procedure Call Costs") plus the A-1…A-5 ablations from
// DESIGN.md. Absolute numbers will not match a 1988 MicroVAX-II; the
// claims under test are the *shape* — local calls within a small factor
// of each other, address-space crossings orders of magnitude dearer,
// unix < tcp < wan, and remote upcalls costing about the same as remote
// calls on each transport. EXPERIMENTS.md records paper-vs-measured.
package clam_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam"
	"clam/internal/benchlib"
	"clam/internal/bundle"
	"clam/internal/core"
	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/task"
	"clam/internal/wire"
	"clam/internal/wm"
	"clam/internal/xdr"
)

// --- Figure 5.1, rows a–c: calls inside one address space -------------------

// Row a: statically linked procedure call (paper: 19 µs).
func BenchmarkFig51_StaticCall(b *testing.B) {
	var n int64
	for i := 0; i < b.N; i++ {
		n = benchlib.StaticCall(n)
	}
	sinkInt64 = n
}

var sinkInt64 int64

// Row b: dynamically loaded procedure calling another dynamically loaded
// procedure (paper: 21 µs).
func BenchmarkFig51_DynToDynCall(b *testing.B) {
	lib := dynload.NewLibrary()
	if err := benchlib.Register(lib); err != nil {
		b.Fatal(err)
	}
	ld := dynload.NewLoader(lib)
	pc, err := ld.Load("pinger", 0)
	if err != nil {
		b.Fatal(err)
	}
	rc, err := ld.Load("relay", 0)
	if err != nil {
		b.Fatal(err)
	}
	pObj, err := pc.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	rObj, err := rc.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	relay := rObj.(*benchlib.Relay)
	relay.SetTarget(pObj.(*benchlib.Pinger))
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		n = relay.Relay()
	}
	sinkInt64 = n
}

// Row c: upcall with both procedures in the server (paper: 19 µs): the
// lower layer invokes a registered procedure pointer.
func BenchmarkFig51_LocalUpcall(b *testing.B) {
	e := &benchlib.Echo{}
	e.Register(func(x int64) int64 { return x + 1 })
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		v, err := e.Call(n)
		if err != nil {
			b.Fatal(err)
		}
		n = v
	}
	sinkInt64 = n
}

// --- Figure 5.1, rows d–i: calls crossing address spaces --------------------

func remoteCallBench(b *testing.B, network string, dialOpts ...core.DialOption) {
	b.Helper()
	fx, err := benchlib.Boot(network, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Server.Close()
	opts := append([]core.DialOption{core.WithClientLog(func(string, ...any) {})}, dialOpts...)
	c, err := core.Dial(fx.Network, fx.Addr, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		if err := rem.CallInto("Ping", []any{&n}); err != nil {
			b.Fatal(err)
		}
	}
	sinkInt64 = n
}

func remoteUpcallBench(b *testing.B, network string, dialOpts ...core.DialOption) {
	b.Helper()
	fx, err := benchlib.Boot(network, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Server.Close()
	opts := append([]core.DialOption{core.WithClientLog(func(string, ...any) {})}, dialOpts...)
	c, err := core.Dial(fx.Network, fx.Addr, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	echo, err := c.NamedObject("echo")
	if err != nil {
		b.Fatal(err)
	}
	// The client registers its procedure; the server ends up holding a
	// RUC proxy that looks like a normal procedure pointer.
	if err := echo.Call("Register", func(x int64) int64 { return x + 1 }); err != nil {
		b.Fatal(err)
	}
	fn := fx.Echo.Proc()
	if fn == nil {
		b.Fatal("registration did not reach the server")
	}
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		n = fn(n) // distributed upcall: server → client → server
	}
	sinkInt64 = n
}

// Extra row (not in the paper): the full protocol over an in-memory pipe
// in one process — isolates protocol overhead from kernel IPC cost, which
// is the remainder of rows d–g.
func BenchmarkExtra_RemoteCallPipe(b *testing.B) {
	fx, err := benchlib.Boot("unix", b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Server.Close()
	c, err := core.SelfDial(fx.Server, core.WithClientLog(func(string, ...any) {}))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		if err := rem.CallInto("Ping", []any{&n}); err != nil {
			b.Fatal(err)
		}
	}
	sinkInt64 = n
}

// Extra: the relaxed concurrent-upcall mode (§4.4's "may be relaxed in
// future designs") vs the paper's serial limit, under 4 concurrent
// server-side triggers of a handler that takes ~1ms.
func BenchmarkExtra_UpcallConcurrency(b *testing.B) {
	run := func(b *testing.B, srvOpts []core.ServerOption, dialOpts []core.DialOption) {
		fx, err := benchlib.Boot("unix", b.TempDir(), srvOpts...)
		if err != nil {
			b.Fatal(err)
		}
		defer fx.Server.Close()
		opts := append([]core.DialOption{core.WithClientLog(func(string, ...any) {})}, dialOpts...)
		c, err := core.Dial(fx.Network, fx.Addr, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		echo, err := c.NamedObject("echo")
		if err != nil {
			b.Fatal(err)
		}
		if err := echo.Call("Register", func(x int64) int64 {
			time.Sleep(time.Millisecond)
			return x
		}); err != nil {
			b.Fatal(err)
		}
		fn := fx.Echo.Proc()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					fn(1)
				}()
			}
			wg.Wait()
		}
	}
	b.Run("serial-limit", func(b *testing.B) { run(b, nil, nil) })
	b.Run("relaxed", func(b *testing.B) {
		run(b,
			[]core.ServerOption{core.WithMaxClientUpcalls(4)},
			[]core.DialOption{core.WithUpcallHandlers(4)})
	})
}

// Row d: remote call, both processes on one machine, UNIX-domain
// connection (paper: 7 200 µs).
func BenchmarkFig51_RemoteCallUnix(b *testing.B) { remoteCallBench(b, "unix") }

// Row e: remote upcall, same machine, UNIX domain (paper: 7 200 µs).
func BenchmarkFig51_RemoteUpcallUnix(b *testing.B) { remoteUpcallBench(b, "unix") }

// Row f: remote call, same machine, TCP/IP (paper: 11 500 µs).
func BenchmarkFig51_RemoteCallTCP(b *testing.B) { remoteCallBench(b, "tcp") }

// Row g: remote upcall, same machine, TCP/IP (paper: 11 500 µs).
func BenchmarkFig51_RemoteUpcallTCP(b *testing.B) { remoteUpcallBench(b, "tcp") }

// wanLatency models the extra propagation delay of the paper's Ethernet
// hop: the paper's gap between same-machine TCP and cross-machine TCP is
// ~0.9 ms per call.
const wanLatency = 450 * time.Microsecond // one-way; ~0.9 ms per round trip

// Row h: remote call, processes on different machines (paper: 12 400 µs).
// The second machine is a simulated link, per DESIGN.md substitutions.
func BenchmarkFig51_RemoteCallWAN(b *testing.B) {
	remoteCallBench(b, "tcp", core.WithDialFunc(benchlib.WANDialer(wanLatency, 0)))
}

// Row i: remote upcall, different machines (paper: 12 800 µs).
func BenchmarkFig51_RemoteUpcallWAN(b *testing.B) {
	remoteUpcallBench(b, "tcp", core.WithDialFunc(benchlib.WANDialer(wanLatency, 0)))
}

// --- Ablation A-7: pooled vs unpooled wire frames ----------------------------

// BenchmarkAblation_FramePooling isolates what the sync.Pool frame
// recycling in internal/wire buys on the remote-call hot path. Run with
// -benchmem: the pooled/unpooled gap shows up in B/op and allocs/op.
func BenchmarkAblation_FramePooling(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		wire.SetPooling(true)
		remoteCallBench(b, "unix")
	})
	b.Run("unpooled", func(b *testing.B) {
		wire.SetPooling(false)
		defer wire.SetPooling(true)
		remoteCallBench(b, "unix")
	})
}

// --- Ablation A-1: batched vs unbatched asynchronous calls (§3.4) -----------

func batchingBench(b *testing.B, dialOpts ...core.DialOption) {
	b.Helper()
	fx, err := benchlib.Boot("unix", b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Server.Close()
	opts := append([]core.DialOption{core.WithClientLog(func(string, ...any) {})}, dialOpts...)
	c, err := core.Dial(fx.Network, fx.Addr, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		b.Fatal(err)
	}
	const burst = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := rem.Async("Ping"); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(burst), "calls/op")
}

func BenchmarkAblation_Batching(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		batchingBench(b, core.WithMaxBatch(64))
	})
	b.Run("unbatched", func(b *testing.B) {
		batchingBench(b, core.WithoutClientBatching())
	})
}

// --- Ablation A-2: sweep placement (§2.1) -----------------------------------

// sweepEvents is one full gesture: press, moves, release.
const sweepMoves = 32

func driveSweep(scr *wm.Screen) {
	scr.InjectMouse(wm.MouseEvent{Kind: wm.MouseDown, X: 10, Y: 10, Buttons: wm.ButtonLeft})
	for d := int16(1); d <= sweepMoves; d++ {
		scr.InjectMouse(wm.MouseEvent{Kind: wm.MouseMove, X: 10 + d, Y: 10 + d})
	}
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseUp, X: 10 + sweepMoves, Y: 10 + sweepMoves})
}

func bootWM(b *testing.B) (*core.Server, *wm.Screen, string) {
	b.Helper()
	lib := dynload.NewLibrary()
	wm.MustRegister(lib, wm.Config{Width: 300, Height: 300})
	srv := core.NewServer(lib, core.WithServerLog(func(string, ...any) {}))
	sobj, _, err := srv.CreateInstance("screen", 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	scr := sobj.(*wm.Screen)
	srv.SetNamed("screen", scr)
	wobj, _, err := srv.CreateInstance("window", 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv.SetNamed("basewindow", wobj)
	sock := b.TempDir() + "/clam.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		b.Fatal(err)
	}
	return srv, scr, sock
}

func BenchmarkAblation_SweepPlacement(b *testing.B) {
	// builtin: everything in one address space, no clients at all — the
	// paper's "directly in the window server" placement.
	b.Run("builtin", func(b *testing.B) {
		scr := wm.NewScreen(300, 300, nil)
		base := wm.NewBaseWindow(scr)
		sw := wm.NewSweep()
		sw.SetTransparent(true)
		sw.Attach(base)
		done := 0
		sw.OnCreated(func(wm.Rect) { done++ })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			driveSweep(scr)
		}
		if done != b.N {
			b.Fatalf("completed %d sweeps, want %d", done, b.N)
		}
	})

	// server: sweeping layer loaded into the server; only the final
	// "window created" event crosses to the client.
	b.Run("server", func(b *testing.B) {
		srv, scr, sock := bootWM(b)
		defer srv.Close()
		c, err := core.Dial("unix", sock, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		baseRem, err := c.NamedObject("basewindow")
		if err != nil {
			b.Fatal(err)
		}
		sweepRem, err := c.NewExact("sweep", 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := sweepRem.Call("Attach", baseRem); err != nil {
			b.Fatal(err)
		}
		if err := sweepRem.Call("SetTransparent", true); err != nil {
			b.Fatal(err)
		}
		created := make(chan wm.Rect, 1)
		if err := sweepRem.Call("OnCreated", func(r wm.Rect) { created <- r }); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			driveSweep(scr)
			<-created
		}
	})

	// client: X-style placement; every input event crosses to the client
	// as a distributed upcall before being interpreted.
	b.Run("client", func(b *testing.B) {
		srv, scr, sock := bootWM(b)
		defer srv.Close()
		c, err := core.Dial("unix", sock, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		baseRem, err := c.NamedObject("basewindow")
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan wm.Rect, 1)
		var anchor wm.Point
		if err := baseRem.Call("PostMouse", func(ev wm.MouseEvent) {
			switch ev.Kind {
			case wm.MouseDown:
				anchor = ev.Pos()
			case wm.MouseUp:
				done <- wm.Rect{X: anchor.X, Y: anchor.Y, W: ev.X - anchor.X, H: ev.Y - anchor.Y}.Canon()
			}
		}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			driveSweep(scr)
			<-done
		}
	})
}

// --- Ablation A-3: task reuse vs fresh task per event (§4.4) ----------------

func taskChurnBench(b *testing.B, opts ...task.Option) {
	b.Helper()
	s := task.New(opts...)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		if err := s.Spawn(func(*task.Task) { close(done) }); err != nil {
			b.Fatal(err)
		}
		<-done
	}
	b.StopTimer()
	_, created, reused := s.Stats()
	b.ReportMetric(float64(created), "goroutines")
	b.ReportMetric(float64(reused), "reuses")
}

func BenchmarkAblation_TaskReuse(b *testing.B) {
	b.Run("pooled", func(b *testing.B) { taskChurnBench(b) })
	b.Run("fresh", func(b *testing.B) { taskChurnBench(b, task.WithoutReuse()) })
}

// --- Ablation A-4: tree bundling strategies (§3.1) --------------------------

func treeBundleBench(b *testing.B, f bundle.Func) {
	b.Helper()
	root := bundle.NewTree(6) // 63 nodes, fully threaded
	typ := reflect.TypeOf(root)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		ctx := &bundle.Ctx{}
		if err := f(ctx, xdr.NewEncoder(&buf), reflect.ValueOf(root)); err != nil {
			b.Fatal(err)
		}
		out := reflect.New(typ).Elem()
		ctx2 := &bundle.Ctx{}
		if err := f(ctx2, xdr.NewDecoder(&buf), out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var size bytes.Buffer
	if err := f(&bundle.Ctx{}, xdr.NewEncoder(&size), reflect.ValueOf(root)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(size.Len()), "wire-bytes")
}

func BenchmarkAblation_TreeBundling(b *testing.B) {
	reg := bundle.NewRegistry()
	node := reg.MustCompile(reflect.TypeOf((*bundle.TreeNode)(nil)))
	closure, err := reg.CompileClosure(reflect.TypeOf((*bundle.TreeNode)(nil)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("node", func(b *testing.B) { treeBundleBench(b, node) })
	b.Run("closure", func(b *testing.B) { treeBundleBench(b, closure) })
	b.Run("user", func(b *testing.B) { treeBundleBench(b, bundle.NodeAndChildrenBundler) })
}

// --- Ablation A-8: write-ahead journal on the call path ---------------------

// BenchmarkAblation_Journal prices durable sessions: the same remote
// sync call with (a) the default ephemeral server, (b) resurrection
// enabled (numbered frames, in-memory only), and (c) resurrection backed
// by the write-ahead journal. The journal's hot-path cost is one
// contiguity check plus a coalesced in-memory mark per executed frame —
// fsyncs ride the group-commit ticker, never a call — so (c) must stay
// within a few percent of (b).
func BenchmarkAblation_Journal(b *testing.B) {
	run := func(b *testing.B, srvOpts ...core.ServerOption) {
		fx, err := benchlib.Boot("unix", b.TempDir(), srvOpts...)
		if err != nil {
			b.Fatal(err)
		}
		defer fx.Server.Close()
		c, err := core.Dial(fx.Network, fx.Addr, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		rem, err := c.NamedObject("pinger")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var n int64
		for i := 0; i < b.N; i++ {
			if err := rem.CallInto("Ping", []any{&n}); err != nil {
				b.Fatal(err)
			}
		}
		sinkInt64 = n
	}
	b.Run("ephemeral", func(b *testing.B) { run(b) })
	b.Run("resume", func(b *testing.B) {
		run(b, core.WithResumeWindow(30*time.Second))
	})
	b.Run("resume+journal", func(b *testing.B) {
		run(b, core.WithResumeWindow(30*time.Second), core.WithJournal(b.TempDir()))
	})
}

// --- Ablation A-5: handle validation overhead (§3.5.1) ----------------------

func BenchmarkAblation_HandleLookup(b *testing.B) {
	tbl := handle.NewTable()
	type obj struct{ n int }
	h, err := tbl.Put(&obj{}, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Get(h); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Throughput: pipelined load under the per-object executor ---------------
//
// The Figure 5.1 rows measure one call's latency; these rows measure how
// many independent calls the server completes per second when clients
// keep several in flight at once. Each client is its own session, and
// each holds `inflight` synchronous Pings pending from separate
// goroutines (asyncs would not do: §3.4 pins one session's asyncs to
// program order, so only independent synchronous calls may overlap).
// Cross-object rows aim every client at its own pinger instance — the
// case the per-object executor parallelizes; same-object rows all hammer
// one instance, which must stay serialized in every engine. The _Serial
// variants rerun the cross-object shape on the pre-change serial
// dispatcher (WithPerObjectDispatch(false)) as the ablation baseline, and
// the TwoHop rows interpose a middle server relaying over proxy handles
// so the chain's hops parallelize too.

// holdMicros is each handler's simulated wait — long enough that the
// dispatch engine, not the wire, is the bottleneck at 8 clients.
const holdMicros = int64(50)

func throughputBench(b *testing.B, clients, inflight, hops int, cross, serial bool) {
	b.Helper()
	var srvOpts []core.ServerOption
	if serial {
		srvOpts = append(srvOpts, core.WithPerObjectDispatch(false))
	} else {
		// One worker per client: the default pool is sized to GOMAXPROCS
		// for CPU work, but blocked handlers overlap beyond core count.
		srvOpts = append(srvOpts, core.WithDispatchWorkers(clients))
	}
	fx, err := benchlib.Boot("unix", b.TempDir(), srvOpts...)
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Server.Close()

	names := make([]string, clients)
	for i := range names {
		names[i] = "pinger"
	}
	if cross {
		if _, err := fx.PublishPingers(clients); err != nil {
			b.Fatal(err)
		}
		for i := range names {
			names[i] = fmt.Sprintf("pinger%d", i)
		}
	}

	network, addr := fx.Network, fx.Addr
	if hops == 2 {
		lib := dynload.NewLibrary()
		if err := benchlib.Register(lib); err != nil {
			b.Fatal(err)
		}
		mid := core.NewServer(lib, append([]core.ServerOption{
			core.WithServerLog(func(string, ...any) {}),
		}, srvOpts...)...)
		defer mid.Close()
		up, err := core.SelfDialUpstream(mid, fx.Server, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			b.Fatal(err)
		}
		uniq := make([]string, 0, len(names))
		seen := make(map[string]bool)
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				uniq = append(uniq, n)
			}
		}
		if err := mid.ImportNamed(up, uniq...); err != nil {
			b.Fatal(err)
		}
		ln, err := mid.Listen("unix", b.TempDir()+"/mid.sock")
		if err != nil {
			b.Fatal(err)
		}
		network, addr = "unix", ln.Addr().String()
	}

	conns := make([]*core.Client, clients)
	objs := make([]*core.Remote, clients)
	for i := range conns {
		c, err := core.Dial(network, addr, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
		if objs[i], err = c.NamedObject(names[i]); err != nil {
			b.Fatal(err)
		}
	}

	// Spread b.N calls over clients × inflight workers; ns/op is then
	// wall time per completed call with the parallelism baked in, so
	// throughput = 1e9 / ns_op calls/sec.
	per := b.N / (clients * inflight)
	if per < 1 {
		per = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	var failed atomic.Bool
	for i := 0; i < clients; i++ {
		for j := 0; j < inflight; j++ {
			wg.Add(1)
			go func(obj *core.Remote) {
				defer wg.Done()
				var n int64
				for k := 0; k < per; k++ {
					if err := obj.CallInto("Hold", []any{&n}, holdMicros); err != nil {
						failed.Store(true)
						return
					}
				}
			}(objs[i])
		}
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() {
		b.Fatal("a pipelined call failed")
	}
}

func BenchmarkThroughput_SameObject_8x4(b *testing.B)  { throughputBench(b, 8, 4, 1, false, false) }
func BenchmarkThroughput_CrossObject_8x4(b *testing.B) { throughputBench(b, 8, 4, 1, true, false) }

// Serial-dispatcher ablation of the same shapes: the pre-change engine.
func BenchmarkThroughput_SameObject_8x4_Serial(b *testing.B) {
	throughputBench(b, 8, 4, 1, false, true)
}
func BenchmarkThroughput_CrossObject_8x4_Serial(b *testing.B) {
	throughputBench(b, 8, 4, 1, true, true)
}

// Two-hop chain: client → middle server → bottom server, relayed over
// proxy handles; the middle tier's executor yields relaying workers while
// they wait on the lower hop, so independent objects pipeline end to end.
func BenchmarkThroughput_TwoHop_CrossObject_4x2(b *testing.B) {
	throughputBench(b, 4, 2, 2, true, false)
}
func BenchmarkThroughput_TwoHop_CrossObject_4x2_Serial(b *testing.B) {
	throughputBench(b, 4, 2, 2, true, true)
}

// Sanity: the facade compiles against the benchmarks' imports.
var _ = clam.NewLibrary
