package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"clam/internal/dynload"
)

// Test class library: small classes exercising every remote mechanism.

// counter is a plain synchronous class.
type counter struct {
	mu    sync.Mutex
	total int64
	log   []string
}

func (c *counter) Add(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total += n
}

func (c *counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

func (c *counter) Div(a, b int64) (int64, error) {
	if b == 0 {
		return 0, errors.New("divide by zero")
	}
	return a / b, nil
}

func (c *counter) Record(s string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log = append(c.log, s)
}

func (c *counter) Log() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.log...)
}

func (c *counter) Scale(factor int64, v *vec2) {
	v.X *= factor
	v.Y *= factor
}

type vec2 struct{ X, Y int64 }

// notifier exercises distributed upcalls: clients register procedures and
// Trigger makes upcalls through them.
type notifier struct {
	mu  sync.Mutex
	fns []func(int32, string) int32
}

func (n *notifier) Register(fn func(int32, string) int32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fns = append(n.fns, fn)
}

// Trigger upcalls every registered procedure and returns the sum of their
// results.
func (n *notifier) Trigger(x int32, s string) (int32, error) {
	n.mu.Lock()
	fns := append([]func(int32, string) int32(nil), n.fns...)
	n.mu.Unlock()
	var sum int32
	for _, fn := range fns {
		sum += fn(x, s)
	}
	return sum, nil
}

// Count reports the number of registrations.
func (n *notifier) Count() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.fns))
}

// parent/child exercise object pointers crossing address spaces.
type parent struct {
	kids []*child
}

func (p *parent) Child(i int64) *child {
	if i < 0 || int(i) >= len(p.kids) {
		return nil
	}
	return p.kids[i]
}

// Adopt takes an object pointer back from the client.
func (p *parent) Adopt(c *child) (int64, error) {
	if c == nil {
		return 0, errors.New("nil child")
	}
	for i, k := range p.kids {
		if k == c {
			return int64(i), nil
		}
	}
	p.kids = append(p.kids, c)
	return int64(len(p.kids) - 1), nil
}

type child struct {
	name string
}

func (c *child) Name() string { return c.name }

// sleeper exercises §6.8 deadline budgets: Nap's first parameter is a
// context.Context (never on the wire — the stub injects the server's
// per-call context), so a handler can observe budget expiry or a remote
// MsgCancel mid-execution.
type sleeper struct {
	mu        sync.Mutex
	completed int64
	cancelled int64
}

// Nap parks for us microseconds or until the injected context is done,
// whichever comes first, and reports which happened.
func (s *sleeper) Nap(ctx context.Context, us int64) (string, error) {
	t := time.NewTimer(time.Duration(us) * time.Microsecond)
	defer t.Stop()
	select {
	case <-t.C:
		s.mu.Lock()
		s.completed++
		s.mu.Unlock()
		return "slept", nil
	case <-ctx.Done():
		s.mu.Lock()
		s.cancelled++
		s.mu.Unlock()
		return "", ctx.Err()
	}
}

// Remaining reports the injected context's remaining budget in
// microseconds, or -1 when the call carried no deadline.
func (s *sleeper) Remaining(ctx context.Context) int64 {
	d, ok := ctx.Deadline()
	if !ok {
		return -1
	}
	return time.Until(d).Microseconds()
}

func (s *sleeper) counts() (completed, cancelled int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed, s.cancelled
}

// faulty exercises §4.3 fault isolation.
type faulty struct{}

func (f *faulty) Crash() {
	var p *child
	_ = p.name // nil dereference: the paper's memory fault
}

func (f *faulty) Fine() int64 { return 1 }

func testLibrary(t testing.TB) *dynload.Library {
	t.Helper()
	lib := dynload.NewLibrary()
	lib.MustRegister(dynload.Class{
		Name: "counter", Version: 1, Type: reflect.TypeOf(&counter{}),
		New: func(any) (any, error) { return &counter{}, nil },
	})
	lib.MustRegister(dynload.Class{
		Name: "notifier", Version: 1, Type: reflect.TypeOf(&notifier{}),
		New: func(any) (any, error) { return &notifier{}, nil },
	})
	lib.MustRegister(dynload.Class{
		Name: "parent", Version: 1, Type: reflect.TypeOf(&parent{}),
		New: func(any) (any, error) {
			return &parent{kids: []*child{{name: "alice"}, {name: "bob"}}}, nil
		},
	})
	lib.MustRegister(dynload.Class{
		Name: "child", Version: 1, Type: reflect.TypeOf(&child{}),
		New: func(any) (any, error) { return &child{name: "fresh"}, nil },
	})
	lib.MustRegister(dynload.Class{
		Name: "faulty", Version: 1, Type: reflect.TypeOf(&faulty{}),
		New: func(any) (any, error) { return &faulty{}, nil },
	})
	lib.MustRegister(dynload.Class{
		Name: "sleeper", Version: 1, Type: reflect.TypeOf(&sleeper{}),
		New: func(any) (any, error) { return &sleeper{}, nil },
	})
	return lib
}

// startServer brings a server up on a unix socket and tears it down with
// the test.
func startServer(t testing.TB, opts ...ServerOption) (*Server, string) {
	t.Helper()
	opts = append([]ServerOption{
		WithServerLog(func(format string, args ...any) { t.Logf(format, args...) }),
	}, opts...)
	srv := NewServer(testLibrary(t), opts...)
	// The parent class must be loaded so *child return values can be
	// minted; child too.
	if _, err := srv.Load("child", 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clam.sock")
	if _, err := srv.Listen("unix", path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, path
}

func dialClient(t testing.TB, path string, opts ...DialOption) *Client {
	t.Helper()
	opts = append([]DialOption{
		WithClientLog(func(format string, args ...any) { t.Logf(format, args...) }),
	}, opts...)
	c, err := Dial("unix", path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// tcpServer starts the same fixture on loopback TCP.
func tcpServer(t testing.TB, opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewServer(testLibrary(t), append([]ServerOption{
		WithServerLog(func(format string, args ...any) { t.Logf(format, args...) }),
	}, opts...)...)
	if _, err := srv.Load("child", 0); err != nil {
		t.Fatal(err)
	}
	ln, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

var _ net.Conn // keep net imported for helpers below

func fmtArgs(args ...any) string { return fmt.Sprint(args...) }
