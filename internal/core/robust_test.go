package core

import (
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"clam/internal/dynload"
	"clam/internal/wire"
	"clam/internal/xdr"
)

// Robustness: random garbage in message bodies must never panic the
// server — only produce errors, dropped frames or closed sessions.

func TestServerSurvivesRandomBodies(t *testing.T) {
	srv, path := startServer(t)
	rng := rand.New(rand.NewPCG(7, 7))

	types := []wire.MsgType{wire.MsgCall, wire.MsgLoad, wire.MsgSync, wire.MsgUpcallReply, wire.MsgType(77)}
	for round := 0; round < 40; round++ {
		conn, err := net.Dial("unix", path)
		if err != nil {
			t.Fatal(err)
		}
		wc := wire.NewConn(conn)
		// Sometimes complete the handshake, sometimes skip it.
		if round%2 == 0 {
			var body bytesBuf
			h := helloBody{Role: roleRPC}
			h.bundle(xdrEnc(&body))
			wc.Send(&wire.Msg{Type: wire.MsgHello, Seq: 1, Body: body.b})
			wc.Recv()
		}
		for i := 0; i < 5; i++ {
			body := make([]byte, rng.IntN(200))
			for j := range body {
				body[j] = byte(rng.UintN(256))
			}
			wc.Send(&wire.Msg{
				Type: types[rng.IntN(len(types))],
				Seq:  rng.Uint64(),
				Body: body,
			})
		}
		wc.Close()
	}

	// Give the server a moment to chew through the garbage, then verify
	// it still works.
	deadline := time.Now().Add(3 * time.Second)
	for srv.SessionCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Errorf("server degraded by garbage: %v", err)
	}
}

func TestClientSurvivesRandomUpcallBodies(t *testing.T) {
	// A hostile/buggy server sending garbage upcalls must not panic the
	// client. Build a fake server speaking just enough protocol.
	ln, err := net.Listen("unix", t.TempDir()+"/fake.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		rng := rand.New(rand.NewPCG(3, 9))
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				wc := wire.NewConn(conn)
				msg, err := wc.Recv()
				if err != nil || msg.Type != wire.MsgHello {
					wc.Close()
					return
				}
				var body bytesBuf
				reply := helloReplyBody{Session: 1}
				reply.bundle(xdrEnc(&body))
				wc.Send(&wire.Msg{Type: wire.MsgHelloReply, Seq: msg.Seq, Body: body.b})
				// Spray garbage upcalls and errors at the client.
				for i := 0; i < 20; i++ {
					b := make([]byte, rng.IntN(100))
					for j := range b {
						b[j] = byte(rng.UintN(256))
					}
					ty := wire.MsgUpcall
					if i%3 == 0 {
						ty = wire.MsgError
					}
					if err := wc.Send(&wire.Msg{Type: ty, Seq: uint64(i), Body: b}); err != nil {
						break
					}
				}
			}(conn)
		}
	}()

	c, err := Dial("unix", ln.Addr().String(), WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(200 * time.Millisecond) // let the garbage arrive
	// Client is alive: Close works without panic.
}

func TestConcurrentLoadUnloadChurn(t *testing.T) {
	srv, path := startServer(t)
	_ = srv
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial("unix", path, WithClientLog(func(string, ...any) {}))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				obj, err := c.New("counter", 0)
				if err != nil {
					// Another goroutine may have unloaded between the
					// load and the instantiate — acceptable, retry.
					continue
				}
				obj.Call("Add", int64(1))
				if i%2 == 0 {
					c.Unload("counter", 1)
				}
			}
		}(i)
	}
	wg.Wait()
	// The library still has the class; a fresh load works.
	c := dialClient(t, path)
	if _, err := c.New("counter", 0); err != nil {
		t.Errorf("final load failed: %v", err)
	}
}

// xdrEnc is a tiny helper for the fake-server tests.
func xdrEnc(w *bytesBuf) *xdr.Stream { return xdr.NewEncoder(w) }

var _ = dynload.ErrNotLoaded
