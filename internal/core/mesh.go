package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"strings"
	"sync"

	"clam/internal/dynload"
	"clam/internal/mesh"
)

// Federated server mesh: the horizontal arrangement of the peerLink hop
// primitive. N CLAM servers join a mesh; a consistent-hash directory
// (internal/mesh) partitions the shared object space — well-known names
// and handle tags — among them, so any member routes a call to the
// owner's address space and chains the owner's upcalls back out through
// whichever member the client entered at. The paper's two-space layering
// (§1) becomes an N-space federation with the same mechanism per hop:
// proxy handles re-minted at the entry member (§3.5.1), procedure
// pointers re-bound per hop (§3.5.2), §3.4's ordering preserved because
// a routed call is just a forwarded call (forward.go).
//
// Membership is deliberately thin: it rides the machinery the links
// already have. The wire's heartbeats detect a dead peer, the link's
// resurrect loop + circuit breaker report every reconnect outcome into
// the directory (attachLink's onResult hook → meshLinkResult), and a
// restarted peer re-announces itself through the mesh class, which
// replaces the unresumable old link (handleAnnounce). While a peer is
// down its arcs stay its own — calls fail fast with ErrPeerDown rather
// than silently re-homing objects whose handles only the owner can
// validate.

// ErrPeerDown reports that the mesh member owning the addressed object is
// currently unreachable (its link's circuit is open or its membership
// entry is marked down). The call failed fast; the object itself may be
// intact and reachable again after the peer rejoins.
var ErrPeerDown = errors.New("clam: mesh peer down")

// IsPeerDown reports whether err is an ErrPeerDown failure, including the
// remote form: a routed call that failed at another member's hop comes
// back as an rpc.RemoteError carrying the message text.
func IsPeerDown(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrPeerDown) || strings.Contains(err.Error(), ErrPeerDown.Error())
}

// MeshPeer identifies one mesh member for JoinMesh: its unique name, its
// listening address (how members that must redial it reach it), and
// optionally an already-dialed client connection to it. A nil Client with
// a non-empty Addr is dialed by JoinMesh.
type MeshPeer struct {
	Name          string
	Network, Addr string
	Client        *Client
}

// meshLink pairs a peer's link with its dialing information and the
// lazily created remote mesh-class instance announcements travel through.
type meshLink struct {
	pl            *peerLink
	network, addr string
	remote        *Remote
}

// meshState is a member's view of the mesh: the consistent-hash directory
// and the live link per peer. It has its own lock; s.mu is never held
// around directory or link operations.
type meshState struct {
	dir  *mesh.Directory
	self MeshPeer // this member's own card, re-sent when links are replaced

	mu    sync.Mutex
	links map[string]*meshLink // peer name → live link
}

// meshState returns the mesh view, or nil when this server never joined
// one. The field itself is published under s.mu.
func (s *Server) meshState() *meshState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mesh
}

// JoinMesh makes this server a member of a federated mesh under
// self.Name. Each peer is linked (dialing peers whose Client is nil),
// entered into the consistent-hash directory, and sent a best-effort
// announcement so members that joined earlier add us. From here on:
//
//   - new handle tags are minted inside self's directory arc, so a tag
//     alone names its owning member;
//   - named objects another member owns resolve transparently — a client
//     asking this server for one gets a proxy routed over the mesh link
//     (session.go's execLoadNamed → meshResolveNamed);
//   - MeshCreateNamed places new named instances on the member the
//     directory assigns;
//   - declared multicast topics fan out across the mesh loop-free
//     (fanout.go's relay-marked taps).
//
// JoinMesh may be called once; joining an already-joined server is an
// error. The existing chain API (DialUpstream) is untouched — a chain is
// the degenerate mesh of one self-owned arc.
func (s *Server) JoinMesh(self MeshPeer, peers ...MeshPeer) error {
	if self.Name == "" {
		return errors.New("clam: mesh member needs a name")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("clam: server closed")
	}
	if s.mesh != nil {
		s.mu.Unlock()
		return errors.New("clam: server already joined a mesh")
	}
	ms := &meshState{
		dir:   mesh.New(self.Name, self.Network, self.Addr, 0),
		self:  self,
		links: make(map[string]*meshLink),
	}
	s.mesh = ms
	s.mu.Unlock()

	for _, p := range peers {
		if p.Name == "" || p.Name == self.Name {
			return fmt.Errorf("clam: bad mesh peer name %q", p.Name)
		}
		c := p.Client
		if c == nil {
			if p.Addr == "" {
				return fmt.Errorf("clam: mesh peer %q has neither a client nor an address", p.Name)
			}
			var err error
			c, err = Dial(p.Network, p.Addr)
			if err != nil {
				return fmt.Errorf("clam: dialing mesh peer %q: %w", p.Name, err)
			}
		}
		pl, err := s.attachLink(c, linkMesh, p.Name)
		if err != nil {
			return err
		}
		ms.dir.Add(p.Name, p.Network, p.Addr)
		ms.mu.Lock()
		ms.links[p.Name] = &meshLink{pl: pl, network: p.Network, addr: p.Addr}
		ms.mu.Unlock()
	}

	// Constrain new handle tags to self's ring arc: rejection-sample the
	// table's usual uniform tags until one lands in an arc we own. Tags
	// remain arbitrary bit patterns to every consumer (§3.5.1); the arc
	// constraint just encodes ownership into the pattern. ~N tries expected
	// for an N-member mesh; the cap keeps a pathological ring from spinning,
	// falling back to an unconstrained (still valid) tag.
	s.handles.SetTagMinter(func() uint64 {
		var tag uint64
		for i := 0; i < 256; i++ {
			tag = rand.Uint64()
			if ms.dir.Owner(tag) == self.Name {
				return tag
			}
		}
		return tag
	})

	// Best-effort announce: members that joined before us learn our name
	// and address. Members that have not joined yet reject the announce
	// (no mesh state) and learn of us when they join and announce instead.
	for _, p := range peers {
		if err := s.announceTo(ms, p.Name, self); err != nil {
			s.logf("clam: mesh announce to %q: %v", p.Name, err)
		}
	}
	return nil
}

// announceTo sends self's membership card to one peer through its mesh
// class.
func (s *Server) announceTo(ms *meshState, peer string, self MeshPeer) error {
	r, err := ms.meshRemote(peer)
	if err != nil {
		return err
	}
	xit := s.exec.yieldCurrent()
	defer s.exec.resume(xit)
	return r.Call("Announce", self.Name, self.Network, self.Addr)
}

// meshRemote returns (lazily creating) the remote mesh-class instance on
// the named peer.
func (ms *meshState) meshRemote(peer string) (*Remote, error) {
	ms.mu.Lock()
	ml := ms.links[peer]
	if ml == nil {
		ms.mu.Unlock()
		return nil, fmt.Errorf("clam: no mesh link to %q", peer)
	}
	if ml.remote != nil {
		r := ml.remote
		ms.mu.Unlock()
		return r, nil
	}
	pl := ml.pl
	ms.mu.Unlock()

	r, err := pl.c.New("mesh", 1)
	if err != nil {
		return nil, fmt.Errorf("clam: loading mesh class on %q: %w", peer, err)
	}
	ms.mu.Lock()
	if cur := ms.links[peer]; cur != nil && cur.pl == pl {
		if cur.remote != nil {
			r = cur.remote
		} else {
			cur.remote = r
		}
	}
	ms.mu.Unlock()
	return r, nil
}

// linkTo returns the live peer link for a member, or nil.
func (ms *meshState) linkTo(peer string) *peerLink {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ml := ms.links[peer]; ml != nil {
		return ml.pl
	}
	return nil
}

// MeshOwner reports which mesh member owns the named object's directory
// arc. ok is false when this server is not a mesh member.
func (s *Server) MeshOwner(name string) (string, bool) {
	ms := s.meshState()
	if ms == nil {
		return "", false
	}
	return ms.dir.OwnerOfName(name), true
}

// MeshDirectory exposes the member's consistent-hash directory (nil when
// not in a mesh) — observability and tests; routing goes through the
// server's own methods.
func (s *Server) MeshDirectory() *mesh.Directory {
	ms := s.meshState()
	if ms == nil {
		return nil
	}
	return ms.dir
}

// MeshCreateNamed creates a named instance of class on whichever mesh
// member the directory assigns name to — there, CreateInstance + SetNamed;
// here, the same done locally. Not in a mesh, it degenerates to local
// creation. The instance is then reachable from every member by name.
func (s *Server) MeshCreateNamed(class, name string) error {
	ms := s.meshState()
	if ms == nil || ms.dir.Owns(mesh.HashName(name)) {
		return s.createNamedLocal(class, name)
	}
	owner := ms.dir.OwnerOfName(name)
	if !ms.dir.Up(owner) {
		return fmt.Errorf("%w: %s (owner of %q)", ErrPeerDown, owner, name)
	}
	r, err := ms.meshRemote(owner)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrPeerDown, owner, err)
	}
	xit := s.exec.yieldCurrent()
	defer s.exec.resume(xit)
	return r.Call("CreateNamed", class, name)
}

// createNamedLocal instantiates class in this address space and publishes
// it under name.
func (s *Server) createNamedLocal(class, name string) error {
	obj, _, err := s.CreateInstance(class, 0, &Env{Server: s})
	if err != nil {
		return fmt.Errorf("clam: creating %q as %q: %w", class, name, err)
	}
	s.SetNamed(name, obj)
	return nil
}

// meshResolveNamed is execLoadNamed's miss hook: when a client asks for a
// named object this server does not hold, the directory may say another
// member owns it. Returns (nil, false) to fall through to the ordinary
// not-found reply; (err, true) to surface a routing failure (ErrPeerDown);
// or (*Remote, true) with the owner's object imported and cached, which
// execLoadNamed then re-exports to the client as a proxy handle — the
// same re-minting a chain hop does (§3.5.1 across hops).
func (s *Server) meshResolveNamed(sess *session, name string) (any, bool) {
	ms := s.meshState()
	if ms == nil {
		return nil, false
	}
	owner := ms.dir.OwnerOfName(name)
	if owner == ms.dir.Self() {
		return nil, false
	}
	if !ms.dir.Up(owner) {
		return fmt.Errorf("%w: %s (owner of %q)", ErrPeerDown, owner, name), true
	}
	pl := ms.linkTo(owner)
	if pl == nil {
		return fmt.Errorf("%w: %s (no link)", ErrPeerDown, owner), true
	}
	if pl.br != nil && pl.br.open() {
		s.metrics.meshPeerDown.Add(1)
		return fmt.Errorf("%w: %s (circuit open)", ErrPeerDown, owner), true
	}
	// The import is a round trip on the peer link; hand the executor slot
	// off meanwhile, like any forwarded call.
	xit := s.exec.yieldCurrent()
	r, err := pl.c.NamedObject(name)
	s.exec.resume(xit)
	if err != nil {
		// Owner is up but has no such instance (or the load failed):
		// surface its answer rather than inventing a local not-found.
		return fmt.Errorf("clam: resolving %q on mesh member %s: %w", name, owner, err), true
	}
	// Cache the import: later lookups (and re-exports to other clients)
	// hit the named map directly, and detachLink unpublishes it if the
	// owner's link dies.
	s.SetNamed(name, r)
	s.metrics.meshRouted.Add(1)
	return r, true
}

// meshPeerUp reports the directory's liveness belief about a link's
// member. Non-mesh links (and non-mesh servers) are always "up" — their
// failure handling is the breaker's alone.
func (s *Server) meshPeerUp(pl *peerLink) bool {
	ms := s.meshState()
	if ms == nil || pl.name == "" {
		return true
	}
	return ms.dir.Up(pl.name)
}

// meshLinkResult is attachLink's membership hook: every reconnect outcome
// on a mesh link updates the directory, so routing fails fast the moment
// the resurrect loop starts losing and recovers the moment it wins.
func (s *Server) meshLinkResult(pl *peerLink, ok bool) {
	ms := s.meshState()
	if ms == nil || pl.name == "" {
		return
	}
	ms.dir.SetUp(pl.name, ok)
}

// meshSnapshot summarizes mesh membership for Server.Metrics.
func (s *Server) meshSnapshot() *MeshStats {
	ms := s.meshState()
	if ms == nil {
		return nil
	}
	return &MeshStats{
		Enabled:          true,
		Self:             ms.dir.Self(),
		Peers:            uint64(ms.dir.Len()),
		PeersUp:          uint64(ms.dir.UpCount()),
		RoutedNamed:      s.metrics.meshRouted.Load(),
		PeerDownFailures: s.metrics.meshPeerDown.Load(),
	}
}

// handleAnnounce processes a peer's membership card (MeshClass.Announce).
// A new member is added to the directory. A known member re-announcing is
// the rejoin path: if our existing link to it still carries traffic it is
// simply marked up; if the link is dead — a restarted peer can never
// resume the old session (epoch fencing, session.go) — the old link is
// detached (proxy handles revoked, fan-out taps forgotten) and, when the
// card carries an address, a fresh one is dialed and linked.
func (s *Server) handleAnnounce(name, network, addr string) error {
	ms := s.meshState()
	if ms == nil {
		return errors.New("clam: this server has not joined a mesh")
	}
	if name == ms.dir.Self() {
		return fmt.Errorf("clam: mesh member %q announcing to itself", name)
	}
	ms.dir.Add(name, network, addr)

	ms.mu.Lock()
	ml := ms.links[name]
	ms.mu.Unlock()

	// Probing and redialing are wire round trips inside a dispatched
	// handler; hand the executor slot off for the duration.
	xit := s.exec.yieldCurrent()
	defer s.exec.resume(xit)

	if ml != nil {
		if err := ml.pl.c.Sync(); err == nil {
			ms.dir.SetUp(name, true)
			return nil
		}
		// The old link cannot carry calls (a restarted peer refuses its
		// resume token). Replace it.
		ms.mu.Lock()
		delete(ms.links, name)
		ms.mu.Unlock()
		s.detachLink(ml.pl)
	}
	if addr == "" {
		return fmt.Errorf("clam: mesh member %q has no link and announced no address", name)
	}
	c, err := Dial(network, addr)
	if err != nil {
		ms.dir.SetUp(name, false)
		return fmt.Errorf("clam: redialing mesh member %q: %w", name, err)
	}
	pl, err := s.attachLink(c, linkMesh, name)
	if err != nil {
		c.Close()
		return err
	}
	ms.mu.Lock()
	ms.links[name] = &meshLink{pl: pl, network: network, addr: addr}
	ms.mu.Unlock()
	ms.dir.SetUp(name, true)
	// Announce back over the fresh link so the rejoined peer marks it as a
	// peer session (Sync loop prevention) and refreshes our card.
	if err := s.announceTo(ms, name, ms.self); err != nil {
		s.logf("clam: re-announce to rejoined %q: %v", name, err)
	}
	return nil
}

// --- the built-in "mesh" class -----------------------------------------------------

// MeshClass is the loadable class mesh members speak membership through —
// announcements and placement as ordinary remote calls, so federation
// needs no new wire message types (the same trick as FanoutClass). Every
// server registers it; only mesh members answer usefully.
type MeshClass struct {
	srv    *Server
	sessID uint64
}

// Announce records the caller's membership card: name plus the address
// other members can (re)dial it at. Announcing is how a member joins the
// rosters of members that joined before it, and how a restarted member
// gets its dead links replaced. It also marks the announcing session as a
// peer's link, which scopes its Sync relays (session.go's fromPeer) so
// Syncs cross each mesh edge at most once instead of ping-ponging around
// the cycle forever.
func (m *MeshClass) Announce(name, network, addr string) error {
	if m.sessID != 0 {
		if sess := m.srv.sessionByID(m.sessID); sess != nil {
			sess.fromPeer.Store(true)
		}
	}
	return m.srv.handleAnnounce(name, network, addr)
}

// Roster renders this member's directory view, one member per line:
// "name network addr up". A joining member may seed from any existing
// member's roster.
func (m *MeshClass) Roster() (string, error) {
	ms := m.srv.meshState()
	if ms == nil {
		return "", errors.New("clam: this server has not joined a mesh")
	}
	var b strings.Builder
	for _, p := range ms.dir.Peers() {
		fmt.Fprintf(&b, "%s %s %s %t\n", p.Name, p.Network, p.Addr, p.Up)
	}
	return b.String(), nil
}

// CreateNamed instantiates class locally and publishes it under name —
// the receiving half of MeshCreateNamed's placement.
func (m *MeshClass) CreateNamed(class, name string) error {
	return m.srv.createNamedLocal(class, name)
}

// RegisterMeshClass adds the "mesh" class to lib. NewServer calls it
// automatically; exported for libraries shared across servers.
func RegisterMeshClass(lib *dynload.Library) error {
	return lib.Register(dynload.Class{
		Name:    "mesh",
		Version: 1,
		Type:    reflect.TypeOf(&MeshClass{}),
		New: func(env any) (any, error) {
			e, ok := env.(*Env)
			if !ok || e.Server == nil {
				return nil, fmt.Errorf("clam: mesh class requires a server environment, got %T", env)
			}
			return &MeshClass{srv: e.Server, sessID: e.SessionID}, nil
		},
	})
}
