package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// End-to-end deadline tests (§6.8): budget propagation onto the wire and
// into handler contexts, wire-level cancellation of queued and running
// calls, shedding of doomed work before dispatch, the admission layer,
// and the ablation switch that turns shedding back off.

// budgetOnlyCtx carries a deadline — so the client stamps a wire budget —
// but its Done channel never fires: the client waits for the real reply
// however late. This isolates the server-side shedding machinery from
// client-side abandonment (which would also send a MsgCancel).
type budgetOnlyCtx struct{ d time.Time }

func (b budgetOnlyCtx) Deadline() (time.Time, bool) { return b.d, true }
func (b budgetOnlyCtx) Done() <-chan struct{}       { return nil }
func (b budgetOnlyCtx) Err() error                  { return nil }
func (b budgetOnlyCtx) Value(any) any               { return nil }

func budgetOnly(d time.Duration) context.Context {
	return budgetOnlyCtx{d: time.Now().Add(d)}
}

// TestDeadlineBudgetReachesHandler: a context deadline on the caller's
// side surfaces inside the handler as a real context deadline, decremented
// by transit; a call without a deadline injects an unbounded context.
func TestDeadlineBudgetReachesHandler(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}

	var remUS int64
	if err := obj.CallIntoCtx(budgetOnly(500*time.Millisecond), "Remaining", []any{&remUS}); err != nil {
		t.Fatal(err)
	}
	if remUS <= 0 || remUS > 500_000 {
		t.Errorf("handler's remaining budget = %dµs, want in (0, 500000]", remUS)
	}

	// No deadline: the handler must see no deadline either.
	if err := obj.CallInto("Remaining", []any{&remUS}); err != nil {
		t.Fatal(err)
	}
	if remUS != -1 {
		t.Errorf("remaining without a deadline = %d, want -1", remUS)
	}

	m := srv.Metrics().Overload
	if !m.SheddingEnabled {
		t.Error("SheddingEnabled = false, want true by default")
	}
	if m.BudgetedCalls != 1 {
		t.Errorf("BudgetedCalls = %d, want 1", m.BudgetedCalls)
	}
}

// TestDeadlineExpiryCancelsRunningHandler: when the budget runs out
// mid-execution, the handler's context fires, the handler bails with
// ctx.Err(), and the caller sees the typed deadline error — without any
// client-side abandonment in play.
func TestDeadlineExpiryCancelsRunningHandler(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := srv.Handles().Get(obj.Handle())
	if err != nil {
		t.Fatal(err)
	}
	slp := o.(*sleeper)

	var out string
	err = obj.CallIntoCtx(budgetOnly(60*time.Millisecond), "Nap", []any{&out}, int64(1_000_000))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Nap past its budget = %v, want ErrDeadlineExceeded", err)
	}
	completed, cancelled := slp.counts()
	if completed != 0 || cancelled != 1 {
		t.Errorf("sleeper counts = %d completed / %d cancelled, want 0/1", completed, cancelled)
	}
}

// TestDeadlineShedsQueuedCall: a budgeted call whose budget is spent while
// it waits behind a busy worker is refused at dispatch — fast StatusDeadline
// reply, the handler never runs, ShedExpired moves.
func TestDeadlineShedsQueuedCall(t *testing.T) {
	srv, path := startServer(t, WithDispatchWorkers(1))
	c := dialClient(t, path)
	s1, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only worker for 200ms.
	blocked := make(chan error, 1)
	go func() {
		var out string
		blocked <- s1.CallInto("Nap", []any{&out}, int64(200_000))
	}()
	waitFor(t, 3*time.Second, "blocking Nap to start", func() bool {
		return srv.Metrics().Calls["sleeper.Nap"] >= 1
	})

	// This call's 50ms budget is spent long before the worker frees up at
	// ~200ms; the dispatcher must shed it without invoking the handler.
	var remUS int64 = 12345
	err = s2.CallIntoCtx(budgetOnly(50*time.Millisecond), "Remaining", []any{&remUS})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued call past its budget = %v, want ErrDeadlineExceeded", err)
	}
	if remUS != 12345 {
		t.Errorf("out-parameter written (%d) for a shed call", remUS)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocking Nap: %v", err)
	}

	m := srv.Metrics()
	if m.Overload.ShedExpired != 1 {
		t.Errorf("ShedExpired = %d, want 1", m.Overload.ShedExpired)
	}
	if got := m.Calls["sleeper.Remaining"]; got != 0 {
		t.Errorf("sleeper.Remaining ran %d times, want 0 (shed before dispatch)", got)
	}
}

// TestWithoutDeadlineSheddingExecutesDoomedCall: the ablation switch. The
// same doomed call executes anyway — arrival order, however dead — which
// is exactly the congestion-collapse behavior BENCH_7 measures. The
// handler still sees the (expired) deadline: only shedding is disabled,
// never the context plumbing.
func TestWithoutDeadlineSheddingExecutesDoomedCall(t *testing.T) {
	srv, path := startServer(t, WithDispatchWorkers(1), WithoutDeadlineShedding())
	c := dialClient(t, path)
	s1, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}

	blocked := make(chan error, 1)
	go func() {
		var out string
		blocked <- s1.CallInto("Nap", []any{&out}, int64(200_000))
	}()
	waitFor(t, 3*time.Second, "blocking Nap to start", func() bool {
		return srv.Metrics().Calls["sleeper.Nap"] >= 1
	})

	var remUS int64
	if err := s2.CallIntoCtx(budgetOnly(50*time.Millisecond), "Remaining", []any{&remUS}); err != nil {
		t.Fatalf("doomed call with shedding disabled = %v, want execution", err)
	}
	if remUS >= 0 {
		t.Errorf("remaining budget = %dµs, want negative (budget overdrawn at execution)", remUS)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocking Nap: %v", err)
	}

	m := srv.Metrics().Overload
	if m.SheddingEnabled {
		t.Error("SheddingEnabled = true under WithoutDeadlineShedding")
	}
	if m.ShedExpired != 0 {
		t.Errorf("ShedExpired = %d, want 0 with shedding disabled", m.ShedExpired)
	}
}

// TestCancelStopsRunningHandler: a caller cancelling its context mid-call
// ships a MsgCancel that lands on the in-flight handler's context — the
// handler observes it and bails long before its own work completes.
func TestCancelStopsRunningHandler(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := srv.Handles().Get(obj.Handle())
	if err != nil {
		t.Fatal(err)
	}
	slp := o.(*sleeper)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		var out string
		done <- obj.CallIntoCtx(ctx, "Nap", []any{&out}, int64(2_000_000))
	}()
	waitFor(t, 3*time.Second, "Nap to start", func() bool {
		return srv.Metrics().Calls["sleeper.Nap"] >= 1
	})
	time.Sleep(50 * time.Millisecond) // let the handler register as live
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled call reported success")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled call did not return")
	}
	waitFor(t, 3*time.Second, "handler to observe the cancel", func() bool {
		_, cancelled := slp.counts()
		return cancelled == 1
	})
	completed, _ := slp.counts()
	if completed != 0 {
		t.Errorf("sleeper completed %d naps, want 0", completed)
	}

	if got := c.Metrics().CancelsSent; got != 1 {
		t.Errorf("client CancelsSent = %d, want 1", got)
	}
	m := srv.Metrics().Overload
	if m.CancelsReceived != 1 {
		t.Errorf("CancelsReceived = %d, want 1", m.CancelsReceived)
	}
	if m.HandlerCancels != 1 {
		t.Errorf("HandlerCancels = %d, want 1", m.HandlerCancels)
	}
	if m.ShedCancelled != 0 {
		t.Errorf("ShedCancelled = %d, want 0 (the call was already running)", m.ShedCancelled)
	}
}

// TestAdmissionRefusesWhenQueueEstimateHigh: with WithMaxQueueDelay set,
// the read loop refuses a synchronous call outright once the queue-wait
// estimate (pending frames × service-time EWMA / workers) exceeds the
// ceiling — and admits again when the backlog clears.
func TestAdmissionRefusesWhenQueueEstimateHigh(t *testing.T) {
	srv, path := startServer(t, WithMaxQueueDelay(time.Millisecond))
	c := dialClient(t, path)
	obj, err := c.New("sleeper", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Poison the estimator: a deep backlog of slow frames.
	srv.metrics.pendingFrames.Store(1000)
	srv.metrics.svcTime.Store(int64(time.Millisecond))

	var remUS int64
	err = obj.CallInto("Remaining", []any{&remUS})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("call against a saturated queue = %v, want ErrDeadlineExceeded", err)
	}
	if got := srv.Metrics().Overload.ShedAdmission; got != 1 {
		t.Errorf("ShedAdmission = %d, want 1", got)
	}

	// Backlog clears: the same call is admitted and executes.
	srv.metrics.pendingFrames.Store(0)
	if err := obj.CallInto("Remaining", []any{&remUS}); err != nil {
		t.Fatalf("call after backlog cleared: %v", err)
	}
	if remUS != -1 {
		t.Errorf("Remaining = %d, want -1", remUS)
	}
}

// TestDeadlineChainBudgetAndCancel: §6.8 across the three-address-space
// chain (top client → middle server → bottom server). The budget rides the
// relay — each hop anchors it at frame arrival, so transit and queue time
// decrement it — and a cancel fired at the top interrupts the handler
// running two hops down, with every tier's counters moving.
func TestDeadlineChainBudgetAndCancel(t *testing.T) {
	ch := startChain(t, nil)
	sobj, _, err := ch.bottom.CreateInstance("sleeper", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch.bottom.SetNamed("naps", sobj)
	slp := sobj.(*sleeper)
	if err := ch.mid.ImportNamed(ch.up, "naps"); err != nil {
		t.Fatal(err)
	}
	naps, err := ch.top.NamedObject("naps")
	if err != nil {
		t.Fatal(err)
	}

	// Budget propagation: the deadline set at the top is visible — already
	// partially spent — inside the bottom's handler.
	var remUS int64
	if err := naps.CallIntoCtx(budgetOnly(500*time.Millisecond), "Remaining", []any{&remUS}); err != nil {
		t.Fatal(err)
	}
	if remUS <= 0 || remUS > 500_000 {
		t.Errorf("remaining budget two hops down = %dµs, want in (0, 500000]", remUS)
	}
	if got := ch.mid.Metrics().Overload.BudgetedCalls; got != 1 {
		t.Errorf("middle BudgetedCalls = %d, want 1", got)
	}
	if got := ch.bottom.Metrics().Overload.BudgetedCalls; got != 1 {
		t.Errorf("bottom BudgetedCalls = %d, want 1", got)
	}

	// Cancel propagation: top cancels mid-call; the MsgCancel descends the
	// chain hop by hop and lands on the bottom's running handler.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		var out string
		done <- naps.CallIntoCtx(ctx, "Nap", []any{&out}, int64(2_000_000))
	}()
	waitFor(t, 3*time.Second, "Nap to start at the bottom", func() bool {
		return ch.bottom.Metrics().Calls["sleeper.Nap"] >= 1
	})
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled chained call reported success")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled chained call did not return")
	}
	waitFor(t, 3*time.Second, "bottom handler to observe the cancel", func() bool {
		_, cancelled := slp.counts()
		return cancelled == 1
	})
	completed, _ := slp.counts()
	if completed != 0 {
		t.Errorf("bottom sleeper completed %d naps, want 0", completed)
	}

	if got := ch.top.Metrics().CancelsSent; got != 1 {
		t.Errorf("top CancelsSent = %d, want 1", got)
	}
	midO := ch.mid.Metrics().Overload
	if midO.CancelsReceived != 1 {
		t.Errorf("middle CancelsReceived = %d, want 1", midO.CancelsReceived)
	}
	if midO.CancelsPropagated != 1 {
		t.Errorf("middle CancelsPropagated = %d, want 1", midO.CancelsPropagated)
	}
	botO := ch.bottom.Metrics().Overload
	if botO.CancelsReceived != 1 {
		t.Errorf("bottom CancelsReceived = %d, want 1", botO.CancelsReceived)
	}
	if botO.HandlerCancels != 1 {
		t.Errorf("bottom HandlerCancels = %d, want 1", botO.HandlerCancels)
	}
}

// TestChaosCancelDuringPartition is the §6.8 acceptance chaos scenario on
// the three-address-space chain: a budgeted call is fired into a
// partitioned link, the caller cancels mid-partition (the live MsgCancel
// is swallowed too), and the link then dies. On resurrection the client
// re-announces the cancel BEFORE replaying the unacknowledged frame, so
// the middle server sheds the replayed call instead of executing it — a
// cancelled numbered call never runs after a resurrection, and it never
// reaches the bottom tier at all. Every counter is asserted exactly.
func TestChaosCancelDuringPartition(t *testing.T) {
	bottom, bottomPath := startServer(t)
	sobj, _, err := bottom.CreateInstance("sleeper", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bottom.SetNamed("naps", sobj)
	slp := sobj.(*sleeper)

	mid := NewServer(testLibrary(t),
		WithServerLog(func(format string, args ...any) { t.Logf("mid: "+format, args...) }),
		WithResumeWindow(5*time.Second))
	midPath := filepath.Join(t.TempDir(), "mid.sock")
	if _, err := mid.Listen("unix", midPath); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mid.Close() })
	up, err := mid.DialUpstream("unix", bottomPath,
		WithClientLog(func(format string, args ...any) { t.Logf("mid-up: "+format, args...) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := mid.ImportNamed(up, "naps"); err != nil {
		t.Fatal(err)
	}

	c, cl := chaosClient(t, midPath, WithCallTimeout(2*time.Second))
	naps, err := c.NamedObject("naps")
	if err != nil {
		t.Fatal(err)
	}
	// Sanity round trip — and it acknowledges everything sent so far, so
	// exactly one frame (the doomed Nap) is replayable later.
	var remUS int64
	if err := naps.CallInto("Remaining", []any{&remUS}); err != nil {
		t.Fatal(err)
	}

	// Partition the RPC link: the call frame and the live cancel both
	// vanish into the partition, while the client believes they were sent.
	cl.rpc().Partition()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	var out string
	err = naps.CallIntoCtx(ctx, "Nap", []any{&out}, int64(1_000_000))
	cancel()
	if err == nil {
		t.Fatal("call into a partition reported success")
	}
	if got := c.Metrics().CancelsSent; got != 1 {
		t.Fatalf("CancelsSent mid-partition = %d, want 1", got)
	}

	// Heal, then kill the link: the client resurrects the session, sends
	// the cancel re-announcement, and replays the lost frame.
	cl.rpc().Heal()
	cl.rpc().Sever()
	waitFor(t, 5*time.Second, "client to resume the session", func() bool {
		return c.Metrics().Resilience.Reconnects >= 1
	})
	waitFor(t, 5*time.Second, "replayed call to be shed", func() bool {
		return mid.Metrics().Overload.ShedCancelled >= 1
	})
	// A post-resume round trip orders us after the replayed frame's fate.
	waitFor(t, 3*time.Second, "post-resume call", func() bool {
		return naps.CallInto("Remaining", []any{&remUS}) == nil
	})

	cm := c.Metrics()
	if cm.CancelsSent != 2 {
		t.Errorf("CancelsSent = %d, want exactly 2 (live announcement + resume re-announcement)", cm.CancelsSent)
	}
	if cm.Resilience.ReplayedCalls != 1 {
		t.Errorf("ReplayedCalls = %d, want exactly 1 (the cancelled Nap frame)", cm.Resilience.ReplayedCalls)
	}
	mm := mid.Metrics()
	if mm.Overload.CancelsReceived != 1 {
		t.Errorf("middle CancelsReceived = %d, want exactly 1 (the partition ate the live one)", mm.Overload.CancelsReceived)
	}
	if mm.Overload.ShedCancelled != 1 {
		t.Errorf("middle ShedCancelled = %d, want exactly 1", mm.Overload.ShedCancelled)
	}
	if mm.Resilience.DedupDrops != 0 {
		t.Errorf("middle DedupDrops = %d, want 0 (the replayed frame was new to the server)", mm.Resilience.DedupDrops)
	}
	// The cancelled call never executed anywhere: not relayed, not run.
	if got := bottom.Metrics().Calls["sleeper.Nap"]; got != 0 {
		t.Errorf("bottom executed sleeper.Nap %d times, want 0", got)
	}
	completed, cancelled := slp.counts()
	if completed != 0 || cancelled != 0 {
		t.Errorf("bottom sleeper counts = %d completed / %d cancelled, want 0/0", completed, cancelled)
	}
	if got := up.Metrics().CancelsSent; got != 0 {
		t.Errorf("middle propagated %d cancels downstream, want 0 (the call never started relaying)", got)
	}
}

// TestMeshDeadlineAndCancel: the same two properties across a mesh-routed
// hop — a client enters at member a, the object lives on member b. The
// budget crosses the peer link, and a cancel interrupts the handler on
// the owner, counted as propagated on the entry member.
func TestMeshDeadlineAndCancel(t *testing.T) {
	m := startMesh(t, []string{"a", "b"})
	owned := m.createOwnedBy(t, "sleeper", "zz")
	c := dialClient(t, m.paths["a"])
	rem, err := c.NamedObject(owned["b"])
	if err != nil {
		t.Fatal(err)
	}

	var remUS int64
	if err := rem.CallIntoCtx(budgetOnly(500*time.Millisecond), "Remaining", []any{&remUS}); err != nil {
		t.Fatal(err)
	}
	if remUS <= 0 || remUS > 500_000 {
		t.Errorf("remaining budget across the mesh hop = %dµs, want in (0, 500000]", remUS)
	}
	if got := m.srvs["b"].Metrics().Overload.BudgetedCalls; got < 1 {
		t.Errorf("owner BudgetedCalls = %d, want >= 1", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		var out string
		done <- rem.CallIntoCtx(ctx, "Nap", []any{&out}, int64(2_000_000))
	}()
	waitFor(t, 3*time.Second, "Nap to start on the owner", func() bool {
		return m.srvs["b"].Metrics().Calls["sleeper.Nap"] >= 1
	})
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled mesh-routed call reported success")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled mesh-routed call did not return")
	}
	waitFor(t, 3*time.Second, "owner handler to observe the cancel", func() bool {
		return m.srvs["b"].Metrics().Overload.HandlerCancels >= 1
	})
	aO := m.srvs["a"].Metrics().Overload
	if aO.CancelsReceived != 1 {
		t.Errorf("entry member CancelsReceived = %d, want 1", aO.CancelsReceived)
	}
	if aO.CancelsPropagated != 1 {
		t.Errorf("entry member CancelsPropagated = %d, want 1", aO.CancelsPropagated)
	}
	bO := m.srvs["b"].Metrics().Overload
	if bO.CancelsReceived != 1 {
		t.Errorf("owner CancelsReceived = %d, want 1", bO.CancelsReceived)
	}
}
