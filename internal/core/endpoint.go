package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/bundle"
	"clam/internal/handle"
	"clam/internal/rpc"
	"clam/internal/task"
	"clam/internal/wire"
	"clam/internal/xdr"
)

// endpoint is the symmetric peer engine underneath both the client runtime
// and the server's per-client session. The paper describes two mirror-image
// runtimes — a client making calls down and receiving upcalls, a server
// receiving calls and making upcalls back up (§4.1, §4.4) — but the
// machinery on each side is the same: a pair of framed channels, sequence
// allocation, a table of armed reply waits, a batch buffer whose flush
// coalesces with trailing frames, reply coalescing toward the peer,
// heartbeat liveness on both channels, and teardown plumbing. Client and
// session are thin role wrappers over one endpoint, which is also what
// lets a server dial a lower server and forward calls/upcalls across hops
// (see forward.go): the middle process is simply both roles at once.
type endpoint struct {
	// rpcc holds the RPC channel. It is an atomic pointer because session
	// resurrection swaps a fresh connection in mid-life; every user goes
	// through rpcConn()/setRPCConn.
	rpcc atomic.Pointer[wire.Conn]
	reg  *bundle.Registry

	// mkCtx supplies the role's bundling hooks (client: Remote wrapping;
	// session: handle table + RUC binding). Set by the wrapper after
	// construction, since the hooks close over the wrapper itself.
	mkCtx func() *bundle.Ctx

	// The second channel of §4.4. Attached at dial time on the client,
	// when the peer's upcall connection arrives on the server — and
	// replaced wholesale when a resumed session re-pairs.
	upMu   sync.Mutex
	upConn *wire.Conn

	// seq numbers this endpoint's outgoing request stream: calls and load
	// ops on a client endpoint, upcalls on a session endpoint. waits holds
	// the armed reply slots for that stream.
	seq   atomic.Uint64
	waits waitTable

	// batch accumulates asynchronous calls (§3.4): the first four bytes
	// are a count placeholder patched at flush, so the batch body ships
	// without a copy. batchEnc is the persistent encoder writing into it.
	// All guarded by bmu.
	bmu        sync.Mutex
	batch      xdr.Buffer
	batchEnc   xdr.Stream
	batchCount int

	batching bool
	maxBatch int

	// Session-resurrection state. numbered turns on frame-level send
	// sequence numbering of MsgCall batches plus the bounded retransmit
	// buffer (rt) of unacknowledged batch bodies — both only when the
	// server granted a resume token, so the default configuration pays
	// nothing. All guarded by bmu alongside the batch they shadow.
	numbered bool
	sendSeq  uint64
	rt       []rtEntry
	rtBytes  int

	// cancelled maps a numbered call's seq to the frame seq that carried
	// it, recorded when the caller abandoned the call (ctx cancelled or
	// deadline hit) while the frame was still unacknowledged; guarded by
	// bmu. Resume re-announces these before replaying rt, so a cancelled
	// numbered call never executes after a resurrection; pruneRTLocked
	// drops entries once the covering frame is acknowledged. Only
	// populated on client endpoints with resume granted — the map stays
	// nil otherwise.
	cancelled map[uint64]uint64

	// rtDroppedTo is the highest frame sequence evicted unacknowledged
	// from rt under the maxRetransmitBytes cap (0 = none); guarded by bmu.
	// At resume time it turns the cap's silent possible-loss into a
	// definitive answer: if the peer has not received everything up to it,
	// the replay range has a hole and the resume must fail rather than
	// resurrect a session that silently lost calls. replayGap records that
	// verdict for error reporting.
	rtDroppedTo uint64
	replayGap   atomic.Bool

	// callTimeout bounds each armed wait: the client's WithCallTimeout on
	// call replies, the server's WithUpcallTimeout on upcall replies.
	callTimeout time.Duration

	// replyPending marks buffered replies awaiting a flush: a dispatch
	// burst's replies ride one kernel write instead of one per message
	// (see queueReply / flushReplies).
	replyPending atomic.Bool

	// Liveness: the arrival time (unix nanos) of the most recent frame on
	// each channel, heartbeat configuration, and whether the peer was
	// declared dead. lastUp is zero until the upcall channel attaches.
	hbInterval time.Duration
	hbWindow   time.Duration
	lastRPC    atomic.Int64
	lastUp     atomic.Int64
	hbLost     atomic.Bool

	// link counts this endpoint's channel-level robustness events. The
	// client allocates its own; sessions share the server's, so per-hop
	// traffic aggregates in one place.
	link *linkCounters

	// linkDown marks the window between losing the link and a successful
	// resume: sends fail fast with ErrDisconnected instead of hitting a
	// dead connection, and heartbeats hold their fire. resMu serializes
	// connection installs (resume, park) against shutdown, so a late
	// resume cannot smuggle a live connection past a closed endpoint.
	linkDown atomic.Bool
	resMu    sync.Mutex

	// byeSeen records a deliberate MsgBye from the peer: the link did not
	// fail, the peer left. A session whose client said goodbye is dropped,
	// never parked for resumption.
	byeSeen atomic.Bool

	closeOnce sync.Once
	closedCh  chan struct{}
	logf      func(string, ...any)
}

// rtEntry is one unacknowledged numbered batch held for replay: the frame
// sequence it shipped under, a private copy of the encoded body, and how
// many call entries it carries (for the ReplayedCalls metric).
type rtEntry struct {
	seq   uint64
	body  []byte
	calls int
}

// maxRetransmitBytes bounds the replay buffer. Past it the oldest bodies
// are dropped — a long-disconnected purely-asynchronous workload degrades
// to possible loss (logged) rather than unbounded memory.
const maxRetransmitBytes = 4 << 20

// linkCounters are the channel-level robustness counters every endpoint
// keeps, whichever role it plays. They snapshot as LinkStats, the struct
// shared by MetricsSnapshot and ClientMetricsSnapshot.
type linkCounters struct {
	retries        atomic.Uint64
	timeouts       atomic.Uint64
	heartbeatsSent atomic.Uint64
	heartbeatsRecv atomic.Uint64
	reconnects     atomic.Uint64
	replayed       atomic.Uint64
	dedups         atomic.Uint64
	rtDrops        atomic.Uint64
	// cancels counts call seqs this endpoint shipped in MsgCancel frames
	// toward its peer — the CancelsPropagated side of the cancel ledger.
	cancels atomic.Uint64
}

func (lc *linkCounters) snapshot() LinkStats {
	return LinkStats{
		Retries:            lc.retries.Load(),
		Timeouts:           lc.timeouts.Load(),
		HeartbeatsSent:     lc.heartbeatsSent.Load(),
		HeartbeatsReceived: lc.heartbeatsRecv.Load(),
	}
}

// LinkStats is a point-in-time copy of one endpoint's channel counters —
// the same struct on both sides of a hop, because both sides run the same
// engine.
type LinkStats struct {
	// Retries counts retry attempts made under the WithRetry policy
	// (not counting each call's first attempt). Always zero on a server:
	// upcalls are never auto-retried.
	Retries uint64
	// Timeouts counts armed waits that hit the endpoint's deadline: on a
	// client, synchronous calls past WithCallTimeout; on a server, upcall
	// waits past WithUpcallTimeout.
	Timeouts uint64
	// HeartbeatsSent counts MsgPing frames this endpoint sent;
	// HeartbeatsReceived counts MsgPing/MsgPong frames that arrived.
	HeartbeatsSent, HeartbeatsReceived uint64
}

// --- reply wait table -------------------------------------------------------

// waiter is one armed reply slot. Exactly one of ev/ch is set, depending
// on whether the waiter is a cooperative task or a plain goroutine: a task
// that parked on a Go channel while holding the scheduler's run token
// would freeze every task, so tasks Block on an event instead.
type waiter struct {
	cur  *task.Task
	ev   *task.Event
	ch   chan *wire.Msg
	msg  *wire.Msg
	done bool

	// timer is the call-timeout timer, lazily created on the slot's first
	// timed wait and then Reset on every reuse — pooling it with the slot
	// keeps per-call timer allocation off the hot path. await always stops
	// and drains it before the slot is disarmed.
	timer *time.Timer
}

// waitTable maps in-flight sequence numbers to their reply slots. Slot
// lifetime is owned by the waiter: arm before sending, disarm (deferred)
// after the wait resolves. deliver never deletes, so a late reply racing a
// timeout is simply left unclaimed for the read loop to recycle.
type waitTable struct {
	mu   sync.Mutex
	m    map[uint64]*waiter
	pool sync.Pool // recycled goroutine waiters, each with an open buffered channel
}

// arm creates the reply slot for seq, choosing the wait strategy by
// caller context. Goroutine waiters (the common case: every client call
// outside a dispatch task) are pooled together with their reply channel,
// so a synchronous call allocates nothing here in steady state.
func (t *waitTable) arm(seq uint64) *waiter {
	var w *waiter
	if cur := task.Current(); cur != nil {
		w = &waiter{cur: cur, ev: &task.Event{}}
	} else if v, _ := t.pool.Get().(*waiter); v != nil {
		w = v
	} else {
		w = &waiter{ch: make(chan *wire.Msg, 1)}
	}
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[uint64]*waiter)
	}
	t.m[seq] = w
	t.mu.Unlock()
	return w
}

// disarm retires the slot for seq. Goroutine waiters always return to the
// pool: cancellation delivers a nil over the (still open) channel rather
// than closing it, so a cancelled slot is as reusable as a completed one.
// A delivery the waiter never consumed (a reply racing a timeout) is
// drained and released before the slot is reused.
func (t *waitTable) disarm(seq uint64) {
	t.mu.Lock()
	w := t.m[seq]
	delete(t.m, seq)
	t.mu.Unlock()
	if w == nil || w.ch == nil {
		return // task waiter: nothing pooled
	}
	select {
	case msg := <-w.ch:
		if msg != nil {
			msg.Release()
		}
	default:
	}
	w.msg, w.done = nil, false
	t.pool.Put(w)
}

// deliver completes the slot for seq. cancel delivers a nil message
// (timeout, shutdown); seq 0 cancels every in-flight slot. It reports
// whether msg was handed to a waiter — if not (late reply after a
// timeout), the caller still owns msg and should release it.
func (t *waitTable) deliver(seq uint64, msg *wire.Msg, cancel bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq == 0 {
		for _, w := range t.m {
			completeWaiterLocked(w, nil)
		}
		return false
	}
	w, ok := t.m[seq]
	if !ok || w.done {
		return false
	}
	if cancel {
		msg = nil
	}
	completeWaiterLocked(w, msg)
	return msg != nil
}

// cancelAll fails every armed wait (connection loss, shutdown).
func (t *waitTable) cancelAll() { t.deliver(0, nil, true) }

// take reads the delivered message out of a completed slot.
func (t *waitTable) take(w *waiter) *wire.Msg {
	t.mu.Lock()
	defer t.mu.Unlock()
	return w.msg
}

// completeWaiterLocked finishes one slot; t.mu must be held.
func completeWaiterLocked(w *waiter, msg *wire.Msg) {
	if w.done {
		return
	}
	w.done = true
	w.msg = msg
	if w.ev != nil {
		w.ev.Signal()
	} else if w.ch != nil {
		// Cancellation sends nil instead of closing: the buffered channel
		// stays usable, so the waiter can be pooled again after disarm.
		// The done guard above makes a second send impossible.
		w.ch <- msg
	}
}

// --- channels ---------------------------------------------------------------

// rpcConn returns the current RPC channel.
func (e *endpoint) rpcConn() *wire.Conn { return e.rpcc.Load() }

// setRPCConn installs (or replaces, on resume) the RPC channel.
func (e *endpoint) setRPCConn(c *wire.Conn) { e.rpcc.Store(c) }

// attachUpcall binds the endpoint's second channel. The first attach wins
// and stamps the channel live; a second attach on a live session is
// refused (resume goes through replaceUpcall instead).
func (e *endpoint) attachUpcall(c *wire.Conn) bool {
	e.upMu.Lock()
	if e.upConn != nil {
		e.upMu.Unlock()
		return false
	}
	e.upConn = c
	e.upMu.Unlock()
	e.lastUp.Store(time.Now().UnixNano())
	return true
}

// replaceUpcall swaps in a fresh upcall channel after a resume.
func (e *endpoint) replaceUpcall(c *wire.Conn) {
	e.upMu.Lock()
	e.upConn = c
	e.upMu.Unlock()
	e.lastUp.Store(time.Now().UnixNano())
}

// upcallConn returns the attached upcall channel, or nil.
func (e *endpoint) upcallConn() *wire.Conn {
	e.upMu.Lock()
	defer e.upMu.Unlock()
	return e.upConn
}

// --- waiting for replies ----------------------------------------------------

// await waits for the reply to seq armed as w, bounded by the endpoint's
// callTimeout and an optional context. The caller disarms the slot.
func (e *endpoint) await(ctx context.Context, seq uint64, w *waiter) (*wire.Msg, error) {
	if w.cur != nil {
		return e.awaitTask(ctx, seq, w)
	}
	var timeout <-chan time.Time
	if e.callTimeout > 0 {
		if w.timer == nil {
			w.timer = time.NewTimer(e.callTimeout)
		} else {
			w.timer.Reset(e.callTimeout)
		}
		// Stop and drain before the slot returns to the pool: this
		// goroutine is the channel's only reader, so a fired-but-unread
		// timer is always drainable here.
		defer func() {
			if !w.timer.Stop() {
				select {
				case <-w.timer.C:
				default:
				}
			}
		}()
		timeout = w.timer.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case msg := <-w.ch:
		if msg == nil {
			return nil, e.closedErr()
		}
		return msg, nil
	case <-timeout:
		e.waits.deliver(seq, nil, true)
		e.link.timeouts.Add(1)
		return nil, fmt.Errorf("clam: call %d after %v: %w", seq, e.callTimeout, ErrCallTimeout)
	case <-done:
		e.waits.deliver(seq, nil, true)
		return nil, ctx.Err()
	case <-e.closedCh:
		e.waits.deliver(seq, nil, true)
		return nil, e.closedErr()
	}
}

// awaitTask is await for cooperative tasks: instead of parking on a Go
// channel (which would freeze the scheduler — the waiter holds the run
// token), the task Blocks on the slot's event, releasing the token.
// Blocking also fires the task's block hook, so a dispatcher that awaits a
// reply mid-batch automatically hands dispatch duty to a fresh task.
// Timeout and cancellation are translated into event signals.
func (e *endpoint) awaitTask(ctx context.Context, seq uint64, w *waiter) (*wire.Msg, error) {
	var timedOut atomic.Bool
	if e.callTimeout > 0 {
		t := time.AfterFunc(e.callTimeout, func() {
			timedOut.Store(true)
			e.waits.deliver(seq, nil, true)
		})
		defer t.Stop()
	}
	var ctxDone atomic.Bool
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			ctxDone.Store(true)
			e.waits.deliver(seq, nil, true)
		})
		defer stop()
	}
	w.cur.Block(w.ev)
	if msg := e.waits.take(w); msg != nil {
		return msg, nil
	}
	switch {
	case ctxDone.Load():
		return nil, ctx.Err()
	case timedOut.Load():
		e.link.timeouts.Add(1)
		return nil, fmt.Errorf("clam: call %d after %v: %w", seq, e.callTimeout, ErrCallTimeout)
	default:
		return nil, e.closedErr()
	}
}

// closedErr names the reason an armed wait found the endpoint gone. A
// downed-but-resumable link reports ErrDisconnected — the retryable error
// that composes with WithRetry/MarkIdempotent — ahead of the terminal
// diagnoses.
func (e *endpoint) closedErr() error {
	if e.replayGap.Load() {
		return ErrReplayGap
	}
	if e.linkDown.Load() {
		return ErrDisconnected
	}
	if e.hbLost.Load() {
		return ErrServerUnresponsive
	}
	return ErrClientClosed
}

// --- batched asynchronous calls (§3.4) --------------------------------------

// maxBatchBytes auto-flushes an asynchronous batch once its encoded size
// reaches this bound, keeping batches comfortably inside the shared
// wire/xdr body limit and bounding how much memory a burst can pin.
const maxBatchBytes = 1 << 20

// appendCallLocked encodes one call entry (header + tagged arguments)
// directly into the batch buffer; bmu must be held. A mid-encode failure
// rolls the buffer back to its pre-entry mark, so the batch is never
// corrupted.
func (e *endpoint) appendCallLocked(seq, budget uint64, h handle.Handle, method string, args []any) error {
	if e.batchCount == 0 {
		// Count placeholder, patched by writeBatchLocked. xdr encodes Len
		// as one big-endian word, so four zero bytes reserve its slot.
		e.batch.Reset()
		e.batch.B = append(e.batch.B, 0, 0, 0, 0)
	}
	mark := e.batch.Len()
	e.batchEnc.ResetEncode(&e.batch)
	enc := &e.batchEnc
	hdr := rpc.CallHeader{Seq: seq, Budget: budget, Obj: h, Method: method}
	if err := hdr.Bundle(enc); err != nil {
		e.batch.Truncate(mark)
		return err
	}
	n := len(args)
	if err := enc.Len(&n); err != nil {
		e.batch.Truncate(mark)
		return err
	}
	ctx := e.mkCtx()
	for i, a := range args {
		v := reflect.ValueOf(a)
		if !v.IsValid() {
			e.batch.Truncate(mark)
			return fmt.Errorf("clam: argument %d of %s is untyped nil; pass a typed nil pointer", i, method)
		}
		if err := rpc.EncodeValue(e.reg, ctx, enc, v); err != nil {
			e.batch.Truncate(mark)
			return fmt.Errorf("clam: argument %d of %s: %w", i, method, err)
		}
	}
	e.batchCount++
	return nil
}

// writeBatchLocked queues the accumulated batch as one MsgCall without
// flushing, so a caller can coalesce it with a trailing Sync/Load frame;
// bmu must be held. The batch buffer is handed to the wire layer as-is —
// Write copies it toward the kernel before returning, so the buffer is
// immediately reusable.
func (e *endpoint) writeBatchLocked() error {
	if e.batchCount == 0 {
		return nil
	}
	if e.linkDown.Load() {
		// The batch stays intact: asynchronous calls keep accumulating
		// through the outage and ship after the resume.
		return ErrDisconnected
	}
	binary.BigEndian.PutUint32(e.batch.B[0:4], uint32(e.batchCount))
	calls := e.batchCount
	e.batchCount = 0
	var frameSeq uint64
	if e.numbered {
		// Numbered batches (resume granted): stamp the frame-level send
		// sequence — unused by the legacy path, MsgCall frames always
		// shipped Seq 0 — and keep a copy for replay until acknowledged.
		e.sendSeq++
		frameSeq = e.sendSeq
		e.rt = append(e.rt, rtEntry{
			seq:   frameSeq,
			body:  append([]byte(nil), e.batch.B...),
			calls: calls,
		})
		e.rtBytes += len(e.batch.B)
		for e.rtBytes > maxRetransmitBytes && len(e.rt) > 1 {
			e.rtBytes -= len(e.rt[0].body)
			e.logf("clam: retransmit buffer over %d bytes; dropping unacked batch %d (%d calls)",
				maxRetransmitBytes, e.rt[0].seq, e.rt[0].calls)
			e.rtDroppedTo = e.rt[0].seq
			e.link.rtDrops.Add(1)
			e.rt = e.rt[1:]
		}
	}
	err := e.rpcConn().WriteFrame(wire.MsgCall, frameSeq, e.batch.B)
	if cap(e.batch.B) > maxBatchBytes {
		e.batch.B = nil
	}
	e.batch.Reset()
	return err
}

// pruneRTLocked drops retransmit entries the peer has acknowledged
// (implicitly: any reply, or the resume handshake's RecvSeq, proves
// receipt of every frame at or below upTo on the in-order stream); bmu
// must be held.
func (e *endpoint) pruneRTLocked(upTo uint64) {
	i := 0
	for i < len(e.rt) && e.rt[i].seq <= upTo {
		e.rtBytes -= len(e.rt[i].body)
		e.rt[i].body = nil
		i++
	}
	if i > 0 {
		e.rt = e.rt[:copy(e.rt, e.rt[i:])]
	}
	// A cancel recorded against an acknowledged frame can no longer race a
	// replay; the server either executed or shed the call already.
	for cs, fs := range e.cancelled {
		if fs <= upTo {
			delete(e.cancelled, cs)
		}
	}
}

// noteCancelled records that the numbered call callSeq, carried by frame
// frameSeq, was abandoned by its caller; bmu must be held. Returns false
// when the frame is already acknowledged (nothing can replay it).
func (e *endpoint) noteCancelledLocked(callSeq, frameSeq uint64) bool {
	if !e.numbered || frameSeq == 0 {
		return false
	}
	if len(e.rt) == 0 || e.rt[0].seq > frameSeq {
		return false // frame acked and pruned: no replay possible
	}
	if e.cancelled == nil {
		e.cancelled = make(map[uint64]uint64)
	}
	e.cancelled[callSeq] = frameSeq
	return true
}

// sendCancel best-effort ships a MsgCancel naming callSeqs on the RPC
// channel. Cancels are advisory: a lost frame only means the peer does the
// work the caller no longer wants, so failures are swallowed (the resume
// path re-announces cancels that still matter).
func (e *endpoint) sendCancel(callSeqs ...uint64) {
	if len(callSeqs) == 0 || e.linkDown.Load() {
		return
	}
	conn := e.rpcConn()
	if conn == nil {
		return
	}
	body := wire.AppendCancelBody(make([]byte, 0, 4+8*len(callSeqs)), callSeqs...)
	if err := conn.WriteFrame(wire.MsgCancel, 0, body); err != nil {
		return
	}
	if err := conn.Flush(); err != nil {
		return
	}
	e.link.cancels.Add(uint64(len(callSeqs)))
}

// ackRT acknowledges every numbered frame up to mark.
func (e *endpoint) ackRT(mark uint64) {
	if !e.numbered || mark == 0 {
		return
	}
	e.bmu.Lock()
	e.pruneRTLocked(mark)
	e.bmu.Unlock()
}

// flushLocked ships the accumulated batch as one MsgCall; bmu must be held.
func (e *endpoint) flushLocked() error {
	if e.batchCount == 0 {
		return nil
	}
	if err := e.writeBatchLocked(); err != nil {
		return err
	}
	return e.rpcConn().Flush()
}

// Flush ships any batched asynchronous calls to the peer.
func (e *endpoint) Flush() error {
	e.bmu.Lock()
	defer e.bmu.Unlock()
	return e.flushLocked()
}

// --- reply coalescing -------------------------------------------------------

// queueReply buffers msg on the RPC channel without flushing: a dispatch
// burst's replies coalesce into one kernel write, flushed when the burst
// drains or the sender blocks (flushReplies).
func (e *endpoint) queueReply(msg *wire.Msg) {
	if err := e.rpcConn().Write(msg); err != nil {
		e.logf("clam: endpoint: reply: %v", err)
		return
	}
	e.replyPending.Store(true)
}

// queueReplyFrame is queueReply for callers assembling the reply from a
// scratch buffer: the wire layer copies the body before returning, so no
// Msg is constructed (and none escapes) on the dispatch hot path.
func (e *endpoint) queueReplyFrame(t wire.MsgType, seq uint64, body []byte) {
	if err := e.rpcConn().WriteFrame(t, seq, body); err != nil {
		e.logf("clam: endpoint: reply: %v", err)
		return
	}
	e.replyPending.Store(true)
}

// flushReplies pushes buffered replies to the kernel. The pending flag
// makes the common no-replies case (async batches) a single atomic load.
func (e *endpoint) flushReplies() {
	if !e.replyPending.Swap(false) {
		return
	}
	if err := e.rpcConn().Flush(); err != nil {
		e.logf("clam: endpoint: reply flush: %v", err)
	}
}

// --- common demultiplexing --------------------------------------------------

// demuxCommon handles the frame types every channel understands — the
// liveness and teardown traffic shared by both roles. It reports whether
// it consumed msg and whether the read loop should exit. Liveness
// stamping is the caller's job (the caller knows which channel it reads).
func (e *endpoint) demuxCommon(c *wire.Conn, msg *wire.Msg) (handled, stop bool) {
	switch msg.Type {
	case wire.MsgPing:
		e.link.heartbeatsRecv.Add(1)
		seq := msg.Seq
		msg.Release()
		if err := c.Send(&wire.Msg{Type: wire.MsgPong, Seq: seq}); err != nil {
			return true, true
		}
		return true, false
	case wire.MsgPong:
		e.link.heartbeatsRecv.Add(1)
		msg.Release()
		return true, false
	case wire.MsgBye:
		e.byeSeen.Store(true)
		msg.Release()
		return true, true
	}
	return false, false
}

// --- heartbeats -------------------------------------------------------------

// heartbeatLoop pings the peer on both channels every interval and calls
// onDead once the liveness window passes with no inbound traffic on a
// channel. The upcall channel only participates once attached (lastUp is
// zero until then). Both roles run this same loop; they differ only in
// what death means (client: declare the server unresponsive; session:
// evict the client).
func (e *endpoint) heartbeatLoop(onDead func(reason string)) {
	ticker := time.NewTicker(e.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.closedCh:
			return
		case <-ticker.C:
		}
		if e.linkDown.Load() {
			// Mid-resume: the link is known dead and being rebuilt. Death
			// checks would only re-diagnose the outage, and pings would
			// land on closed connections; the resume window is the
			// deadline that matters now.
			continue
		}
		now := time.Now().UnixNano()
		window := e.hbWindow.Nanoseconds()
		if now-e.lastRPC.Load() > window {
			onDead("liveness window missed on rpc channel")
			return
		}
		if up := e.lastUp.Load(); up != 0 && now-up > window {
			onDead("liveness window missed on upcall channel")
			return
		}
		sent := 0
		if err := e.rpcConn().Send(&wire.Msg{Type: wire.MsgPing}); err == nil {
			sent++
		}
		if up := e.upcallConn(); up != nil {
			if err := up.Send(&wire.Msg{Type: wire.MsgPing}); err == nil {
				sent++
			}
		}
		e.link.heartbeatsSent.Add(uint64(sent))
	}
}

// --- teardown ---------------------------------------------------------------

// shutdown tears the endpoint down idempotently: closes both channels,
// fails every armed wait, and (optionally) says goodbye first.
func (e *endpoint) shutdown(sendBye bool) {
	e.closeOnce.Do(func() {
		// resMu excludes a concurrent resume's connection install: by the
		// time we hold it, either the install completed (we close the new
		// connections below) or the installer will see closedCh closed and
		// abort.
		e.resMu.Lock()
		close(e.closedCh)
		up := e.upcallConn()
		// rc is nil for a journal-recovered parked session that expired
		// before any client resumed: such an endpoint never had a connection.
		rc := e.rpcConn()
		if sendBye {
			// Best-effort goodbyes; the peer treats a dropped connection
			// the same way.
			if rc != nil {
				rc.Send(&wire.Msg{Type: wire.MsgBye})
			}
			if up != nil {
				up.Send(&wire.Msg{Type: wire.MsgBye})
			}
		}
		if rc != nil {
			rc.Close()
		}
		if up != nil {
			up.Close()
		}
		e.resMu.Unlock()
		e.waits.cancelAll()
	})
}

// --- handshake --------------------------------------------------------------

func helloExchange(c *wire.Conn, role uint32, session uint64) (helloReplyBody, error) {
	var reply helloReplyBody
	sc := rpc.GetScratch()
	defer sc.Release()
	hello := helloBody{Role: role, Session: session}
	if err := hello.bundle(sc.Encoder()); err != nil {
		return reply, err
	}
	if err := c.Send(&wire.Msg{Type: wire.MsgHello, Seq: 1, Body: sc.Bytes()}); err != nil {
		return reply, fmt.Errorf("clam: hello: %w", err)
	}
	msg, err := c.Recv()
	if err != nil {
		return reply, fmt.Errorf("clam: hello reply: %w", err)
	}
	defer msg.Release()
	if msg.Type != wire.MsgHelloReply {
		return reply, fmt.Errorf("clam: hello answered with %v", msg.Type)
	}
	if err := reply.bundle(sc.Decoder(msg.Body)); err != nil {
		return reply, err
	}
	return reply, nil
}

// resumeExchange replaces helloExchange on a reconnect: it presents the
// resume token for an existing session and returns the server's verdict.
func resumeExchange(c *wire.Conn, role uint32, session, token uint64, epoch uint32) (resumeReplyBody, error) {
	var reply resumeReplyBody
	sc := rpc.GetScratch()
	defer sc.Release()
	req := resumeBody{Role: role, Session: session, Token: token, Epoch: epoch}
	if err := req.bundle(sc.Encoder()); err != nil {
		return reply, err
	}
	if err := c.Send(&wire.Msg{Type: wire.MsgResume, Seq: 1, Body: sc.Bytes()}); err != nil {
		return reply, fmt.Errorf("clam: resume: %w", err)
	}
	msg, err := c.Recv()
	if err != nil {
		return reply, fmt.Errorf("clam: resume reply: %w", err)
	}
	defer msg.Release()
	if msg.Type != wire.MsgResumeReply {
		return reply, fmt.Errorf("clam: resume answered with %v", msg.Type)
	}
	if err := reply.bundle(sc.Decoder(msg.Body)); err != nil {
		return reply, err
	}
	return reply, nil
}
