package core

import (
	"testing"

	"clam/internal/wire"
)

// The dispatch queue used to drain with queue = queue[1:], which kept
// every drained *wire.Msg reachable through the slice's backing array —
// pinning message bodies (and, with pooling, keeping them from being
// reused) until the whole array was collected. These tests pin the fix:
// pop nils the drained slot and compacts a long-lived buffer.

func TestMsgQueuePopReleasesSlot(t *testing.T) {
	var q msgQueue
	msgs := []*wire.Msg{
		{Type: wire.MsgCall, Seq: 1},
		{Type: wire.MsgCall, Seq: 2},
		{Type: wire.MsgCall, Seq: 3},
	}
	for _, m := range msgs {
		q.push(m)
	}
	if got := q.pop(); got != msgs[0] {
		t.Fatalf("pop returned %+v, want first message", got)
	}
	// The drained head slot must not keep the message reachable.
	if q.buf[0] != nil {
		t.Fatal("drained slot still references its message (backing-array pin)")
	}
	if q.len() != 2 {
		t.Fatalf("len = %d after one pop, want 2", q.len())
	}
	if got := q.pop(); got != msgs[1] {
		t.Fatalf("second pop returned %+v", got)
	}
	if q.buf[1] != nil {
		t.Fatal("second drained slot still references its message")
	}
}

func TestMsgQueueDrainResets(t *testing.T) {
	var q msgQueue
	for seq := uint64(1); seq <= 5; seq++ {
		q.push(&wire.Msg{Type: wire.MsgCall, Seq: seq})
	}
	for i := 0; i < 5; i++ {
		if q.pop() == nil {
			t.Fatalf("pop %d returned nil", i)
		}
	}
	if q.len() != 0 || q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("drained queue not reset: len=%d head=%d buf=%d", q.len(), q.head, len(q.buf))
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue returned a message")
	}
	// Reuse after full drain keeps FIFO order.
	q.push(&wire.Msg{Seq: 10})
	q.push(&wire.Msg{Seq: 11})
	if got := q.pop(); got.Seq != 10 {
		t.Fatalf("pop after reset returned seq %d, want 10", got.Seq)
	}
}

// A queue that never fully drains (producer keeps it one ahead) must not
// grow a dead prefix: compaction bounds the backing array and nils the
// vacated tail slots.
func TestMsgQueueCompactionBoundsDeadPrefix(t *testing.T) {
	var q msgQueue
	next := uint64(0)
	for i := 0; i < 1000; i++ {
		q.push(&wire.Msg{Type: wire.MsgCall, Seq: next})
		q.push(&wire.Msg{Type: wire.MsgCall, Seq: next + 1})
		next += 2
		got := q.pop()
		if got == nil {
			t.Fatalf("iteration %d: pop returned nil", i)
		}
		for j := 0; j < q.head; j++ {
			if q.buf[j] != nil {
				t.Fatalf("iteration %d: drained slot %d still populated", i, j)
			}
		}
	}
	if q.head > 2*q.len()+130 {
		t.Fatalf("dead prefix grew unbounded: head=%d live=%d", q.head, q.len())
	}
	// Everything still drains in FIFO order.
	want := uint64(1000)
	for q.len() > 0 {
		got := q.pop()
		if got.Seq != want {
			t.Fatalf("out of order: got seq %d, want %d", got.Seq, want)
		}
		want++
	}
}
