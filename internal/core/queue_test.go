package core

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"

	"clam/internal/wire"
)

// The dispatch queue used to drain with queue = queue[1:], which kept
// every drained *wire.Msg reachable through the slice's backing array —
// pinning message bodies (and, with pooling, keeping them from being
// reused) until the whole array was collected. These tests pin the fix:
// pop nils the drained slot and compacts a long-lived buffer.

func TestMsgQueuePopReleasesSlot(t *testing.T) {
	var q msgQueue
	msgs := []*wire.Msg{
		{Type: wire.MsgCall, Seq: 1},
		{Type: wire.MsgCall, Seq: 2},
		{Type: wire.MsgCall, Seq: 3},
	}
	for _, m := range msgs {
		q.push(m)
	}
	if got := q.pop(); got != msgs[0] {
		t.Fatalf("pop returned %+v, want first message", got)
	}
	// The drained head slot must not keep the message reachable.
	if q.buf[0] != nil {
		t.Fatal("drained slot still references its message (backing-array pin)")
	}
	if q.len() != 2 {
		t.Fatalf("len = %d after one pop, want 2", q.len())
	}
	if got := q.pop(); got != msgs[1] {
		t.Fatalf("second pop returned %+v", got)
	}
	if q.buf[1] != nil {
		t.Fatal("second drained slot still references its message")
	}
}

func TestMsgQueueDrainResets(t *testing.T) {
	var q msgQueue
	for seq := uint64(1); seq <= 5; seq++ {
		q.push(&wire.Msg{Type: wire.MsgCall, Seq: seq})
	}
	for i := 0; i < 5; i++ {
		if q.pop() == nil {
			t.Fatalf("pop %d returned nil", i)
		}
	}
	if q.len() != 0 || q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("drained queue not reset: len=%d head=%d buf=%d", q.len(), q.head, len(q.buf))
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue returned a message")
	}
	// Reuse after full drain keeps FIFO order.
	q.push(&wire.Msg{Seq: 10})
	q.push(&wire.Msg{Seq: 11})
	if got := q.pop(); got.Seq != 10 {
		t.Fatalf("pop after reset returned seq %d, want 10", got.Seq)
	}
}

// A queue that never fully drains (producer keeps it one ahead) must not
// grow a dead prefix: compaction bounds the backing array and nils the
// vacated tail slots.
func TestMsgQueueCompactionBoundsDeadPrefix(t *testing.T) {
	var q msgQueue
	next := uint64(0)
	for i := 0; i < 1000; i++ {
		q.push(&wire.Msg{Type: wire.MsgCall, Seq: next})
		q.push(&wire.Msg{Type: wire.MsgCall, Seq: next + 1})
		next += 2
		got := q.pop()
		if got == nil {
			t.Fatalf("iteration %d: pop returned nil", i)
		}
		for j := 0; j < q.head; j++ {
			if q.buf[j] != nil {
				t.Fatalf("iteration %d: drained slot %d still populated", i, j)
			}
		}
	}
	if q.head > 2*q.len()+130 {
		t.Fatalf("dead prefix grew unbounded: head=%d live=%d", q.head, q.len())
	}
	// Everything still drains in FIFO order.
	want := uint64(1000)
	for q.len() > 0 {
		got := q.pop()
		if got.Seq != want {
			t.Fatalf("out of order: got seq %d, want %d", got.Seq, want)
		}
		want++
	}
}

// TestMsgQueueHeadSlideInvariants drives the queue into the slide branch
// (head > 64 with a half-dead buffer) and checks the post-slide state
// directly: head rewound to zero, live messages intact and in order, and
// every vacated tail slot nil so the slide itself cannot re-pin frames.
func TestMsgQueueHeadSlideInvariants(t *testing.T) {
	var q msgQueue
	const total = 129
	msgs := make([]*wire.Msg, total)
	for i := range msgs {
		msgs[i] = &wire.Msg{Type: wire.MsgCall, Seq: uint64(i)}
		q.push(msgs[i])
	}
	// Pop to one past the threshold: the 65th pop leaves head=65 > 64 and
	// 2*65 >= 129, triggering the slide.
	for i := 0; i < 65; i++ {
		if got := q.pop(); got != msgs[i] {
			t.Fatalf("pop %d returned seq %d", i, got.Seq)
		}
	}
	if q.head != 0 {
		t.Fatalf("head = %d after slide, want 0", q.head)
	}
	if live := q.len(); live != total-65 {
		t.Fatalf("len = %d after slide, want %d", live, total-65)
	}
	// The slid-down prefix holds exactly the live tail, in order.
	for i := 0; i < q.len(); i++ {
		if q.buf[i] != msgs[65+i] {
			t.Fatalf("slot %d holds seq %d, want %d", i, q.buf[i].Seq, 65+i)
		}
	}
	// The vacated region between the new length and the old one is nil'd.
	full := q.buf[:cap(q.buf)]
	for i := q.len(); i < len(full) && i < total; i++ {
		if full[i] != nil {
			t.Fatalf("vacated slot %d still references a message after slide", i)
		}
	}
	// And the queue still drains FIFO to empty.
	for want := 65; q.len() > 0; want++ {
		if got := q.pop(); got != msgs[want] {
			t.Fatalf("post-slide pop returned seq %d, want %d", got.Seq, want)
		}
	}
}

// TestMsgQueuePoppedFramesCollectable is the regression test for the
// backing-array pin: once popped, a frame must be reclaimable even while
// the queue (and its backing array) lives on. Finalizers on the popped
// messages only run if the queue holds no hidden reference.
func TestMsgQueuePoppedFramesCollectable(t *testing.T) {
	q := &msgQueue{}
	const n = 8
	var collected atomic.Int32
	for i := 0; i < n; i++ {
		m := &wire.Msg{Type: wire.MsgCall, Seq: uint64(i), Body: make([]byte, 1024)}
		runtime.SetFinalizer(m, func(*wire.Msg) { collected.Add(1) })
		q.push(m)
	}
	// Keep one message unpopped so the queue cannot take the full-drain
	// reset shortcut; the popped ones must be unreachable via buf alone.
	for i := 0; i < n-1; i++ {
		if q.pop() == nil {
			t.Fatalf("pop %d returned nil", i)
		}
	}
	for i := 0; i < 10 && collected.Load() < n-1; i++ {
		runtime.GC()
	}
	if got := collected.Load(); got < n-1 {
		t.Fatalf("only %d of %d popped frames were collected: queue still pins them", got, n-1)
	}
	if q.len() != 1 {
		t.Fatalf("queue len = %d, want the one unpopped message", q.len())
	}
	runtime.KeepAlive(q)
}

// TestMsgQueuePooledFrameRoundTrip: a frame received from the wire pool,
// queued, popped and released must leave no alias in the queue — the next
// pooled Recv (which may reuse the same frame) must see clean contents
// while the queue's backing array is still alive.
func TestMsgQueuePooledFrameRoundTrip(t *testing.T) {
	prev := wire.SetPooling(true)
	defer wire.SetPooling(prev)

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := wire.NewConn(client), wire.NewConn(server)

	send := func(seq uint64, body string) {
		t.Helper()
		if err := cc.Send(&wire.Msg{Type: wire.MsgCall, Seq: seq, Body: []byte(body)}); err != nil {
			t.Fatal(err)
		}
	}
	var q msgQueue
	done := make(chan struct{})
	go func() {
		defer close(done)
		send(1, "first-frame-body")
		send(2, "second-frame-body")
	}()

	m1, err := sc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	q.push(m1)
	popped := q.pop()
	if popped != m1 {
		t.Fatal("pop did not return the pushed frame")
	}
	// Popping the only message takes the full-drain reset, but the backing
	// array survives: its slot must have been nil'd before the reset.
	if c := q.buf[:cap(q.buf)]; q.len() != 0 || (len(c) > 0 && c[0] != nil) {
		t.Fatal("queue retains a reference to the popped pooled frame")
	}
	popped.Release()

	m2, err := sc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Release()
	if string(m2.Body) != "second-frame-body" || m2.Seq != 2 {
		t.Fatalf("pooled reuse after queued pop corrupted the frame: seq=%d body=%q", m2.Seq, m2.Body)
	}
	<-done
}
