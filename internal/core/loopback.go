package core

import (
	"errors"
	"net"

	"clam/internal/wire"
)

// In-process transport: the paper's motivation is letting the programmer
// place layers wherever the numbers favor — including the degenerate
// placement where "client" and server share a process. SelfDial connects
// a Client to a Server over an in-memory pipe, exercising the full
// protocol (hello, batching, handles, upcalls) with no kernel sockets.
// Benchmarks use it to separate protocol overhead from IPC cost.
//
// There is no special-cased loopback path: SelfDial goes through Dial and
// the unified endpoint engine, differing from the wire path only in the
// net.Conn underneath, so the in-process placement exercises exactly the
// code the distributed placement runs.

// ErrServerClosed reports a pipe request against a closed server.
var ErrServerClosed = errors.New("clam: server closed")

// PipeConn returns the client end of a fresh in-memory connection whose
// server end is already being served.
func (s *Server) PipeConn() (net.Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	clientEnd, serverEnd := net.Pipe()
	go func() {
		defer s.wg.Done()
		s.handleConn(wire.NewConn(serverEnd))
	}()
	return clientEnd, nil
}

// SelfDial connects a client to srv inside the same process.
func SelfDial(srv *Server, opts ...DialOption) (*Client, error) {
	opts = append(opts, WithDialFunc(func(string, string) (net.Conn, error) {
		return srv.PipeConn()
	}))
	return Dial("pipe", "in-process", opts...)
}

// SelfDialUpstream stacks srv on top of lower inside one process: srv
// dials lower over an in-memory pipe and registers the connection for
// forwarding (see forward.go). The co-located placement of a middle tier —
// the other end of the paper's placement-flexibility spectrum — runs the
// same forwarding code as the distributed one.
func SelfDialUpstream(srv, lower *Server, opts ...DialOption) (*Client, error) {
	c, err := SelfDial(lower, opts...)
	if err != nil {
		return nil, err
	}
	if err := srv.AttachUpstream(c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}
