package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests cover the §4.4 relaxation: "In CLAM, we allow only one
// upcall to be active per client process. This limitation simplifies our
// first implementation and may be relaxed in future designs." The default
// configuration reproduces the limitation; WithMaxClientUpcalls +
// WithUpcallHandlers implement the anticipated relaxation.

// triggerConcurrently fires n upcalls from n independent server
// goroutines through the notifier's stored proxies and reports the
// maximum overlap the client handler observed and the elapsed time.
func runUpcallConcurrencyProbe(t *testing.T, srvOpts []ServerOption, dialOpts []DialOption) (maxOverlap int32, elapsed time.Duration) {
	t.Helper()
	srvOpts = append([]ServerOption{WithServerLog(func(string, ...any) {})}, srvOpts...)
	srv := NewServer(testLibrary(t), srvOpts...)
	obj, _, err := srv.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("notifier", obj)
	sock := t.TempDir() + "/cu.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	dialOpts = append([]DialOption{WithClientLog(func(string, ...any) {})}, dialOpts...)
	c, err := Dial("unix", sock, dialOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	n, err := c.NamedObject("notifier")
	if err != nil {
		t.Fatal(err)
	}
	var inFlight, peak atomic.Int32
	if err := n.Call("Register", func(x int32, s string) int32 {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
		inFlight.Add(-1)
		return x
	}); err != nil {
		t.Fatal(err)
	}

	// Reach the server-side proxy directly and fire from independent
	// goroutines, as concurrent server activities would.
	notif := obj.(*notifier)
	notif.mu.Lock()
	fn := notif.fns[0]
	notif.mu.Unlock()

	const workers = 4
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(1, "probe")
		}()
	}
	wg.Wait()
	return peak.Load(), time.Since(start)
}

// Default configuration: the paper's one-upcall-per-client limit holds
// even under concurrent server-side triggers.
func TestUpcallLimitDefaultIsOne(t *testing.T) {
	peak, elapsed := runUpcallConcurrencyProbe(t, nil, nil)
	if peak != 1 {
		t.Errorf("peak concurrent upcalls = %d, want 1 (the paper's limit)", peak)
	}
	// Four serialized 25 ms handlers take >= ~100 ms.
	if elapsed < 90*time.Millisecond {
		t.Errorf("four upcalls finished in %v; they cannot have been serialized", elapsed)
	}
}

// Relaxed configuration: concurrent upcalls overlap and finish faster.
func TestUpcallLimitRelaxed(t *testing.T) {
	peak, elapsed := runUpcallConcurrencyProbe(t,
		[]ServerOption{WithMaxClientUpcalls(4)},
		[]DialOption{WithUpcallHandlers(4)})
	if peak < 2 {
		t.Errorf("peak concurrent upcalls = %d, want >= 2 under the relaxation", peak)
	}
	if elapsed > 90*time.Millisecond {
		t.Errorf("four overlapping 25ms upcalls took %v", elapsed)
	}
}

// The relaxation must not break reply matching: results still pair with
// the right invocation.
func TestConcurrentUpcallRepliesMatch(t *testing.T) {
	srv := NewServer(testLibrary(t),
		WithServerLog(func(string, ...any) {}),
		WithMaxClientUpcalls(8))
	obj, _, err := srv.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("notifier", obj)
	sock := t.TempDir() + "/cu.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial("unix", sock,
		WithClientLog(func(string, ...any) {}),
		WithUpcallHandlers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.NamedObject("notifier")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Call("Register", func(x int32, s string) int32 {
		time.Sleep(time.Duration(x%5) * time.Millisecond)
		return x * 2
	}); err != nil {
		t.Fatal(err)
	}
	notif := obj.(*notifier)
	notif.mu.Lock()
	fn := notif.fns[0]
	notif.mu.Unlock()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := int32(1); i <= 32; i++ {
		wg.Add(1)
		go func(i int32) {
			defer wg.Done()
			if got := fn(i, "x"); got != i*2 {
				errs <- "mismatch"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if len(errs) != 0 {
		t.Errorf("%d reply mismatches under concurrent upcalls", len(errs))
	}
}

// WithMaxClientUpcalls clamps nonsense values.
func TestUpcallLimitClamped(t *testing.T) {
	srv := NewServer(testLibrary(t), WithMaxClientUpcalls(0),
		WithServerLog(func(string, ...any) {}))
	defer srv.Close()
	if srv.maxClientUpcalls != 1 {
		t.Errorf("maxClientUpcalls = %d, want clamp to 1", srv.maxClientUpcalls)
	}
}
