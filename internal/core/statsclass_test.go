package core

import (
	"strings"
	"testing"
	"time"
)

func statsServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	if err := RegisterStatsClass(srv.lib); err != nil {
		t.Fatal(err)
	}
	sock := t.TempDir() + "/stats.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sock
}

func TestStatsClassRemoteQueries(t *testing.T) {
	_, sock := statsServer(t)
	c := dialClient(t, sock)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	obj.Call("Add", int64(1))
	obj.Call("Add", int64(2))

	stats, err := c.New("stats", 0)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := stats.CallInto("CallCount", []any{&n}, "counter.Add"); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("CallCount = %d", n)
	}
	var sessions int64
	if err := stats.CallInto("Sessions", []any{&sessions}); err != nil || sessions != 1 {
		t.Errorf("sessions=%d err=%v", sessions, err)
	}
	var loaded []string
	if err := stats.CallInto("Loaded", []any{&loaded}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range loaded {
		if l == "counter v1" {
			found = true
		}
	}
	if !found {
		t.Errorf("Loaded = %v", loaded)
	}
	var sum string
	if err := stats.CallInto("Summary", []any{&sum}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum, "counter.Add") {
		t.Errorf("summary %q lacks the busiest method", sum)
	}
	var s64, a64, u64, f64 int64
	if err := stats.CallInto("Totals", []any{&s64, &a64, &u64, &f64}); err != nil {
		t.Fatal(err)
	}
	if s64 < 2 {
		t.Errorf("sync total = %d", s64)
	}
	var top []string
	if err := stats.CallInto("Top", []any{&top}, int64(1)); err != nil || len(top) != 1 {
		t.Errorf("top=%v err=%v", top, err)
	}
	var budgeted, shed, cr, hc int64
	if err := stats.CallInto("Overload", []any{&budgeted, &shed, &cr, &hc}); err != nil {
		t.Fatal(err)
	}
	if budgeted != 0 || shed != 0 || cr != 0 || hc != 0 {
		t.Errorf("Overload = (%d,%d,%d,%d) on a budget-free session", budgeted, shed, cr, hc)
	}
	if err := obj.CallIntoCtx(budgetOnly(time.Second), "Add", nil, int64(3)); err != nil {
		t.Fatal(err)
	}
	if err := stats.CallInto("Overload", []any{&budgeted, &shed, &cr, &hc}); err != nil {
		t.Fatal(err)
	}
	if budgeted != 1 {
		t.Errorf("BudgetedCalls = %d after one budgeted call", budgeted)
	}
}

func TestStatsClassRequiresServerEnv(t *testing.T) {
	srv, _ := statsServer(t)
	loaded, err := srv.Loader().Load("stats", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.New(42); err == nil {
		t.Error("stats constructed without a server environment")
	}
}
