package core

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// Crash-restart chaos tests: the write-ahead journal (WithJournal) must
// carry parked sessions, handle capabilities and subscriptions across a
// genuine server death — kill -9, not a polite Close — with exact
// at-most-once totals when the client's replay meets the recovered
// receive marks.

// TestCrashServerProcess is not a test: it is the server half of the
// kill -9 chaos suite, run as a re-exec'd subprocess so the parent can
// SIGKILL a real process mid-burst. Gated on an env var so a plain
// `go test ./...` skips it instantly.
func TestCrashServerProcess(t *testing.T) {
	if os.Getenv("CLAM_CRASH_SERVER") != "1" {
		t.Skip("subprocess body for the crash suite; driven by TestCrashRestartKillNineExactTotals")
	}
	sock := os.Getenv("CLAM_CRASH_SOCK")
	jdir := os.Getenv("CLAM_CRASH_JOURNAL")
	lib := testLibrary(t)
	if err := RegisterStatsClass(lib); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lib, WithJournal(jdir),
		WithServerLog(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "server: "+format+"\n", args...)
		}))
	if _, err := srv.Load("child", 0); err != nil {
		t.Fatal(err)
	}
	os.Remove(sock) // run 2 reuses run 1's path; the old socket is dead
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	select {} // hold the process open until the parent SIGKILLs it
}

// startCrashServer re-execs the test binary as a server process on sock
// with its journal in jdir, and waits until the socket accepts.
func startCrashServer(t *testing.T, sock, jdir string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashServerProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CLAM_CRASH_SERVER=1",
		"CLAM_CRASH_SOCK="+sock,
		"CLAM_CRASH_JOURNAL="+jdir,
	)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			return cmd, out
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("crash server never came up on %s; output:\n%s", sock, out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCrashRestartKillNineExactTotals is the acceptance spine of durable
// resurrection: SIGKILL the server mid-async-burst, restart it on the
// same journal, let the untouched client code resume, and audit the
// at-most-once ledger exactly.
//
// The counter's state dies with the process, so after restart its total
// counts exactly the calls executed by the new incarnation: the replayed
// frames (those above the journaled receive mark) plus anything sent
// after the resume. Three things must balance:
//
//   - counter.Total == client ReplayedCalls delta + post-restart adds
//   - server DedupDrops == 0: the client never replays a frame the
//     recovered mark says already executed (marks and replay agree)
//   - client RetransmitDrops == 0 and zero call errors: nothing was
//     silently shed on the way
func TestCrashRestartKillNineExactTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec subprocess chaos test")
	}
	dir := t.TempDir()
	sock := filepath.Join(dir, "crash.sock")
	jdir := filepath.Join(dir, "journal")

	cmd, out1 := startCrashServer(t, sock, jdir)
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Unbatched, so every async Add ships as its own numbered frame —
	// maximum pressure on the replay/mark bookkeeping.
	c := dialClient(t, sock, WithoutClientBatching(), WithCallTimeout(5*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a settled prefix. The Sync acks these frames away from the
	// replay buffer and lets the journal mark them executed.
	const n1 = 100
	for i := 0; i < n1; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatalf("phase-1 Add %d: %v", i, err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	replayed0 := c.Metrics().Resilience.ReplayedCalls

	// Phase 2: an unacknowledged burst, then kill -9 mid-flight. The pause
	// between the two half-bursts lets the journal's group commit mark the
	// first half executed, while the kill lands before a tick can cover
	// the second — so the replay is genuinely partial: the marked prefix
	// must NOT re-execute, the unmarked tail must, and the ledger below
	// reconciles marked, executed-but-unmarked and never-arrived frames
	// exactly.
	const n2 = 300
	for i := 0; i < n2/2; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatalf("phase-2 Add %d: %v", i, err)
		}
	}
	time.Sleep(20 * time.Millisecond) // > the journal's commit interval
	for i := n2 / 2; i < n2; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatalf("phase-2 Add %d: %v", i, err)
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true
	t.Logf("run-1 server killed; output:\n%s", out1.String())

	// Restart on the same journal. The client resurrects on its own —
	// that is the point: no client-side code changes.
	cmd2, out2 := startCrashServer(t, sock, jdir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
		if t.Failed() {
			t.Logf("run-2 server output:\n%s", out2.String())
		}
	}()

	waitFor(t, 30*time.Second, "client to resume against the restarted server", func() bool {
		return c.Metrics().Resilience.Reconnects >= 1
	})
	waitFor(t, 15*time.Second, "post-resume sync to drain the replay", func() bool {
		return c.Sync() == nil
	})

	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatalf("Total through the recovered handle: %v", err)
	}
	m := c.Metrics()
	replayed := int64(m.Resilience.ReplayedCalls - replayed0)
	if total != replayed {
		t.Errorf("counter = %d but client replayed %d calls: the restarted server executed frames the replay did not send (lost mark) or dropped frames it should have run", total, replayed)
	}
	if m.Resilience.RetransmitDrops != 0 {
		t.Errorf("client RetransmitDrops = %d, want 0", m.Resilience.RetransmitDrops)
	}

	// The recovered handle must stay fully live: new calls land on it.
	const n3 = 7
	for i := 0; i < n3; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatalf("post-restart Add: %v", err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if want := replayed + n3; total != want {
		t.Errorf("counter after %d fresh adds = %d, want %d", n3, total, want)
	}

	// Server-side half of the ledger, read remotely through the stats
	// class: zero dedup drops means the replay range and the recovered
	// receive mark tiled perfectly — no frame executed twice, none judged
	// duplicate that was not.
	st, err := c.New("stats", 0)
	if err != nil {
		t.Fatal(err)
	}
	var rec, rep, ded, rtd int64
	if err := st.CallInto("Resilience", []any{&rec, &rep, &ded, &rtd}); err != nil {
		t.Fatal(err)
	}
	if ded != 0 {
		t.Errorf("server DedupDrops = %d, want 0 (client replayed frames the journal had marked executed)", ded)
	}
	if rec < 1 {
		t.Errorf("server Reconnects = %d, want >= 1", rec)
	}
	t.Logf("ledger: replayed=%d total=%d server(resumes=%d replayed=%d dedups=%d rtdrops=%d)",
		replayed, total, rec, rep, ded, rtd)
}

// TestCrashInProcessRestartRecoversSessionsHandlesSubs exercises the same
// journal recovery without the subprocess: server 1 dies abruptly from
// the client's point of view (its connections just vanish), a second
// server opens the same journal, and the client's resurrect loop lands on
// it — session parked-across-processes, handle re-bound, multicast
// subscription restored.
func TestCrashInProcessRestartRecoversSessionsHandlesSubs(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "clam.sock")
	jdir := filepath.Join(dir, "journal")

	newSrv := func() (*Server, net.Listener) {
		srv := NewServer(testLibrary(t), WithJournal(jdir),
			WithServerLog(func(format string, args ...any) { t.Logf(format, args...) }))
		if _, err := srv.Load("child", 0); err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterMulticast("tick", (func(int64))(nil)); err != nil {
			t.Fatal(err)
		}
		os.Remove(sock)
		ln, err := srv.Listen("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		return srv, ln
	}

	srv1, ln1 := newSrv()
	c := dialClient(t, sock, WithoutClientBatching(), WithCallTimeout(3*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := obj.Call("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	var ticks atomic.Int64
	if _, err := c.Subscribe("tick", func(int64) { ticks.Add(1) }); err != nil {
		t.Fatal(err)
	}

	// Stop accepting first — the client must not resume against server 1
	// — then sever the links without a goodbye and park the session. A
	// parked session is never journaled as ended, so the second server
	// resurrects it.
	ln1.Close()
	c.rpcConn().Close()
	waitFor(t, 5*time.Second, "server 1 to park the severed session", func() bool {
		srv1.mu.Lock()
		defer srv1.mu.Unlock()
		for _, sess := range srv1.sessions {
			return sess.linkDown.Load()
		}
		return false
	})
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newSrv()
	t.Cleanup(func() { srv2.Close() })
	waitFor(t, 20*time.Second, "client to resume against server 2", func() bool {
		return c.Metrics().Resilience.Reconnects >= 1
	})
	waitFor(t, 10*time.Second, "post-resume sync", func() bool {
		return c.Sync() == nil
	})

	// The recovered state is auditable server-side...
	jm := srv2.Metrics().Journal
	if !jm.Enabled {
		t.Fatal("journal metrics not enabled on server 2")
	}
	if jm.RecoveredSessions != 1 {
		t.Errorf("RecoveredSessions = %d, want 1", jm.RecoveredSessions)
	}
	if jm.RecoveredHandles < 1 {
		t.Errorf("RecoveredHandles = %d, want >= 1", jm.RecoveredHandles)
	}
	if jm.RecoveredSubs != 1 {
		t.Errorf("RecoveredSubs = %d, want 1", jm.RecoveredSubs)
	}

	// ...and usable: the old handle takes calls (the counter's state died
	// with server 1 — only calls the new incarnation executed count)...
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatalf("Add through recovered handle: %v", err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total < 1 {
		t.Errorf("Total through recovered handle = %d, want >= 1", total)
	}

	// ...and the restored subscription delivers on the resumed upcall
	// channel without the client ever re-subscribing.
	waitFor(t, 10*time.Second, "restored subscription to deliver", func() bool {
		if _, err := srv2.Publish("tick", int64(1)); err != nil {
			t.Fatalf("publish on server 2: %v", err)
		}
		return ticks.Load() >= 1
	})
}

// TestCrashRestartSurvivesDoubleRestart replays the journal twice in a
// row — recovery output must itself recover.
func TestCrashRestartSurvivesDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "clam.sock")
	jdir := filepath.Join(dir, "journal")

	newSrv := func() (*Server, net.Listener) {
		srv := NewServer(testLibrary(t), WithJournal(jdir),
			WithServerLog(func(format string, args ...any) { t.Logf(format, args...) }))
		if _, err := srv.Load("child", 0); err != nil {
			t.Fatal(err)
		}
		os.Remove(sock)
		ln, err := srv.Listen("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		return srv, ln
	}

	srv, ln := newSrv()
	c := dialClient(t, sock, WithoutClientBatching(), WithCallTimeout(3*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		ln.Close()
		c.rpcConn().Close()
		waitFor(t, 5*time.Second, "session parked", func() bool {
			srv.mu.Lock()
			defer srv.mu.Unlock()
			for _, sess := range srv.sessions {
				return sess.linkDown.Load()
			}
			return false
		})
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		srv, ln = newSrv()
		want := uint64(round)
		waitFor(t, 20*time.Second, "client resumed", func() bool {
			return c.Metrics().Resilience.Reconnects >= want
		})
		waitFor(t, 10*time.Second, "sync after restart", func() bool {
			return c.Sync() == nil
		})
		if err := obj.Call("Add", int64(1)); err != nil {
			t.Fatalf("restart %d: Add: %v", round, err)
		}
		if err := c.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
}

// TestReplayGapFailsFastOnResume: when the bounded retransmit buffer has
// dropped frames the server never executed, a resume must refuse to
// pretend — the client fails definitively with ErrReplayGap instead of
// silently losing calls (the old behavior was a log line and a hole).
func TestReplayGapFailsFastOnResume(t *testing.T) {
	_, path := startServer(t, WithResumeWindow(5*time.Second))
	c := dialClient(t, path, WithoutClientBatching(), WithCallTimeout(2*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	// An unacknowledged async frame keeps the replay buffer non-trivial.
	if err := obj.Async("Add", int64(1)); err != nil {
		t.Fatal(err)
	}

	// Simulate the cap having evicted unacked frames beyond anything the
	// server received: the next resume's RecvSeq is necessarily below
	// rtDroppedTo, so the replay range has a hole.
	c.bmu.Lock()
	c.rtDroppedTo = c.sendSeq + 5
	c.bmu.Unlock()

	c.rpcConn().Close()

	var callErr error
	waitFor(t, 10*time.Second, "calls to fail definitively", func() bool {
		callErr = obj.Call("Add", int64(1))
		return callErr != nil && !errors.Is(callErr, ErrDisconnected) && !errors.Is(callErr, ErrCallTimeout)
	})
	if !errors.Is(callErr, ErrReplayGap) {
		t.Errorf("post-gap call error = %v, want ErrReplayGap", callErr)
	}
	if got := c.Metrics().Resilience.Reconnects; got != 0 {
		t.Errorf("client reconnects = %d, want 0 (resume must be abandoned)", got)
	}
}

// TestRetransmitDropsCounted drives the replay buffer past its byte cap
// with real unacknowledged async traffic and checks the former silent
// drop now shows up in the client's resilience counters.
func TestRetransmitDropsCounted(t *testing.T) {
	_, path := startServer(t, WithResumeWindow(5*time.Second))
	c := dialClient(t, path, WithoutClientBatching(), WithCallTimeout(5*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Each Record frame carries ~512KiB and, being async, draws no reply
	// to piggyback an ack on — the buffer must cross 4MiB and evict.
	payload := string(bytes.Repeat([]byte("x"), 512<<10))
	for i := 0; i < 12; i++ {
		if err := obj.Async("Record", payload); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	c.bmu.Lock()
	droppedTo := c.rtDroppedTo
	c.bmu.Unlock()
	drops := c.Metrics().Resilience.RetransmitDrops
	if drops == 0 {
		t.Fatalf("no retransmit drops counted past the %d-byte cap (rt eviction not reaching the counter)", maxRetransmitBytes)
	}
	if droppedTo == 0 {
		t.Fatal("rtDroppedTo never advanced despite counted drops")
	}
	t.Logf("drops=%d droppedTo=%d", drops, droppedTo)

	// With the link healthy the drops are harmless — everything already
	// reached the server in order; a final sync settles the stream.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}
