package core

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clam/internal/handle"
	"clam/internal/rpc"
)

// Three-address-space tests: a top client, a middle server that dialed a
// bottom server, all over real sockets. Calls flow down through the proxy
// handles, upcalls chain back up through per-hop RUC translation — the
// paper's layering (§1, Figure 1) stretched across N processes.

type chainFixture struct {
	bottom  *Server
	mid     *Server
	midPath string  // the middle server's listening socket
	up      *Client // the middle tier's upstream connection to the bottom
	top     *Client

	bottomNotifier *notifier
	bottomParent   *parent
}

// startChain brings up bottom and middle servers on unix sockets, attaches
// the middle to the bottom via upstream dial, imports the bottom's named
// base instances, and connects a top client to the middle.
func startChain(t testing.TB, upstreamOpts []DialOption, topOpts ...DialOption) *chainFixture {
	t.Helper()
	ch := &chainFixture{}
	var bottomPath string
	ch.bottom, bottomPath = startServer(t)

	nobj, _, err := ch.bottom.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch.bottom.SetNamed("notify", nobj)
	ch.bottomNotifier = nobj.(*notifier)

	cobj, _, err := ch.bottom.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch.bottom.SetNamed("tally", cobj)

	pobj, _, err := ch.bottom.CreateInstance("parent", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch.bottom.SetNamed("family", pobj)
	ch.bottomParent = pobj.(*parent)

	ch.mid = NewServer(testLibrary(t),
		WithServerLog(func(format string, args ...any) { t.Logf("mid: "+format, args...) }))
	ch.midPath = filepath.Join(t.TempDir(), "mid.sock")
	if _, err := ch.mid.Listen("unix", ch.midPath); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ch.mid.Close() })

	upstreamOpts = append([]DialOption{
		WithClientLog(func(format string, args ...any) { t.Logf("mid-up: "+format, args...) }),
	}, upstreamOpts...)
	ch.up, err = ch.mid.DialUpstream("unix", bottomPath, upstreamOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.mid.ImportNamed(ch.up, "notify", "tally", "family"); err != nil {
		t.Fatal(err)
	}

	ch.top = dialClient(t, ch.midPath, topOpts...)
	return ch
}

// TestChainUpcallRelay: an upcall originated by the bottom server reaches
// the top client, correct and in order, through the middle tier. The
// procedure pointer descends two hops (top→middle→bottom, re-registered
// per hop, §3.5.2) and each upcall climbs back the same way.
func TestChainUpcallRelay(t *testing.T) {
	ch := startChain(t, nil)

	notify, err := ch.top.NamedObject("notify")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []int32
	handler := func(x int32, s string) int32 {
		mu.Lock()
		got = append(got, x)
		mu.Unlock()
		return 2 * x
	}
	if err := notify.Call("Register", handler); err != nil {
		t.Fatal(err)
	}

	// Top-originated: a synchronous Trigger relayed down, whose execution
	// upcalls back up through both hops before the call returns.
	var sum int32
	if err := notify.CallInto("Trigger", []any{&sum}, int32(7), "from-top"); err != nil {
		t.Fatal(err)
	}
	if sum != 14 {
		t.Fatalf("relayed Trigger sum = %d, want 14", sum)
	}

	// Bottom-originated: the bottom server invokes the registered procedure
	// directly (the paper's device-driven upcall, §4.3) — each invocation
	// must reach the top client and return its result.
	for i := int32(1); i <= 10; i++ {
		s, err := ch.bottomNotifier.Trigger(i, "from-bottom")
		if err != nil {
			t.Fatalf("bottom-originated trigger %d: %v", i, err)
		}
		if s != 2*i {
			t.Fatalf("trigger %d returned %d, want %d", i, s, 2*i)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	want := []int32{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("handler ran %d times, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("upcall order %v, want %v", got, want)
		}
	}

	m := ch.mid.Metrics()
	if m.Forwarding.CallsRelayedDown == 0 {
		t.Fatal("middle tier counted no relayed calls")
	}
	if m.Forwarding.UpcallsRelayedUp != uint64(len(want)) {
		t.Fatalf("UpcallsRelayedUp = %d, want %d", m.Forwarding.UpcallsRelayedUp, len(want))
	}
	if m.Forwarding.ProxyHandlesLive == 0 {
		t.Fatal("middle tier reports no live proxy handles")
	}
}

// TestChainObjectProxies: class-instance results cross both hops as
// proxy-of-proxy handles, and passing such a handle back down resolves to
// the real object at the bottom.
func TestChainObjectProxies(t *testing.T) {
	ch := startChain(t, nil)

	family, err := ch.top.NamedObject("family")
	if err != nil {
		t.Fatal(err)
	}

	var kid *Remote
	if err := family.CallInto("Child", []any{&kid}, int64(0)); err != nil {
		t.Fatal(err)
	}
	if kid == nil {
		t.Fatal("Child(0) returned nil proxy")
	}
	var name string
	if err := kid.CallInto("Name", []any{&name}); err != nil {
		t.Fatal(err)
	}
	if name != "alice" {
		t.Fatalf("Name through two hops = %q, want %q", name, "alice")
	}

	// The proxy handle descends: Adopt must identify the same bottom object.
	var idx int64
	if err := family.CallInto("Adopt", []any{&idx}, kid); err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("Adopt(Child(0)) = %d, want 0", idx)
	}

	// A nil object pointer stays nil across hops, and the application error
	// comes back with its status intact.
	err = family.CallInto("Adopt", []any{&idx}, (*Remote)(nil))
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusAppError || !strings.Contains(re.Msg, "nil child") {
		t.Fatalf("Adopt(nil) error = %v, want application error %q", err, "nil child")
	}
}

// TestChainRevocation: revoking the real object at the bottom propagates —
// the middle's proxy entry is revoked on the stale report, so the upper
// handle dies with the lower one (§3.5.1 across hops). A forged tag is
// rejected at the first hop that sees it.
func TestChainRevocation(t *testing.T) {
	ch := startChain(t, nil)

	family, err := ch.top.NamedObject("family")
	if err != nil {
		t.Fatal(err)
	}
	var kid *Remote
	if err := family.CallInto("Child", []any{&kid}, int64(1)); err != nil {
		t.Fatal(err)
	}
	var name string
	if err := kid.CallInto("Name", []any{&name}); err != nil || name != "bob" {
		t.Fatalf("Name = %q, %v; want %q", name, err, "bob")
	}

	// Tag mismatch: same id, wrong tag, rejected by the middle's table
	// without ever reaching the bottom.
	forged := &Remote{c: ch.top, h: handle.Handle{ID: kid.h.ID, Tag: kid.h.Tag + 1}}
	err = forged.CallInto("Name", []any{&name})
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch || !strings.Contains(re.Msg, "tag mismatch") {
		t.Fatalf("forged-tag call error = %v, want dispatch %q", err, "tag mismatch")
	}

	live := ch.mid.Metrics().Forwarding.ProxyHandlesLive

	// Revoke the real child at the bottom; the next relayed call fails and
	// takes the middle's proxy entry with it.
	if !ch.bottom.Handles().RevokeObj(ch.bottomParent.kids[1]) {
		t.Fatal("bottom object was not registered")
	}
	err = kid.CallInto("Name", []any{&name})
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("call after bottom revocation = %v, want dispatch error", err)
	}
	if got := ch.mid.Metrics().Forwarding.ProxyHandlesLive; got != live-1 {
		t.Fatalf("ProxyHandlesLive after revocation = %d, want %d", got, live-1)
	}
	// The proxy itself is now gone from the middle's table: the failure
	// shifts from the bottom to the first hop.
	err = kid.CallInto("Name", []any{&name})
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch || !strings.Contains(re.Msg, "unknown object identifier") {
		t.Fatalf("second call after revocation = %v, want %q", err, "unknown object identifier")
	}
}

// TestChainRevocationThreeHop: revocation at the bottom of a THREE-hop
// chain (top → mid2 → mid1 → bottom) cascades through every tier on a
// single failed call. Each hop preserves the lower hop's status and
// message when it relays the failure (replyStatus), so mid1 recognizes
// the bottom's stale report and revokes its proxy, and mid2 recognizes
// mid1's identical report and revokes its proxy-of-proxy — §3.5.1's
// tag-mismatch semantics, transitive across the whole chain.
func TestChainRevocationThreeHop(t *testing.T) {
	ch := startChain(t, nil) // bottom + mid1 (ch.mid) with "family" imported

	mid2 := NewServer(testLibrary(t),
		WithServerLog(func(format string, args ...any) { t.Logf("mid2: "+format, args...) }))
	mid2Path := filepath.Join(t.TempDir(), "mid2.sock")
	if _, err := mid2.Listen("unix", mid2Path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mid2.Close() })
	up2, err := mid2.DialUpstream("unix", ch.midPath,
		WithClientLog(func(format string, args ...any) { t.Logf("mid2-up: "+format, args...) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := mid2.ImportNamed(up2, "family"); err != nil {
		t.Fatal(err)
	}
	top := dialClient(t, mid2Path)

	family, err := top.NamedObject("family")
	if err != nil {
		t.Fatal(err)
	}
	var kid *Remote
	if err := family.CallInto("Child", []any{&kid}, int64(1)); err != nil {
		t.Fatal(err)
	}
	var name string
	if err := kid.CallInto("Name", []any{&name}); err != nil || name != "bob" {
		t.Fatalf("Name through three hops = %q, %v; want %q", name, err, "bob")
	}

	liveMid1 := ch.mid.Metrics().Forwarding.ProxyHandlesLive
	liveMid2 := mid2.Metrics().Forwarding.ProxyHandlesLive
	if liveMid1 == 0 || liveMid2 == 0 {
		t.Fatalf("expected live proxy handles on both middles (mid1=%d, mid2=%d)", liveMid1, liveMid2)
	}

	// Revoke the real child at the bottom. ONE failed call must cascade the
	// revocation through both middle tiers.
	if !ch.bottom.Handles().RevokeObj(ch.bottomParent.kids[1]) {
		t.Fatal("bottom object was not registered")
	}
	err = kid.CallInto("Name", []any{&name})
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("call after bottom revocation = %v, want dispatch error", err)
	}
	if got := ch.mid.Metrics().Forwarding.ProxyHandlesLive; got != liveMid1-1 {
		t.Fatalf("mid1 ProxyHandlesLive after cascade = %d, want %d", got, liveMid1-1)
	}
	if got := mid2.Metrics().Forwarding.ProxyHandlesLive; got != liveMid2-1 {
		t.Fatalf("mid2 ProxyHandlesLive after cascade = %d, want %d", got, liveMid2-1)
	}
	// The next call dies at the first hop: mid2's table no longer knows the
	// handle at all.
	err = kid.CallInto("Name", []any{&name})
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch || !strings.Contains(re.Msg, "unknown object identifier") {
		t.Fatalf("second call after cascade = %v, want %q", err, "unknown object identifier")
	}
}

// TestChainAsyncSync: asynchronous calls batch across the first hop, relay
// asynchronously across the second, and the client's Sync guarantee covers
// the full chain (§3.4 end to end).
func TestChainAsyncSync(t *testing.T) {
	ch := startChain(t, nil)

	tally, err := ch.top.NamedObject("tally")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := int64(1); i <= 25; i++ {
		if err := tally.Async("Add", i); err != nil {
			t.Fatal(err)
		}
		want += i
	}
	if err := ch.top.Sync(); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := tally.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("Total after chained Sync = %d, want %d", total, want)
	}
}

// TestChainMiddleHopDrop: severing the middle→bottom link fails relayed
// calls with an error instead of hanging, while the middle server itself
// stays healthy for local work and the top client stays connected.
func TestChainMiddleHopDrop(t *testing.T) {
	cl := &chaosLinks{}
	ch := startChain(t, []DialOption{
		WithDialFunc(cl.dial),
		WithCallTimeout(2 * time.Second),
	})

	tally, err := ch.top.NamedObject("tally")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := tally.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}

	// Kill the middle tier's RPC channel to the bottom mid-chain.
	cl.rpc().Sever()

	errc := make(chan error, 1)
	go func() { errc <- tally.CallInto("Total", []any{&total}) }()
	select {
	case err = <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("relayed call through severed hop did not fail")
	}
	var re *rpc.RemoteError
	if err == nil || !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("relayed call through severed hop = %v, want dispatch error", err)
	}

	// The middle server still serves local work on the same session.
	if _, _, err := ch.top.LoadClass("counter", 0); err != nil {
		t.Fatalf("local call on middle after upstream drop: %v", err)
	}
}

// TestChainLoopback: the same three-layer stack folded into one process
// via SelfDialUpstream exercises the identical forwarding code.
func TestChainLoopback(t *testing.T) {
	bottom := NewServer(testLibrary(t), WithServerLog(t.Logf))
	t.Cleanup(func() { bottom.Close() })
	nobj, _, err := bottom.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bottom.SetNamed("notify", nobj)

	mid := NewServer(testLibrary(t), WithServerLog(t.Logf))
	t.Cleanup(func() { mid.Close() })
	up, err := SelfDialUpstream(mid, bottom, WithClientLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	if err := mid.ImportNamed(up, "notify"); err != nil {
		t.Fatal(err)
	}

	top, err := SelfDial(mid, WithClientLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { top.Close() })

	notify, err := top.NamedObject("notify")
	if err != nil {
		t.Fatal(err)
	}
	if err := notify.Call("Register", func(x int32, s string) int32 { return x + 1 }); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := notify.CallInto("Trigger", []any{&sum}, int32(41), "loop"); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("loopback chained Trigger = %d, want 42", sum)
	}
}
