package core

import (
	"errors"
	"fmt"
	"reflect"
)

// Typed client stubs. The paper's client stubs are compiler-generated
// typed procedures; the generic Call/CallInto API is the dynamic
// equivalent. Bind recovers the typed form: given a pointer to a struct
// of func fields, it fills each field with a closure performing the RPC
// named by the field, so application code calls remote procedures through
// ordinary typed functions:
//
//	var w struct {
//		Create  func(r wm.Rect, bg int64) (*Remote, error)
//		MoveTo  func(x, y int64) error
//		Bounds  func() (wm.Rect, error)
//	}
//	if err := baseRem.Bind(&w); err != nil { ... }
//	win, err := w.Create(wm.R(0, 0, 10, 10), 3)
//
// Rules per field: it must be a func; a trailing error result receives
// call failures; other results are decoded from the reply in order.
// A `clam:"Name"` tag overrides the method name; `clam:"-"` skips the
// field. Fields may also be declared asynchronous with the tag option
// `clam:",async"`, making the closure batch the call (§3.4) — such fields
// may have at most an error result.

// ErrBadBinding reports an unusable stub struct.
var ErrBadBinding = errors.New("clam: bad stub binding")

// Bind fills stubs (a pointer to a struct of func fields) with typed
// proxies for the remote object's methods.
func (r *Remote) Bind(stubs any) error {
	v := reflect.ValueOf(stubs)
	if !v.IsValid() || v.Kind() != reflect.Ptr || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("%w: want pointer to struct, got %T", ErrBadBinding, stubs)
	}
	sv := v.Elem()
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !f.IsExported() {
			continue
		}
		name, async, skip := parseBindTag(f)
		if skip {
			continue
		}
		if f.Type.Kind() != reflect.Func {
			return fmt.Errorf("%w: field %s is %s, want func", ErrBadBinding, f.Name, f.Type)
		}
		fn, err := r.makeStub(name, f.Type, async)
		if err != nil {
			return fmt.Errorf("%w: field %s: %v", ErrBadBinding, f.Name, err)
		}
		sv.Field(i).Set(fn)
	}
	return nil
}

func parseBindTag(f reflect.StructField) (name string, async, skip bool) {
	name = f.Name
	tag, ok := f.Tag.Lookup("clam")
	if !ok {
		return name, false, false
	}
	if tag == "-" {
		return "", false, true
	}
	base := tag
	for {
		idx := -1
		for j := 0; j < len(base); j++ {
			if base[j] == ',' {
				idx = j
				break
			}
		}
		if idx < 0 {
			if base != "" {
				name = base
			}
			return name, async, false
		}
		head, rest := base[:idx], base[idx+1:]
		if head != "" {
			name = head
		}
		if rest == "async" {
			async = true
			rest = ""
		}
		base = rest
		if base == "" {
			return name, async, false
		}
	}
}

var bindErrType = reflect.TypeOf((*error)(nil)).Elem()

func (r *Remote) makeStub(method string, ft reflect.Type, async bool) (reflect.Value, error) {
	if ft.IsVariadic() {
		return reflect.Value{}, errors.New("variadic stubs not supported")
	}
	nOut := ft.NumOut()
	hasErr := nOut > 0 && ft.Out(nOut-1) == bindErrType
	dataOut := nOut
	if hasErr {
		dataOut--
	}
	if async && dataOut > 0 {
		return reflect.Value{}, errors.New("async stub cannot have data results")
	}
	for i := 0; i < dataOut; i++ {
		if ft.Out(i) == bindErrType {
			return reflect.Value{}, errors.New("error must be the last result")
		}
	}

	return reflect.MakeFunc(ft, func(in []reflect.Value) []reflect.Value {
		args := make([]any, len(in))
		for i, a := range in {
			args[i] = a.Interface()
		}
		out := make([]reflect.Value, nOut)
		var err error
		if async {
			err = r.c.async(r.h, method, args)
		} else {
			targets := make([]reflect.Value, dataOut)
			rets := make([]any, dataOut)
			for i := 0; i < dataOut; i++ {
				targets[i] = reflect.New(ft.Out(i))
				rets[i] = targets[i].Interface()
			}
			err = r.c.call(r.h, method, rets, args)
			for i := 0; i < dataOut; i++ {
				if err == nil {
					out[i] = targets[i].Elem()
				} else {
					out[i] = reflect.Zero(ft.Out(i))
				}
			}
		}
		if hasErr {
			if err != nil {
				out[nOut-1] = reflect.ValueOf(&err).Elem()
			} else {
				out[nOut-1] = reflect.Zero(bindErrType)
			}
		} else if err != nil {
			// No error slot: fail loudly rather than silently — a typed
			// stub without an error result is a programming statement
			// that failures are impossible here.
			panic(fmt.Sprintf("clam: stub %s failed with no error result: %v", method, err))
		}
		return out
	}), nil
}
