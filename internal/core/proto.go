// Package core assembles CLAM from its substrates: the server that accepts
// clients, loads modules and dispatches calls; the per-client sessions with
// their two communication channels (§4.4); and the client runtime with its
// application and upcall flows. See DESIGN.md for the system inventory.
package core

import (
	"fmt"

	"clam/internal/handle"
	"clam/internal/xdr"
)

// Connection roles for the hello handshake. "There are actually at most
// two channels of communication between each client and the server. One
// channel is used for RPC requests from the client and the other is used
// for upcalls from the server" (§4.4). Each channel is its own stream,
// identified at connect time.
const (
	roleRPC    uint32 = 0
	roleUpcall uint32 = 1
)

// helloBody opens a connection: the client declares the channel's role
// and, for the upcall channel, the session it belongs to.
type helloBody struct {
	Role    uint32
	Session uint64
}

func (h *helloBody) bundle(s *xdr.Stream) error {
	s.Uint32(&h.Role)
	return s.Uint64(&h.Session)
}

// helloReplyBody acknowledges the handshake with the session identifier.
type helloReplyBody struct {
	Session uint64
}

func (h *helloReplyBody) bundle(s *xdr.Stream) error {
	return s.Uint64(&h.Session)
}

// Load-protocol operations (§2's dynamic loading plus instance management).
const (
	loadOpLoad uint32 = iota + 1
	loadOpNew
	loadOpUnload
	loadOpNamed
	// Exact-version variants: "different clients could have different
	// versions, depending on their application" (§2.1), so a client must
	// be able to pin the version rather than take the newest.
	loadOpLoadExact
	loadOpNewExact
	// Describe resolves a class id (or the class behind a handle) to its
	// {name, version} identity. A forwarding server uses it to translate
	// class ids minted by a lower server it dialed into classes of its own
	// library (forward.go); class ids are per-server, names are the
	// portable identity (§2.1).
	loadOpDescribe
)

// loadBody requests a dynamic-loading operation.
type loadBody struct {
	Op         uint32
	Name       string
	MinVersion uint32
	// ClassID and Obj parameterize loadOpDescribe: describe by class id,
	// or by the class of the object a handle names.
	ClassID uint32
	Obj     handle.Handle
}

func (l *loadBody) bundle(s *xdr.Stream) error {
	s.Uint32(&l.Op)
	s.String(&l.Name)
	s.Uint32(&l.MinVersion)
	s.Uint32(&l.ClassID)
	return l.Obj.Bundle(s)
}

// loadReplyBody answers a load request.
type loadReplyBody struct {
	OK      bool
	ErrMsg  string
	ClassID uint32
	Version uint32
	Name    string
	Obj     handle.Handle
}

func (l *loadReplyBody) bundle(s *xdr.Stream) error {
	s.Bool(&l.OK)
	if !l.OK {
		return s.String(&l.ErrMsg)
	}
	s.Uint32(&l.ClassID)
	s.Uint32(&l.Version)
	s.String(&l.Name)
	return l.Obj.Bundle(s)
}

// FaultReport is the error-report upcall of §4.3: "Once the server has
// determined that an error exists in a dynamically loaded class ... The
// server can choose to notify a client that it tried to use a faulty
// class. A new task is created in the server that handles the error
// reporting."
type FaultReport struct {
	// Class names the faulty loaded class, when known.
	Class string
	// Method is the procedure that faulted.
	Method string
	// Msg describes the fault.
	Msg string
}

// String renders the report.
func (f FaultReport) String() string {
	return fmt.Sprintf("fault in %s.%s: %s", f.Class, f.Method, f.Msg)
}

func (f *FaultReport) bundle(s *xdr.Stream) error {
	s.String(&f.Class)
	s.String(&f.Method)
	return s.String(&f.Msg)
}
