// Package core assembles CLAM from its substrates: the server that accepts
// clients, loads modules and dispatches calls; the per-client sessions with
// their two communication channels (§4.4); and the client runtime with its
// application and upcall flows. See DESIGN.md for the system inventory.
package core

import (
	"fmt"

	"clam/internal/handle"
	"clam/internal/xdr"
)

// Connection roles for the hello handshake. "There are actually at most
// two channels of communication between each client and the server. One
// channel is used for RPC requests from the client and the other is used
// for upcalls from the server" (§4.4). Each channel is its own stream,
// identified at connect time.
const (
	roleRPC    uint32 = 0
	roleUpcall uint32 = 1
)

// helloBody opens a connection: the client declares the channel's role
// and, for the upcall channel, the session it belongs to.
type helloBody struct {
	Role    uint32
	Session uint64
}

func (h *helloBody) bundle(s *xdr.Stream) error {
	s.Uint32(&h.Role)
	return s.Uint64(&h.Session)
}

// helloReplyBody acknowledges the handshake with the session identifier.
// When the server retains sessions across disconnects it also grants a
// resume token and announces the grace window; Token of zero means the
// session dies with its link, exactly the pre-resurrection behavior.
type helloReplyBody struct {
	Session     uint64
	Token       uint64
	WindowNanos int64
}

func (h *helloReplyBody) bundle(s *xdr.Stream) error {
	s.Uint64(&h.Session)
	s.Uint64(&h.Token)
	return s.Int64(&h.WindowNanos)
}

// resumeBody re-pairs a fresh connection with a parked session: the role
// plays the part helloBody.Role does on first connect, the token proves
// the caller owns the session, and the epoch guards against a stale
// reconnect from a generation the server already superseded.
type resumeBody struct {
	Role    uint32
	Session uint64
	Token   uint64
	Epoch   uint32
}

func (r *resumeBody) bundle(s *xdr.Stream) error {
	s.Uint32(&r.Role)
	s.Uint64(&r.Session)
	s.Uint64(&r.Token)
	return s.Uint32(&r.Epoch)
}

// resumeReplyBody answers a resume attempt. On refusal, Retry
// distinguishes "not yet" (the old link's reader has not parked the
// session) from "never" (unknown session, bad token, window expired).
// On success, Epoch is the new generation and RecvSeq the highest
// numbered call frame the server has received — the client replays only
// what lies above it, which is the duplicate-suppression half of the
// at-most-once argument (DESIGN.md §6.3).
type resumeReplyBody struct {
	OK      bool
	Retry   bool
	ErrMsg  string
	Epoch   uint32
	RecvSeq uint64
}

func (r *resumeReplyBody) bundle(s *xdr.Stream) error {
	s.Bool(&r.OK)
	s.Bool(&r.Retry)
	s.String(&r.ErrMsg)
	s.Uint32(&r.Epoch)
	return s.Uint64(&r.RecvSeq)
}

// Load-protocol operations (§2's dynamic loading plus instance management).
const (
	loadOpLoad uint32 = iota + 1
	loadOpNew
	loadOpUnload
	loadOpNamed
	// Exact-version variants: "different clients could have different
	// versions, depending on their application" (§2.1), so a client must
	// be able to pin the version rather than take the newest.
	loadOpLoadExact
	loadOpNewExact
	// Describe resolves a class id (or the class behind a handle) to its
	// {name, version} identity. A forwarding server uses it to translate
	// class ids minted by a lower server it dialed into classes of its own
	// library (forward.go); class ids are per-server, names are the
	// portable identity (§2.1).
	loadOpDescribe
)

// loadBody requests a dynamic-loading operation.
type loadBody struct {
	Op         uint32
	Name       string
	MinVersion uint32
	// ClassID and Obj parameterize loadOpDescribe: describe by class id,
	// or by the class of the object a handle names.
	ClassID uint32
	Obj     handle.Handle
}

func (l *loadBody) bundle(s *xdr.Stream) error {
	s.Uint32(&l.Op)
	s.String(&l.Name)
	s.Uint32(&l.MinVersion)
	s.Uint32(&l.ClassID)
	return l.Obj.Bundle(s)
}

// loadReplyBody answers a load request.
type loadReplyBody struct {
	OK      bool
	ErrMsg  string
	ClassID uint32
	Version uint32
	Name    string
	Obj     handle.Handle
}

func (l *loadReplyBody) bundle(s *xdr.Stream) error {
	s.Bool(&l.OK)
	if !l.OK {
		return s.String(&l.ErrMsg)
	}
	s.Uint32(&l.ClassID)
	s.Uint32(&l.Version)
	s.String(&l.Name)
	return l.Obj.Bundle(s)
}

// FaultReport is the error-report upcall of §4.3: "Once the server has
// determined that an error exists in a dynamically loaded class ... The
// server can choose to notify a client that it tried to use a faulty
// class. A new task is created in the server that handles the error
// reporting."
type FaultReport struct {
	// Class names the faulty loaded class, when known.
	Class string
	// Method is the procedure that faulted.
	Method string
	// Msg describes the fault.
	Msg string
}

// String renders the report.
func (f FaultReport) String() string {
	return fmt.Sprintf("fault in %s.%s: %s", f.Class, f.Method, f.Msg)
}

func (f *FaultReport) bundle(s *xdr.Stream) error {
	s.String(&f.Class)
	s.String(&f.Method)
	return s.String(&f.Msg)
}
