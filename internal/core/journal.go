package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/journal"
	"clam/internal/ruc"
)

// Server-side write-ahead journal integration (internal/journal): the
// durable half of session resurrection. With WithJournal, the server
// records its control plane — resume-token grants and epoch bumps,
// handle mints/revocations, name bindings, RUC and multicast
// registrations, and per-session receive high-water marks — and on the
// next start replays the log to rebuild the park table, the handle/tag
// space and the fan-out shards, so the existing MsgResume handshake
// reattaches clients across a server crash with no client-side changes.
//
// Recovery runs in two phases. Phase 1 (NewServer) opens the journal and
// floors every identifier space with the journaled maxima, so nothing
// minted by the new incarnation — including the application's bootstrap
// objects — can collide with an identifier a surviving client holds.
// Phase 2 (first Serve/Accept) rebuilds live state: parked sessions
// first, then handle-table entries re-bound to re-registered named
// objects or re-instantiated class instances, then multicast
// subscriptions. Phase 2 is deferred to Serve so the application has
// re-registered its classes, named objects and topics in between —
// exactly the clamd bootstrap order.

// WithJournal enables the write-ahead journal in dir: the server records
// session grants, handle mints, registrations and receive marks there,
// and replays the log on the next start so parked sessions survive a
// server crash. Enabling the journal implies session resurrection; if no
// WithResumeWindow is configured, a 30s window is applied. Control-plane
// records are fsynced before the reply that depends on them; per-call
// receive marks are coalesced into the group commit, keeping the hot
// call path off the disk (DESIGN.md §6.5).
func WithJournal(dir string) ServerOption {
	return func(s *Server) { s.journalDir = dir }
}

// journalRecovery holds what phase 2 rebuilt, for MetricsSnapshot.Journal.
// Atomics, because Metrics may snapshot concurrently with recovery.
type journalRecovery struct {
	sessions, handles, subs, rucs atomic.Uint64
	torn                          atomic.Bool
}

// openJournal is recovery phase 1, called at the end of NewServer: open
// (or create) the log, replay it to the recovered state, and floor the
// id allocators. An open failure is stashed and surfaced by Serve/Listen
// — NewServer has no error return, and a durability server that silently
// runs non-durable would be worse than one that refuses to start.
func (s *Server) openJournal() {
	if s.journalDir == "" {
		return
	}
	if s.resumeWindow <= 0 {
		s.resumeWindow = 30 * time.Second
	}
	j, st, err := journal.Open(s.journalDir, journal.Options{Log: s.logf})
	if err != nil {
		s.journalErr = fmt.Errorf("clam: opening journal: %w", err)
		return
	}
	s.journal = j
	s.jstate = st
	s.recov.torn.Store(st.Truncated)
	s.handles.FloorID(handle.ID(st.MaxHandle))
	s.rucs.Floor(st.MaxRUC)
	s.fan.subs.Floor(st.MaxSub)
	s.nextSess = st.MaxSession
}

// ensureRecovered is recovery phase 2, run once before the first accept.
func (s *Server) ensureRecovered() {
	if s.journal == nil {
		return
	}
	s.recoverOnce.Do(s.recoverFromJournal)
}

func (s *Server) recoverFromJournal() {
	st := s.jstate
	if st == nil {
		return
	}
	if st.Truncated {
		s.logf("clam: journal: torn tail truncated on open (crash mid-write); recovered to last complete record")
	}

	// Sessions first: handles and subscriptions hang off them. Each comes
	// back parked with its token, epoch fence and receive mark intact,
	// its resume window restarted.
	for _, id := range sortedIDs(st.Sessions) {
		ss := st.Sessions[id]
		sess := newParkedSession(s, id, ss)
		s.mu.Lock()
		if s.closed || s.sessions[id] != nil {
			s.mu.Unlock()
			continue
		}
		s.sessions[id] = sess
		s.mu.Unlock()
		sess.startHeartbeat()
		s.recov.sessions.Add(1)
	}

	// Handles: re-bind each journaled (id, tag) capability to a live
	// object, preserving the pair a client may still hold. A handle bound
	// to a well-known name re-binds to the re-registered named object; an
	// anonymous one is re-instantiated from its journaled class identity.
	nameByID := make(map[uint64]string, len(st.Names))
	for name, id := range st.Names {
		nameByID[id] = name
	}
	for _, id := range sortedIDs(st.Handles) {
		hs := st.Handles[id]
		var obj any
		var classID, version uint32
		if name, named := nameByID[id]; named {
			o, ok := s.Named(name)
			if !ok {
				s.logf("clam: journal: handle %d was named %q, which is not re-registered; skipping", id, name)
				continue
			}
			loaded, err := s.loader.ByType(reflect.TypeOf(o))
			if err != nil {
				s.logf("clam: journal: named object %q has no loaded class: %v; skipping handle %d", name, err, id)
				continue
			}
			obj, classID, version = o, loaded.ID, loaded.Version
		} else {
			loaded, err := s.LoadExact(hs.Class, hs.Version)
			if err != nil {
				s.logf("clam: journal: class %s v%d for handle %d not loadable: %v; skipping", hs.Class, hs.Version, id, err)
				continue
			}
			env := &Env{Server: s, SessionID: hs.Session}
			gerr := dynload.Guard(func() error {
				var nerr error
				obj, nerr = loaded.New(env)
				return nerr
			})
			if gerr != nil {
				s.logf("clam: journal: re-instantiating %s for handle %d: %v; skipping", hs.Class, id, gerr)
				continue
			}
			classID, version = loaded.ID, loaded.Version
		}
		s.handles.Restore(handle.Handle{ID: handle.ID(id), Tag: handle.Tag(hs.Tag)}, classID, version, obj)
		s.recov.handles.Add(1)
	}

	// Multicast subscriptions: the func type comes from the re-registered
	// topic's prototype, the caller is the recovered parked session, and
	// Restore preserves the subscription id the client holds.
	for _, id := range sortedIDs(st.Subs) {
		sub := st.Subs[id]
		sess := s.sessionByID(sub.Session)
		if sess == nil {
			s.logf("clam: journal: subscription %d belongs to unrecovered session %d; skipping", id, sub.Session)
			continue
		}
		if err := s.fan.restoreSub(sub.Topic, sub.ID, sub.Key, sub.ProcID, sess); err != nil {
			s.logf("clam: journal: restoring subscription %d: %v; skipping", id, err)
			continue
		}
		s.recov.subs.Add(1)
	}

	// Point-to-point RUC bindings are recorded but not rebuilt: the
	// procedure's Go func type does not survive the process, so only the
	// id floor is restored. The durable fan-out path is the multicast
	// table above; a resumed client re-passes procedure pointers on its
	// next call that carries one (DESIGN.md §6.5).
	s.recov.rucs.Store(uint64(len(st.RUCs)))
	if n := len(st.RUCs); n > 0 {
		s.logf("clam: journal: %d point-to-point RUC bindings not recoverable (procedure types die with the process)", n)
	}

	if s.recov.sessions.Load()+s.recov.handles.Load()+s.recov.subs.Load() > 0 {
		s.logf("clam: journal: recovered %d parked sessions, %d handles, %d subscriptions; resume window %v",
			s.recov.sessions.Load(), s.recov.handles.Load(), s.recov.subs.Load(), s.resumeWindow)
	}
}

func sortedIDs[V any](m map[uint64]*V) []uint64 {
	out := make([]uint64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// newParkedSession rebuilds a journaled session as if its link had just
// died: parked, link down, resume window running. No connection exists
// yet — the client's MsgResume installs one, through the same
// resumeRPC/resumeUpcall path a live park uses.
func newParkedSession(srv *Server, id uint64, ss *journal.SessionState) *session {
	sess := &session{
		id:       id,
		srv:      srv,
		upMax:    srv.maxClientUpcalls,
		upFreeCh: make(chan struct{}, 1),
	}
	if srv.exec != nil {
		sess.execItems = make(map[*dispatchItem]struct{})
	}
	sess.token = ss.Token
	sess.epoch = ss.Epoch
	sess.recvSeq.Store(ss.RecvSeq)
	sess.markHW = ss.RecvSeq
	e := &sess.endpoint
	e.reg = srv.reg
	e.mkCtx = sess.ctx
	e.callTimeout = srv.upcallTimeout
	e.hbInterval = srv.hbInterval
	e.hbWindow = srv.hbWindow
	e.link = &srv.metrics.link
	e.closedCh = make(chan struct{})
	e.logf = srv.logf
	e.lastRPC.Store(time.Now().UnixNano())
	sess.relay = &relayCaller{sess: sess}
	sess.parked = true
	sess.linkDown.Store(true)
	sess.parkTimer = time.AfterFunc(srv.resumeWindow, sess.expireIfParked)
	return sess
}

// --- durable append hooks ----------------------------------------------------

// journalGrant makes a new session's resume token durable before the
// hello reply carries it to the client, so any token a client holds is
// one a restarted server recognizes.
func (s *Server) journalGrant(sess *session) {
	if s.journal == nil || sess.token == 0 {
		return
	}
	if err := s.journal.Grant(sess.id, sess.token); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("clam: journal: recording grant for session %d: %v", sess.id, err)
	}
}

// journalEpoch makes a successful resume's new fence durable before the
// resume reply, so a crash after the reply cannot roll the fence back
// and admit a stale link.
func (s *Server) journalEpoch(sess *session, epoch uint32) {
	if s.journal == nil {
		return
	}
	if err := s.journal.EpochBump(sess.id, epoch); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("clam: journal: recording epoch %d for session %d: %v", epoch, sess.id, err)
	}
}

// journalEndSession records a session's definitive end (eviction, expiry,
// goodbye), so recovery does not resurrect it.
func (s *Server) journalEndSession(sess *session) {
	if s.journal == nil || sess.token == 0 {
		return
	}
	if err := s.journal.EndSession(sess.id); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("clam: journal: recording end of session %d: %v", sess.id, err)
	}
}

// putHandle is the journaling mint wrapper every non-proxy handle mint
// goes through: Put, and — when the handle is newly minted — a durable
// record of the (id, tag) capability and its class identity. An object
// that is also published under a well-known name gets a name-binding
// record too, so recovery re-binds the capability to the re-registered
// object rather than instantiating a stranger of the same class.
// (Proxy handles for a lower server's objects are deliberately not
// journaled: their *Remote rebuilds through the forwarding layer's own
// resurrect path, not from this server's log.)
func (s *Server) putHandle(obj any, loaded *dynload.Loaded, sessID uint64) (handle.Handle, error) {
	h, isNew, err := s.handles.PutNew(obj, loaded.ID, loaded.Version)
	if err != nil || !isNew || s.journal == nil {
		return h, err
	}
	if jerr := s.journal.Mint(uint64(h.ID), uint64(h.Tag), loaded.Name, loaded.Version, sessID); jerr != nil && !errors.Is(jerr, journal.ErrClosed) {
		s.logf("clam: journal: recording mint of %v: %v", h, jerr)
	}
	if name := s.nameOf(obj); name != "" {
		if jerr := s.journal.BindName(name, uint64(h.ID)); jerr != nil && !errors.Is(jerr, journal.ErrClosed) {
			s.logf("clam: journal: recording name %q for %v: %v", name, h, jerr)
		}
	}
	return h, nil
}

// nameOf reverse-resolves obj through the named-instance map (tiny: a
// handful of bootstrap objects), covering the CreateInstance-then-
// SetNamed order; SetNamed itself covers the other order.
func (s *Server) nameOf(obj any) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, o := range s.named {
		if o == obj {
			return name
		}
	}
	return ""
}

// revokeHandleObj is RevokeObj with a durable record, so a revoked
// capability stays revoked across a restart.
func (s *Server) revokeHandleObj(obj any) bool {
	h, ok := s.handles.Lookup(obj)
	if !ok {
		return false
	}
	removed := s.handles.RevokeObj(obj)
	if removed && s.journal != nil {
		if err := s.journal.Revoke(uint64(h.ID)); err != nil && !errors.Is(err, journal.ErrClosed) {
			s.logf("clam: journal: recording revocation of %v: %v", h, err)
		}
	}
	return removed
}

// journalSubscribe / journalUnsubscribe record multicast registrations.
func (s *Server) journalSubscribe(id, key uint64, topic string, procID, sessID uint64) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Subscribe(id, key, topic, procID, sessID); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("clam: journal: recording subscription %d on %q: %v", id, topic, err)
	}
}

func (s *Server) journalUnsubscribe(topic string, key, id uint64) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Unsubscribe(topic, key, id); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("clam: journal: recording unsubscribe %d on %q: %v", id, topic, err)
	}
}

// journalBindRUC records a point-to-point procedure binding (reported,
// not rebuilt, at recovery — see recoverFromJournal).
func (s *Server) journalBindRUC(id, procID, sessID uint64) {
	if s.journal == nil {
		return
	}
	if err := s.journal.BindRUC(id, procID, sessID); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("clam: journal: recording RUC binding %d: %v", id, err)
	}
}

// --- receive marks -----------------------------------------------------------

// noteExecuted records that numbered frame seq of this session finished
// executing. Marks are written strictly after execution — a
// pre-execution mark could declare a frame done that a crash then loses,
// silently violating at-most-once from the client's point of view — and
// only the contiguous high-water mark is journaled, because the
// per-object executor completes frames out of order and a mark must mean
// "everything at or below executed". The journal coalesces marks
// per-session into its group commit, so this is a mutex and a map write
// on the hot path, never a disk wait.
func (sess *session) noteExecuted(seq uint64) {
	j := sess.srv.journal
	if j == nil || seq == 0 {
		return
	}
	sess.markMu.Lock()
	switch {
	case seq <= sess.markHW:
		// Duplicate completion (replayed frame): nothing to advance.
	case seq == sess.markHW+1:
		sess.markHW = seq
		for {
			if _, ok := sess.markAbove[sess.markHW+1]; !ok {
				break
			}
			delete(sess.markAbove, sess.markHW+1)
			sess.markHW++
		}
		j.Mark(sess.id, sess.markHW)
	default:
		if sess.markAbove == nil {
			sess.markAbove = make(map[uint64]struct{})
		}
		sess.markAbove[seq] = struct{}{}
	}
	sess.markMu.Unlock()
}

// restoreSub re-installs a journaled multicast subscription under its
// original id: the delivery state is fresh (queued events did not
// survive the crash — at-most-once, not at-least-once), the func type
// re-derives from the re-registered topic's prototype, and the caller is
// the recovered parked session, whose drain stands down until resume.
func (f *fanoutState) restoreSub(topic string, id, key, procID uint64, caller ruc.Caller) error {
	t := f.topic(topic)
	if t == nil {
		return fmt.Errorf("clam: topic %q not re-registered", topic)
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return errors.New("clam: server closed")
	}
	sub := &ruc.Sub{ID: id, Key: key, Topic: topic, ProcID: procID, FuncType: t.ft, Caller: caller}
	fs := &fanSub{top: t, sub: sub}
	fs.cond = sync.NewCond(&fs.mu)
	sub.State = fs
	f.subs.Restore(sub)
	return nil
}
