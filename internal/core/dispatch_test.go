package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam/internal/dynload"
)

// Ordering-semantics tests for the per-object dispatch executor
// (executor.go), run against both engines: the executor must preserve
// every guarantee the serial dispatcher gave — same-object calls never
// interleave, one client task's calls execute in program order (§3.4) —
// while actually overlapping independent objects, which only the executor
// is asserted to do.

// stepper detects concurrent entry into Step: entries counts handlers
// inside the method, and any count above one proves an interleave.
type stepper struct {
	entries atomic.Int32
	overlap atomic.Bool
	calls   atomic.Int64
}

func (s *stepper) Step() {
	if s.entries.Add(1) > 1 {
		s.overlap.Store(true)
	}
	time.Sleep(50 * time.Microsecond)
	s.entries.Add(-1)
	s.calls.Add(1)
}

// recorder instances share one log, so calls spread across two objects
// still reveal their global execution order.
type recorder struct{ log *orderLog }

type orderLog struct {
	mu  sync.Mutex
	seq []string
}

func (r *recorder) Note(s string) {
	r.log.mu.Lock()
	r.log.seq = append(r.log.seq, s)
	r.log.mu.Unlock()
}

func (l *orderLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seq...)
}

// gate instances share a meeting point: Meet returns 1 only if the other
// party's handler is running at the same time. Two calls that serialize
// — on either object — time out and return 0.
type gate struct{ r *meeting }

type meeting struct {
	mu      sync.Mutex
	arrived int
	both    chan struct{}
}

func (g *gate) Meet() int64 {
	g.r.mu.Lock()
	g.r.arrived++
	if g.r.arrived == 2 {
		close(g.r.both)
		g.r.mu.Unlock()
		return 1
	}
	g.r.mu.Unlock()
	select {
	case <-g.r.both:
		return 1
	case <-time.After(3 * time.Second):
		return 0
	}
}

func dispatchLibrary(t testing.TB) *dynload.Library {
	t.Helper()
	lib := dynload.NewLibrary()
	meet := &meeting{both: make(chan struct{})}
	rlog := &orderLog{}
	lib.MustRegister(dynload.Class{
		Name: "stepper", Version: 1, Type: reflect.TypeOf(&stepper{}),
		New: func(any) (any, error) { return &stepper{}, nil },
	})
	lib.MustRegister(dynload.Class{
		Name: "gate", Version: 1, Type: reflect.TypeOf(&gate{}),
		New: func(any) (any, error) { return &gate{r: meet}, nil },
	})
	lib.MustRegister(dynload.Class{
		Name: "recorder", Version: 1, Type: reflect.TypeOf(&recorder{}),
		New: func(any) (any, error) { return &recorder{log: rlog}, nil },
	})
	return lib
}

// startDispatchServer boots a server over the probe library on a unix
// socket, publishing one instance of cls under each requested name.
func startDispatchServer(t testing.TB, names map[string]string, opts ...ServerOption) (*Server, string, map[string]any) {
	t.Helper()
	srv := NewServer(dispatchLibrary(t), append([]ServerOption{
		WithServerLog(func(format string, args ...any) { t.Logf(format, args...) }),
	}, opts...)...)
	objs := make(map[string]any)
	for name, cls := range names {
		obj, _, err := srv.CreateInstance(cls, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetNamed(name, obj)
		objs[name] = obj
	}
	path := filepath.Join(t.TempDir(), "clam.sock")
	if _, err := srv.Listen("unix", path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, path, objs
}

// forEachDispatchMode runs a subtest under the per-object executor and
// under the serial ablation, passing the matching server options.
func forEachDispatchMode(t *testing.T, fn func(t *testing.T, opts []ServerOption)) {
	t.Run("perobject", func(t *testing.T) { fn(t, nil) })
	t.Run("serial", func(t *testing.T) {
		fn(t, []ServerOption{WithPerObjectDispatch(false)})
	})
}

// TestDispatchSameObjectNeverInterleaves: concurrent clients hammering
// one object stay strictly serialized — in both engines.
func TestDispatchSameObjectNeverInterleaves(t *testing.T) {
	forEachDispatchMode(t, func(t *testing.T, opts []ServerOption) {
		_, path, objs := startDispatchServer(t, map[string]string{"step": "stepper"}, opts...)
		st := objs["step"].(*stepper)

		const clients, each = 4, 25
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			c := dialClient(t, path)
			obj, err := c.NamedObject("step")
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < each; j++ {
					if err := obj.Call("Step"); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if st.overlap.Load() {
			t.Fatal("two handlers ran inside the same object at once")
		}
		if got := st.calls.Load(); got != clients*each {
			t.Fatalf("executed %d calls, want %d", got, clients*each)
		}
	})
}

// TestDispatchSameTaskProgramOrder: one client task's asynchronous calls,
// alternating between two objects and flushed by Sync, execute in program
// order (§3.4) — with client batching on (multi-call batches) and off
// (every call its own message), in both engines.
func TestDispatchSameTaskProgramOrder(t *testing.T) {
	forEachDispatchMode(t, func(t *testing.T, opts []ServerOption) {
		for _, batching := range []bool{true, false} {
			name := "batched"
			if !batching {
				name = "unbatched"
			}
			t.Run(name, func(t *testing.T) {
				_, path, objs := startDispatchServer(t,
					map[string]string{"rec1": "recorder", "rec2": "recorder"}, opts...)
				rlog := objs["rec1"].(*recorder).log

				var dialOpts []DialOption
				if !batching {
					dialOpts = append(dialOpts, WithoutClientBatching())
				}
				c := dialClient(t, path, dialOpts...)
				r1, err := c.NamedObject("rec1")
				if err != nil {
					t.Fatal(err)
				}
				r2, err := c.NamedObject("rec2")
				if err != nil {
					t.Fatal(err)
				}

				const n = 40
				want := make([]string, 0, n)
				for i := 0; i < n; i++ {
					obj := r1
					if i%2 == 1 {
						obj = r2
					}
					s := fmt.Sprintf("s%03d", i)
					if err := obj.Async("Note", s); err != nil {
						t.Fatal(err)
					}
					want = append(want, s)
				}
				if err := c.Sync(); err != nil {
					t.Fatal(err)
				}
				got := rlog.snapshot()
				if len(got) != len(want) {
					t.Fatalf("executed %d calls, want %d: %v", len(got), len(want), got)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("execution order %v, want program order %v", got, want)
					}
				}
			})
		}
	})
}

// TestDispatchCrossObjectOverlap: two synchronous calls from one session
// to distinct objects run simultaneously under the executor — the
// rendezvous only succeeds if both handlers are in flight at once. (The
// serial engine would time this out by design, so it is not run here.)
func TestDispatchCrossObjectOverlap(t *testing.T) {
	srv, path, _ := startDispatchServer(t, map[string]string{"g1": "gate", "g2": "gate"})
	c := dialClient(t, path)

	g1, err := c.NamedObject("g1")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.NamedObject("g2")
	if err != nil {
		t.Fatal(err)
	}

	var met1, met2 int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := g1.CallInto("Meet", []any{&met1}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := g2.CallInto("Meet", []any{&met2}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if met1 != 1 || met2 != 1 {
		t.Fatalf("rendezvous failed (met1=%d met2=%d): cross-object calls did not overlap", met1, met2)
	}
	if p := srv.Metrics().Dispatch.Parallelism; p < 2 {
		t.Fatalf("DispatchStats.Parallelism = %d, want >= 2", p)
	}
}

// TestDispatchChainPerObjectOrder: a three-address-space chain (top
// client → middle server → bottom server) preserves one task's program
// order end-to-end: asyncs relayed down through proxy handles land on the
// bottom objects in issue order, and the chained Sync flushes them all —
// in both engines (both hops run the same engine per mode).
func TestDispatchChainPerObjectOrder(t *testing.T) {
	forEachDispatchMode(t, func(t *testing.T, opts []ServerOption) {
		bottom, _, objs := startDispatchServer(t,
			map[string]string{"rec1": "recorder", "rec2": "recorder"}, opts...)
		rlog := objs["rec1"].(*recorder).log

		mid := NewServer(dispatchLibrary(t), append([]ServerOption{
			WithServerLog(func(format string, args ...any) { t.Logf("mid: "+format, args...) }),
		}, opts...)...)
		t.Cleanup(func() { mid.Close() })
		up, err := SelfDialUpstream(mid, bottom, WithClientLog(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		if err := mid.ImportNamed(up, "rec1", "rec2"); err != nil {
			t.Fatal(err)
		}
		top, err := SelfDial(mid, WithClientLog(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { top.Close() })

		r1, err := top.NamedObject("rec1")
		if err != nil {
			t.Fatal(err)
		}
		r2, err := top.NamedObject("rec2")
		if err != nil {
			t.Fatal(err)
		}

		const n = 50
		want := make([]string, 0, n)
		for i := 0; i < n; i++ {
			obj := r1
			if i%2 == 1 {
				obj = r2
			}
			s := fmt.Sprintf("c%03d", i)
			if err := obj.Async("Note", s); err != nil {
				t.Fatal(err)
			}
			want = append(want, s)
		}
		if err := top.Sync(); err != nil {
			t.Fatal(err)
		}
		got := rlog.snapshot()
		if len(got) != len(want) {
			t.Fatalf("bottom executed %d calls, want %d: %v", len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chain execution order %v, want program order %v", got, want)
			}
		}
	})
}

// TestDispatchMetricsReportEngine: the snapshot names the engine in play
// and, after a concurrent burst, the executor's high-water mark proves
// real overlap happened.
func TestDispatchMetricsReportEngine(t *testing.T) {
	srv, path, _ := startDispatchServer(t, map[string]string{"g1": "gate", "g2": "gate"})
	c := dialClient(t, path)
	g1, _ := c.NamedObject("g1")
	g2, _ := c.NamedObject("g2")
	var m1, m2 int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = g1.CallInto("Meet", []any{&m1}) }()
	go func() { defer wg.Done(); _ = g2.CallInto("Meet", []any{&m2}) }()
	wg.Wait()

	d := srv.Metrics().Dispatch
	if !d.PerObject {
		t.Fatal("Dispatch.PerObject = false, want true by default")
	}
	if d.Workers < 2 {
		t.Fatalf("Dispatch.Workers = %d, want >= 2", d.Workers)
	}
	if d.Parallelism < 2 {
		t.Fatalf("Dispatch.Parallelism = %d, want >= 2 after concurrent burst", d.Parallelism)
	}

	sr, _, _ := startDispatchServer(t, map[string]string{"s": "stepper"}, WithPerObjectDispatch(false))
	if ds := sr.Metrics().Dispatch; ds.PerObject || ds.Workers != 1 {
		t.Fatalf("serial Dispatch = %+v, want {Workers:1 PerObject:false}", ds)
	}
}
