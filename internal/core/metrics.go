package core

import (
	"sort"
	"sync"
)

// Server instrumentation. The paper's group built IPS, an "interactive
// and automatic performance measurement tool for parallel and distributed
// programs" (reference [8]), and §5's call-cost table presupposes exactly
// this kind of counting inside the server. Metrics are cheap counters
// updated on the dispatch paths and snapshotted on demand — clamd exposes
// them and tests assert against them.

// metrics is the live counter set; all fields guarded by mu.
type metrics struct {
	mu           sync.Mutex
	calls        map[string]uint64 // "class.Method" → count
	syncCalls    uint64
	asyncCalls   uint64
	batches      uint64
	upcalls      uint64
	upcallFails  uint64
	faults       uint64
	loads        uint64
	faultReports uint64
}

func newMetrics() *metrics {
	return &metrics{calls: make(map[string]uint64)}
}

func (m *metrics) countCall(class, method string, sync bool) {
	m.mu.Lock()
	m.calls[class+"."+method]++
	if sync {
		m.syncCalls++
	} else {
		m.asyncCalls++
	}
	m.mu.Unlock()
}

func (m *metrics) countBatch() {
	m.mu.Lock()
	m.batches++
	m.mu.Unlock()
}

func (m *metrics) countUpcall(failed bool) {
	m.mu.Lock()
	m.upcalls++
	if failed {
		m.upcallFails++
	}
	m.mu.Unlock()
}

func (m *metrics) countFault() {
	m.mu.Lock()
	m.faults++
	m.mu.Unlock()
}

func (m *metrics) countLoad() {
	m.mu.Lock()
	m.loads++
	m.mu.Unlock()
}

func (m *metrics) countFaultReport() {
	m.mu.Lock()
	m.faultReports++
	m.mu.Unlock()
}

// MetricsSnapshot is a point-in-time copy of the server's counters.
type MetricsSnapshot struct {
	// Calls maps "class.Method" to its dispatch count (all outcomes).
	Calls map[string]uint64
	// SyncCalls and AsyncCalls split dispatches by reply expectation.
	SyncCalls, AsyncCalls uint64
	// Batches counts MsgCall messages (each carrying >=1 calls).
	Batches uint64
	// Upcalls counts distributed upcalls initiated; UpcallFailures those
	// that ended in timeout, disconnect or a handler error.
	Upcalls, UpcallFailures uint64
	// Faults counts panics caught in loaded code; FaultReports the error
	// upcalls sent for them.
	Faults, FaultReports uint64
	// Loads counts load-protocol operations that succeeded.
	Loads uint64
}

// TopCalls returns the busiest methods, most-called first, at most n.
func (s MetricsSnapshot) TopCalls(n int) []string {
	type kv struct {
		k string
		v uint64
	}
	all := make([]kv, 0, len(s.Calls))
	for k, v := range s.Calls {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].k
	}
	return out
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	m := s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	calls := make(map[string]uint64, len(m.calls))
	for k, v := range m.calls {
		calls[k] = v
	}
	return MetricsSnapshot{
		Calls:          calls,
		SyncCalls:      m.syncCalls,
		AsyncCalls:     m.asyncCalls,
		Batches:        m.batches,
		Upcalls:        m.upcalls,
		UpcallFailures: m.upcallFails,
		Faults:         m.faults,
		FaultReports:   m.faultReports,
		Loads:          m.loads,
	}
}
