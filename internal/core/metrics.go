package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/shm"
	"clam/internal/wire"
)

// Server instrumentation. The paper's group built IPS, an "interactive
// and automatic performance measurement tool for parallel and distributed
// programs" (reference [8]), and §5's call-cost table presupposes exactly
// this kind of counting inside the server. Metrics are cheap counters
// updated on the dispatch paths and snapshotted on demand — clamd exposes
// them and tests assert against them.
//
// Scalar counters are atomics and the per-method map is sharded by a
// string hash, so counting on the hot dispatch path never funnels every
// session through one mutex.

// callShards is the number of per-method map shards; a power of two so
// the hash can be masked.
const callShards = 16

// callKey identifies one method without materializing the "class.Method"
// string on the dispatch path — the concatenation is deferred to snapshot
// time, keeping countCall allocation-free.
type callKey struct {
	class, method string
}

type callShard struct {
	mu sync.Mutex
	m  map[callKey]uint64
}

// metrics is the live counter set. Link-level counters (heartbeats,
// retries, timeouts) live in the shared linkCounters struct the endpoint
// engine counts into — the same struct backs the client's metrics, since
// both roles run the same engine.
type metrics struct {
	syncCalls      atomic.Uint64
	asyncCalls     atomic.Uint64
	batches        atomic.Uint64
	upcalls        atomic.Uint64
	upcallFails    atomic.Uint64
	upcallTimeouts atomic.Uint64
	faults         atomic.Uint64
	loads          atomic.Uint64
	faultReports   atomic.Uint64
	evictions      atomic.Uint64
	rejectedSess   atomic.Uint64

	// Per-hop forwarding counters: calls relayed to an upstream (lower)
	// server, and upcalls relayed from it back toward our clients.
	callsRelayed   atomic.Uint64
	upcallsRelayed atomic.Uint64

	// resumes counts sessions successfully resurrected after a link loss
	// (the server side of a client reconnect).
	resumes atomic.Uint64

	// Mesh routing counters (mesh.go): named lookups resolved to an owning
	// peer and routed there, and calls failed fast because the owner's
	// link was down or its breaker open.
	meshRouted   atomic.Uint64
	meshPeerDown atomic.Uint64

	// Multicast fan-out counters (fanout.go). Published counts Publish
	// calls (plus events republished by upstream relays); delivered and
	// failed count per-subscriber delivery attempts; coalesced counts
	// pending events superseded or deduplicated before delivery; the
	// drop counters split queue losses by cause.
	fanPublished     atomic.Uint64
	fanDelivered     atomic.Uint64
	fanRelayed       atomic.Uint64
	fanCoalesced     atomic.Uint64
	fanDeliveryFails atomic.Uint64
	fanDropsOldest   atomic.Uint64
	fanDropsNewest   atomic.Uint64
	fanDropsClosed   atomic.Uint64

	// Transport accounting while shared memory is on offer: sessions that
	// arrived over the ring broker vs. socket sessions accepted anyway
	// (remote clients, WithoutSharedMemory, or a failed rendezvous).
	shmConns     atomic.Uint64
	shmFallbacks atomic.Uint64

	// Deadline/cancel counters (§6.8). budgetedCalls counts frames that
	// arrived carrying a nonzero budget; shedExpired/shedCancelled count
	// calls refused without executing (budget spent / MsgCancel landed
	// first); shedAdmission counts calls the admission layer refused at
	// the read loop (WithMaxQueueDelay); cancelsRecv counts call seqs
	// named by MsgCancel frames received; handlerCancels counts cancels
	// that landed on an in-flight handler's context.
	budgetedCalls  atomic.Uint64
	shedExpired    atomic.Uint64
	shedCancelled  atomic.Uint64
	shedAdmission  atomic.Uint64
	cancelsRecv    atomic.Uint64
	handlerCancels atomic.Uint64

	// queueDelay is an EWMA (α=1/8) of dispatch queue wait in nanoseconds,
	// maintained only when admission control is on; queueDelayAt is the
	// UnixNano of its last sample. Samples only arrive when frames are
	// dispatched, so a raw EWMA would lock the admission layer out
	// forever: refuse everything → no dispatches → no samples → the
	// stale high estimate never falls. queueDelayEstimate ages the value
	// by its sample age instead — while admission refuses, the queue is
	// draining, so the expected wait falls at least that fast. Both race
	// benignly: a lost update skews the estimate by one sample.
	queueDelay   atomic.Int64
	queueDelayAt atomic.Int64

	// pendingFrames counts call frames admitted but not yet fully
	// executed, and svcTime is an EWMA (α=1/8) of per-frame execution
	// wall time — together they give the admission layer a queueing
	// estimate (pending × service / workers) that reacts to its own
	// admissions instantly, where a wait-EWMA alone herd-admits a burst
	// before the first sample lands. Maintained only under
	// WithMaxQueueDelay.
	pendingFrames atomic.Int64
	svcTime       atomic.Int64

	link linkCounters

	shards [callShards]callShard
}

func newMetrics() *metrics {
	m := &metrics{}
	for i := range m.shards {
		m.shards[i].m = make(map[callKey]uint64)
	}
	return m
}

// fnv1a is the 32-bit FNV-1a hash, inlined to keep countCall allocation-free.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (m *metrics) countCall(class, method string, sync bool) {
	sh := &m.shards[(fnv1a(class)^fnv1a(method))&(callShards-1)]
	sh.mu.Lock()
	sh.m[callKey{class, method}]++
	sh.mu.Unlock()
	if sync {
		m.syncCalls.Add(1)
	} else {
		m.asyncCalls.Add(1)
	}
}

func (m *metrics) countBatch() { m.batches.Add(1) }

func (m *metrics) countUpcall(failed bool) {
	m.upcalls.Add(1)
	if failed {
		m.upcallFails.Add(1)
	}
}

func (m *metrics) countUpcallTimeout() { m.upcallTimeouts.Add(1) }
func (m *metrics) countFault()         { m.faults.Add(1) }
func (m *metrics) countLoad()          { m.loads.Add(1) }
func (m *metrics) countFaultReport()   { m.faultReports.Add(1) }
func (m *metrics) countEviction()      { m.evictions.Add(1) }
func (m *metrics) countRejected()      { m.rejectedSess.Add(1) }
func (m *metrics) countRelayedCall()   { m.callsRelayed.Add(1) }
func (m *metrics) countRelayedUpcall() { m.upcallsRelayed.Add(1) }
func (m *metrics) countResume()        { m.resumes.Add(1) }

// noteQueueDelay folds one observed queue wait (execBatch start minus
// frame arrival) into the EWMA: new = old·7/8 + sample/8.
func (m *metrics) noteQueueDelay(waitNanos int64) {
	if waitNanos < 0 {
		waitNanos = 0
	}
	old := m.queueDelay.Load()
	m.queueDelay.Store(old - old/8 + waitNanos/8)
	m.queueDelayAt.Store(time.Now().UnixNano())
}

// noteServiceTime folds one frame's execution wall time into the
// service-time EWMA.
func (m *metrics) noteServiceTime(d time.Duration) {
	old := m.svcTime.Load()
	m.svcTime.Store(old - old/8 + int64(d)/8)
}

// queueDelayEstimate is the admission layer's expected queue wait for a
// frame arriving now: frames ahead of it times the per-frame service
// estimate, divided by the workers draining them. Because each admitted
// frame raises pendingFrames before the next admission decision, a burst
// sees the queue it is building — no herd admission, no estimator
// lockout (an empty queue estimates zero regardless of history).
func (m *metrics) queueDelayEstimate(workers int) int64 {
	pending := m.pendingFrames.Load()
	if pending <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	return pending * m.svcTime.Load() / int64(workers)
}

// MetricsSnapshot is a point-in-time copy of the server's counters.
type MetricsSnapshot struct {
	// Calls maps "class.Method" to its dispatch count (all outcomes).
	Calls map[string]uint64
	// SyncCalls and AsyncCalls split dispatches by reply expectation.
	SyncCalls, AsyncCalls uint64
	// Batches counts MsgCall messages (each carrying >=1 calls).
	Batches uint64
	// Upcalls counts distributed upcalls initiated; UpcallFailures those
	// that ended in timeout, disconnect or a handler error.
	Upcalls, UpcallFailures uint64
	// UpcallTimeouts counts the subset of upcall failures caused by the
	// liveness timeout (WithUpcallTimeout) expiring.
	UpcallTimeouts uint64
	// Faults counts panics caught in loaded code; FaultReports the error
	// upcalls sent for them.
	Faults, FaultReports uint64
	// Loads counts load-protocol operations that succeeded.
	Loads uint64
	// Evictions counts sessions the server terminated for cause: a missed
	// liveness window or a slow upcall consumer.
	Evictions uint64
	// RejectedSessions counts connections refused by WithMaxSessions.
	RejectedSessions uint64
	// LinkStats carries the shared endpoint-engine counters (heartbeats,
	// retries, timeouts) aggregated across all sessions. Embedded, so
	// HeartbeatsSent and HeartbeatsReceived promote as before.
	LinkStats
	// Forwarding carries the per-hop relay counters for a server that
	// dialed an upstream (lower) server.
	Forwarding ForwardingStats
	// Dispatch describes the dispatch engine and its executor counters.
	Dispatch DispatchStats
	// Resilience carries the session-resurrection counters, aggregated
	// over this server's own sessions and its upstream links.
	Resilience ResilienceStats
	// Fanout carries the multicast counters (RegisterMulticast/Publish).
	Fanout FanoutStats
	// Mesh describes this server's membership in a federated peer mesh
	// (JoinMesh); zero-valued with Enabled false outside a mesh.
	Mesh MeshStats
	// Journal carries the write-ahead journal counters (WithJournal);
	// zero-valued with Enabled false when the server runs without one.
	Journal JournalStats
	// Transport describes the byte-transport fast paths: shared-memory
	// ring activity (WithSharedMemory) and vectored socket writes.
	Transport TransportStats
	// Overload carries the deadline-budget, cancellation and shedding
	// counters (§6.8).
	Overload OverloadStats
}

// OverloadStats counts deadline-budget and cancellation activity (§6.8).
type OverloadStats struct {
	// SheddingEnabled reports whether expired-budget shedding is active
	// (the default; WithoutDeadlineShedding turns it off for ablation).
	SheddingEnabled bool
	// BudgetedCalls counts call frames that arrived carrying a nonzero
	// deadline budget.
	BudgetedCalls uint64
	// ShedExpired counts calls refused with StatusDeadline before
	// executing because their budget was already spent; ShedCancelled
	// counts calls refused because a MsgCancel named them first;
	// ShedAdmission counts calls the admission layer (WithMaxQueueDelay)
	// refused at the read loop because the estimated queue wait alone
	// would exhaust their budget or exceed the configured ceiling.
	ShedExpired, ShedCancelled, ShedAdmission uint64
	// CancelsReceived counts call seqs named by MsgCancel frames this
	// server received; HandlerCancels the subset that landed on an
	// in-flight handler and cancelled its context; CancelsPropagated
	// counts seqs this server shipped onward in MsgCancel frames over
	// its peer links (chain upstreams and mesh peers).
	CancelsReceived, HandlerCancels, CancelsPropagated uint64
	// QueueDelayEWMANanos is the admission layer's running estimate of
	// dispatch queue wait (zero unless WithMaxQueueDelay is set).
	QueueDelayEWMANanos uint64
}

// TransportStats describes the transport fast paths. The shm counters are
// process-wide (rings are a process resource, not a per-server one); the
// session split (ShmSessions/SocketFallbacks) is this server's own.
type TransportStats struct {
	// ShmEnabled reports whether this server offers the shared-memory
	// rendezvous (WithSharedMemory on a supported platform).
	ShmEnabled bool
	// ShmSessions counts connections accepted over rings;
	// SocketFallbacks counts socket connections accepted while shm was on
	// offer — nonzero is normal for remote clients, and for same-host
	// clients it means the rendezvous failed (see OPERATIONS).
	ShmSessions, SocketFallbacks uint64
	// DoorbellWakeups counts eventfd wakeups (slow-path write(2)s);
	// DoorbellSleeps counts parks behind an armed doorbell. Both zero
	// under steady ping-pong load is the hot path working as designed.
	DoorbellWakeups, DoorbellSleeps uint64
	// RingHighWater is the most bytes observed queued in any ring — the
	// occupancy signal for sizing WithSharedMemory's ring.
	RingHighWater uint64
	// WritevFlushes counts vectored gather-writes on kernel sockets;
	// WritevFrames the frames they carried. Frames/Flushes is the syscall
	// batching factor.
	WritevFlushes, WritevFrames uint64
}

// JournalStats describes the write-ahead journal (journal.go) and what
// the last recovery rebuilt from it.
type JournalStats struct {
	// Enabled reports whether the server runs with WithJournal.
	Enabled bool
	// Appends counts records accepted; SyncAppends the subset that waited
	// for their fsync (grants, mints, registrations); Fsyncs the actual
	// disk syncs — group commit makes Fsyncs << Appends under load.
	Appends, SyncAppends, Fsyncs uint64
	// Compactions counts snapshot rewrites; SizeBytes is the journal file's
	// current size.
	Compactions uint64
	SizeBytes   int64
	// RecoveredSessions, RecoveredHandles and RecoveredSubs report what the
	// last restart rebuilt from the journal.
	RecoveredSessions, RecoveredHandles, RecoveredSubs uint64
	// TornTailTruncated reports that the journal ended mid-record on open
	// (crash during a write) and recovery truncated to the last complete
	// record — expected after a hard crash, a red flag otherwise.
	TornTailTruncated bool
}

// FanoutStats counts multicast fan-out activity (fanout.go).
type FanoutStats struct {
	// SubscribersLive is the current live subscription count across all
	// topics; Topics the number of declared multicast procedures; Shards
	// the subscription table's shard count.
	SubscribersLive, Topics, Shards uint64
	// EventsPublished counts Publish calls, including events an upstream
	// relay republished here; EventsRelayed is that relayed subset — on
	// a middle tier, EventsRelayed equal to the upstream's per-topic
	// publish count is the signature of tree multiplication (one event
	// per hop, multiplied locally).
	EventsPublished, EventsRelayed uint64
	// EventsDelivered counts per-subscriber deliveries completed;
	// DeliveryFailures attempts that errored (timeout, disconnect,
	// handler error) — failed deliveries are not retried, preserving
	// at-most-once.
	EventsDelivered, DeliveryFailures uint64
	// EventsCoalesced counts pending events superseded (last-event-wins
	// topics) or deduplicated (identical tail) before delivery.
	EventsCoalesced uint64
	// QueueDropsOldest counts DropOldest evictions of stale pending
	// events; QueueDropsNewest counts events a full Queue-policy queue
	// rejected; QueueDropsClosed counts pending events discarded when a
	// subscription closed. Block-policy queues never drop.
	QueueDropsOldest, QueueDropsNewest, QueueDropsClosed uint64
}

// MeshStats describes a server's place in a federated mesh (mesh.go).
type MeshStats struct {
	// Enabled reports whether the server has joined a mesh; Self is its
	// member name there.
	Enabled bool
	Self    string
	// Peers is the directory's member count (including this server);
	// PeersUp the members currently believed reachable.
	Peers, PeersUp uint64
	// RoutedNamed counts named-object lookups resolved through the
	// directory to an owning peer; PeerDownFailures counts operations
	// failed fast with ErrPeerDown because the owner was unreachable.
	RoutedNamed, PeerDownFailures uint64
}

// ResilienceStats counts session-resurrection events. The same struct
// appears on both sides of a hop: a client (or a middle tier's upstream
// link) counts reconnects and replays; the server it reconnects to counts
// resumes and duplicate drops.
type ResilienceStats struct {
	// Reconnects counts successful session resumes: on a server, its own
	// sessions resurrected plus upstream links it re-established; on a
	// client, links it re-established.
	Reconnects uint64
	// ReplayedCalls counts batched asynchronous calls retransmitted after
	// a resume because the peer never acknowledged them.
	ReplayedCalls uint64
	// DedupDrops counts replayed call frames discarded by the receive
	// window because they had already executed — the visible half of the
	// at-most-once guarantee.
	DedupDrops uint64
	// RetransmitDrops counts unacknowledged batches evicted from the
	// bounded replay buffer. Nonzero means a later resume may find a hole
	// in its replay range and fail with ErrReplayGap instead of silently
	// losing those calls.
	RetransmitDrops uint64
	// BreakerOpens counts times an upstream circuit breaker tripped open
	// (WithUpstreamBreaker).
	BreakerOpens uint64
}

// foldLink accumulates one link's resurrection counters — and its circuit
// breaker's trips, if one is armed — into r. The client's own link, a
// server's session links and every peer link (chain or mesh) all aggregate
// through this one helper, so the folding rules cannot drift apart per
// link kind.
func (r *ResilienceStats) foldLink(lc *linkCounters, br *breaker) {
	r.Reconnects += lc.reconnects.Load()
	r.ReplayedCalls += lc.replayed.Load()
	r.DedupDrops += lc.dedups.Load()
	r.RetransmitDrops += lc.rtDrops.Load()
	if br != nil {
		r.BreakerOpens += br.opens.Load()
	}
}

// DispatchStats describes the server's dispatch engine. Under the serial
// ablation it reports {Workers: 1, PerObject: false} and zeros.
type DispatchStats struct {
	// Workers is the configured bound on simultaneously running handlers.
	Workers int
	// PerObject reports whether the per-object executor is active.
	PerObject bool
	// Parallelism is the high-water mark of handlers running at once.
	Parallelism uint64
	// QueueDepth is the number of queued-or-running messages right now.
	QueueDepth uint64
	// WorkerStalls counts handler blocks (distributed upcalls, forwarded
	// calls, relayed Syncs) that released a worker slot mid-message.
	WorkerStalls uint64
}

// ForwardingStats counts multi-hop traffic through a middle-tier server.
type ForwardingStats struct {
	// CallsRelayedDown counts calls on proxy handles forwarded to an
	// upstream server.
	CallsRelayedDown uint64
	// UpcallsRelayedUp counts upcalls from an upstream server relayed on
	// toward this server's own clients.
	UpcallsRelayedUp uint64
	// ProxyHandlesLive is the number of handle-table entries currently
	// naming remote (upstream) objects rather than local instances.
	ProxyHandlesLive uint64
}

// TopCalls returns the busiest methods, most-called first, at most n.
func (s MetricsSnapshot) TopCalls(n int) []string {
	type kv struct {
		k string
		v uint64
	}
	all := make([]kv, 0, len(s.Calls))
	for k, v := range s.Calls {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].k
	}
	return out
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	m := s.metrics
	calls := make(map[string]uint64)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			calls[k.class+"."+k.method] = v
		}
		sh.mu.Unlock()
	}
	snap := MetricsSnapshot{
		Calls:            calls,
		SyncCalls:        m.syncCalls.Load(),
		AsyncCalls:       m.asyncCalls.Load(),
		Batches:          m.batches.Load(),
		Upcalls:          m.upcalls.Load(),
		UpcallFailures:   m.upcallFails.Load(),
		UpcallTimeouts:   m.upcallTimeouts.Load(),
		Faults:           m.faults.Load(),
		FaultReports:     m.faultReports.Load(),
		Loads:            m.loads.Load(),
		Evictions:        m.evictions.Load(),
		RejectedSessions: m.rejectedSess.Load(),
		LinkStats:        m.link.snapshot(),
		Forwarding: ForwardingStats{
			CallsRelayedDown: m.callsRelayed.Load(),
			UpcallsRelayedUp: m.upcallsRelayed.Load(),
		},
		Dispatch:   s.exec.stats(),
		Resilience: ResilienceStats{Reconnects: m.resumes.Load()},
		Fanout: FanoutStats{
			EventsPublished:  m.fanPublished.Load(),
			EventsRelayed:    m.fanRelayed.Load(),
			EventsDelivered:  m.fanDelivered.Load(),
			DeliveryFailures: m.fanDeliveryFails.Load(),
			EventsCoalesced:  m.fanCoalesced.Load(),
			QueueDropsOldest: m.fanDropsOldest.Load(),
			QueueDropsNewest: m.fanDropsNewest.Load(),
			QueueDropsClosed: m.fanDropsClosed.Load(),
		},
	}
	// Fold in the session engine's shared counters (replays/dedups on the
	// server's own links; its reconnects are the resumes counted above)
	// and every peer link — chain upstreams and mesh peers alike:
	// reconnects/replays their resurrect loops performed toward the peer,
	// and breaker trips.
	snap.Resilience.foldLink(&m.link, nil)
	snap.Overload = OverloadStats{
		SheddingEnabled:     s.shedExpired(),
		BudgetedCalls:       m.budgetedCalls.Load(),
		ShedExpired:         m.shedExpired.Load(),
		ShedCancelled:       m.shedCancelled.Load(),
		ShedAdmission:       m.shedAdmission.Load(),
		CancelsReceived:     m.cancelsRecv.Load(),
		HandlerCancels:      m.handlerCancels.Load(),
		QueueDelayEWMANanos: uint64(m.queueDelay.Load()),
	}
	s.mu.Lock()
	links := make([]*peerLink, len(s.peers))
	copy(links, s.peers)
	s.mu.Unlock()
	for _, pl := range links {
		snap.Resilience.foldLink(pl.c.link, pl.br)
		snap.Overload.CancelsPropagated += pl.c.link.cancels.Load()
	}
	if ms := s.meshSnapshot(); ms != nil {
		snap.Mesh = *ms
	}
	if s.journal != nil {
		js := s.journal.Stats()
		snap.Journal = JournalStats{
			Enabled:           true,
			Appends:           js.Appends,
			SyncAppends:       js.SyncAppends,
			Fsyncs:            js.Fsyncs,
			Compactions:       js.Compactions,
			SizeBytes:         js.SizeBytes,
			RecoveredSessions: s.recov.sessions.Load(),
			RecoveredHandles:  s.recov.handles.Load(),
			RecoveredSubs:     s.recov.subs.Load(),
			TornTailTruncated: s.recov.torn.Load(),
		}
	}
	shmStats := shm.Snapshot()
	vecFlushes, vecFrames := wire.VecStats()
	snap.Transport = TransportStats{
		ShmEnabled:      s.shmEnabled,
		ShmSessions:     m.shmConns.Load(),
		SocketFallbacks: m.shmFallbacks.Load(),
		DoorbellWakeups: shmStats.DoorbellWakeups,
		DoorbellSleeps:  shmStats.DoorbellSleeps,
		RingHighWater:   shmStats.RingHighWater,
		WritevFlushes:   vecFlushes,
		WritevFrames:    vecFrames,
	}
	if s.fan != nil {
		snap.Fanout.SubscribersLive = uint64(s.fan.subs.Len())
		snap.Fanout.Topics = uint64(s.fan.topicCount())
		snap.Fanout.Shards = uint64(s.fan.subs.ShardCount())
	}
	if s.handles != nil {
		snap.Forwarding.ProxyHandlesLive = uint64(s.handles.CountFunc(func(obj any) bool {
			_, isProxy := obj.(*Remote)
			return isProxy
		}))
	}
	return snap
}
