package core

import (
	"strings"
	"testing"
	"testing/quick"

	"clam/internal/handle"
	"clam/internal/xdr"
)

func TestHelloBodyRoundTrip(t *testing.T) {
	want := helloBody{Role: roleUpcall, Session: 77}
	var buf bytesBuf
	h := want
	if err := h.bundle(xdr.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var got helloBody
	if err := got.bundle(xdr.NewDecoder(byteReader(buf.b))); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestHelloReplyBodyRoundTrip(t *testing.T) {
	want := helloReplyBody{Session: 123456}
	var buf bytesBuf
	h := want
	if err := h.bundle(xdr.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var got helloReplyBody
	if err := got.bundle(xdr.NewDecoder(byteReader(buf.b))); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v", got)
	}
}

func TestLoadBodyRoundTrip(t *testing.T) {
	f := func(op uint32, name string, v uint32) bool {
		want := loadBody{Op: op, Name: name, MinVersion: v}
		var buf bytesBuf
		b := want
		if b.bundle(xdr.NewEncoder(&buf)) != nil {
			return false
		}
		var got loadBody
		return got.bundle(xdr.NewDecoder(byteReader(buf.b))) == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLoadReplyBodyRoundTrip(t *testing.T) {
	cases := []loadReplyBody{
		{OK: true, ClassID: 3, Version: 2, Obj: handle.Handle{ID: 9, Tag: 0xfeed}},
		{OK: false, ErrMsg: "no such class"},
	}
	for _, want := range cases {
		var buf bytesBuf
		b := want
		if err := b.bundle(xdr.NewEncoder(&buf)); err != nil {
			t.Fatal(err)
		}
		var got loadReplyBody
		if err := got.bundle(xdr.NewDecoder(byteReader(buf.b))); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("got %+v want %+v", got, want)
		}
	}
}

func TestFaultReportRoundTripAndString(t *testing.T) {
	want := FaultReport{Class: "sweep", Method: "Mouse", Msg: "nil deref"}
	var buf bytesBuf
	r := want
	if err := r.bundle(xdr.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var got FaultReport
	if err := got.bundle(xdr.NewDecoder(byteReader(buf.b))); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v", got)
	}
	if !strings.Contains(want.String(), "sweep.Mouse") {
		t.Errorf("String() = %q", want.String())
	}
}

func TestByteReaderExhaustion(t *testing.T) {
	r := byteReader([]byte{1, 2})
	p := make([]byte, 4)
	n, err := r.Read(p)
	if n != 2 || err != nil {
		t.Fatalf("first read: %d, %v", n, err)
	}
	if _, err := r.Read(p); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestBytesBufAppends(t *testing.T) {
	var b bytesBuf
	b.Write([]byte("ab"))
	b.Write([]byte("cd"))
	if string(b.b) != "abcd" {
		t.Errorf("buf = %q", b.b)
	}
}
