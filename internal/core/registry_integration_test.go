package core

import (
	"reflect"
	"testing"

	"clam/internal/dynload"
	"clam/internal/upcall"
)

// hub is a class built on the generic upcall.Registry instead of typed
// func slices — proving the registry's reflect-based dispatch treats RUC
// proxies exactly like local procedures ("the lower level object cannot
// distinguish between registration requests from local objects and those
// from remote objects", §4.1).
type hub struct {
	reg *upcall.Registry
}

func newHub() *hub {
	return &hub{reg: upcall.NewRegistry(upcall.WithPolicy(upcall.Queue))}
}

// Subscribe registers a procedure for the named event.
func (h *hub) Subscribe(event string, fn func(int64) int64) error {
	_, err := h.reg.Register(event, fn)
	return err
}

// Publish posts the event and returns how many receivers took it.
func (h *hub) Publish(event string, x int64) (int64, error) {
	n, err := h.reg.Post(event, x)
	return int64(n), err
}

// Queued reports queued (unclaimed) events.
func (h *hub) Queued(event string) int64 {
	return int64(h.reg.Queued(event))
}

// Replay re-posts queued events to the now-registered receivers.
func (h *hub) Replay(event string) (int64, error) {
	n, err := h.reg.Replay(event)
	return int64(n), err
}

func hubServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	if err := srv.lib.Register(dynload.Class{
		Name: "hub", Version: 1, Type: reflect.TypeOf(&hub{}),
		New: func(any) (any, error) { return newHub(), nil },
	}); err != nil {
		t.Fatal(err)
	}
	sock := t.TempDir() + "/hub.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sock
}

func TestUpcallRegistryWithRemoteProcedures(t *testing.T) {
	_, sock := hubServer(t)
	c := dialClient(t, sock)
	h, err := c.New("hub", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 8)
	if err := h.Call("Subscribe", "tick", func(x int64) int64 {
		got <- x
		return x
	}); err != nil {
		t.Fatal(err)
	}
	var delivered int64
	if err := h.CallInto("Publish", []any{&delivered}, "tick", int64(5)); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
	if x := <-got; x != 5 {
		t.Errorf("handler saw %d", x)
	}
}

func TestUpcallRegistryQueuesForLateSubscribers(t *testing.T) {
	_, sock := hubServer(t)
	c := dialClient(t, sock)
	h, err := c.New("hub", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Publish before anyone subscribes: queued per the registry policy.
	var delivered int64
	if err := h.CallInto("Publish", []any{&delivered}, "boot", int64(1)); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("delivered = %d before any subscriber", delivered)
	}
	var queued int64
	if err := h.CallInto("Queued", []any{&queued}, "boot"); err != nil {
		t.Fatal(err)
	}
	if queued != 1 {
		t.Fatalf("queued = %d", queued)
	}
	// Subscribe from the client, replay the queue: the queued event
	// crosses as a distributed upcall.
	got := make(chan int64, 1)
	if err := h.Call("Subscribe", "boot", func(x int64) int64 {
		got <- x
		return x
	}); err != nil {
		t.Fatal(err)
	}
	var replayed int64
	if err := h.CallInto("Replay", []any{&replayed}, "boot"); err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Errorf("replayed = %d", replayed)
	}
	if x := <-got; x != 1 {
		t.Errorf("late subscriber saw %d", x)
	}
}

func TestLoadClassExactClientAPI(t *testing.T) {
	lib := testLibrary(t)
	// Two versions of a class with distinct instance types.
	type v2counter struct{ counter }
	if err := lib.Register(dynload.Class{
		Name: "counter", Version: 2, Type: reflect.TypeOf(&v2counter{}),
		New: func(any) (any, error) { return &v2counter{}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lib, WithServerLog(func(string, ...any) {}))
	sock := t.TempDir() + "/exact.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialClient(t, sock)

	id1, err := c.LoadClassExact("counter", 1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.LoadClassExact("counter", 2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("exact loads of different versions share a class id")
	}
	if _, err := c.LoadClassExact("counter", 9); err == nil {
		t.Error("loading a nonexistent exact version succeeded")
	}
	// Plain LoadClass picks the newest.
	_, v, err := c.LoadClass("counter", 0)
	if err != nil || v != 2 {
		t.Errorf("LoadClass picked v%d, err=%v", v, err)
	}
}
