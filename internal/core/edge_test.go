package core

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam/internal/dynload"
	"clam/internal/rpc"
	"clam/internal/wire"
)

// failer is a class whose upcalls let the client report errors back.
type failer struct {
	mu sync.Mutex
	fn func(int32) (int32, error)
}

func (f *failer) Register(fn func(int32) (int32, error)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fn = fn
}

func (f *failer) Trigger(x int32) (int32, error) {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	if fn == nil {
		return 0, errors.New("no registration")
	}
	return fn(x)
}

// slowpoke blocks its upcall handler long enough to trip the timeout.
// Its procedure type carries an error result so the proxy can surface the
// timeout.
type slowpoke struct {
	mu sync.Mutex
	fn func(int32) (int32, error)
}

func (s *slowpoke) Register(fn func(int32) (int32, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fn = fn
}

func (s *slowpoke) Trigger(x int32) (int32, error) {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	if fn == nil {
		return 0, errors.New("no registration")
	}
	return fn(x)
}

func registerEdgeClasses(t *testing.T, srv *Server) {
	t.Helper()
	if err := srv.lib.Register(dynload.Class{
		Name: "failer", Version: 1, Type: reflect.TypeOf(&failer{}),
		New: func(any) (any, error) { return &failer{}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.lib.Register(dynload.Class{
		Name: "slowpoke", Version: 1, Type: reflect.TypeOf(&slowpoke{}),
		New: func(any) (any, error) { return &slowpoke{}, nil },
	}); err != nil {
		t.Fatal(err)
	}
}

// TestUpcallHandlerErrorPropagates: a client handler returning an error
// surfaces in the server-side proxy's error result and travels back to
// the caller.
func TestUpcallHandlerErrorPropagates(t *testing.T) {
	srv2 := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	registerEdgeClasses(t, srv2)
	sock := t.TempDir() + "/edge.sock"
	if _, err := srv2.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	c := dialClient(t, sock)
	f, err := c.New("failer", 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("handler rejects")
	if err := f.Call("Register", func(x int32) (int32, error) {
		if x < 0 {
			return 0, boom
		}
		return x * 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	var out int32
	if err := f.CallInto("Trigger", []any{&out}, int32(4)); err != nil || out != 8 {
		t.Fatalf("happy path: out=%d err=%v", out, err)
	}
	err = f.CallInto("Trigger", []any{&out}, int32(-1))
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(re.Msg, "handler rejects") {
		t.Errorf("handler error text lost: %q", re.Msg)
	}
}

// TestUpcallTimeout: a handler that never returns trips the server's
// upcall timeout instead of wedging the server task forever.
func TestUpcallTimeout(t *testing.T) {
	srv := NewServer(testLibrary(t),
		WithServerLog(func(string, ...any) {}),
		WithUpcallTimeout(300*time.Millisecond))
	registerEdgeClasses(t, srv)
	sock := t.TempDir() + "/edge.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Client logs are discarded: the stalled handler's late reply hits a
	// closing connection by design.
	c, err := Dial("unix", sock, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.New("slowpoke", 0)
	if err != nil {
		t.Fatal(err)
	}
	stall := make(chan struct{})
	t.Cleanup(func() {
		close(stall)
		time.Sleep(20 * time.Millisecond) // let the late reply drain
		c.Close()
	})
	if err := s.Call("Register", func(x int32) (int32, error) {
		<-stall // never in time
		return x, nil
	}); err != nil {
		t.Fatal(err)
	}
	var out int32
	start := time.Now()
	err = s.CallInto("Trigger", []any{&out}, int32(1))
	if err == nil {
		t.Fatal("timed-out upcall reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The server survived; an ordinary call still works.
	cnt, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cnt.Call("Add", int64(1)); err != nil {
		t.Errorf("server wedged after upcall timeout: %v", err)
	}
}

// TestConcurrentUpcallsSerialized: §4.4 allows one active upcall per
// client; concurrent triggers must serialize, not deadlock.
func TestConcurrentUpcallsSerialized(t *testing.T) {
	srv, path := startServer(t)
	obj, _, err := srv.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("notifier", obj)
	c := dialClient(t, path)
	n, err := c.NamedObject("notifier")
	if err != nil {
		t.Fatal(err)
	}
	var inHandler atomic.Int32
	var overlap atomic.Int32
	if err := n.Call("Register", func(x int32, s string) int32 {
		if inHandler.Add(1) > 1 {
			overlap.Add(1)
		}
		time.Sleep(2 * time.Millisecond)
		inHandler.Add(-1)
		return x
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum int32
			if err := n.CallInto("Trigger", []any{&sum}, int32(1), "x"); err != nil {
				t.Errorf("trigger: %v", err)
			}
		}()
	}
	wg.Wait()
	if overlap.Load() != 0 {
		t.Errorf("%d overlapping upcalls; want serialization", overlap.Load())
	}
}

// TestSimLinkClient: the full protocol works through the simulated WAN
// link used for Figure 5.1 rows h and i.
func TestSimLinkClient(t *testing.T) {
	_, addr := tcpServer(t)
	c, err := Dial("tcp", addr, WithDialFunc(func(network, a string) (net.Conn, error) {
		conn, err := net.Dial(network, a)
		if err != nil {
			return nil, err
		}
		return wire.NewSimLink(conn, 2*time.Millisecond, 0), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("call completed in %v, faster than the link latency", elapsed)
	}
	// Upcalls also traverse the delayed link.
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Call("Register", func(x int32, s string) int32 { return x }); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(3), "wan"); err != nil || sum != 3 {
		t.Errorf("sum=%d err=%v", sum, err)
	}
}

// TestSessionStatsCounts: the batching experiment's measurement hook
// reflects actual message counts.
func TestSessionStatsCounts(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	s0, r0 := c.SessionStats()
	for i := 0; i < 10; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	s1, r1 := c.SessionStats()
	// 10 batched asyncs + sync = 2 frames out (1 call batch + 1 sync),
	// 1 frame back.
	if s1-s0 != 2 || r1-r0 != 1 {
		t.Errorf("batched: sent %d recv %d, want 2/1", s1-s0, r1-r0)
	}
}

// TestFlushEmptyBatch: Flush and Sync on an empty batch are cheap no-ops
// that still synchronize.
func TestFlushEmptyBatch(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxBatchAutoFlush: exceeding the batch threshold ships
// automatically.
func TestMaxBatchAutoFlush(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path, WithMaxBatch(4))
	obj, _ := c.New("counter", 0)
	for i := 0; i < 9; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Two full batches of 4 have already shipped; sync the ninth.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil || total != 9 {
		t.Errorf("total=%d err=%v", total, err)
	}
}

// TestDialUnreachable: connection failures surface as errors, not hangs.
func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("unix", t.TempDir()+"/nope.sock"); err == nil {
		t.Error("dial to nowhere succeeded")
	}
}

// TestServerCloseUnblocksClients: closing the server fails outstanding
// client calls promptly.
func TestServerCloseUnblocksClients(t *testing.T) {
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	registerEdgeClasses(t, srv)
	sock := t.TempDir() + "/edge.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	c, err := Dial("unix", sock, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.New("slowpoke", 0)
	if err != nil {
		t.Fatal(err)
	}
	stall := make(chan struct{})
	defer close(stall)
	if err := s.Call("Register", func(x int32) (int32, error) { <-stall; return x, nil }); err != nil {
		t.Fatal(err)
	}
	callErr := make(chan error, 1)
	go func() {
		var out int32
		callErr <- s.CallInto("Trigger", []any{&out}, int32(1))
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-callErr:
		if err == nil {
			t.Error("call succeeded past server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client call not unblocked by server close")
	}
}
