// Upcall fan-out: one lower-layer event, many registered observers.
//
// The paper's RUC mechanism is strictly point-to-point — each RUC object
// holds ONE client procedure pointer (§3.5.2) — yet its motivating
// example, a window system pushing events to interested parties, is
// naturally one-to-many. This file adds the broadcast path on top of the
// same machinery: a topic is a multicast-capable procedure declared with
// Server.RegisterMulticast, subscribers register ordinary procedure
// pointers against it (through the built-in "fanout" class, so the wire
// protocol is untouched), and Server.Publish fans one event out to every
// live subscription.
//
// Registrations live in a sharded table (internal/ruc.Sharded) keyed by
// the subscriber's handle tag, so register/unregister churn stays O(1)
// and never serializes against delivery. Each subscription owns a
// bounded event queue drained by an on-demand goroutine; deliveries ride
// the per-session upcall channel, so the §4.4 one-upcall-per-client gate
// and the slow-consumer eviction machinery apply unchanged. Queues reuse
// the upcall package's overload policies (DropOldest, Block, Queue) and
// coalesce redundant pending events per subscriber.
//
// Across peer servers, fan-out multiplies in the tree rather than
// relaying N copies through one hop: this server subscribes ONCE per
// peer-link topic and republishes each received event to its own
// subscribers (linkTopicPeer), the HAM insight that message-path cost,
// not marshaling, dominates at scale. Chain links re-relay upward
// indefinitely (a 3-level chain forwards twice); mesh links mark their
// subscriptions as relays, and an event that arrived FROM a mesh peer is
// never republished over relay subscriptions — each event crosses each
// mesh edge exactly once, so a full mesh cannot loop.
package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"clam/internal/dynload"
	"clam/internal/ruc"
	"clam/internal/upcall"
)

// fanoutState is the server's multicast registry: declared topics plus
// the sharded subscription table.
type fanoutState struct {
	srv  *Server
	subs *ruc.Sharded

	mu     sync.Mutex
	topics map[string]*fanoutTopic
	closed bool
}

func newFanoutState(srv *Server, shards int) *fanoutState {
	return &fanoutState{
		srv:    srv,
		subs:   ruc.NewSharded(shards),
		topics: make(map[string]*fanoutTopic),
	}
}

// fanoutTopic is one declared multicast procedure.
type fanoutTopic struct {
	name     string
	ft       reflect.Type
	coalesce bool
	policy   upcall.Policy
	maxQueue int

	mu     sync.Mutex
	linked map[*peerLink]uint64 // peer link → its remote subscription id
}

// fanEvent is one published occurrence: the raw arguments for coalescing
// comparison and the converted values ready for delivery.
type fanEvent struct {
	raw  []any
	args []reflect.Value
}

// fanSub is the per-subscription delivery state: a bounded pending-event
// queue plus the drain flag that guarantees at most one delivery
// goroutine (and hence per-subscriber FIFO order).
type fanSub struct {
	top *fanoutTopic
	sub *ruc.Sub

	mu       sync.Mutex
	cond     *sync.Cond // signals Block-policy publishers when space frees
	queue    []fanEvent
	draining bool
	closed   bool
}

// MulticastOption configures a topic declared with RegisterMulticast.
type MulticastOption func(*fanoutTopic)

// WithCoalesce makes the topic last-event-wins: a newly published event
// replaces a subscriber's pending (not yet delivered) tail event instead
// of queueing behind it. Right for state-valued events — window damage
// regions, latest sensor reading — where a stale intermediate value is
// worthless once a newer one exists.
func WithCoalesce() MulticastOption {
	return func(t *fanoutTopic) { t.coalesce = true }
}

// WithFanoutQueue bounds each subscriber's pending-event queue (default
// upcall.DefaultMaxQueue). Values < 1 are treated as 1.
func WithFanoutQueue(n int) MulticastOption {
	return func(t *fanoutTopic) {
		if n < 1 {
			n = 1
		}
		t.maxQueue = n
	}
}

// WithFanoutPolicy selects what happens when a subscriber's queue is
// full: upcall.DropOldest (the default) evicts the stalest pending
// event, upcall.Block makes Publish wait for the slow subscriber —
// backpressure instead of loss — and upcall.Queue rejects the new event
// for that subscriber. upcall.Discard is not meaningful here (an
// unsubscribed topic simply has no queue) and selects DropOldest.
func WithFanoutPolicy(p upcall.Policy) MulticastOption {
	return func(t *fanoutTopic) {
		switch p {
		case upcall.Block, upcall.Queue:
			t.policy = p
		default:
			t.policy = upcall.DropOldest
		}
	}
}

// RegisterMulticast declares topic as a multicast procedure: prototype's
// func type defines the event's parameters (results are ignored), the
// run-time analogue of §4.1's typechecked registration parameters.
// Clients subscribe with Client.Subscribe, server-local code with
// SubscribeFunc, and Publish fans events out to all of them.
//
// If this server has attached upstream (lower) servers that declare the
// same topic, it also subscribes once per upstream, republishing each
// received event locally — the fan-out tree. Declare topics on the lower
// tier before the middle tier for the link to form at registration time;
// upstreams attached later are linked automatically.
func (s *Server) RegisterMulticast(topic string, prototype any, opts ...MulticastOption) error {
	ft := reflect.TypeOf(prototype)
	if ft == nil || ft.Kind() != reflect.Func {
		return fmt.Errorf("clam: multicast prototype for %q must be a func, got %T", topic, prototype)
	}
	if ft.IsVariadic() {
		return fmt.Errorf("clam: variadic multicast prototype %s not supported", ft)
	}
	t := &fanoutTopic{
		name:     topic,
		ft:       ft,
		policy:   upcall.DropOldest,
		maxQueue: upcall.DefaultMaxQueue,
		linked:   make(map[*peerLink]uint64),
	}
	for _, o := range opts {
		o(t)
	}
	f := s.fan
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("clam: server closed")
	}
	if _, dup := f.topics[topic]; dup {
		f.mu.Unlock()
		return fmt.Errorf("clam: multicast topic %q already registered", topic)
	}
	f.topics[topic] = t
	f.mu.Unlock()

	for _, pl := range s.snapshotLinks() {
		f.linkTopicPeer(t, pl)
	}
	return nil
}

// Publish fans one event out to every live subscription of topic and
// reports how many subscribers it was queued (or coalesced) for. Args
// are checked against the topic's prototype exactly as upcall.Post
// checks a handler's parameters.
//
// Publish enqueues; deliveries proceed asynchronously over each
// subscriber's upcall channel, FIFO per subscriber, unordered across
// subscribers. Under upcall.Block it waits for slow subscribers with
// full queues (releasing its executor slot like any blocking handler);
// under the other policies it never blocks on a subscriber.
func (s *Server) Publish(topic string, args ...any) (int, error) {
	t := s.fan.topic(topic)
	if t == nil {
		return 0, fmt.Errorf("clam: publish to unregistered topic %q", topic)
	}
	vals, err := upcall.ConvertArgs(t.ft, args)
	if err != nil {
		return 0, err
	}
	return s.fan.publish(t, args, vals), nil
}

// SubscribeFunc registers a server-local func as a subscriber of topic —
// the lower level object "cannot distinguish between registration
// requests from local objects and those from remote objects" (§4.1).
// The returned id cancels the subscription via UnsubscribeFunc.
func (s *Server) SubscribeFunc(topic string, fn any) (uint64, error) {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.Kind() != reflect.Func || v.IsNil() {
		return 0, fmt.Errorf("clam: subscriber is not a func: %T", fn)
	}
	t := s.fan.topic(topic)
	if t == nil {
		return 0, fmt.Errorf("clam: subscribe to unregistered topic %q", topic)
	}
	vt := v.Type()
	if vt.NumIn() != t.ft.NumIn() || vt.IsVariadic() {
		return 0, fmt.Errorf("clam: subscriber %s does not match topic prototype %s", vt, t.ft)
	}
	for i := 0; i < vt.NumIn(); i++ {
		if !t.ft.In(i).AssignableTo(vt.In(i)) {
			return 0, fmt.Errorf("clam: subscriber %s does not match topic prototype %s", vt, t.ft)
		}
	}
	return s.fan.subscribe(topic, 0, 0, &localCaller{fn: v}, false)
}

// UnsubscribeFunc cancels a SubscribeFunc subscription, reporting whether
// it existed. Pending undelivered events are discarded (counted as
// QueueDropsClosed).
func (s *Server) UnsubscribeFunc(topic string, id uint64) bool {
	_, ok := s.fan.unsubscribe(topic, id, id)
	return ok
}

// localCaller delivers fan-out events to a server-local subscriber by
// direct call, the degenerate single-address-space case of ruc.Caller.
type localCaller struct{ fn reflect.Value }

func (l *localCaller) Upcall(procID uint64, ft reflect.Type, args []reflect.Value) (rets []reflect.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("clam: local subscriber panicked: %v", r)
		}
	}()
	out := l.fn.Call(args)
	if n := len(out); n > 0 {
		if e, ok := out[n-1].Interface().(error); ok && e != nil {
			return nil, e
		}
	}
	return out, nil
}

func (f *fanoutState) topic(name string) *fanoutTopic {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.topics[name]
}

func (f *fanoutState) topicCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.topics)
}

// subscribe creates the subscription and its delivery state. key selects
// the shard (0 lets the table substitute the subscription id). relay
// marks the subscription as a peer's tree-relay tap (see publishVia).
func (f *fanoutState) subscribe(topic string, key, procID uint64, caller ruc.Caller, relay bool) (uint64, error) {
	t := f.topic(topic)
	if t == nil {
		return 0, fmt.Errorf("clam: subscribe to unregistered topic %q", topic)
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return 0, errors.New("clam: server closed")
	}
	sub := &ruc.Sub{Key: key, Topic: topic, ProcID: procID, FuncType: t.ft, Caller: caller, Relay: relay}
	fs := &fanSub{top: t, sub: sub}
	fs.cond = sync.NewCond(&fs.mu)
	sub.State = fs
	return f.subs.Add(sub), nil
}

// unsubscribe removes subscription (topic, id) under shard key, retiring
// its queue, and returns the client procedure id it delivered to.
func (f *fanoutState) unsubscribe(topic string, key, id uint64) (uint64, bool) {
	sub := f.subs.Remove(topic, key, id)
	if sub == nil {
		return 0, false
	}
	if fs, ok := sub.State.(*fanSub); ok {
		fs.close(f)
	}
	return sub.ProcID, true
}

// publish fans ev out to the topic's current subscribers, returning how
// many accepted it (queued or coalesced).
func (f *fanoutState) publish(t *fanoutTopic, raw []any, args []reflect.Value) int {
	return f.publishVia(t, raw, args, false)
}

// publishVia is publish with provenance: fromMesh marks an event that
// arrived over a mesh peer link. Such an event is delivered to every
// local subscriber but NOT to relay-marked subscriptions — the taps mesh
// peers hold here — because each mesh peer received its own copy directly
// from the origin. Without the skip, a full mesh republishes forever
// (A→B, B's relay→A, A's relay→B, …). Chain relays are unmarked, so an
// event still climbs a vertical chain hop by hop.
func (f *fanoutState) publishVia(t *fanoutTopic, raw []any, args []reflect.Value, fromMesh bool) int {
	f.srv.metrics.fanPublished.Add(1)
	if t.policy == upcall.Block {
		// A Block-policy publisher may wait on a full subscriber queue;
		// release the executor slot like any other blocking handler.
		xit := f.srv.exec.yieldCurrent()
		defer f.srv.exec.resume(xit)
	}
	ev := fanEvent{raw: raw, args: args}
	n := 0
	for _, sub := range f.subs.Snapshot(t.name) {
		if fromMesh && sub.Relay {
			continue
		}
		fs, ok := sub.State.(*fanSub)
		if ok && fs.enqueue(f, ev) {
			n++
		}
	}
	return n
}

// enqueue places ev on the subscriber's queue per the topic's coalescing
// rule and overload policy, reporting whether the subscriber will (still)
// observe it.
func (fs *fanSub) enqueue(f *fanoutState, ev fanEvent) bool {
	t := fs.top
	fs.mu.Lock()
	for {
		if fs.closed {
			fs.mu.Unlock()
			return false
		}
		if n := len(fs.queue); n > 0 {
			tail := &fs.queue[n-1]
			if t.coalesce {
				// Last-event-wins: the pending tail is superseded before
				// anyone saw it.
				*tail = ev
				f.srv.metrics.fanCoalesced.Add(1)
				fs.mu.Unlock()
				return true
			}
			if reflect.DeepEqual(tail.raw, ev.raw) {
				// Identical pending event: delivering both tells the
				// subscriber nothing new.
				f.srv.metrics.fanCoalesced.Add(1)
				fs.mu.Unlock()
				return true
			}
		}
		if len(fs.queue) < t.maxQueue {
			break
		}
		switch t.policy {
		case upcall.Block:
			fs.cond.Wait()
		case upcall.Queue:
			f.srv.metrics.fanDropsNewest.Add(1)
			fs.mu.Unlock()
			return false
		default: // DropOldest
			fs.queue = append(fs.queue[:0], fs.queue[1:]...)
			f.srv.metrics.fanDropsOldest.Add(1)
		}
	}
	fs.queue = append(fs.queue, ev)
	if !fs.draining {
		fs.draining = true
		go fs.drain(f)
	}
	fs.mu.Unlock()
	return true
}

// drain delivers the subscriber's queue in order, one upcall at a time —
// the single drain goroutine per subscription is what makes delivery
// FIFO per subscriber. It stands down (leaving the queue intact) when
// the subscriber's session is parked awaiting resurrection, and exits
// when the queue empties or the subscription closes.
func (fs *fanSub) drain(f *fanoutState) {
	for {
		fs.mu.Lock()
		if fs.closed || len(fs.queue) == 0 {
			fs.draining = false
			fs.mu.Unlock()
			return
		}
		if down, ok := fs.sub.Caller.(interface{ linkIsDown() bool }); ok && down.linkIsDown() {
			// Parked session (PR 5 resurrection): hold the queue rather
			// than burn it against a dead link. resumeCaller restarts the
			// drain when the session returns.
			fs.draining = false
			fs.mu.Unlock()
			return
		}
		ev := fs.queue[0]
		copy(fs.queue, fs.queue[1:])
		fs.queue = fs.queue[:len(fs.queue)-1]
		fs.cond.Broadcast() // a Block-policy publisher may enqueue now
		fs.mu.Unlock()

		if _, err := fs.sub.Caller.Upcall(fs.sub.ProcID, fs.sub.FuncType, ev.args); err != nil {
			// At-most-once: a failed delivery is not retried, so a
			// resurrected subscriber never sees duplicates.
			f.srv.metrics.fanDeliveryFails.Add(1)
		} else {
			f.srv.metrics.fanDelivered.Add(1)
		}
	}
}

// kick restarts the drain if events are pending and no drainer runs —
// the resume-side half of the parked-session handshake.
func (fs *fanSub) kick(f *fanoutState) {
	fs.mu.Lock()
	if !fs.closed && !fs.draining && len(fs.queue) > 0 {
		fs.draining = true
		go fs.drain(f)
	}
	fs.mu.Unlock()
}

// close retires the subscription's delivery state, discarding pending
// events and releasing any Block-policy publishers waiting on it.
func (fs *fanSub) close(f *fanoutState) {
	fs.mu.Lock()
	if !fs.closed {
		fs.closed = true
		if n := len(fs.queue); n > 0 {
			f.srv.metrics.fanDropsClosed.Add(uint64(n))
		}
		fs.queue = nil
		fs.cond.Broadcast()
	}
	fs.mu.Unlock()
}

// dropCaller retires every subscription delivered over sess — the
// subscriber departed for good (evicted, or closed without a resume
// window). Parked sessions are NOT dropped; their subscriptions survive
// resurrection exactly like their RUC registrations.
func (f *fanoutState) dropCaller(c ruc.Caller) {
	if f == nil {
		return
	}
	for _, sub := range f.subs.DropCaller(c) {
		if fs, ok := sub.State.(*fanSub); ok {
			fs.close(f)
		}
	}
}

// resumeCaller restarts parked drains after a session resurrects.
func (f *fanoutState) resumeCaller(c ruc.Caller) {
	if f == nil {
		return
	}
	for _, sub := range f.subs.ByCaller(c) {
		if fs, ok := sub.State.(*fanSub); ok {
			fs.kick(f)
		}
	}
}

// close shuts fan-out down with the server: no new topics or
// subscriptions, all queues retired, Block-policy publishers released.
func (f *fanoutState) close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	for _, topic := range f.subs.Topics() {
		for _, sub := range f.subs.Snapshot(topic) {
			if fs, ok := sub.State.(*fanSub); ok {
				fs.close(f)
			}
		}
	}
}

// linkNewPeer links every declared topic to a freshly attached peer link
// (the attachLink half of tree formation).
func (f *fanoutState) linkNewPeer(pl *peerLink) {
	if f == nil {
		return
	}
	f.mu.Lock()
	topics := make([]*fanoutTopic, 0, len(f.topics))
	for _, t := range f.topics {
		topics = append(topics, t)
	}
	f.mu.Unlock()
	for _, t := range topics {
		f.linkTopicPeer(t, pl)
	}
}

// linkTopicPeer subscribes this server ONCE to topic t on the peer and
// republishes each received event to local subscribers. This is the
// fan-out tree: the peer sends one event per hop, and each hop multiplies
// it — N subscribers cost the peer one delivery, not N. Idempotent per
// (topic, link). Over a mesh link the subscription is relay-marked on the
// peer and the republish carries mesh provenance, so events cross each
// mesh edge exactly once (see publishVia). If the peer does not declare
// the topic (yet), the link is skipped with a log line; declare
// lower-tier topics before upper-tier ones.
func (f *fanoutState) linkTopicPeer(t *fanoutTopic, pl *peerLink) {
	t.mu.Lock()
	if _, done := t.linked[pl]; done {
		t.mu.Unlock()
		return
	}
	t.linked[pl] = 0 // reserve while the subscribe round-trips
	t.mu.Unlock()

	fromMesh := pl.role == linkMesh
	relay := reflect.MakeFunc(t.ft, func(args []reflect.Value) []reflect.Value {
		f.srv.metrics.fanRelayed.Add(1)
		raw := make([]any, len(args))
		for i, a := range args {
			raw[i] = a.Interface()
		}
		f.publishVia(t, raw, args, fromMesh)
		out := make([]reflect.Value, t.ft.NumOut())
		for i := range out {
			out[i] = reflect.Zero(t.ft.Out(i))
		}
		return out
	})
	id, err := pl.c.subscribe(t.name, relay.Interface(), fromMesh)
	if err != nil {
		f.srv.logf("clam: linking multicast topic %q to peer: %v", t.name, err)
		t.mu.Lock()
		delete(t.linked, pl)
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	t.linked[pl] = id
	t.mu.Unlock()
}

// unlinkPeer forgets a detached link's topic reservations, so a fresh
// link to a restarted peer re-forms the tree instead of being treated as
// already linked. The dead link's remote subscription needs no teardown —
// it died with the peer's session.
func (f *fanoutState) unlinkPeer(pl *peerLink) {
	if f == nil {
		return
	}
	f.mu.Lock()
	topics := make([]*fanoutTopic, 0, len(f.topics))
	for _, t := range f.topics {
		topics = append(topics, t)
	}
	f.mu.Unlock()
	for _, t := range topics {
		t.mu.Lock()
		delete(t.linked, pl)
		t.mu.Unlock()
	}
}

// --- the built-in "fanout" class ---------------------------------------------------

// FanoutClass is the loadable class through which remote clients manage
// multicast subscriptions — registration as just another upcall-bearing
// class method, so the wire protocol needs no new message types. Every
// server registers it automatically; clients normally use the
// Client.Subscribe / Client.Unsubscribe wrappers rather than loading it
// by hand.
type FanoutClass struct {
	srv    *Server
	sessID uint64
}

// shardKey derives the subscription shard from this instance's handle
// tag — "an arbitrary bit pattern" (§3.5.1), uniformly distributed and
// stable for the instance's life, so all of one client's subscription
// operations land on one shard.
func (f *FanoutClass) shardKey() uint64 {
	h, err := f.srv.handles.Put(f, 0, 0)
	if err != nil {
		return 0 // keyless: the table shards by subscription id instead
	}
	return uint64(h.Tag)
}

// Subscribe registers the client procedure procID as a subscriber of
// topic and returns the subscription id.
func (f *FanoutClass) Subscribe(topic string, procID uint64) (uint64, error) {
	if f.sessID == 0 {
		return 0, errors.New("clam: fanout subscribe requires a client session; server code uses SubscribeFunc")
	}
	sess := f.srv.sessionByID(f.sessID)
	if sess == nil {
		return 0, errors.New("clam: subscribing session is gone")
	}
	key := f.shardKey()
	id, err := f.srv.fan.subscribe(topic, key, procID, sess, false)
	if err != nil {
		return 0, err
	}
	f.srv.journalSubscribe(id, key, topic, procID, f.sessID)
	return id, nil
}

// SubscribeRelay is Subscribe for a mesh peer's fan-out tap: the
// subscription is relay-marked, so events that arrived here over a mesh
// link are not fanned back out through it (publishVia). Relay
// subscriptions are deliberately NOT journaled — a rejoining peer
// re-links its topics itself, and resurrecting a tap for a peer whose
// link died with the crash would deliver into the void.
func (f *FanoutClass) SubscribeRelay(topic string, procID uint64) (uint64, error) {
	if f.sessID == 0 {
		return 0, errors.New("clam: fanout subscribe requires a client session")
	}
	sess := f.srv.sessionByID(f.sessID)
	if sess == nil {
		return 0, errors.New("clam: subscribing session is gone")
	}
	return f.srv.fan.subscribe(topic, f.shardKey(), procID, sess, true)
}

// Unsubscribe cancels subscription id on topic, returning the client
// procedure id it delivered to (so the client can retire it) and whether
// the subscription existed.
func (f *FanoutClass) Unsubscribe(topic string, id uint64) (uint64, bool) {
	key := f.shardKey()
	procID, ok := f.srv.fan.unsubscribe(topic, key, id)
	if ok {
		f.srv.journalUnsubscribe(topic, key, id)
	}
	return procID, ok
}

// Subscribers reports the live subscription count for topic, across all
// clients — a remote observability probe.
func (f *FanoutClass) Subscribers(topic string) uint64 {
	return uint64(f.srv.fan.subs.TopicLen(topic))
}

// RegisterFanoutClass adds the "fanout" class to lib. NewServer calls it
// automatically; it is exported for libraries shared across servers that
// want to register it eagerly.
func RegisterFanoutClass(lib *dynload.Library) error {
	return lib.Register(dynload.Class{
		Name:    "fanout",
		Version: 1,
		Type:    reflect.TypeOf(&FanoutClass{}),
		New: func(env any) (any, error) {
			e, ok := env.(*Env)
			if !ok || e.Server == nil {
				return nil, fmt.Errorf("clam: fanout class requires a server environment, got %T", env)
			}
			return &FanoutClass{srv: e.Server, sessID: e.SessionID}, nil
		},
	})
}

// --- client-side wrappers ----------------------------------------------------------

// Subscribe registers fn as a subscriber of the server's multicast topic:
// every event published to it arrives as an upcall to fn, FIFO within
// this subscription. fn's parameters must match the topic's prototype
// (checked at delivery, like any upcall). The returned id cancels the
// subscription via Unsubscribe.
func (c *Client) Subscribe(topic string, fn any) (uint64, error) {
	return c.subscribe(topic, fn, false)
}

// subscribe is Subscribe with the relay switch: a server linking a topic
// over a mesh peer link registers a relay-marked tap (SubscribeRelay on
// the wire) so the peer never fans mesh-relayed events back through it.
func (c *Client) subscribe(topic string, fn any, relay bool) (uint64, error) {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.Kind() != reflect.Func || v.IsNil() {
		return 0, fmt.Errorf("clam: subscriber is not a func: %T", fn)
	}
	r, err := c.fanoutRemote()
	if err != nil {
		return 0, err
	}
	method := "Subscribe"
	if relay {
		method = "SubscribeRelay"
	}
	procID := c.registerProc(v)
	var id uint64
	if err := r.CallInto(method, []any{&id}, topic, procID); err != nil {
		c.dropProc(procID)
		return 0, err
	}
	return id, nil
}

// Unsubscribe cancels a Subscribe subscription. Pending undelivered
// events are discarded server-side; deliveries already in flight may
// still arrive.
func (c *Client) Unsubscribe(topic string, id uint64) error {
	r, err := c.fanoutRemote()
	if err != nil {
		return err
	}
	var procID uint64
	var found bool
	if err := r.CallInto("Unsubscribe", []any{&procID, &found}, topic, id); err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("clam: no subscription %d on topic %q", id, topic)
	}
	if procID != 0 {
		c.dropProc(procID)
	}
	return nil
}

// fanoutRemote lazily instantiates this client's fanout-class instance.
// One instance per client: its handle tag is the client's subscription
// shard key, and its SessionID ties subscriptions to this session's
// upcall channel.
func (c *Client) fanoutRemote() (*Remote, error) {
	c.fanMu.Lock()
	defer c.fanMu.Unlock()
	if c.fanRemote == nil {
		r, err := c.New("fanout", 0)
		if err != nil {
			return nil, fmt.Errorf("clam: loading fanout class: %w", err)
		}
		c.fanRemote = r
	}
	return c.fanRemote, nil
}

// dropProc retires a client procedure registration whose subscription is
// gone, so the proc table does not grow with subscribe/unsubscribe churn.
func (c *Client) dropProc(id uint64) {
	c.procMu.Lock()
	delete(c.procs, id)
	c.procMu.Unlock()
}
