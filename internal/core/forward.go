package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"time"

	"clam/internal/bundle"
	"clam/internal/handle"
	"clam/internal/rpc"
	"clam/internal/wire"
	"clam/internal/xdr"
)

// Multi-hop forwarding: a CLAM server dialing a lower CLAM server as an
// ordinary client, so abstractions layer across N address spaces rather
// than the paper's two. The paper already contains every ingredient — a
// layer "may live in another address space" (§1), handles are opaque
// capabilities (§3.5.1), procedure pointers translate per hop through RUC
// objects (§3.5.2) — and the symmetric endpoint engine makes the middle
// process simply both roles at once:
//
//	top client ──calls──▶ middle server ──calls──▶ bottom server
//	top client ◀─upcalls── middle server ◀─upcalls── bottom server
//
// Downward, a *Remote the middle tier holds for a lower server's object is
// re-exported upward as a proxy entry in the middle's handle table (same
// {class id, version, tag} semantics; revoking the proxy invalidates the
// upper handle without touching the lower one). A call on a proxy handle
// is relayed down over the upstream client connection. Upward, a procedure
// pointer from the top client is bound into the middle's RUC table and
// re-registered down as a fresh procedure pointer, so an upcall from the
// bottom chains hop by hop back to the top — each hop translating ids it
// minted itself, exactly as §3.5.2 prescribes for one hop.

// The hop state itself — peerLink, its breaker, the per-link translation
// cache — lives in peerlink.go, shared between this vertical chain
// arrangement and the horizontal mesh (mesh.go).

// proxyClass is the middle tier's knowledge of one lower-server class: its
// portable identity and the stubs compiled from the local library's class
// of the same name, which drive argument decoding for forwarded calls.
type proxyClass struct {
	name    string
	version uint32
	stubs   *rpc.ClassStubs
}

// relayCaller is the ruc.Caller identity under which forwarded procedure
// pointers are bound: the same per-session upcall path, plus the per-hop
// relay counter. A distinct identity also lets dropSession clear forwarded
// bindings separately from the client's own.
type relayCaller struct {
	sess *session
}

// Upcall relays an upcall arriving from a lower server on toward this
// server's client.
func (rc *relayCaller) Upcall(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
	rc.sess.srv.metrics.countRelayedUpcall()
	return rc.sess.Upcall(procID, ft, args)
}

// DialUpstream connects this server to a lower CLAM server and registers
// the connection for forwarding: objects imported from it (ImportNamed, or
// received as call results) can be re-exported to this server's clients,
// and calls on those proxies relay down. The returned client is the
// server's ordinary client connection to the lower tier — usable directly
// for bootstrap (loading classes below, importing named objects).
func (s *Server) DialUpstream(network, addr string, opts ...DialOption) (*Client, error) {
	c, err := Dial(network, addr, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.AttachUpstream(c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// AttachUpstream registers an already-dialed client connection to a lower
// server for forwarding. Idempotent per client. The server owns the client
// from here on and closes it on shutdown.
func (s *Server) AttachUpstream(c *Client) error {
	_, err := s.attachLink(c, linkChain, "")
	return err
}

// ImportNamed pulls named objects from an upstream server and republishes
// them under the same names here, so this server's clients find lower-tier
// base abstractions exactly as they would local ones.
func (s *Server) ImportNamed(c *Client, names ...string) error {
	if pl := s.linkFor(c); pl == nil {
		return errors.New("clam: client is not an attached upstream")
	}
	for _, name := range names {
		r, err := c.NamedObject(name)
		if err != nil {
			return fmt.Errorf("clam: importing %q: %w", name, err)
		}
		s.SetNamed(name, r)
	}
	return nil
}

// exportProxy re-exports a lower server's object upward: the *Remote
// itself becomes the handle-table entry, carrying the lower server's class
// identity. Re-exporting the same Remote is stable (same handle), and
// revocation semantics are the table's own (§3.5.1).
func (s *Server) exportProxy(r *Remote) (handle.Handle, error) {
	if err := r.ensureClass(); err != nil {
		return handle.Nil, fmt.Errorf("clam: resolving proxied object's class: %w", err)
	}
	classID, version := r.classInfo()
	return s.handles.Put(r, classID, version)
}

// isProxyableClassPtr reports whether t is a type whose values cross hops
// as handles: *Remote itself, or a pointer to a class instance struct
// known to this server (loaded, or merely registered in the library —
// forwarding must recognize classes it never instantiates locally).
func (s *Server) isProxyableClassPtr(t reflect.Type) bool {
	if t == reflect.PtrTo(remoteStructType) {
		return true
	}
	if t.Kind() != reflect.Ptr || t.Elem().Kind() != reflect.Struct {
		return false
	}
	return s.loader.IsClassType(t.Elem()) || s.lib.HasType(t)
}

// isStaleHandleErr recognizes a lower server's report that the proxied
// handle is no longer valid (revoked below), so the proxy entry above is
// revoked too — tag-mismatch semantics propagate up the chain.
func isStaleHandleErr(err error) bool {
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		return false
	}
	return strings.Contains(re.Msg, handle.ErrStale.Error()) ||
		strings.Contains(re.Msg, handle.ErrUnknown.Error())
}

// --- forwarded call execution ----------------------------------------------

// replyStatus answers a synchronous call with a bare status header.
func (sess *session) replyStatus(seq uint64, status rpc.Status, msg string) {
	if seq == 0 {
		return
	}
	sc := rpc.GetScratch()
	defer sc.Release()
	rh := rpc.ReplyHeader{Status: status, ErrMsg: msg}
	if err := rh.Bundle(sc.Encoder()); err != nil {
		return
	}
	sess.queueReplyFrame(wire.MsgReply, seq, sc.Bytes())
}

// execForward relays one call on a proxy handle down to the lower server
// that owns the real object. The batch decoder is mid-stream, so any
// decode failure must poison it (SetErr) to drop the rest of the batch.
// arrived anchors the call's deadline budget (§6.8): the relay context
// carries the remaining budget downstream, so each hop decrements it by
// the real time spent here, and a MsgCancel from above cancels the relay
// mid-flight — which in turn ships a MsgCancel down the chain.
func (sess *session) execForward(dec *xdr.Stream, hdr *rpc.CallHeader, pr *Remote, entry handle.Entry, arrived int64) {
	srv := sess.srv
	pl := srv.linkFor(pr.c)
	if pl == nil {
		dec.SetErr(fmt.Errorf("clam: proxy call %s on detached peer link", hdr.Method))
		sess.replyStatus(hdr.Seq, rpc.StatusDispatch, "clam: peer connection is gone")
		return
	}
	pc, err := srv.proxyClassFor(pl, entry.ClassID, entry.Version)
	if err != nil {
		dec.SetErr(err)
		sess.replyStatus(hdr.Seq, rpc.StatusDispatch, err.Error())
		return
	}
	stub, err := pc.stubs.Method(hdr.Method)
	if err != nil {
		dec.SetErr(fmt.Errorf("clam: undecodable proxy call %s", hdr.Method))
		sess.replyStatus(hdr.Seq, rpc.StatusDispatch, err.Error())
		return
	}

	args, err := sess.decodeForwardArgs(dec, stub, pr)
	if err != nil {
		dec.SetErr(err)
		sess.replyStatus(hdr.Seq, rpc.StatusDispatch, err.Error())
		return
	}

	if (pl.br != nil && pl.br.open()) || (pl.role == linkMesh && !srv.meshPeerUp(pl)) {
		// The peer's circuit is open (or the mesh directory marks it down):
		// fail fast rather than relay into a link the resurrect loop has
		// given up on for now. The args are already decoded — stub lookup is
		// local once the class is cached — so the batch stream stays aligned
		// and EVERY refused call is answered, not just the batch's first.
		// Sync calls get a dispatch error; asyncs follow the async error
		// path (fault report), matching a relay failure. Mesh peers fail
		// with ErrPeerDown so callers can tell a dead shard owner from an
		// application error.
		msg := "clam: upstream circuit open"
		if pl.role == linkMesh {
			msg = ErrPeerDown.Error() + ": " + pl.name
			srv.metrics.meshPeerDown.Add(1)
		}
		if hdr.Seq == 0 {
			sess.reportFault("proxy", hdr.Method, msg)
		} else {
			sess.replyStatus(hdr.Seq, rpc.StatusDispatch, msg)
		}
		return
	}

	// Shed points (§6.8): a cancelled or budget-spent call is refused here,
	// AFTER args are decoded — the batch stream stays aligned — and BEFORE
	// the relay ties up a round trip on the lower server.
	if hdr.Seq != 0 && sess.takeCancel(hdr.Seq) {
		srv.metrics.shedCancelled.Add(1)
		sess.shedCall(hdr, "cancelled by caller")
		return
	}
	if hdr.Budget != 0 && srv.shedExpired() && budgetSpent(hdr.Budget, arrived) {
		srv.metrics.shedExpired.Add(1)
		sess.shedCall(hdr, "deadline budget spent before relay")
		return
	}

	srv.metrics.countRelayedCall()
	srv.metrics.countCall(pc.name, hdr.Method, hdr.Seq != 0)

	if hdr.Seq == 0 {
		// Asynchronous: relay asynchronously, keeping §3.4's batching
		// across the hop. The client's Sync is relayed too (syncUpstreams),
		// preserving the completion guarantee end to end. Failures follow
		// the async error path: a fault report upcall.
		if err := pr.c.async(pr.h, hdr.Method, args); err != nil {
			sess.reportFault(pc.name, hdr.Method, err.Error())
		}
		return
	}

	// Synchronous: build result targets, relay, and re-encode the answer
	// upward. Class-typed results come back as *Remote proxies; everything
	// else round-trips as data.
	rets := make([]any, len(stub.Rets))
	proxied := make([]bool, len(stub.Rets))
	for i := range stub.Rets {
		rt := stub.Rets[i].Type
		switch {
		case srv.isProxyableClassPtr(rt):
			rets[i] = new(*Remote)
			proxied[i] = true
		case rt.Kind() == reflect.Func:
			sess.replyStatus(hdr.Seq, rpc.StatusDispatch,
				fmt.Sprintf("clam: cannot forward procedure-pointer result of %s", hdr.Method))
			return
		default:
			rets[i] = reflect.New(rt).Interface()
		}
	}

	// The relay context threads the budget and cancellation down the hop:
	// a deadline anchored at this frame's arrival (so the next hop sees
	// the budget minus time spent here), or a bare cancelable context when
	// the caller sent no budget but could still ship a MsgCancel. Either
	// way callOnce turns ctx expiry/cancel into a MsgCancel downstream.
	relayCtx := context.Background()
	if hdr.Budget != 0 || hdr.Seq != 0 {
		var cancel context.CancelFunc
		if hdr.Budget != 0 {
			deadline := time.Unix(0, arrived).Add(time.Duration(hdr.Budget) * time.Microsecond)
			relayCtx, cancel = context.WithDeadline(context.Background(), deadline)
		} else {
			relayCtx, cancel = context.WithCancel(context.Background())
		}
		if hdr.Seq != 0 {
			sess.registerLive(hdr.Seq, cancel)
			defer sess.unregisterLive(hdr.Seq)
		}
		defer cancel()
	}

	// The relay waits a full round trip on the lower server; an executor
	// worker releases its slot meanwhile so this session's other lanes keep
	// draining (no-op under the serial dispatcher, whose block hook hands
	// off the same way when callRetry's wait blocks the task).
	xit := srv.exec.yieldCurrent()
	err = pr.c.callRetry(relayCtx, pr.h, hdr.Method, rets, args, false)
	srv.exec.resume(xit)
	if err != nil {
		if isStaleHandleErr(err) {
			// The lower server revoked the real object: revoke our proxy so
			// the upper handle dies with it.
			srv.revokeHandleObj(pr)
		}
		status, msg := rpc.StatusDispatch, err.Error()
		if errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Deadline or cancel surfaced by the hop below (or by our own
			// relay context): report it upward as what it is, so the whole
			// chain answers StatusDeadline, not a generic dispatch failure.
			status = rpc.StatusDeadline
		} else {
			var re *rpc.RemoteError
			if errors.As(err, &re) {
				status, msg = re.Status, re.Msg
			}
		}
		sess.replyStatus(hdr.Seq, status, msg)
		return
	}
	sess.replyForward(hdr.Seq, stub, args, rets, proxied)
}

// decodeForwardArgs walks a forwarded call's arguments by the kind word
// each one carries — the self-describing wire is what makes generic
// forwarding possible without the lower class loaded locally. Handles are
// translated through this server's table (must name proxies of the same
// upstream); procedure pointers are re-bound through the RUC table under
// the session's relay identity; data decodes by the stub's compiled
// bundlers.
func (sess *session) decodeForwardArgs(dec *xdr.Stream, stub *rpc.MethodStub, pr *Remote) (args []any, err error) {
	srv := sess.srv
	var argc int
	if err := dec.Len(&argc); err != nil {
		return nil, err
	}
	if argc != len(stub.Args) {
		return nil, fmt.Errorf("rpc: %s takes %d parameters, caller sent %d", stub.Name, len(stub.Args), argc)
	}
	args = make([]any, argc)
	ctx := sess.ctx()
	for i := range stub.Args {
		a := &stub.Args[i]
		var got uint32
		if err := dec.Uint32(&got); err != nil {
			return nil, err
		}
		switch rpc.Kind(got) {
		case rpc.KindHandle:
			var hd handle.Handle
			if err := hd.Bundle(dec); err != nil {
				return nil, err
			}
			if hd.IsNil() {
				args[i] = (*Remote)(nil)
				continue
			}
			ent, err := srv.handles.Entry(hd)
			if err != nil {
				return nil, err
			}
			inner, ok := ent.Obj.(*Remote)
			if !ok {
				return nil, fmt.Errorf("clam: parameter %d of %s names a local object; it cannot descend to the lower server", i, stub.Name)
			}
			if inner.c != pr.c {
				return nil, fmt.Errorf("clam: parameter %d of %s names an object on a different upstream", i, stub.Name)
			}
			args[i] = inner
		case rpc.KindProc:
			var procID uint64
			if err := dec.Uint64(&procID); err != nil {
				return nil, err
			}
			ft := a.Type
			if ft.Kind() != reflect.Func {
				return nil, fmt.Errorf("clam: parameter %d of %s is %s, caller sent a procedure", i, stub.Name, ft)
			}
			if procID == 0 {
				args[i] = reflect.Zero(ft).Interface()
				continue
			}
			_, proxy, err := srv.rucs.Bind(procID, ft, sess.relay)
			if err != nil {
				return nil, err
			}
			args[i] = proxy.Interface()
		default:
			want := a.Kind
			if rpc.Kind(got) != want {
				return nil, fmt.Errorf("%w: got %s, want %s (%s parameter %d)",
					rpc.ErrKindMismatch, rpc.Kind(got), want, stub.Name, i)
			}
			target := reflect.New(a.Type).Elem()
			if err := a.Fn(ctx, dec, target); err != nil {
				return nil, fmt.Errorf("rpc: %s parameter %d: %w", stub.Name, i, err)
			}
			if a.Type.Kind() == reflect.Ptr && a.ElemFn != nil &&
				target.IsNil() && a.Mode == bundle.Out {
				target.Set(reflect.New(a.Type.Elem()))
			}
			args[i] = target.Interface()
		}
	}
	return args, nil
}

// replyForward hand-encodes a forwarded call's reply in the standard
// layout (out-parameter triples, then tagged results), minting proxy
// handles for class-typed results.
func (sess *session) replyForward(seq uint64, stub *rpc.MethodStub, args []any, rets []any, proxied []bool) {
	srv := sess.srv
	sc := rpc.GetScratch()
	defer sc.Release()
	enc := sc.Encoder()
	rh := rpc.ReplyHeader{Status: rpc.StatusOK}
	if err := rh.Bundle(enc); err != nil {
		return
	}
	ctx := sess.ctx()

	// Out-parameters: recount which data-pointer args travel back (same
	// rule as the stub's own reply path).
	var outs []int
	for i := range stub.Args {
		a := &stub.Args[i]
		if a.Type.Kind() != reflect.Ptr || a.ElemFn == nil {
			continue
		}
		if _, isProxy := args[i].(*Remote); isProxy {
			continue
		}
		if a.Mode == bundle.Out || a.Mode == bundle.InOut {
			outs = append(outs, i)
		}
	}
	n := len(outs)
	if err := enc.Len(&n); err != nil {
		return
	}
	for _, i := range outs {
		a := &stub.Args[i]
		idx := uint32(i)
		if err := enc.Uint32(&idx); err != nil {
			return
		}
		av := reflect.ValueOf(args[i])
		present := !av.IsNil()
		if err := enc.Bool(&present); err != nil {
			return
		}
		if !present {
			continue
		}
		k := uint32(a.ElemKind)
		if err := enc.Uint32(&k); err != nil {
			return
		}
		if err := a.ElemFn(ctx, enc, av.Elem()); err != nil {
			sess.replyStatus(seq, rpc.StatusDispatch, err.Error())
			return
		}
	}

	rn := len(rets)
	if err := enc.Len(&rn); err != nil {
		return
	}
	for i := range rets {
		if proxied[i] {
			k := uint32(rpc.KindHandle)
			if err := enc.Uint32(&k); err != nil {
				return
			}
			hd := handle.Nil
			if r := *(rets[i].(**Remote)); r != nil {
				var err error
				hd, err = srv.exportProxy(r)
				if err != nil {
					sess.replyStatus(seq, rpc.StatusDispatch, err.Error())
					return
				}
			}
			if err := hd.Bundle(enc); err != nil {
				return
			}
			continue
		}
		a := &stub.Rets[i]
		k := uint32(a.Kind)
		if err := enc.Uint32(&k); err != nil {
			return
		}
		if err := a.Fn(ctx, enc, reflect.ValueOf(rets[i]).Elem()); err != nil {
			sess.replyStatus(seq, rpc.StatusDispatch, err.Error())
			return
		}
	}
	sess.queueReplyFrame(wire.MsgReply, seq, sc.Bytes())
}
