package core

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// Federated mesh tests: N peer servers sharing one consistent-hash object
// space (mesh.go), with clients entering at any member.

// meshFixture is n servers joined into one full mesh, each on its own
// unix socket.
type meshFixture struct {
	names []string
	srvs  map[string]*Server
	paths map[string]string
}

// startMesh brings up one server per name, full-meshes them with JoinMesh,
// and tears everything down with the test. opts apply to every server.
func startMesh(t testing.TB, names []string, opts ...ServerOption) *meshFixture {
	t.Helper()
	m := &meshFixture{
		names: names,
		srvs:  make(map[string]*Server),
		paths: make(map[string]string),
	}
	for _, name := range names {
		name := name
		srv, path := startServer(t, append([]ServerOption{
			WithServerLog(func(format string, args ...any) { t.Logf(name+": "+format, args...) }),
		}, opts...)...)
		m.srvs[name] = srv
		m.paths[name] = path
	}
	for _, name := range names {
		var peers []MeshPeer
		for _, other := range names {
			if other != name {
				peers = append(peers, MeshPeer{Name: other, Network: "unix", Addr: m.paths[other]})
			}
		}
		if err := m.srvs[name].JoinMesh(MeshPeer{Name: name, Network: "unix", Addr: m.paths[name]}, peers...); err != nil {
			t.Fatalf("JoinMesh(%s): %v", name, err)
		}
	}
	return m
}

// createOwnedBy places one named instance of class per member, probing
// names until the directory assigns each member at least one; returns
// member name → object name.
func (m *meshFixture) createOwnedBy(t testing.TB, class, prefix string) map[string]string {
	t.Helper()
	any := m.srvs[m.names[0]]
	owned := make(map[string]string)
	for i := 0; len(owned) < len(m.names) && i < 512; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		owner, ok := any.MeshOwner(name)
		if !ok {
			t.Fatal("MeshOwner: server not in a mesh")
		}
		if _, dup := owned[owner]; dup {
			continue
		}
		if err := any.MeshCreateNamed(class, name); err != nil {
			t.Fatalf("MeshCreateNamed(%s, %s): %v", class, name, err)
		}
		owned[owner] = name
	}
	if len(owned) < len(m.names) {
		t.Fatalf("probed 512 names, directory never covered all members: %v", owned)
	}
	return owned
}

// TestMeshThreePeerRouting: a client dialing ANY member can call — and
// receive upcalls from — objects owned by EVERY member. Calls route over
// one mesh hop to the owner; §3.4's program order (asynchronous calls
// complete before a later synchronous call returns) holds across the hop.
func TestMeshThreePeerRouting(t *testing.T) {
	m := startMesh(t, []string{"a", "b", "c"})
	owned := m.createOwnedBy(t, "counter", "ctr")

	// Ownership agreement: every member's directory names the same owner.
	for owner, objName := range owned {
		for _, srv := range m.srvs {
			if got, _ := srv.MeshOwner(objName); got != owner {
				t.Fatalf("directories disagree on %q: %s vs %s", objName, got, owner)
			}
		}
	}

	// One client per member; every client batches adds into every counter,
	// then Syncs. The sync must cover the routed (forwarded) adds too.
	const perClient = 20
	clients := make(map[string]*Client)
	for _, name := range m.names {
		clients[name] = dialClient(t, m.paths[name])
	}
	for entry, c := range clients {
		for owner, objName := range owned {
			r, err := c.NamedObject(objName)
			if err != nil {
				t.Fatalf("client@%s NamedObject(%q owned by %s): %v", entry, objName, owner, err)
			}
			for i := 0; i < perClient; i++ {
				if err := r.Async("Add", int64(1)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.Sync(); err != nil {
			t.Fatalf("client@%s Sync: %v", entry, err)
		}
	}

	// Exact totals, read through yet another member (so the read itself is
	// routed): every counter saw len(clients)×perClient adds.
	want := int64(len(clients) * perClient)
	for owner, objName := range owned {
		r, err := clients["a"].NamedObject(objName)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		if err := r.CallInto("Total", []any{&total}); err != nil {
			t.Fatalf("Total(%q): %v", objName, err)
		}
		if total != want {
			t.Fatalf("counter %q (owner %s) total = %d, want %d", objName, owner, total, want)
		}
	}

	// Handle tags land in the minting member's directory arc: a client of
	// the owner gets the real object's handle, minted inside the owner's
	// arc by the JoinMesh tag minter.
	for owner, objName := range owned {
		r, err := clients[owner].NamedObject(objName)
		if err != nil {
			t.Fatal(err)
		}
		dir := m.srvs[owner].MeshDirectory()
		if got := dir.Owner(uint64(r.Handle().Tag)); got != owner {
			t.Fatalf("tag of %q maps to arc of %s, want %s", objName, got, owner)
		}
	}

	// Upcalls chain back across the mesh: register a handler through a
	// NON-owner member, trigger through another, and the upcall must cross
	// owner → entry member → client.
	notifiers := m.createOwnedBy(t, "notifier", "notif")
	for owner, objName := range notifiers {
		entry := ""
		for _, name := range m.names {
			if name != owner {
				entry = name
				break
			}
		}
		r, err := clients[entry].NamedObject(objName)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Call("Register", func(x int32, s string) int32 { return 2 * x }); err != nil {
			t.Fatalf("Register on %q via %s: %v", objName, entry, err)
		}
		var sum int32
		if err := r.CallInto("Trigger", []any{&sum}, int32(21), "mesh"); err != nil {
			t.Fatalf("Trigger on %q via %s: %v", objName, entry, err)
		}
		if sum != 42 {
			t.Fatalf("routed upcall sum = %d, want 42 (owner %s, entry %s)", sum, owner, entry)
		}
	}

	// The mesh shows up in metrics.
	ms := m.srvs["a"].Metrics().Mesh
	if !ms.Enabled || ms.Self != "a" || ms.Peers != 3 {
		t.Fatalf("mesh stats = %+v", ms)
	}
	if ms.RoutedNamed == 0 {
		t.Fatal("no routed named resolutions counted")
	}
}

// TestMeshPeerDownFailFast: when a member dies, calls routed to its
// objects fail fast with ErrPeerDown (no hanging on the dead link); when
// it rejoins and re-announces, routing resumes over a fresh link.
func TestMeshPeerDownFailFast(t *testing.T) {
	resume := WithResumeWindow(10 * time.Second)
	m := startMesh(t, []string{"a", "b"}, resume)
	owned := m.createOwnedBy(t, "counter", "down")
	bName := owned["b"]

	c := dialClient(t, m.paths["a"])
	r, err := c.NamedObject(bName)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Call("Add", int64(5)); err != nil {
		t.Fatalf("routed call before failure: %v", err)
	}

	// Kill b. a's link client starts resurrecting; every failed attempt
	// reports into the directory, which marks b down — from then on calls
	// fail fast with ErrPeerDown instead of waiting out the dead link.
	bPath := m.paths["b"]
	if err := m.srvs["b"].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "ErrPeerDown from routed call", func() bool {
		err := r.Call("Total")
		return err != nil && IsPeerDown(err)
	})
	if m.srvs["a"].Metrics().Mesh.PeerDownFailures == 0 {
		t.Fatal("peer-down failures not counted")
	}

	// Fresh named resolutions for b-owned objects fail fast too.
	c2 := dialClient(t, m.paths["a"])
	if _, err := c2.NamedObject(bName + "-other"); err == nil || !IsPeerDown(err) {
		t.Fatalf("resolving b-owned name while b is down: err = %v, want ErrPeerDown", err)
	}

	// Rejoin: a restarted b (same address, fresh state) joins the mesh and
	// announces; a replaces the unresumable old link with a fresh one and
	// routes again.
	b2 := NewServer(testLibrary(t),
		WithServerLog(func(format string, args ...any) { t.Logf("b2: "+format, args...) }),
		resume)
	if _, err := b2.Load("child", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Listen("unix", bPath); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	if err := b2.JoinMesh(MeshPeer{Name: "b", Network: "unix", Addr: bPath},
		MeshPeer{Name: "a", Network: "unix", Addr: m.paths["a"]}); err != nil {
		t.Fatal(err)
	}
	// b's state died with it; recreate its named counter (same directory
	// placement — the ring is unchanged).
	if err := b2.MeshCreateNamed("counter", bName); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "routing to rejoined peer", func() bool {
		cNew := dialClient(t, m.paths["a"])
		rNew, err := cNew.NamedObject(bName)
		if err != nil {
			return false
		}
		return rNew.Call("Add", int64(1)) == nil
	})
}

// TestChaosMeshPartition: a network partition severs the a→b mesh link
// mid-burst; after it heals, session resurrection resumes the link and
// replays the unacknowledged routed calls, and the receive window drops
// duplicates. Adds that raced the partition's open window are replayed;
// adds arriving once the directory has marked b down are refused fail-fast
// with a proxy fault report — so the owner's counter lands EXACTLY on
// (sent − faulted): at-most-once per call, every accepted call delivered.
func TestChaosMeshPartition(t *testing.T) {
	// b: heartbeats detect the dead link, resume window parks the session.
	// a: a breaker that never trips, so redial attempts keep flowing and
	// the first post-heal attempt resumes immediately.
	aSrv, aPath := startServer(t,
		WithServerLog(func(format string, args ...any) { t.Logf("a: "+format, args...) }),
		WithUpstreamBreaker(1<<20, 10*time.Millisecond),
		WithResumeWindow(10*time.Second))
	bSrv, bPath := startServer(t,
		WithServerLog(func(format string, args ...any) { t.Logf("b: "+format, args...) }),
		WithHeartbeat(25*time.Millisecond, 100*time.Millisecond),
		WithResumeWindow(10*time.Second))

	// a's link to b rides SimLinks behind a dial func that fails outright
	// while the partition holds, so resurrection cannot sneak around it.
	var cut atomic.Bool
	cl := &chaosLinks{}
	dialB := func(network, addr string) (net.Conn, error) {
		if cut.Load() {
			return nil, errors.New("simulated partition")
		}
		return cl.dial(network, addr)
	}
	linkToB, err := Dial("unix", bPath,
		WithClientLog(func(format string, args ...any) { t.Logf("a-link: "+format, args...) }),
		WithDialFunc(dialB))
	if err != nil {
		t.Fatal(err)
	}
	if err := aSrv.JoinMesh(MeshPeer{Name: "a", Network: "unix", Addr: aPath},
		MeshPeer{Name: "b", Network: "unix", Addr: bPath, Client: linkToB}); err != nil {
		t.Fatal(err)
	}
	if err := bSrv.JoinMesh(MeshPeer{Name: "b", Network: "unix", Addr: bPath},
		MeshPeer{Name: "a", Network: "unix", Addr: aPath}); err != nil {
		t.Fatal(err)
	}

	// A counter owned by b, reached through a.
	objName := ""
	for i := 0; i < 512; i++ {
		name := fmt.Sprintf("part-%d", i)
		if owner, _ := aSrv.MeshOwner(name); owner == "b" {
			objName = name
			break
		}
	}
	if objName == "" {
		t.Fatal("no b-owned name found")
	}
	if err := aSrv.MeshCreateNamed("counter", objName); err != nil {
		t.Fatal(err)
	}
	bObj, ok := bSrv.Named(objName)
	if !ok {
		t.Fatal("counter not placed on b")
	}
	bCounter := bObj.(*counter)

	c := dialClient(t, aPath)
	// Adds relayed while the directory believes b is down are refused
	// fail-fast (ErrPeerDown) and surface as proxy fault reports, not
	// queued for replay; count them so the exactness check can subtract.
	var faulted atomic.Int64
	c.OnFault(func(rep FaultReport) {
		if rep.Class == "proxy" && rep.Method == "Add" {
			faulted.Add(1)
		}
	})
	r, err := c.NamedObject(objName)
	if err != nil {
		t.Fatal(err)
	}

	// Burst in rounds of batched adds; partition mid-burst, heal, finish.
	const rounds, perRound = 30, 10
	for round := 0; round < rounds; round++ {
		if round == 10 {
			cut.Store(true)
			cl.rpc().Partition()
			cl.upcall().Partition()
		}
		if round == 20 {
			cl.rpc().Heal()
			cl.upcall().Heal()
			cut.Store(false)
		}
		for i := 0; i < perRound; i++ {
			if err := r.Async("Add", int64(1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Sync(); err != nil {
			t.Fatalf("round %d Sync: %v", round, err)
		}
	}

	// Every add either landed exactly once or was refused with a fault:
	// resume replays what the partition swallowed, the receive window drops
	// what it duplicated, and the counter accounts for the rest.
	const sent = int64(rounds * perRound)
	waitFor(t, 8*time.Second, "replayed adds to drain into b", func() bool {
		return bCounter.Total() == sent-faulted.Load()
	})
	time.Sleep(150 * time.Millisecond) // let late duplicates or faults surface
	got, lost := bCounter.Total(), faulted.Load()
	if got != sent-lost {
		t.Fatalf("counter total after partition+heal = %d, want exactly %d (%d sent − %d refused)",
			got, sent-lost, sent, lost)
	}
	if lost >= sent {
		t.Fatalf("all %d adds refused — the link never healed", sent)
	}
	if aSrv.Metrics().Resilience.Reconnects == 0 {
		t.Fatal("a never reconnected its mesh link")
	}
}

// TestMeshChainAblation: a 1-peer "mesh" degenerates to the chain — the
// old vertical API and the mesh coexist, and a server that joined a mesh
// with no peers serves everything locally.
func TestMeshChainAblation(t *testing.T) {
	srv, path := startServer(t)
	if err := srv.JoinMesh(MeshPeer{Name: "solo", Network: "unix", Addr: path}); err != nil {
		t.Fatal(err)
	}
	if err := srv.MeshCreateNamed("counter", "only"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := srv.MeshOwner("anything"); owner != "solo" {
		t.Fatalf("solo member owns everything; got %s", owner)
	}
	c := dialClient(t, path)
	r, err := c.NamedObject("only")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Call("Add", int64(3)); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := r.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if srv.Metrics().Mesh.RoutedNamed != 0 {
		t.Fatal("solo mesh should never route")
	}
}
