package core

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam/internal/upcall"
)

// collector accumulates delivered events for assertion.
type collector struct {
	mu  sync.Mutex
	got []int64
}

func (co *collector) add(x int64) {
	co.mu.Lock()
	co.got = append(co.got, x)
	co.mu.Unlock()
}

func (co *collector) snapshot() []int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append([]int64(nil), co.got...)
}

func (co *collector) len() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.got)
}

// wantExactly asserts the collector saw exactly want, in order — no
// losses, no duplicates, no reordering.
func (co *collector) wantExactly(t *testing.T, want []int64) {
	t.Helper()
	got := co.snapshot()
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v (diverge at %d)", got, want, i)
		}
	}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestFanoutDeliverAll(t *testing.T) {
	srv, path := startServer(t)
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err == nil {
		t.Fatal("duplicate RegisterMulticast succeeded")
	}

	const clients, events = 3, 5
	cols := make([]*collector, clients)
	for i := range cols {
		cols[i] = &collector{}
		c := dialClient(t, path)
		if _, err := c.Subscribe("ev", cols[i].add); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Metrics().Fanout.SubscribersLive; got != clients {
		t.Fatalf("SubscribersLive = %d, want %d", got, clients)
	}

	for i := 0; i < events; i++ {
		n, err := srv.Publish("ev", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if n != clients {
			t.Fatalf("Publish fanned out to %d subscribers, want %d", n, clients)
		}
	}
	waitFor(t, 5*time.Second, "all subscribers to receive all events", func() bool {
		for _, co := range cols {
			if co.len() != events {
				return false
			}
		}
		return true
	})
	for _, co := range cols {
		co.wantExactly(t, seq(events))
	}

	m := srv.Metrics().Fanout
	if m.EventsPublished != events || m.EventsDelivered != clients*events {
		t.Errorf("Fanout = %+v, want %d published, %d delivered", m, events, clients*events)
	}
	if m.Topics != 1 {
		t.Errorf("Topics = %d, want 1", m.Topics)
	}

	if _, err := srv.Publish("nope", int64(1)); err == nil {
		t.Error("Publish to unregistered topic succeeded")
	}
	if _, err := srv.Publish("ev", "wrong-type"); err == nil {
		t.Error("Publish with mismatched args succeeded")
	}
}

func TestFanoutClientUnsubscribe(t *testing.T) {
	srv, path := startServer(t)
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, path)
	co := &collector{}
	id, err := c.Subscribe("ev", co.add)
	if err != nil {
		t.Fatal(err)
	}
	procs := c.ProcCount()
	if _, err := srv.Publish("ev", int64(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first event to arrive", func() bool { return co.len() == 1 })

	if err := c.Unsubscribe("ev", id); err != nil {
		t.Fatal(err)
	}
	if got := c.ProcCount(); got != procs-1 {
		t.Errorf("ProcCount after unsubscribe = %d, want %d", got, procs-1)
	}
	if err := c.Unsubscribe("ev", id); err == nil {
		t.Error("double Unsubscribe succeeded")
	}
	n, err := srv.Publish("ev", int64(2))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("Publish after unsubscribe fanned out to %d subscribers, want 0", n)
	}
	time.Sleep(50 * time.Millisecond)
	co.wantExactly(t, []int64{1})
}

func TestFanoutLocalSubscriber(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}
	co := &collector{}
	id, err := srv.SubscribeFunc("ev", co.add)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SubscribeFunc("ev", func(s string) {}); err == nil {
		t.Error("SubscribeFunc with mismatched signature succeeded")
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Publish("ev", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "local subscriber to receive all", func() bool { return co.len() == 3 })
	co.wantExactly(t, seq(3))

	if !srv.UnsubscribeFunc("ev", id) {
		t.Fatal("UnsubscribeFunc reported missing subscription")
	}
	if srv.UnsubscribeFunc("ev", id) {
		t.Fatal("double UnsubscribeFunc succeeded")
	}
}

// blockingSub is a local subscriber whose first delivery parks inside the
// handler until released, letting tests build a deterministic pending
// queue behind it.
type blockingSub struct {
	co      collector
	entered chan struct{} // signalled once per delivery, on entry
	release chan struct{} // each receive lets one delivery finish
}

func newBlockingSub() *blockingSub {
	return &blockingSub{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingSub) handle(x int64) {
	b.entered <- struct{}{}
	<-b.release
	b.co.add(x)
}

func TestFanoutCoalesceLastEventWins(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.RegisterMulticast("ev", (func(int64))(nil), WithCoalesce()); err != nil {
		t.Fatal(err)
	}
	b := newBlockingSub()
	if _, err := srv.SubscribeFunc("ev", b.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish("ev", int64(1)); err != nil {
		t.Fatal(err)
	}
	<-b.entered // delivery of 1 is in the handler; the queue is empty
	// 2 queues as the pending tail; 3..6 each supersede it.
	for i := int64(2); i <= 6; i++ {
		if _, err := srv.Publish("ev", i); err != nil {
			t.Fatal(err)
		}
	}
	b.release <- struct{}{} // finish 1
	<-b.entered             // delivery of the coalesced tail
	b.release <- struct{}{}

	waitFor(t, 5*time.Second, "coalesced delivery", func() bool { return b.co.len() == 2 })
	b.co.wantExactly(t, []int64{1, 6})
	m := srv.Metrics().Fanout
	if m.EventsCoalesced != 4 {
		t.Errorf("EventsCoalesced = %d, want 4 (3,4,5,6 superseding the tail)", m.EventsCoalesced)
	}
	if m.EventsDelivered != 2 {
		t.Errorf("EventsDelivered = %d, want 2", m.EventsDelivered)
	}
}

func TestFanoutCoalesceIdenticalPending(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}
	b := newBlockingSub()
	if _, err := srv.SubscribeFunc("ev", b.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish("ev", int64(7)); err != nil {
		t.Fatal(err)
	}
	<-b.entered
	// 8 queues; two identical 8s are redundant against the pending tail;
	// 9 differs and queues behind it.
	for _, x := range []int64{8, 8, 8, 9} {
		if _, err := srv.Publish("ev", x); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		b.release <- struct{}{}
		if i < 2 {
			<-b.entered
		}
	}
	waitFor(t, 5*time.Second, "deduplicated deliveries", func() bool { return b.co.len() == 3 })
	b.co.wantExactly(t, []int64{7, 8, 9})
	if m := srv.Metrics().Fanout; m.EventsCoalesced != 2 {
		t.Errorf("EventsCoalesced = %d, want 2", m.EventsCoalesced)
	}
}

func TestFanoutDropOldestPolicy(t *testing.T) {
	srv, _ := startServer(t)
	err := srv.RegisterMulticast("ev", (func(int64))(nil), WithFanoutQueue(2))
	if err != nil {
		t.Fatal(err)
	}
	b := newBlockingSub()
	if _, err := srv.SubscribeFunc("ev", b.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish("ev", int64(1)); err != nil {
		t.Fatal(err)
	}
	<-b.entered
	// Queue bound is 2: 2 and 3 fill it, 4 evicts 2.
	for i := int64(2); i <= 4; i++ {
		if _, err := srv.Publish("ev", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		b.release <- struct{}{}
		if i < 2 {
			<-b.entered
		}
	}
	waitFor(t, 5*time.Second, "post-eviction deliveries", func() bool { return b.co.len() == 3 })
	b.co.wantExactly(t, []int64{1, 3, 4})
	if m := srv.Metrics().Fanout; m.QueueDropsOldest != 1 {
		t.Errorf("QueueDropsOldest = %d, want 1", m.QueueDropsOldest)
	}
}

func TestFanoutBlockPolicyBackpressure(t *testing.T) {
	srv, _ := startServer(t)
	err := srv.RegisterMulticast("ev", (func(int64))(nil),
		WithFanoutPolicy(upcall.Block), WithFanoutQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	b := newBlockingSub()
	if _, err := srv.SubscribeFunc("ev", b.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish("ev", int64(1)); err != nil {
		t.Fatal(err)
	}
	<-b.entered
	if _, err := srv.Publish("ev", int64(2)); err != nil { // fills the queue
		t.Fatal(err)
	}
	published := make(chan struct{})
	go func() {
		defer close(published)
		if _, err := srv.Publish("ev", int64(3)); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-published:
		t.Fatal("Block-policy Publish returned against a full queue")
	case <-time.After(100 * time.Millisecond):
	}
	for i := 0; i < 3; i++ {
		b.release <- struct{}{}
		if i < 2 {
			<-b.entered
		}
	}
	<-published
	waitFor(t, 5*time.Second, "backpressured deliveries", func() bool { return b.co.len() == 3 })
	b.co.wantExactly(t, []int64{1, 2, 3})
	m := srv.Metrics().Fanout
	if m.QueueDropsOldest+m.QueueDropsNewest+m.QueueDropsClosed != 0 {
		t.Errorf("Block policy dropped events: %+v", m)
	}
}

// TestFanoutChurnStorm runs a register/unregister storm during an active
// publish burst: stable subscribers must receive every event exactly
// once, in order, regardless of concurrent churn on other shards.
func TestFanoutChurnStorm(t *testing.T) {
	srv, path := startServer(t)
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}

	const stable, churners, churnRounds, events = 3, 4, 40, 150
	cols := make([]*collector, stable)
	for i := range cols {
		cols[i] = &collector{}
		c := dialClient(t, path)
		if _, err := c.Subscribe("ev", cols[i].add); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < churners; w++ {
		c := dialClient(t, path)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < churnRounds; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id, err := c.Subscribe("ev", func(int64) {})
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.Unsubscribe("ev", id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	for i := 0; i < events; i++ {
		if _, err := srv.Publish("ev", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 20*time.Second, "stable subscribers to receive the burst", func() bool {
		for _, co := range cols {
			if co.len() != events {
				return false
			}
		}
		return true
	})
	close(stop)
	wg.Wait()

	for _, co := range cols {
		co.wantExactly(t, seq(events))
	}
	if got := srv.Metrics().Fanout.SubscribersLive; got != stable {
		t.Errorf("SubscribersLive after churn = %d, want %d", got, stable)
	}
}

// midTier builds a bottom+mid chain with the topic declared on both and
// returns (bottom, mid, mid's listen path, the chaos links, an offline
// gate). While the gate is set, the mid tier's reconnect dials fail —
// giving chaos tests a deterministic outage window.
func midTier(t *testing.T, registerBeforeAttach bool, bottomOpts ...ServerOption) (*Server, *Server, string, *chaosLinks, *atomic.Bool) {
	t.Helper()
	bottom, bottomPath := startServer(t, bottomOpts...)
	if err := bottom.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}
	mid := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	t.Cleanup(func() { mid.Close() })
	midPath := t.TempDir() + "/mid.sock"
	if _, err := mid.Listen("unix", midPath); err != nil {
		t.Fatal(err)
	}
	if registerBeforeAttach {
		if err := mid.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
			t.Fatal(err)
		}
	}
	cl := &chaosLinks{}
	offline := &atomic.Bool{}
	dial := func(network, addr string) (net.Conn, error) {
		if offline.Load() {
			return nil, errors.New("chaos: network offline")
		}
		return cl.dial(network, addr)
	}
	if _, err := mid.DialUpstream("unix", bottomPath,
		WithClientLog(func(string, ...any) {}),
		WithDialFunc(dial),
		WithCallTimeout(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if !registerBeforeAttach {
		if err := mid.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
			t.Fatal(err)
		}
	}
	return bottom, mid, midPath, cl, offline
}

// TestFanoutTreeMultiplication proves the fan-out tree: the bottom tier
// delivers ONE event per hop to the mid tier, which multiplies it to its
// own K subscribers — not K copies through the hop.
func TestFanoutTreeMultiplication(t *testing.T) {
	bottom, mid, midPath, _, _ := midTier(t, false)

	const clients, events = 3, 5
	cols := make([]*collector, clients)
	for i := range cols {
		cols[i] = &collector{}
		c := dialClient(t, midPath)
		if _, err := c.Subscribe("ev", cols[i].add); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < events; i++ {
		if _, err := bottom.Publish("ev", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "events to multiply through the tree", func() bool {
		for _, co := range cols {
			if co.len() != events {
				return false
			}
		}
		return true
	})
	for _, co := range cols {
		co.wantExactly(t, seq(events))
	}

	bm, mm := bottom.Metrics().Fanout, mid.Metrics().Fanout
	// One delivery per event crossed the hop: the mid tier is the
	// bottom's only subscriber, however many clients sit above it.
	if bm.SubscribersLive != 1 {
		t.Errorf("bottom SubscribersLive = %d, want 1 (the mid tier)", bm.SubscribersLive)
	}
	if bm.EventsDelivered != events {
		t.Errorf("bottom EventsDelivered = %d, want %d (one per event per hop)", bm.EventsDelivered, events)
	}
	if mm.EventsRelayed != events {
		t.Errorf("mid EventsRelayed = %d, want %d", mm.EventsRelayed, events)
	}
	if mm.EventsDelivered != clients*events {
		t.Errorf("mid EventsDelivered = %d, want %d (local multiplication)", mm.EventsDelivered, clients*events)
	}
}

// TestFanoutTreeLinkOnAttach covers the other declaration order: the mid
// tier declares the topic before dialing its upstream; AttachUpstream
// forms the link.
func TestFanoutTreeLinkOnAttach(t *testing.T) {
	bottom, _, midPath, _, _ := midTier(t, true)
	co := &collector{}
	c := dialClient(t, midPath)
	if _, err := c.Subscribe("ev", co.add); err != nil {
		t.Fatal(err)
	}
	if _, err := bottom.Publish("ev", int64(42)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "event through link formed at attach", func() bool {
		return co.len() == 1
	})
	co.wantExactly(t, []int64{42})
}

// TestChaosFanoutMidTierKillResume kills the mid→bottom link during a
// broadcast sequence. PR 5's resurrection machinery heals the hop; the
// events published while the link was down were parked in the bottom's
// per-subscriber queue and must arrive after the resume — exactly once,
// in order, with no duplicates.
func TestChaosFanoutMidTierKillResume(t *testing.T) {
	bottom, mid, midPath, cl, offline := midTier(t, false, WithResumeWindow(10*time.Second))

	co := &collector{}
	top := dialClient(t, midPath)
	if _, err := top.Subscribe("ev", co.add); err != nil {
		t.Fatal(err)
	}

	for i := int64(0); i < 3; i++ {
		if _, err := bottom.Publish("ev", i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "pre-kill events", func() bool { return co.len() == 3 })

	// Take the network down, then kill both channels of the mid→bottom
	// hop mid-sequence: the mid tier's resurrect loop spins against the
	// offline gate, holding the outage window open deterministically.
	offline.Store(true)
	cl.rpc().Sever()
	cl.upcall().Sever()
	waitFor(t, 10*time.Second, "bottom to park the mid tier's session", func() bool {
		bottom.mu.Lock()
		defer bottom.mu.Unlock()
		for _, sess := range bottom.sessions {
			if sess.linkIsDown() {
				return true
			}
		}
		return false
	})

	// Published into the outage: the drain stands down and these park in
	// the bottom's queue for the mid tier rather than burning against the
	// dead link.
	for i := int64(3); i < 6; i++ {
		if _, err := bottom.Publish("ev", i); err != nil {
			t.Fatal(err)
		}
	}

	// Network restored: the next resurrect attempt heals the hop.
	offline.Store(false)
	waitFor(t, 15*time.Second, "mid tier to resurrect its upstream", func() bool {
		return mid.Metrics().Resilience.Reconnects >= 1
	})
	waitFor(t, 15*time.Second, "parked events to flow after resume", func() bool {
		return co.len() == 6
	})

	// Post-heal events keep flowing.
	for i := int64(6); i < 8; i++ {
		if _, err := bottom.Publish("ev", i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "post-heal events", func() bool { return co.len() == 8 })

	// Exactly once, in order, across the kill: resurrection must not
	// duplicate or reorder deliveries.
	co.wantExactly(t, seq(8))
	if fails := bottom.Metrics().Fanout.DeliveryFailures; fails != 0 {
		t.Errorf("bottom DeliveryFailures = %d, want 0 (drain should park, not burn, during the outage)", fails)
	}
}
