package core

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"clam/internal/wire"
	"clam/internal/xdr"
)

// Failure-injection tests: the server must survive abrupt disconnects,
// half-open handshakes, garbage frames and client churn without wedging
// or leaking sessions.

func TestServerSurvivesGarbageConnection(t *testing.T) {
	_, path := startServer(t)
	// Raw garbage straight at the listener.
	conn, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn.Close()

	// Valid frame with a nonsense message type.
	conn2, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn2)
	wc.Send(&wire.Msg{Type: wire.MsgType(200), Seq: 1})
	wc.Close()

	// The server still serves real clients.
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Errorf("server wedged by garbage: %v", err)
	}
}

func TestServerSurvivesHalfOpenHandshake(t *testing.T) {
	srv, path := startServer(t)
	// Connect and say nothing, then vanish.
	conn, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Hello for the upcall role against a session that does not exist.
	conn2, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn2)
	var body bytesBuf
	h := helloBody{Role: roleUpcall, Session: 424242}
	if err := h.bundle(xdr.NewEncoder(&body)); err != nil {
		t.Fatal(err)
	}
	wc.Send(&wire.Msg{Type: wire.MsgHello, Seq: 1, Body: body.b})
	// The server closes it; reading reports closure rather than hanging.
	done := make(chan struct{})
	go func() {
		wc.Recv()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("orphan upcall hello not rejected")
	}
	wc.Close()
	if srv.SessionCount() != 0 {
		t.Errorf("phantom sessions: %d", srv.SessionCount())
	}
}

func TestAbruptDisconnectMidBatch(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Queue async calls, then kill the connection without flushing
	// cleanly; the server may get a torn frame.
	for i := 0; i < 100; i++ {
		obj.Async("Add", int64(1))
	}
	c.rpcConn().Close()
	c.upcallConn().Close()

	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("sessions leaked: %d", srv.SessionCount())
	}
	// New client works.
	c2 := dialClient(t, path)
	o2, err := c2.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.Call("Add", int64(1)); err != nil {
		t.Errorf("server broken after abrupt disconnect: %v", err)
	}
}

func TestDisconnectDuringUpcallWait(t *testing.T) {
	srv := NewServer(testLibrary(t),
		WithServerLog(func(string, ...any) {}),
		WithUpcallTimeout(5*time.Second))
	sock := t.TempDir() + "/chaos.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial("unix", sock, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Handler that kills the client's connections mid-upcall: the server
	// task blocked on the reply must be released by the disconnect, well
	// before the 5s timeout.
	if err := n.Call("Register", func(x int32, s string) int32 {
		c.rpcConn().Close()
		c.upcallConn().Close()
		return x
	}); err != nil {
		t.Fatal(err)
	}
	nObj, _ := srv.Named("unused") // no-op; keep API exercised
	_ = nObj

	// Trigger from a second client so its call observes the failure.
	c2, err := Dial("unix", sock, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Publish the notifier for the second client.
	// (Server-side object lookup through the handle table of client 1 is
	// not visible to client 2, so re-register via a shared name.)
	obj, _, err := srv.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("c", obj)

	done := make(chan error, 1)
	go func() {
		var sum int32
		done <- n.CallInto("Trigger", []any{&sum}, int32(1), "x")
	}()
	select {
	case <-done:
		// Error or success both acceptable; what matters is no hang.
	case <-time.After(10 * time.Second):
		t.Fatal("server task hung on upcall to dead client")
	}
}

func TestManyClientsChurn(t *testing.T) {
	srv, path := startServer(t)
	obj, _, err := srv.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("shared", obj)

	var wg sync.WaitGroup
	const rounds = 20
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial("unix", path, WithClientLog(func(string, ...any) {}))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			shared, err := c.NamedObject("shared")
			if err == nil {
				shared.Call("Add", int64(1))
			}
			if i%3 == 0 {
				// A third of the clients vanish without goodbye.
				c.rpcConn().Close()
				c.upcallConn().Close()
			} else {
				c.Close()
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for srv.SessionCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("sessions leaked after churn: %d", srv.SessionCount())
	}
	if got := obj.(*counter).Total(); got != rounds {
		t.Errorf("total = %d, want %d", got, rounds)
	}
}

func TestTruncatedFrameDropsSession(t *testing.T) {
	srv, path := startServer(t)
	conn, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	var body bytesBuf
	h := helloBody{Role: roleRPC}
	h.bundle(xdr.NewEncoder(&body))
	if err := wc.Send(&wire.Msg{Type: wire.MsgHello, Seq: 1, Body: body.b}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Recv(); err != nil {
		t.Fatal(err)
	}
	// A frame header promising a huge body, then silence and close.
	var hdr [16]byte
	binary.BigEndian.PutUint16(hdr[0:2], 0xC1A0)
	hdr[2] = byte(wire.MsgCall)
	binary.BigEndian.PutUint32(hdr[12:16], 1<<20)
	conn.Write(hdr[:])
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("truncated frame left %d sessions", srv.SessionCount())
	}
}
