package core

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"clam/internal/wire"
)

// Chaos tests: every SimLink fault mode exercised against the three call
// shapes (synchronous call, batched asynchronous flush, in-flight
// distributed upcall), asserting that the robustness layer both survives
// the fault and counts it.

// chaosLinks records the SimLink wrapped around each channel a client
// dials, so tests can inject faults per channel. Dial order is fixed by
// core.Dial: links[0] is the RPC channel, links[1] the upcall channel.
type chaosLinks struct {
	mu    sync.Mutex
	links []*wire.SimLink
}

func (cl *chaosLinks) dial(network, addr string) (net.Conn, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	l := wire.NewSimLink(conn, 0, 0)
	cl.mu.Lock()
	cl.links = append(cl.links, l)
	cl.mu.Unlock()
	return l, nil
}

func (cl *chaosLinks) rpc() *wire.SimLink {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.links[0]
}

func (cl *chaosLinks) upcall() *wire.SimLink {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.links[1]
}

func chaosClient(t testing.TB, path string, opts ...DialOption) (*Client, *chaosLinks) {
	t.Helper()
	cl := &chaosLinks{}
	opts = append([]DialOption{
		WithClientLog(func(string, ...any) {}),
		WithDialFunc(cl.dial),
	}, opts...)
	c, err := Dial("unix", path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, cl
}

func waitFor(t testing.TB, within time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- sync calls under link faults -------------------------------------------

func TestChaosDelayedRequestTimesOutAndRetries(t *testing.T) {
	_, path := startServer(t)
	c, cl := chaosClient(t, path,
		WithCallTimeout(150*time.Millisecond),
		WithRetry(RetryPolicy{Attempts: 4, Backoff: 20 * time.Millisecond}))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	obj.MarkIdempotent("Total")

	// Delay the next request past the call timeout: attempt 1 times out.
	// The delayed chunk also holds up the retries queued behind it
	// (head-of-line blocking in the link), so the delay must clear within
	// a later attempt's window for the retry to succeed.
	cl.rpc().InjectDelay(1, 400*time.Millisecond)
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatalf("idempotent call failed despite retry: %v", err)
	}
	m := c.Metrics()
	if m.Timeouts < 1 {
		t.Errorf("Timeouts = %d, want >= 1", m.Timeouts)
	}
	if m.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", m.Retries)
	}
}

func TestChaosDroppedRequestRetries(t *testing.T) {
	srv, path := startServer(t)
	c, cl := chaosClient(t, path,
		WithCallTimeout(100*time.Millisecond),
		WithRetry(RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond}))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	obj.MarkIdempotent("Total")

	cl.rpc().InjectDrop(1) // the whole request frame vanishes
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatalf("call failed despite retry after drop: %v", err)
	}
	if got := c.Metrics().Retries; got < 1 {
		t.Errorf("Retries = %d, want >= 1", got)
	}
	if got := srv.Metrics().SyncCalls; got < 1 {
		t.Errorf("server SyncCalls = %d, want >= 1", got)
	}
}

func TestChaosUnmarkedCallDoesNotRetry(t *testing.T) {
	_, path := startServer(t)
	c, cl := chaosClient(t, path,
		WithCallTimeout(100*time.Millisecond),
		WithRetry(RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond}))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Add is NOT marked idempotent: a drop must surface as a timeout, not
	// a silent re-execution.
	cl.rpc().InjectDrop(1)
	err = obj.Call("Add", int64(1))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("unmarked call after drop: err = %v, want ErrCallTimeout", err)
	}
	if got := c.Metrics().Retries; got != 0 {
		t.Errorf("Retries = %d, want 0 for unmarked method", got)
	}
}

func TestChaosDuplicatedRequestExecutesTwice(t *testing.T) {
	_, path := startServer(t)
	c, cl := chaosClient(t, path, WithCallTimeout(2*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.rpc().InjectDuplicate(1)
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatalf("call over duplicating link: %v", err)
	}
	// The duplicated frame re-executes the batch — this is exactly why
	// only idempotent-marked methods are ever auto-retried. The client
	// must survive the duplicate reply (dropped by sequence number).
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Errorf("total after duplicated Add = %d, want 2", total)
	}
}

// --- batched async flush under link faults ----------------------------------

func TestChaosDroppedAsyncFlushDegradesGracefully(t *testing.T) {
	_, path := startServer(t)
	c, cl := chaosClient(t, path, WithCallTimeout(2*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	cl.rpc().InjectDrop(1)
	if err := c.Flush(); err != nil {
		t.Fatalf("flush over dropping link: %v", err)
	}
	// The batch is gone, but the session must remain consistent: the next
	// round trip works and sees none of the dropped calls.
	if err := c.Sync(); err != nil {
		t.Fatalf("sync after dropped batch: %v", err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %d, want 0 (batch was dropped)", total)
	}
	// And new traffic flows normally.
	if err := obj.Call("Add", int64(5)); err != nil {
		t.Fatal(err)
	}
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
}

func TestChaosSeverMidMessageDropsSessionCleanly(t *testing.T) {
	srv, path := startServer(t)
	c, cl := chaosClient(t, path, WithCallTimeout(time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The next frame is torn in half and the link cut: the server sees a
	// truncated frame and must drop the session without wedging.
	cl.rpc().SeverMidMessage()
	if err := obj.Call("Add", int64(1)); err == nil {
		t.Error("call over severed link succeeded")
	}
	waitFor(t, 3*time.Second, "severed session to drop", func() bool {
		return srv.SessionCount() == 0
	})
	// The server still serves fresh clients.
	c2 := dialClient(t, path)
	o2, err := c2.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.Call("Add", int64(1)); err != nil {
		t.Errorf("server degraded after torn frame: %v", err)
	}
}

// --- in-flight upcalls under link faults (the acceptance scenario) ----------

// TestChaosSeveredUpcallStreamEvictsAndUnblocks is the headline scenario:
// a client's upcall stream is severed (blackholed: the connection stays
// open but nothing flows back) while the server is blocked mid-upcall.
// The liveness window must evict the client, unblock the parked server
// task, and move the eviction and upcall-failure counters.
func TestChaosSeveredUpcallStreamEvictsAndUnblocks(t *testing.T) {
	srv, path := startServer(t,
		WithHeartbeat(25*time.Millisecond, 200*time.Millisecond),
		WithUpcallTimeout(30*time.Second)) // far beyond the liveness window
	c, cl := chaosClient(t, path)

	faults := make(chan FaultReport, 4)
	c.OnFault(func(r FaultReport) { faults <- r })

	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Call("Register", func(x int32, s string) int32 { return x }); err != nil {
		t.Fatal(err)
	}
	// Sanity: the upcall round trip works before the fault.
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(7), "ok"); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Fatalf("pre-fault trigger sum = %d, want 7", sum)
	}

	// Sever the upcall stream client→server: upcall replies and pongs
	// vanish while the connection stays open.
	cl.upcall().InjectBlackhole(true)

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		var s int32
		done <- n.CallInto("Trigger", []any{&s}, int32(1), "x")
	}()

	// The server task parked on the upcall must be unblocked by the
	// liveness eviction — well before the 30s upcall timeout.
	select {
	case err := <-done:
		if err == nil {
			t.Error("trigger over severed upcall stream reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server task stayed parked on upcall to severed client")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("unblocked after %v, want within the liveness window (~200ms)", elapsed)
	}

	waitFor(t, 3*time.Second, "evicted session to drop", func() bool {
		return srv.SessionCount() == 0
	})
	m := srv.Metrics()
	if m.Evictions < 1 {
		t.Errorf("Evictions = %d, want >= 1", m.Evictions)
	}
	if m.UpcallFailures < 1 {
		t.Errorf("UpcallFailures = %d, want >= 1", m.UpcallFailures)
	}
	if m.HeartbeatsSent == 0 {
		t.Error("HeartbeatsSent = 0, want > 0")
	}
	// The final notice travels server→client (not blackholed), so the
	// client learns why it was cut off.
	select {
	case r := <-faults:
		if r.Method != "evict" {
			t.Errorf("fault report method = %q, want %q", r.Method, "evict")
		}
	case <-time.After(3 * time.Second):
		t.Error("client never received the eviction FaultReport notice")
	}
}

func TestSlowConsumerEviction(t *testing.T) {
	srv, path := startServer(t,
		WithUpcallTimeout(100*time.Millisecond),
		WithSlowConsumerLimit(2))
	c := dialClient(t, path)
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	// A handler that wedges the client's upcall task well past the upcall
	// timeout.
	if err := n.Call("Register", func(x int32, s string) int32 {
		time.Sleep(time.Second)
		return x
	}); err != nil {
		t.Fatal(err)
	}
	// Two triggers, two upcall timeouts, eviction on the second.
	for i := 0; i < 2; i++ {
		n.CallInto("Trigger", []any{new(int32)}, int32(1), "x")
	}
	waitFor(t, 5*time.Second, "slow consumer to be evicted", func() bool {
		return srv.SessionCount() == 0
	})
	m := srv.Metrics()
	if m.Evictions < 1 {
		t.Errorf("Evictions = %d, want >= 1", m.Evictions)
	}
	if m.UpcallTimeouts < 2 {
		t.Errorf("UpcallTimeouts = %d, want >= 2", m.UpcallTimeouts)
	}
}

// --- session admission and liveness ----------------------------------------

func TestMaxSessionsRejectsExcessClients(t *testing.T) {
	srv, path := startServer(t, WithMaxSessions(1))
	c1 := dialClient(t, path)
	_ = c1
	if _, err := Dial("unix", path, WithClientLog(func(string, ...any) {})); err == nil {
		t.Fatal("second client admitted past WithMaxSessions(1)")
	}
	if got := srv.Metrics().RejectedSessions; got < 1 {
		t.Errorf("RejectedSessions = %d, want >= 1", got)
	}
	// Capacity frees up when a client leaves.
	c1.Close()
	waitFor(t, 3*time.Second, "session slot to free", func() bool {
		return srv.SessionCount() == 0
	})
	c2, err := Dial("unix", path, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	c2.Close()
}

func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	srv, path := startServer(t, WithHeartbeat(20*time.Millisecond, 120*time.Millisecond))
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle well past the liveness window: the client's automatic pongs
	// must keep the session alive.
	time.Sleep(400 * time.Millisecond)
	if got := srv.SessionCount(); got != 1 {
		t.Fatalf("idle session evicted: SessionCount = %d", got)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Errorf("call after idle period: %v", err)
	}
	m := srv.Metrics()
	if m.HeartbeatsSent == 0 || m.HeartbeatsReceived == 0 {
		t.Errorf("heartbeats sent/received = %d/%d, want both > 0",
			m.HeartbeatsSent, m.HeartbeatsReceived)
	}
	if m.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0", m.Evictions)
	}
}

func TestClientHeartbeatDetectsUnresponsiveServer(t *testing.T) {
	_, path := startServer(t) // no server heartbeats: server stays silent when idle
	c, cl := chaosClient(t, path,
		WithClientHeartbeat(20*time.Millisecond, 120*time.Millisecond))
	if _, err := c.New("counter", 0); err != nil {
		t.Fatal(err)
	}
	// Blackhole both directions of outbound traffic: the client's pings
	// go nowhere, so no pongs come back, and the window expires.
	cl.rpc().InjectBlackhole(true)
	cl.upcall().InjectBlackhole(true)
	waitFor(t, 3*time.Second, "client to declare server unresponsive", func() bool {
		return c.Metrics().ServerUnresponsive
	})
	if m := c.Metrics(); m.HeartbeatsSent == 0 {
		t.Errorf("HeartbeatsSent = %d, want > 0", m.HeartbeatsSent)
	}
}

// --- metrics hot path --------------------------------------------------------

func TestMetricsConcurrentCounting(t *testing.T) {
	m := newMetrics()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.countCall("counter", "Add", i%2 == 0)
				m.countBatch()
			}
		}(w)
	}
	wg.Wait()
	srv := &Server{metrics: m}
	snap := srv.Metrics()
	if got := snap.Calls["counter.Add"]; got != workers*per {
		t.Errorf("counter.Add = %d, want %d", got, workers*per)
	}
	if snap.SyncCalls+snap.AsyncCalls != workers*per {
		t.Errorf("sync+async = %d, want %d", snap.SyncCalls+snap.AsyncCalls, workers*per)
	}
	if snap.Batches != workers*per {
		t.Errorf("Batches = %d, want %d", snap.Batches, workers*per)
	}
}
