package core

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// Property: §3.4's ordering guarantee — "our underlying communication
// medium guarantees reliable, in-order delivery of messages, so batched
// calls will arrive in the correct order" — holds for arbitrary
// interleavings of asynchronous, synchronous and explicitly flushed calls
// from one client.
func TestBatchedCallOrderProperty(t *testing.T) {
	_, path := startServer(t)

	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial)+1, 99))
		c := dialClient(t, path)
		obj, err := c.New("counter", 0)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		n := 30 + rng.IntN(40)
		for i := 0; i < n; i++ {
			tag := fmt.Sprintf("t%d-e%d", trial, i)
			want = append(want, tag)
			switch rng.IntN(4) {
			case 0, 1: // batched async
				if err := obj.Async("Record", tag); err != nil {
					t.Fatal(err)
				}
			case 2: // synchronous call carrying the batch with it
				if err := obj.Call("Record", tag); err != nil {
					t.Fatal(err)
				}
			default: // async then explicit flush
				if err := obj.Async("Record", tag); err != nil {
					t.Fatal(err)
				}
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.Sync(); err != nil {
			t.Fatal(err)
		}
		var got []string
		if err := obj.CallInto("Log", []any{&got}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order broken at %d: got %q want %q",
					trial, i, got[i], want[i])
			}
		}
		c.Close()
	}
}
