package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"clam/internal/task"
	"clam/internal/wire"
)

// The sharded, per-object-serialized dispatch executor.
//
// The paper's dispatcher is one task per session draining a FIFO queue
// (§4.3): correct, but calls to two independent objects owned by the same
// client serialize behind each other, and — because every session's
// dispatcher shares one scheduler run token — so do calls from different
// clients. Under pipelined load the server runs one handler at a time on
// one core.
//
// This executor keeps CLAM's ordering contract while letting independent
// work overlap. The unit of ordering is the object (per-object
// serialization is what unguarded handler state relies on, and the handle
// table names objects server-wide), so incoming messages are chained into
// dependency lanes:
//
//   - a single-call batch targeting object O runs after the previous
//     incomplete message for O, whichever session sent it — same-object
//     calls never interleave, across sessions included;
//   - a single asynchronous call additionally runs after the session's
//     previous asynchronous call, and every call runs after the session's
//     previous async call, preserving §3.4's issue-order guarantee for one
//     client task even when batching is disabled and each call ships alone;
//   - a multi-call batch is one client task's burst: it executes as a unit
//     (intra-batch order is the paper's), and because its targets are not
//     known without decoding it, it orders as a global barrier — after
//     everything in flight, before everything later;
//   - MsgLoad and MsgSync are session barriers: they run after all of their
//     session's incomplete messages, and later messages from that session
//     run after them. Sync's §3.4 promise — every earlier asynchronous call
//     has executed — falls out directly.
//
// The lane key is peeked from the encoded batch without decoding it: a
// MsgCall body is a 4-byte big-endian count followed by the first
// CallHeader (seq uint64, budget uint64, object id uint64, tag uint64,
// method), so a single-call batch's sequence number sits at bytes [4:12),
// its deadline budget at [12:20) and its target object id at [20:28).
//
// Messages whose dependencies are settled execute on a bounded pool of
// worker goroutines — real parallelism, unlike the run-token scheduler.
// When a handler blocks for the wire (a distributed upcall waiting on the
// client task, a forwarded call waiting on a lower server), it yields: the
// item completes for ordering purposes — which is what keeps the paper's
// reentrant call-during-upcall pattern working, exactly as the serial
// dispatcher's hand-off did — and the pool grows a replacement worker so
// the session keeps draining. Replies still coalesce: each session counts
// its in-flight items and flushes its buffered replies when the count
// drains to zero, so a burst's replies ride one kernel write as before
// (wire.Conn already serializes writers under its own lock).
//
// The serial dispatcher is kept, verbatim, behind WithPerObjectDispatch
// (false) as the ablation baseline.

// itemKind classifies one queued message's ordering behaviour.
type itemKind uint8

const (
	// itemCall is a single-call batch: serialized per target object.
	itemCall itemKind = iota
	// itemSessionBarrier waits for the session's in-flight items and blocks
	// its later ones (MsgLoad, MsgSync).
	itemSessionBarrier
	// itemGlobalBarrier waits for every in-flight item and blocks every
	// later one (multi-call batches, whose targets are unknown unparsed).
	itemGlobalBarrier
)

// dispatchItem is one queued message moving through the dependency graph.
// All fields except sess/msg (set before publication) are guarded by the
// executor's mutex.
type dispatchItem struct {
	sess  *session
	msg   *wire.Msg
	lane  uint64 // target object id, for itemCall
	kind  itemKind
	async bool // itemCall with seq 0: chains on the session's async order

	deps    int             // incomplete items this one runs after
	waiters []*dispatchItem // items running after this one
	done    bool            // order-complete: finished or yielded
	yielded bool            // handler blocked and released its worker slot
	running bool            // a worker is (or was) executing the handler
}

// classifyMsg peeks a message's ordering class from its encoded form.
func classifyMsg(msg *wire.Msg) (kind itemKind, lane uint64, async bool) {
	if msg.Type != wire.MsgCall {
		return itemSessionBarrier, 0, false // MsgLoad, MsgSync
	}
	b := msg.Body
	if len(b) < 28 || binary.BigEndian.Uint32(b[0:4]) != 1 {
		return itemGlobalBarrier, 0, false
	}
	seq := binary.BigEndian.Uint64(b[4:12])
	return itemCall, binary.BigEndian.Uint64(b[20:28]), seq == 0
}

// peekCallMeta peeks a single-call batch's seq and deadline budget (µs)
// from its encoded form, for shed decisions that must not decode the
// arguments. ok is false for multi-call batches and anything too short.
func peekCallMeta(msg *wire.Msg) (seq, budgetUS uint64, ok bool) {
	b := msg.Body
	if msg.Type != wire.MsgCall || len(b) < 28 || binary.BigEndian.Uint32(b[0:4]) != 1 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(b[4:12]), binary.BigEndian.Uint64(b[12:20]), true
}

// itemQueue is the runnable FIFO: append-push, head-index pop with the
// same compaction discipline as msgQueue, so a busy server does not grow a
// dead prefix of drained slots.
type itemQueue struct {
	buf  []*dispatchItem
	head int
}

func (q *itemQueue) push(it *dispatchItem) { q.buf = append(q.buf, it) }

func (q *itemQueue) len() int { return len(q.buf) - q.head }

func (q *itemQueue) pop() *dispatchItem {
	if q.head >= len(q.buf) {
		return nil
	}
	it := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return it
}

// executor runs every session's queued messages on a bounded worker pool,
// ordered by the dependency lanes above. One executor serves the whole
// server: the frontier must be server-wide because the handle table
// dedups objects server-wide, so two sessions can name the same object.
type executor struct {
	srv     *Server
	workers int // target count of unblocked workers

	mu         sync.Mutex
	cond       sync.Cond // signalled when runnable gains an item
	closed     bool
	runnable   itemQueue
	frontier   map[uint64]*dispatchItem   // object id → latest incomplete item
	items      map[*dispatchItem]struct{} // every incomplete item
	lastGlobal *dispatchItem              // latest incomplete global barrier

	alive   int // live worker goroutines (running, parked or yielded)
	parked  int // workers waiting in cond.Wait
	blocked int // workers inside a yielded (blocked) handler

	running int    // items being executed right now
	peak    int    // high-water mark of running
	stalls  uint64 // handler blocks that released a worker slot

	// bound maps worker goroutine id → its current item, the same
	// discipline as the task package's current-task registry; boundN gates
	// the stack parse off every path when no executor work is live.
	bound  sync.Map
	boundN atomic.Int64

	pool sync.Pool // recycled dispatchItems
	wg   sync.WaitGroup
}

func newExecutor(srv *Server, workers int) *executor {
	x := &executor{
		srv:      srv,
		workers:  workers,
		frontier: make(map[uint64]*dispatchItem),
		items:    make(map[*dispatchItem]struct{}),
	}
	x.cond.L = &x.mu
	return x
}

func (x *executor) getItem() *dispatchItem {
	if it, _ := x.pool.Get().(*dispatchItem); it != nil {
		return it
	}
	return &dispatchItem{}
}

func (x *executor) putItem(it *dispatchItem) {
	w := it.waiters[:0]
	*it = dispatchItem{waiters: w}
	x.pool.Put(it)
}

// enqueue publishes one message into the dependency graph. Called from the
// session's RPC read goroutine, so it must never block on handler work.
func (x *executor) enqueue(sess *session, msg *wire.Msg) {
	kind, lane, async := classifyMsg(msg)
	it := x.getItem()
	it.sess, it.msg = sess, msg
	it.kind, it.lane, it.async = kind, lane, async
	sess.execActive.Add(1)

	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		sess.execActive.Add(-1)
		msg.Release()
		x.putItem(it)
		return
	}
	deps := 0
	// Duplicate edges (a barrier that is both the session barrier and in
	// the session's item set, say) are harmless: each edge appends one
	// waiter entry and counts one dep, so the bookkeeping stays balanced.
	addDep := func(d *dispatchItem) {
		if d != nil && !d.done {
			d.waiters = append(d.waiters, it)
			deps++
		}
	}
	switch kind {
	case itemCall:
		addDep(x.frontier[lane])
		addDep(sess.execLastAsync)
		addDep(sess.execBarrier)
		addDep(x.lastGlobal)
		x.frontier[lane] = it
		if async {
			sess.execLastAsync = it
		}
	case itemSessionBarrier:
		for d := range sess.execItems {
			addDep(d)
		}
		addDep(x.lastGlobal)
		sess.execBarrier = it
	case itemGlobalBarrier:
		for d := range x.items {
			addDep(d)
		}
		x.lastGlobal = it
	}
	it.deps = deps
	x.items[it] = struct{}{}
	sess.execItems[it] = struct{}{}
	if deps == 0 {
		x.makeRunnableLocked(it)
	}
	x.mu.Unlock()
}

// makeRunnableLocked queues an item whose dependencies are settled and
// makes sure a worker will pick it up; x.mu must be held.
func (x *executor) makeRunnableLocked(it *dispatchItem) {
	if x.closed {
		return
	}
	x.runnable.push(it)
	x.ensureWorkerLocked()
}

// ensureWorkerLocked guarantees one more runnable item will be serviced:
// it reserves a parked worker (decrementing parked HERE, not when the
// worker wakes — two Signals racing one still-parked worker would
// otherwise coalesce into one wake and strand an item), or grows the pool
// if it is under target. If neither applies, every worker is busy and the
// item will be picked up by whichever loops next; x.mu must be held.
func (x *executor) ensureWorkerLocked() {
	if x.closed {
		return
	}
	if x.parked > 0 {
		x.parked--
		x.cond.Signal()
	} else if x.alive-x.blocked < x.workers {
		x.alive++
		x.wg.Add(1)
		go x.worker()
	}
}

// completeLocked retires an item for ordering purposes — on handler
// completion, or early at yield — releasing its dependents; x.mu held.
func (x *executor) completeLocked(it *dispatchItem) {
	if it.done {
		return
	}
	it.done = true
	delete(x.items, it)
	delete(it.sess.execItems, it)
	if it.kind == itemCall && x.frontier[it.lane] == it {
		delete(x.frontier, it.lane)
	}
	if it.sess.execLastAsync == it {
		it.sess.execLastAsync = nil
	}
	if it.sess.execBarrier == it {
		it.sess.execBarrier = nil
	}
	if x.lastGlobal == it {
		x.lastGlobal = nil
	}
	for _, w := range it.waiters {
		w.deps--
		if w.deps == 0 && !w.done {
			x.makeRunnableLocked(w)
		}
	}
	it.waiters = it.waiters[:0]
}

// worker executes runnable items until the pool shrinks or the executor
// closes. Workers are plain goroutines, not tasks: handlers for distinct
// objects genuinely run in parallel.
func (x *executor) worker() {
	defer x.wg.Done()
	gid := task.GoID()
	defer x.bound.Delete(gid)
	x.mu.Lock()
	for {
		if x.closed {
			x.alive--
			x.mu.Unlock()
			return
		}
		it := x.runnable.pop()
		if it == nil {
			if x.alive-x.blocked > x.workers {
				// A yielded handler resumed, putting the pool over target:
				// shed this worker now that the queue is empty. (Shedding
				// only on an empty queue means a surplus worker can run a
				// transient extra item, but can never strand one.)
				x.alive--
				x.mu.Unlock()
				return
			}
			x.parked++
			x.cond.Wait()
			// parked was decremented by the signaller (reservation) or
			// zeroed collectively at close; not here.
			continue
		}
		it.running = true
		x.running++
		if x.running > x.peak {
			x.peak = x.running
		}
		x.mu.Unlock()

		x.bound.Store(gid, it)
		x.boundN.Add(1)
		it.sess.execMsg(it.msg) // releases the message
		it.msg = nil
		x.bound.Store(gid, (*dispatchItem)(nil))
		x.boundN.Add(-1)

		x.finish(it)
		x.mu.Lock()
	}
}

// finish retires an executed item: ordering completion (unless the handler
// already yielded), reply-flush accounting, and recycling.
func (x *executor) finish(it *dispatchItem) {
	sess := it.sess
	x.mu.Lock()
	x.running--
	yielded := it.yielded
	x.completeLocked(it)
	x.mu.Unlock()

	if yielded {
		// The session's active count already dropped at yield, so the
		// reply this handler buffered after resuming needs its own flush —
		// the same rule as the serial dispatcher's handed-off task.
		sess.flushReplies()
	} else if sess.execActive.Add(-1) == 0 {
		sess.flushReplies()
	}
	x.putItem(it)
}

// currentItem resolves the item the calling goroutine is executing, or nil
// when called outside executor work (serial mode, client goroutines,
// server-side tasks). The atomic gate keeps the stack parse off every
// path while no executor handler is live.
func (x *executor) currentItem() *dispatchItem {
	if x == nil || x.boundN.Load() == 0 {
		return nil
	}
	if v, ok := x.bound.Load(task.GoID()); ok {
		if it, _ := v.(*dispatchItem); it != nil {
			return it
		}
	}
	return nil
}

// yieldCurrent is the executor's hand-off: a handler about to block for
// the wire (distributed upcall, forwarded synchronous call, relayed Sync)
// completes its item for ordering purposes and releases its worker slot so
// a replacement can keep the lanes draining. Returns the item to pass to
// resume, or nil when the caller is not an executor worker. Safe on a nil
// executor (serial mode).
func (x *executor) yieldCurrent() *dispatchItem {
	it := x.currentItem()
	if it == nil {
		return nil
	}
	first := false
	x.mu.Lock()
	x.blocked++
	x.stalls++
	if !it.yielded {
		it.yielded = true
		first = true
		x.completeLocked(it)
	}
	if x.runnable.len() > 0 {
		// This yield freed one slot; hand it to a queued item.
		x.ensureWorkerLocked()
	}
	x.mu.Unlock()
	if first && it.sess.execActive.Add(-1) == 0 {
		// Nothing else in flight for this session: push buffered replies
		// now, or a client task we are about to wait on could itself be
		// waiting on one of them.
		it.sess.flushReplies()
	}
	return it
}

// resume reverses yieldCurrent's worker accounting once the blocking
// operation is over; the surplus worker (this one, or an idle one) sheds
// itself between items. Safe on a nil executor or nil item.
func (x *executor) resume(it *dispatchItem) {
	if x == nil || it == nil {
		return
	}
	x.mu.Lock()
	x.blocked--
	x.mu.Unlock()
}

// close stops the pool: undelivered messages are released, workers drain
// out. Items mid-handler finish on their own; their sessions are already
// shut down, so late replies fail harmlessly at the wire.
func (x *executor) close() {
	if x == nil {
		return
	}
	var drop []*dispatchItem
	x.mu.Lock()
	x.closed = true
	for it := range x.items {
		if !it.running {
			drop = append(drop, it)
		}
	}
	for _, it := range drop {
		it.done = true
		delete(x.items, it)
		delete(it.sess.execItems, it)
	}
	x.parked = 0 // every parked worker wakes to exit; reservations are moot
	x.cond.Broadcast()
	x.mu.Unlock()
	for _, it := range drop {
		it.msg.Release()
		it.msg = nil
	}
	x.wg.Wait()
}

// stats snapshots the executor counters for MetricsSnapshot.
func (x *executor) stats() DispatchStats {
	if x == nil {
		return DispatchStats{Workers: 1}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return DispatchStats{
		Workers:      x.workers,
		PerObject:    true,
		Parallelism:  uint64(x.peak),
		QueueDepth:   uint64(len(x.items)),
		WorkerStalls: x.stalls,
	}
}
