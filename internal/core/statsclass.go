package core

import (
	"fmt"
	"reflect"
	"strings"

	"clam/internal/dynload"
)

// StatsClass is a loadable class exposing the server's instrumentation to
// remote clients — measurement as just another dynamically loaded module,
// in the spirit of the authors' IPS tool (paper reference [8]). Register
// it with RegisterStatsClass; clients then:
//
//	stats, _ := client.New("stats", 0)
//	var n int64
//	stats.CallInto("CallCount", []any{&n}, "counter.Add")
type StatsClass struct {
	srv *Server
}

// CallCount reports dispatches of "class.Method" (0 if never called).
func (s *StatsClass) CallCount(method string) int64 {
	return int64(s.srv.Metrics().Calls[method])
}

// Totals returns (syncCalls, asyncCalls, upcalls, faults).
func (s *StatsClass) Totals() (int64, int64, int64, int64) {
	m := s.srv.Metrics()
	return int64(m.SyncCalls), int64(m.AsyncCalls), int64(m.Upcalls), int64(m.Faults)
}

// Resilience returns (reconnects, replayedCalls, dedupDrops,
// retransmitDrops) — the at-most-once ledger a crash-restart test
// audits remotely.
func (s *StatsClass) Resilience() (int64, int64, int64, int64) {
	m := s.srv.Metrics()
	r := m.Resilience
	return int64(r.Reconnects), int64(r.ReplayedCalls), int64(r.DedupDrops), int64(r.RetransmitDrops)
}

// Transport returns (shmSessions, socketFallbacks, doorbellWakeups,
// writevFlushes) — enough to tell remotely whether same-host clients are
// actually riding the rings and how often the slow paths fire.
func (s *StatsClass) Transport() (int64, int64, int64, int64) {
	t := s.srv.Metrics().Transport
	return int64(t.ShmSessions), int64(t.SocketFallbacks),
		int64(t.DoorbellWakeups), int64(t.WritevFlushes)
}

// Overload returns (budgetedCalls, shed, cancelsReceived,
// handlerCancels) — shed sums the expired/cancelled/admission refusals,
// enough to audit the deadline machinery (DESIGN.md §6.8) remotely.
func (s *StatsClass) Overload() (int64, int64, int64, int64) {
	o := s.srv.Metrics().Overload
	return int64(o.BudgetedCalls),
		int64(o.ShedExpired + o.ShedCancelled + o.ShedAdmission),
		int64(o.CancelsReceived), int64(o.HandlerCancels)
}

// Sessions reports connected clients.
func (s *StatsClass) Sessions() int64 {
	return int64(s.srv.SessionCount())
}

// Loaded lists the loaded classes as "name vN" strings.
func (s *StatsClass) Loaded() []string {
	var out []string
	for _, l := range s.srv.Loader().LoadedList() {
		out = append(out, fmt.Sprintf("%s v%d", l.Name, l.Version))
	}
	return out
}

// Top returns the busiest methods, most-called first.
func (s *StatsClass) Top(n int64) []string {
	return s.srv.Metrics().TopCalls(int(n))
}

// Summary renders a one-line report.
func (s *StatsClass) Summary() string {
	m := s.srv.Metrics()
	return fmt.Sprintf("calls=%d/%d batches=%d upcalls=%d(%d failed) faults=%d loads=%d top=[%s]",
		m.SyncCalls, m.AsyncCalls, m.Batches, m.Upcalls, m.UpcallFailures,
		m.Faults, m.Loads, strings.Join(m.TopCalls(3), " "))
}

// RegisterStatsClass adds the "stats" class to lib; instances bind to
// whichever server loads them via the construction environment.
func RegisterStatsClass(lib *dynload.Library) error {
	return lib.Register(dynload.Class{
		Name:    "stats",
		Version: 1,
		Type:    reflect.TypeOf(&StatsClass{}),
		New: func(env any) (any, error) {
			e, ok := env.(*Env)
			if !ok || e.Server == nil {
				return nil, fmt.Errorf("clam: stats class requires a server environment, got %T", env)
			}
			return &StatsClass{srv: e.Server}, nil
		},
	})
}
