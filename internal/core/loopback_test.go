package core

import (
	"errors"
	"testing"
)

func TestSelfDialFullProtocol(t *testing.T) {
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	defer srv.Close()
	c, err := SelfDial(srv, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(4)); err != nil {
		t.Fatal(err)
	}
	obj.Async("Add", int64(5))
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil || total != 9 {
		t.Fatalf("total=%d err=%v", total, err)
	}

	// Distributed upcalls work over the pipe too.
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Call("Register", func(x int32, s string) int32 { return x + 1 }); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(41), "pipe"); err != nil || sum != 42 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
}

func TestPipeConnAfterClose(t *testing.T) {
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	srv.Close()
	if _, err := srv.PipeConn(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("err = %v, want ErrServerClosed", err)
	}
	if _, err := SelfDial(srv); err == nil {
		t.Error("SelfDial to closed server succeeded")
	}
}

func TestSelfDialMultipleClients(t *testing.T) {
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	defer srv.Close()
	obj, _, err := srv.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("shared", obj)
	for i := 0; i < 3; i++ {
		c, err := SelfDial(srv, WithClientLog(func(string, ...any) {}))
		if err != nil {
			t.Fatal(err)
		}
		shared, err := c.NamedObject("shared")
		if err != nil {
			t.Fatal(err)
		}
		if err := shared.Call("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if got := obj.(*counter).Total(); got != 3 {
		t.Errorf("total = %d", got)
	}
}
