package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam/internal/handle"
	"clam/internal/rpc"
)

func TestHelloAssignsSessions(t *testing.T) {
	srv, path := startServer(t)
	c1 := dialClient(t, path)
	c2 := dialClient(t, path)
	if c1.SessionID() == 0 || c1.SessionID() == c2.SessionID() {
		t.Errorf("session ids: %d, %d", c1.SessionID(), c2.SessionID())
	}
	if srv.SessionCount() != 2 {
		t.Errorf("server sees %d sessions", srv.SessionCount())
	}
}

func TestLoadAndCall(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	classID, version, err := c.LoadClass("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if classID == 0 || version != 1 {
		t.Errorf("load: class=%d v=%d", classID, version)
	}
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(40)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", 2); err != nil { // width conversion int→int64
		t.Fatal(err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 42 {
		t.Errorf("total = %d", total)
	}
}

func TestLoadUnknownClass(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	if _, _, err := c.LoadClass("no-such-class", 0); err == nil {
		t.Error("loading unknown class succeeded")
	}
	if _, err := c.New("counter", 99); err == nil {
		t.Error("instantiating with impossible min version succeeded")
	}
}

func TestApplicationErrorCrossesWire(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	var q int64
	err = obj.CallInto("Div", []any{&q}, int64(1), int64(0))
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusAppError {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(re.Msg, "divide by zero") {
		t.Errorf("msg = %q", re.Msg)
	}
	// The connection stays healthy after an application error.
	if err := obj.CallInto("Div", []any{&q}, int64(6), int64(3)); err != nil || q != 2 {
		t.Errorf("follow-up call: q=%d err=%v", q, err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	err := obj.Call("Bogus")
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("err = %v", err)
	}
}

func TestInOutPointerOverWire(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	v := vec2{X: 3, Y: 4}
	if err := obj.Call("Scale", int64(10), &v); err != nil {
		t.Fatal(err)
	}
	if v.X != 30 || v.Y != 40 {
		t.Errorf("v = %+v, server mutation not applied", v)
	}
}

func TestAsyncBatchingOrderAndSync(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	for i := 0; i < 10; i++ {
		if err := obj.Async("Record", fmtArgs("event-", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is guaranteed delivered until a synchronization point.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	var log []string
	// Log returns a slice result.
	srvObj := obj
	if err := srvObj.CallInto("Log", []any{&log}); err != nil {
		t.Fatal(err)
	}
	if len(log) != 10 {
		t.Fatalf("log = %v", log)
	}
	for i, e := range log {
		if e != fmtArgs("event-", i) {
			t.Errorf("log[%d] = %q: batched calls reordered", i, e)
		}
	}
}

func TestSyncCallFlushesBatch(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	for i := 0; i < 5; i++ {
		obj.Async("Add", int64(1))
	}
	var total int64
	// The synchronous call travels in the same message, after the batch.
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total = %d: sync call overtook batched calls", total)
	}
	_ = srv
}

func TestObjectPointerReturnsBecomeRemotes(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	p, err := c.New("parent", 0)
	if err != nil {
		t.Fatal(err)
	}
	var kid *Remote
	if err := p.CallInto("Child", []any{&kid}, int64(0)); err != nil {
		t.Fatal(err)
	}
	if kid == nil {
		t.Fatal("nil remote for existing child")
	}
	var name string
	if err := kid.CallInto("Name", []any{&name}); err != nil {
		t.Fatal(err)
	}
	if name != "alice" {
		t.Errorf("name = %q", name)
	}
	// Out-of-range child comes back as a nil remote.
	var none *Remote
	if err := p.CallInto("Child", []any{&none}, int64(99)); err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Errorf("none = %v, want nil", none)
	}
}

func TestObjectPointerPassedBackIn(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	p, _ := c.New("parent", 0)
	var kid *Remote
	if err := p.CallInto("Child", []any{&kid}, int64(1)); err != nil {
		t.Fatal(err)
	}
	var idx int64
	// Passing the handle back in resolves to the same server object.
	if err := p.CallInto("Adopt", []any{&idx}, kid); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("Adopt found index %d, want 1 (identity lost)", idx)
	}
}

func TestHandleReuseIsStable(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	p, _ := c.New("parent", 0)
	var k1, k2 *Remote
	p.CallInto("Child", []any{&k1}, int64(0))
	p.CallInto("Child", []any{&k2}, int64(0))
	if k1.Handle() != k2.Handle() {
		t.Errorf("same object exported twice with different handles: %v vs %v", k1.Handle(), k2.Handle())
	}
}

func TestForgedHandleRejected(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	forged := &Remote{c: c, h: handle.Handle{ID: obj.Handle().ID, Tag: obj.Handle().Tag ^ 1}}
	err := forged.Call("Add", int64(1))
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(re.Msg, "tag mismatch") {
		t.Errorf("msg = %q", re.Msg)
	}
}

func TestKindMismatchOverWire(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	err := obj.Call("Add", "not a number")
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("err = %v", err)
	}
}

func TestDistributedUpcall(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	var mu sync.Mutex
	handler := func(x int32, s string) int32 {
		mu.Lock()
		got = append(got, fmtArgs(s, ":", x))
		mu.Unlock()
		return x * 2
	}
	if err := n.Call("Register", handler); err != nil {
		t.Fatal(err)
	}
	var count int64
	if err := n.CallInto("Count", []any{&count}); err != nil || count != 1 {
		t.Fatalf("count=%d err=%v", count, err)
	}
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(21), "mouse"); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Errorf("upcall result sum = %d", sum)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "mouse:21" {
		t.Errorf("handler saw %v", got)
	}
}

func TestMultipleUpcallRegistrations(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	n, _ := c.New("notifier", 0)
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		if err := n.Call("Register", func(x int32, s string) int32 {
			calls.Add(1)
			return 1
		}); err != nil {
			t.Fatal(err)
		}
	}
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(0), "e"); err != nil {
		t.Fatal(err)
	}
	if sum != 3 || calls.Load() != 3 {
		t.Errorf("sum=%d calls=%d", sum, calls.Load())
	}
	if c.ProcCount() != 3 {
		t.Errorf("client holds %d procs", c.ProcCount())
	}
}

func TestUpcallsFromTwoClientsIsolated(t *testing.T) {
	srv, path := startServer(t)
	// One shared notifier published by name.
	obj, _, err := srv.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("notifier", obj)

	c1 := dialClient(t, path)
	c2 := dialClient(t, path)
	n1, err := c1.NamedObject("notifier")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := c2.NamedObject("notifier")
	if err != nil {
		t.Fatal(err)
	}
	var got1, got2 atomic.Int32
	if err := n1.Call("Register", func(x int32, s string) int32 { got1.Add(1); return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := n2.Call("Register", func(x int32, s string) int32 { got2.Add(1); return 10 }); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := n1.CallInto("Trigger", []any{&sum}, int32(1), "e"); err != nil {
		t.Fatal(err)
	}
	if sum != 11 {
		t.Errorf("sum = %d: upcalls to both clients should contribute", sum)
	}
	if got1.Load() != 1 || got2.Load() != 1 {
		t.Errorf("handler counts: %d, %d", got1.Load(), got2.Load())
	}
}

// The reentrant pattern behind the sweep example's finale: an upcall
// handler makes an RPC back into the server while the server task that
// made the upcall is still blocked.
func TestReentrantCallDuringUpcall(t *testing.T) {
	srv, path := startServer(t)
	obj, _, err := srv.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("counter", obj)

	c := dialClient(t, path)
	n, _ := c.New("notifier", 0)
	cnt, err := c.NamedObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Call("Register", func(x int32, s string) int32 {
		// Call back into the server from inside the upcall handler.
		if err := cnt.Call("Add", int64(x)); err != nil {
			t.Errorf("reentrant call: %v", err)
			return -1
		}
		return x
	}); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(7), "go"); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Errorf("sum = %d", sum)
	}
	var total int64
	if err := cnt.CallInto("Total", []any{&total}); err != nil || total != 7 {
		t.Errorf("total=%d err=%v", total, err)
	}
}

func TestFaultIsolationSyncCall(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	f, _ := c.New("faulty", 0)
	err := f.Call("Crash")
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusFault {
		t.Fatalf("err = %v, want fault status", err)
	}
	// The server survived the fault.
	var one int64
	if err := f.CallInto("Fine", []any{&one}); err != nil || one != 1 {
		t.Errorf("server did not survive the fault: %v", err)
	}
}

func TestFaultReportUpcallForAsyncCall(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	reports := make(chan FaultReport, 1)
	c.OnFault(func(r FaultReport) {
		select {
		case reports <- r:
		default:
		}
	})
	f, _ := c.New("faulty", 0)
	if err := f.Async("Crash"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-reports:
		if r.Class != "faulty" || r.Method != "Crash" {
			t.Errorf("report = %+v", r)
		}
		if !strings.Contains(r.String(), "faulty.Crash") {
			t.Errorf("report string = %q", r.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no fault report arrived")
	}
}

func TestNamedObjectMissing(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	if _, err := c.NamedObject("ghost"); err == nil {
		t.Error("NamedObject(ghost) succeeded")
	}
}

func TestUnloadStopsDispatch(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	if err := c.Unload("counter", 1); err != nil {
		t.Fatal(err)
	}
	err := obj.Call("Add", int64(1))
	var re *rpc.RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("call after unload: %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	_, addr := tcpServer(t)
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(5)); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil || total != 5 {
		t.Errorf("total=%d err=%v", total, err)
	}
}

func TestClientCloseLeavesServerServing(t *testing.T) {
	srv, path := startServer(t)
	c1 := dialClient(t, path)
	obj, _ := c1.New("counter", 0)
	obj.Call("Add", int64(1))
	c1.Close()

	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("server still tracks %d sessions", srv.SessionCount())
	}

	c2 := dialClient(t, path)
	o2, err := c2.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.Call("Add", int64(2)); err != nil {
		t.Errorf("second client broken: %v", err)
	}
}

func TestCallAfterClose(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	c.Close()
	if err := obj.Call("Add", int64(1)); err == nil {
		t.Error("call on closed client succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, path := startServer(t)
	obj, _, err := srv.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetNamed("shared", obj)

	const clients, per = 4, 25
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial("unix", path)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			shared, err := c.NamedObject("shared")
			if err != nil {
				t.Errorf("named: %v", err)
				return
			}
			for j := 0; j < per; j++ {
				if err := shared.Call("Add", int64(1)); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	c := dialClient(t, path)
	shared, _ := c.NamedObject("shared")
	if err := shared.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != clients*per {
		t.Errorf("total = %d, want %d", total, clients*per)
	}
}

func TestUntypedNilArgRejected(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	if err := obj.Call("Add", nil); err == nil {
		t.Error("untyped nil argument accepted")
	}
}

func TestRemoteString(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	if s := obj.String(); !strings.Contains(s, "remote(") {
		t.Errorf("String() = %q", s)
	}
}
