package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/bundle"
	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/rpc"
	"clam/internal/task"
	"clam/internal/wire"
	"clam/internal/xdr"
)

// session is the server side of one client connection pair: the RPC
// channel it was created with and the upcall channel that attaches later
// (§4.4). Incoming call batches are executed in order by a dispatcher
// task; when a handler blocks in a distributed upcall, dispatching is
// handed to a fresh task so the server keeps serving — in particular the
// reentrant case where the client's upcall handler calls back into the
// server.
type session struct {
	id  uint64
	srv *Server

	rpcConn *wire.Conn

	// The upcall gate bounds concurrent distributed upcalls per client:
	// "we allow only one upcall to be active per client process. This
	// limitation simplifies our first implementation and may be relaxed
	// in future designs" (§4.4). The bound defaults to 1 (the paper's
	// design) and is raised by core.WithMaxClientUpcalls — the paper's
	// anticipated relaxation. It is NOT a plain mutex: a task that
	// blocked waiting for the gate while holding the scheduler's run
	// token would freeze every task, including the one that will release
	// the gate. Task waiters therefore Block on upFree (releasing the
	// token); plain goroutines wait on upFreeCh.
	upMu     sync.Mutex // guards upBusy, upSeq, upConn
	upBusy   int
	upMax    int
	upFree   task.Event
	upFreeCh chan struct{}
	upSeq    uint64
	upConn   *wire.Conn
	upOnce   sync.Once

	// In-flight upcall reply slots, keyed by upcall sequence number.
	waitMu sync.Mutex
	waits  map[uint64]*upcallWait

	// call-batch queue drained by dispatcher tasks. owner is the task
	// currently holding dispatch duty; both fields are guarded by qMu.
	qMu         sync.Mutex
	queue       msgQueue
	dispatching bool
	owner       *task.Task

	// replyPending marks buffered replies awaiting a flush: a dispatch
	// burst's replies ride one kernel write instead of one per message
	// (see reply / flushReplies).
	replyPending atomic.Bool

	// Liveness state: the arrival time (unix nanos) of the most recent
	// frame on each channel. lastUp is zero until the upcall channel
	// attaches. slowFails counts consecutive failed upcalls for the
	// slow-consumer guard; evicting makes eviction once-only.
	lastRPC   atomic.Int64
	lastUp    atomic.Int64
	slowFails atomic.Int32
	evicting  atomic.Bool

	closeOnce sync.Once
	closedCh  chan struct{}
}

// upcallWait is one armed reply slot: exactly one of ev/ch is set,
// depending on whether the waiter is a task or a plain goroutine.
type upcallWait struct {
	ev   *task.Event
	ch   chan *wire.Msg
	msg  *wire.Msg
	done bool
}

func newSession(srv *Server, id uint64, rpcConn *wire.Conn) *session {
	sess := &session{
		id:       id,
		srv:      srv,
		rpcConn:  rpcConn,
		upMax:    srv.maxClientUpcalls,
		upFreeCh: make(chan struct{}, 1),
		waits:    make(map[uint64]*upcallWait),
		closedCh: make(chan struct{}),
	}
	sess.lastRPC.Store(time.Now().UnixNano())
	return sess
}

// acquireUpcallGate claims an active-upcall slot, waiting in a token-safe
// way. It returns false if the session closed first.
func (sess *session) acquireUpcallGate(cur *task.Task) bool {
	for {
		sess.upMu.Lock()
		if sess.upBusy < sess.upMax {
			sess.upBusy++
			sess.upMu.Unlock()
			return true
		}
		sess.upMu.Unlock()
		select {
		case <-sess.closedCh:
			return false
		default:
		}
		if cur != nil {
			// Hand off dispatch duty first: the gate holder may need a
			// fresh dispatcher (reentrant client call) to finish.
			sess.releaseDispatch()
			cur.Block(&sess.upFree)
		} else {
			select {
			case <-sess.upFreeCh:
			case <-sess.closedCh:
				return false
			case <-time.After(50 * time.Millisecond):
				// Re-check: the release signal may have gone to a task.
			}
		}
	}
}

// releaseUpcallGate frees the slot and wakes one waiter of each kind.
func (sess *session) releaseUpcallGate() {
	sess.upMu.Lock()
	sess.upBusy--
	sess.upMu.Unlock()
	// Signal is counting, so a release that precedes the next waiter's
	// Block is not lost.
	sess.upFree.Signal()
	select {
	case sess.upFreeCh <- struct{}{}:
	default:
	}
}

// attachUpcallConn binds the client's second channel. It may be attached
// once.
func (sess *session) attachUpcallConn(c *wire.Conn) bool {
	ok := false
	sess.upOnce.Do(func() {
		sess.upMu.Lock()
		sess.upConn = c
		sess.upMu.Unlock()
		sess.lastUp.Store(time.Now().UnixNano())
		ok = true
	})
	return ok
}

// upcallConnLost runs when the upcall channel's read loop exits: any task
// parked on an upcall reply will never get one, so fail the waits now
// rather than letting them ride out the upcall timeout.
func (sess *session) upcallConnLost() {
	sess.deliverUpcallReply(0, nil, true)
}

func (sess *session) close() {
	sess.closeOnce.Do(func() {
		close(sess.closedCh)
		sess.rpcConn.Close()
		sess.upMu.Lock()
		if sess.upConn != nil {
			sess.upConn.Close()
		}
		sess.upMu.Unlock()
		// Fail any in-flight upcall wait.
		sess.deliverUpcallReply(0, nil, true)
	})
}

// ctx returns a fresh per-call bundling context wired to this session's
// hooks, per the no-global-state bundler rule (§3.3).
func (sess *session) ctx() *bundle.Ctx {
	return &bundle.Ctx{
		Objects: (*serverObjectHook)(sess),
		Procs:   (*serverProcHook)(sess),
	}
}

// --- read loops -----------------------------------------------------------

// rpcReadLoop receives messages on the RPC channel and queues work for the
// dispatcher. It returns when the connection drops.
func (sess *session) rpcReadLoop() {
	for {
		msg, err := sess.rpcConn.Recv()
		if err != nil {
			return
		}
		sess.lastRPC.Store(time.Now().UnixNano())
		switch msg.Type {
		case wire.MsgCall, wire.MsgLoad, wire.MsgSync:
			// The dispatcher owns the message now; it releases it after
			// executing it.
			sess.enqueue(msg)
		case wire.MsgPing:
			sess.srv.metrics.countHeartbeatRecv()
			seq := msg.Seq
			msg.Release()
			if err := sess.rpcConn.Send(&wire.Msg{Type: wire.MsgPong, Seq: seq}); err != nil {
				return
			}
		case wire.MsgPong:
			sess.srv.metrics.countHeartbeatRecv()
			msg.Release()
		case wire.MsgBye:
			msg.Release()
			return
		default:
			sess.srv.logf("clam: session %d: unexpected %v on rpc channel", sess.id, msg.Type)
			msg.Release()
		}
	}
}

// upcallReadLoop receives upcall replies on the upcall channel.
func (sess *session) upcallReadLoop() {
	c := sess.upConn
	for {
		msg, err := c.Recv()
		if err != nil {
			return
		}
		sess.lastUp.Store(time.Now().UnixNano())
		switch msg.Type {
		case wire.MsgUpcallReply:
			// A delivered reply is owned (and released) by the waiting
			// upcaller; an unclaimed one — late reply after a timeout — is
			// recycled here.
			if !sess.deliverUpcallReply(msg.Seq, msg, false) {
				msg.Release()
			}
		case wire.MsgPing:
			sess.srv.metrics.countHeartbeatRecv()
			seq := msg.Seq
			msg.Release()
			if err := c.Send(&wire.Msg{Type: wire.MsgPong, Seq: seq}); err != nil {
				return
			}
		case wire.MsgPong:
			sess.srv.metrics.countHeartbeatRecv()
			msg.Release()
		case wire.MsgBye:
			msg.Release()
			return
		default:
			sess.srv.logf("clam: session %d: unexpected %v on upcall channel", sess.id, msg.Type)
			msg.Release()
		}
	}
}

// --- liveness ---------------------------------------------------------------

// startHeartbeat launches the per-session liveness loop if the server was
// configured with WithHeartbeat. It pings both channels every interval and
// evicts the session when either channel has been silent past the window.
func (sess *session) startHeartbeat() {
	if sess.srv.hbInterval <= 0 {
		return
	}
	sess.srv.wg.Add(1)
	go func() {
		defer sess.srv.wg.Done()
		sess.heartbeatLoop()
	}()
}

func (sess *session) heartbeatLoop() {
	ticker := time.NewTicker(sess.srv.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-sess.closedCh:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		window := sess.srv.hbWindow.Nanoseconds()
		if now-sess.lastRPC.Load() > window {
			sess.evict("liveness window missed on rpc channel")
			return
		}
		if up := sess.lastUp.Load(); up != 0 && now-up > window {
			sess.evict("liveness window missed on upcall channel")
			return
		}
		sent := 0
		if err := sess.rpcConn.Send(&wire.Msg{Type: wire.MsgPing}); err == nil {
			sent++
		}
		sess.upMu.Lock()
		up := sess.upConn
		sess.upMu.Unlock()
		if up != nil {
			if err := up.Send(&wire.Msg{Type: wire.MsgPing}); err == nil {
				sent++
			}
		}
		sess.srv.metrics.countHeartbeat(sent)
	}
}

// evict terminates the session for cause: a final FaultReport notice goes
// out on the upcall channel (best effort — the client may be the reason we
// are here), every parked upcall wait is failed so server tasks unblock,
// and the session is dropped. Idempotent.
func (sess *session) evict(reason string) {
	if !sess.evicting.CompareAndSwap(false, true) {
		return
	}
	sess.srv.metrics.countEviction()
	sess.srv.logf("clam: session %d: evicted: %s", sess.id, reason)
	sess.upMu.Lock()
	up := sess.upConn
	sess.upMu.Unlock()
	if up != nil {
		report := FaultReport{Class: "clam.session", Method: "evict", Msg: reason}
		sc := rpc.GetScratch()
		if err := report.bundle(sc.Encoder()); err == nil {
			up.Send(&wire.Msg{Type: wire.MsgError, Body: sc.Bytes()})
		}
		sc.Release()
	}
	sess.srv.dropSession(sess)
}

// --- dispatcher -----------------------------------------------------------

// msgQueue is the dispatch queue: append-push, head-index pop. Popping
// nils the drained slot — the old `queue = queue[1:]` drain kept every
// drained *wire.Msg reachable through the backing array until the whole
// array was dropped, pinning message bodies long after their calls
// finished (and, with pooled frames, keeping them out of the pool's
// reach for reuse accounting).
type msgQueue struct {
	buf  []*wire.Msg
	head int
}

func (q *msgQueue) push(m *wire.Msg) { q.buf = append(q.buf, m) }

func (q *msgQueue) len() int { return len(q.buf) - q.head }

func (q *msgQueue) pop() *wire.Msg {
	if q.head >= len(q.buf) {
		return nil
	}
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.buf):
		// Slide the live tail down so a long-lived queue does not grow a
		// mostly-dead prefix.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

func (sess *session) enqueue(msg *wire.Msg) {
	sess.qMu.Lock()
	sess.queue.push(msg)
	spawn := !sess.dispatching
	if spawn {
		sess.dispatching = true
	}
	sess.qMu.Unlock()
	if spawn {
		if err := sess.srv.sched.Spawn(func(t *task.Task) { sess.dispatch(t) }); err != nil {
			sess.qMu.Lock()
			sess.dispatching = false
			sess.qMu.Unlock()
		}
	}
}

// dispatch drains the session queue in order. Only one dispatcher runs at
// a time, except across a distributed upcall: the blocking handler
// releases dispatch duty first (see releaseDispatch), so a new dispatcher
// may start while the old task waits for the client. Calls queued after a
// blocked call therefore keep flowing, which is what makes the client's
// reentrant call-during-upcall pattern (§4.2's sweep finale) work.
func (sess *session) dispatch(t *task.Task) {
	sess.qMu.Lock()
	sess.owner = t
	sess.qMu.Unlock()
	for {
		sess.qMu.Lock()
		if sess.owner != t {
			// Dispatch duty was released mid-batch (distributed upcall)
			// and another task now drains the queue. This task may have
			// buffered a reply after resuming (its call finished once the
			// upcall returned), so it must flush on its way out.
			sess.qMu.Unlock()
			sess.flushReplies()
			return
		}
		if sess.queue.len() == 0 {
			sess.dispatching = false
			sess.owner = nil
			sess.qMu.Unlock()
			// The burst is drained: push its buffered replies in one write.
			sess.flushReplies()
			return
		}
		msg := sess.queue.pop()
		sess.qMu.Unlock()

		// If the handler blocks for any reason — a distributed upcall, an
		// event wait inside a loaded class — dispatch duty moves to a
		// fresh task so this session's queue keeps draining. That is what
		// makes reentrant client calls during a blocked handler work.
		t.SetBlockHook(func() { sess.releaseDispatch() })
		switch msg.Type {
		case wire.MsgCall:
			sess.execBatch(msg)
		case wire.MsgLoad:
			sess.execLoad(msg)
		case wire.MsgSync:
			sess.reply(&wire.Msg{Type: wire.MsgSyncReply, Seq: msg.Seq})
		}
		t.SetBlockHook(nil)
		msg.Release()
	}
}

// releaseDispatch is called by the RUC caller just before blocking for a
// client task: it gives up dispatch duty so queued (and future) calls are
// executed by a fresh task while this one waits.
func (sess *session) releaseDispatch() {
	cur := task.Current()
	if cur == nil {
		return
	}
	sess.qMu.Lock()
	if sess.owner != cur {
		sess.qMu.Unlock()
		return
	}
	sess.owner = nil
	sess.dispatching = false
	respawn := sess.queue.len() > 0
	if respawn {
		sess.dispatching = true
	}
	sess.qMu.Unlock()
	// About to block: anything this dispatcher buffered must reach the
	// client now, or a client task we are waiting on could itself be
	// waiting on one of those replies.
	sess.flushReplies()
	if respawn {
		if err := sess.srv.sched.Spawn(func(t *task.Task) { sess.dispatch(t) }); err != nil {
			sess.qMu.Lock()
			sess.dispatching = false
			sess.qMu.Unlock()
		}
	}
}

// --- call execution -------------------------------------------------------

func (sess *session) execBatch(msg *wire.Msg) {
	sess.srv.metrics.countBatch()
	sc := rpc.GetScratch()
	defer sc.Release()
	dec := sc.Decoder(msg.Body)
	var count int
	if err := dec.Len(&count); err != nil {
		sess.srv.logf("clam: session %d: bad call batch: %v", sess.id, err)
		return
	}
	if count > rpc.MaxBatch {
		sess.srv.logf("clam: session %d: oversized batch %d", sess.id, count)
		return
	}
	for i := 0; i < count; i++ {
		var hdr rpc.CallHeader
		if err := hdr.Bundle(dec); err != nil {
			sess.srv.logf("clam: session %d: bad call header: %v", sess.id, err)
			return
		}
		sess.execCall(dec, &hdr)
	}
}

// execCall decodes, runs and answers a single call.
func (sess *session) execCall(dec *xdr.Stream, hdr *rpc.CallHeader) {
	ctx := sess.ctx()
	status, errMsg, className := rpc.StatusOK, "", ""

	var stub *rpc.MethodStub
	var recv reflect.Value
	var args []reflect.Value

	entry, err := sess.srv.handles.Entry(hdr.Obj)
	if err != nil {
		status, errMsg = rpc.StatusDispatch, err.Error()
	} else {
		loaded, lerr := sess.srv.loader.Get(entry.ClassID)
		if lerr != nil {
			status, errMsg = rpc.StatusDispatch, lerr.Error()
		} else {
			className = loaded.Name
			cs, ok := sess.srv.stubsFor(entry.ClassID)
			if !ok {
				status, errMsg = rpc.StatusDispatch, fmt.Sprintf("clam: class %d has no stubs", entry.ClassID)
			} else if stub, err = cs.Method(hdr.Method); err != nil {
				stub = nil
				status, errMsg = rpc.StatusDispatch, err.Error()
			} else {
				recv = reflect.ValueOf(entry.Obj)
			}
		}
	}

	if stub != nil {
		args, err = stub.DecodeArgs(ctx, dec)
		if err != nil {
			// The stream is now desynchronized; the rest of the batch
			// cannot be trusted, but the caller deserves an answer.
			status, errMsg = rpc.StatusDispatch, err.Error()
			stub = nil
		}
	} else {
		// Cannot decode the arguments without a stub; the remainder of
		// the batch is lost. Report and bail via sticky stream error.
		dec.SetErr(fmt.Errorf("clam: undecodable call %s", hdr.Method))
	}

	if className != "" {
		sess.srv.metrics.countCall(className, hdr.Method, hdr.Seq != 0)
	}
	var rets []reflect.Value
	if stub != nil {
		gerr := dynload.Guard(func() error {
			var appErr error
			rets, appErr = stub.Invoke(recv, args)
			return appErr
		})
		var fault *dynload.Fault
		switch {
		case gerr == nil:
		case errors.As(gerr, &fault):
			status, errMsg = rpc.StatusFault, fault.Error()
			sess.srv.metrics.countFault()
		default:
			status, errMsg = rpc.StatusAppError, gerr.Error()
		}
	}

	if hdr.Seq == 0 {
		// Asynchronous call: no reply exists, so faults and dispatch
		// failures are reported with an error upcall (§4.3) rather than
		// silently swallowed. Synchronous callers learn of faults from
		// the reply status instead.
		if status == rpc.StatusFault || status == rpc.StatusDispatch {
			sess.reportFault(className, hdr.Method, errMsg)
		}
		return
	}

	// The reply is encoded into its own scratch — the batch decoder (dec)
	// is mid-stream and its workspace cannot be shared. reply() copies the
	// body toward the kernel before returning, so releasing right after is
	// safe.
	rsc := rpc.GetScratch()
	defer rsc.Release()
	enc := rsc.Encoder()
	rh := rpc.ReplyHeader{Status: status, ErrMsg: errMsg}
	if err := rh.Bundle(enc); err != nil {
		sess.srv.logf("clam: session %d: encoding reply header: %v", sess.id, err)
		return
	}
	if status == rpc.StatusOK {
		if err := stub.EncodeReplyPayload(ctx, enc, args, rets); err != nil {
			// Fall back to a dispatch error so the client is not left
			// waiting on a half-encoded reply.
			enc = rsc.Encoder()
			rh = rpc.ReplyHeader{Status: rpc.StatusDispatch, ErrMsg: err.Error()}
			if err := rh.Bundle(enc); err != nil {
				return
			}
		}
	}
	sess.reply(&wire.Msg{Type: wire.MsgReply, Seq: hdr.Seq, Body: rsc.Bytes()})
}

// reply queues msg on the RPC channel without flushing: a dispatch
// burst's replies coalesce into one kernel write, flushed when the queue
// drains or the dispatcher blocks (flushReplies).
func (sess *session) reply(msg *wire.Msg) {
	if err := sess.rpcConn.Write(msg); err != nil {
		sess.srv.logf("clam: session %d: reply: %v", sess.id, err)
		return
	}
	sess.replyPending.Store(true)
}

// flushReplies pushes buffered replies to the kernel. The pending flag
// makes the common no-replies case (async batches) a single atomic load.
func (sess *session) flushReplies() {
	if !sess.replyPending.Swap(false) {
		return
	}
	if err := sess.rpcConn.Flush(); err != nil {
		sess.srv.logf("clam: session %d: reply flush: %v", sess.id, err)
	}
}

// --- load protocol --------------------------------------------------------

func (sess *session) execLoad(msg *wire.Msg) {
	var req loadBody
	reply := loadReplyBody{}
	sc := rpc.GetScratch()
	err := req.bundle(sc.Decoder(msg.Body))
	sc.Release()
	if err != nil {
		reply.ErrMsg = err.Error()
		sess.sendLoadReply(msg.Seq, &reply)
		return
	}

	switch req.Op {
	case loadOpLoad, loadOpLoadExact:
		var loaded *dynload.Loaded
		var err error
		if req.Op == loadOpLoadExact {
			loaded, err = sess.srv.LoadExact(req.Name, req.MinVersion)
		} else {
			loaded, err = sess.srv.Load(req.Name, req.MinVersion)
		}
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
		reply.ClassID = loaded.ID
		reply.Version = loaded.Version
	case loadOpNew, loadOpNewExact:
		env := &Env{Server: sess.srv, SessionID: sess.id}
		var obj any
		var h handle.Handle
		var err error
		if req.Op == loadOpNewExact {
			obj, h, err = sess.srv.CreateInstanceExact(req.Name, req.MinVersion, env)
		} else {
			obj, h, err = sess.srv.CreateInstance(req.Name, req.MinVersion, env)
		}
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		loaded, err := sess.srv.loader.ByType(reflect.TypeOf(obj))
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
		reply.ClassID = loaded.ID
		reply.Version = loaded.Version
		reply.Obj = h
	case loadOpUnload:
		if err := sess.srv.loader.Unload(req.Name, req.MinVersion); err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
	case loadOpNamed:
		obj, ok := sess.srv.Named(req.Name)
		if !ok {
			reply.ErrMsg = fmt.Sprintf("clam: no named instance %q", req.Name)
			break
		}
		loaded, err := sess.srv.loader.ByType(reflect.TypeOf(obj))
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		h, err := sess.srv.handles.Put(obj, loaded.ID, loaded.Version)
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
		reply.ClassID = loaded.ID
		reply.Version = loaded.Version
		reply.Obj = h
	default:
		reply.ErrMsg = fmt.Sprintf("clam: unknown load op %d", req.Op)
	}
	if reply.OK {
		sess.srv.metrics.countLoad()
	}
	sess.sendLoadReply(msg.Seq, &reply)
}

func (sess *session) sendLoadReply(seq uint64, reply *loadReplyBody) {
	sc := rpc.GetScratch()
	defer sc.Release()
	if err := reply.bundle(sc.Encoder()); err != nil {
		sess.srv.logf("clam: session %d: encoding load reply: %v", sess.id, err)
		return
	}
	sess.reply(&wire.Msg{Type: wire.MsgLoadReply, Seq: seq, Body: sc.Bytes()})
}

// --- distributed upcalls (ruc.Caller) --------------------------------------

// errNoUpcallChannel reports an upcall attempted before the client
// attached its second channel.
var errNoUpcallChannel = errors.New("clam: client has no upcall channel")

// Upcall implements ruc.Caller: it is the remote call back to the higher
// level object in the client (§4.1). The server task blocks while the
// client task carries the flow of control (§4.3); at most one upcall is
// active per client (§4.4).
func (sess *session) Upcall(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
	cur := task.Current()
	if !sess.acquireUpcallGate(cur) {
		return nil, fmt.Errorf("clam: session %d closed before upcall", sess.id)
	}
	defer sess.releaseUpcallGate()
	failed := true
	defer func() { sess.srv.metrics.countUpcall(failed) }()

	sess.upMu.Lock()
	c := sess.upConn
	sess.upSeq++
	seq := sess.upSeq
	sess.upMu.Unlock()
	if c == nil {
		return nil, errNoUpcallChannel
	}

	sc := rpc.GetScratch()
	enc := sc.Encoder()
	uh := rpc.UpcallHeader{ProcID: procID}
	if err := uh.Bundle(enc); err != nil {
		sc.Release()
		return nil, err
	}
	ctx := sess.ctx()
	if err := rpc.EncodeFuncArgs(sess.srv.reg, ctx, enc, ft, args); err != nil {
		sc.Release()
		return nil, err
	}

	// Arm the reply slot before sending so a fast client cannot race the
	// wait. The wait strategy depends on who is calling: a task blocks on
	// an event (releasing the run token so other tasks — including a new
	// dispatcher for this session — keep running), while a plain
	// goroutine waits on a channel.
	w := &upcallWait{}
	if cur != nil {
		w.ev = &task.Event{}
	} else {
		w.ch = make(chan *wire.Msg, 1)
	}
	sess.waitMu.Lock()
	sess.waits[seq] = w
	sess.waitMu.Unlock()
	defer func() {
		sess.waitMu.Lock()
		delete(sess.waits, seq)
		sess.waitMu.Unlock()
	}()

	// Buffered replies must precede the upcall: the client task about to
	// take over the flow of control may depend on them. Send copies the
	// scratch bytes before returning, so the workspace recycles here.
	sess.flushReplies()
	err := c.Send(&wire.Msg{Type: wire.MsgUpcall, Seq: seq, Body: sc.Bytes()})
	sc.Release()
	if err != nil {
		return nil, fmt.Errorf("clam: sending upcall: %w", err)
	}

	var reply *wire.Msg
	var timedOut atomic.Bool
	if cur != nil {
		// Hand off dispatch duty so this session's queue keeps draining
		// while we wait for the client task.
		sess.releaseDispatch()
		timer := time.AfterFunc(sess.srv.upcallTimeout, func() {
			timedOut.Store(true)
			sess.deliverUpcallReply(seq, nil, true)
		})
		cur.Block(w.ev)
		timer.Stop()
		sess.waitMu.Lock()
		reply = w.msg
		sess.waitMu.Unlock()
	} else {
		select {
		case reply = <-w.ch:
		case <-time.After(sess.srv.upcallTimeout):
			timedOut.Store(true)
			sess.deliverUpcallReply(seq, nil, true) // disarm the slot
		case <-sess.closedCh:
		}
	}
	if reply == nil {
		if timedOut.Load() {
			sess.srv.metrics.countUpcallTimeout()
		}
		sess.noteUpcallFailure()
		return nil, fmt.Errorf("clam: upcall %d to session %d failed (timeout or disconnect)", seq, sess.id)
	}
	// The client answered; whatever the payload says, it is not a slow
	// consumer.
	sess.slowFails.Store(0)

	dsc := rpc.GetScratch()
	rets, appErr, err := rpc.DecodeFuncResults(sess.srv.reg, sess.ctx(), dsc.Decoder(reply.Body), ft)
	dsc.Release()
	reply.Release()
	if err != nil {
		return nil, err
	}
	if appErr != nil {
		return nil, appErr
	}
	failed = false
	return rets, nil
}

// noteUpcallFailure records one transport-level upcall failure (no reply
// arrived) and evicts the session once the consecutive-failure count
// reaches the server's slow-consumer limit. The eviction runs on its own
// goroutine: the caller may be a task holding the scheduler's run token,
// and eviction closes connections, which can block.
func (sess *session) noteUpcallFailure() {
	n := sess.slowFails.Add(1)
	limit := sess.srv.slowConsumerLimit
	if limit <= 0 || int(n) < limit {
		return
	}
	go sess.evict(fmt.Sprintf("slow consumer: %d consecutive upcall failures", n))
}

// deliverUpcallReply completes an armed wait slot. cancel delivers a nil
// message (timeout, shutdown); seq 0 cancels every in-flight slot. It
// reports whether msg was handed to a waiter — if not (late reply after
// a timeout), the caller still owns msg and should release it.
func (sess *session) deliverUpcallReply(seq uint64, msg *wire.Msg, cancel bool) bool {
	sess.waitMu.Lock()
	defer sess.waitMu.Unlock()
	if seq == 0 {
		for _, w := range sess.waits {
			completeWaitLocked(w, nil)
		}
		return false
	}
	w, ok := sess.waits[seq]
	if !ok || w.done {
		return false
	}
	if cancel {
		msg = nil
	}
	completeWaitLocked(w, msg)
	return msg != nil
}

// completeWaitLocked finishes one slot; sess.waitMu must be held.
func completeWaitLocked(w *upcallWait, msg *wire.Msg) {
	if w.done {
		return
	}
	w.done = true
	w.msg = msg
	if w.ev != nil {
		w.ev.Signal()
	} else if w.ch != nil {
		if msg != nil {
			w.ch <- msg
		} else {
			close(w.ch)
		}
	}
}

// reportFault notifies the client that it tried to use a faulty class
// (§4.3). A new task carries the report so the failing path is not
// delayed; the report travels on the upcall channel as a MsgError.
func (sess *session) reportFault(class, method, msg string) {
	sess.srv.metrics.countFaultReport()
	report := FaultReport{Class: class, Method: method, Msg: msg}
	err := sess.srv.sched.Spawn(func(*task.Task) {
		sess.upMu.Lock()
		c := sess.upConn
		sess.upMu.Unlock()
		if c == nil {
			sess.srv.logf("clam: session %d: dropping fault report (%v): no upcall channel", sess.id, report)
			return
		}
		sc := rpc.GetScratch()
		defer sc.Release()
		if err := report.bundle(sc.Encoder()); err != nil {
			return
		}
		if err := c.Send(&wire.Msg{Type: wire.MsgError, Body: sc.Bytes()}); err != nil {
			sess.srv.logf("clam: session %d: fault report failed: %v", sess.id, err)
		}
	})
	if err != nil {
		sess.srv.logf("clam: session %d: fault report task: %v", sess.id, err)
	}
}
