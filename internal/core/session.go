package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/bundle"
	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/rpc"
	"clam/internal/task"
	"clam/internal/wire"
	"clam/internal/xdr"
)

// session is the server side of one client connection pair: the
// upward-facing role wrapper over the shared endpoint engine. It owns the
// RPC channel it was created with and the upcall channel that attaches
// later (§4.4). Incoming call batches are executed in order by a
// dispatcher task; when a handler blocks in a distributed upcall,
// dispatching is handed to a fresh task so the server keeps serving — in
// particular the reentrant case where the client's upcall handler calls
// back into the server. The embedded endpoint carries the seq/wait table
// (here numbering upcalls), reply coalescing, heartbeats and teardown;
// the session adds dispatch, the upcall gate, and the load protocol.
type session struct {
	endpoint

	id  uint64
	srv *Server

	// The upcall gate bounds concurrent distributed upcalls per client:
	// "we allow only one upcall to be active per client process. This
	// limitation simplifies our first implementation and may be relaxed
	// in future designs" (§4.4). The bound defaults to 1 (the paper's
	// design) and is raised by core.WithMaxClientUpcalls — the paper's
	// anticipated relaxation. It is NOT a plain mutex: a task that
	// blocked waiting for the gate while holding the scheduler's run
	// token would freeze every task, including the one that will release
	// the gate. Task waiters therefore Block on upFree (releasing the
	// token); plain goroutines wait on upFreeCh.
	gateMu   sync.Mutex // guards upBusy
	upBusy   int
	upMax    int
	upFree   task.Event
	upFreeCh chan struct{}

	// call-batch queue drained by dispatcher tasks. owner is the task
	// currently holding dispatch duty; both fields are guarded by qMu.
	qMu         sync.Mutex
	queue       msgQueue
	dispatching bool
	owner       *task.Task

	// slowFails counts consecutive failed upcalls for the slow-consumer
	// guard; evicting makes eviction once-only.
	slowFails atomic.Int32
	evicting  atomic.Bool

	// fromPeer marks a session whose client is another mesh member's peer
	// link (set by MeshClass.Announce). Its Syncs relay only down chain
	// links: mesh edges form cycles, so a Sync crosses each at most once
	// — the member that received the client's Sync relays it mesh-wide,
	// and members receiving that relay stop (mesh.go).
	fromPeer atomic.Bool

	// Per-object executor bookkeeping (executor.go); all three references
	// are guarded by the server executor's mutex, never qMu. execActive
	// counts this session's in-flight items for reply coalescing: the last
	// finisher flushes the burst's buffered replies in one write.
	execItems     map[*dispatchItem]struct{}
	execBarrier   *dispatchItem // latest incomplete MsgLoad/MsgSync
	execLastAsync *dispatchItem // latest incomplete async single call
	execActive    atomic.Int64

	// relay is the ruc.Caller identity under which forwarded procedure
	// pointers are bound (see forward.go): same upcall path, but each hop
	// crossed is counted.
	relay *relayCaller

	// Session-resurrection state. token is the durable identity granted at
	// hello when the server runs with WithResumeWindow (zero otherwise);
	// epoch counts successful resumes; parked marks a session whose links
	// died but whose state — handle table entries, RUC registrations, the
	// receive window — is retained until parkTimer fires. epoch, parked
	// and parkTimer are guarded by the endpoint's resMu; recvSeq is the
	// highest numbered MsgCall frame received, read/written only by the
	// (single) RPC read loop and reported to a resuming client.
	token     uint64
	epoch     uint32
	parked    bool
	parkTimer *time.Timer
	recvSeq   atomic.Uint64

	// Journaled receive high-water mark (journal.go). The per-object
	// executor completes frames out of order, but a durable mark must mean
	// "everything at or below executed", so completions above the
	// contiguous frontier wait in markAbove until the gap fills. Only
	// touched when the server journals.
	markMu    sync.Mutex
	markHW    uint64
	markAbove map[uint64]struct{}

	// Cancellation state (DESIGN.md §6.8). cancelSet holds call seqs the
	// client abandoned (MsgCancel) that have not yet reached a worker —
	// the dispatcher consumes an entry and sheds the call instead of
	// executing it. liveCalls maps a running budgeted call's seq to its
	// context's cancel func, so a cancel arriving mid-execution interrupts
	// the handler. cancelN gates the maps with one atomic load: a session
	// that never sees a cancel pays nothing per call.
	cancelMu  sync.Mutex
	cancelSet map[uint64]struct{}
	liveCalls map[uint64]context.CancelFunc
	cancelN   atomic.Int64

	// bctx is the session's bundling context, built once in newSession:
	// the hooks are typed views of the session and Ctx carries no per-call
	// state (the no-global-state bundler rule, §3.3, is about registries,
	// not contexts), so every encode/decode shares this instance.
	bctx bundle.Ctx
}

// maxCancelSet bounds the remembered-cancel set: past it the oldest
// entries are dropped (the call then executes — cancels are advisory).
const maxCancelSet = 4096

// noteCancels records a MsgCancel's call seqs: running calls are
// interrupted through their context; queued ones are remembered for the
// dispatcher to shed.
func (sess *session) noteCancels(seqs []uint64) {
	m := sess.srv.metrics
	sess.cancelMu.Lock()
	for _, seq := range seqs {
		m.cancelsRecv.Add(1)
		if cancel, ok := sess.liveCalls[seq]; ok {
			cancel()
			delete(sess.liveCalls, seq)
			sess.cancelN.Add(-1)
			m.handlerCancels.Add(1)
			continue
		}
		if sess.cancelSet == nil {
			sess.cancelSet = make(map[uint64]struct{})
		}
		if len(sess.cancelSet) >= maxCancelSet {
			for victim := range sess.cancelSet {
				delete(sess.cancelSet, victim)
				sess.cancelN.Add(-1)
				break
			}
		}
		if _, dup := sess.cancelSet[seq]; !dup {
			sess.cancelSet[seq] = struct{}{}
			sess.cancelN.Add(1)
		}
	}
	sess.cancelMu.Unlock()
}

// takeCancel consumes a remembered cancel for seq, reporting whether the
// call should be shed. The atomic gate keeps the common no-cancels case
// to one load, off every dispatch's lock path.
func (sess *session) takeCancel(seq uint64) bool {
	if sess.cancelN.Load() == 0 {
		return false
	}
	sess.cancelMu.Lock()
	_, ok := sess.cancelSet[seq]
	if ok {
		delete(sess.cancelSet, seq)
		sess.cancelN.Add(-1)
	}
	sess.cancelMu.Unlock()
	return ok
}

// registerLive exposes a running budgeted call's cancel func to
// noteCancels; unregisterLive retracts it after the handler returns.
func (sess *session) registerLive(seq uint64, cancel context.CancelFunc) {
	sess.cancelMu.Lock()
	if sess.liveCalls == nil {
		sess.liveCalls = make(map[uint64]context.CancelFunc)
	}
	sess.liveCalls[seq] = cancel
	sess.cancelN.Add(1)
	sess.cancelMu.Unlock()
}

func (sess *session) unregisterLive(seq uint64) {
	sess.cancelMu.Lock()
	if _, ok := sess.liveCalls[seq]; ok {
		delete(sess.liveCalls, seq)
		sess.cancelN.Add(-1)
	}
	sess.cancelMu.Unlock()
}

func newSession(srv *Server, id uint64, rpcConn *wire.Conn) *session {
	sess := &session{
		id:       id,
		srv:      srv,
		upMax:    srv.maxClientUpcalls,
		upFreeCh: make(chan struct{}, 1),
	}
	if srv.exec != nil {
		sess.execItems = make(map[*dispatchItem]struct{})
	}
	if srv.resumeWindow > 0 {
		sess.token = mintToken()
	}
	e := &sess.endpoint
	e.setRPCConn(rpcConn)
	e.reg = srv.reg
	e.mkCtx = sess.ctx
	e.callTimeout = srv.upcallTimeout
	e.hbInterval = srv.hbInterval
	e.hbWindow = srv.hbWindow
	e.link = &srv.metrics.link
	e.closedCh = make(chan struct{})
	e.logf = srv.logf
	e.lastRPC.Store(time.Now().UnixNano())
	sess.bctx = bundle.Ctx{
		Objects: (*serverObjectHook)(sess),
		Procs:   (*serverProcHook)(sess),
	}
	sess.relay = &relayCaller{sess: sess}
	return sess
}

// acquireUpcallGate claims an active-upcall slot, waiting in a token-safe
// way. It returns false if the session closed first.
func (sess *session) acquireUpcallGate(cur *task.Task) bool {
	// One reusable timer for the goroutine-waiter branch: a contended gate
	// spins here many times, and a fresh time.After per spin would leave a
	// garbage timer behind each pass.
	var gateTimer *time.Timer
	defer func() {
		if gateTimer != nil {
			gateTimer.Stop()
		}
	}()
	for {
		sess.gateMu.Lock()
		if sess.upBusy < sess.upMax {
			sess.upBusy++
			sess.gateMu.Unlock()
			return true
		}
		sess.gateMu.Unlock()
		select {
		case <-sess.closedCh:
			return false
		default:
		}
		if cur != nil {
			// Hand off dispatch duty first: the gate holder may need a
			// fresh dispatcher (reentrant client call) to finish.
			sess.releaseDispatch()
			cur.Block(&sess.upFree)
		} else {
			if gateTimer == nil {
				gateTimer = time.NewTimer(50 * time.Millisecond)
			} else {
				gateTimer.Reset(50 * time.Millisecond)
			}
			select {
			case <-sess.upFreeCh:
			case <-sess.closedCh:
				return false
			case <-gateTimer.C:
				// Re-check: the release signal may have gone to a task.
			}
			if !gateTimer.Stop() {
				select {
				case <-gateTimer.C:
				default:
				}
			}
		}
	}
}

// releaseUpcallGate frees the slot and wakes one waiter of each kind.
func (sess *session) releaseUpcallGate() {
	sess.gateMu.Lock()
	sess.upBusy--
	sess.gateMu.Unlock()
	// Signal is counting, so a release that precedes the next waiter's
	// Block is not lost.
	sess.upFree.Signal()
	select {
	case sess.upFreeCh <- struct{}{}:
	default:
	}
}

// attachUpcallConn binds the client's second channel. It may be attached
// once.
func (sess *session) attachUpcallConn(c *wire.Conn) bool {
	return sess.attachUpcall(c)
}

// upcallConnLost runs when the upcall channel's read loop exits: any task
// parked on an upcall reply will never get one, so fail the waits now
// rather than letting them ride out the upcall timeout.
func (sess *session) upcallConnLost() {
	sess.waits.cancelAll()
}

func (sess *session) close() {
	sess.shutdown(false)
}

// --- session resurrection (server side) -------------------------------------

// park retains the session after its RPC link died instead of dropping it:
// the handle table entries, RUC registrations and receive window survive
// for the resume window, awaiting a reconnect that presents the token.
// Reports false when the session is not resumable (no grant, mid-eviction,
// already closed) — the caller then takes the legacy drop path.
func (sess *session) park() bool {
	if sess.token == 0 || sess.srv.resumeWindow <= 0 || sess.evicting.Load() || sess.byeSeen.Load() {
		return false
	}
	sess.resMu.Lock()
	select {
	case <-sess.closedCh:
		sess.resMu.Unlock()
		return false
	default:
	}
	sess.parked = true
	sess.linkDown.Store(true)
	// Close both channels: the client is gone, and the upcall read loop
	// should exit rather than linger on a half-dead pair.
	sess.rpcConn().Close()
	if up := sess.upcallConn(); up != nil {
		up.Close()
	}
	if sess.parkTimer != nil {
		sess.parkTimer.Stop()
	}
	sess.parkTimer = time.AfterFunc(sess.srv.resumeWindow, sess.expireIfParked)
	sess.resMu.Unlock()
	// Upcalls in flight toward the dead link fail now, not at timeout.
	sess.waits.cancelAll()
	sess.srv.logf("clam: session %d: link lost; parked for %v awaiting resume", sess.id, sess.srv.resumeWindow)
	return true
}

// expireIfParked evicts a session still parked when its window closes.
func (sess *session) expireIfParked() {
	sess.resMu.Lock()
	expired := sess.parked
	sess.resMu.Unlock()
	if !expired {
		return
	}
	select {
	case <-sess.closedCh:
		return
	default:
	}
	sess.evict("resume window expired")
}

// resumeRPC re-pairs a fresh RPC connection with this parked session. On
// success it returns the new epoch and the receive high-water mark to
// report to the client. retry=true asks the client to try again shortly
// (the old read loop has not parked the session yet).
func (sess *session) resumeRPC(c *wire.Conn, epoch uint32) (newEpoch uint32, recvSeq uint64, retry bool, err error) {
	sess.resMu.Lock()
	defer sess.resMu.Unlock()
	select {
	case <-sess.closedCh:
		return 0, 0, false, errors.New("clam: session closed")
	default:
	}
	if sess.evicting.Load() {
		return 0, 0, false, errors.New("clam: session evicted")
	}
	if !sess.parked {
		// The dead link's read loop has not returned yet (it parks the
		// session on exit). Kick the old connection so it does, and have
		// the client retry after a backoff.
		sess.rpcConn().Close()
		return 0, 0, true, errors.New("clam: session not yet parked; retry")
	}
	if epoch != sess.epoch {
		return 0, 0, false, fmt.Errorf("clam: resume epoch %d, session at %d", epoch, sess.epoch)
	}
	sess.epoch++
	sess.parked = false
	if sess.parkTimer != nil {
		sess.parkTimer.Stop()
		sess.parkTimer = nil
	}
	sess.setRPCConn(c)
	// Stamp both channels live: the upcall channel re-attaches moments
	// from now, and the heartbeat must not evict in the gap.
	now := time.Now().UnixNano()
	sess.lastRPC.Store(now)
	sess.lastUp.Store(now)
	sess.linkDown.Store(false)
	return sess.epoch, sess.recvSeq.Load(), false, nil
}

// linkIsDown reports whether the session is parked with its links
// severed, awaiting resurrection. Fan-out drains consult it to stand
// down instead of burning queued events against a dead link.
func (sess *session) linkIsDown() bool { return sess.linkDown.Load() }

// resumeUpcall re-attaches the upcall channel after a successful RPC-side
// resume; epoch must match the generation resumeRPC just minted.
func (sess *session) resumeUpcall(c *wire.Conn, epoch uint32) error {
	sess.resMu.Lock()
	defer sess.resMu.Unlock()
	select {
	case <-sess.closedCh:
		return errors.New("clam: session closed")
	default:
	}
	if epoch != sess.epoch {
		return fmt.Errorf("clam: resume epoch %d, session at %d", epoch, sess.epoch)
	}
	sess.replaceUpcall(c)
	return nil
}

// ctx returns the session's shared bundling context (see bctx).
func (sess *session) ctx() *bundle.Ctx {
	return &sess.bctx
}

// --- read loops -----------------------------------------------------------

// rpcReadLoop receives messages on the RPC channel and queues work for the
// dispatcher. It returns when the connection drops.
func (sess *session) rpcReadLoop(conn *wire.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		now := time.Now().UnixNano()
		sess.lastRPC.Store(now)
		switch msg.Type {
		case wire.MsgCancel:
			// The caller abandoned the named calls: cancel any that are
			// running, remember the rest so the dispatcher sheds them.
			if seqs, err := wire.ParseCancelBody(msg.Body); err == nil {
				sess.noteCancels(seqs)
			} else {
				sess.srv.logf("clam: session %d: %v", sess.id, err)
			}
			msg.Release()
		case wire.MsgCall, wire.MsgLoad, wire.MsgSync:
			if msg.Type == wire.MsgCall && msg.Seq != 0 {
				// Numbered batch from a resume-granted client. A frame at
				// or below the high-water mark is a replay of something
				// already executed (a duplicate a resuming client could
				// not avoid sending): drop it, which is the server half of
				// the at-most-once argument (DESIGN.md §6.3). The single
				// reader owns recvSeq, so load-then-store is safe.
				if msg.Seq <= sess.recvSeq.Load() {
					sess.link.dedups.Add(1)
					msg.Release()
					continue
				}
				sess.recvSeq.Store(msg.Seq)
			}
			// Budget anchoring: the call's remaining deadline is measured
			// from this read, so queue wait counts against the caller.
			msg.Arrived = now
			if sess.srv.maxQueueDelay > 0 {
				if sess.admitCall(msg) {
					continue // refused at admission; msg already released
				}
				if msg.Type == wire.MsgCall {
					sess.srv.metrics.pendingFrames.Add(1)
				}
			}
			// The dispatcher owns the message now; it releases it after
			// executing it.
			if x := sess.srv.exec; x != nil {
				x.enqueue(sess, msg)
			} else {
				sess.enqueue(msg)
			}
		default:
			if handled, stop := sess.demuxCommon(conn, msg); handled {
				if stop {
					return
				}
				continue
			}
			sess.srv.logf("clam: session %d: unexpected %v on rpc channel", sess.id, msg.Type)
			msg.Release()
		}
	}
}

// upcallReadLoop receives upcall replies on the upcall channel.
func (sess *session) upcallReadLoop(c *wire.Conn) {
	for {
		msg, err := c.Recv()
		if err != nil {
			return
		}
		sess.lastUp.Store(time.Now().UnixNano())
		switch msg.Type {
		case wire.MsgUpcallReply:
			// A delivered reply is owned (and released) by the waiting
			// upcaller; an unclaimed one — late reply after a timeout — is
			// recycled here.
			if !sess.waits.deliver(msg.Seq, msg, false) {
				msg.Release()
			}
		default:
			if handled, stop := sess.demuxCommon(c, msg); handled {
				if stop {
					return
				}
				continue
			}
			sess.srv.logf("clam: session %d: unexpected %v on upcall channel", sess.id, msg.Type)
			msg.Release()
		}
	}
}

// --- liveness ---------------------------------------------------------------

// startHeartbeat launches the per-session liveness loop if the server was
// configured with WithHeartbeat: the shared endpoint heartbeat, with
// linkSilent as this role's response to a dead peer.
func (sess *session) startHeartbeat() {
	if sess.hbInterval <= 0 {
		return
	}
	sess.srv.wg.Add(1)
	go func() {
		defer sess.srv.wg.Done()
		sess.heartbeatLoop(sess.linkSilent)
	}()
}

// linkSilent is the session's response to a missed liveness window. With
// a resume grant, silence is indistinguishable from link loss — a network
// partition, not a dead client — so the connections are severed (the read
// loop then parks the session for the resume window) and the liveness
// loop re-arms for the resumed link. Without a grant, the legacy response:
// evict the client.
func (sess *session) linkSilent(reason string) {
	if sess.token != 0 && sess.srv.resumeWindow > 0 && !sess.evicting.Load() && !sess.byeSeen.Load() {
		sess.srv.logf("clam: session %d: %s; severing link to park for resume", sess.id, reason)
		sess.rpcConn().Close()
		if up := sess.upcallConn(); up != nil {
			up.Close()
		}
		// The old loop returns after onDead; watch the resumed link with a
		// fresh one (it idles while the session is parked: linkDown is set).
		sess.startHeartbeat()
		return
	}
	sess.evict(reason)
}

// evict terminates the session for cause: a final FaultReport notice goes
// out on the upcall channel (best effort — the client may be the reason we
// are here), every parked upcall wait is failed so server tasks unblock,
// and the session is dropped. Idempotent.
func (sess *session) evict(reason string) {
	if !sess.evicting.CompareAndSwap(false, true) {
		return
	}
	sess.srv.metrics.countEviction()
	sess.srv.logf("clam: session %d: evicted: %s", sess.id, reason)
	if up := sess.upcallConn(); up != nil {
		report := FaultReport{Class: "clam.session", Method: "evict", Msg: reason}
		sc := rpc.GetScratch()
		if err := report.bundle(sc.Encoder()); err == nil {
			up.Send(&wire.Msg{Type: wire.MsgError, Body: sc.Bytes()})
		}
		sc.Release()
	}
	sess.srv.dropSession(sess)
}

// --- dispatcher -----------------------------------------------------------

// msgQueue is the dispatch queue: append-push, head-index pop. Popping
// nils the drained slot — the old `queue = queue[1:]` drain kept every
// drained *wire.Msg reachable through the backing array until the whole
// array was dropped, pinning message bodies long after their calls
// finished (and, with pooled frames, keeping them out of the pool's
// reach for reuse accounting).
type msgQueue struct {
	buf  []*wire.Msg
	head int
}

func (q *msgQueue) push(m *wire.Msg) { q.buf = append(q.buf, m) }

func (q *msgQueue) len() int { return len(q.buf) - q.head }

func (q *msgQueue) pop() *wire.Msg {
	if q.head >= len(q.buf) {
		return nil
	}
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.buf):
		// Slide the live tail down so a long-lived queue does not grow a
		// mostly-dead prefix.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

func (sess *session) enqueue(msg *wire.Msg) {
	sess.qMu.Lock()
	sess.queue.push(msg)
	spawn := !sess.dispatching
	if spawn {
		sess.dispatching = true
	}
	sess.qMu.Unlock()
	if spawn {
		if err := sess.srv.sched.Spawn(func(t *task.Task) { sess.dispatch(t) }); err != nil {
			sess.qMu.Lock()
			sess.dispatching = false
			sess.qMu.Unlock()
		}
	}
}

// dispatch drains the session queue in order. Only one dispatcher runs at
// a time, except across a distributed upcall: the blocking handler
// releases dispatch duty first (see releaseDispatch), so a new dispatcher
// may start while the old task waits for the client. Calls queued after a
// blocked call therefore keep flowing, which is what makes the client's
// reentrant call-during-upcall pattern (§4.2's sweep finale) work.
func (sess *session) dispatch(t *task.Task) {
	sess.qMu.Lock()
	sess.owner = t
	sess.qMu.Unlock()
	for {
		sess.qMu.Lock()
		if sess.owner != t {
			// Dispatch duty was released mid-batch (distributed upcall)
			// and another task now drains the queue. This task may have
			// buffered a reply after resuming (its call finished once the
			// upcall returned), so it must flush on its way out.
			sess.qMu.Unlock()
			sess.flushReplies()
			return
		}
		if sess.queue.len() == 0 {
			sess.dispatching = false
			sess.owner = nil
			sess.qMu.Unlock()
			// The burst is drained: push its buffered replies in one write.
			sess.flushReplies()
			return
		}
		msg := sess.queue.pop()
		sess.qMu.Unlock()

		// If the handler blocks for any reason — a distributed upcall, an
		// event wait inside a loaded class, a forwarded call awaiting a
		// lower server — dispatch duty moves to a fresh task so this
		// session's queue keeps draining. That is what makes reentrant
		// client calls during a blocked handler work.
		t.SetBlockHook(func() { sess.releaseDispatch() })
		sess.execMsg(msg)
		t.SetBlockHook(nil)
	}
}

// execMsg executes one queued message and releases it: the shared body of
// the serial dispatcher loop and the per-object executor's workers.
func (sess *session) execMsg(msg *wire.Msg) {
	seq, typ := msg.Seq, msg.Type
	switch msg.Type {
	case wire.MsgCall:
		sess.execBatch(msg)
	case wire.MsgLoad:
		sess.execLoad(msg)
	case wire.MsgSync:
		// Sync is relayed before being answered, so the §3.4 guarantee —
		// every earlier asynchronous call has executed — holds across
		// forwarding hops too.
		if sess.srv.hasPeerLinks() {
			// Relaying waits on a peer server's round trip: release the
			// worker slot meanwhile. Under the serial dispatcher the block
			// hook performs the same hand-off; yieldCurrent is a no-op there.
			// A Sync that itself arrived over a mesh link relays only down
			// chain links (acyclic), never back across the mesh — see the
			// fromPeer field.
			it := sess.srv.exec.yieldCurrent()
			sess.srv.syncPeerLinks(sess.fromPeer.Load())
			sess.srv.exec.resume(it)
		}
		sess.queueReplyFrame(wire.MsgSyncReply, msg.Seq, nil)
	}
	msg.Release()
	// The mark is written strictly after execution: journaling a frame the
	// crash then loses would silently break at-most-once on replay.
	if sess.srv.journal != nil && typ == wire.MsgCall && seq != 0 {
		sess.noteExecuted(seq)
	}
}

// releaseDispatch is called by the RUC caller just before blocking for a
// client task: it gives up dispatch duty so queued (and future) calls are
// executed by a fresh task while this one waits.
func (sess *session) releaseDispatch() {
	cur := task.Current()
	if cur == nil {
		return
	}
	sess.qMu.Lock()
	if sess.owner != cur {
		sess.qMu.Unlock()
		return
	}
	sess.owner = nil
	sess.dispatching = false
	respawn := sess.queue.len() > 0
	if respawn {
		sess.dispatching = true
	}
	sess.qMu.Unlock()
	// About to block: anything this dispatcher buffered must reach the
	// client now, or a client task we are waiting on could itself be
	// waiting on one of those replies.
	sess.flushReplies()
	if respawn {
		if err := sess.srv.sched.Spawn(func(t *task.Task) { sess.dispatch(t) }); err != nil {
			sess.qMu.Lock()
			sess.dispatching = false
			sess.qMu.Unlock()
		}
	}
}

// --- call execution -------------------------------------------------------

func (sess *session) execBatch(msg *wire.Msg) {
	sess.srv.metrics.countBatch()
	arrived := msg.Arrived
	if arrived == 0 {
		arrived = time.Now().UnixNano()
	} else if sess.srv.maxQueueDelay > 0 {
		// Feed the admission estimator: the observed queue wait (for the
		// stats block), and — once this frame finishes — its execution
		// time and the pending-frame count it no longer contributes to.
		start := time.Now()
		sess.srv.metrics.noteQueueDelay(start.UnixNano() - arrived)
		defer func() {
			m := sess.srv.metrics
			m.noteServiceTime(time.Since(start))
			m.pendingFrames.Add(-1)
		}()
	}
	sc := rpc.GetScratch()
	defer sc.Release()
	dec := sc.Decoder(msg.Body)
	var count int
	if err := dec.Len(&count); err != nil {
		sess.srv.logf("clam: session %d: bad call batch: %v", sess.id, err)
		return
	}
	if count > rpc.MaxBatch {
		sess.srv.logf("clam: session %d: oversized batch %d", sess.id, count)
		return
	}
	for i := 0; i < count; i++ {
		var hdr rpc.CallHeader
		if err := hdr.Bundle(dec); err != nil {
			sess.srv.logf("clam: session %d: bad call header: %v", sess.id, err)
			return
		}
		sess.execCall(dec, &hdr, arrived, count == 1)
	}
}

// shedCall answers a call that is being refused without execution: a
// StatusDeadline reply for synchronous calls, a fault report for
// asynchronous ones (which have no reply to carry the refusal — the same
// §4.3 channel the mesh's decode-then-refuse discipline uses).
func (sess *session) shedCall(hdr *rpc.CallHeader, why string) {
	if hdr.Seq == 0 {
		sess.reportFault("", hdr.Method, why)
		return
	}
	sess.replyStatus(hdr.Seq, rpc.StatusDeadline, why)
}

// shedEarly decides, before any argument decoding, whether a sole-call
// frame should be shed: the caller cancelled it, or its deadline budget
// was already spent while it sat queued. Only legal when nothing follows
// the call in the frame — mid-batch, refusal happens after the arguments
// are decoded so the stream stays aligned (§3.4 order is preserved either
// way: the shed call's slot still produces its reply in sequence).
func (sess *session) shedEarly(hdr *rpc.CallHeader, arrived int64) bool {
	if hdr.Seq != 0 && sess.takeCancel(hdr.Seq) {
		sess.srv.metrics.shedCancelled.Add(1)
		sess.shedCall(hdr, "cancelled by caller")
		return true
	}
	if hdr.Budget != 0 && sess.srv.shedExpired() && budgetSpent(hdr.Budget, arrived) {
		sess.srv.metrics.shedExpired.Add(1)
		sess.shedCall(hdr, "deadline budget spent before dispatch")
		return true
	}
	return false
}

// budgetSpent reports whether a call's microsecond budget, anchored at
// its frame's arrival, has already elapsed.
func budgetSpent(budgetUS uint64, arrived int64) bool {
	return time.Now().UnixNano()-arrived >= int64(budgetUS)*int64(time.Microsecond)
}

// admitCall is the admission layer (§6.8, WithMaxQueueDelay): the read
// loop offers every call frame here before queuing it. When the EWMA
// queue-wait estimate exceeds the configured ceiling — or, for a budgeted
// call, would alone exhaust the call's entire budget — a synchronous
// sole-call frame is refused right here with StatusDeadline, before it
// ever occupies a dispatch lane. Batches and asynchronous calls always
// pass: refusing mid-batch needs the dispatcher's decode discipline
// anyway, and they fall through to the shed checks there. Reports true
// when the call was refused (msg released, reply queued and flushed).
func (sess *session) admitCall(msg *wire.Msg) bool {
	seq, budgetUS, ok := peekCallMeta(msg)
	if !ok || seq == 0 {
		return false
	}
	workers := 1
	if x := sess.srv.exec; x != nil {
		workers = x.workers
	}
	est := sess.srv.metrics.queueDelayEstimate(workers)
	over := est > int64(sess.srv.maxQueueDelay)
	if !over && budgetUS != 0 && est >= int64(budgetUS)*int64(time.Microsecond) {
		over = true
	}
	if !over {
		return false
	}
	sess.srv.metrics.shedAdmission.Add(1)
	sess.replyStatus(seq, rpc.StatusDeadline, "refused at admission: dispatch queue wait exceeds budget")
	sess.flushReplies()
	// A numbered frame refused here still counts as consumed for the
	// journal's receive mark: a crash-replay of it must dedup, not run.
	if sess.srv.journal != nil && msg.Seq != 0 {
		sess.noteExecuted(msg.Seq)
	}
	msg.Release()
	return true
}

// execCall decodes, runs and answers a single call. arrived is the
// UnixNano arrival time of the carrying frame (the anchor for hdr.Budget);
// sole marks a single-call frame, where shedding may skip decoding.
func (sess *session) execCall(dec *xdr.Stream, hdr *rpc.CallHeader, arrived int64, sole bool) {
	if hdr.Budget != 0 {
		sess.srv.metrics.budgetedCalls.Add(1)
	}
	if sole && sess.shedEarly(hdr, arrived) {
		return
	}
	ctx := sess.ctx()
	status, errMsg, className := rpc.StatusOK, "", ""

	var stub *rpc.MethodStub
	var recv reflect.Value
	var args []reflect.Value

	entry, err := sess.srv.handles.Entry(hdr.Obj)
	if err != nil {
		status, errMsg = rpc.StatusDispatch, err.Error()
	} else if pr, ok := entry.Obj.(*Remote); ok {
		// A proxy entry: the object lives on a lower server this server
		// dialed. Relay the call down instead of invoking locally.
		sess.execForward(dec, hdr, pr, entry, arrived)
		return
	} else {
		loaded, lerr := sess.srv.loader.Get(entry.ClassID)
		if lerr != nil {
			status, errMsg = rpc.StatusDispatch, lerr.Error()
		} else {
			className = loaded.Name
			cs, ok := sess.srv.stubsFor(entry.ClassID)
			if !ok {
				status, errMsg = rpc.StatusDispatch, fmt.Sprintf("clam: class %d has no stubs", entry.ClassID)
			} else if stub, err = cs.Method(hdr.Method); err != nil {
				stub = nil
				status, errMsg = rpc.StatusDispatch, err.Error()
			} else {
				recv = reflect.ValueOf(entry.Obj)
			}
		}
	}

	if stub != nil {
		args, err = stub.DecodeArgs(ctx, dec)
		if err != nil {
			// The stream is now desynchronized; the rest of the batch
			// cannot be trusted, but the caller deserves an answer.
			status, errMsg = rpc.StatusDispatch, err.Error()
			stub = nil
		}
	} else {
		// Cannot decode the arguments without a stub; the remainder of
		// the batch is lost. Report and bail via sticky stream error.
		dec.SetErr(fmt.Errorf("clam: undecodable call %s", hdr.Method))
	}

	if className != "" {
		sess.srv.metrics.countCall(className, hdr.Method, hdr.Seq != 0)
	}
	var rets []reflect.Value
	if stub != nil {
		// Arguments are decoded; now (and only now, mid-batch) the call can
		// be refused without desynchronizing the stream: consume a cancel
		// the caller sent while it queued, then re-check the budget.
		var callCtx context.Context
		var cancel context.CancelFunc
		switch {
		case hdr.Seq != 0 && sess.takeCancel(hdr.Seq):
			sess.srv.metrics.shedCancelled.Add(1)
			status, errMsg = rpc.StatusDeadline, "cancelled by caller"
		case hdr.Budget != 0 && sess.srv.shedExpired() && budgetSpent(hdr.Budget, arrived):
			sess.srv.metrics.shedExpired.Add(1)
			status, errMsg = rpc.StatusDeadline, "deadline budget spent before dispatch"
		case hdr.Budget != 0:
			// The handler runs under a real deadline anchored at frame
			// arrival; a MsgCancel arriving mid-run cancels it through
			// registerLive. Deferred cleanup runs after the status mapping
			// below, which reads the context's error first.
			deadline := time.Unix(0, arrived).Add(time.Duration(hdr.Budget) * time.Microsecond)
			callCtx, cancel = context.WithDeadline(context.Background(), deadline)
			defer cancel()
			if hdr.Seq != 0 {
				sess.registerLive(hdr.Seq, cancel)
				defer sess.unregisterLive(hdr.Seq)
			}
		}
		if status == rpc.StatusOK {
			gerr := dynload.Guard(func() error {
				var appErr error
				rets, appErr = stub.Invoke(callCtx, recv, args)
				return appErr
			})
			var ctxErr error
			if callCtx != nil {
				ctxErr = callCtx.Err() // read before the deferred cancel()
			}
			var fault *dynload.Fault
			switch {
			case gerr == nil:
			case errors.As(gerr, &fault):
				status, errMsg = rpc.StatusFault, fault.Error()
				sess.srv.metrics.countFault()
			case ctxErr != nil && errors.Is(gerr, ctxErr):
				// The handler observed its context's expiry/cancel and bailed:
				// report it as the deadline status so the caller (and any hop
				// above) sees one consistent verdict.
				status, errMsg = rpc.StatusDeadline, gerr.Error()
			default:
				status, errMsg = rpc.StatusAppError, gerr.Error()
			}
		}
	}

	if hdr.Seq == 0 {
		// Asynchronous call: no reply exists, so faults and dispatch
		// failures are reported with an error upcall (§4.3) rather than
		// silently swallowed. Synchronous callers learn of faults from
		// the reply status instead.
		if status == rpc.StatusFault || status == rpc.StatusDispatch || status == rpc.StatusDeadline {
			sess.reportFault(className, hdr.Method, errMsg)
		}
		return
	}

	// The reply is encoded into its own scratch — the batch decoder (dec)
	// is mid-stream and its workspace cannot be shared. queueReply() copies
	// the body toward the kernel before returning, so releasing right after
	// is safe.
	rsc := rpc.GetScratch()
	defer rsc.Release()
	enc := rsc.Encoder()
	rh := rpc.ReplyHeader{Status: status, ErrMsg: errMsg}
	if err := rh.Bundle(enc); err != nil {
		sess.srv.logf("clam: session %d: encoding reply header: %v", sess.id, err)
		return
	}
	if status == rpc.StatusOK {
		if err := stub.EncodeReplyPayload(ctx, enc, args, rets); err != nil {
			// Fall back to a dispatch error so the client is not left
			// waiting on a half-encoded reply.
			enc = rsc.Encoder()
			rh = rpc.ReplyHeader{Status: rpc.StatusDispatch, ErrMsg: err.Error()}
			if err := rh.Bundle(enc); err != nil {
				return
			}
		}
	}
	sess.queueReplyFrame(wire.MsgReply, hdr.Seq, rsc.Bytes())
}

// --- load protocol --------------------------------------------------------

func (sess *session) execLoad(msg *wire.Msg) {
	var req loadBody
	reply := loadReplyBody{}
	sc := rpc.GetScratch()
	err := req.bundle(sc.Decoder(msg.Body))
	sc.Release()
	if err != nil {
		reply.ErrMsg = err.Error()
		sess.sendLoadReply(msg.Seq, &reply)
		return
	}

	switch req.Op {
	case loadOpLoad, loadOpLoadExact:
		var loaded *dynload.Loaded
		var err error
		if req.Op == loadOpLoadExact {
			loaded, err = sess.srv.LoadExact(req.Name, req.MinVersion)
		} else {
			loaded, err = sess.srv.Load(req.Name, req.MinVersion)
		}
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
		reply.ClassID = loaded.ID
		reply.Version = loaded.Version
		reply.Name = loaded.Name
	case loadOpNew, loadOpNewExact:
		env := &Env{Server: sess.srv, SessionID: sess.id}
		var obj any
		var h handle.Handle
		var err error
		if req.Op == loadOpNewExact {
			obj, h, err = sess.srv.CreateInstanceExact(req.Name, req.MinVersion, env)
		} else {
			obj, h, err = sess.srv.CreateInstance(req.Name, req.MinVersion, env)
		}
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		loaded, err := sess.srv.loader.ByType(reflect.TypeOf(obj))
		if err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
		reply.ClassID = loaded.ID
		reply.Version = loaded.Version
		reply.Name = loaded.Name
		reply.Obj = h
	case loadOpUnload:
		if err := sess.srv.loader.Unload(req.Name, req.MinVersion); err != nil {
			reply.ErrMsg = err.Error()
			break
		}
		reply.OK = true
	case loadOpNamed:
		sess.execLoadNamed(&req, &reply)
	case loadOpDescribe:
		sess.execDescribe(&req, &reply)
	default:
		reply.ErrMsg = fmt.Sprintf("clam: unknown load op %d", req.Op)
	}
	if reply.OK {
		sess.srv.metrics.countLoad()
	}
	sess.sendLoadReply(msg.Seq, &reply)
}

// execLoadNamed resolves a published name to a handle. A published
// *Remote — a lower server's object imported by this middle tier — is
// re-exported as a proxy handle rather than minted as a local object.
func (sess *session) execLoadNamed(req *loadBody, reply *loadReplyBody) {
	obj, ok := sess.srv.Named(req.Name)
	if !ok {
		// In a mesh, a name this server does not hold may live on the
		// peer the directory hashes it to: resolve it there and cache the
		// *Remote, so the proxy-export path below serves it like any
		// imported object (mesh.go).
		obj, ok = sess.srv.meshResolveNamed(sess, req.Name)
		if !ok {
			reply.ErrMsg = fmt.Sprintf("clam: no named instance %q", req.Name)
			return
		}
		if err, isErr := obj.(error); isErr {
			reply.ErrMsg = err.Error()
			return
		}
	}
	if r, isProxy := obj.(*Remote); isProxy {
		h, err := sess.srv.exportProxy(r)
		if err != nil {
			reply.ErrMsg = err.Error()
			return
		}
		reply.OK = true
		reply.ClassID, reply.Version = r.classInfo()
		if pl := sess.srv.linkFor(r.c); pl != nil {
			if pc, perr := sess.srv.proxyClassFor(pl, reply.ClassID, reply.Version); perr == nil {
				reply.Name = pc.name
			}
		}
		reply.Obj = h
		return
	}
	loaded, err := sess.srv.loader.ByType(reflect.TypeOf(obj))
	if err != nil {
		reply.ErrMsg = err.Error()
		return
	}
	h, err := sess.srv.putHandle(obj, loaded, sess.id)
	if err != nil {
		reply.ErrMsg = err.Error()
		return
	}
	reply.OK = true
	reply.ClassID = loaded.ID
	reply.Version = loaded.Version
	reply.Name = loaded.Name
	reply.Obj = h
}

// execDescribe answers loadOpDescribe: resolve a class id (or the class
// behind a handle) to its {name, version} identity, so a higher server
// can translate proxied classes it has never loaded (forward.go).
func (sess *session) execDescribe(req *loadBody, reply *loadReplyBody) {
	classID, version := req.ClassID, uint32(0)
	if classID == 0 && !req.Obj.IsNil() {
		entry, err := sess.srv.handles.Entry(req.Obj)
		if err != nil {
			reply.ErrMsg = err.Error()
			return
		}
		if r, isProxy := entry.Obj.(*Remote); isProxy {
			// A proxy entry carries the lower server's class identity; its
			// numeric id must not be confused with local loader ids.
			reply.OK = true
			reply.ClassID, reply.Version = r.classInfo()
			if pl := sess.srv.linkFor(r.c); pl != nil {
				if pc, perr := sess.srv.proxyClassFor(pl, reply.ClassID, reply.Version); perr == nil {
					reply.Name = pc.name
				}
			}
			return
		}
		classID, version = entry.ClassID, entry.Version
	}
	if loaded, err := sess.srv.loader.Get(classID); err == nil {
		reply.OK = true
		reply.ClassID = classID
		reply.Name = loaded.Name
		if version == 0 {
			version = loaded.Version
		}
		reply.Version = version
		return
	}
	// Not loaded here: the class may live further down a chain of
	// forwarding servers, in which case an upstream translation cache
	// knows its identity.
	if pc := sess.srv.cachedProxyClass(classID); pc != nil {
		reply.OK = true
		reply.ClassID = classID
		reply.Name = pc.name
		if version == 0 {
			version = pc.version
		}
		reply.Version = version
		return
	}
	reply.ErrMsg = fmt.Sprintf("clam: class %d not loaded", classID)
}

func (sess *session) sendLoadReply(seq uint64, reply *loadReplyBody) {
	sc := rpc.GetScratch()
	defer sc.Release()
	if err := reply.bundle(sc.Encoder()); err != nil {
		sess.srv.logf("clam: session %d: encoding load reply: %v", sess.id, err)
		return
	}
	sess.queueReplyFrame(wire.MsgLoadReply, seq, sc.Bytes())
}

// --- distributed upcalls (ruc.Caller) --------------------------------------

// errNoUpcallChannel reports an upcall attempted before the client
// attached its second channel.
var errNoUpcallChannel = errors.New("clam: client has no upcall channel")

// Upcall implements ruc.Caller: it is the remote call back to the higher
// level object in the client (§4.1). The server task blocks while the
// client task carries the flow of control (§4.3); at most one upcall is
// active per client (§4.4). The wait runs on the shared endpoint engine:
// the endpoint's callTimeout is the server's WithUpcallTimeout.
func (sess *session) Upcall(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
	// An executor worker about to wait for a client task must release its
	// slot before contending for the upcall gate: the slot's replacement
	// keeps the session's lanes draining while the gate (bounded per §4.4)
	// and then the wire are waited on. No-op under the serial dispatcher,
	// whose block hook performs the equivalent hand-off.
	xit := sess.srv.exec.yieldCurrent()
	defer sess.srv.exec.resume(xit)
	cur := task.Current()
	if !sess.acquireUpcallGate(cur) {
		return nil, fmt.Errorf("clam: session %d closed before upcall", sess.id)
	}
	defer sess.releaseUpcallGate()
	failed := true
	defer func() { sess.srv.metrics.countUpcall(failed) }()

	c := sess.upcallConn()
	if c == nil {
		return nil, errNoUpcallChannel
	}
	seq := sess.seq.Add(1)

	sc := rpc.GetScratch()
	enc := sc.Encoder()
	uh := rpc.UpcallHeader{ProcID: procID}
	if err := uh.Bundle(enc); err != nil {
		sc.Release()
		return nil, err
	}
	ctx := sess.ctx()
	if err := rpc.EncodeFuncArgs(sess.srv.reg, ctx, enc, ft, args); err != nil {
		sc.Release()
		return nil, err
	}

	// Arm the reply slot before sending so a fast client cannot race the
	// wait.
	w := sess.waits.arm(seq)
	defer sess.waits.disarm(seq)

	// Buffered replies must precede the upcall: the client task about to
	// take over the flow of control may depend on them. Send copies the
	// scratch bytes before returning, so the workspace recycles here.
	sess.flushReplies()
	err := c.SendFrame(wire.MsgUpcall, seq, sc.Bytes())
	sc.Release()
	if err != nil {
		return nil, fmt.Errorf("clam: sending upcall: %w", err)
	}

	if cur != nil {
		// Hand off dispatch duty so this session's queue keeps draining
		// while we wait for the client task (await's Block would fire the
		// block hook anyway; releasing eagerly keeps the handoff explicit).
		sess.releaseDispatch()
	}
	reply, werr := sess.await(nil, seq, w)
	if werr != nil {
		if errors.Is(werr, ErrCallTimeout) {
			sess.srv.metrics.countUpcallTimeout()
		}
		sess.noteUpcallFailure()
		return nil, fmt.Errorf("clam: upcall %d to session %d failed (timeout or disconnect)", seq, sess.id)
	}
	// The client answered; whatever the payload says, it is not a slow
	// consumer.
	sess.slowFails.Store(0)

	dsc := rpc.GetScratch()
	rets, appErr, derr := rpc.DecodeFuncResults(sess.srv.reg, sess.ctx(), dsc.Decoder(reply.Body), ft)
	dsc.Release()
	reply.Release()
	if derr != nil {
		return nil, derr
	}
	if appErr != nil {
		return nil, appErr
	}
	failed = false
	return rets, nil
}

// noteUpcallFailure records one transport-level upcall failure (no reply
// arrived) and evicts the session once the consecutive-failure count
// reaches the server's slow-consumer limit. The eviction runs on its own
// goroutine: the caller may be a task holding the scheduler's run token,
// and eviction closes connections, which can block.
func (sess *session) noteUpcallFailure() {
	n := sess.slowFails.Add(1)
	limit := sess.srv.slowConsumerLimit
	if limit <= 0 || int(n) < limit {
		return
	}
	go sess.evict(fmt.Sprintf("slow consumer: %d consecutive upcall failures", n))
}

// reportFault notifies the client that it tried to use a faulty class
// (§4.3). A new task carries the report so the failing path is not
// delayed; the report travels on the upcall channel as a MsgError.
func (sess *session) reportFault(class, method, msg string) {
	sess.srv.metrics.countFaultReport()
	report := FaultReport{Class: class, Method: method, Msg: msg}
	err := sess.srv.sched.Spawn(func(*task.Task) {
		c := sess.upcallConn()
		if c == nil {
			sess.srv.logf("clam: session %d: dropping fault report (%v): no upcall channel", sess.id, report)
			return
		}
		sc := rpc.GetScratch()
		defer sc.Release()
		if err := report.bundle(sc.Encoder()); err != nil {
			return
		}
		if err := c.Send(&wire.Msg{Type: wire.MsgError, Body: sc.Bytes()}); err != nil {
			sess.srv.logf("clam: session %d: fault report failed: %v", sess.id, err)
		}
	})
	if err != nil {
		sess.srv.logf("clam: session %d: fault report task: %v", sess.id, err)
	}
}
