//go:build linux

package core

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam/internal/shm"
)

// Shared-memory transport integration: the session protocol must ride the
// rings unchanged — calls, upcalls, resume, fan-out, journal, mesh — with
// the socket kept as a transparent fallback. These tests pin the
// engagement/fallback decision via TransportStats and the chaos contract
// that ring death looks exactly like socket death to the resume machinery.

func shmSessionsDelta(srv *Server) (shmConns, fallbacks uint64) {
	tr := srv.Metrics().Transport
	return tr.ShmSessions, tr.SocketFallbacks
}

func TestShmTransportEngages(t *testing.T) {
	srv, path := startServer(t, WithSharedMemory(0))
	c := dialClient(t, path)

	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(5)); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Fatalf("Total over shm = %d, want 5", total)
	}

	// Upcalls ride the second ring pair.
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int32
	if err := n.Call("Register", func(x int32, s string) int32 {
		got.Store(x)
		return 2 * x
	}); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(21), "ring"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 21 || sum != 42 {
		t.Fatalf("upcall over shm: got=%d sum=%d, want 21/42", got.Load(), sum)
	}

	rings, falls := shmSessionsDelta(srv)
	if rings < 2 { // one per stream: rpc + upcall
		t.Errorf("ShmSessions = %d, want >= 2 (both streams on rings)", rings)
	}
	if falls != 0 {
		t.Errorf("SocketFallbacks = %d, want 0 (same host, broker up)", falls)
	}
	if tr := srv.Metrics().Transport; !tr.ShmEnabled {
		t.Error("Transport.ShmEnabled = false on a WithSharedMemory server")
	}
}

func TestShmFallbackWhenNoBroker(t *testing.T) {
	// Server without WithSharedMemory: the client's rendezvous attempt
	// must fail fast and fall back to the socket invisibly.
	_, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatalf("call over fallback socket: %v", err)
	}
}

func TestShmClientAblationFallsBack(t *testing.T) {
	srv, path := startServer(t, WithSharedMemory(0))
	c := dialClient(t, path, WithoutSharedMemory())
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatal(err)
	}
	rings, falls := shmSessionsDelta(srv)
	if rings != 0 {
		t.Errorf("ShmSessions = %d, want 0 under WithoutSharedMemory", rings)
	}
	if falls < 2 {
		t.Errorf("SocketFallbacks = %d, want >= 2 (both streams on sockets)", falls)
	}
}

// shmChaosDialer rendezvouses over shm itself (keeping handles to the
// live ring conns so the test can kill one) and refuses sockets: a resume
// that silently fell back would fail the test.
type shmChaosDialer struct {
	mu    sync.Mutex
	conns []net.Conn
	dials int
}

func (d *shmChaosDialer) dial(network, addr string) (net.Conn, error) {
	c, err := shm.Dial(shm.BrokerPath(addr))
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.conns = append(d.conns, c)
	d.dials++
	d.mu.Unlock()
	return c, nil
}

// rpcConn returns the RPC-stream ring of the latest (re)connection: Dial
// and tryResume both dial RPC first, then upcall.
func (d *shmChaosDialer) rpcConn() net.Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conns[len(d.conns)-2]
}

func (d *shmChaosDialer) dialCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// TestChaosShmKillMidWriteResumes kills the client's RPC ring in the
// middle of an async burst and asserts the resume path engages exactly as
// it does on socket death: reconnect, replay, same handles, same state —
// and the resumed link is again a ring, not a socket.
func TestChaosShmKillMidWriteResumes(t *testing.T) {
	srv, path := startServer(t, WithSharedMemory(0), WithResumeWindow(10*time.Second))
	d := &shmChaosDialer{}
	c := dialClient(t, path, WithDialFunc(d.dial), WithCallTimeout(3*time.Second))

	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(3)); err != nil {
		t.Fatal(err)
	}

	// Async burst with the ring yanked from under it mid-stream.
	for i := 0; i < 64; i++ {
		if i == 20 {
			d.rpcConn().Close() // mid-ring-write kill
		}
		obj.Async("Add", int64(1))
	}
	waitFor(t, 8*time.Second, "client to resume after ring death", func() bool {
		return c.Metrics().Resilience.Reconnects >= 1
	})

	// Post-resume: the same handle works and no async was double-applied
	// (the receive window dedups replays). Every Add that was accepted
	// exactly once contributes exactly once.
	if err := c.Sync(); err != nil {
		trySync(c) // one more try if the sync raced the resume
	}
	var total int64
	waitFor(t, 5*time.Second, "post-resume call to succeed", func() bool {
		return obj.CallInto("Total", []any{&total}) == nil
	})
	if total < 3 || total > 3+64 {
		t.Errorf("Total after ring death = %d, want within [3,67]", total)
	}
	if d.dialCount() < 4 {
		t.Errorf("dials = %d, want >= 4 (resume re-rendezvoused over shm)", d.dialCount())
	}
	if _, falls := shmSessionsDelta(srv); falls != 0 {
		t.Errorf("SocketFallbacks = %d, want 0 (resume must ride rings)", falls)
	}
	if srv.Metrics().Resilience.Reconnects < 1 {
		t.Error("server counted no reconnects after ring death")
	}
}

// TestShmFanoutRidesRings runs the multicast path over ring transports.
func TestShmFanoutRidesRings(t *testing.T) {
	srv, path := startServer(t, WithSharedMemory(0))
	if err := srv.RegisterMulticast("ev", (func(int64))(nil)); err != nil {
		t.Fatal(err)
	}
	const clients, events = 3, 5
	cols := make([]*collector, clients)
	for i := range cols {
		cols[i] = &collector{}
		c := dialClient(t, path)
		if _, err := c.Subscribe("ev", cols[i].add); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < events; i++ {
		if _, err := srv.Publish("ev", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "all subscribers to receive all events", func() bool {
		for _, co := range cols {
			if co.len() != events {
				return false
			}
		}
		return true
	})
	for _, co := range cols {
		co.wantExactly(t, seq(events))
	}
	if rings, _ := shmSessionsDelta(srv); rings < uint64(2*clients) {
		t.Errorf("ShmSessions = %d, want >= %d (every subscriber on rings)", rings, 2*clients)
	}
}

// TestShmJournalRecordsOverRings proves the journal path is transport-
// blind: a journaled server with shm on records session grants and marks
// arriving over rings just as over sockets.
func TestShmJournalRecordsOverRings(t *testing.T) {
	dir := t.TempDir()
	srv, path := startServer(t, WithSharedMemory(0), WithJournal(dir))
	c := dialClient(t, path)
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(9)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if !m.Journal.Enabled || m.Journal.Appends == 0 {
		t.Errorf("journal over shm: enabled=%v appends=%d, want recording",
			m.Journal.Enabled, m.Journal.Appends)
	}
	if rings, _ := shmSessionsDelta(srv); rings < 2 {
		t.Errorf("ShmSessions = %d, want >= 2", rings)
	}
}

// TestShmMeshPeersRideRings joins two same-host mesh members that both
// offer shm: their peer links and a routed client call all ride rings.
func TestShmMeshPeersRideRings(t *testing.T) {
	srvA, pathA := startServer(t, WithSharedMemory(0))
	srvB, pathB := startServer(t, WithSharedMemory(0))
	if err := srvA.JoinMesh(MeshPeer{Name: "a", Network: "unix", Addr: pathA},
		MeshPeer{Name: "b", Network: "unix", Addr: pathB}); err != nil {
		t.Fatal(err)
	}
	if err := srvB.JoinMesh(MeshPeer{Name: "b", Network: "unix", Addr: pathB},
		MeshPeer{Name: "a", Network: "unix", Addr: pathA}); err != nil {
		t.Fatal(err)
	}
	// Create named objects until one lands on the non-entered member, so
	// at least one client call is actually routed across a mesh ring.
	c := dialClient(t, pathA)
	names := []string{"n0", "n1", "n2", "n3"}
	for _, name := range names {
		if err := srvA.MeshCreateNamed("counter", name); err != nil {
			t.Fatal(err)
		}
		obj, err := c.NamedObject(name)
		if err != nil {
			t.Fatalf("NamedObject(%s): %v", name, err)
		}
		if err := obj.Call("Add", int64(2)); err != nil {
			t.Fatalf("Add via %s: %v", name, err)
		}
		var total int64
		if err := obj.CallInto("Total", []any{&total}); err != nil {
			t.Fatal(err)
		}
		if total != 2 {
			t.Fatalf("Total via %s = %d, want 2", name, total)
		}
	}
	routed := srvA.Metrics().Mesh.RoutedNamed
	if routed == 0 {
		t.Skip("hash placed all names on the entering member; routing not exercised")
	}
	// The mesh peer links dialed unix addresses on this host with the
	// stock dialer, so they must have rendezvoused over shm.
	ringsB, _ := shmSessionsDelta(srvB)
	if ringsB < 2 {
		t.Errorf("member b ShmSessions = %d, want >= 2 (mesh link on rings)", ringsB)
	}
}
