package core

import (
	"reflect"
	"testing"

	"clam/internal/bundle"
	"clam/internal/dynload"
	"clam/internal/xdr"
)

// End-to-end coverage of the paper's parameter annotations (§3.2) through
// the whole server stack: out-mode parameters, const (In) suppression of
// reply copies, and named in-place bundlers attached via MethodSpec.

// surveyor is a class whose methods use every spec feature.
type surveyor struct{}

type sample struct{ A, B int64 }

// Measure fills a pure-out parameter.
func (s *surveyor) Measure(out *sample) {
	out.A, out.B = 11, 22
}

// Observe receives a read-only pointer: with an In spec the server sends
// no copy back.
func (s *surveyor) Observe(in *sample) int64 {
	return in.A + in.B
}

// Shift uses a custom named bundler for its parameter.
func (s *surveyor) Shift(v *sample) int64 {
	return v.A
}

// shiftBundler transmits only field A, and doubles it on decode — an
// intentionally asymmetric user bundler so the test can prove it ran.
func shiftBundler(_ *bundle.Ctx, st *xdr.Stream, v reflect.Value) error {
	switch st.Op() {
	case xdr.Encode:
		p := v.Interface().(*sample)
		a := int64(0)
		if p != nil {
			a = p.A
		}
		return st.Int64(&a)
	default:
		var a int64
		if err := st.Int64(&a); err != nil {
			return err
		}
		v.Set(reflect.ValueOf(&sample{A: a * 2}))
		return nil
	}
}

func specServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(testLibrary(t), WithServerLog(func(string, ...any) {}))
	srv.Registry().RegisterNamed("shift_bundler", shiftBundler)
	if err := srv.lib.Register(dynload.Class{
		Name: "surveyor", Version: 1, Type: reflect.TypeOf(&surveyor{}),
		New: func(any) (any, error) { return &surveyor{}, nil },
		Specs: map[string]bundle.MethodSpec{
			"Measure": {Params: []*bundle.ParamSpec{{Mode: bundle.Out}}},
			"Observe": {Params: []*bundle.ParamSpec{{Mode: bundle.In}}},
			"Shift":   {Params: []*bundle.ParamSpec{{Bundler: "shift_bundler"}}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	sock := t.TempDir() + "/spec.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sock
}

func TestOutModeSpecOverWire(t *testing.T) {
	_, sock := specServer(t)
	c := dialClient(t, sock)
	obj, err := c.New("surveyor", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The caller passes a pointer; the server fills it and the reply
	// carries it back.
	var out sample
	if err := obj.Call("Measure", &out); err != nil {
		t.Fatal(err)
	}
	if out.A != 11 || out.B != 22 {
		t.Errorf("out = %+v", out)
	}
	// A nil pointer works for a pure-out parameter: the server allocates.
	if err := obj.Call("Measure", (*sample)(nil)); err != nil {
		t.Errorf("nil out pointer: %v", err)
	}
}

func TestInModeSpecSuppressesReplyCopy(t *testing.T) {
	_, sock := specServer(t)
	c := dialClient(t, sock)
	obj, err := c.New("surveyor", 0)
	if err != nil {
		t.Fatal(err)
	}
	in := sample{A: 1, B: 2}
	var sum int64
	if err := obj.CallInto("Observe", []any{&sum}, &in); err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Errorf("sum = %d", sum)
	}
	// The const parameter came back untouched (no reply copy mutated it).
	if in.A != 1 || in.B != 2 {
		t.Errorf("const parameter changed: %+v", in)
	}
}

func TestNamedBundlerSpecOverWire(t *testing.T) {
	_, sock := specServer(t)
	c := dialClient(t, sock)
	// The client must speak the same custom encoding for this parameter:
	// register the same named bundler for the client-side *sample type
	// (the typedef form — every *sample from this client uses it).
	c.Registry().RegisterType(reflect.TypeOf((*sample)(nil)), shiftBundler)

	obj, err := c.New("surveyor", 0)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	if err := obj.CallInto("Shift", []any{&got}, &sample{A: 21, B: 99}); err != nil {
		t.Fatal(err)
	}
	// The bundler doubles A on the server's decode: 21 → 42. B never
	// travelled at all.
	if got != 42 {
		t.Errorf("Shift = %d, want 42 (custom bundler bypassed?)", got)
	}
}
