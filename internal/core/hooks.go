package core

import (
	"fmt"
	"reflect"

	"clam/internal/handle"
	"clam/internal/xdr"
)

// Server-side implementations of the two special automatic bundlers of
// §3.5: "The compiler automatically provides special bundlers for two
// types of pointers, pointers to objects (i.e. class instances) and
// pointers to procedures."

// serverObjectHook bundles class-instance pointers as handles (§3.5.1).
type serverObjectHook session

// IsClass reports whether t is the instance struct of a loaded class.
// *Remote counts too: a forwarding server holds proxies for lower-server
// objects, and those leave the server as handles just like local
// instances (forward.go).
func (h *serverObjectHook) IsClass(t reflect.Type) bool {
	return t == remoteStructType || (*session)(h).srv.loader.IsClassType(t)
}

// BundleObject converts between object pointers and handles. Leaving the
// server, the pointer becomes a handle minted from the handle table;
// entering the server, the handle is validated and resolved back to the
// object, whose type must suit the declared parameter.
func (h *serverObjectHook) BundleObject(s *xdr.Stream, v reflect.Value) error {
	sess := (*session)(h)
	switch s.Op() {
	case xdr.Encode:
		if v.IsNil() {
			nh := handle.Nil
			return nh.Bundle(s)
		}
		if r, ok := v.Interface().(*Remote); ok {
			// A proxy for a lower server's object: re-export it upward
			// under this server's handle table (§3.5.1 semantics apply to
			// the proxy entry too — revoking it invalidates the tag).
			hd, err := sess.srv.exportProxy(r)
			if err != nil {
				return err
			}
			return hd.Bundle(s)
		}
		loaded, err := sess.srv.loader.ByType(v.Type())
		if err != nil {
			return fmt.Errorf("clam: object of unloaded class %s cannot leave the server: %w", v.Type(), err)
		}
		hd, err := sess.srv.putHandle(v.Interface(), loaded, sess.id)
		if err != nil {
			return err
		}
		return hd.Bundle(s)
	default:
		var hd handle.Handle
		if err := hd.Bundle(s); err != nil {
			return err
		}
		if hd.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		obj, err := sess.srv.handles.Get(hd)
		if err != nil {
			return err
		}
		ov := reflect.ValueOf(obj)
		if !ov.Type().AssignableTo(v.Type()) {
			return fmt.Errorf("clam: handle %v names a %s, parameter wants %s", hd, ov.Type(), v.Type())
		}
		v.Set(ov)
		return nil
	}
}

// serverProcHook bundles procedure pointers (§3.5.2). Incoming procedure
// pointers become RUC proxies; the paper did not implement passing
// procedure pointers from the server to the client ("While the server
// might pass a procedure pointer to the client, we have not implemented
// any automatic means of handling these pointers"), and neither does this
// reproduction — an attempt reports a clear error.
type serverProcHook session

// BundleProc converts an incoming procedure identifier into a proxy func
// whose invocation performs the distributed upcall.
func (h *serverProcHook) BundleProc(s *xdr.Stream, v reflect.Value) error {
	sess := (*session)(h)
	switch s.Op() {
	case xdr.Encode:
		if v.IsNil() {
			var zero uint64
			return s.Uint64(&zero)
		}
		return fmt.Errorf("clam: passing a procedure pointer from server to client is not supported (as in the paper)")
	default:
		var procID uint64
		if err := s.Uint64(&procID); err != nil {
			return err
		}
		if procID == 0 {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		entry, proxy, err := sess.srv.rucs.Bind(procID, v.Type(), sess)
		if err != nil {
			return err
		}
		sess.srv.journalBindRUC(entry.ID, procID, sess.id)
		v.Set(proxy)
		return nil
	}
}
