package core

import (
	"reflect"
	"testing"
	"time"
)

func TestMetricsCountCallsAndLoads(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, err := c.New("counter", 0) // one successful load op
	if err != nil {
		t.Fatal(err)
	}
	obj.Call("Add", int64(1))
	obj.Call("Add", int64(2))
	obj.Async("Record", "x")
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	var total int64
	obj.CallInto("Total", []any{&total})

	m := srv.Metrics()
	if m.Calls["counter.Add"] != 2 {
		t.Errorf("Add count = %d", m.Calls["counter.Add"])
	}
	if m.Calls["counter.Record"] != 1 || m.Calls["counter.Total"] != 1 {
		t.Errorf("calls = %v", m.Calls)
	}
	if m.SyncCalls != 3 || m.AsyncCalls != 1 {
		t.Errorf("sync=%d async=%d", m.SyncCalls, m.AsyncCalls)
	}
	if m.Loads == 0 {
		t.Error("loads not counted")
	}
	if m.Batches < 3 {
		t.Errorf("batches = %d", m.Batches)
	}
}

func TestMetricsCountUpcalls(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	n, _ := c.New("notifier", 0)
	if err := n.Call("Register", func(x int32, s string) int32 { return x }); err != nil {
		t.Fatal(err)
	}
	var sum int32
	for i := 0; i < 3; i++ {
		if err := n.CallInto("Trigger", []any{&sum}, int32(1), "m"); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if m.Upcalls != 3 {
		t.Errorf("upcalls = %d", m.Upcalls)
	}
	if m.UpcallFailures != 0 {
		t.Errorf("failures = %d", m.UpcallFailures)
	}
}

func TestMetricsCountUpcallFailures(t *testing.T) {
	srv := NewServer(testLibrary(t),
		WithServerLog(func(string, ...any) {}),
		WithUpcallTimeout(200*time.Millisecond))
	registerEdgeClasses(t, srv)
	sock := t.TempDir() + "/m.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial("unix", sock, WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.New("slowpoke", 0)
	stall := make(chan struct{})
	t.Cleanup(func() {
		close(stall)
		time.Sleep(20 * time.Millisecond)
		c.Close()
	})
	s.Call("Register", func(x int32) (int32, error) { <-stall; return x, nil })
	var out int32
	s.CallInto("Trigger", []any{&out}, int32(1)) // times out
	m := srv.Metrics()
	if m.Upcalls != 1 || m.UpcallFailures != 1 {
		t.Errorf("upcalls=%d failures=%d", m.Upcalls, m.UpcallFailures)
	}
}

func TestMetricsCountFaults(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	f, _ := c.New("faulty", 0)
	f.Call("Crash")  // sync fault, no report upcall
	f.Async("Crash") // async fault → report upcall
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m := srv.Metrics(); m.Faults == 2 && m.FaultReports == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := srv.Metrics()
	t.Errorf("faults=%d reports=%d, want 2/1", m.Faults, m.FaultReports)
}

func TestMetricsSnapshotIsolation(t *testing.T) {
	srv, path := startServer(t)
	c := dialClient(t, path)
	obj, _ := c.New("counter", 0)
	obj.Call("Add", int64(1))
	m1 := srv.Metrics()
	m1.Calls["counter.Add"] = 999 // mutating the snapshot
	m2 := srv.Metrics()
	if m2.Calls["counter.Add"] != 1 {
		t.Error("snapshot mutation leaked into live counters")
	}
}

func TestTopCalls(t *testing.T) {
	s := MetricsSnapshot{Calls: map[string]uint64{
		"a.X": 5, "b.Y": 9, "c.Z": 9, "d.W": 1,
	}}
	got := s.TopCalls(3)
	want := []string{"b.Y", "c.Z", "a.X"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopCalls = %v, want %v", got, want)
	}
	if n := len(s.TopCalls(99)); n != 4 {
		t.Errorf("TopCalls(99) len = %d", n)
	}
}
