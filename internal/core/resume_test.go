package core

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clam/internal/rpc"
	"clam/internal/wire"
)

// Session-resurrection tests: scripted link kills against a server that
// parks disconnected sessions (WithResumeWindow), asserting transparent
// reconnect, replay of unacknowledged batches, duplicate suppression
// (at-most-once), fail-fast pending waiters, and the preserved legacy
// eviction path when the window is disabled.

// latestRPC returns the RPC channel of the most recent successful
// (re)connection: tryResume dials RPC then upcall, so after a completed
// resume the last two links are that attempt's pair.
func (cl *chaosLinks) latestRPC() *wire.SimLink {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.links[len(cl.links)-2]
}

// trySync attempts a Sync, tolerating mid-outage failures.
func trySync(c *Client) { _ = c.Sync() }

func TestResumeAfterSever(t *testing.T) {
	srv, path := startServer(t, WithResumeWindow(5*time.Second))
	c, cl := chaosClient(t, path, WithCallTimeout(2*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(7)); err != nil {
		t.Fatal(err)
	}
	n, err := c.New("notifier", 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []int32
	if err := n.Call("Register", func(x int32, s string) int32 {
		mu.Lock()
		got = append(got, x)
		mu.Unlock()
		return 2 * x
	}); err != nil {
		t.Fatal(err)
	}

	// Kill the RPC channel mid-session. The client must re-dial, present
	// its resume token, and carry on with the same handles.
	cl.rpc().Sever()
	waitFor(t, 5*time.Second, "client to resume the session", func() bool {
		return c.Metrics().Resilience.Reconnects >= 1
	})

	// The handle minted before the kill still names the same object, with
	// its state intact — the server retained the session rather than
	// evicting it.
	var total int64
	waitFor(t, 3*time.Second, "post-resume call to succeed", func() bool {
		return obj.CallInto("Total", []any{&total}) == nil
	})
	if total != 7 {
		t.Errorf("Total after resume = %d, want 7 (state lost)", total)
	}

	// The RUC registration survived too: an upcall flows over the fresh
	// upcall channel without re-registering.
	var sum int32
	if err := n.CallInto("Trigger", []any{&sum}, int32(9), "post-resume"); err != nil {
		t.Fatalf("upcall after resume: %v", err)
	}
	if sum != 18 {
		t.Errorf("Trigger after resume = %d, want 18", sum)
	}
	mu.Lock()
	handled := len(got)
	mu.Unlock()
	if handled != 1 {
		t.Errorf("handler ran %d times, want 1", handled)
	}

	if got := srv.SessionCount(); got != 1 {
		t.Errorf("SessionCount = %d, want 1 (same session, not a new one)", got)
	}
	m := srv.Metrics()
	if m.Resilience.Reconnects < 1 {
		t.Errorf("server Resilience.Reconnects = %d, want >= 1", m.Resilience.Reconnects)
	}
	if m.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0", m.Evictions)
	}
}

// TestResumeReplaysAndDedups drives both halves of the at-most-once
// argument deterministically: a duplicated numbered frame is dropped by
// the server's receive window, and a frame lost before the kill is
// replayed from the retransmit buffer on resume — with the final total
// proving exactly-once execution of every Add.
func TestResumeReplaysAndDedups(t *testing.T) {
	srv, path := startServer(t, WithResumeWindow(5*time.Second))
	// Unbatched: every Async ships immediately as its own numbered frame,
	// so the fault injectors below target exactly one call each.
	c, cl := chaosClient(t, path,
		WithCallTimeout(2*time.Second),
		WithoutClientBatching())
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Three adds, delivered normally.
	for i := 0; i < 3; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}

	// One add duplicated at the byte level by the link. The server
	// executes the first copy and drops the second by sequence.
	cl.rpc().InjectDuplicate(1)
	if err := obj.Async("Add", int64(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "duplicate frame to be suppressed", func() bool {
		return srv.Metrics().Resilience.DedupDrops >= 1
	})
	// Acknowledge everything so far so only the lost frame remains
	// replayable.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	// One add silently eaten by the link — the client believes it was
	// sent, so it sits unacknowledged in the retransmit buffer.
	cl.rpc().InjectDrop(1)
	if err := obj.Async("Add", int64(1)); err != nil {
		t.Fatal(err)
	}

	// Kill and resume: the handshake reports the server's receive mark,
	// so the client replays exactly the dropped frame.
	cl.rpc().Sever()
	waitFor(t, 5*time.Second, "client to resume", func() bool {
		return c.Metrics().Resilience.Reconnects >= 1
	})
	waitFor(t, 3*time.Second, "post-resume sync", func() bool {
		return c.Sync() == nil
	})

	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("Total = %d, want exactly 5 (3 delivered + 1 deduped-to-once + 1 replayed)", total)
	}
	cm := c.Metrics().Resilience
	if cm.ReplayedCalls < 1 {
		t.Errorf("client ReplayedCalls = %d, want >= 1", cm.ReplayedCalls)
	}
	sm := srv.Metrics().Resilience
	if sm.DedupDrops < 1 {
		t.Errorf("server DedupDrops = %d, want >= 1", sm.DedupDrops)
	}
}

// TestDisconnectFailsPendingWaitersFast: a synchronous call in flight
// when the link dies must fail promptly with the typed, retryable
// ErrDisconnected — not hang until its 30s deadline.
func TestDisconnectFailsPendingWaitersFast(t *testing.T) {
	_, path := startServer(t, WithResumeWindow(5*time.Second))
	c, cl := chaosClient(t, path, WithCallTimeout(30*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Swallow the request so the call is pending, then cut the link.
	cl.rpc().InjectBlackhole(true)
	errc := make(chan error, 1)
	start := time.Now()
	go func() { errc <- obj.Call("Add", int64(1)) }()
	time.Sleep(50 * time.Millisecond)
	cl.rpc().Sever()

	select {
	case err := <-errc:
		if !errors.Is(err, ErrDisconnected) {
			t.Errorf("pending call failed with %v, want ErrDisconnected", err)
		}
		if d := time.Since(start); d > 3*time.Second {
			t.Errorf("pending call failed after %v, want well under the 30s deadline", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending call hung past the disconnect")
	}
}

// TestRetryRidesThroughResume: ErrDisconnected composes with WithRetry —
// an idempotent-marked call issued mid-outage backs off and succeeds once
// the session resumes, with no caller-visible failure.
func TestRetryRidesThroughResume(t *testing.T) {
	_, path := startServer(t, WithResumeWindow(5*time.Second))
	c, cl := chaosClient(t, path,
		WithCallTimeout(2*time.Second),
		WithRetry(RetryPolicy{Attempts: 10, Backoff: 25 * time.Millisecond}))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	obj.MarkIdempotent("Total")
	if err := obj.Call("Add", int64(3)); err != nil {
		t.Fatal(err)
	}

	cl.rpc().Sever()
	// Issued immediately after the kill: the first attempts see the
	// outage (ErrDisconnected), the retry loop rides it out, and the call
	// completes against the resumed session.
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatalf("idempotent call across an outage: %v", err)
	}
	if total != 3 {
		t.Errorf("Total = %d, want 3", total)
	}
	if got := c.Metrics().Resilience.Reconnects; got < 1 {
		t.Errorf("Reconnects = %d, want >= 1", got)
	}
}

// TestResumeWindowExpiresEvicts: when the client cannot return in time,
// the parked session is evicted at the window boundary — retention is a
// grace period, not a leak.
func TestResumeWindowExpiresEvicts(t *testing.T) {
	srv, path := startServer(t, WithResumeWindow(300*time.Millisecond))
	inner := &chaosLinks{}
	var dials atomic.Int32
	dial := func(network, addr string) (net.Conn, error) {
		if dials.Add(1) > 2 {
			// The partition outlasts the window: every reconnect fails.
			return nil, errors.New("simulated partition")
		}
		return inner.dial(network, addr)
	}
	c, err := Dial("unix", path,
		WithClientLog(func(string, ...any) {}),
		WithDialFunc(dial))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.New("counter", 0); err != nil {
		t.Fatal(err)
	}

	inner.rpc().Sever()
	waitFor(t, 3*time.Second, "parked session to expire", func() bool {
		return srv.SessionCount() == 0
	})
	m := srv.Metrics()
	if m.Evictions < 1 {
		t.Errorf("Evictions = %d, want >= 1 (window expiry)", m.Evictions)
	}
	if m.Resilience.Reconnects != 0 {
		t.Errorf("Reconnects = %d, want 0 (no reconnect ever landed)", m.Resilience.Reconnects)
	}
}

// TestResumeDisabledDegradesToEviction is the ablation: without
// WithResumeWindow nothing is parked, nothing replays, and a dead link
// means the legacy drop — exactly the pre-resurrection behavior.
func TestResumeDisabledDegradesToEviction(t *testing.T) {
	srv, path := startServer(t) // no resume window
	c, cl := chaosClient(t, path, WithCallTimeout(2*time.Second))
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatal(err)
	}
	cl.rpc().Sever()
	waitFor(t, 3*time.Second, "session to drop", func() bool {
		return srv.SessionCount() == 0
	})
	// No resurrection machinery ran on either side.
	time.Sleep(100 * time.Millisecond)
	if got := c.Metrics().Resilience.Reconnects; got != 0 {
		t.Errorf("client Reconnects = %d, want 0 without a resume grant", got)
	}
	if got := srv.Metrics().Resilience.Reconnects; got != 0 {
		t.Errorf("server Reconnects = %d, want 0", got)
	}
	if err := obj.Call("Add", int64(1)); err == nil {
		t.Error("call on a dead un-resumable client succeeded")
	}
}

// TestCleanCloseDoesNotPark: a deliberate goodbye must drop the session
// immediately, never park it — resume retention is for failures only.
func TestCleanCloseDoesNotPark(t *testing.T) {
	srv, path := startServer(t, WithResumeWindow(10*time.Second))
	c := dialClient(t, path)
	if _, err := c.New("counter", 0); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitFor(t, 3*time.Second, "cleanly closed session to drop", func() bool {
		return srv.SessionCount() == 0
	})
	if got := srv.Metrics().Evictions; got != 0 {
		t.Errorf("Evictions = %d, want 0 for a clean close", got)
	}
}

// TestFlapScheduleExactTotals: a flapping link (scripted kills every few
// writes across successive connections) must not lose or double-execute
// a single batched call — the replay buffer and receive window keep the
// ledger exact across every resume.
func TestFlapScheduleExactTotals(t *testing.T) {
	_, path := startServer(t, WithResumeWindow(10*time.Second))
	var dials atomic.Int32
	dial := func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		l := wire.NewSimLink(conn, 0, 0)
		if n := dials.Add(1); n <= 5 && n%2 == 1 {
			// Flap schedule: the first few odd-numbered connections die
			// after a handful of frames.
			l.KillAfterWrites(6)
		}
		return l, nil
	}
	c, err := Dial("unix", path,
		WithClientLog(func(string, ...any) {}),
		WithDialFunc(dial),
		WithCallTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}

	const adds = 60
	for i := 0; i < adds; i++ {
		if err := obj.Async("Add", int64(1)); err != nil {
			t.Fatalf("Async during flap: %v", err)
		}
		if i%10 == 9 {
			trySync(c) // pacing; mid-outage failures are expected
		}
	}
	waitFor(t, 10*time.Second, "final sync after the flapping stops", func() bool {
		return c.Sync() == nil
	})
	var total int64
	waitFor(t, 5*time.Second, "final total read", func() bool {
		return obj.CallInto("Total", []any{&total}) == nil
	})
	if total != adds {
		t.Errorf("Total = %d, want exactly %d (lost or duplicated adds)", total, adds)
	}
	if got := c.Metrics().Resilience.Reconnects; got < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (the link never flapped?)", got)
	}
}

// TestWaitTableCancelledWaiterIsReusable: cancellation delivers nil over
// the still-open pooled channel, so a cancelled slot can be pooled and
// reused like a completed one (the old teardown closed the channel,
// poisoning the pool).
func TestWaitTableCancelledWaiterIsReusable(t *testing.T) {
	var wt waitTable
	for i := 0; i < 64; i++ {
		seq := uint64(i + 1)
		w := wt.arm(seq)
		if w.ch == nil {
			t.Fatal("goroutine waiter without a channel")
		}
		if i%2 == 0 {
			wt.cancelAll()
			select {
			case msg := <-w.ch:
				if msg != nil {
					t.Fatalf("cancelled waiter received %v, want nil", msg)
				}
			case <-time.After(time.Second):
				t.Fatal("cancelled waiter never notified")
			}
		} else {
			m := &wire.Msg{Type: wire.MsgReply, Seq: seq}
			if !wt.deliver(seq, m, false) {
				t.Fatal("deliver to armed waiter reported no consumer")
			}
			select {
			case got := <-w.ch:
				if got != m {
					t.Fatalf("waiter received %v, want the delivered message", got)
				}
			case <-time.After(time.Second):
				t.Fatal("completed waiter never notified")
			}
		}
		// disarm pools the slot either way; the next arm reuses it.
		wt.disarm(seq)
	}
}

// TestChainMiddleHopResurrection kills and resurrects the mid→bottom link
// of a three-address-space chain while calls and upcalls are in flight:
// the chain must heal hop-by-hop with no lost adds (replay), no double
// execution (dedup), and §3.4 upcall ordering preserved end to end.
func TestChainMiddleHopResurrection(t *testing.T) {
	bottom, bottomPath := startServer(t, WithResumeWindow(10*time.Second))
	nobj, _, err := bottom.CreateInstance("notifier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bottom.SetNamed("notify", nobj)
	bottomNotifier := nobj.(*notifier)
	cobj, _, err := bottom.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bottom.SetNamed("tally", cobj)

	mid := NewServer(testLibrary(t),
		WithServerLog(func(string, ...any) {}))
	t.Cleanup(func() { mid.Close() })
	midPath := t.TempDir() + "/mid.sock"
	if _, err := mid.Listen("unix", midPath); err != nil {
		t.Fatal(err)
	}
	cl := &chaosLinks{}
	up, err := mid.DialUpstream("unix", bottomPath,
		WithClientLog(func(string, ...any) {}),
		WithDialFunc(cl.dial),
		WithCallTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := mid.ImportNamed(up, "notify", "tally"); err != nil {
		t.Fatal(err)
	}
	top := dialClient(t, midPath)

	// Wire the upcall chain and prove it before any faults.
	notify, err := top.NamedObject("notify")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []int32
	if err := notify.Call("Register", func(x int32, s string) int32 {
		mu.Lock()
		got = append(got, x)
		mu.Unlock()
		return 2 * x
	}); err != nil {
		t.Fatal(err)
	}
	var sum int32
	if err := notify.CallInto("Trigger", []any{&sum}, int32(7), "pre-fault"); err != nil {
		t.Fatal(err)
	}
	if sum != 14 {
		t.Fatalf("pre-fault Trigger sum = %d, want 14", sum)
	}

	tally, err := top.NamedObject("tally")
	if err != nil {
		t.Fatal(err)
	}
	if err := tally.Call("Add", int64(5)); err != nil {
		t.Fatal(err)
	}

	// Lose a relayed batch: the mid tier's next write to the bottom (its
	// batched adds coalesced with its sync) vanishes on the wire. The
	// top-level Sync stalls out on the mid tier's upstream timeout; the
	// batch stays in the mid tier's retransmit buffer.
	cl.rpc().InjectDrop(1)
	for i := 0; i < 4; i++ {
		if err := tally.Async("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	trySync(top)

	// Now kill the middle hop outright and let it heal itself: the mid
	// tier re-dials the bottom, resumes its session, and replays the lost
	// batch without any involvement from the top client.
	cl.rpc().Sever()
	waitFor(t, 10*time.Second, "middle hop to resurrect its upstream", func() bool {
		return mid.Metrics().Resilience.Reconnects >= 1
	})

	// Post-heal traffic with a duplicated frame: the bottom's receive
	// window must execute the batch exactly once.
	cl.latestRPC().InjectDuplicate(1)
	for i := 0; i < 3; i++ {
		if err := tally.Async("Add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "post-heal sync through the chain", func() bool {
		return top.Sync() == nil
	})
	waitFor(t, 3*time.Second, "duplicate batch to be suppressed", func() bool {
		return bottom.Metrics().Resilience.DedupDrops >= 1
	})

	// The ledger is exact across the kill: 5 + 4 replayed + 3 deduped.
	var total int64
	waitFor(t, 5*time.Second, "chain total to settle", func() bool {
		return tally.CallInto("Total", []any{&total}) == nil && total == 12
	})
	if total != 12 {
		t.Errorf("Total = %d, want exactly 12 (lost or duplicated adds across the kill)", total)
	}

	// The upcall chain survived the middle hop's death: bottom-originated
	// triggers climb both hops, return results, and arrive in order.
	for i := int32(1); i <= 5; i++ {
		s, err := bottomNotifier.Trigger(i, "post-heal")
		if err != nil {
			t.Fatalf("bottom Trigger(%d): %v", i, err)
		}
		if s != 2*i {
			t.Errorf("bottom Trigger(%d) = %d, want %d", i, s, 2*i)
		}
	}
	mu.Lock()
	want := []int32{7, 1, 2, 3, 4, 5}
	ok := len(got) == len(want)
	if ok {
		for i := range want {
			ok = ok && got[i] == want[i]
		}
	}
	gotCopy := append([]int32(nil), got...)
	mu.Unlock()
	if !ok {
		t.Errorf("upcall order = %v, want %v (§3.4 ordering broken by resurrection)", gotCopy, want)
	}

	mm := mid.Metrics().Resilience
	if mm.Reconnects < 1 || mm.ReplayedCalls < 1 {
		t.Errorf("mid Resilience = %+v, want Reconnects >= 1 and ReplayedCalls >= 1", mm)
	}
	if bm := bottom.Metrics().Resilience; bm.DedupDrops < 1 {
		t.Errorf("bottom DedupDrops = %d, want >= 1", bm.DedupDrops)
	}
}

// TestBreakerTripsAndCloses exercises the circuit breaker state machine
// through the same hooks the client's resurrect loop drives.
func TestBreakerTripsAndCloses(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 50 * time.Millisecond}
	if !b.allow() || b.open() {
		t.Fatal("new breaker should start closed")
	}
	b.result(false)
	b.result(false)
	if b.open() {
		t.Fatal("breaker opened below threshold")
	}
	b.result(false) // third consecutive failure trips it
	if !b.open() || b.allow() {
		t.Fatal("breaker should be open after threshold failures")
	}
	if got := b.opens.Load(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}
	waitFor(t, 2*time.Second, "cooldown to elapse", b.allow)
	b.result(true) // success closes it and resets the count
	b.result(false)
	b.result(false)
	if b.open() {
		t.Fatal("breaker reopened without threshold consecutive failures after a success")
	}
}

// TestBreakerFailsForwardedCallsFast: with the upstream gone and the
// circuit open, relayed calls fail immediately with a dispatch error
// instead of queueing behind reconnect attempts.
func TestBreakerFailsForwardedCallsFast(t *testing.T) {
	bottom, bottomPath := startServer(t, WithResumeWindow(10*time.Second))
	cobj, _, err := bottom.CreateInstance("counter", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bottom.SetNamed("tally", cobj)

	mid := NewServer(testLibrary(t),
		WithServerLog(func(string, ...any) {}),
		WithUpstreamBreaker(2, 10*time.Second))
	t.Cleanup(func() { mid.Close() })
	midPath := t.TempDir() + "/mid.sock"
	if _, err := mid.Listen("unix", midPath); err != nil {
		t.Fatal(err)
	}
	up, err := mid.DialUpstream("unix", bottomPath,
		WithClientLog(func(string, ...any) {}),
		WithCallTimeout(time.Second),
		WithRetry(RetryPolicy{Attempts: 1, Backoff: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := mid.ImportNamed(up, "tally"); err != nil {
		t.Fatal(err)
	}
	top := dialClient(t, midPath)
	tally, err := top.NamedObject("tally")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := tally.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}

	// Take the bottom away for good: reconnect attempts fail until the
	// breaker gives up on the flapping upstream.
	bottom.Close()
	waitFor(t, 10*time.Second, "breaker to open", func() bool {
		return mid.Metrics().Resilience.BreakerOpens >= 1
	})

	start := time.Now()
	err = tally.CallInto("Total", []any{&total})
	var re *rpc.RemoteError
	if err == nil || !errors.As(err, &re) || re.Status != rpc.StatusDispatch {
		t.Fatalf("relayed call with circuit open = %v, want dispatch error", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("circuit-open call took %v, want fast failure", d)
	}
}
