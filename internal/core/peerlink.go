package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/rpc"
)

// The hop primitive. A peerLink is one other CLAM server this server holds
// a client connection to, together with everything a hop needs: the
// per-link translation cache mapping the peer's class ids to locally
// compiled stubs (proxy-handle re-minting), the circuit breaker gating its
// resurrect loop, and — through the *Remote entries that reference the
// link's client — the relay paths for forwarded calls and chained upcalls.
//
// Two arrangements are built from the same primitive:
//
//   - chain links (DialUpstream): the vertical arrangement, this server
//     stacked on a lower one, calls relayed down and upcalls chained up;
//   - mesh links (JoinMesh, mesh.go): the horizontal arrangement, N peers
//     sharing one consistent-hash object directory, any of them routing a
//     call to the owner and chaining the owner's upcalls back out through
//     whichever peer the client entered at.
//
// The forwarding machinery (forward.go) is identical for both — a hop is
// a hop; only membership and routing differ.

// linkRole distinguishes how a peer link participates in routing.
type linkRole uint8

const (
	// linkChain is a vertical upstream hop (DialUpstream/AttachUpstream).
	linkChain linkRole = iota
	// linkMesh is a horizontal mesh peer (JoinMesh).
	linkMesh
)

// peerLink is one peer server this server dialed, with the translation
// cache mapping the peer's class ids to locally compiled stubs.
type peerLink struct {
	c    *Client
	br   *breaker // nil unless WithUpstreamBreaker (always armed for mesh)
	role linkRole
	name string // mesh member name; empty for chain links

	mu      sync.Mutex
	classes map[uint32]*proxyClass
}

// Mesh links always arm a breaker — membership health is built on it —
// so these defaults apply when WithUpstreamBreaker was not configured.
const (
	meshBreakerThreshold = 5
	meshBreakerCooldown  = 5 * time.Second
)

// breaker is a per-link circuit breaker (WithUpstreamBreaker). After
// threshold consecutive failed reconnect attempts the circuit opens for
// cooldown: the resurrect loop stops dialing a flapping peer, and
// forwarded calls fail fast instead of queueing behind it. A successful
// reconnect closes the circuit and resets the failure count.
type breaker struct {
	threshold int
	cooldown  time.Duration
	opens     atomic.Uint64

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// allow reports whether a reconnect attempt may proceed (circuit closed
// or cooldown elapsed). Wired into the client's resurrect loop.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !time.Now().Before(b.openUntil)
}

// result records the outcome of one reconnect attempt, tripping the
// circuit after threshold consecutive failures.
func (b *breaker) result(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.fails = 0
		b.openUntil = time.Time{}
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.fails = 0
		b.openUntil = time.Now().Add(b.cooldown)
		b.opens.Add(1)
	}
}

// open reports whether the circuit is currently open (calls should fail
// fast rather than wait on the dead peer).
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Now().Before(b.openUntil)
}

// attachLink registers an already-dialed client connection as a peer link
// of the given role. Idempotent per client (the existing link is returned
// regardless of role). The server owns the client from here on and closes
// it on shutdown.
func (s *Server) attachLink(c *Client, role linkRole, name string) (*peerLink, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("clam: server closed")
	}
	for _, pl := range s.peers {
		if pl.c == c {
			s.mu.Unlock()
			return pl, nil
		}
	}
	pl := &peerLink{c: c, role: role, name: name, classes: make(map[uint32]*proxyClass)}
	threshold, cooldown := s.breakerThreshold, s.breakerCooldown
	if role == linkMesh && threshold == 0 {
		threshold, cooldown = meshBreakerThreshold, meshBreakerCooldown
	}
	if threshold > 0 {
		pl.br = &breaker{threshold: threshold, cooldown: cooldown}
		onResult := pl.br.result
		if role == linkMesh {
			// Membership health rides the breaker: every reconnect outcome
			// also updates the mesh directory's up/down view of this peer.
			onResult = func(ok bool) {
				pl.br.result(ok)
				s.meshLinkResult(pl, ok)
			}
		}
		c.setReconnectHooks(pl.br.allow, onResult)
	}
	s.peers = append(s.peers, pl)
	s.mu.Unlock()
	// Link declared multicast topics to the new peer outside s.mu: each
	// link is a subscribe round-trip down the wire (fanout.go).
	s.fan.linkNewPeer(pl)
	return pl, nil
}

// detachLink removes a dead peer link: it disappears from the peer list,
// its fan-out relay reservations are forgotten, any named *Remote entries
// riding its client are unpublished and their proxy handles revoked, and
// the client is closed. Used when a restarted mesh peer re-announces — the
// old link's session can never resume (the restarted server refuses its
// token), so the link is replaced rather than healed.
func (s *Server) detachLink(pl *peerLink) {
	s.mu.Lock()
	for i, cur := range s.peers {
		if cur == pl {
			s.peers = append(s.peers[:i], s.peers[i+1:]...)
			break
		}
	}
	var orphaned []string
	for name, obj := range s.named {
		if r, ok := obj.(*Remote); ok && r.c == pl.c {
			orphaned = append(orphaned, name)
		}
	}
	for _, name := range orphaned {
		delete(s.named, name)
	}
	s.mu.Unlock()
	s.fan.unlinkPeer(pl)
	// Proxy handles over the dead link are stale forever; revoke them so
	// re-imported objects mint fresh handles instead of resolving to a
	// client that can no longer carry calls.
	s.handles.RevokeFunc(func(obj any) bool {
		r, ok := obj.(*Remote)
		return ok && r.c == pl.c
	})
	pl.c.Close()
}

// linkFor returns the peer link owning client c, or nil.
func (s *Server) linkFor(c *Client) *peerLink {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pl := range s.peers {
		if pl.c == c {
			return pl
		}
	}
	return nil
}

// hasPeerLinks reports whether this server forwards to peer servers — the
// only case where answering a Sync involves a round trip.
func (s *Server) hasPeerLinks() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers) > 0
}

// snapshotLinks copies the peer-link list without holding s.mu across
// whatever the caller does per link.
func (s *Server) snapshotLinks() []*peerLink {
	s.mu.Lock()
	defer s.mu.Unlock()
	links := make([]*peerLink, len(s.peers))
	copy(links, s.peers)
	return links
}

// syncPeerLinks flushes and round-trips every peer connection, so a
// client's Sync covers asynchronous calls this server relayed onward
// (§3.4's guarantee, extended across hops). chainOnly restricts the relay
// to chain links — set for Syncs that themselves arrived over a mesh
// link, because mesh edges form cycles (chains never do): the entry
// member relays the client's Sync mesh-wide, and every member receiving
// that relay syncs only what lies below it.
func (s *Server) syncPeerLinks(chainOnly bool) {
	for _, pl := range s.snapshotLinks() {
		if chainOnly && pl.role == linkMesh {
			continue
		}
		if err := pl.c.Sync(); err != nil {
			s.logf("clam: sync relay to peer failed: %v", err)
		}
	}
}

// cachedProxyClass searches the peer-link translation caches for a class
// id (used to answer Describe for classes this server never loaded, e.g.
// in 3+-hop chains).
func (s *Server) cachedProxyClass(classID uint32) *proxyClass {
	for _, pl := range s.snapshotLinks() {
		pl.mu.Lock()
		pc := pl.classes[classID]
		pl.mu.Unlock()
		if pc != nil {
			return pc
		}
	}
	return nil
}

// proxyClassFor resolves a peer server's class id to locally compiled
// stubs, asking the peer to describe the id on first sight. Class ids are
// per-server; the name+version pair is the portable identity the local
// library is searched by. The exact version is preferred; if the library
// only has other versions, the newest is used (the stub layout of
// coexisting versions must agree for forwarding to work, which holds for
// the method signatures — a genuinely incompatible revision would fail
// kind validation rather than corrupt the stream).
func (s *Server) proxyClassFor(pl *peerLink, classID, version uint32) (*proxyClass, error) {
	pl.mu.Lock()
	if pc, ok := pl.classes[classID]; ok {
		pl.mu.Unlock()
		return pc, nil
	}
	pl.mu.Unlock()

	name, ver, err := pl.c.DescribeClass(classID)
	if err != nil {
		return nil, fmt.Errorf("clam: describing peer class %d: %w", classID, err)
	}
	if version == 0 {
		version = ver
	}
	cls, err := s.lib.LookupExact(name, version)
	if err != nil {
		cls, err = s.lib.Lookup(name, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("clam: peer class %q v%d unknown to local library: %w", name, version, err)
	}
	stubs, err := rpc.CompileClass(s.reg, cls.Type, cls.Specs)
	if err != nil {
		return nil, fmt.Errorf("clam: compiling proxy stubs for %q: %w", name, err)
	}
	pc := &proxyClass{name: name, version: version, stubs: stubs}
	pl.mu.Lock()
	if prev, ok := pl.classes[classID]; ok {
		pc = prev
	} else {
		pl.classes[classID] = pc
	}
	pl.mu.Unlock()
	return pc, nil
}
