package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/bundle"
	"clam/internal/handle"
	"clam/internal/rpc"
	"clam/internal/shm"
	"clam/internal/task"
	"clam/internal/wire"
	"clam/internal/xdr"
)

// Client is a CLAM client process: the downward-facing role wrapper over
// the shared endpoint engine. It holds the two per-client channels of
// §4.4 and runs the paper's two client tasks: the application flow (the
// caller's goroutines, which block during RPC requests) and the upcall
// task (a dedicated receive loop that is "initially blocked, and is
// unblocked on receipt of an upcall. After handling the event, any return
// value is sent back to the server, and then the task is blocked again").
// Everything channel-shaped — seq allocation, reply waits, batching,
// heartbeats, teardown — lives in the embedded endpoint; the client adds
// only what is role-specific: the call/load protocol, the upcall handler
// registry, and fault-report delivery.
type Client struct {
	endpoint

	sessionID uint64
	retry     RetryPolicy

	// Session-resurrection identity, granted by the server's hello reply
	// when it runs with WithResumeWindow. A zero token means the session
	// dies with its link (the pre-resurrection behavior). network/addr/
	// dialFn reproduce the original dial on reconnect; epoch advances on
	// each successful resume (only the resurrect goroutine writes it).
	network, addr string
	dialFn        func(network, addr string) (net.Conn, error)
	resumeToken   uint64
	resumeWindow  time.Duration
	epoch         uint32
	resuming      atomic.Bool

	// Reconnect hooks let an owner gate and observe resume attempts —
	// the forwarding layer wires its circuit breaker here.
	reconnMu       sync.Mutex
	reconnAllow    func() bool
	reconnOnResult func(ok bool)

	procMu   sync.Mutex
	procs    map[uint64]reflect.Value
	nextProc uint64

	// bctx is the client's bundling context, built once: the hooks are
	// just typed views of c and Ctx carries no per-call state, so every
	// encode/decode shares this instance instead of allocating one.
	bctx bundle.Ctx

	// fanRemote caches this client's fanout-class instance (fanout.go);
	// one per client so its handle tag anchors the subscription shard.
	fanMu     sync.Mutex
	fanRemote *Remote

	// upWork, when non-nil, fans upcalls out to concurrent handler
	// workers (the relaxation of the one-upcall-task model).
	upWork chan *wire.Msg

	faultMu sync.Mutex
	onFault func(FaultReport)

	wg sync.WaitGroup
}

// DialOption configures a client.
type DialOption func(*dialCfg)

type dialCfg struct {
	dial          func(network, addr string) (net.Conn, error)
	customDial    bool
	noShm         bool
	batching      bool
	maxBatch      int
	callTimeout   time.Duration
	retry         RetryPolicy
	hbInterval    time.Duration
	hbWindow      time.Duration
	upcallWorkers int
	logf          func(string, ...any)
}

// RetryPolicy configures client-side retry of idempotent-marked calls that
// time out. Attempts counts every try including the first; Backoff is the
// delay before the first retry, doubling each further retry up to
// MaxBackoff; Jitter (0..1) randomizes each delay by ±that fraction so a
// fleet of clients does not retry in lockstep.
type RetryPolicy struct {
	Attempts   int
	Backoff    time.Duration
	MaxBackoff time.Duration
	Jitter     float64
}

// DefaultRetryPolicy is the policy WithRetry applies when given a zero
// Attempts count: three tries, 50ms initial backoff, 1s cap, 20% jitter.
var DefaultRetryPolicy = RetryPolicy{
	Attempts:   3,
	Backoff:    50 * time.Millisecond,
	MaxBackoff: time.Second,
	Jitter:     0.2,
}

// delay returns the backoff before retry attempt a (a=1 is the first
// retry), with jitter applied.
func (p RetryPolicy) delay(a int) time.Duration {
	d := p.Backoff
	for i := 1; i < a; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		f := 1 + p.Jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// WithDialFunc substitutes the connection dialer — how the benchmarks
// insert wire.SimLink to emulate a wide-area hop.
func WithDialFunc(f func(network, addr string) (net.Conn, error)) DialOption {
	return func(c *dialCfg) { c.dial = f; c.customDial = true }
}

// WithoutSharedMemory disables the shared-memory fast path: the dial goes
// straight to the socket even when the server offers an shm rendezvous on
// the same host. Useful as an ablation and when the segment's /dev/shm
// usage is unwanted.
func WithoutSharedMemory() DialOption {
	return func(c *dialCfg) { c.noShm = true }
}

// WithoutClientBatching disables asynchronous call batching: every Async
// call is flushed immediately, one message per call. This is the baseline
// for the batching ablation (A-1).
func WithoutClientBatching() DialOption {
	return func(c *dialCfg) { c.batching = false }
}

// WithMaxBatch sets the auto-flush threshold for batched calls.
func WithMaxBatch(n int) DialOption {
	return func(c *dialCfg) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// WithCallTimeout bounds each synchronous call round trip. A call that
// sees no reply within d fails with an error wrapping ErrCallTimeout
// (and, if marked idempotent under a WithRetry policy, is retried).
// Zero disables the per-call deadline.
func WithCallTimeout(d time.Duration) DialOption {
	return func(c *dialCfg) { c.callTimeout = d }
}

// WithRetry enables automatic retry of timed-out synchronous calls on
// methods the application marked idempotent (Remote.MarkIdempotent). Only
// timeouts are retried: an application error or dispatch error means the
// server heard the call, and a transport write failure means the
// connection is gone. A zero-Attempts policy selects DefaultRetryPolicy.
func WithRetry(p RetryPolicy) DialOption {
	return func(c *dialCfg) {
		if p.Attempts <= 0 {
			p = DefaultRetryPolicy
		}
		if p.Backoff <= 0 {
			p.Backoff = DefaultRetryPolicy.Backoff
		}
		c.retry = p
	}
}

// WithClientHeartbeat makes the client ping the server on both channels
// every interval and declare the server unresponsive — failing all pending
// and future calls with ErrServerUnresponsive — when no traffic arrives
// within the window. window values below interval are raised to
// 3×interval. Zero interval (the default) disables client heartbeats.
func WithClientHeartbeat(interval, window time.Duration) DialOption {
	return func(c *dialCfg) {
		if interval <= 0 {
			c.hbInterval, c.hbWindow = 0, 0
			return
		}
		if window < interval {
			window = 3 * interval
		}
		c.hbInterval, c.hbWindow = interval, window
	}
}

// WithClientLog directs client diagnostics.
func WithClientLog(f func(string, ...any)) DialOption {
	return func(c *dialCfg) { c.logf = f }
}

// WithUpcallHandlers runs n concurrent upcall-handler workers instead of
// the paper's single upcall task, pairing with the server-side
// WithMaxClientUpcalls relaxation. With n <= 1 the client keeps the
// paper's model: one task that handles an upcall, replies, and blocks
// again (§4.4).
func WithUpcallHandlers(n int) DialOption {
	return func(c *dialCfg) {
		if n > 1 {
			c.upcallWorkers = n
		}
	}
}

// Dial connects to a CLAM server, establishing the RPC channel and the
// upcall channel.
func Dial(network, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialCfg{
		dial:        func(n, a string) (net.Conn, error) { return net.Dial(n, a) },
		batching:    true,
		maxBatch:    64,
		callTimeout: 30 * time.Second,
		logf:        log.Printf,
	}
	for _, o := range opts {
		o(&cfg)
	}

	// Same-host fast path: when dialing a unix address with the stock
	// dialer, try the server's shm rendezvous first and fall back to the
	// socket if there is no broker. The wrapper becomes the client's
	// dialFn, so session resume re-rendezvouses the same way — a ring
	// session that loses its link resumes onto a fresh ring (or onto a
	// socket, if the restarted server no longer offers shm).
	if network == "unix" && !cfg.noShm && !cfg.customDial && shm.Supported() {
		socketDial := cfg.dial
		cfg.dial = func(n, a string) (net.Conn, error) {
			if n == "unix" {
				if c, err := shm.Dial(shm.BrokerPath(a)); err == nil {
					return c, nil
				}
			}
			return socketDial(n, a)
		}
	}

	rpcRaw, err := cfg.dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("clam: dialing rpc channel: %w", err)
	}
	rpcConn := wire.NewConn(rpcRaw)
	hr, err := helloExchange(rpcConn, roleRPC, 0)
	if err != nil {
		rpcConn.Close()
		return nil, err
	}
	sessionID := hr.Session

	upRaw, err := cfg.dial(network, addr)
	if err != nil {
		rpcConn.Close()
		return nil, fmt.Errorf("clam: dialing upcall channel: %w", err)
	}
	upConn := wire.NewConn(upRaw)
	if _, err := helloExchange(upConn, roleUpcall, sessionID); err != nil {
		rpcConn.Close()
		upConn.Close()
		return nil, err
	}

	c := &Client{
		sessionID:    sessionID,
		retry:        cfg.retry,
		network:      network,
		addr:         addr,
		dialFn:       cfg.dial,
		resumeToken:  hr.Token,
		resumeWindow: time.Duration(hr.WindowNanos),
		procs:        make(map[uint64]reflect.Value),
	}
	c.bctx = bundle.Ctx{
		Objects: (*clientObjectHook)(c),
		Procs:   (*clientProcHook)(c),
	}
	e := &c.endpoint
	e.setRPCConn(rpcConn)
	e.numbered = hr.Token != 0 && hr.WindowNanos > 0
	e.reg = bundle.NewRegistry()
	e.mkCtx = c.ctx
	e.batching = cfg.batching
	e.maxBatch = cfg.maxBatch
	e.callTimeout = cfg.callTimeout
	e.hbInterval = cfg.hbInterval
	e.hbWindow = cfg.hbWindow
	e.link = &linkCounters{}
	e.closedCh = make(chan struct{})
	e.logf = cfg.logf
	e.lastRPC.Store(time.Now().UnixNano())
	e.attachUpcall(upConn) // stamps lastUp

	if cfg.upcallWorkers > 1 {
		c.upWork = make(chan *wire.Msg)
		for i := 0; i < cfg.upcallWorkers; i++ {
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				// Workers outlive any one connection (a resumed session
				// keeps its workers), so they stop on client close, not on
				// channel close.
				for {
					select {
					case msg := <-c.upWork:
						c.handleUpcall(msg)
					case <-c.closedCh:
						return
					}
				}
			}()
		}
	}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.rpcReadLoop(rpcConn)
	}()
	go func() {
		defer c.wg.Done()
		c.upcallReadLoop(upConn)
	}()
	if e.hbInterval > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			e.heartbeatLoop(func(reason string) {
				e.hbLost.Store(true)
				e.logf("clam: client: server unresponsive (%s) for > %v; closing", reason, e.hbWindow)
				e.shutdown(false)
			})
		}()
	}
	return c, nil
}

// SessionID identifies this client on the server.
func (c *Client) SessionID() uint64 { return c.sessionID }

// SessionStats reports the total frames sent and received across both of
// the client's channels — a direct measure of how much traffic crossed
// the address-space boundary.
func (c *Client) SessionStats() (sent, received uint64) {
	s1, r1 := c.rpcConn().Stats()
	s2, r2 := c.upcallConn().Stats()
	return s1 + s2, r1 + r2
}

// ClientMetricsSnapshot is a point-in-time copy of the client's
// robustness counters, the peer of the server's MetricsSnapshot — both
// embed the same LinkStats, because both sides run the same endpoint
// engine.
type ClientMetricsSnapshot struct {
	LinkStats
	// Resilience counts session-resurrection events on this client's
	// link: reconnects completed, calls replayed after them, and (always
	// zero here — dedup happens on the receiving side) duplicate drops.
	Resilience ResilienceStats
	// ServerUnresponsive reports whether the heartbeat declared the
	// server dead and tore the connection down.
	ServerUnresponsive bool
	// CancelsSent counts call seqs this client shipped in MsgCancel
	// frames: abandoned calls announced live plus cancels re-announced
	// during a resume — the sending side of CancelsPropagated.
	CancelsSent uint64
}

// Metrics snapshots the client's robustness counters.
func (c *Client) Metrics() ClientMetricsSnapshot {
	snap := ClientMetricsSnapshot{
		LinkStats:          c.link.snapshot(),
		ServerUnresponsive: c.hbLost.Load(),
		CancelsSent:        c.link.cancels.Load(),
	}
	snap.Resilience.foldLink(c.link, nil)
	return snap
}

// setReconnectHooks installs the gate and observer for resume attempts.
// allow is consulted before each attempt; onResult reports each attempt's
// outcome. The forwarding layer uses these to drive its circuit breaker.
func (c *Client) setReconnectHooks(allow func() bool, onResult func(ok bool)) {
	c.reconnMu.Lock()
	c.reconnAllow = allow
	c.reconnOnResult = onResult
	c.reconnMu.Unlock()
}

func (c *Client) reconnectHooks() (func() bool, func(bool)) {
	c.reconnMu.Lock()
	defer c.reconnMu.Unlock()
	return c.reconnAllow, c.reconnOnResult
}

// Registry exposes the client's bundler registry for custom bundlers.
func (c *Client) Registry() *bundle.Registry { return c.reg }

// OnFault installs the handler for server fault reports (§4.3). The
// handler runs on the upcall flow; keep it brief.
func (c *Client) OnFault(fn func(FaultReport)) {
	c.faultMu.Lock()
	c.onFault = fn
	c.faultMu.Unlock()
}

// ctx returns the client's shared bundling context (see bctx).
func (c *Client) ctx() *bundle.Ctx {
	return &c.bctx
}

// Close tears both channels down.
func (c *Client) Close() error {
	c.shutdown(true)
	c.wg.Wait()
	return nil
}

// --- read loops -------------------------------------------------------------

func (c *Client) rpcReadLoop(conn *wire.Conn) {
	defer c.linkLost(true)
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		c.lastRPC.Store(time.Now().UnixNano())
		switch msg.Type {
		case wire.MsgReply, wire.MsgLoadReply, wire.MsgSyncReply:
			// A delivered reply is owned (and released) by the waiter; an
			// unclaimed one — late reply after a timeout — recycles here.
			if !c.waits.deliver(msg.Seq, msg, false) {
				msg.Release()
			}
		default:
			if handled, stop := c.demuxCommon(conn, msg); handled {
				if stop {
					return
				}
				continue
			}
			c.logf("clam: client: unexpected %v on rpc channel", msg.Type)
			msg.Release()
		}
	}
}

// upcallReadLoop is the paper's second client task: it handles upcalls one
// at a time, sends the return value back, and blocks again — unless
// concurrent handler workers were configured, in which case it only
// demultiplexes.
func (c *Client) upcallReadLoop(up *wire.Conn) {
	defer c.linkLost(false)
	for {
		msg, err := up.Recv()
		if err != nil {
			return
		}
		c.lastUp.Store(time.Now().UnixNano())
		switch msg.Type {
		case wire.MsgUpcall:
			// handleUpcall releases the message when done.
			if c.upWork != nil {
				select {
				case c.upWork <- msg:
				case <-c.closedCh:
					msg.Release()
					return
				}
			} else {
				c.handleUpcall(msg)
			}
		case wire.MsgError:
			var report FaultReport
			sc := rpc.GetScratch()
			err := report.bundle(sc.Decoder(msg.Body))
			sc.Release()
			msg.Release()
			if err != nil {
				c.logf("clam: client: bad fault report: %v", err)
				continue
			}
			c.faultMu.Lock()
			fn := c.onFault
			c.faultMu.Unlock()
			if fn != nil {
				fn(report)
			} else {
				c.logf("clam: client: server fault report: %v", report)
			}
		default:
			if handled, stop := c.demuxCommon(up, msg); handled {
				if stop {
					return
				}
				continue
			}
			c.logf("clam: client: unexpected %v on upcall channel", msg.Type)
			msg.Release()
		}
	}
}

// --- session resurrection ---------------------------------------------------

// linkLost runs when a read loop exits. Without a resume grant it keeps
// the legacy semantics: a dead RPC channel fails every armed wait and the
// client is effectively finished. With one, it marks the link down, fails
// pending waits fast with ErrDisconnected (satisfying "no waiter hangs
// until deadline"), and starts the single resurrect attempt — whichever
// channel died first wins the CAS; the loser is a no-op.
func (c *Client) linkLost(fromRPC bool) {
	if !c.resumable() || c.byeSeen.Load() {
		// No resume grant — or the server deliberately said goodbye
		// (eviction, shutdown): chasing it with resume attempts is wrong.
		if fromRPC {
			c.waits.cancelAll()
		}
		return
	}
	select {
	case <-c.closedCh:
		return
	default:
	}
	if !c.resuming.CompareAndSwap(false, true) {
		return
	}
	c.linkDown.Store(true)
	c.waits.cancelAll()
	// Close both channels so the sibling read loop exits too (its linkLost
	// loses the CAS above).
	c.rpcConn().Close()
	if up := c.upcallConn(); up != nil {
		up.Close()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.resurrect()
	}()
}

// resumable reports whether the server granted this client a resume
// token, i.e. whether link loss means "resuming" rather than "finished".
func (c *Client) resumable() bool { return c.resumeToken != 0 && c.resumeWindow > 0 }

// asDisconnected classifies a send failure: on a resumable client a dead
// connection is a transient outage the resurrect loop is (or will soon
// be) repairing, so surface the retryable sentinel instead of the raw
// transport error — even when the read loop has not flipped linkDown yet.
func (c *Client) asDisconnected(err error) error {
	// A detected replay gap outranks everything: the session is dead for
	// good and "disconnected" would invite the caller to wait out a
	// resume that can never happen.
	if c.replayGap.Load() {
		return ErrReplayGap
	}
	if errors.Is(err, ErrDisconnected) {
		return err
	}
	select {
	case <-c.closedCh:
		return err // deliberate shutdown, not an outage
	default:
	}
	if c.linkDown.Load() || c.resumable() {
		return ErrDisconnected
	}
	return err
}

// resurrect re-dials and resumes the session, retrying under the client's
// backoff policy until the resume window closes. Giving up tears the
// client down — the server will have evicted the parked session by then.
func (c *Client) resurrect() {
	deadline := time.Now().Add(c.resumeWindow)
	pol := c.retry
	if pol.Backoff <= 0 {
		pol.Backoff = DefaultRetryPolicy.Backoff
		pol.MaxBackoff = DefaultRetryPolicy.MaxBackoff
		pol.Jitter = DefaultRetryPolicy.Jitter
	}
	for attempt := 1; ; attempt++ {
		select {
		case <-c.closedCh:
			return
		default:
		}
		if time.Now().After(deadline) {
			c.logf("clam: client: resume window (%v) expired; giving up on session %d", c.resumeWindow, c.sessionID)
			c.shutdown(false)
			return
		}
		allow, onResult := c.reconnectHooks()
		if allow != nil && !allow() {
			// Circuit open: hold off without consuming an attempt.
			if !c.sleepBackoff(pol.Backoff) {
				return
			}
			continue
		}
		ok, fatal := c.tryResume()
		if onResult != nil {
			onResult(ok)
		}
		if ok {
			return
		}
		if fatal {
			c.logf("clam: client: server refused resume of session %d; giving up", c.sessionID)
			c.shutdown(false)
			return
		}
		if !c.sleepBackoff(pol.delay(attempt)) {
			return
		}
	}
}

// sleepBackoff waits d or until the client closes, reporting whether the
// caller should continue.
func (c *Client) sleepBackoff(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closedCh:
		return false
	}
}

// tryResume performs one resurrection attempt: dial both channels, present
// the resume token on each, install the connections, replay unacked
// batches above the server's receive mark, and restart the read loops.
// fatal reports a refusal that retrying cannot fix.
func (c *Client) tryResume() (ok, fatal bool) {
	rpcRaw, err := c.dialFn(c.network, c.addr)
	if err != nil {
		return false, false
	}
	rc := wire.NewConn(rpcRaw)
	rrep, err := resumeExchange(rc, roleRPC, c.sessionID, c.resumeToken, c.epoch)
	if err != nil {
		rc.Close()
		return false, false
	}
	if !rrep.OK {
		rc.Close()
		if rrep.ErrMsg != "" {
			c.logf("clam: client: resume refused: %s", rrep.ErrMsg)
		}
		return false, !rrep.Retry
	}
	upRaw, err := c.dialFn(c.network, c.addr)
	if err != nil {
		rc.Close()
		return false, false
	}
	uc := wire.NewConn(upRaw)
	urep, err := resumeExchange(uc, roleUpcall, c.sessionID, c.resumeToken, rrep.Epoch)
	if err != nil || !urep.OK {
		rc.Close()
		uc.Close()
		return false, err == nil && !urep.Retry
	}

	// Install under resMu so a concurrent Close cannot leave these
	// connections orphaned: either we see closedCh and abort, or shutdown
	// runs after us and closes what we installed.
	c.resMu.Lock()
	select {
	case <-c.closedCh:
		c.resMu.Unlock()
		rc.Close()
		uc.Close()
		return true, false // closed: end the resurrect loop quietly
	default:
	}
	c.epoch = rrep.Epoch
	c.setRPCConn(rc)
	c.replaceUpcall(uc)
	now := time.Now().UnixNano()
	c.lastRPC.Store(now)
	c.lastUp.Store(now)
	c.resMu.Unlock()

	// Replay every numbered batch the server never received; anything at
	// or below its receive mark executed already and must not run twice.
	c.bmu.Lock()
	c.pruneRTLocked(rrep.RecvSeq)
	if c.rtDroppedTo > rrep.RecvSeq {
		// The retransmit cap evicted frames the server never executed: the
		// replay range has a hole, and resuming anyway would silently lose
		// those calls. Fail definitively instead — at-most-once stays
		// honest, and callers get ErrReplayGap rather than a quiet gap.
		dropped := c.rtDroppedTo
		c.bmu.Unlock()
		c.replayGap.Store(true)
		c.logf("clam: client: resume impossible: frames through %d were dropped from the retransmit buffer but the server only received through %d",
			dropped, rrep.RecvSeq)
		c.shutdown(false)
		return true, false // "done": the resurrect loop must not retry
	}
	replayed := 0
	werr := error(nil)
	if len(c.cancelled) > 0 {
		// Cancels recorded against still-unacked frames ship BEFORE the
		// replay: the server notes the seqs first and sheds the replayed
		// calls instead of executing them — a cancelled numbered call never
		// runs after a resurrection.
		seqs := make([]uint64, 0, len(c.cancelled))
		for cs := range c.cancelled {
			seqs = append(seqs, cs)
		}
		if werr = rc.Write(&wire.Msg{Type: wire.MsgCancel, Body: wire.AppendCancelBody(nil, seqs...)}); werr == nil {
			c.link.cancels.Add(uint64(len(seqs)))
		}
	}
	for _, ent := range c.rt {
		if werr = rc.Write(&wire.Msg{Type: wire.MsgCall, Seq: ent.seq, Body: ent.body}); werr != nil {
			break
		}
		replayed += ent.calls
	}
	if werr == nil {
		werr = rc.Flush()
	}
	if replayed > 0 {
		c.link.replayed.Add(uint64(replayed))
	}
	c.linkDown.Store(false)
	var ferr error
	if c.batchCount > 0 {
		// Asyncs buffered during the outage ship now.
		ferr = c.flushLocked()
	}
	c.bmu.Unlock()
	if werr != nil || ferr != nil {
		// The fresh link died during replay; the new read loops below will
		// notice and trigger another round.
		c.logf("clam: client: replay after resume: %v", errors.Join(werr, ferr))
	}
	c.link.reconnects.Add(1)
	c.logf("clam: client: session %d resumed (epoch %d, %d calls replayed)", c.sessionID, c.epoch, replayed)

	// Clear resuming before starting the loops: if the new link dies
	// instantly, its linkLost must be able to win the CAS again.
	c.resuming.Store(false)
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.rpcReadLoop(rc)
	}()
	go func() {
		defer c.wg.Done()
		c.upcallReadLoop(uc)
	}()
	return true, false
}

func (c *Client) handleUpcall(msg *wire.Msg) {
	defer msg.Release()
	sc := rpc.GetScratch()
	defer sc.Release()
	dec := sc.Decoder(msg.Body)
	var hdr rpc.UpcallHeader
	up := c.upcallConn()
	replyErr := func(err error) {
		esc := rpc.GetScratch()
		defer esc.Release()
		rh := rpc.ReplyHeader{Status: rpc.StatusDispatch, ErrMsg: err.Error()}
		if berr := rh.Bundle(esc.Encoder()); berr != nil {
			return
		}
		up.Send(&wire.Msg{Type: wire.MsgUpcallReply, Seq: msg.Seq, Body: esc.Bytes()})
	}
	if err := hdr.Bundle(dec); err != nil {
		replyErr(err)
		return
	}
	c.procMu.Lock()
	fn, ok := c.procs[hdr.ProcID]
	c.procMu.Unlock()
	if !ok {
		replyErr(fmt.Errorf("clam: upcall to unknown procedure %d", hdr.ProcID))
		return
	}
	ctx := c.ctx()
	args, err := rpc.DecodeFuncArgs(c.reg, ctx, dec, fn.Type())
	if err != nil {
		replyErr(err)
		return
	}

	rets, appErr := c.invokeHandler(fn, args)

	// The decode is complete, so the workspace can carry the reply.
	if err := rpc.EncodeFuncResults(c.reg, ctx, sc.Encoder(), fn.Type(), rets, appErr); err != nil {
		replyErr(err)
		return
	}
	if err := up.SendFrame(wire.MsgUpcallReply, msg.Seq, sc.Bytes()); err != nil {
		c.logf("clam: client: upcall reply: %v", err)
	}
}

// invokeHandler runs a registered upcall procedure, converting a panic
// into an application error so a buggy handler does not kill the upcall
// task.
func (c *Client) invokeHandler(fn reflect.Value, args []reflect.Value) (rets []reflect.Value, appErr error) {
	defer func() {
		if r := recover(); r != nil {
			appErr = fmt.Errorf("clam: upcall handler panicked: %v", r)
			rets = nil
		}
	}()
	out := fn.Call(args)
	if n := len(out); n > 0 && fn.Type().Out(n-1) == reflect.TypeOf((*error)(nil)).Elem() {
		if !out[n-1].IsNil() {
			appErr = out[n-1].Interface().(error)
		}
	}
	return out, appErr
}

// registerProc assigns an identifier to a local procedure so it can travel
// to the server as a procedure pointer (§3.5.2). Identifiers are never
// reused; each bundling mints a fresh one, matching the per-translation
// RUC instances on the server side.
func (c *Client) registerProc(fn reflect.Value) uint64 {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	c.nextProc++
	c.procs[c.nextProc] = fn
	return c.nextProc
}

// ProcCount reports how many local procedures are registered for upcalls.
func (c *Client) ProcCount() int {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	return len(c.procs)
}

// --- calls -------------------------------------------------------------------

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("clam: client closed")

// ErrCallTimeout is wrapped by errors from synchronous calls that saw no
// reply within the call timeout; errors.Is(err, ErrCallTimeout) selects
// the retryable failures.
var ErrCallTimeout = errors.New("clam: call timed out")

// ErrServerUnresponsive reports that the client's heartbeat declared the
// server dead (WithClientHeartbeat) and tore the connection down.
var ErrServerUnresponsive = errors.New("clam: server unresponsive (liveness window missed)")

// ErrDisconnected reports that the link died mid-call while the session is
// resumable: the call may or may not have executed, resurrection is in
// progress, and the failure is retryable — it composes with WithRetry on
// methods the application marked idempotent, exactly like a timeout.
var ErrDisconnected = errors.New("clam: connection lost (session resuming)")

// ErrReplayGap reports that a resume was abandoned because the bounded
// retransmit buffer had already evicted unacknowledged batches the server
// never executed: replaying would silently skip those calls, so the
// client fails definitively instead. Unlike ErrDisconnected this is not
// retryable — the lost calls cannot be recovered; the application must
// re-establish its state over a fresh session.
var ErrReplayGap = errors.New("clam: resume abandoned: unacked calls were dropped from the bounded replay buffer")

// ErrDeadlineExceeded is wrapped by errors from calls a server shed
// without executing: the call's deadline budget was already spent when a
// worker reached it, or admission control refused it under overload.
// Unlike a timeout, a shed call definitively did not run; the failure is
// retryable under WithRetry and composes with the upstream breaker.
var ErrDeadlineExceeded = errors.New("clam: deadline exceeded (call shed without executing)")

// Sync flushes the batch and performs an empty round trip, the "special
// synchronization procedure" of §3.4: when it returns, every previously
// issued asynchronous call has been executed by the server.
func (c *Client) Sync() error {
	seq := c.seq.Add(1)
	w := c.waits.arm(seq)
	defer c.waits.disarm(seq)
	// The batch and the sync frame coalesce into one kernel write.
	c.bmu.Lock()
	err := c.writeBatchLocked()
	if err == nil {
		err = c.rpcConn().SendFrame(wire.MsgSync, seq, nil)
	}
	mark := c.sendSeq
	c.bmu.Unlock()
	if err != nil {
		return c.asDisconnected(err)
	}
	msg, err := c.await(context.Background(), seq, w)
	msg.Release()
	if err == nil {
		// The sync reply proves the server received everything we sent
		// before it, so the replay buffer up to mark is ballast.
		c.ackRT(mark)
	}
	return err
}

// call performs a synchronous call on h: any batched asynchronous calls
// travel in the same message, preserving order, and the reply's
// out-parameters are applied to pointer arguments.
func (c *Client) call(h handle.Handle, method string, rets []any, args []any) error {
	return c.callRetry(context.Background(), h, method, rets, args, false)
}

// callRetry wraps callOnce in the client's retry policy. Only calls the
// application marked idempotent are retried, and only on timeout or a
// resumable disconnect: those are the failures where the caller cannot
// know whether the server executed the call, so re-execution must be
// harmless, and only the application can promise that. A cooperative task
// never retries — sleeping out a backoff while holding the scheduler's
// run token would stall every other task (relevant on a middle-tier
// server forwarding from a dispatcher task, see forward.go).
func (c *Client) callRetry(ctx context.Context, h handle.Handle, method string, rets []any, args []any, idempotent bool) error {
	attempts := 1
	if idempotent && c.retry.Attempts > 1 && task.Current() == nil {
		attempts = c.retry.Attempts
	}
	var err error
	// One timer serves every backoff in the loop, Reset between attempts
	// (the pooled call-timer pattern): the early-return branches never
	// leave it fired-but-undrained, because Reset only follows a receive.
	var backoff *time.Timer
	defer func() {
		if backoff != nil {
			backoff.Stop()
		}
	}()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.link.retries.Add(1)
			if backoff == nil {
				backoff = time.NewTimer(c.retry.delay(a))
			} else {
				backoff.Reset(c.retry.delay(a))
			}
			select {
			case <-backoff.C:
			case <-ctx.Done():
				return ctx.Err()
			case <-c.closedCh:
				return ErrClientClosed
			}
		}
		err = c.callOnce(ctx, h, method, rets, args)
		if err == nil || !(errors.Is(err, ErrCallTimeout) || errors.Is(err, ErrDisconnected) || errors.Is(err, ErrDeadlineExceeded)) {
			return err
		}
	}
	return err
}

// callOnce performs one attempt: encode, arm, flush, wait, decode. Each
// attempt uses a fresh sequence number, so a late reply to an abandoned
// attempt is discarded rather than mistaken for the retry's answer.
func (c *Client) callOnce(ctx context.Context, h handle.Handle, method string, rets []any, args []any) error {
	if c.linkDown.Load() {
		if c.replayGap.Load() {
			// Not an outage: the replay buffer lost frames the server
			// never saw, the resume was abandoned, and no retry can help.
			return ErrReplayGap
		}
		// Fail fast mid-outage instead of arming a wait no reply can
		// reach; WithRetry's backoff rides out the resume.
		return ErrDisconnected
	}
	// The call carries the caller's remaining deadline as a microsecond
	// budget (0 = none): each hop anchors it to frame arrival, so queue
	// wait and relay time downstream count against this ctx's deadline.
	var budget uint64
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			rem := time.Until(dl)
			if rem <= 0 {
				return context.DeadlineExceeded
			}
			if budget = uint64(rem / time.Microsecond); budget == 0 {
				budget = 1
			}
		}
	}
	seq := c.seq.Add(1)
	w := c.waits.arm(seq)
	defer c.waits.disarm(seq)
	c.bmu.Lock()
	err := c.appendCallLocked(seq, budget, h, method, args)
	if err != nil {
		c.bmu.Unlock()
		return err // encoding failure: the caller's arguments, not the link
	}
	err = c.flushLocked()
	mark := c.sendSeq
	c.bmu.Unlock()
	if err != nil {
		return c.asDisconnected(err)
	}
	msg, err := c.await(ctx, seq, w)
	if err != nil {
		if errors.Is(err, ErrCallTimeout) || (ctx != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())) {
			// The caller abandoned the call: tell the server (and through
			// it, every hop still holding the call) to shed it.
			c.abandonCall(seq, mark)
		}
		return err
	}
	// Any reply on the in-order stream acknowledges every frame sent
	// before it; drop them from the replay buffer.
	c.ackRT(mark)
	err = c.decodeReply(msg, method, rets, args)
	msg.Release()
	return err
}

// abandonCall propagates a caller's abandonment of callSeq: the cancel is
// recorded against the numbered frame that carried the call (so a resume
// never replays it into execution) and announced to the server
// best-effort. frameSeq is 0 on unnumbered links, where only the live
// announcement applies.
func (c *Client) abandonCall(callSeq, frameSeq uint64) {
	c.bmu.Lock()
	c.noteCancelledLocked(callSeq, frameSeq)
	c.bmu.Unlock()
	c.sendCancel(callSeq)
}

// async queues an asynchronous call (no reply). Depending on batching
// configuration it is shipped immediately or when the batch flushes.
func (c *Client) async(h handle.Handle, method string, args []any) error {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if err := c.appendCallLocked(0, 0, h, method, args); err != nil {
		return err
	}
	if !c.batching || c.batchCount >= c.maxBatch || c.batch.Len() >= maxBatchBytes {
		err := c.flushLocked()
		if err != nil {
			// Classify before deciding: a raw socket error racing the read
			// loop's linkDown flip is still a disconnect on a resumable
			// session.
			err = c.asDisconnected(err)
		}
		if errors.Is(err, ErrDisconnected) && c.batch.Len() < maxBatchBytes {
			// Transparent buffering: the batch rides out the outage and
			// ships on resume. Only overflow surfaces the outage.
			return nil
		}
		return err
	}
	return nil
}

func (c *Client) decodeReply(msg *wire.Msg, method string, rets []any, args []any) error {
	sc := rpc.GetScratch()
	defer sc.Release()
	dec := sc.Decoder(msg.Body)
	var rh rpc.ReplyHeader
	if err := rh.Bundle(dec); err != nil {
		return err
	}
	if rh.Status == rpc.StatusDeadline {
		// The server shed the call without executing it; surface the
		// retryable sentinel rather than a generic remote error.
		return fmt.Errorf("%w: %s: %s", ErrDeadlineExceeded, method, rh.ErrMsg)
	}
	if err := rh.Err(); err != nil {
		return err
	}
	ctx := c.ctx()

	// Out-parameters: (index, present, value) triples applied to the
	// pointer arguments.
	var outc int
	if err := dec.Len(&outc); err != nil {
		return err
	}
	for i := 0; i < outc; i++ {
		var idx uint32
		if err := dec.Uint32(&idx); err != nil {
			return err
		}
		var present bool
		if err := dec.Bool(&present); err != nil {
			return err
		}
		if !present {
			continue
		}
		if int(idx) >= len(args) {
			return fmt.Errorf("clam: reply to %s updates parameter %d of %d", method, idx, len(args))
		}
		av := reflect.ValueOf(args[idx])
		if av.Kind() != reflect.Ptr {
			return fmt.Errorf("clam: reply to %s updates non-pointer parameter %d (%T)", method, idx, args[idx])
		}
		if av.IsNil() {
			// The server allocated an out value the caller did not ask
			// for; decode into a throwaway of the right type.
			av = reflect.New(av.Type().Elem())
		}
		if err := rpc.DecodeValue(c.reg, ctx, dec, av.Elem()); err != nil {
			return fmt.Errorf("clam: reply to %s, parameter %d: %w", method, idx, err)
		}
	}

	// Results.
	var retc int
	if err := dec.Len(&retc); err != nil {
		return err
	}
	if retc != len(rets) {
		return fmt.Errorf("clam: %s returned %d results, caller expects %d", method, retc, len(rets))
	}
	for i := 0; i < retc; i++ {
		rv := reflect.ValueOf(rets[i])
		if rv.Kind() != reflect.Ptr || rv.IsNil() {
			return fmt.Errorf("clam: result target %d for %s must be a non-nil pointer, got %T", i, method, rets[i])
		}
		if err := rpc.DecodeValue(c.reg, ctx, dec, rv.Elem()); err != nil {
			return fmt.Errorf("clam: result %d of %s: %w", i, method, err)
		}
	}
	return nil
}

// --- dynamic loading -----------------------------------------------------------

func (c *Client) loadOp(req loadBody) (*loadReplyBody, error) {
	seq := c.seq.Add(1)
	w := c.waits.arm(seq)
	defer c.waits.disarm(seq)

	sc := rpc.GetScratch()
	if err := req.bundle(sc.Encoder()); err != nil {
		sc.Release()
		return nil, err
	}
	// Queued asynchronous calls precede the load in the same kernel write,
	// preserving order while coalescing the two frames.
	c.bmu.Lock()
	err := c.writeBatchLocked()
	if err == nil {
		err = c.rpcConn().Send(&wire.Msg{Type: wire.MsgLoad, Seq: seq, Body: sc.Bytes()})
	}
	mark := c.sendSeq
	c.bmu.Unlock()
	sc.Release()
	if err != nil {
		return nil, c.asDisconnected(err)
	}
	msg, err := c.await(context.Background(), seq, w)
	if err != nil {
		return nil, err
	}
	c.ackRT(mark)
	var reply loadReplyBody
	dsc := rpc.GetScratch()
	err = reply.bundle(dsc.Decoder(msg.Body))
	dsc.Release()
	msg.Release()
	if err != nil {
		return nil, err
	}
	if !reply.OK {
		return nil, fmt.Errorf("clam: %s", reply.ErrMsg)
	}
	return &reply, nil
}

// LoadClass dynamically loads a class into the server (§2), returning its
// class identifier and the version actually loaded.
func (c *Client) LoadClass(name string, minVersion uint32) (classID, version uint32, err error) {
	reply, err := c.loadOp(loadBody{Op: loadOpLoad, Name: name, MinVersion: minVersion})
	if err != nil {
		return 0, 0, err
	}
	return reply.ClassID, reply.Version, nil
}

// New loads (if necessary) and instantiates a class in the server,
// returning a remote reference to the instance.
func (c *Client) New(name string, minVersion uint32) (*Remote, error) {
	reply, err := c.loadOp(loadBody{Op: loadOpNew, Name: name, MinVersion: minVersion})
	if err != nil {
		return nil, err
	}
	return &Remote{c: c, h: reply.Obj, classID: reply.ClassID, version: reply.Version}, nil
}

// LoadClassExact loads a specific version of a class, so different
// clients can run different versions side by side (§2.1).
func (c *Client) LoadClassExact(name string, version uint32) (classID uint32, err error) {
	reply, err := c.loadOp(loadBody{Op: loadOpLoadExact, Name: name, MinVersion: version})
	if err != nil {
		return 0, err
	}
	return reply.ClassID, nil
}

// NewExact instantiates a pinned class version in the server.
func (c *Client) NewExact(name string, version uint32) (*Remote, error) {
	reply, err := c.loadOp(loadBody{Op: loadOpNewExact, Name: name, MinVersion: version})
	if err != nil {
		return nil, err
	}
	return &Remote{c: c, h: reply.Obj, classID: reply.ClassID, version: reply.Version}, nil
}

// Unload removes a loaded class version from the server.
func (c *Client) Unload(name string, version uint32) error {
	_, err := c.loadOp(loadBody{Op: loadOpUnload, Name: name, MinVersion: version})
	return err
}

// NamedObject returns a remote reference to a server instance published
// with Server.SetNamed — how clients find base abstractions like the
// screen.
func (c *Client) NamedObject(name string) (*Remote, error) {
	reply, err := c.loadOp(loadBody{Op: loadOpNamed, Name: name})
	if err != nil {
		return nil, err
	}
	return &Remote{c: c, h: reply.Obj, classID: reply.ClassID, version: reply.Version}, nil
}

// DescribeClass resolves a class identifier on this client's server to
// its {name, version} identity — how a forwarding middle tier learns what
// class hides behind a handle it is about to proxy upward (§3.5.1 across
// hops, see forward.go).
func (c *Client) DescribeClass(classID uint32) (name string, version uint32, err error) {
	reply, err := c.loadOp(loadBody{Op: loadOpDescribe, ClassID: classID})
	if err != nil {
		return "", 0, err
	}
	return reply.Name, reply.Version, nil
}

// --- Remote ---------------------------------------------------------------------

// Remote is the client's reference to a server object: the stored handle
// of §3.5.1. "The client bundler assumes that an incoming object pointer
// is a handle, stores the handle, and returns a pointer to the stored
// handle" — a Remote is that stored handle, and performing an operation on
// it "becomes an RPC back into the server".
type Remote struct {
	c *Client
	h handle.Handle

	// Class identity behind the handle. Known immediately for references
	// minted by the load protocol; references decoded out of call results
	// arrive as bare capabilities and are resolved on demand (ensureClass)
	// when a forwarding server needs to re-export them. Guarded by infoMu
	// because that lazy resolution can race concurrent forwarders.
	infoMu  sync.Mutex
	classID uint32
	version uint32

	// idem holds the method names the application marked idempotent
	// (method string → struct{}); only those are retried under WithRetry.
	idem sync.Map
}

// Handle exposes the capability.
func (r *Remote) Handle() handle.Handle { return r.h }

// classInfo returns the resolved class identity (zero if never resolved).
func (r *Remote) classInfo() (classID, version uint32) {
	r.infoMu.Lock()
	defer r.infoMu.Unlock()
	return r.classID, r.version
}

// ClassID reports the object's class identifier, when known.
func (r *Remote) ClassID() uint32 {
	id, _ := r.classInfo()
	return id
}

// Version reports the object's class version, when known.
func (r *Remote) Version() uint32 {
	_, v := r.classInfo()
	return v
}

// ensureClass resolves the class identity behind r when it arrived as a
// bare capability (decoded from a call result rather than a load reply):
// the owning server is asked to describe the handle. Idempotent and
// cheap after the first resolution.
func (r *Remote) ensureClass() error {
	r.infoMu.Lock()
	defer r.infoMu.Unlock()
	if r.classID != 0 {
		return nil
	}
	reply, err := r.c.loadOp(loadBody{Op: loadOpDescribe, Obj: r.h})
	if err != nil {
		return err
	}
	r.classID, r.version = reply.ClassID, reply.Version
	return nil
}

// Client returns the owning client.
func (r *Remote) Client() *Client { return r.c }

// MarkIdempotent declares that the named methods may safely execute more
// than once, opting them into the client's WithRetry policy. Returns r
// for chaining: obj.MarkIdempotent("Total", "Get").
func (r *Remote) MarkIdempotent(methods ...string) *Remote {
	for _, m := range methods {
		r.idem.Store(m, struct{}{})
	}
	return r
}

func (r *Remote) isIdempotent(method string) bool {
	_, ok := r.idem.Load(method)
	return ok
}

// Call synchronously invokes method on the remote object. Pointer
// arguments receive the server's out/inout updates; results, if any, are
// discarded — use CallInto to receive them.
func (r *Remote) Call(method string, args ...any) error {
	return r.c.callRetry(context.Background(), r.h, method, nil, args, r.isIdempotent(method))
}

// CallInto synchronously invokes method, decoding each result into the
// corresponding non-nil pointer in rets.
func (r *Remote) CallInto(method string, rets []any, args ...any) error {
	return r.c.callRetry(context.Background(), r.h, method, rets, args, r.isIdempotent(method))
}

// CallCtx is Call with a per-call deadline or cancellation: the call
// fails with ctx.Err() once ctx is done, in addition to the client-wide
// WithCallTimeout bound.
func (r *Remote) CallCtx(ctx context.Context, method string, args ...any) error {
	return r.c.callRetry(ctx, r.h, method, nil, args, r.isIdempotent(method))
}

// CallIntoCtx is CallInto with a per-call context.
func (r *Remote) CallIntoCtx(ctx context.Context, method string, rets []any, args ...any) error {
	return r.c.callRetry(ctx, r.h, method, rets, args, r.isIdempotent(method))
}

// Async queues an asynchronous invocation: no reply, batched with other
// asynchronous calls until a synchronous call, Flush or Sync ships them
// (§3.4). Only methods without results and without out-parameters should
// be called this way; the server silently discards anything a batched
// call would have returned.
func (r *Remote) Async(method string, args ...any) error {
	return r.c.async(r.h, method, args)
}

// String renders the reference.
func (r *Remote) String() string {
	id, v := r.classInfo()
	return fmt.Sprintf("remote(%v class=%d v=%d)", r.h, id, v)
}

// --- client-side bundle hooks ------------------------------------------------------

// clientObjectHook treats *Remote as the client's object-pointer type: it
// bundles the stored handle out and wraps incoming handles in new Remotes.
type clientObjectHook Client

var remoteStructType = reflect.TypeOf(Remote{})

// IsClass reports whether t is the Remote struct type.
func (h *clientObjectHook) IsClass(t reflect.Type) bool { return t == remoteStructType }

// BundleObject converts between *Remote and wire handles.
func (h *clientObjectHook) BundleObject(s *xdr.Stream, v reflect.Value) error {
	c := (*Client)(h)
	switch s.Op() {
	case xdr.Encode:
		if v.IsNil() {
			nh := handle.Nil
			return nh.Bundle(s)
		}
		r := v.Interface().(*Remote)
		if r.c != nil && r.c != c {
			return fmt.Errorf("clam: remote %v belongs to another client", r)
		}
		hd := r.h
		return hd.Bundle(s)
	default:
		var hd handle.Handle
		if err := hd.Bundle(s); err != nil {
			return err
		}
		if hd.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		v.Set(reflect.ValueOf(&Remote{c: c, h: hd}))
		return nil
	}
}

// clientProcHook bundles local procedures into procedure identifiers. The
// reverse direction (a server passing a procedure pointer to a client) is
// unimplemented, as in the paper.
type clientProcHook Client

// BundleProc registers the func and transmits its identifier.
func (h *clientProcHook) BundleProc(s *xdr.Stream, v reflect.Value) error {
	c := (*Client)(h)
	switch s.Op() {
	case xdr.Encode:
		if v.IsNil() {
			var zero uint64
			return s.Uint64(&zero)
		}
		id := c.registerProc(v)
		return s.Uint64(&id)
	default:
		return fmt.Errorf("clam: receiving a procedure pointer from the server is not supported (as in the paper)")
	}
}
