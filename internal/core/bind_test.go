package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func reflectField(name, tag string) reflect.StructField {
	return reflect.StructField{
		Name: name,
		Type: reflect.TypeOf(func() {}),
		Tag:  reflect.StructTag(`clam:"` + tag + `"`),
	}
}

func TestBindTypedStubs(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	rem, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	var stubs struct {
		Add   func(n int64) error
		Total func() (int64, error)
		Div   func(a, b int64) (int64, error)
	}
	if err := rem.Bind(&stubs); err != nil {
		t.Fatal(err)
	}
	if err := stubs.Add(40); err != nil {
		t.Fatal(err)
	}
	if err := stubs.Add(2); err != nil {
		t.Fatal(err)
	}
	total, err := stubs.Total()
	if err != nil || total != 42 {
		t.Errorf("Total = %d, %v", total, err)
	}
	q, err := stubs.Div(10, 2)
	if err != nil || q != 5 {
		t.Errorf("Div = %d, %v", q, err)
	}
	if _, err := stubs.Div(1, 0); err == nil {
		t.Error("remote error lost through typed stub")
	}
}

func TestBindTagRenameAndSkip(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	rem, _ := c.New("counter", 0)
	var stubs struct {
		Increment func(n int64) error `clam:"Add"`
		Ignored   func()              `clam:"-"`
		hidden    func()              // unexported: skipped
	}
	if err := rem.Bind(&stubs); err != nil {
		t.Fatal(err)
	}
	if err := stubs.Increment(7); err != nil {
		t.Fatal(err)
	}
	if stubs.Ignored != nil {
		t.Error("skipped field was bound")
	}
	_ = stubs.hidden
	var total int64
	if err := rem.CallInto("Total", []any{&total}); err != nil || total != 7 {
		t.Errorf("total=%d err=%v", total, err)
	}
}

func TestBindAsyncStub(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	rem, _ := c.New("counter", 0)
	var stubs struct {
		Add   func(n int64) error `clam:",async"`
		Total func() (int64, error)
	}
	if err := rem.Bind(&stubs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := stubs.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	// The synchronous Total flushes the batch ahead of itself.
	total, err := stubs.Total()
	if err != nil || total != 5 {
		t.Errorf("total=%d err=%v", total, err)
	}
}

func TestBindObjectReturns(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	p, err := c.New("parent", 0)
	if err != nil {
		t.Fatal(err)
	}
	var stubs struct {
		Child func(i int64) (*Remote, error)
	}
	if err := p.Bind(&stubs); err != nil {
		t.Fatal(err)
	}
	kid, err := stubs.Child(0)
	if err != nil || kid == nil {
		t.Fatalf("Child: %v, %v", kid, err)
	}
	var name string
	if err := kid.CallInto("Name", []any{&name}); err != nil || name != "alice" {
		t.Errorf("name=%q err=%v", name, err)
	}
}

func TestBindUpcallRegistration(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	n, _ := c.New("notifier", 0)
	var stubs struct {
		Register func(fn func(int32, string) int32) error
		Trigger  func(x int32, s string) (int32, error)
	}
	if err := n.Bind(&stubs); err != nil {
		t.Fatal(err)
	}
	if err := stubs.Register(func(x int32, s string) int32 { return x + 1 }); err != nil {
		t.Fatal(err)
	}
	sum, err := stubs.Trigger(9, "typed")
	if err != nil || sum != 10 {
		t.Errorf("sum=%d err=%v", sum, err)
	}
}

func TestBindRejectsBadShapes(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	rem, _ := c.New("counter", 0)

	if err := rem.Bind(nil); !errors.Is(err, ErrBadBinding) {
		t.Errorf("nil: %v", err)
	}
	if err := rem.Bind(struct{}{}); !errors.Is(err, ErrBadBinding) {
		t.Errorf("non-pointer: %v", err)
	}
	var notFunc struct{ Add int }
	if err := rem.Bind(&notFunc); !errors.Is(err, ErrBadBinding) {
		t.Errorf("non-func field: %v", err)
	}
	var variadic struct{ Add func(...int64) error }
	if err := rem.Bind(&variadic); !errors.Is(err, ErrBadBinding) {
		t.Errorf("variadic: %v", err)
	}
	var asyncWithData struct {
		Total func() (int64, error) `clam:",async"`
	}
	if err := rem.Bind(&asyncWithData); !errors.Is(err, ErrBadBinding) {
		t.Errorf("async with data: %v", err)
	}
	var errNotLast struct {
		Div func(a, b int64) (error, int64)
	}
	if err := rem.Bind(&errNotLast); !errors.Is(err, ErrBadBinding) {
		t.Errorf("error not last: %v", err)
	}
}

func TestBindStubWithoutErrorPanicsOnFailure(t *testing.T) {
	_, path := startServer(t)
	c := dialClient(t, path)
	rem, _ := c.New("counter", 0)
	var stubs struct {
		Bogus func() // no error result, method does not exist
	}
	if err := rem.Bind(&stubs); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Error("failure with no error slot did not panic")
		} else if !strings.Contains(r.(string), "Bogus") {
			t.Errorf("panic %v lacks method name", r)
		}
	}()
	stubs.Bogus()
}

func TestParseBindTag(t *testing.T) {
	cases := []struct {
		tag   string
		name  string
		async bool
		skip  bool
	}{
		{"", "F", false, false},
		{"-", "", false, true},
		{"Renamed", "Renamed", false, false},
		{",async", "F", true, false},
		{"Renamed,async", "Renamed", true, false},
	}
	for _, tc := range cases {
		f := reflectField("F", tc.tag)
		name, async, skip := parseBindTag(f)
		if skip != tc.skip || (!skip && (name != tc.name || async != tc.async)) {
			t.Errorf("tag %q: got (%q,%v,%v) want (%q,%v,%v)",
				tc.tag, name, async, skip, tc.name, tc.async, tc.skip)
		}
	}
}
