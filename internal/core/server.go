package core

import (
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"reflect"
	"runtime"
	"sync"
	"time"

	"clam/internal/bundle"
	"clam/internal/dynload"
	"clam/internal/handle"
	"clam/internal/journal"
	"clam/internal/rpc"
	"clam/internal/ruc"
	"clam/internal/shm"
	"clam/internal/task"
	"clam/internal/wire"
)

// Server is a CLAM server: it accepts client connections, dynamically
// loads modules on request, dispatches remote procedure calls into loaded
// classes, and carries distributed upcalls back to clients. The server
// itself "contains no code specific to window management" or any other
// application — all application code arrives by loading classes (§2).
type Server struct {
	lib     *dynload.Library
	loader  *dynload.Loader
	handles *handle.Table
	reg     *bundle.Registry
	sched   *task.Sched
	rucs    *ruc.Table

	mu        sync.Mutex
	sessions  map[uint64]*session
	nextSess  uint64
	listeners []net.Listener
	named     map[string]any
	stubs     map[uint32]*rpc.ClassStubs // class id → compiled stubs
	peers     []*peerLink                // peer servers this server dialed (peerlink.go)
	closed    bool

	wg sync.WaitGroup // accept loops, connection readers, heartbeat loops

	upcallTimeout    time.Duration
	maxClientUpcalls int
	logf             func(format string, args ...any)

	// Robustness knobs: heartbeat cadence and liveness window (zero
	// disables heartbeats), the session-count ceiling, and how many
	// consecutive upcall failures mark a client a slow consumer.
	hbInterval        time.Duration
	hbWindow          time.Duration
	maxSessions       int
	slowConsumerLimit int

	// Session resurrection (WithResumeWindow): how long a session whose
	// link died is parked — handle table, RUC registrations and receive
	// window retained — awaiting a resume, before it is evicted. Zero
	// (the default) disables resurrection entirely.
	resumeWindow time.Duration

	// Upstream circuit breaker (WithUpstreamBreaker): after this many
	// consecutive failed reconnect attempts to an upstream, hold attempts
	// for the cooldown. Zero threshold disables the breaker.
	breakerThreshold int
	breakerCooldown  time.Duration

	// Overload shedding (§6.8). maxQueueDelay, when nonzero, arms the
	// admission layer: sole-call frames whose estimated queue wait exceeds
	// the ceiling — or would alone exhaust the call's budget — are refused
	// at the read loop with StatusDeadline. noShed is the ablation switch
	// (WithoutDeadlineShedding): it disables expired-budget shedding so
	// doomed work executes anyway, for goodput comparison. Cancellation
	// (MsgCancel) is never disabled — a cancelled call must not run.
	maxQueueDelay time.Duration
	noShed        bool

	// Per-object dispatch (executor.go). exec is nil when the serial
	// dispatcher ablation is selected; every consumer branches on that.
	dispatchWorkers int
	serialDispatch  bool
	exec            *executor

	// Multicast fan-out (fanout.go): declared topics and the sharded
	// subscription table behind Publish/RegisterMulticast.
	fanoutShards int
	fan          *fanoutState

	// Federated mesh membership (mesh.go): nil until JoinMesh. Guarded by
	// its own lock inside, not s.mu.
	mesh *meshState

	// Shared-memory transport (WithSharedMemory): when enabled, Listen on
	// a unix address also starts an shm rendezvous broker at
	// <addr>.shm, and same-host clients ride mmap'd rings instead of the
	// socket. shmRing is the per-direction ring size in bytes (0 =
	// shm.DefaultRing).
	shmEnabled bool
	shmRing    int

	// Write-ahead journal (WithJournal, journal.go): the durable record of
	// grants, mints, registrations and receive marks that lets parked
	// sessions survive a server crash. journalErr is a deferred open
	// failure surfaced by Serve/Listen; recoverOnce gates phase-2 replay.
	journalDir  string
	journal     *journal.Journal
	journalErr  error
	jstate      *journal.State
	recoverOnce sync.Once
	recov       journalRecovery

	metrics *metrics
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithUpcallTimeout bounds how long a distributed upcall waits for the
// client task to complete (default 30s).
func WithUpcallTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.upcallTimeout = d }
}

// WithMaxClientUpcalls raises the bound on concurrently active upcalls to
// one client. The default of 1 is the paper's design ("we allow only one
// upcall to be active per client process", §4.4); raising it implements
// the relaxation the paper anticipates for "future designs". Values < 1
// are treated as 1. Note that a client's upcall task handles upcalls
// sequentially regardless, so concurrency beyond 1 pays off when upcall
// handlers themselves block (e.g. on reentrant calls) or when clients
// enable concurrent handling.
func WithMaxClientUpcalls(n int) ServerOption {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.maxClientUpcalls = n
	}
}

// WithServerLog directs server diagnostics; default log.Printf.
func WithServerLog(f func(string, ...any)) ServerOption {
	return func(s *Server) { s.logf = f }
}

// WithScheduler substitutes the task scheduler, e.g. one built with
// task.WithoutReuse for the reuse ablation.
func WithScheduler(sched *task.Sched) ServerOption {
	return func(s *Server) { s.sched = sched }
}

// WithFanoutShards sets how many independently locked shards the
// multicast subscription table uses (default ruc.DefaultShards, rounded
// up to a power of two). Raise it when profiles show subscribe/
// unsubscribe churn contending with publish snapshots; shard count does
// not affect delivery throughput, only registration concurrency.
func WithFanoutShards(n int) ServerOption {
	return func(s *Server) { s.fanoutShards = n }
}

// WithHeartbeat enables liveness checking on both per-client streams: the
// server pings every interval and evicts a session once no traffic has
// arrived on one of its channels for the given window. The eviction
// cancels any server task parked on an upcall to that client (counted as
// an upcall failure) and sends the client a final FaultReport notice.
// window values below interval are raised to 3×interval. A zero interval
// (the default) disables heartbeats, preserving the paper's
// cooperative-client trust model.
func WithHeartbeat(interval, window time.Duration) ServerOption {
	return func(s *Server) {
		if interval <= 0 {
			s.hbInterval, s.hbWindow = 0, 0
			return
		}
		if window < interval {
			window = 3 * interval
		}
		s.hbInterval, s.hbWindow = interval, window
	}
}

// WithMaxSessions caps concurrently connected clients; further connection
// attempts are refused at the handshake (counted in
// MetricsSnapshot.RejectedSessions). Zero, the default, means unlimited.
func WithMaxSessions(n int) ServerOption {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.maxSessions = n
	}
}

// WithSlowConsumerLimit evicts a client after n consecutive failed
// distributed upcalls (timeouts or transport errors) — the graceful-
// degradation guard against a client whose upcall task has wedged while
// its connections stay up. Zero, the default, disables the guard.
func WithSlowConsumerLimit(n int) ServerOption {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.slowConsumerLimit = n
	}
}

// WithResumeWindow enables session resurrection: when a client's link
// dies, its session is parked — exported handles, RUC procedure
// registrations and the receive-sequence window retained — for d, during
// which the client may reconnect and present the resume token granted at
// hello. A resumed session replays unacknowledged batched calls; the
// receive window suppresses duplicates, preserving at-most-once execution
// (DESIGN.md §6.3). Zero (the default) keeps the immediate-eviction
// behavior.
func WithResumeWindow(d time.Duration) ServerOption {
	return func(s *Server) {
		if d < 0 {
			d = 0
		}
		s.resumeWindow = d
	}
}

// WithUpstreamBreaker arms a circuit breaker on every upstream link this
// server dials (DialUpstream/AttachUpstream): after threshold consecutive
// failed reconnect attempts, further attempts are held for cooldown, and
// forwarded calls fail fast while the circuit is open — so a flapping
// lower server cannot melt the dispatcher with reconnect storms. A
// cooldown <= 0 defaults to 5s; threshold <= 0 disables the breaker.
func WithUpstreamBreaker(threshold int, cooldown time.Duration) ServerOption {
	return func(s *Server) {
		if threshold < 0 {
			threshold = 0
		}
		if cooldown <= 0 {
			cooldown = 5 * time.Second
		}
		s.breakerThreshold = threshold
		s.breakerCooldown = cooldown
	}
}

// WithMaxQueueDelay arms the admission layer (§6.8): when the dispatch
// queue's estimated wait exceeds d — or, for a budgeted call, when the
// wait alone would exhaust the call's remaining budget — synchronous
// sole-call frames are refused at the read loop with a StatusDeadline
// reply, before they ever occupy a dispatch lane. Under WithRetry the
// client sees ErrDeadlineExceeded, which is retryable for idempotent
// calls — admission control composes with retry and the breaker rather
// than fighting them. Zero (the default) disables admission control.
func WithMaxQueueDelay(d time.Duration) ServerOption {
	return func(s *Server) {
		if d < 0 {
			d = 0
		}
		s.maxQueueDelay = d
	}
}

// WithoutDeadlineShedding disables expired-budget shedding — doomed calls
// execute anyway and their replies are discarded by a caller that already
// gave up. This is the ablation baseline for the overload goodput matrix
// (clambench -overload); production servers should not use it. Explicit
// cancellation (MsgCancel) still sheds: a cancelled call must never run
// regardless of ablation.
func WithoutDeadlineShedding() ServerOption {
	return func(s *Server) { s.noShed = true }
}

// shedExpired reports whether expired-budget shedding is active.
func (s *Server) shedExpired() bool { return !s.noShed }

// WithDispatchWorkers bounds the per-object executor's worker pool: at
// most n handlers run simultaneously (blocked handlers — distributed
// upcalls, forwarded calls — release their slot and do not count). The
// default is max(2, GOMAXPROCS). Values < 1 are treated as 1; note that
// one worker still differs from the serial ablation — ordering comes from
// the dependency lanes, not from global serialization.
func WithDispatchWorkers(n int) ServerOption {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.dispatchWorkers = n
	}
}

// WithPerObjectDispatch selects the dispatch engine. On (the default),
// incoming calls are serialized per target object and run concurrently
// across objects on a bounded worker pool (executor.go). Off restores the
// original one-dispatcher-task-per-session engine — the ablation baseline,
// which also globally serializes handler execution under the scheduler's
// run token.
func WithPerObjectDispatch(on bool) ServerOption {
	return func(s *Server) { s.serialDispatch = !on }
}

// WithSharedMemory offers the same-host shared-memory transport: every
// Listen on a unix address also starts an shm rendezvous broker at
// <addr>.shm, and clients dialing that address ride a pair of mmap'd
// rings (internal/shm) instead of the socket, with the socket kept as the
// transparent fallback. ringBytes is the per-direction ring size; 0
// selects shm.DefaultRing (1 MiB), other values are clamped and rounded
// up to a power of two. No-op on platforms without the transport.
func WithSharedMemory(ringBytes int) ServerOption {
	return func(s *Server) {
		s.shmEnabled = shm.Supported()
		s.shmRing = ringBytes
	}
}

// NewServer returns a server drawing loadable classes from lib.
func NewServer(lib *dynload.Library, opts ...ServerOption) *Server {
	s := &Server{
		lib:              lib,
		handles:          handle.NewTable(),
		reg:              bundle.NewRegistry(),
		sessions:         make(map[uint64]*session),
		named:            make(map[string]any),
		stubs:            make(map[uint32]*rpc.ClassStubs),
		upcallTimeout:    30 * time.Second,
		maxClientUpcalls: 1,
		logf:             log.Printf,
		metrics:          newMetrics(),
	}
	s.loader = dynload.NewLoader(lib)
	s.rucs = ruc.NewTable(func(e *ruc.Entry, err error) {
		s.logf("clam: upcall through RUC %d failed: %v", e.ID, err)
	})
	for _, o := range opts {
		o(s)
	}
	s.fan = newFanoutState(s, s.fanoutShards)
	// Every server speaks multicast: the fanout class is how remote
	// clients subscribe, so it rides along in the library unless the
	// application registered its own version.
	if err := RegisterFanoutClass(lib); err != nil && !errors.Is(err, dynload.ErrDuplicate) {
		s.logf("clam: registering fanout class: %v", err)
	}
	// Likewise the mesh class: peers announce themselves, read the roster
	// and route named-object creation through it (mesh.go).
	if err := RegisterMeshClass(lib); err != nil && !errors.Is(err, dynload.ErrDuplicate) {
		s.logf("clam: registering mesh class: %v", err)
	}
	if s.sched == nil {
		s.sched = task.New()
	}
	if !s.serialDispatch {
		if s.dispatchWorkers == 0 {
			s.dispatchWorkers = runtime.GOMAXPROCS(0)
			if s.dispatchWorkers < 2 {
				s.dispatchWorkers = 2
			}
		}
		s.exec = newExecutor(s, s.dispatchWorkers)
	}
	s.openJournal()
	return s
}

// Registry exposes the server's bundler registry so applications can
// register custom (typedef-style and named) bundlers, as in Figure 3.1.
func (s *Server) Registry() *bundle.Registry { return s.reg }

// Loader exposes dynamic loading for server-side bootstrap (built-in
// classes loaded before any client connects).
func (s *Server) Loader() *dynload.Loader { return s.loader }

// Handles exposes the server's handle table (primarily for tests and
// diagnostics).
func (s *Server) Handles() *handle.Table { return s.handles }

// Sched exposes the task scheduler, for modules that start their own
// asynchronous activities (§4.3's input tasks).
func (s *Server) Sched() *task.Sched { return s.sched }

// Rucs exposes the remote-upcall table for diagnostics.
func (s *Server) Rucs() *ruc.Table { return s.rucs }

// Load loads a class server-side (bootstrap use; clients load via the
// wire protocol) and compiles its method stubs.
func (s *Server) Load(name string, minVersion uint32) (*dynload.Loaded, error) {
	loaded, err := s.loader.Load(name, minVersion)
	if err != nil {
		return nil, err
	}
	if err := s.ensureStubs(loaded); err != nil {
		return nil, err
	}
	return loaded, nil
}

func (s *Server) ensureStubs(loaded *dynload.Loaded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stubs[loaded.ID]; ok {
		return nil
	}
	cs, err := rpc.CompileClass(s.reg, loaded.Type, loaded.Specs)
	if err != nil {
		return fmt.Errorf("clam: compiling stubs for %s v%d: %w", loaded.Name, loaded.Version, err)
	}
	s.stubs[loaded.ID] = cs
	return nil
}

// LoadExact loads a specific class version server-side and compiles its
// stubs.
func (s *Server) LoadExact(name string, version uint32) (*dynload.Loaded, error) {
	loaded, err := s.loader.LoadExact(name, version)
	if err != nil {
		return nil, err
	}
	if err := s.ensureStubs(loaded); err != nil {
		return nil, err
	}
	return loaded, nil
}

func (s *Server) stubsFor(classID uint32) (*rpc.ClassStubs, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.stubs[classID]
	return cs, ok
}

// CreateInstance loads (if needed) and instantiates a class server-side,
// registering the instance in the handle table. Used at bootstrap, e.g.
// to create the screen and base window instances before clients arrive
// (§4.2: "When the server begins execution, it creates an instance, S, of
// the screen class and an instance, BaseW, of the window class").
func (s *Server) CreateInstance(name string, minVersion uint32, env any) (any, handle.Handle, error) {
	loaded, err := s.Load(name, minVersion)
	if err != nil {
		return nil, handle.Nil, err
	}
	return s.instantiate(loaded, env)
}

// CreateInstanceExact is CreateInstance pinned to one class version.
func (s *Server) CreateInstanceExact(name string, version uint32, env any) (any, handle.Handle, error) {
	loaded, err := s.LoadExact(name, version)
	if err != nil {
		return nil, handle.Nil, err
	}
	return s.instantiate(loaded, env)
}

func (s *Server) instantiate(loaded *dynload.Loaded, env any) (any, handle.Handle, error) {
	if env == nil {
		env = &Env{Server: s}
	}
	var obj any
	gerr := dynload.Guard(func() error {
		var nerr error
		obj, nerr = loaded.New(env)
		return nerr
	})
	if gerr != nil {
		return nil, handle.Nil, fmt.Errorf("clam: constructing %s: %w", loaded.Name, gerr)
	}
	if reflect.TypeOf(obj) != loaded.Type {
		return nil, handle.Nil, fmt.Errorf("clam: %s constructor returned %T, want %s", loaded.Name, obj, loaded.Type)
	}
	var sessID uint64
	if e, ok := env.(*Env); ok {
		sessID = e.SessionID
	}
	h, err := s.putHandle(obj, loaded, sessID)
	if err != nil {
		return nil, handle.Nil, err
	}
	return obj, h, nil
}

// SetNamed publishes obj under a well-known name so clients (and other
// modules) can find base instances such as the screen. If obj already has
// a handle, the name binding is journaled so recovery re-binds the
// journaled capability to the re-registered object of the same name.
func (s *Server) SetNamed(name string, obj any) {
	s.mu.Lock()
	s.named[name] = obj
	s.mu.Unlock()
	if s.journal != nil {
		if h, ok := s.handles.Lookup(obj); ok {
			if err := s.journal.BindName(name, uint64(h.ID)); err != nil && !errors.Is(err, journal.ErrClosed) {
				s.logf("clam: journal: recording name %q for %v: %v", name, h, err)
			}
		}
	}
}

// Named retrieves a published instance.
func (s *Server) Named(name string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.named[name]
	return obj, ok
}

// Env is what a dynamically loaded class constructor receives: access to
// the server's facilities and to other loaded modules' instances, the
// analogue of the loaded module's links into the server image.
type Env struct {
	// Server is the hosting server.
	Server *Server
	// SessionID identifies the loading client's session; zero for
	// server-side bootstrap loads.
	SessionID uint64
}

// Named finds a published instance by name.
func (e *Env) Named(name string) (any, bool) {
	return e.Server.Named(name)
}

// Sched exposes the server's task scheduler to loaded modules, so classes
// that turn device input into tasks (§4.3) can reach it without importing
// server internals.
func (e *Env) Sched() *task.Sched {
	return e.Server.Sched()
}

// Serve accepts CLAM connections on ln until the server closes. It
// returns after the listener fails or Close is called.
func (s *Server) Serve(ln net.Listener) error {
	if s.journalErr != nil {
		return s.journalErr
	}
	s.ensureRecovered()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("clam: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("clam: accept: %w", err)
		}
		if s.shmEnabled {
			// Transport accounting: ring sessions vs. socket fallbacks
			// while shm is on offer.
			if conn.RemoteAddr().Network() == "shm" {
				s.metrics.shmConns.Add(1)
			} else {
				s.metrics.shmFallbacks.Add(1)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(wire.NewConn(conn))
		}()
	}
}

// Listen starts serving on the given network and address in a background
// goroutine and returns the bound listener.
func (s *Server) Listen(network, addr string) (net.Listener, error) {
	if s.journalErr != nil {
		return nil, s.journalErr
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("clam: listen %s %s: %w", network, addr, err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.Serve(ln); err != nil {
			s.logf("clam: serve: %v", err)
		}
	}()
	// With shared memory enabled, a unix listener gets a rendezvous broker
	// sibling: ring connections arrive through it and feed the ordinary
	// serve loop (the framing and session protocol are transport-blind).
	// Broker failure degrades to sockets-only rather than failing Listen.
	if s.shmEnabled && network == "unix" {
		bln, err := shm.Listen(shm.BrokerPath(addr), s.shmRing)
		if err != nil {
			s.logf("clam: shm broker unavailable, sockets only: %v", err)
		} else {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				if err := s.Serve(bln); err != nil {
					s.logf("clam: shm serve: %v", err)
				}
			}()
		}
	}
	return ln, nil
}

// handleConn performs the hello handshake and runs the connection's read
// loop according to its declared role.
func (s *Server) handleConn(c *wire.Conn) {
	msg, err := c.Recv()
	if err != nil {
		msg.Release()
		c.Close()
		return
	}
	if msg.Type == wire.MsgResume {
		s.handleResume(c, msg)
		return
	}
	if msg.Type != wire.MsgHello {
		msg.Release()
		c.Close()
		return
	}
	var hello helloBody
	sc := rpc.GetScratch()
	herr := hello.bundle(sc.Decoder(msg.Body))
	sc.Release()
	seq := msg.Seq
	msg.Release()
	if herr != nil {
		c.Close()
		return
	}

	switch hello.Role {
	case roleRPC:
		sess := s.newSession(c)
		if sess == nil {
			c.Close()
			return
		}
		// The resume token must be durable before the reply hands it to the
		// client: a token the client holds but a restarted server has never
		// heard of would make resurrection a liar.
		s.journalGrant(sess)
		if err := s.sendHelloReply(c, seq, sess); err != nil {
			s.dropSession(sess)
			return
		}
		sess.startHeartbeat()
		s.runSessionRPC(sess, c)
	case roleUpcall:
		s.mu.Lock()
		sess := s.sessions[hello.Session]
		s.mu.Unlock()
		if sess == nil {
			c.Close()
			return
		}
		if !sess.attachUpcallConn(c) {
			c.Close()
			return
		}
		if err := s.sendHelloReply(c, seq, sess); err != nil {
			return
		}
		sess.upcallReadLoop(c)
		// The upcall channel is gone; any server task parked on an upcall
		// to this client would otherwise wait out the full upcall timeout.
		sess.upcallConnLost()
	default:
		c.Close()
	}
}

// runSessionRPC reads the session's RPC channel until it dies, then parks
// the session for resurrection when eligible, or drops it (the legacy and
// ablation path) when not.
func (s *Server) runSessionRPC(sess *session, c *wire.Conn) {
	sess.rpcReadLoop(c)
	if sess.park() {
		return
	}
	s.dropSession(sess)
}

// handleResume answers a MsgResume opening frame: re-pair the connection
// with the parked session the token names, then serve it like a freshly
// attached channel of the right role.
func (s *Server) handleResume(c *wire.Conn, msg *wire.Msg) {
	var req resumeBody
	sc := rpc.GetScratch()
	rerr := req.bundle(sc.Decoder(msg.Body))
	sc.Release()
	seq := msg.Seq
	msg.Release()
	if rerr != nil {
		c.Close()
		return
	}
	refuse := func(retry bool, why string) {
		s.sendResumeReply(c, seq, &resumeReplyBody{Retry: retry, ErrMsg: why})
		c.Close()
	}
	s.mu.Lock()
	sess := s.sessions[req.Session]
	s.mu.Unlock()
	if sess == nil || sess.token == 0 || sess.token != req.Token {
		refuse(false, "clam: unknown session or bad resume token")
		return
	}
	switch req.Role {
	case roleRPC:
		epoch, recvSeq, retry, err := sess.resumeRPC(c, req.Epoch)
		if err != nil {
			refuse(retry, err.Error())
			return
		}
		s.metrics.countResume()
		// The bumped fence must be durable before the reply: were the server
		// to crash after replying but journal the old epoch, a restart would
		// admit a link the fence already retired.
		s.journalEpoch(sess, epoch)
		s.logf("clam: session %d: resumed (epoch %d)", sess.id, epoch)
		// Send failure is not fatal here: a dead fresh link re-parks via
		// the read loop below.
		s.sendResumeReply(c, seq, &resumeReplyBody{OK: true, Epoch: epoch, RecvSeq: recvSeq})
		s.runSessionRPC(sess, c)
	case roleUpcall:
		if err := sess.resumeUpcall(c, req.Epoch); err != nil {
			refuse(true, err.Error())
			return
		}
		if err := s.sendResumeReply(c, seq, &resumeReplyBody{OK: true, Epoch: req.Epoch}); err != nil {
			return
		}
		// The upcall channel is back: restart any fan-out drains that
		// stood down while the session was parked.
		s.fan.resumeCaller(sess)
		sess.upcallReadLoop(c)
		sess.upcallConnLost()
	default:
		c.Close()
	}
}

func (s *Server) sendHelloReply(c *wire.Conn, seq uint64, sess *session) error {
	sc := rpc.GetScratch()
	defer sc.Release()
	reply := helloReplyBody{
		Session:     sess.id,
		Token:       sess.token,
		WindowNanos: int64(s.resumeWindow),
	}
	if err := reply.bundle(sc.Encoder()); err != nil {
		return err
	}
	return c.Send(&wire.Msg{Type: wire.MsgHelloReply, Seq: seq, Body: sc.Bytes()})
}

func (s *Server) sendResumeReply(c *wire.Conn, seq uint64, reply *resumeReplyBody) error {
	sc := rpc.GetScratch()
	defer sc.Release()
	if err := reply.bundle(sc.Encoder()); err != nil {
		return err
	}
	return c.Send(&wire.Msg{Type: wire.MsgResumeReply, Seq: seq, Body: sc.Bytes()})
}

// mintToken generates a nonzero resume token. Tokens are bearer secrets
// within the transport's trust domain, not cryptographic credentials —
// the same trust model as the rest of the protocol.
func mintToken() uint64 {
	for {
		if t := rand.Uint64(); t != 0 {
			return t
		}
	}
}

func (s *Server) newSession(c *wire.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.maxSessions > 0 && len(s.sessions) >= s.maxSessions {
		s.metrics.countRejected()
		s.logf("clam: refusing session: at max-sessions limit %d", s.maxSessions)
		return nil
	}
	s.nextSess++
	sess := newSession(s, s.nextSess, c)
	s.sessions[sess.id] = sess
	return sess
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	sess.close()
	s.rucs.DropCaller(sess)
	// Forwarded procedure pointers are bound under the session's relay
	// identity (forward.go); drop those too so a departed client cannot
	// receive relayed upcalls.
	s.rucs.DropCaller(sess.relay)
	// Multicast subscriptions die with the session the same way its RUC
	// registrations do; parked sessions never reach here, so theirs
	// survive resurrection.
	s.fan.dropCaller(sess)
	// The end is definitive (eviction, expiry or goodbye — never a mere
	// park), so recovery must not resurrect this session.
	s.journalEndSession(sess)
}

// sessionByID returns the live (or parked) session with the given id.
func (s *Server) sessionByID(id uint64) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// SessionCount reports the number of connected clients.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close shuts the server down: listeners stop, sessions close, the
// scheduler drains.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	var sessions []*session
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[uint64]*session)
	links := s.peers
	s.peers = nil
	s.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.close()
	}
	for _, pl := range links {
		pl.c.Close()
	}
	// Retire fan-out queues and release any Block-policy publishers
	// before draining the pool, or a blocked Publish could hold a worker.
	s.fan.close()
	// Sessions and upstreams are down, so workers blocked in upcall waits
	// or forwarded calls have been cancelled; now the pool can drain.
	s.exec.close()
	s.wg.Wait()
	err := s.sched.Close()
	// Last: a final group commit flushes coalesced receive marks, so a
	// clean shutdown recovers with marks current, not one commit behind.
	if s.journal != nil {
		if jerr := s.journal.Close(); jerr != nil && err == nil {
			err = jerr
		}
	}
	return err
}

// bytesBuf is a minimal write buffer avoiding the bytes import dance in
// hot paths.
type bytesBuf struct{ b []byte }

func (w *bytesBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// byteReader adapts a byte slice for the xdr decoder.
func byteReader(b []byte) *sliceReader { return &sliceReader{b: b} }

type sliceReader struct {
	b []byte
	i int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, errEOB
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

var errEOB = errors.New("clam: message body exhausted")
