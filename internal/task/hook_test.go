package task

import (
	"testing"
	"time"
)

func TestBlockHookRunsBeforeBlocking(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	order := make(chan string, 4)
	s.Spawn(func(task *Task) {
		task.SetBlockHook(func() { order <- "hook" })
		task.Block(&e)
		order <- "resumed"
	})
	for e.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	if got := <-order; got != "hook" {
		t.Fatalf("first = %q, want hook", got)
	}
	e.Signal()
	if got := <-order; got != "resumed" {
		t.Fatalf("second = %q", got)
	}
}

func TestBlockHookRunsOnPendingFastPath(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	e.Signal() // pending: Block returns immediately, hook still fires
	ran := make(chan bool, 1)
	s.Spawn(func(task *Task) {
		hooked := false
		task.SetBlockHook(func() { hooked = true })
		task.Block(&e)
		ran <- hooked
	})
	if !<-ran {
		t.Error("hook skipped on the pending fast path")
	}
}

func TestBlockHookClearedBetweenReuses(t *testing.T) {
	s := New()
	defer s.Close()
	fired := make(chan struct{}, 4)
	done := make(chan struct{})
	s.Spawn(func(task *Task) {
		task.SetBlockHook(func() { fired <- struct{}{} })
		close(done)
	})
	<-done
	// Wait for the task to park, then reuse it with a function that
	// blocks: the old hook must not fire.
	for {
		s.mu.Lock()
		n := len(s.parked)
		s.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var e Event
	done2 := make(chan struct{})
	s.Spawn(func(task *Task) {
		task.Block(&e)
		close(done2)
	})
	for e.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-fired:
		t.Error("stale hook fired on reused task")
	default:
	}
	e.Signal()
	<-done2
}

func TestBlockHookNilIsSafe(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	e.Signal()
	done := make(chan struct{})
	s.Spawn(func(task *Task) {
		task.SetBlockHook(func() {})
		task.SetBlockHook(nil)
		task.Block(&e)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("task hung")
	}
}
