package task

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpawnRuns(t *testing.T) {
	s := New()
	defer s.Close()
	done := make(chan struct{})
	if err := s.Spawn(func(*Task) { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("task never ran")
	}
}

func TestTaskIDsUnique(t *testing.T) {
	s := New(WithoutReuse())
	defer s.Close()
	ids := make(chan uint64, 10)
	for i := 0; i < 10; i++ {
		s.Spawn(func(task *Task) { ids <- task.ID() })
	}
	s.Wait()
	close(ids)
	seen := make(map[uint64]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate task id %d", id)
		}
		seen[id] = true
	}
}

// At most one task executes at a time: the defining property of the
// paper's non-preemptive tasks.
func TestMutualExclusion(t *testing.T) {
	s := New()
	defer s.Close()
	var inside atomic.Int32
	var violations atomic.Int32
	const tasks = 16
	for i := 0; i < tasks; i++ {
		s.Spawn(func(task *Task) {
			for j := 0; j < 50; j++ {
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				// No Yield here: within a critical region a
				// non-preemptive task cannot be interrupted.
				inside.Add(-1)
				task.Yield()
			}
		})
	}
	s.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d mutual-exclusion violations", v)
	}
}

func TestYieldInterleaves(t *testing.T) {
	s := New()
	defer s.Close()
	var order []int
	appendOrder := func(n int) { order = append(order, n) } // safe: one task at a time
	done := make(chan struct{}, 2)
	s.Spawn(func(task *Task) {
		for i := 0; i < 3; i++ {
			appendOrder(1)
			task.Yield()
		}
		done <- struct{}{}
	})
	s.Spawn(func(task *Task) {
		for i := 0; i < 3; i++ {
			appendOrder(2)
			task.Yield()
		}
		done <- struct{}{}
	})
	<-done
	<-done
	// Both tasks must have run; with yields, neither can finish all its
	// appends before the other starts (the first yield hands over).
	var ones, twos int
	for _, n := range order {
		if n == 1 {
			ones++
		} else {
			twos++
		}
	}
	if ones != 3 || twos != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] == order[1] && order[1] == order[2] && order[0] == order[3] {
		t.Errorf("no interleaving observed: %v", order)
	}
}

func TestBlockSignal(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	ran := make(chan struct{})
	s.Spawn(func(task *Task) {
		task.Block(&e)
		close(ran)
	})
	// Give the task time to block, then signal from outside any task —
	// the I/O-goroutine pattern.
	for e.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	e.Signal()
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("task not reactivated by Signal")
	}
}

func TestSignalBeforeBlockNotLost(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	e.Signal() // occurs before anyone waits
	done := make(chan struct{})
	s.Spawn(func(task *Task) {
		task.Block(&e) // must consume the pending occurrence
		close(done)
	})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("pending signal was lost")
	}
}

// Each Signal reactivates exactly one blocked task (queued FIFO inside the
// event); resumption execution order depends on token acquisition and is
// deliberately not asserted.
func TestSignalWakesOnePerCall(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	done := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		i := i
		s.Spawn(func(task *Task) {
			task.Block(&e)
			done <- i
		})
		for e.Waiters() < i {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 3; i++ {
		e.Signal()
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatalf("signal %d reactivated no task", i+1)
		}
		if got, want := e.Waiters(), 3-i-1; got != want {
			t.Fatalf("after signal %d: %d waiters, want %d", i+1, got, want)
		}
	}
}

func TestBroadcast(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	var woke atomic.Int32
	const n = 5
	for i := 0; i < n; i++ {
		s.Spawn(func(task *Task) {
			task.Block(&e)
			woke.Add(1)
		})
	}
	for e.Waiters() < n {
		time.Sleep(time.Millisecond)
	}
	e.Broadcast()
	s.Wait()
	if woke.Load() != n {
		t.Errorf("broadcast woke %d of %d", woke.Load(), n)
	}
	// Broadcast leaves no pending count behind.
	e.mu.Lock()
	p := e.pending
	e.mu.Unlock()
	if p != 0 {
		t.Errorf("pending = %d after broadcast", p)
	}
}

func TestTaskReusePool(t *testing.T) {
	s := New()
	defer s.Close()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		done := make(chan struct{})
		s.Spawn(func(*Task) { close(done) })
		<-done
		// Let the finished task park before the next spawn.
		for {
			s.mu.Lock()
			parked := len(s.parked)
			s.mu.Unlock()
			if parked > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	started, created, reused := s.Stats()
	if started != rounds {
		t.Errorf("started = %d", started)
	}
	if created != 1 {
		t.Errorf("created %d goroutines, want 1 (reuse)", created)
	}
	if reused != rounds-1 {
		t.Errorf("reused = %d, want %d", reused, rounds-1)
	}
}

func TestWithoutReuseCreatesFreshTasks(t *testing.T) {
	s := New(WithoutReuse())
	defer s.Close()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		done := make(chan struct{})
		s.Spawn(func(*Task) { close(done) })
		<-done
	}
	_, created, reused := s.Stats()
	if created != rounds {
		t.Errorf("created = %d, want %d", created, rounds)
	}
	if reused != 0 {
		t.Errorf("reused = %d, want 0", reused)
	}
}

func TestSpawnAfterClose(t *testing.T) {
	s := New()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Spawn(func(*Task) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("spawn after close: err = %v", err)
	}
	if err := s.Close(); err == nil {
		t.Error("second close succeeded")
	}
}

func TestCloseReleasesParkedGoroutines(t *testing.T) {
	s := New()
	done := make(chan struct{})
	s.Spawn(func(*Task) { close(done) })
	<-done
	// Wait for the task to park, then close; Close must not hang.
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on parked goroutines")
	}
}

// The §4.3 interaction: a server task blocks while another task (standing
// in for the client task) carries the flow of control, then resumes when
// that task completes.
func TestServerTaskBlocksDuringClientTask(t *testing.T) {
	s := New()
	defer s.Close()
	var clientDone, serverResumed Event
	var trace []string
	rec := func(ev string) { trace = append(trace, ev) }

	s.Spawn(func(server *Task) {
		rec("server:upcall-start")
		// The distributed upcall: start the client task, block until it
		// finishes.
		s.Spawn(func(client *Task) {
			rec("client:handling")
			clientDone.Signal()
		})
		server.Block(&clientDone)
		rec("server:resumed")
		serverResumed.Signal()
	})

	s.Spawn(func(waiter *Task) {
		waiter.Block(&serverResumed)
	})
	s.Wait()
	want := []string{"server:upcall-start", "client:handling", "server:resumed"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestManyTasksManyEvents(t *testing.T) {
	s := New()
	defer s.Close()
	const n = 30
	events := make([]Event, n)
	var sum atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(func(task *Task) {
			task.Block(&events[i])
			sum.Add(int64(i))
			if i+1 < n {
				events[i+1].Signal()
			}
		})
	}
	events[0].Signal()
	s.Wait()
	if got, want := sum.Load(), int64(n*(n-1)/2); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}
