// Package task implements CLAM's lightweight processes (ICDCS 1988, §4.3).
//
// CLAM "uses lightweight processes, called tasks, to create asynchrony in
// the server and clients. Tasks are provided by a thread class, which
// supports tasks at the user level. ... Tasks are non-preemptive, but a
// task can voluntarily block itself by waiting on a specific event. The
// task is reactivated when that event occurs."
//
// Go's goroutines are preemptive and parallel, which is a different
// concurrency model from the paper's uniprocessor user-level threads; the
// difference matters because CLAM's upcall machinery (a server task blocks
// while the client task carries the flow of control, §4.3) assumes
// cooperative scheduling. This package therefore multiplexes goroutines
// under a single run token so that at most one task in a scheduler executes
// at a time and control transfers only at Yield and Block — the paper's
// model, preserved exactly.
//
// Tasks are reused rather than created per event, "to reduce overhead"
// (§4.4); the pool can be disabled to measure that choice (ablation A-3).
package task

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Spawn after the scheduler has been closed.
var ErrClosed = errors.New("task: scheduler closed")

// Sched is a cooperative scheduler. Construct with New.
type Sched struct {
	token chan struct{} // run token: held by the single executing task
	reuse bool

	mu     sync.Mutex
	closed bool
	parked []*Task // idle tasks available for reuse

	active sync.WaitGroup // running (non-parked) tasks
	idle   sync.WaitGroup // parked goroutines, released at Close

	// statistics for the task-reuse ablation
	spawned atomic.Uint64 // goroutines created
	reused  atomic.Uint64 // spawns satisfied from the pool
	started atomic.Uint64 // total Spawn calls admitted
	nextID  atomic.Uint64
}

// Option configures a scheduler.
type Option func(*Sched)

// WithoutReuse disables the task pool so every Spawn creates a fresh
// goroutine — the baseline configuration for the reuse ablation.
func WithoutReuse() Option {
	return func(s *Sched) { s.reuse = false }
}

// New returns a scheduler with task reuse enabled unless disabled by an
// option.
func New(opts ...Option) *Sched {
	s := &Sched{
		token: make(chan struct{}, 1),
		reuse: true,
	}
	for _, o := range opts {
		o(s)
	}
	s.token <- struct{}{} // token available
	return s
}

// Task is one lightweight process. Its methods must only be called from
// the task's own function, on the goroutine the scheduler runs it on.
type Task struct {
	s    *Sched
	id   uint64
	wake chan struct{} // buffered(1): wakeup may precede the sleep
	work chan func(*Task)
	// onBlock runs just before the task gives up the run token in Block.
	// Only the task's own goroutine touches it. Schedulable servers use
	// it to hand off per-session duties (e.g. RPC dispatching) when a
	// handler blocks for an arbitrary reason.
	onBlock func()
}

// SetBlockHook registers fn to run immediately before every Block. Pass
// nil to clear. Must be called from the task's own function.
func (t *Task) SetBlockHook(fn func()) { t.onBlock = fn }

// ID returns a scheduler-unique task identifier.
func (t *Task) ID() uint64 { return t.id }

// Spawn starts fn as a new task — the paper's "asynchronous call to a
// procedure in the thread class". It returns once the task is queued;
// fn runs when it first acquires the run token. If an idle task exists it
// is reused.
func (s *Sched) Spawn(fn func(*Task)) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.started.Add(1)
	s.active.Add(1)
	if n := len(s.parked); s.reuse && n > 0 {
		t := s.parked[n-1]
		s.parked = s.parked[:n-1]
		s.mu.Unlock()
		s.reused.Add(1)
		t.work <- fn
		return nil
	}
	s.mu.Unlock()

	s.spawned.Add(1)
	t := &Task{
		s:    s,
		id:   s.nextID.Add(1),
		wake: make(chan struct{}, 1),
		work: make(chan func(*Task), 1),
	}
	go t.loop(fn)
	return nil
}

func (t *Task) loop(fn func(*Task)) {
	gid := goid()
	defer dropBinding(gid)
	for {
		t.acquire()
		t.bindAs(gid)
		fn(t)
		unbind(gid)
		t.onBlock = nil // hooks never outlive the function that set them
		t.release()
		t.s.active.Done()

		// Park for reuse, or exit if the pool is off or the scheduler
		// is closing.
		t.s.mu.Lock()
		if !t.s.reuse || t.s.closed {
			t.s.mu.Unlock()
			return
		}
		t.s.parked = append(t.s.parked, t)
		t.s.idle.Add(1)
		t.s.mu.Unlock()

		next, ok := <-t.work
		t.s.idle.Done()
		if !ok {
			return
		}
		fn = next
	}
}

func (t *Task) acquire() { <-t.s.token }
func (t *Task) release() { t.s.token <- struct{}{} }

// Yield gives other runnable tasks a chance to execute, then resumes.
func (t *Task) Yield() {
	t.release()
	t.acquire()
}

// Block suspends the task until e occurs. If the event was already
// signalled, Block consumes the pending occurrence and returns at once.
func (t *Task) Block(e *Event) {
	if t.onBlock != nil {
		t.onBlock()
	}
	e.mu.Lock()
	if e.pending > 0 {
		e.pending--
		e.mu.Unlock()
		return
	}
	e.waiters = append(e.waiters, t)
	e.mu.Unlock()
	t.release()
	<-t.wake
	t.acquire()
}

// Event is a condition a task can wait for. Occurrences are counted, so a
// Signal that precedes the Block is not lost; this is what lets I/O
// goroutines outside the scheduler deliver completions safely. The zero
// value is ready to use.
type Event struct {
	mu      sync.Mutex
	pending int
	waiters []*Task
}

// Signal records one occurrence of the event, reactivating the
// longest-waiting task if any is blocked. Signal may be called from any
// goroutine, including ones that are not tasks.
func (e *Event) Signal() {
	e.mu.Lock()
	if len(e.waiters) == 0 {
		e.pending++
		e.mu.Unlock()
		return
	}
	t := e.waiters[0]
	e.waiters = e.waiters[1:]
	e.mu.Unlock()
	t.wake <- struct{}{}
}

// Broadcast reactivates every blocked task without leaving a pending
// count.
func (e *Event) Broadcast() {
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, t := range ws {
		t.wake <- struct{}{}
	}
}

// Waiters reports how many tasks are blocked on the event.
func (e *Event) Waiters() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.waiters)
}

// Stats reports scheduler counters: total tasks admitted, goroutines
// created, and spawns satisfied by reusing a parked task.
func (s *Sched) Stats() (started, created, reused uint64) {
	return s.started.Load(), s.spawned.Load(), s.reused.Load()
}

// Wait blocks until every admitted task has finished. Tasks blocked on
// events that will never be signalled make Wait hang; that is a caller
// bug, as with any join.
func (s *Sched) Wait() { s.active.Wait() }

// Close stops admission, waits for running tasks to finish, and releases
// the parked pool goroutines. It is safe to call once; after Close, Spawn
// reports ErrClosed.
func (s *Sched) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("task: already closed")
	}
	s.closed = true
	parked := s.parked
	s.parked = nil
	s.mu.Unlock()

	s.active.Wait()
	for _, t := range parked {
		close(t.work)
	}
	s.idle.Wait()
	return nil
}
