package task

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// This file lets code discover the task it is running under. The paper's
// RUC upcall handler blocks "the server task" while the client task is
// active (§4.3); the handler is invoked through an ordinary procedure
// pointer, so it has no task argument and must find the current task
// implicitly — on the VAX that is the thread package's current-thread
// global, here it is a goroutine-id registry maintained while a task's
// function runs.

var currentTasks sync.Map // goroutine id (uint64) → *Task

// goid returns the current goroutine's id by parsing the first line of the
// stack trace ("goroutine N [running]:"). This costs a few microseconds —
// negligible next to the socket round trip of any distributed upcall, which
// is the only place it is consulted.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i > 0 {
		b = b[:i]
	}
	id, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// bind associates the calling goroutine with t for the duration of the
// task's execution.
func (t *Task) bind() (gid uint64) {
	gid = goid()
	currentTasks.Store(gid, t)
	return gid
}

func unbind(gid uint64) {
	currentTasks.Delete(gid)
}

// Current returns the task the calling goroutine is executing, or nil when
// called outside any task. Blocking primitives use it so that code invoked
// through plain procedure pointers — upcall proxies in particular — can
// yield the run token correctly without threading a *Task through every
// signature.
func Current() *Task {
	if v, ok := currentTasks.Load(goid()); ok {
		return v.(*Task)
	}
	return nil
}
