package task

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file lets code discover the task it is running under. The paper's
// RUC upcall handler blocks "the server task" while the client task is
// active (§4.3); the handler is invoked through an ordinary procedure
// pointer, so it has no task argument and must find the current task
// implicitly — on the VAX that is the thread package's current-thread
// global, here it is a goroutine-id registry maintained while a task's
// function runs.

var currentTasks sync.Map // goroutine id (uint64) → *taskCell

// taskCell is the mutable slot a goroutine's binding lives in. The map
// stores one cell per goroutine, inserted once; per-dispatch bind/unbind
// is an atomic store into the existing cell. (Storing the task directly
// in the map would allocate an entry node per overwrite on the current
// runtime's sync.Map — a per-dispatch allocation on the hot path.)
type taskCell struct {
	t atomic.Pointer[Task]
}

// boundTasks counts goroutines currently executing a task function. When
// it is zero — always in a pure client process, and between dispatches on
// an idle server — Current returns nil with one atomic load, keeping the
// stack parse off the RPC hot path.
var boundTasks atomic.Int64

// GoID returns the calling goroutine's id. Exported for the server's
// per-object dispatch executor, which binds work items to its worker
// goroutines exactly the way tasks bind here, and consults the binding only
// on paths that already pay a network round trip.
func GoID() uint64 { return goid() }

// goid returns the current goroutine's id by parsing the first line of the
// stack trace ("goroutine N [running]:"). This costs a few microseconds —
// negligible next to the socket round trip of any distributed upcall, which
// is the only place it is consulted.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i > 0 {
		b = b[:i]
	}
	id, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// cellFor returns goroutine gid's binding cell, inserting it on the
// goroutine's first dispatch.
func cellFor(gid uint64) *taskCell {
	if v, ok := currentTasks.Load(gid); ok {
		return v.(*taskCell)
	}
	v, _ := currentTasks.LoadOrStore(gid, &taskCell{})
	return v.(*taskCell)
}

// bindAs associates goroutine gid with t for the duration of one dispatch.
// The caller computes gid once per goroutine (the id never changes), so
// binding is two cheap writes per dispatch, not a stack parse.
func (t *Task) bindAs(gid uint64) {
	cellFor(gid).t.Store(t)
	boundTasks.Add(1)
}

// unbind clears the association but keeps the cell: a pooled goroutine
// re-binds the same cell on its next dispatch with no allocation.
func unbind(gid uint64) {
	cellFor(gid).t.Store(nil)
	boundTasks.Add(-1)
}

// dropBinding removes the map entry outright when a task goroutine exits.
func dropBinding(gid uint64) {
	currentTasks.Delete(gid)
}

// Current returns the task the calling goroutine is executing, or nil when
// called outside any task. Blocking primitives use it so that code invoked
// through plain procedure pointers — upcall proxies in particular — can
// yield the run token correctly without threading a *Task through every
// signature.
func Current() *Task {
	if boundTasks.Load() == 0 {
		return nil
	}
	if v, ok := currentTasks.Load(goid()); ok {
		if t := v.(*taskCell).t.Load(); t != nil {
			return t
		}
	}
	return nil
}
