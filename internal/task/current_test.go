package task

import (
	"testing"
	"time"
)

func TestCurrentInsideTask(t *testing.T) {
	s := New()
	defer s.Close()
	got := make(chan *Task, 1)
	s.Spawn(func(task *Task) { got <- Current() })
	select {
	case cur := <-got:
		if cur == nil {
			t.Error("Current() = nil inside a task")
		}
	case <-time.After(time.Second):
		t.Fatal("task never ran")
	}
}

func TestCurrentMatchesOwnTask(t *testing.T) {
	s := New()
	defer s.Close()
	type pair struct{ own, cur *Task }
	got := make(chan pair, 1)
	s.Spawn(func(task *Task) { got <- pair{own: task, cur: Current()} })
	p := <-got
	if p.own != p.cur {
		t.Errorf("Current() = %v, want %v", p.cur, p.own)
	}
}

func TestCurrentOutsideTaskIsNil(t *testing.T) {
	if Current() != nil {
		t.Error("Current() != nil on a plain goroutine")
	}
}

func TestCurrentSurvivesBlock(t *testing.T) {
	s := New()
	defer s.Close()
	var e Event
	got := make(chan *Task, 2)
	s.Spawn(func(task *Task) {
		got <- Current()
		task.Block(&e)
		got <- Current() // still bound after resuming
	})
	first := <-got
	for e.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	e.Signal()
	second := <-got
	if first == nil || first != second {
		t.Errorf("binding changed across Block: %v vs %v", first, second)
	}
}

func TestCurrentUnboundAfterPoolExit(t *testing.T) {
	s := New(WithoutReuse())
	done := make(chan struct{})
	s.Spawn(func(*Task) { close(done) })
	<-done
	s.Close()
	// The goroutine has exited; a fresh goroutine must not see its task.
	res := make(chan *Task, 1)
	go func() { res <- Current() }()
	if cur := <-res; cur != nil {
		t.Errorf("stale binding visible: %v", cur)
	}
}

func TestCurrentAcrossReuse(t *testing.T) {
	s := New()
	defer s.Close()
	got := make(chan *Task, 1)
	s.Spawn(func(task *Task) { got <- Current() })
	t1 := <-got
	// Wait for the task to park, then reuse it.
	for {
		s.mu.Lock()
		n := len(s.parked)
		s.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Spawn(func(task *Task) { got <- Current() })
	t2 := <-got
	if t2 == nil {
		t.Fatal("Current() nil on reused task")
	}
	if t1 != t2 {
		t.Error("reused task changed identity")
	}
}
