// Package ruc implements CLAM's Remote UpCall class (ICDCS 1988, §3.5.2):
// "The purpose of the RUC class is to control distributed upcalls."
//
// When a client passes a procedure pointer into the server, the server
// bundler "stores the client's procedure pointer, a pointer to the
// server's upcall bundler, and the client's IPC connection identifier in
// an object of a Remote Upcall (RUC) class. Finally, the compiler
// generates code to call a procedure in the RUC class whenever this
// procedure pointer is used, and returns the pointer to the start of this
// code, which looks like a normal procedure pointer."
//
// Here the Entry is the RUC object; the generated code is a
// reflect.MakeFunc proxy with the declared func type, so server code —
// including dynamically loaded modules that know nothing about
// distribution — invokes it exactly like a local procedure. "Through the
// intervention of the RUC class, the lower level object cannot
// distinguish between registration requests from local objects and those
// from remote objects" (§4.1).
package ruc

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Caller abstracts the client's IPC connection identifier saved in the RUC
// object: it performs the remote call back to the higher-level object. The
// server session layer implements it over the per-client upcall channel.
type Caller interface {
	// Upcall invokes the client procedure procID with args bundled per
	// ft, blocking until the client task completes, and returns the data
	// results (ft's results excluding a trailing error).
	Upcall(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error)
}

// Entry is one RUC object.
type Entry struct {
	// ID identifies the entry within its table.
	ID uint64
	// ProcID is the client's procedure pointer in opaque form.
	ProcID uint64
	// FuncType drives the upcall stubs: argument and result bundling
	// derive from the declared parameter types.
	FuncType reflect.Type
	// Caller is the client connection the upcall travels over.
	Caller Caller

	mu       sync.Mutex
	calls    uint64
	failures uint64
	lastErr  error
}

// Stats reports how often the proxy ran and failed, and the most recent
// failure.
func (e *Entry) Stats() (calls, failures uint64, lastErr error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls, e.failures, e.lastErr
}

func (e *Entry) record(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	if err != nil {
		e.failures++
		e.lastErr = err
	}
}

// Table holds the live RUC objects of one server.
type Table struct {
	mu      sync.Mutex
	entries map[uint64]*Entry
	next    uint64
	// onError observes upcall failures that the proxy cannot report
	// because the procedure type has no error result. May be nil.
	onError func(*Entry, error)
}

// NewTable returns an empty table. onError, if non-nil, is invoked for
// upcall failures that cannot be surfaced through the procedure's own
// return values.
func NewTable(onError func(*Entry, error)) *Table {
	return &Table{
		entries: make(map[uint64]*Entry),
		onError: onError,
	}
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Floor advances the entry-id allocator so future Binds assign IDs
// above n. Journal recovery floors the space with the journaled maximum
// so a restarted server never reuses an identifier a client saw.
func (t *Table) Floor(n uint64) {
	t.mu.Lock()
	if n > t.next {
		t.next = n
	}
	t.mu.Unlock()
}

// Bind creates a RUC object for a client procedure pointer and returns it
// together with the proxy func value that "looks like a normal procedure
// pointer". ft must be a func type. A new entry is created per binding,
// matching the paper's "for each translation, an object instance is
// created in the RUC class".
func (t *Table) Bind(procID uint64, ft reflect.Type, c Caller) (*Entry, reflect.Value, error) {
	if ft == nil || ft.Kind() != reflect.Func {
		return nil, reflect.Value{}, fmt.Errorf("ruc: bind of non-func type %v", ft)
	}
	if ft.IsVariadic() {
		return nil, reflect.Value{}, fmt.Errorf("ruc: variadic procedure type %s not supported", ft)
	}
	t.mu.Lock()
	t.next++
	e := &Entry{ID: t.next, ProcID: procID, FuncType: ft, Caller: c}
	t.entries[e.ID] = e
	t.mu.Unlock()

	nOut := ft.NumOut()
	hasErr := nOut > 0 && ft.Out(nOut-1) == errType

	proxy := reflect.MakeFunc(ft, func(args []reflect.Value) []reflect.Value {
		rets, err := c.Upcall(procID, ft, args)
		e.record(err)
		out := make([]reflect.Value, nOut)
		if err != nil {
			// Fill zero data results; surface the failure through the
			// error slot when there is one, otherwise through onError.
			for i := 0; i < nOut; i++ {
				out[i] = reflect.Zero(ft.Out(i))
			}
			if hasErr {
				out[nOut-1] = reflect.ValueOf(&err).Elem()
			} else if t.onError != nil {
				t.onError(e, err)
			}
			return out
		}
		for i := 0; i < len(rets) && i < nOut; i++ {
			out[i] = rets[i]
		}
		for i := len(rets); i < nOut; i++ {
			out[i] = reflect.Zero(ft.Out(i))
		}
		return out
	})
	return e, proxy, nil
}

// Get returns the entry with the given id.
func (t *Table) Get(id uint64) (*Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	return e, ok
}

// Len reports the number of live entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Entries returns the live entries sorted by id.
func (t *Table) Entries() []*Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DropCaller removes every entry bound to c — used when a client
// disconnects so its RUC objects stop accumulating. Proxies already handed
// to server objects keep failing gracefully through the entry's Caller.
func (t *Table) DropCaller(c Caller) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, e := range t.entries {
		if e.Caller == c {
			delete(t.entries, id)
			n++
		}
	}
	return n
}
