// Sharded is the multicast companion to Table. Where Table models the
// paper's point-to-point RUC objects — one registered client procedure
// per binding (§3.5.2) — Sharded holds the one-to-many registrations
// behind Server.Publish: many subscribers per topic, spread over N
// independently locked shards so register/unregister churn on one
// subscriber never serializes against delivery snapshots for another.
//
// The shard for a subscription is chosen by its Key — callers use the
// handle tag of the subscribing object (an "arbitrary bit pattern",
// §3.5.1), which is uniformly distributed and stable for the life of the
// subscriber — so all of one subscriber's operations land on one shard
// and both Add and Remove are O(1) map operations under that shard's
// lock alone.
package ruc

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
)

// Sub is one multicast registration: a client procedure pointer bound to
// a topic, deliverable over Caller exactly like a point-to-point RUC
// entry.
type Sub struct {
	// ID identifies the subscription within its Sharded table; assigned
	// by Add, never reused.
	ID uint64
	// Key selects the shard. Callers set it to the subscriber's handle
	// tag; if zero, Add substitutes the subscription ID.
	Key uint64
	// Topic is the multicast procedure this subscription receives.
	Topic string
	// ProcID is the client's procedure pointer in opaque form.
	ProcID uint64
	// FuncType drives argument bundling for deliveries.
	FuncType reflect.Type
	// Caller is the connection deliveries travel over.
	Caller Caller
	// Relay marks a subscription held by a peer server as its fan-out
	// tree tap rather than by an end subscriber. The delivery layer uses
	// it to keep multicast loop-free across a peer mesh: an event that
	// arrived from one peer is not fanned back out through relay taps.
	Relay bool
	// State is opaque per-subscription delivery state owned by the
	// layer above (queue, coalescing buffer, drain flag).
	State any
}

type shard struct {
	mu   sync.Mutex
	subs map[string]map[uint64]*Sub // topic → subscription ID → sub
}

// Sharded is a sharded multicast registration table. The zero value is
// not usable; call NewSharded.
type Sharded struct {
	mask   uint64
	nextID atomic.Uint64
	shards []shard
}

// DefaultShards is the shard count when none is configured — enough
// that a registration storm on one core rarely collides with delivery
// snapshots on another, small enough that Snapshot's full sweep stays
// cheap.
const DefaultShards = 32

// NewSharded returns an empty table with at least n shards, rounded up
// to a power of two so the shard index is a mask of the key. n <= 0
// selects DefaultShards.
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Sharded{mask: uint64(size - 1), shards: make([]shard, size)}
	for i := range s.shards {
		s.shards[i].subs = make(map[string]map[uint64]*Sub)
	}
	return s
}

// ShardCount reports the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

func (s *Sharded) shardFor(key uint64) *shard {
	return &s.shards[key&s.mask]
}

// Add registers sub, assigns its ID, and returns it. If sub.Key is zero
// the ID doubles as the key, so keyless (local) subscriptions still
// spread across shards.
func (s *Sharded) Add(sub *Sub) uint64 {
	sub.ID = s.nextID.Add(1)
	if sub.Key == 0 {
		sub.Key = sub.ID
	}
	sh := s.shardFor(sub.Key)
	sh.mu.Lock()
	m := sh.subs[sub.Topic]
	if m == nil {
		m = make(map[uint64]*Sub)
		sh.subs[sub.Topic] = m
	}
	m[sub.ID] = sub
	sh.mu.Unlock()
	return sub.ID
}

// Restore registers sub under its existing ID — journal recovery
// re-installing a subscription whose identifier a client may still hold
// — and floors the allocator so later Adds never reuse it. As in Add, a
// zero Key falls back to the ID.
func (s *Sharded) Restore(sub *Sub) {
	for {
		cur := s.nextID.Load()
		if sub.ID <= cur || s.nextID.CompareAndSwap(cur, sub.ID) {
			break
		}
	}
	if sub.Key == 0 {
		sub.Key = sub.ID
	}
	sh := s.shardFor(sub.Key)
	sh.mu.Lock()
	m := sh.subs[sub.Topic]
	if m == nil {
		m = make(map[uint64]*Sub)
		sh.subs[sub.Topic] = m
	}
	m[sub.ID] = sub
	sh.mu.Unlock()
}

// Floor advances the ID allocator so future Adds assign IDs above n.
func (s *Sharded) Floor(n uint64) {
	for {
		cur := s.nextID.Load()
		if n <= cur || s.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Remove unregisters the subscription (topic, id) whose shard key is
// key, returning it, or nil if no such subscription exists. Key must be
// the same value the subscription was added under — the caller that
// registered it knows its own key, keeping removal O(1).
func (s *Sharded) Remove(topic string, key, id uint64) *Sub {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.subs[topic]
	sub, ok := m[id]
	if !ok {
		return nil
	}
	delete(m, id)
	if len(m) == 0 {
		delete(sh.subs, topic)
	}
	return sub
}

// Snapshot returns the live subscriptions for topic, sorted by ID so
// fan-out order is deterministic. The slice is the caller's to keep;
// later Add/Remove calls do not disturb it.
func (s *Sharded) Snapshot(topic string) []*Sub {
	var out []*Sub
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sub := range sh.subs[topic] {
			out = append(out, sub)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByCaller returns the live subscriptions delivered over c, across all
// topics, sorted by ID.
func (s *Sharded) ByCaller(c Caller) []*Sub {
	var out []*Sub
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, m := range sh.subs {
			for _, sub := range m {
				if sub.Caller == c {
					out = append(out, sub)
				}
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DropCaller removes every subscription delivered over c — the
// multicast analogue of Table.DropCaller, used when a client departs for
// good — and returns the removed subscriptions so the delivery layer can
// retire their queues.
func (s *Sharded) DropCaller(c Caller) []*Sub {
	var out []*Sub
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for topic, m := range sh.subs {
			for id, sub := range m {
				if sub.Caller == c {
					delete(m, id)
					out = append(out, sub)
				}
			}
			if len(m) == 0 {
				delete(sh.subs, topic)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of live subscriptions across all topics.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, m := range sh.subs {
			n += len(m)
		}
		sh.mu.Unlock()
	}
	return n
}

// TopicLen reports the number of live subscriptions for topic.
func (s *Sharded) TopicLen(topic string) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.subs[topic])
		sh.mu.Unlock()
	}
	return n
}

// Topics returns the distinct topics with at least one live
// subscription, sorted.
func (s *Sharded) Topics() []string {
	seen := make(map[string]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for topic := range sh.subs {
			seen[topic] = true
		}
		sh.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for topic := range seen {
		out = append(out, topic)
	}
	sort.Strings(out)
	return out
}
