package ruc

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

type nullCaller struct{ name string }

func (n *nullCaller) Upcall(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
	return nil, nil
}

var sigInt = reflect.TypeOf(func(int64) {})

func TestShardedAddRemove(t *testing.T) {
	s := NewSharded(4)
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", s.ShardCount())
	}
	c := &nullCaller{}
	sub := &Sub{Key: 0xdeadbeef, Topic: "ev", ProcID: 7, FuncType: sigInt, Caller: c}
	id := s.Add(sub)
	if id == 0 || sub.ID != id {
		t.Fatalf("Add assigned id %d (sub.ID %d)", id, sub.ID)
	}
	if s.Len() != 1 || s.TopicLen("ev") != 1 {
		t.Fatalf("Len=%d TopicLen=%d, want 1/1", s.Len(), s.TopicLen("ev"))
	}
	snap := s.Snapshot("ev")
	if len(snap) != 1 || snap[0] != sub {
		t.Fatalf("Snapshot = %v", snap)
	}
	if got := s.Remove("ev", sub.Key, id); got != sub {
		t.Fatalf("Remove returned %v, want the sub", got)
	}
	if got := s.Remove("ev", sub.Key, id); got != nil {
		t.Fatalf("second Remove returned %v, want nil", got)
	}
	if s.Len() != 0 || len(s.Topics()) != 0 {
		t.Fatalf("table not empty after remove: Len=%d Topics=%v", s.Len(), s.Topics())
	}
}

func TestShardedKeylessUsesID(t *testing.T) {
	s := NewSharded(8)
	sub := &Sub{Topic: "ev", FuncType: sigInt, Caller: &nullCaller{}}
	id := s.Add(sub)
	if sub.Key != id {
		t.Fatalf("keyless sub got Key=%d, want ID %d", sub.Key, id)
	}
	if s.Remove("ev", sub.Key, id) != sub {
		t.Fatal("Remove by assigned key failed")
	}
}

func TestShardedRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {32, 32}, {33, 64}} {
		if got := NewSharded(tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewSharded(%d).ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardedDropCaller(t *testing.T) {
	s := NewSharded(4)
	a, b := &nullCaller{"a"}, &nullCaller{"b"}
	for i := 0; i < 10; i++ {
		s.Add(&Sub{Key: uint64(i + 1), Topic: "ev", FuncType: sigInt, Caller: a})
		s.Add(&Sub{Key: uint64(i + 100), Topic: "ev", FuncType: sigInt, Caller: b})
	}
	if got := s.ByCaller(a); len(got) != 10 {
		t.Fatalf("ByCaller(a) = %d subs, want 10", len(got))
	}
	dropped := s.DropCaller(a)
	if len(dropped) != 10 {
		t.Fatalf("DropCaller removed %d, want 10", len(dropped))
	}
	if s.TopicLen("ev") != 10 {
		t.Fatalf("TopicLen after drop = %d, want 10 (b's subs)", s.TopicLen("ev"))
	}
	for _, sub := range s.Snapshot("ev") {
		if sub.Caller != b {
			t.Fatalf("survivor %d has caller %v, want b", sub.ID, sub.Caller)
		}
	}
}

// TestShardedChurnStorm hammers one topic with concurrent register/
// unregister churn while readers take delivery snapshots, under -race.
// Stable subscribers added before the storm must appear in every
// snapshot exactly once.
func TestShardedChurnStorm(t *testing.T) {
	s := NewSharded(16)
	stableCaller := &nullCaller{"stable"}
	stable := make(map[uint64]bool)
	for i := 0; i < 20; i++ {
		sub := &Sub{Key: uint64(1000 + i), Topic: "ev", FuncType: sigInt, Caller: stableCaller}
		stable[s.Add(sub)] = true
	}

	const churners = 8
	const rounds = 500
	var churnWG, readWG sync.WaitGroup
	for w := 0; w < churners; w++ {
		w := w
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			c := &nullCaller{}
			for i := 0; i < rounds; i++ {
				sub := &Sub{Key: uint64(w*rounds + i + 1), Topic: "ev", FuncType: sigInt, Caller: c}
				id := s.Add(sub)
				if s.Remove("ev", sub.Key, id) != sub {
					t.Error("lost own subscription during churn")
					return
				}
			}
		}()
	}
	// Snapshot readers race with the churners.
	done := make(chan struct{})
	var snaps atomic.Uint64
	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := s.Snapshot("ev")
				seen := make(map[uint64]int)
				for _, sub := range snap {
					if sub.Caller == stableCaller {
						seen[sub.ID]++
					}
				}
				if len(seen) != len(stable) {
					t.Errorf("snapshot saw %d stable subs, want %d", len(seen), len(stable))
					return
				}
				for id, n := range seen {
					if n != 1 {
						t.Errorf("stable sub %d appeared %d times in snapshot", id, n)
						return
					}
				}
				snaps.Add(1)
			}
		}()
	}
	churnWG.Wait()
	close(done)
	readWG.Wait()

	if s.TopicLen("ev") != len(stable) {
		t.Fatalf("after storm TopicLen = %d, want %d", s.TopicLen("ev"), len(stable))
	}
	if snaps.Load() == 0 {
		t.Fatal("snapshot readers never ran")
	}
}
