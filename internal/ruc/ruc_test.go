package ruc

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// fakeCaller records upcalls and replies from a table of canned results.
type fakeCaller struct {
	mu    sync.Mutex
	calls []recordedCall
	reply func(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error)
}

type recordedCall struct {
	procID uint64
	args   []any
}

func (f *fakeCaller) Upcall(procID uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
	f.mu.Lock()
	rec := recordedCall{procID: procID}
	for _, a := range args {
		rec.args = append(rec.args, a.Interface())
	}
	f.calls = append(f.calls, rec)
	f.mu.Unlock()
	if f.reply != nil {
		return f.reply(procID, ft, args)
	}
	return nil, nil
}

func TestBindRejectsNonFunc(t *testing.T) {
	tbl := NewTable(nil)
	if _, _, err := tbl.Bind(1, reflect.TypeOf(3), &fakeCaller{}); err == nil {
		t.Error("bound an int type")
	}
	if _, _, err := tbl.Bind(1, nil, &fakeCaller{}); err == nil {
		t.Error("bound a nil type")
	}
	if _, _, err := tbl.Bind(1, reflect.TypeOf(func(...int) {}), &fakeCaller{}); err == nil {
		t.Error("bound a variadic type")
	}
}

func TestProxyLooksLikeNormalProcedure(t *testing.T) {
	tbl := NewTable(nil)
	c := &fakeCaller{}
	ft := reflect.TypeOf(func(int32, string) {})
	e, proxy, err := tbl.Bind(42, ft, c)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Type() != ft {
		t.Fatalf("proxy type %s, want %s", proxy.Type(), ft)
	}
	// Invoke through the ordinary typed signature, as a lower-level
	// object would after registration.
	fn := proxy.Interface().(func(int32, string))
	fn(7, "mouse")
	fn(8, "key")

	if len(c.calls) != 2 {
		t.Fatalf("%d upcalls", len(c.calls))
	}
	if c.calls[0].procID != 42 || c.calls[0].args[0] != int32(7) || c.calls[0].args[1] != "mouse" {
		t.Errorf("call 0: %+v", c.calls[0])
	}
	calls, failures, _ := e.Stats()
	if calls != 2 || failures != 0 {
		t.Errorf("stats: %d calls %d failures", calls, failures)
	}
}

func TestProxyReturnsResults(t *testing.T) {
	tbl := NewTable(nil)
	c := &fakeCaller{
		reply: func(_ uint64, ft reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
			n := args[0].Int()
			return []reflect.Value{reflect.ValueOf(n * 2)}, nil
		},
	}
	_, proxy, err := tbl.Bind(1, reflect.TypeOf(func(int64) int64 { return 0 }), c)
	if err != nil {
		t.Fatal(err)
	}
	fn := proxy.Interface().(func(int64) int64)
	if got := fn(21); got != 42 {
		t.Errorf("fn(21) = %d", got)
	}
}

func TestProxyPropagatesErrorResult(t *testing.T) {
	tbl := NewTable(nil)
	boom := errors.New("client unreachable")
	c := &fakeCaller{
		reply: func(uint64, reflect.Type, []reflect.Value) ([]reflect.Value, error) {
			return nil, boom
		},
	}
	e, proxy, err := tbl.Bind(1, reflect.TypeOf(func(string) (int32, error) { return 0, nil }), c)
	if err != nil {
		t.Fatal(err)
	}
	fn := proxy.Interface().(func(string) (int32, error))
	n, got := fn("x")
	if !errors.Is(got, boom) {
		t.Errorf("err = %v", got)
	}
	if n != 0 {
		t.Errorf("data result = %d, want zero", n)
	}
	_, failures, last := e.Stats()
	if failures != 1 || !errors.Is(last, boom) {
		t.Errorf("stats: failures=%d last=%v", failures, last)
	}
}

func TestProxyErrorWithoutErrorResultGoesToOnError(t *testing.T) {
	var gotEntry *Entry
	var gotErr error
	tbl := NewTable(func(e *Entry, err error) {
		gotEntry, gotErr = e, err
	})
	boom := errors.New("dead channel")
	c := &fakeCaller{
		reply: func(uint64, reflect.Type, []reflect.Value) ([]reflect.Value, error) {
			return nil, boom
		},
	}
	e, proxy, err := tbl.Bind(9, reflect.TypeOf(func(int32) {}), c)
	if err != nil {
		t.Fatal(err)
	}
	proxy.Interface().(func(int32))(1) // must not panic
	if gotEntry != e || !errors.Is(gotErr, boom) {
		t.Errorf("onError got (%v, %v)", gotEntry, gotErr)
	}
}

func TestEachBindingGetsItsOwnEntry(t *testing.T) {
	tbl := NewTable(nil)
	c := &fakeCaller{}
	ft := reflect.TypeOf(func() {})
	e1, _, _ := tbl.Bind(5, ft, c)
	e2, _, _ := tbl.Bind(5, ft, c)
	if e1.ID == e2.ID {
		t.Error("two translations share a RUC object")
	}
	if tbl.Len() != 2 {
		t.Errorf("table len %d", tbl.Len())
	}
	if got, ok := tbl.Get(e1.ID); !ok || got != e1 {
		t.Error("Get lost an entry")
	}
	ents := tbl.Entries()
	if len(ents) != 2 || ents[0].ID > ents[1].ID {
		t.Errorf("Entries() = %v", ents)
	}
}

func TestDropCaller(t *testing.T) {
	tbl := NewTable(nil)
	c1, c2 := &fakeCaller{}, &fakeCaller{}
	ft := reflect.TypeOf(func() {})
	tbl.Bind(1, ft, c1)
	tbl.Bind(2, ft, c1)
	e3, _, _ := tbl.Bind(3, ft, c2)
	if n := tbl.DropCaller(c1); n != 2 {
		t.Errorf("dropped %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Errorf("len = %d", tbl.Len())
	}
	if _, ok := tbl.Get(e3.ID); !ok {
		t.Error("wrong caller's entry dropped")
	}
}

func TestProxyShortResultsPadded(t *testing.T) {
	// A buggy caller returning fewer results than declared must not panic
	// the server; missing results are zero.
	tbl := NewTable(nil)
	c := &fakeCaller{
		reply: func(uint64, reflect.Type, []reflect.Value) ([]reflect.Value, error) {
			return nil, nil // no results despite the declared int64
		},
	}
	_, proxy, _ := tbl.Bind(1, reflect.TypeOf(func() int64 { return 0 }), c)
	if got := proxy.Interface().(func() int64)(); got != 0 {
		t.Errorf("got %d", got)
	}
}

func ExampleTable_Bind() {
	tbl := NewTable(nil)
	c := &fakeCaller{
		reply: func(_ uint64, _ reflect.Type, args []reflect.Value) ([]reflect.Value, error) {
			fmt.Println("upcall to client proc with", args[0].Interface())
			return nil, nil
		},
	}
	_, proxy, _ := tbl.Bind(7, reflect.TypeOf(func(string) {}), c)
	// The lower-level object sees an ordinary procedure pointer.
	notify := proxy.Interface().(func(string))
	notify("window created")
	// Output: upcall to client proc with window created
}
