package rpc

import (
	"context"
	"errors"
	"fmt"
	"reflect"

	"clam/internal/bundle"
	"clam/internal/xdr"
)

// This file is the server side of the paper's stub compiler (§3.4): "The
// compiler, given a procedure declaration, will generate a pair of stubs,
// one for clients and one for the server, and the code for the procedure
// itself." Client stubs here are the generic tagged encoder in codec.go
// (the client bundles by dynamic type); server stubs are compiled per
// class from its reflect.Type when the class is loaded.

// Dispatch errors.
var (
	ErrNoMethod = errors.New("rpc: no such method")
	ErrNotAsync = errors.New("rpc: method cannot be called asynchronously")
)

// ClassStubs holds the compiled method stubs for one class type.
type ClassStubs struct {
	// Type is the instance type the stubs dispatch on (pointer to struct).
	Type    reflect.Type
	methods map[string]*MethodStub
	// skipped records methods that could not be compiled and why, so a
	// remote call to one produces a useful error.
	skipped map[string]error
}

// Method returns the stub for name.
func (cs *ClassStubs) Method(name string) (*MethodStub, error) {
	if m, ok := cs.methods[name]; ok {
		return m, nil
	}
	if why, ok := cs.skipped[name]; ok {
		return nil, fmt.Errorf("%w: %s.%s is not remotely callable: %v",
			ErrNoMethod, cs.Type, name, why)
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoMethod, cs.Type, name)
}

// MethodNames lists the remotely callable methods.
func (cs *ClassStubs) MethodNames() []string {
	names := make([]string, 0, len(cs.methods))
	for n := range cs.methods {
		names = append(names, n)
	}
	return names
}

// ArgStub describes one compiled parameter.
type ArgStub struct {
	Type reflect.Type
	Fn   bundle.Func
	Mode bundle.Mode
	Kind Kind
	// ElemFn/ElemKind are compiled for the pointee of data-pointer
	// parameters, used to ship out/inout results back (§3.2's result
	// parameters).
	ElemFn   bundle.Func
	ElemKind Kind
}

// MethodStub is the compiled server stub for one method: it knows how to
// unbundle the arguments, invoke the procedure, and bundle results and
// out-parameters back.
type MethodStub struct {
	Name string
	fn   reflect.Value // method func; first arg is the receiver
	Args []ArgStub
	// Rets excludes a trailing error result, which travels as call status.
	Rets   []ArgStub
	HasErr bool
	recvT  reflect.Type
	// Asyncable methods have no results and no out-parameters, so they
	// can be batched without a reply (§3.4: "when no return values are
	// needed, the remote call can be delayed, and put in a batch").
	Asyncable bool
	// TakesCtx marks a method whose first parameter is a context.Context.
	// The context never travels on the wire: Invoke injects the server's
	// per-call context, carrying the caller's deadline budget and cancelled
	// by a MsgCancel, so loaded code can observe abandonment.
	TakesCtx bool
}

var (
	errType = reflect.TypeOf((*error)(nil)).Elem()
	ctxType = reflect.TypeOf((*context.Context)(nil)).Elem()
)

// CompileClass compiles stubs for every remotely callable exported method
// of t (a pointer-to-struct type). Methods whose parameter or result types
// cannot be bundled are skipped with a recorded reason rather than failing
// the whole class, since classes may have server-local methods. specs
// refines parameter modes and bundlers per method.
func CompileClass(reg *bundle.Registry, t reflect.Type, specs map[string]bundle.MethodSpec) (*ClassStubs, error) {
	if t.Kind() != reflect.Ptr || t.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("rpc: class type %s is not a pointer to struct", t)
	}
	cs := &ClassStubs{
		Type:    t,
		methods: make(map[string]*MethodStub),
		skipped: make(map[string]error),
	}
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		var spec *bundle.MethodSpec
		if s, ok := specs[m.Name]; ok {
			spec = &s
		}
		stub, err := compileMethod(reg, t, m, spec)
		if err != nil {
			cs.skipped[m.Name] = err
			continue
		}
		cs.methods[m.Name] = stub
	}
	return cs, nil
}

func compileMethod(reg *bundle.Registry, recvT reflect.Type, m reflect.Method, spec *bundle.MethodSpec) (*MethodStub, error) {
	mt := m.Func.Type()
	stub := &MethodStub{Name: m.Name, fn: m.Func, recvT: recvT}

	first := 1 // 0 is the receiver
	if mt.NumIn() > 1 && mt.In(1) == ctxType {
		stub.TakesCtx = true
		first = 2
	}
	for i := first; i < mt.NumIn(); i++ {
		pt := mt.In(i)
		ps := spec.Param(i - first)
		arg, err := compileArg(reg, pt, ps)
		if err != nil {
			return nil, fmt.Errorf("parameter %d (%s): %w", i-first, pt, err)
		}
		stub.Args = append(stub.Args, arg)
	}

	nOut := mt.NumOut()
	if nOut > 0 && mt.Out(nOut-1) == errType {
		stub.HasErr = true
		nOut--
	}
	for i := 0; i < nOut; i++ {
		rt := mt.Out(i)
		arg, err := compileArg(reg, rt, nil)
		if err != nil {
			return nil, fmt.Errorf("result %d (%s): %w", i, rt, err)
		}
		stub.Rets = append(stub.Rets, arg)
	}

	stub.Asyncable = len(stub.Rets) == 0 && !stub.HasErr
	for _, a := range stub.Args {
		if a.Mode != bundle.In {
			stub.Asyncable = false
		}
	}
	return stub, nil
}

func compileArg(reg *bundle.Registry, t reflect.Type, ps *bundle.ParamSpec) (ArgStub, error) {
	arg := ArgStub{Type: t, Kind: KindOf(t, nil)}
	// KindOf with a nil ctx cannot see the object hook; reclassify
	// plain struct pointers at dispatch time via the live ctx. Func
	// kinds and everything else are context-independent.
	if arg.Kind == 0 {
		return arg, fmt.Errorf("%w: %s", bundle.ErrNoBundler, t)
	}

	// Default modes: values are In (const — "the parameter cannot change
	// during the call"); data pointers are InOut (copied both ways, the
	// closest realizable semantics to reference parameters, §3.1);
	// procedure and object pointers are In.
	switch {
	case t.Kind() == reflect.Ptr:
		arg.Mode = bundle.InOut
	default:
		arg.Mode = bundle.In
	}
	var err error
	if ps != nil && ps.Bundler != "" {
		arg.Fn, err = reg.Named(ps.Bundler)
	} else {
		arg.Fn, err = reg.Compile(t)
	}
	if err != nil {
		return arg, err
	}
	if ps != nil && ps.Mode != 0 {
		arg.Mode = ps.Mode
	}
	if t.Kind() == reflect.Ptr && t.Elem().Kind() != reflect.Func {
		arg.ElemKind = KindOf(t.Elem(), nil)
		if arg.ElemKind != 0 {
			arg.ElemFn, err = reg.Compile(t.Elem())
			if err != nil {
				return arg, err
			}
		}
	}
	return arg, nil
}

// liveKind resolves the arg's wire kind under the call's ctx (object
// pointers become handles only when the session recognizes the class).
func (a *ArgStub) liveKind(ctx *bundle.Ctx) Kind {
	if a.Type.Kind() == reflect.Ptr {
		return KindOf(a.Type, ctx)
	}
	return a.Kind
}

// DecodeArgs unbundles a call's arguments per the stub, returning values
// ready to pass to Invoke. Out-mode pointer parameters that arrive nil are
// allocated so the procedure always has somewhere to store its result.
func (st *MethodStub) DecodeArgs(ctx *bundle.Ctx, s *xdr.Stream) ([]reflect.Value, error) {
	var argc int
	if err := s.Len(&argc); err != nil {
		return nil, err
	}
	if argc != len(st.Args) {
		return nil, fmt.Errorf("rpc: %s takes %d parameters, caller sent %d",
			st.Name, len(st.Args), argc)
	}
	args := make([]reflect.Value, len(st.Args))
	for i := range st.Args {
		a := &st.Args[i]
		target := reflect.New(a.Type).Elem()
		if err := DecodeValueWith(ctx, s, target, a.Fn, a.liveKind(ctx)); err != nil {
			return nil, fmt.Errorf("rpc: %s parameter %d: %w", st.Name, i, err)
		}
		if a.Mode == bundle.Out && a.Type.Kind() == reflect.Ptr && target.IsNil() {
			target.Set(reflect.New(a.Type.Elem()))
		}
		args[i] = target
	}
	return args, nil
}

// EncodeArgs bundles a call's arguments per the stub — used for local
// loopback tests and by typed client proxies that know the server spec.
func (st *MethodStub) EncodeArgs(ctx *bundle.Ctx, s *xdr.Stream, args []reflect.Value) error {
	if len(args) != len(st.Args) {
		return fmt.Errorf("rpc: %s takes %d parameters, got %d", st.Name, len(st.Args), len(args))
	}
	n := len(args)
	if err := s.Len(&n); err != nil {
		return err
	}
	for i := range st.Args {
		a := &st.Args[i]
		k := uint32(a.liveKind(ctx))
		if err := s.Uint32(&k); err != nil {
			return err
		}
		if err := a.Fn(ctx, s, args[i]); err != nil {
			return fmt.Errorf("rpc: %s parameter %d: %w", st.Name, i, err)
		}
	}
	return nil
}

// Invoke calls the procedure on recv with args, separating a trailing
// error result from the data results. ctx is injected as the first
// parameter of TakesCtx methods and ignored otherwise; a nil ctx means
// no deadline (context.Background is injected).
func (st *MethodStub) Invoke(ctx context.Context, recv reflect.Value, args []reflect.Value) (rets []reflect.Value, appErr error) {
	n := len(args) + 1
	if st.TakesCtx {
		n++
	}
	in := make([]reflect.Value, 0, n)
	in = append(in, recv)
	if st.TakesCtx {
		if ctx == nil {
			ctx = context.Background()
		}
		in = append(in, reflect.ValueOf(ctx))
	}
	in = append(in, args...)
	out := st.fn.Call(in)
	if st.HasErr {
		if e := out[len(out)-1]; !e.IsNil() {
			appErr = e.Interface().(error)
		}
		out = out[:len(out)-1]
	}
	return out, appErr
}

// EncodeReplyPayload bundles the out-parameters and results of a completed
// call: a count of out-parameters with their positions, then the results.
func (st *MethodStub) EncodeReplyPayload(ctx *bundle.Ctx, s *xdr.Stream, args, rets []reflect.Value) error {
	outs := st.outParams(ctx)
	n := len(outs)
	if err := s.Len(&n); err != nil {
		return err
	}
	for _, i := range outs {
		idx := uint32(i)
		if err := s.Uint32(&idx); err != nil {
			return err
		}
		a := &st.Args[i]
		// Send the pointee, not the pointer: the caller already holds the
		// pointer; only the referenced data changed. A nil pointer (legal
		// for an In-ish caller) travels as an explicit absence flag.
		present := !args[i].IsNil()
		if err := s.Bool(&present); err != nil {
			return err
		}
		if !present {
			continue
		}
		k := uint32(a.ElemKind)
		if err := s.Uint32(&k); err != nil {
			return err
		}
		if err := a.ElemFn(ctx, s, args[i].Elem()); err != nil {
			return fmt.Errorf("rpc: %s out-parameter %d: %w", st.Name, i, err)
		}
	}
	rn := len(rets)
	if err := s.Len(&rn); err != nil {
		return err
	}
	for i, rv := range rets {
		a := &st.Rets[i]
		k := uint32(a.liveKind(ctx))
		if err := s.Uint32(&k); err != nil {
			return err
		}
		if err := a.Fn(ctx, s, rv); err != nil {
			return fmt.Errorf("rpc: %s result %d: %w", st.Name, i, err)
		}
	}
	return nil
}

// outParams lists the indices of parameters whose pointees travel back.
// Object handles and procedure descriptors never travel back as data, so
// they are excluded even when their declared mode is InOut.
func (st *MethodStub) outParams(ctx *bundle.Ctx) []int {
	var outs []int
	for i := range st.Args {
		a := &st.Args[i]
		if a.Type.Kind() != reflect.Ptr || a.ElemFn == nil {
			continue
		}
		if a.liveKind(ctx) == KindHandle {
			continue
		}
		if a.Mode == bundle.Out || a.Mode == bundle.InOut {
			outs = append(outs, i)
		}
	}
	return outs
}
