package rpc

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"clam/internal/bundle"
	"clam/internal/xdr"
)

// Property tests for the tagged value codec: EncodeValue ∘ DecodeValue is
// the identity for every transmissible shape, and kind tags catch
// cross-kind confusion.

func codecRoundTrip(t *testing.T, reg *bundle.Registry, v any) (any, bool) {
	t.Helper()
	var buf bytes.Buffer
	ctx := &bundle.Ctx{}
	if err := EncodeValue(reg, ctx, xdr.NewEncoder(&buf), reflect.ValueOf(v)); err != nil {
		return nil, false
	}
	out := reflect.New(reflect.TypeOf(v)).Elem()
	if err := DecodeValue(reg, ctx, xdr.NewDecoder(&buf), out); err != nil {
		return nil, false
	}
	return out.Interface(), true
}

func TestQuickCodecPrimitives(t *testing.T) {
	reg := bundle.NewRegistry()
	cfg := &quick.Config{MaxCount: 200}

	if err := quick.Check(func(v int64) bool {
		got, ok := codecRoundTrip(t, reg, v)
		return ok && got == v
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v string) bool {
		got, ok := codecRoundTrip(t, reg, v)
		return ok && got == v
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v bool) bool {
		got, ok := codecRoundTrip(t, reg, v)
		return ok && got == v
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v uint32) bool {
		got, ok := codecRoundTrip(t, reg, v)
		return ok && got == v
	}, cfg); err != nil {
		t.Error(err)
	}
}

type quickWire struct {
	A int32
	B string
	C []int64
	D map[string]uint16
	E [2]bool
	F []byte
}

func TestQuickCodecComposite(t *testing.T) {
	reg := bundle.NewRegistry()
	f := func(w quickWire) bool {
		got, ok := codecRoundTrip(t, reg, w)
		if !ok {
			return false
		}
		g := got.(quickWire)
		// Normalize empty vs nil containers, which the codec does not
		// (and need not) distinguish.
		norm := func(x *quickWire) {
			if len(x.C) == 0 {
				x.C = nil
			}
			if len(x.D) == 0 {
				x.D = nil
			}
			if len(x.F) == 0 {
				x.F = nil
			}
		}
		norm(&g)
		norm(&w)
		return reflect.DeepEqual(g, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: decoding into a different kind always fails loudly, never
// silently produces a value.
func TestQuickCodecCrossKindRejected(t *testing.T) {
	reg := bundle.NewRegistry()
	f := func(v int64) bool {
		var buf bytes.Buffer
		ctx := &bundle.Ctx{}
		if err := EncodeValue(reg, ctx, xdr.NewEncoder(&buf), reflect.ValueOf(v)); err != nil {
			return false
		}
		var s string
		err := DecodeValue(reg, ctx, xdr.NewDecoder(&buf), reflect.ValueOf(&s).Elem())
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: pointer values round-trip including nil-ness.
func TestQuickCodecPointers(t *testing.T) {
	type inner struct{ N int64 }
	reg := bundle.NewRegistry()
	f := func(n int64, isNil bool) bool {
		var v *inner
		if !isNil {
			v = &inner{N: n}
		}
		got, ok := codecRoundTrip(t, reg, v)
		if !ok {
			return false
		}
		g := got.(*inner)
		if isNil {
			return g == nil
		}
		return g != nil && g.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
