package rpc

import (
	"sync"

	"clam/internal/xdr"
)

// Scratch is a reusable encode/decode workspace: one growing buffer, one
// slice reader, and one xdr.Stream, pooled together. The paper's §5 cost
// table puts message handling at the top of a CLAM call's budget; on a
// modern runtime that budget is spent in per-call allocation, so the hot
// paths rearm one workspace per exchange instead of building a fresh
// buffer, reader and stream for every message.
//
// A Scratch serves one encode or one decode at a time. The bytes returned
// by Bytes remain valid until the next Encoder/Decoder call or Release —
// long enough to hand to wire.Conn.Write, which copies before returning.
type Scratch struct {
	buf xdr.Buffer
	rd  xdr.Reader
	st  xdr.Stream
}

// maxScratch caps the buffer capacity the pool retains, mirroring
// wire.maxPooledBody: one huge reply must not pin megabytes behind a
// pool entry forever.
const maxScratch = 256 << 10

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a workspace from the pool. Pair with Release.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the workspace to the pool. The slice returned by Bytes
// is dead after this call.
func (sc *Scratch) Release() {
	if sc == nil {
		return
	}
	if cap(sc.buf.B) > maxScratch {
		sc.buf.B = nil
	}
	sc.buf.Reset()
	sc.rd.Reset(nil)
	scratchPool.Put(sc)
}

// Encoder rearms the workspace for encoding and returns its stream; the
// encoded bytes accumulate in the workspace buffer (see Bytes).
func (sc *Scratch) Encoder() *xdr.Stream {
	sc.buf.Reset()
	sc.st.ResetEncode(&sc.buf)
	return &sc.st
}

// Decoder rearms the workspace for decoding body and returns its stream.
// The stream reads body in place; body must stay alive for the duration
// of the decode (release any pooled wire.Msg only afterwards).
func (sc *Scratch) Decoder(body []byte) *xdr.Stream {
	sc.rd.Reset(body)
	sc.st.ResetDecode(&sc.rd)
	return &sc.st
}

// Bytes returns the encoded payload accumulated since the last Encoder
// call. Valid until the next Encoder/Decoder call or Release.
func (sc *Scratch) Bytes() []byte { return sc.buf.Bytes() }

// Len reports the encoded payload length.
func (sc *Scratch) Len() int { return sc.buf.Len() }

// Truncate rolls the encoded payload back to n bytes, discarding a
// partially encoded item (e.g. one failed call entry in a batch).
func (sc *Scratch) Truncate(n int) { sc.buf.Truncate(n) }
