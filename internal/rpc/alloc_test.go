package rpc

import (
	"reflect"
	"testing"

	"clam/internal/bundle"
)

// Allocation guards for the codec fast path: encoding a call entry
// (header + tagged args) into a pooled Scratch must not allocate once
// the workspace and bundler cache are warm. This pins the post-pooling
// count so a regression reintroducing per-call buffers fails loudly.

// maxEncodeAllocs is the pinned budget for one header+args encode into a
// warm Scratch. The steady state measures 0; one unit of slack absorbs a
// rare mid-run GC clearing the pool.
const maxEncodeAllocs = 1

func TestAllocsScratchCallEncode(t *testing.T) {
	reg := bundle.NewRegistry()
	ctx := &bundle.Ctx{}
	hdr := CallHeader{Seq: 7, Method: "Write"}
	// Pre-box the arguments: reflect.ValueOf inside the loop would charge
	// the caller's boxing to the codec.
	x, s := int64(42), "hello"
	args := []reflect.Value{reflect.ValueOf(x), reflect.ValueOf(s)}

	encode := func(sc *Scratch) {
		enc := sc.Encoder()
		if err := hdr.Bundle(enc); err != nil {
			t.Fatal(err)
		}
		for _, v := range args {
			if err := EncodeValue(reg, ctx, enc, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Warm the scratch pool and the bundler compilation cache.
	for i := 0; i < 8; i++ {
		sc := GetScratch()
		encode(sc)
		sc.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		sc := GetScratch()
		encode(sc)
		sc.Release()
	})
	if allocs > maxEncodeAllocs {
		t.Errorf("scratch call encode allocates %.1f objects/op, budget %d", allocs, maxEncodeAllocs)
	}
}

// Decoding from a Scratch must round-trip what the encoder produced and
// stay allocation-free apart from the decoded values themselves.
func TestScratchEncodeDecodeRoundTrip(t *testing.T) {
	reg := bundle.NewRegistry()
	ctx := &bundle.Ctx{}
	sc := GetScratch()
	defer sc.Release()

	enc := sc.Encoder()
	hdr := CallHeader{Seq: 9, Method: "Line"}
	if err := hdr.Bundle(enc); err != nil {
		t.Fatal(err)
	}
	want := int64(1234)
	if err := EncodeValue(reg, ctx, enc, reflect.ValueOf(want)); err != nil {
		t.Fatal(err)
	}

	// The workspace flips from encode to decode over its own bytes; the
	// decoder copies values out, so this mirrors the decode-then-release
	// pattern the session uses. Copy first: Decoder rearms the stream but
	// Bytes' storage is shared with the encode buffer.
	body := append([]byte(nil), sc.Bytes()...)
	dec := sc.Decoder(body)
	var got CallHeader
	if err := got.Bundle(dec); err != nil {
		t.Fatal(err)
	}
	if got.Seq != hdr.Seq || got.Method != hdr.Method {
		t.Fatalf("header round trip: got %+v, want %+v", got, hdr)
	}
	var x int64
	if err := DecodeValue(reg, ctx, dec, reflect.ValueOf(&x).Elem()); err != nil {
		t.Fatal(err)
	}
	if x != want {
		t.Fatalf("value round trip: got %d, want %d", x, want)
	}
}
