// Package rpc implements CLAM's remote-procedure-call machinery (ICDCS
// 1988, §3): the stub compiler that turns class declarations into method
// stubs, the tagged value codec clients and servers exchange parameters
// with, and the wire layouts of call batches, replies and upcalls.
//
// The paper integrates stub generation with the C++ compiler; here the
// "compiler" runs at class-load time over reflect types (see
// internal/bundle for the rationale). The paper's asynchronous batched
// calls (§3.4) are encoded as one MsgCall body carrying several calls;
// "batching reduces the amount of interprocess communication, and
// introduces asynchrony into the RPC model."
package rpc

import (
	"errors"
	"fmt"
	"reflect"

	"clam/internal/bundle"
	"clam/internal/xdr"
)

// Kind tags every top-level value on the wire so a client/server type
// mismatch produces a clear error instead of silently decoded garbage.
// (XDR itself is untagged; the tag costs one word per parameter.)
type Kind uint32

// Kinds of top-level values.
const (
	KindSigned Kind = iota + 1
	KindUnsigned
	KindFloat
	KindBool
	KindString
	KindBytes
	KindStruct
	KindSlice
	KindMap
	KindPtr
	KindArray
	KindHandle // pointer to a class instance: travels as a handle (§3.5.1)
	KindProc   // pointer to a procedure: travels as an upcall descriptor (§3.5.2)
)

var kindNames = map[Kind]string{
	KindSigned:   "signed",
	KindUnsigned: "unsigned",
	KindFloat:    "float",
	KindBool:     "bool",
	KindString:   "string",
	KindBytes:    "bytes",
	KindStruct:   "struct",
	KindSlice:    "slice",
	KindMap:      "map",
	KindPtr:      "pointer",
	KindArray:    "array",
	KindHandle:   "object-handle",
	KindProc:     "procedure",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("rpc.Kind(%d)", uint32(k))
}

// ErrKindMismatch reports that the sender's parameter kind disagrees with
// the receiver's declared parameter type.
var ErrKindMismatch = errors.New("rpc: parameter kind mismatch")

// KindOf classifies t the way the codec will transmit it. ctx supplies the
// session's object hook so class-instance pointers classify as handles.
func KindOf(t reflect.Type, ctx *bundle.Ctx) Kind {
	switch t.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return KindSigned
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return KindUnsigned
	case reflect.Float32, reflect.Float64:
		return KindFloat
	case reflect.Bool:
		return KindBool
	case reflect.String:
		return KindString
	case reflect.Struct:
		return KindStruct
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return KindBytes
		}
		return KindSlice
	case reflect.Map:
		return KindMap
	case reflect.Array:
		return KindArray
	case reflect.Func:
		return KindProc
	case reflect.Ptr:
		if t.Elem().Kind() == reflect.Struct && ctx != nil && ctx.Objects != nil && ctx.Objects.IsClass(t.Elem()) {
			return KindHandle
		}
		return KindPtr
	default:
		return 0
	}
}

// EncodeValue writes one tagged value: its kind word followed by its
// bundled form. The bundler is compiled from v's dynamic type; the special
// pointer kinds divert through the Ctx hooks exactly as §3.5 describes.
func EncodeValue(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, v reflect.Value) error {
	k := KindOf(v.Type(), ctx)
	if k == 0 {
		return fmt.Errorf("%w: cannot transmit %s", bundle.ErrNoBundler, v.Type())
	}
	kk := uint32(k)
	if err := s.Uint32(&kk); err != nil {
		return err
	}
	f, err := reg.Compile(v.Type())
	if err != nil {
		return err
	}
	return f(ctx, s, v)
}

// DecodeValue reads one tagged value into target (settable), validating
// the sender's kind against target's type.
func DecodeValue(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, target reflect.Value) error {
	return decodeTagged(reg, ctx, s, target, nil)
}

// DecodeValueWith is DecodeValue with a pre-compiled bundler for target's
// type, avoiding the registry lookup on hot paths.
func DecodeValueWith(ctx *bundle.Ctx, s *xdr.Stream, target reflect.Value, f bundle.Func, want Kind) error {
	var got uint32
	if err := s.Uint32(&got); err != nil {
		return err
	}
	if Kind(got) != want {
		return fmt.Errorf("%w: got %s, want %s (%s)", ErrKindMismatch, Kind(got), want, target.Type())
	}
	return f(ctx, s, target)
}

func decodeTagged(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, target reflect.Value, f bundle.Func) error {
	var got uint32
	if err := s.Uint32(&got); err != nil {
		return err
	}
	want := KindOf(target.Type(), ctx)
	if Kind(got) != want {
		return fmt.Errorf("%w: got %s, want %s (%s)", ErrKindMismatch, Kind(got), want, target.Type())
	}
	if f == nil {
		var err error
		f, err = reg.Compile(target.Type())
		if err != nil {
			return err
		}
	}
	return f(ctx, s, target)
}
