package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"clam/internal/bundle"
	"clam/internal/handle"
	"clam/internal/xdr"
)

// calcClass is a toy remotely callable class.
type calcClass struct {
	total int64
	log   []string
}

func (c *calcClass) Add(n int64) { c.total += n }

func (c *calcClass) Total() int64 { return c.total }

func (c *calcClass) Div(a, b int64) (int64, error) {
	if b == 0 {
		return 0, errors.New("divide by zero")
	}
	return a / b, nil
}

func (c *calcClass) Scale(factor int64, v *vec) {
	v.X *= factor
	v.Y *= factor
}

func (c *calcClass) Fill(out *vec) {
	out.X, out.Y = 7, 9
}

func (c *calcClass) Record(s string) { c.log = append(c.log, s) }

// NotRemotable takes an unbundlable parameter and must be skipped.
func (c *calcClass) NotRemotable(ch chan int) { _ = ch }

type vec struct{ X, Y int64 }

func compileCalc(t *testing.T, specs map[string]bundle.MethodSpec) (*bundle.Registry, *ClassStubs) {
	t.Helper()
	reg := bundle.NewRegistry()
	cs, err := CompileClass(reg, reflect.TypeOf(&calcClass{}), specs)
	if err != nil {
		t.Fatal(err)
	}
	return reg, cs
}

func TestCompileClassRejectsNonPointer(t *testing.T) {
	reg := bundle.NewRegistry()
	if _, err := CompileClass(reg, reflect.TypeOf(calcClass{}), nil); err == nil {
		t.Error("compiling a non-pointer class type succeeded")
	}
}

func TestCompileClassSkipsUncompilableMethods(t *testing.T) {
	_, cs := compileCalc(t, nil)
	if _, err := cs.Method("NotRemotable"); !errors.Is(err, ErrNoMethod) {
		t.Errorf("err = %v, want ErrNoMethod", err)
	} else if !strings.Contains(err.Error(), "not remotely callable") {
		t.Errorf("skip reason missing: %v", err)
	}
	if _, err := cs.Method("Nope"); !errors.Is(err, ErrNoMethod) {
		t.Errorf("unknown method err = %v", err)
	}
	names := cs.MethodNames()
	for _, n := range names {
		if n == "NotRemotable" {
			t.Error("skipped method listed as callable")
		}
	}
}

func TestAsyncableClassification(t *testing.T) {
	_, cs := compileCalc(t, nil)
	cases := map[string]bool{
		"Add":    true,  // no results, value params
		"Record": true,  // no results
		"Total":  false, // has a result
		"Div":    false, // has results
		"Scale":  false, // inout pointer
		"Fill":   false, // inout pointer (default mode)
	}
	for name, want := range cases {
		m, err := cs.Method(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Asyncable != want {
			t.Errorf("%s.Asyncable = %v, want %v", name, m.Asyncable, want)
		}
	}
}

// invokeViaWire runs one complete server-side stub cycle: encode args the
// way a client would, decode via the stub, invoke, encode the reply
// payload, and return the reply bytes.
func invokeViaWire(t *testing.T, reg *bundle.Registry, st *MethodStub, recv any, args ...any) ([]reflect.Value, *bytes.Buffer) {
	t.Helper()
	ctx := &bundle.Ctx{}
	var wire bytes.Buffer
	enc := xdr.NewEncoder(&wire)
	n := len(args)
	if err := enc.Len(&n); err != nil {
		t.Fatal(err)
	}
	for _, a := range args {
		if err := EncodeValue(reg, ctx, enc, reflect.ValueOf(a)); err != nil {
			t.Fatalf("encode arg: %v", err)
		}
	}
	dec := xdr.NewDecoder(&wire)
	decoded, err := st.DecodeArgs(ctx, dec)
	if err != nil {
		t.Fatalf("decode args: %v", err)
	}
	rets, appErr := st.Invoke(nil, reflect.ValueOf(recv), decoded)
	if appErr != nil {
		t.Fatalf("invoke: %v", appErr)
	}
	var reply bytes.Buffer
	if err := st.EncodeReplyPayload(ctx, xdr.NewEncoder(&reply), decoded, rets); err != nil {
		t.Fatalf("encode reply: %v", err)
	}
	return rets, &reply
}

func TestStubRoundTripSimpleCall(t *testing.T) {
	reg, cs := compileCalc(t, nil)
	c := &calcClass{}
	add, _ := cs.Method("Add")
	invokeViaWire(t, reg, add, c, int64(5))
	invokeViaWire(t, reg, add, c, int64(37))
	if c.total != 42 {
		t.Errorf("total = %d", c.total)
	}
	total, _ := cs.Method("Total")
	rets, _ := invokeViaWire(t, reg, total, c)
	if len(rets) != 1 || rets[0].Int() != 42 {
		t.Errorf("rets = %v", rets)
	}
}

func TestStubWidthConversion(t *testing.T) {
	// Client sends plain int; server parameter is int64.
	reg, cs := compileCalc(t, nil)
	c := &calcClass{}
	add, _ := cs.Method("Add")
	invokeViaWire(t, reg, add, c, 31) // int, not int64
	if c.total != 31 {
		t.Errorf("total = %d", c.total)
	}
}

func TestStubApplicationError(t *testing.T) {
	reg, cs := compileCalc(t, nil)
	div, _ := cs.Method("Div")
	ctx := &bundle.Ctx{}
	var wire bytes.Buffer
	enc := xdr.NewEncoder(&wire)
	n := 2
	enc.Len(&n)
	EncodeValue(reg, ctx, enc, reflect.ValueOf(int64(1)))
	EncodeValue(reg, ctx, enc, reflect.ValueOf(int64(0)))
	args, err := div.DecodeArgs(ctx, xdr.NewDecoder(&wire))
	if err != nil {
		t.Fatal(err)
	}
	_, appErr := div.Invoke(nil, reflect.ValueOf(&calcClass{}), args)
	if appErr == nil || appErr.Error() != "divide by zero" {
		t.Errorf("appErr = %v", appErr)
	}
}

func TestInOutPointerTravelsBack(t *testing.T) {
	reg, cs := compileCalc(t, nil)
	scale, _ := cs.Method("Scale")
	ctx := &bundle.Ctx{}
	_, reply := invokeViaWire(t, reg, scale, &calcClass{}, int64(3), &vec{X: 2, Y: 5})

	// The reply payload must carry the mutated pointee for parameter 1.
	dec := xdr.NewDecoder(reply)
	var outc int
	if err := dec.Len(&outc); err != nil {
		t.Fatal(err)
	}
	if outc != 1 {
		t.Fatalf("outc = %d, want 1", outc)
	}
	var idx uint32
	dec.Uint32(&idx)
	if idx != 1 {
		t.Errorf("out param index = %d, want 1", idx)
	}
	var present bool
	dec.Bool(&present)
	if !present {
		t.Fatal("out param absent")
	}
	var got vec
	if err := DecodeValue(reg, ctx, dec, reflect.ValueOf(&got).Elem()); err != nil {
		t.Fatal(err)
	}
	if got.X != 6 || got.Y != 15 {
		t.Errorf("scaled vec = %+v", got)
	}
}

func TestOutModeAllocatesNilPointer(t *testing.T) {
	specs := map[string]bundle.MethodSpec{
		"Fill": {Params: []*bundle.ParamSpec{{Mode: bundle.Out}}},
	}
	reg, cs := compileCalc(t, specs)
	fill, _ := cs.Method("Fill")
	// Client passes nil for the pure-out parameter: no data travels down.
	_, reply := invokeViaWire(t, reg, fill, &calcClass{}, (*vec)(nil))
	dec := xdr.NewDecoder(reply)
	var outc int
	dec.Len(&outc)
	if outc != 1 {
		t.Fatalf("outc = %d", outc)
	}
	var idx uint32
	dec.Uint32(&idx)
	var present bool
	dec.Bool(&present)
	if !present {
		t.Fatal("allocated out param not returned")
	}
	var got vec
	if err := DecodeValue(reg, &bundle.Ctx{}, dec, reflect.ValueOf(&got).Elem()); err != nil {
		t.Fatal(err)
	}
	if got.X != 7 || got.Y != 9 {
		t.Errorf("filled vec = %+v", got)
	}
}

func TestInModeSuppressesReplyCopy(t *testing.T) {
	specs := map[string]bundle.MethodSpec{
		"Scale": {Params: []*bundle.ParamSpec{nil, {Mode: bundle.In}}},
	}
	reg, cs := compileCalc(t, specs)
	scale, _ := cs.Method("Scale")
	_, reply := invokeViaWire(t, reg, scale, &calcClass{}, int64(2), &vec{X: 1, Y: 1})
	dec := xdr.NewDecoder(reply)
	var outc int
	dec.Len(&outc)
	if outc != 0 {
		t.Errorf("const pointer produced %d out params", outc)
	}
}

func TestDecodeArgsArityMismatch(t *testing.T) {
	reg, cs := compileCalc(t, nil)
	add, _ := cs.Method("Add")
	ctx := &bundle.Ctx{}
	var wire bytes.Buffer
	enc := xdr.NewEncoder(&wire)
	n := 2
	enc.Len(&n)
	EncodeValue(reg, ctx, enc, reflect.ValueOf(int64(1)))
	EncodeValue(reg, ctx, enc, reflect.ValueOf(int64(2)))
	if _, err := add.DecodeArgs(ctx, xdr.NewDecoder(&wire)); err == nil {
		t.Error("arity mismatch not detected")
	}
}

func TestKindMismatchDetected(t *testing.T) {
	reg, cs := compileCalc(t, nil)
	add, _ := cs.Method("Add")
	ctx := &bundle.Ctx{}
	var wire bytes.Buffer
	enc := xdr.NewEncoder(&wire)
	n := 1
	enc.Len(&n)
	EncodeValue(reg, ctx, enc, reflect.ValueOf("not a number"))
	_, err := add.DecodeArgs(ctx, xdr.NewDecoder(&wire))
	if !errors.Is(err, ErrKindMismatch) {
		t.Errorf("err = %v, want ErrKindMismatch", err)
	}
	if !strings.Contains(err.Error(), "string") || !strings.Contains(err.Error(), "signed") {
		t.Errorf("mismatch error lacks kind names: %v", err)
	}
}

func TestEncodeArgsMatchesDecodeArgs(t *testing.T) {
	_, cs := compileCalc(t, nil)
	scale, _ := cs.Method("Scale")
	ctx := &bundle.Ctx{}
	var wire bytes.Buffer
	args := []reflect.Value{reflect.ValueOf(int64(4)), reflect.ValueOf(&vec{X: 1, Y: 2})}
	if err := scale.EncodeArgs(ctx, xdr.NewEncoder(&wire), args); err != nil {
		t.Fatal(err)
	}
	decoded, err := scale.DecodeArgs(ctx, xdr.NewDecoder(&wire))
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].Int() != 4 || decoded[1].Interface().(*vec).Y != 2 {
		t.Errorf("decoded = %v", decoded)
	}
}

func TestCallHeaderRoundTrip(t *testing.T) {
	want := CallHeader{Seq: 9, Obj: handle.Handle{ID: 3, Tag: 0xbeef}, Method: "Move"}
	var buf bytes.Buffer
	h := want
	if err := h.Bundle(xdr.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var got CallHeader
	if err := got.Bundle(xdr.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestReplyHeaderRoundTrip(t *testing.T) {
	for _, want := range []ReplyHeader{
		{Status: StatusOK},
		{Status: StatusAppError, ErrMsg: "boom"},
		{Status: StatusFault, ErrMsg: "segv"},
		{Status: StatusDispatch, ErrMsg: "no method"},
	} {
		var buf bytes.Buffer
		h := want
		if err := h.Bundle(xdr.NewEncoder(&buf)); err != nil {
			t.Fatal(err)
		}
		var got ReplyHeader
		if err := got.Bundle(xdr.NewDecoder(&buf)); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("got %+v want %+v", got, want)
		}
		if want.Status == StatusOK && got.Err() != nil {
			t.Errorf("OK header produced error %v", got.Err())
		}
		if want.Status != StatusOK {
			var re *RemoteError
			if !errors.As(got.Err(), &re) || re.Msg != want.ErrMsg {
				t.Errorf("Err() = %v", got.Err())
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "ok" || !strings.Contains(Status(77).String(), "77") {
		t.Errorf("status names: %v %v", StatusOK, Status(77))
	}
}

func TestFuncArgsRoundTrip(t *testing.T) {
	reg := bundle.NewRegistry()
	ctx := &bundle.Ctx{}
	ft := reflect.TypeOf(func(int32, string, vec) {})
	args := []reflect.Value{
		reflect.ValueOf(int32(3)),
		reflect.ValueOf("event"),
		reflect.ValueOf(vec{X: 1, Y: 2}),
	}
	var buf bytes.Buffer
	if err := EncodeFuncArgs(reg, ctx, xdr.NewEncoder(&buf), ft, args); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFuncArgs(reg, ctx, xdr.NewDecoder(&buf), ft)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 3 || got[1].String() != "event" || got[2].Interface().(vec).Y != 2 {
		t.Errorf("decoded = %v", got)
	}
}

func TestFuncArgsArityChecked(t *testing.T) {
	reg := bundle.NewRegistry()
	ctx := &bundle.Ctx{}
	ft := reflect.TypeOf(func(int32) {})
	var buf bytes.Buffer
	err := EncodeFuncArgs(reg, ctx, xdr.NewEncoder(&buf), ft, nil)
	if err == nil {
		t.Error("wrong arity encoded")
	}
	// Decode side: encode for a 2-arg func, decode for a 1-arg func.
	ft2 := reflect.TypeOf(func(int32, int32) {})
	args := []reflect.Value{reflect.ValueOf(int32(1)), reflect.ValueOf(int32(2))}
	if err := EncodeFuncArgs(reg, ctx, xdr.NewEncoder(&buf), ft2, args); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFuncArgs(reg, ctx, xdr.NewDecoder(&buf), ft); err == nil {
		t.Error("arity mismatch not detected on decode")
	}
}

func TestFuncResultsRoundTrip(t *testing.T) {
	reg := bundle.NewRegistry()
	ctx := &bundle.Ctx{}
	ft := reflect.TypeOf(func() (int64, string, error) { return 0, "", nil })
	rets := []reflect.Value{
		reflect.ValueOf(int64(10)),
		reflect.ValueOf("done"),
		reflect.Zero(reflect.TypeOf((*error)(nil)).Elem()),
	}
	var buf bytes.Buffer
	if err := EncodeFuncResults(reg, ctx, xdr.NewEncoder(&buf), ft, rets, nil); err != nil {
		t.Fatal(err)
	}
	got, appErr, err := DecodeFuncResults(reg, ctx, xdr.NewDecoder(&buf), ft)
	if err != nil || appErr != nil {
		t.Fatalf("err=%v appErr=%v", err, appErr)
	}
	if got[0].Int() != 10 || got[1].String() != "done" {
		t.Errorf("results = %v", got)
	}
}

func TestFuncResultsCarryAppError(t *testing.T) {
	reg := bundle.NewRegistry()
	ctx := &bundle.Ctx{}
	ft := reflect.TypeOf(func() error { return nil })
	var buf bytes.Buffer
	if err := EncodeFuncResults(reg, ctx, xdr.NewEncoder(&buf), ft, nil, errors.New("handler failed")); err != nil {
		t.Fatal(err)
	}
	_, appErr, err := DecodeFuncResults(reg, ctx, xdr.NewDecoder(&buf), ft)
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if !errors.As(appErr, &re) || re.Msg != "handler failed" {
		t.Errorf("appErr = %v", appErr)
	}
}

func TestKindOfClassifications(t *testing.T) {
	cases := []struct {
		v    any
		want Kind
	}{
		{int8(1), KindSigned},
		{uint16(1), KindUnsigned},
		{1.5, KindFloat},
		{true, KindBool},
		{"s", KindString},
		{[]byte{1}, KindBytes},
		{[]int32{1}, KindSlice},
		{map[string]int32{}, KindMap},
		{vec{}, KindStruct},
		{&vec{}, KindPtr},
		{[2]int32{}, KindArray},
		{func() {}, KindProc},
	}
	for _, c := range cases {
		if got := KindOf(reflect.TypeOf(c.v), nil); got != c.want {
			t.Errorf("KindOf(%T) = %v, want %v", c.v, got, c.want)
		}
	}
	if KindOf(reflect.TypeOf(make(chan int)), nil) != 0 {
		t.Error("chan classified")
	}
	if !strings.Contains(Kind(99).String(), "99") || KindHandle.String() != "object-handle" {
		t.Errorf("kind names: %v %v", Kind(99), KindHandle)
	}
}

func TestUpcallHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := UpcallHeader{ProcID: 1234}
	if err := h.Bundle(xdr.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var got UpcallHeader
	if err := got.Bundle(xdr.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("got %+v", got)
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Status: StatusFault, Msg: "class died"}
	if !strings.Contains(e.Error(), "fault") || !strings.Contains(e.Error(), "class died") {
		t.Errorf("message: %v", e)
	}
}

func ExampleCompileClass() {
	reg := bundle.NewRegistry()
	cs, _ := CompileClass(reg, reflect.TypeOf(&calcClass{}), nil)
	m, _ := cs.Method("Div")
	fmt.Println(m.Name, len(m.Args), m.HasErr)
	// Output: Div 2 true
}
