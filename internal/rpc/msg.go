package rpc

import (
	"errors"
	"fmt"
	"reflect"

	"clam/internal/bundle"
	"clam/internal/handle"
	"clam/internal/xdr"
)

// Wire layouts for the bodies of the CLAM message types (the frame types
// themselves live in internal/wire).
//
// A MsgCall body is a batch: a call count followed by that many calls.
// "The CLAM RPC facility batches several asynchronous calls together into
// a single message" (§3.4); a call with Seq 0 is asynchronous and gets no
// reply, a call with a nonzero Seq is synchronous and is answered by a
// MsgReply carrying the same Seq.

// Status reports a call's fate.
type Status uint32

// Call statuses.
const (
	// StatusOK: the procedure ran; results follow.
	StatusOK Status = iota
	// StatusAppError: the procedure ran and returned an error.
	StatusAppError
	// StatusFault: the procedure crashed; the server caught the fault
	// (§4.3) and the class may be faulty.
	StatusFault
	// StatusDispatch: the call never reached a procedure (bad handle,
	// unknown method, argument mismatch).
	StatusDispatch
	// StatusDeadline: the call was shed without executing — its deadline
	// budget was already spent when a worker reached it, the caller
	// cancelled it, or admission control refused it under overload.
	StatusDeadline
)

// String names the status.
func (st Status) String() string {
	switch st {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "application error"
	case StatusFault:
		return "fault in loaded class"
	case StatusDispatch:
		return "dispatch error"
	case StatusDeadline:
		return "deadline exceeded"
	default:
		return fmt.Sprintf("rpc.Status(%d)", uint32(st))
	}
}

// RemoteError is the client-side rendering of a non-OK reply.
type RemoteError struct {
	Status Status
	Msg    string
}

// Error renders the remote failure.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Status, e.Msg)
}

// ErrTooManyCalls guards the batch count.
var ErrTooManyCalls = errors.New("rpc: batch call count exceeds limit")

// MaxBatch bounds the calls in one message.
const MaxBatch = 1 << 16

// CallHeader precedes each call's arguments in a batch.
type CallHeader struct {
	// Seq correlates the reply; 0 marks an asynchronous call.
	Seq uint64
	// Budget is the caller's remaining deadline budget in microseconds;
	// 0 means no deadline. Each hop anchors it to the frame's arrival
	// time, so the budget shrinks by real elapsed time (queue wait
	// included) as a call relays down a chain or across a mesh.
	Budget uint64
	// Obj names the target object. The nil handle addresses the server's
	// built-in root facilities.
	Obj handle.Handle
	// Method is the procedure name.
	Method string
}

// Bundle bidirectionally transfers the header.
func (h *CallHeader) Bundle(s *xdr.Stream) error {
	s.Uint64(&h.Seq)
	s.Uint64(&h.Budget)
	if err := h.Obj.Bundle(s); err != nil {
		return err
	}
	return s.String(&h.Method)
}

// ReplyHeader precedes a reply's payload.
type ReplyHeader struct {
	Status Status
	ErrMsg string
}

// Bundle bidirectionally transfers the header.
func (h *ReplyHeader) Bundle(s *xdr.Stream) error {
	st := uint32(h.Status)
	s.Uint32(&st)
	if s.Op() == xdr.Decode {
		h.Status = Status(st)
	}
	// The error message travels only on failure.
	if h.Status != StatusOK {
		return s.String(&h.ErrMsg)
	}
	return s.Err()
}

// Err converts a decoded header into an error, nil when OK.
func (h *ReplyHeader) Err() error {
	if h.Status == StatusOK {
		return nil
	}
	return &RemoteError{Status: h.Status, Msg: h.ErrMsg}
}

// UpcallHeader precedes a distributed upcall's arguments (§3.5.2): the
// client's procedure pointer travels as an opaque identifier that the
// client-side upcall stub maps back to the registered procedure.
type UpcallHeader struct {
	// ProcID is the client's procedure identifier, minted when the
	// procedure pointer was bundled down to the server.
	ProcID uint64
}

// Bundle bidirectionally transfers the header.
func (h *UpcallHeader) Bundle(s *xdr.Stream) error {
	return s.Uint64(&h.ProcID)
}

// EncodeFuncArgs bundles the arguments of an upcall (or any func-typed
// invocation) according to ft's parameter types, which is how the paper's
// compiler derives the upcall stubs: "The standard C++ syntax requires
// that the declaration of a procedure pointer include a specification of
// the type of each parameter ... The compiler uses this specification to
// generate the upcall stubs."
func EncodeFuncArgs(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, ft reflect.Type, args []reflect.Value) error {
	if len(args) != ft.NumIn() {
		return fmt.Errorf("rpc: upcall takes %d arguments, got %d", ft.NumIn(), len(args))
	}
	n := len(args)
	if err := s.Len(&n); err != nil {
		return err
	}
	for i, a := range args {
		if err := EncodeValue(reg, ctx, s, a); err != nil {
			return fmt.Errorf("rpc: upcall argument %d: %w", i, err)
		}
	}
	return nil
}

// DecodeFuncArgs unbundles upcall arguments per ft's parameter types.
func DecodeFuncArgs(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, ft reflect.Type) ([]reflect.Value, error) {
	var n int
	if err := s.Len(&n); err != nil {
		return nil, err
	}
	if n != ft.NumIn() {
		return nil, fmt.Errorf("rpc: upcall takes %d arguments, caller sent %d", ft.NumIn(), n)
	}
	args := make([]reflect.Value, n)
	for i := 0; i < n; i++ {
		target := reflect.New(ft.In(i)).Elem()
		if err := DecodeValue(reg, ctx, s, target); err != nil {
			return nil, fmt.Errorf("rpc: upcall argument %d: %w", i, err)
		}
		args[i] = target
	}
	return args, nil
}

// FuncResults splits ft's results into data results and the optional
// trailing error.
func FuncResults(ft reflect.Type) (data []reflect.Type, hasErr bool) {
	n := ft.NumOut()
	if n > 0 && ft.Out(n-1) == errType {
		hasErr = true
		n--
	}
	for i := 0; i < n; i++ {
		data = append(data, ft.Out(i))
	}
	return data, hasErr
}

// EncodeFuncResults bundles an upcall's reply: status, then data results.
func EncodeFuncResults(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, ft reflect.Type, rets []reflect.Value, appErr error) error {
	hdr := ReplyHeader{}
	if appErr != nil {
		hdr.Status = StatusAppError
		hdr.ErrMsg = appErr.Error()
	}
	if err := hdr.Bundle(s); err != nil {
		return err
	}
	if appErr != nil {
		return nil
	}
	data, hasErr := FuncResults(ft)
	if hasErr {
		rets = rets[:len(rets)-1]
	}
	if len(rets) != len(data) {
		return fmt.Errorf("rpc: upcall returns %d results, got %d", len(data), len(rets))
	}
	n := len(rets)
	if err := s.Len(&n); err != nil {
		return err
	}
	for i, rv := range rets {
		if err := EncodeValue(reg, ctx, s, rv); err != nil {
			return fmt.Errorf("rpc: upcall result %d: %w", i, err)
		}
	}
	return nil
}

// DecodeFuncResults unbundles an upcall's reply per ft, returning the data
// results and any application error the remote procedure reported.
func DecodeFuncResults(reg *bundle.Registry, ctx *bundle.Ctx, s *xdr.Stream, ft reflect.Type) ([]reflect.Value, error, error) {
	var hdr ReplyHeader
	if err := hdr.Bundle(s); err != nil {
		return nil, nil, err
	}
	if err := hdr.Err(); err != nil {
		return nil, err, nil
	}
	data, _ := FuncResults(ft)
	var n int
	if err := s.Len(&n); err != nil {
		return nil, nil, err
	}
	if n != len(data) {
		return nil, nil, fmt.Errorf("rpc: upcall returns %d results, remote sent %d", len(data), n)
	}
	rets := make([]reflect.Value, n)
	for i := 0; i < n; i++ {
		target := reflect.New(data[i]).Elem()
		if err := DecodeValue(reg, ctx, s, target); err != nil {
			return nil, nil, fmt.Errorf("rpc: upcall result %d: %w", i, err)
		}
		rets[i] = target
	}
	return rets, nil, nil
}
