// Package benchlib holds the minimal classes and fixtures behind the
// Figure 5.1 reproduction (procedure-call costs) and the ablation
// benchmarks. They are deliberately tiny: each row of the paper's table
// measures pure call mechanism, so the procedures must do no work.
package benchlib

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"time"

	"clam/internal/core"
	"clam/internal/dynload"
	"clam/internal/wire"
)

// Pinger is the leaf class: its procedures do nothing, so a call's cost
// is all mechanism.
type Pinger struct {
	calls int64
}

// Ping is the empty synchronous procedure (rows d, f, h of Figure 5.1
// call it remotely).
func (p *Pinger) Ping() int64 {
	p.calls++
	return p.calls
}

// Calls reports how many pings have landed.
func (p *Pinger) Calls() int64 { return p.calls }

// Hold parks the handler for roughly us microseconds before replying —
// the stand-in for a handler that waits on I/O, a lock, or a lower
// layer. Throughput rows call it instead of Ping because an empty
// handler hides dispatch behavior behind wire cost: with per-call wait,
// a serial dispatcher caps the server at one handler's rate while
// per-object dispatch overlaps as many waits as it has workers (and,
// unlike CPU spin, blocked handlers overlap even on GOMAXPROCS=1).
func (p *Pinger) Hold(us int64) int64 {
	time.Sleep(time.Duration(us) * time.Microsecond)
	p.calls++
	return p.calls
}

//go:noinline
func staticLeaf(n int64) int64 { return n + 1 }

// StaticCall is the row-a baseline: a statically linked procedure call.
// It is marked noinline so the call actually happens.
func StaticCall(n int64) int64 { return staticLeaf(n) }

// Relay is a loaded class that calls another loaded class with a normal
// procedure call — row b: "dynamically loaded procedure calling another
// dynamically loaded procedure".
type Relay struct {
	target *Pinger
}

// SetTarget wires the relay to its peer module (done server-side after
// both are loaded).
func (r *Relay) SetTarget(p *Pinger) { r.target = p }

// Relay calls the peer module's procedure.
//
//go:noinline
func (r *Relay) Relay() int64 { return r.target.Ping() }

// Echo is the upcall class: a client registers a procedure and the server
// invokes it — rows e, g, i measure that invocation.
type Echo struct {
	mu sync.Mutex
	fn func(int64) int64
}

// Register stores the procedure pointer (a RUC proxy when the registrant
// is remote).
func (e *Echo) Register(fn func(int64) int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fn = fn
}

// Proc returns the stored procedure for server-side invocation.
func (e *Echo) Proc() func(int64) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fn
}

// Call invokes the registered procedure once with x — lets a client
// drive one upcall through a normal call when the bench cannot reach the
// server object directly.
func (e *Echo) Call(x int64) (int64, error) {
	fn := e.Proc()
	if fn == nil {
		return 0, fmt.Errorf("benchlib: no registered procedure")
	}
	return fn(x), nil
}

// Register adds the benchmark classes to lib.
func Register(lib *dynload.Library) error {
	classes := []dynload.Class{
		{
			Name: "pinger", Version: 1, Type: reflect.TypeOf(&Pinger{}),
			New: func(any) (any, error) { return &Pinger{}, nil },
		},
		{
			Name: "relay", Version: 1, Type: reflect.TypeOf(&Relay{}),
			New: func(any) (any, error) { return &Relay{}, nil },
		},
		{
			Name: "echo", Version: 1, Type: reflect.TypeOf(&Echo{}),
			New: func(any) (any, error) { return &Echo{}, nil },
		},
	}
	for _, c := range classes {
		if err := lib.Register(c); err != nil {
			return err
		}
	}
	return nil
}

// Fixture is a booted benchmark server plus addressing information.
type Fixture struct {
	Server  *core.Server
	Network string
	Addr    string
	// Echo is the server-side echo instance, for driving upcalls from
	// the measurement loop.
	Echo *Echo
	// Pinger is the server-side leaf instance.
	Pinger *Pinger
}

// Boot starts a benchmark server on the given network ("unix" listens on
// dir/clam.sock; "tcp" on loopback) with the benchmark classes loaded and
// echo/pinger instances published.
func Boot(network, dir string, opts ...core.ServerOption) (*Fixture, error) {
	lib := dynload.NewLibrary()
	if err := Register(lib); err != nil {
		return nil, err
	}
	opts = append([]core.ServerOption{
		core.WithServerLog(func(string, ...any) {}),
	}, opts...)
	srv := core.NewServer(lib, opts...)

	eObj, _, err := srv.CreateInstance("echo", 0, nil)
	if err != nil {
		srv.Close()
		return nil, err
	}
	srv.SetNamed("echo", eObj)
	pObj, _, err := srv.CreateInstance("pinger", 0, nil)
	if err != nil {
		srv.Close()
		return nil, err
	}
	srv.SetNamed("pinger", pObj)

	var addr string
	switch network {
	case "unix":
		addr = dir + "/clam.sock"
	case "tcp":
		addr = "127.0.0.1:0"
	default:
		srv.Close()
		return nil, fmt.Errorf("benchlib: unsupported network %q", network)
	}
	ln, err := srv.Listen(network, addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &Fixture{
		Server:  srv,
		Network: network,
		Addr:    ln.Addr().String(),
		Echo:    eObj.(*Echo),
		Pinger:  pObj.(*Pinger),
	}, nil
}

// PublishPingers creates n extra pinger instances named "pinger0" …
// "pinger{n-1}" so throughput benchmarks can aim each client at a
// distinct object. Pinger.calls is deliberately unguarded: under
// per-object dispatch each instance's calls are serialized, so the race
// detector doubles as an ordering check when these fixtures run under
// -race.
func (fx *Fixture) PublishPingers(n int) ([]*Pinger, error) {
	ps := make([]*Pinger, n)
	for i := range ps {
		obj, _, err := fx.Server.CreateInstance("pinger", 0, nil)
		if err != nil {
			return nil, err
		}
		fx.Server.SetNamed(fmt.Sprintf("pinger%d", i), obj)
		ps[i] = obj.(*Pinger)
	}
	return ps, nil
}

// WANDialer returns a dial function that inserts a simulated wide-area
// link (one-way latency, bandwidth ceiling) into every connection — the
// substitution for the paper's second machine (rows h, i).
func WANDialer(latency time.Duration, bytesPerSec int64) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return wire.NewSimLink(conn, latency, bytesPerSec), nil
	}
}
