package benchlib

import (
	"testing"
	"time"

	"clam/internal/core"
	"clam/internal/dynload"
)

func TestStaticCall(t *testing.T) {
	if StaticCall(41) != 42 {
		t.Error("StaticCall broken")
	}
}

func TestRelayCallsTarget(t *testing.T) {
	p := &Pinger{}
	r := &Relay{}
	r.SetTarget(p)
	if r.Relay() != 1 || r.Relay() != 2 {
		t.Error("relay sequence wrong")
	}
	if p.Calls() != 2 {
		t.Errorf("calls = %d", p.Calls())
	}
}

func TestEchoRegisterAndCall(t *testing.T) {
	e := &Echo{}
	if _, err := e.Call(1); err == nil {
		t.Error("call before registration succeeded")
	}
	e.Register(func(x int64) int64 { return x * 3 })
	got, err := e.Call(7)
	if err != nil || got != 21 {
		t.Errorf("Call = %d, %v", got, err)
	}
	if e.Proc() == nil {
		t.Error("Proc lost registration")
	}
}

func TestRegisterClasses(t *testing.T) {
	lib := dynload.NewLibrary()
	if err := Register(lib); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pinger", "relay", "echo"} {
		if _, err := lib.Lookup(name, 0); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
	if err := Register(lib); err == nil {
		t.Error("double registration succeeded")
	}
}

func TestBootUnixAndTCP(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		fx, err := Boot(network, t.TempDir())
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		c, err := core.Dial(fx.Network, fx.Addr, core.WithClientLog(func(string, ...any) {}))
		if err != nil {
			fx.Server.Close()
			t.Fatalf("%s dial: %v", network, err)
		}
		rem, err := c.NamedObject("pinger")
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		if err := rem.CallInto("Ping", []any{&n}); err != nil || n != 1 {
			t.Errorf("%s ping: n=%d err=%v", network, n, err)
		}
		if fx.Pinger.Calls() != 1 {
			t.Errorf("server-side pinger saw %d calls", fx.Pinger.Calls())
		}
		c.Close()
		fx.Server.Close()
	}
}

func TestBootRejectsUnknownNetwork(t *testing.T) {
	if _, err := Boot("udp", t.TempDir()); err == nil {
		t.Error("udp boot succeeded")
	}
}

func TestWANDialerAddsLatency(t *testing.T) {
	fx, err := Boot("tcp", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Server.Close()
	const lat = 5 * time.Millisecond
	c, err := core.Dial(fx.Network, fx.Addr,
		core.WithClientLog(func(string, ...any) {}),
		core.WithDialFunc(WANDialer(lat, 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rem, err := c.NamedObject("pinger")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	start := time.Now()
	if err := rem.CallInto("Ping", []any{&n}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("call took %v, want >= link latency %v", elapsed, lat)
	}
}
