package dynload

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

type alpha struct{ n int }

func (a *alpha) Poke() int { return a.n }

type beta struct{}

type gamma struct{}

func mkClass(name string, version uint32, typ reflect.Type) Class {
	return Class{
		Name:    name,
		Version: version,
		Type:    typ,
		New:     func(any) (any, error) { return reflect.New(typ.Elem()).Interface(), nil },
	}
}

func TestRegisterAndLookup(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Register(mkClass("alpha", 1, reflect.TypeOf(&alpha{}))); err != nil {
		t.Fatal(err)
	}
	c, err := lib.Lookup("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "alpha" || c.Version != 1 {
		t.Errorf("lookup: %+v", c)
	}
}

func TestLookupPicksHighestVersion(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	lib.MustRegister(mkClass("alpha", 3, reflect.TypeOf(&beta{})))
	lib.MustRegister(mkClass("alpha", 2, reflect.TypeOf(&gamma{})))
	c, err := lib.Lookup("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != 3 {
		t.Errorf("got v%d, want v3", c.Version)
	}
}

func TestLookupMinVersion(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 2, reflect.TypeOf(&alpha{})))
	if _, err := lib.Lookup("alpha", 3); !errors.Is(err, ErrNoVersion) {
		t.Errorf("err = %v, want ErrNoVersion", err)
	}
	if _, err := lib.Lookup("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestLookupExact(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	lib.MustRegister(mkClass("alpha", 2, reflect.TypeOf(&beta{})))
	c, err := lib.LookupExact("alpha", 1)
	if err != nil || c.Version != 1 {
		t.Errorf("LookupExact: %+v, %v", c, err)
	}
	if _, err := lib.LookupExact("alpha", 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateRejected(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	err := lib.Register(mkClass("alpha", 1, reflect.TypeOf(&beta{})))
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []Class{
		{},
		{Name: "x"},
		{Name: "x", New: func(any) (any, error) { return nil, nil }},
		{Name: "x", New: func(any) (any, error) { return nil, nil }, Type: reflect.TypeOf(alpha{})},
		{Name: "x", New: func(any) (any, error) { return nil, nil }, Type: reflect.TypeOf(1)},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, c)
		}
	}
}

func TestNames(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("zeta", 1, reflect.TypeOf(&alpha{})))
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&beta{})))
	got := lib.Names()
	if !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("Names() = %v", got)
	}
}

func TestLoadAssignsIDs(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	lib.MustRegister(mkClass("beta", 1, reflect.TypeOf(&beta{})))
	ld := NewLoader(lib)
	a, err := ld.Load("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ld.Load("beta", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.ID == 0 || b.ID == 0 {
		t.Errorf("ids: alpha=%d beta=%d", a.ID, b.ID)
	}
	got, err := ld.Get(a.ID)
	if err != nil || got.Name != "alpha" {
		t.Errorf("Get: %+v, %v", got, err)
	}
}

func TestLoadIdempotent(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	ld := NewLoader(lib)
	a1, _ := ld.Load("alpha", 0)
	a2, _ := ld.Load("alpha", 0)
	if a1 != a2 {
		t.Error("re-loading the same version produced a new descriptor")
	}
}

func TestCoexistingVersions(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("sweep", 1, reflect.TypeOf(&alpha{})))
	lib.MustRegister(mkClass("sweep", 2, reflect.TypeOf(&beta{})))
	ld := NewLoader(lib)
	v1, err := ld.LoadExact("sweep", 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ld.LoadExact("sweep", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID == v2.ID {
		t.Error("two versions share a class id")
	}
	if len(ld.LoadedList()) != 2 {
		t.Errorf("loaded = %d, want 2", len(ld.LoadedList()))
	}
}

func TestInstanceTypeCollisionRejected(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("one", 1, reflect.TypeOf(&alpha{})))
	lib.MustRegister(mkClass("two", 1, reflect.TypeOf(&alpha{})))
	ld := NewLoader(lib)
	if _, err := ld.Load("one", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Load("two", 0); err == nil {
		t.Error("loading a second class with the same instance type succeeded")
	}
}

func TestByTypeAndIsClassType(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	ld := NewLoader(lib)
	if ld.IsClassType(reflect.TypeOf(alpha{})) {
		t.Error("IsClassType true before load")
	}
	ld.Load("alpha", 0)
	if !ld.IsClassType(reflect.TypeOf(alpha{})) {
		t.Error("IsClassType false after load")
	}
	got, err := ld.ByType(reflect.TypeOf(&alpha{}))
	if err != nil || got.Name != "alpha" {
		t.Errorf("ByType: %+v, %v", got, err)
	}
	if _, err := ld.ByType(reflect.TypeOf(&beta{})); !errors.Is(err, ErrNotLoaded) {
		t.Errorf("err = %v", err)
	}
}

func TestUnload(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	ld := NewLoader(lib)
	a, _ := ld.Load("alpha", 0)
	if err := ld.Unload("alpha", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Get(a.ID); !errors.Is(err, ErrNotLoaded) {
		t.Errorf("Get after unload: %v", err)
	}
	if ld.IsClassType(reflect.TypeOf(alpha{})) {
		t.Error("IsClassType true after unload")
	}
	if err := ld.Unload("alpha", 1); !errors.Is(err, ErrNotLoaded) {
		t.Errorf("double unload: %v", err)
	}
	// Reload mints a fresh id.
	a2, err := ld.Load("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a2.ID == a.ID {
		t.Error("reload reused the unloaded class id")
	}
}

func TestConcurrentLoads(t *testing.T) {
	lib := NewLibrary()
	lib.MustRegister(mkClass("alpha", 1, reflect.TypeOf(&alpha{})))
	ld := NewLoader(lib)
	const n = 32
	ids := make([]uint32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := ld.Load("alpha", 0)
			if err != nil {
				t.Errorf("load: %v", err)
				return
			}
			ids[i] = l.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("concurrent loads produced different ids: %v", ids)
		}
	}
}

func TestGuardPassesThroughResults(t *testing.T) {
	if err := Guard(func() error { return nil }); err != nil {
		t.Errorf("nil result: %v", err)
	}
	sentinel := errors.New("boom")
	if err := Guard(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("error result: %v", err)
	}
}

func TestGuardCatchesPanic(t *testing.T) {
	err := Guard(func() error {
		var p *alpha
		return errors.New(p.pokeUnsafe()) // nil deref: the paper's memory fault
	})
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if fault.Stack == "" {
		t.Error("fault carries no stack")
	}
	if !strings.Contains(fault.Error(), "fault in loaded code") {
		t.Errorf("fault message: %v", fault)
	}
}

func (a *alpha) pokeUnsafe() string { return strings.Repeat("x", a.n) }

func TestGuardCatchesDivideByZero(t *testing.T) {
	zero := 0
	err := Guard(func() error {
		_ = 1 / zero // the paper's other example signal
		return nil
	})
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
}

func TestConstructorRuns(t *testing.T) {
	lib := NewLibrary()
	made := 0
	lib.MustRegister(Class{
		Name:    "counted",
		Version: 1,
		Type:    reflect.TypeOf(&alpha{}),
		New: func(env any) (any, error) {
			made++
			return &alpha{n: env.(int)}, nil
		},
	})
	ld := NewLoader(lib)
	l, err := ld.Load("counted", 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := l.New(7)
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*alpha).Poke() != 7 || made != 1 {
		t.Errorf("constructor: obj=%+v made=%d", obj, made)
	}
}
