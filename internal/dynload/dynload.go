// Package dynload implements CLAM's dynamic loading facility (ICDCS 1988,
// §2): "CLAM allows client processes to request new object modules to be
// dynamically loaded into the server. These modules are then accessed by
// clients using remote procedure calls. Dynamically loaded procedures
// access other dynamically loaded procedures using normal procedure calls."
//
// Substitution (documented in DESIGN.md): the paper loads VAX object files
// into a running 4.3BSD process. Go cannot load machine code at run time
// with the standard library, so the loadable universe is a Library of
// registered classes — the analogue of object files available on the
// server's disk — and loading means instantiating a class from the Library
// into a server's Loader, assigning it a class identifier, and making it
// callable. The property the paper's experiments rely on is preserved
// exactly: a loaded module runs in the server's address space and reaches
// other loaded modules with plain (Go) procedure calls, while an unloaded
// module is unreachable.
//
// Version control (§2: "The server contains classes to support the dynamic
// loading, version control, ...") is by explicit version numbers: a Library
// may hold several versions of a class, clients request a minimum version,
// and different clients may have different versions loaded simultaneously
// ("Different clients could have different versions, depending on their
// application", §2.1).
//
// Fault isolation (§4.3): the server "can protect itself from user bugs by
// catching error signals". Guard converts a panic in dynamically loaded
// code into a *Fault error carrying the stack, so the server survives and
// can report the error to a client with an upcall.
package dynload

import (
	"errors"
	"fmt"
	"reflect"
	"runtime/debug"
	"sort"
	"sync"

	"clam/internal/bundle"
)

// Class describes one loadable module: a named, versioned analogue of a
// C++ class compiled to an object file.
type Class struct {
	// Name identifies the class, e.g. "window" or "sweep".
	Name string
	// Version distinguishes coexisting implementations.
	Version uint32
	// Type is the reflect type of instances (a pointer-to-struct type).
	// The RPC stub compiler derives method stubs from it, playing the role
	// of the paper's compiler pass over the class declaration.
	Type reflect.Type
	// New creates an instance. env is supplied by the server and gives the
	// module access to server facilities and to other loaded modules.
	New func(env any) (any, error)
	// Specs optionally refines parameter bundling per method — the
	// analogue of the paper's const/out/inout and "@ bundler" annotations.
	Specs map[string]bundle.MethodSpec
}

// Validate reports whether the class description is usable.
func (c *Class) Validate() error {
	if c.Name == "" {
		return errors.New("dynload: class with empty name")
	}
	if c.New == nil {
		return fmt.Errorf("dynload: class %q has no constructor", c.Name)
	}
	if c.Type == nil {
		return fmt.Errorf("dynload: class %q has no instance type", c.Name)
	}
	if c.Type.Kind() != reflect.Ptr || c.Type.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("dynload: class %q instance type %s is not a pointer to struct", c.Name, c.Type)
	}
	return nil
}

// Registration and loading errors.
var (
	ErrNotFound  = errors.New("dynload: class not found")
	ErrNoVersion = errors.New("dynload: no version satisfies the request")
	ErrDuplicate = errors.New("dynload: class version already registered")
	ErrNotLoaded = errors.New("dynload: class not loaded")
)

// Library is the set of classes available for loading — the object files a
// CLAM server could pick up from disk. A Library is safe for concurrent
// use.
type Library struct {
	mu      sync.RWMutex
	classes map[string][]Class // sorted by ascending version
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{classes: make(map[string][]Class)}
}

// Register adds c to the library. Registering the same (name, version)
// twice is an error.
func (l *Library) Register(c Class) error {
	if err := c.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	versions := l.classes[c.Name]
	for _, v := range versions {
		if v.Version == c.Version {
			return fmt.Errorf("%w: %s v%d", ErrDuplicate, c.Name, c.Version)
		}
	}
	versions = append(versions, c)
	sort.Slice(versions, func(i, j int) bool { return versions[i].Version < versions[j].Version })
	l.classes[c.Name] = versions
	return nil
}

// MustRegister is Register but panics on error, for static module tables.
func (l *Library) MustRegister(c Class) {
	if err := l.Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the highest-versioned class named name with version >=
// minVersion.
func (l *Library) Lookup(name string, minVersion uint32) (Class, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	versions := l.classes[name]
	if len(versions) == 0 {
		return Class{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	best := versions[len(versions)-1]
	if best.Version < minVersion {
		return Class{}, fmt.Errorf("%w: %q needs >= v%d, newest is v%d",
			ErrNoVersion, name, minVersion, best.Version)
	}
	return best, nil
}

// LookupExact returns the class with exactly the given version.
func (l *Library) LookupExact(name string, version uint32) (Class, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, c := range l.classes[name] {
		if c.Version == version {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("%w: %q v%d", ErrNotFound, name, version)
}

// HasType reports whether t is the instance type (pointer-to-struct) of
// any registered class version. A forwarding server uses it to recognize
// class-typed results in a lower server's replies even before the class
// is loaded locally.
func (l *Library) HasType(t reflect.Type) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, versions := range l.classes {
		for _, c := range versions {
			if c.Type == t {
				return true
			}
		}
	}
	return false
}

// Names lists the registered class names in sorted order.
func (l *Library) Names() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.classes))
	for n := range l.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Loaded is a class that has been loaded into a server and assigned a
// class identifier — the identifier the handle table records per object
// (Figure 3.3).
type Loaded struct {
	Class
	ID uint32
}

// Loader is the per-server set of loaded classes. Multiple versions of a
// class may be loaded at once; each (name, version) pair gets its own
// class identifier.
type Loader struct {
	lib    *Library
	mu     sync.RWMutex
	byKey  map[loadKey]*Loaded
	byID   map[uint32]*Loaded
	byType map[reflect.Type]*Loaded
	nextID uint32
}

type loadKey struct {
	name    string
	version uint32
}

// NewLoader returns a loader drawing classes from lib.
func NewLoader(lib *Library) *Loader {
	return &Loader{
		lib:    lib,
		byKey:  make(map[loadKey]*Loaded),
		byID:   make(map[uint32]*Loaded),
		byType: make(map[reflect.Type]*Loaded),
	}
}

// Load makes the best version >= minVersion of the named class callable in
// this server, returning its descriptor. Loading an already-loaded version
// is idempotent and returns the existing descriptor, matching the paper's
// sharing of modules among clients.
func (ld *Loader) Load(name string, minVersion uint32) (*Loaded, error) {
	c, err := ld.lib.Lookup(name, minVersion)
	if err != nil {
		return nil, err
	}
	return ld.install(c)
}

// LoadExact loads a specific version.
func (ld *Loader) LoadExact(name string, version uint32) (*Loaded, error) {
	c, err := ld.lib.LookupExact(name, version)
	if err != nil {
		return nil, err
	}
	return ld.install(c)
}

func (ld *Loader) install(c Class) (*Loaded, error) {
	key := loadKey{name: c.Name, version: c.Version}
	ld.mu.Lock()
	defer ld.mu.Unlock()
	if got, ok := ld.byKey[key]; ok {
		return got, nil
	}
	if prev, ok := ld.byType[c.Type]; ok && (prev.Name != c.Name || prev.Version != c.Version) {
		return nil, fmt.Errorf("dynload: instance type %s already used by %s v%d",
			c.Type, prev.Name, prev.Version)
	}
	ld.nextID++
	got := &Loaded{Class: c, ID: ld.nextID}
	ld.byKey[key] = got
	ld.byID[got.ID] = got
	ld.byType[c.Type] = got
	return got, nil
}

// Get returns the loaded class with the given identifier.
func (ld *Loader) Get(id uint32) (*Loaded, error) {
	ld.mu.RLock()
	defer ld.mu.RUnlock()
	got, ok := ld.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: class id %d", ErrNotLoaded, id)
	}
	return got, nil
}

// ByType returns the loaded class whose instance type is t. The RPC layer
// uses this to map an object back to its class when minting handles.
func (ld *Loader) ByType(t reflect.Type) (*Loaded, error) {
	ld.mu.RLock()
	defer ld.mu.RUnlock()
	got, ok := ld.byType[t]
	if !ok {
		return nil, fmt.Errorf("%w: type %s", ErrNotLoaded, t)
	}
	return got, nil
}

// IsClassType reports whether t (a struct type, not a pointer) is the
// instance struct of some loaded class — the predicate behind the
// automatic object-pointer bundler (§3.5.1).
func (ld *Loader) IsClassType(t reflect.Type) bool {
	ld.mu.RLock()
	defer ld.mu.RUnlock()
	_, ok := ld.byType[reflect.PtrTo(t)]
	return ok
}

// Unload removes a loaded version. Existing instances keep working (their
// memory is live) but new loads and class-id lookups fail, and handle
// minting for the class stops.
func (ld *Loader) Unload(name string, version uint32) error {
	key := loadKey{name: name, version: version}
	ld.mu.Lock()
	defer ld.mu.Unlock()
	got, ok := ld.byKey[key]
	if !ok {
		return fmt.Errorf("%w: %s v%d", ErrNotLoaded, name, version)
	}
	delete(ld.byKey, key)
	delete(ld.byID, got.ID)
	delete(ld.byType, got.Type)
	return nil
}

// Loadedlist returns the descriptors of all loaded classes sorted by id.
func (ld *Loader) LoadedList() []*Loaded {
	ld.mu.RLock()
	defer ld.mu.RUnlock()
	out := make([]*Loaded, 0, len(ld.byID))
	for _, l := range ld.byID {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Fault is the error produced when dynamically loaded code panics — the
// analogue of the memory faults and divide-by-zero signals the CLAM server
// catches (§4.3).
type Fault struct {
	// Value is the panic value.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack string
}

// Error renders the fault.
func (f *Fault) Error() string {
	return fmt.Sprintf("dynload: fault in loaded code: %v", f.Value)
}

// Guard runs fn, converting a panic into a *Fault error so the server can
// survive a buggy loaded class and report the failure with an upcall.
func Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Fault{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}
