package bundle

// MethodSpec refines how one remote method's parameters are bundled — the
// Go analogue of the paper's const / out / inout specifiers and in-place
// "@ bundler()" annotations on a C++ member declaration (§3.2, Figure 3.1).
//
// A method with no spec gets the defaults: value parameters are In (they
// cannot change during the call, like const), pointer parameters are InOut
// (full reference-parameter semantics being impossible without shared
// memory, the paper's systems copy the pointee both ways), and results are
// always Out.
type MethodSpec struct {
	// Params configures positional parameters (excluding the receiver).
	// A nil entry keeps the defaults for that position; a short slice
	// leaves trailing parameters at the defaults.
	Params []*ParamSpec
}

// ParamSpec configures one parameter.
type ParamSpec struct {
	// Mode declares the transfer direction; zero keeps the default.
	Mode Mode
	// Bundler names a bundler registered with RegisterNamed, applied in
	// place of the automatic one — the in-place "@" form. Empty keeps the
	// automatic (or typedef-registered) bundler.
	Bundler string
}

// Param returns the spec for parameter i, or nil.
func (m *MethodSpec) Param(i int) *ParamSpec {
	if m == nil || i < 0 || i >= len(m.Params) {
		return nil
	}
	return m.Params[i]
}
