package bundle

import (
	"reflect"

	"clam/internal/xdr"
)

// This file carries the paper's running example for the bundling-strategy
// discussion (§3.1): "Consider, for example, the ways in which a node of a
// threaded, binary tree can be passed to a remote procedure." Three
// strategies are contrasted:
//
//  1. pass the node itself and nothing else (the CLAM default) — fails if
//     the remote procedure needs the children;
//  2. take the transitive closure (rpcgen) — always correct, possibly
//     shipping the whole tree when one node would do;
//  3. a programmer-written bundler that knows how much the remote side
//     needs (here: the node plus its immediate children, no threads).
//
// The TreeNode type and NodeAndChildrenBundler below are used by the
// package tests and by the A-4 ablation benchmark.

// TreeNode is a node of a threaded binary tree. Left and Right are child
// links; Thread points back up the tree (the "threaded" part), which makes
// the transitive closure of almost any node reach almost every node.
type TreeNode struct {
	Key    int32
	Val    string
	Left   *TreeNode
	Right  *TreeNode
	Thread *TreeNode
}

// NewTree builds a complete threaded binary tree of the given depth with
// 2^depth - 1 nodes. Thread pointers link each node to its parent, and the
// root's thread points at itself so the closure is fully cyclic.
func NewTree(depth int) *TreeNode {
	var build func(d int, parent *TreeNode, next *int32) *TreeNode
	build = func(d int, parent *TreeNode, next *int32) *TreeNode {
		if d == 0 {
			return nil
		}
		n := &TreeNode{Key: *next, Val: "node"}
		*next++
		if parent != nil {
			n.Thread = parent
		} else {
			n.Thread = n
		}
		n.Left = build(d-1, n, next)
		n.Right = build(d-1, n, next)
		return n
	}
	var next int32
	return build(depth, nil, &next)
}

// CountNodes returns the number of distinct nodes reachable through child
// links.
func CountNodes(n *TreeNode) int {
	if n == nil {
		return 0
	}
	return 1 + CountNodes(n.Left) + CountNodes(n.Right)
}

// NodeAndChildrenBundler is a programmer-written bundler in the style of
// §3.1's middle ground: it ships a node and its two immediate children
// (one level of structure), dropping the thread pointers the remote side
// does not need. It follows the three bundler rules of §3.3: its value has
// the bundled type in both directions, it is bidirectional, and it keeps no
// state outside the stream and Ctx.
func NodeAndChildrenBundler(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
	bundleOne := func(n *TreeNode) error {
		if err := s.Int32(&n.Key); err != nil {
			return err
		}
		return s.String(&n.Val)
	}
	switch s.Op() {
	case xdr.Encode:
		node := v.Interface().(*TreeNode)
		notNil := node != nil
		if err := s.Bool(&notNil); err != nil {
			return err
		}
		if !notNil {
			return nil
		}
		if err := bundleOne(node); err != nil {
			return err
		}
		for _, child := range []*TreeNode{node.Left, node.Right} {
			present := child != nil
			if err := s.Bool(&present); err != nil {
				return err
			}
			if present {
				if err := bundleOne(child); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		var notNil bool
		if err := s.Bool(&notNil); err != nil {
			return err
		}
		if !notNil {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		node := new(TreeNode) // allocate when unbundling, per Figure 3.2
		if err := bundleOne(node); err != nil {
			return err
		}
		for _, slot := range []**TreeNode{&node.Left, &node.Right} {
			var present bool
			if err := s.Bool(&present); err != nil {
				return err
			}
			if present {
				c := new(TreeNode)
				if err := bundleOne(c); err != nil {
					return err
				}
				*slot = c
			}
		}
		v.Set(reflect.ValueOf(node))
		return nil
	}
}
