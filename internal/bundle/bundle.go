// Package bundle implements CLAM's parameter-bundling framework (ICDCS
// 1988, §3). Bundling converts a data object between its internal
// representation and a machine-independent form; unbundling is the reverse.
//
// The paper integrates stub generation with the C++ compiler so that "the
// compiler uses the available syntactic and typing information to
// automatically generate bundlers for most remote parameters". Go has no
// compiler plugin, but reflection exposes the same type information at
// registration time, so this package takes the paper's middle ground in Go
// terms:
//
//   - Automatic bundlers are compiled (once, cached) for primitive types,
//     strings, pointer-free structs, arrays, slices and maps.
//   - The default bundler for a pointer does NOT take the transitive
//     closure; it bundles only the object referred to, with any nested
//     pointers sent as nil (§3.5: "it bundles only the object referred to
//     by the pointer").
//   - Programmer-defined bundlers can be associated with a type — the Go
//     analogue of the paper's "typedef Point* PointPtr @ pt_bundler()" — or
//     attached to an individual struct field with a `clam:"bundler=name"`
//     tag or to an individual RPC parameter, the analogue of the in-place
//     "@" specification of Figure 3.1. In-place bundlers win over
//     typedef-style ones, as in the paper.
//   - Two special pointer kinds are bundled automatically through hooks
//     supplied by the session (§3.5): pointers to objects (class instances,
//     which travel as handles) and pointers to procedures (which travel as
//     remote-upcall descriptors). The hooks live on the Ctx so this package
//     stays independent of the handle and RUC machinery.
//
// Every bundler is bidirectional: the same function encodes or decodes
// depending on the xdr.Stream operation, per the three bundler rules of
// §3.3 (first parameter and result share the bundled type; bidirectional;
// no global state — per-call state lives on the Ctx).
package bundle

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"clam/internal/xdr"
)

// Mode declares the direction a parameter travels, mirroring the paper's
// const / out / inout parameter specifiers that let the compiler elide
// bundling in one direction (§3.2).
type Mode int

const (
	// In parameters travel caller→callee only (the paper's const).
	In Mode = iota + 1
	// Out parameters travel callee→caller only (result parameters).
	Out
	// InOut parameters travel in both directions.
	InOut
)

// String returns the paper's specifier name for the mode.
func (m Mode) String() string {
	switch m {
	case In:
		return "const"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("bundle.Mode(%d)", int(m))
	}
}

// ObjectHook bundles pointers to class instances across address spaces,
// converting between object pointers and handles (§3.5.1). Implemented by
// the session layer.
type ObjectHook interface {
	// IsClass reports whether t (a non-pointer struct type) is a loaded
	// class whose instances must travel as handles.
	IsClass(t reflect.Type) bool
	// BundleObject bidirectionally converts v (of kind Ptr to a class
	// struct; settable when decoding) to or from a handle on s.
	BundleObject(s *xdr.Stream, v reflect.Value) error
}

// ProcHook bundles pointers to procedures, converting between func values
// and remote-upcall descriptors (§3.5.2). Implemented by the session layer.
type ProcHook interface {
	// BundleProc bidirectionally converts v (of kind Func; settable when
	// decoding) to or from an upcall descriptor on s.
	BundleProc(s *xdr.Stream, v reflect.Value) error
}

// Ctx carries the per-call state a bundler may need. It replaces the global
// variables the paper forbids bundlers to touch: "since the server may have
// multiple threads of execution, global state might change unpredictably"
// (§3.3). A fresh Ctx is created for every call.
type Ctx struct {
	// Objects handles class-instance pointers; nil outside a session.
	Objects ObjectHook
	// Procs handles procedure pointers; nil outside a session.
	Procs ProcHook

	// closure state for transitive-closure bundlers (the rpcgen-style
	// baseline of §3.1), lazily allocated.
	encSeen map[uintptr]uint32
	decSeen map[uint32]reflect.Value
	nextID  uint32
}

// Func is a compiled bidirectional bundler. v must be settable when s is
// decoding.
type Func func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error

// Bundling errors.
var (
	ErrNoBundler    = errors.New("bundle: no bundler for type")
	ErrNoObjectHook = errors.New("bundle: object pointer crossed without a session object hook")
	ErrNoProcHook   = errors.New("bundle: procedure pointer crossed without a session proc hook")
)

// Registry compiles and caches bundlers. It plays the role of the paper's
// stub compiler: given a type, it either finds a programmer-registered
// bundler or generates one from type information.
type Registry struct {
	mu           sync.RWMutex
	custom       map[reflect.Type]Func // typedef-style associations
	named        map[string]Func       // in-place-style, referenced by tags/specs
	cache        map[reflect.Type]Func
	closureCache map[reflect.Type]Func
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		custom: make(map[reflect.Type]Func),
		named:  make(map[string]Func),
		cache:  make(map[reflect.Type]Func),
	}
}

// RegisterType associates f with t, so every parameter of type t bundles
// through f — the analogue of binding a bundler in a typedef (Figure 3.1's
// "typedef Point* PointPtr @ pt_bundler()").
func (r *Registry) RegisterType(t reflect.Type, f Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.custom[t] = f
	delete(r.cache, t) // recompile anything that cached the automatic path
}

// RegisterNamed registers f under name for in-place use via struct tags
// (`clam:"bundler=name"`) or per-parameter specs — the analogue of the
// paper's in-place "@ pt_bundler()" syntax.
func (r *Registry) RegisterNamed(name string, f Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.named[name] = f
}

// Named returns the bundler registered under name.
func (r *Registry) Named(name string) (Func, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.named[name]
	if !ok {
		return nil, fmt.Errorf("bundle: no named bundler %q", name)
	}
	return f, nil
}

// Compile returns a bundler for t, generating one automatically if the
// programmer has not registered a custom bundler. Compilation is memoized.
func (r *Registry) Compile(t reflect.Type) (Func, error) {
	r.mu.RLock()
	if f, ok := r.custom[t]; ok {
		r.mu.RUnlock()
		return f, nil
	}
	if f, ok := r.cache[t]; ok {
		r.mu.RUnlock()
		return f, nil
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	return r.compileLocked(t, false)
}

// compileLocked generates a bundler for t. insidePtr marks compilation of a
// pointee reached through a default pointer bundler: nested pointers there
// are bundled as nil, implementing the paper's non-transitive default.
func (r *Registry) compileLocked(t reflect.Type, insidePtr bool) (Func, error) {
	if f, ok := r.custom[t]; ok {
		return f, nil
	}
	if !insidePtr {
		if f, ok := r.cache[t]; ok {
			return f, nil
		}
	}

	// Break recursion on self-referential structs: install a forwarding
	// thunk before compiling the body. Only top-level compilations are
	// cached; insidePtr variants differ per context.
	var fwd Func
	if !insidePtr {
		var real Func
		fwd = func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			return real(ctx, s, v)
		}
		r.cache[t] = fwd
		f, err := r.generate(t, insidePtr)
		if err != nil {
			delete(r.cache, t)
			return nil, err
		}
		real = f
		return fwd, nil
	}
	return r.generate(t, insidePtr)
}

func (r *Registry) generate(t reflect.Type, insidePtr bool) (Func, error) {
	switch t.Kind() {
	case reflect.Bool:
		return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
			b := v.Bool()
			if err := s.Bool(&b); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				v.SetBool(b)
			}
			return nil
		}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
			x := v.Int()
			if err := s.Int64(&x); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				if v.OverflowInt(x) {
					return fmt.Errorf("bundle: value %d overflows %s", x, v.Type())
				}
				v.SetInt(x)
			}
			return nil
		}, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
			x := v.Uint()
			if err := s.Uint64(&x); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				if v.OverflowUint(x) {
					return fmt.Errorf("bundle: value %d overflows %s", x, v.Type())
				}
				v.SetUint(x)
			}
			return nil
		}, nil
	case reflect.Float32, reflect.Float64:
		return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
			x := v.Float()
			if err := s.Float64(&x); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				v.SetFloat(x)
			}
			return nil
		}, nil
	case reflect.String:
		return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
			x := v.String()
			if err := s.String(&x); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				v.SetString(x)
			}
			return nil
		}, nil
	case reflect.Struct:
		return r.generateStruct(t, insidePtr)
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			// Fast path: []byte as XDR variable-length opaque.
			return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
				b := v.Bytes()
				if err := s.Bytes(&b); err != nil {
					return err
				}
				if s.Op() == xdr.Decode {
					v.SetBytes(b)
				}
				return nil
			}, nil
		}
		elem, err := r.compileLocked(t.Elem(), insidePtr)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			n := v.Len()
			if err := s.Len(&n); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				v.Set(reflect.MakeSlice(t, n, n))
			}
			for i := 0; i < n; i++ {
				if err := elem(ctx, s, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case reflect.Array:
		elem, err := r.compileLocked(t.Elem(), insidePtr)
		if err != nil {
			return nil, err
		}
		n := t.Len()
		return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			for i := 0; i < n; i++ {
				if err := elem(ctx, s, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case reflect.Map:
		return r.generateMap(t, insidePtr)
	case reflect.Ptr:
		return r.generatePtr(t, insidePtr)
	case reflect.Func:
		// §3.5.2: procedure pointers bundle through the session's RUC
		// machinery. The hook is consulted at call time.
		return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			if ctx == nil || ctx.Procs == nil {
				return fmt.Errorf("%w (%s)", ErrNoProcHook, t)
			}
			return ctx.Procs.BundleProc(s, v)
		}, nil
	default:
		return nil, fmt.Errorf("%w: %s (kind %s)", ErrNoBundler, t, t.Kind())
	}
}

func (r *Registry) generateStruct(t reflect.Type, insidePtr bool) (Func, error) {
	type fieldBundler struct {
		idx int
		f   Func
	}
	var fields []fieldBundler
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue // unexported state stays home, like private C++ members
		}
		tag := sf.Tag.Get("clam")
		if tag == "-" {
			continue
		}
		var f Func
		var err error
		if name, ok := tagBundler(tag); ok {
			// In-place bundler: wins over any typedef-style registration,
			// as in the paper ("the in place bundler will be used").
			f, err = r.namedLocked(name)
		} else {
			f, err = r.compileLocked(sf.Type, insidePtr)
		}
		if err != nil {
			return nil, fmt.Errorf("bundle: field %s.%s: %w", t, sf.Name, err)
		}
		fields = append(fields, fieldBundler{idx: i, f: f})
	}
	return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
		for _, fb := range fields {
			if err := fb.f(ctx, s, v.Field(fb.idx)); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (r *Registry) namedLocked(name string) (Func, error) {
	f, ok := r.named[name]
	if !ok {
		return nil, fmt.Errorf("bundle: no named bundler %q", name)
	}
	return f, nil
}

func tagBundler(tag string) (string, bool) {
	for _, part := range strings.Split(tag, ",") {
		if name, ok := strings.CutPrefix(part, "bundler="); ok && name != "" {
			return name, true
		}
	}
	return "", false
}

func (r *Registry) generateMap(t reflect.Type, insidePtr bool) (Func, error) {
	key, err := r.compileLocked(t.Key(), insidePtr)
	if err != nil {
		return nil, err
	}
	elem, err := r.compileLocked(t.Elem(), insidePtr)
	if err != nil {
		return nil, err
	}
	canSort := isOrderedKind(t.Key().Kind())
	return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
		switch s.Op() {
		case xdr.Encode:
			n := v.Len()
			if err := s.Len(&n); err != nil {
				return err
			}
			keys := v.MapKeys()
			if canSort {
				sortKeys(keys)
			}
			for _, k := range keys {
				if err := key(ctx, s, k); err != nil {
					return err
				}
				if err := elem(ctx, s, v.MapIndex(k)); err != nil {
					return err
				}
			}
			return nil
		default:
			var n int
			if err := s.Len(&n); err != nil {
				return err
			}
			m := reflect.MakeMapWithSize(t, n)
			for i := 0; i < n; i++ {
				k := reflect.New(t.Key()).Elem()
				e := reflect.New(t.Elem()).Elem()
				if err := key(ctx, s, k); err != nil {
					return err
				}
				if err := elem(ctx, s, e); err != nil {
					return err
				}
				m.SetMapIndex(k, e)
			}
			v.Set(m)
			return nil
		}
	}, nil
}

func isOrderedKind(k reflect.Kind) bool {
	switch k {
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	default:
		return false
	}
}

func sortKeys(keys []reflect.Value) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch a.Kind() {
		case reflect.Bool:
			return !a.Bool() && b.Bool()
		case reflect.String:
			return a.String() < b.String()
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return a.Int() < b.Int()
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			return a.Uint() < b.Uint()
		case reflect.Float32, reflect.Float64:
			return a.Float() < b.Float()
		default:
			return false
		}
	})
}

func (r *Registry) generatePtr(t reflect.Type, insidePtr bool) (Func, error) {
	elemT := t.Elem()

	// Object pointers travel as handles when a session hook recognizes the
	// class (§3.5.1). The check happens at bundle time because class sets
	// are per-session and change as modules load.
	var pointee Func
	var pointeeErr error
	if insidePtr {
		// The paper's default bundler is non-transitive: a pointer nested
		// inside a bundled pointee travels as nil.
		pointee = nil
	} else {
		pointee, pointeeErr = r.compileLocked(elemT, true)
	}

	return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
		if ctx != nil && ctx.Objects != nil && elemT.Kind() == reflect.Struct && ctx.Objects.IsClass(elemT) {
			return ctx.Objects.BundleObject(s, v)
		}
		if insidePtr {
			// Nested pointer under the default bundler: always nil.
			var isNil = true
			if err := s.Bool(&isNil); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				v.Set(reflect.Zero(t))
			}
			return nil
		}
		if pointeeErr != nil {
			return pointeeErr
		}
		notNil := !v.IsNil()
		if err := s.Bool(&notNil); err != nil {
			return err
		}
		if !notNil {
			if s.Op() == xdr.Decode {
				v.Set(reflect.Zero(t))
			}
			return nil
		}
		if s.Op() == xdr.Decode && v.IsNil() {
			// Allocate space when unbundling into a nil pointer, exactly
			// as the Figure 3.2 bundler does.
			v.Set(reflect.New(elemT))
		}
		return pointee(ctx, s, v.Elem())
	}, nil
}

// MustCompile is Compile but panics on error; for package initialization of
// well-known types.
func (r *Registry) MustCompile(t reflect.Type) Func {
	f, err := r.Compile(t)
	if err != nil {
		panic(err)
	}
	return f
}
