package bundle

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"clam/internal/xdr"
)

// roundTrip bundles v through a registry-compiled bundler and returns the
// decoded copy and the number of encoded bytes.
func roundTrip(t *testing.T, r *Registry, v any) (any, int) {
	t.Helper()
	typ := reflect.TypeOf(v)
	f, err := r.Compile(typ)
	if err != nil {
		t.Fatalf("compile %s: %v", typ, err)
	}
	var buf bytes.Buffer
	enc := xdr.NewEncoder(&buf)
	if err := f(&Ctx{}, enc, reflect.ValueOf(v)); err != nil {
		t.Fatalf("encode %s: %v", typ, err)
	}
	n := buf.Len()
	dec := xdr.NewDecoder(&buf)
	out := reflect.New(typ).Elem()
	if err := f(&Ctx{}, dec, out); err != nil {
		t.Fatalf("decode %s: %v", typ, err)
	}
	return out.Interface(), n
}

func TestModeString(t *testing.T) {
	if In.String() != "const" || Out.String() != "out" || InOut.String() != "inout" {
		t.Errorf("mode names: %v %v %v", In, Out, InOut)
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Errorf("unknown mode: %v", Mode(9))
	}
}

func TestPrimitives(t *testing.T) {
	r := NewRegistry()
	cases := []any{
		int(-5), int8(-8), int16(300), int32(-70000), int64(1 << 40),
		uint(5), uint8(200), uint16(60000), uint32(1 << 30), uint64(1 << 50),
		float32(1.5), float64(math.Pi), true, false, "hello", "",
	}
	for _, want := range cases {
		got, _ := roundTrip(t, r, want)
		if got != want {
			t.Errorf("%T round trip: got %v want %v", want, got, want)
		}
	}
}

func TestOverflowDetected(t *testing.T) {
	r := NewRegistry()
	// Encode an int64 too big for int8, decode through the int8 bundler.
	f64 := r.MustCompile(reflect.TypeOf(int64(0)))
	f8, err := r.Compile(reflect.TypeOf(int8(0)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	big := int64(1000)
	if err := f64(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(big)); err != nil {
		t.Fatal(err)
	}
	out := reflect.New(reflect.TypeOf(int8(0))).Elem()
	if err := f8(&Ctx{}, xdr.NewDecoder(&buf), out); err == nil {
		t.Error("decoding 1000 into int8 succeeded, want overflow error")
	}
}

type flatStruct struct {
	A int32
	B string
	C bool
	d int // unexported: must not travel
	E float64
}

func TestFlatStruct(t *testing.T) {
	r := NewRegistry()
	want := flatStruct{A: 7, B: "x", C: true, d: 99, E: 2.5}
	got, _ := roundTrip(t, r, want)
	g := got.(flatStruct)
	if g.A != 7 || g.B != "x" || !g.C || g.E != 2.5 {
		t.Errorf("got %+v", g)
	}
	if g.d != 0 {
		t.Errorf("unexported field crossed the wire: %d", g.d)
	}
}

type skipStruct struct {
	Keep int32
	Drop string `clam:"-"`
}

func TestSkipTag(t *testing.T) {
	r := NewRegistry()
	got, _ := roundTrip(t, r, skipStruct{Keep: 3, Drop: "secret"})
	g := got.(skipStruct)
	if g.Keep != 3 {
		t.Errorf("Keep = %d", g.Keep)
	}
	if g.Drop != "" {
		t.Errorf("tagged-out field crossed the wire: %q", g.Drop)
	}
}

func TestSlicesArraysMaps(t *testing.T) {
	r := NewRegistry()

	s := []int32{1, 2, 3}
	got, _ := roundTrip(t, r, s)
	if !reflect.DeepEqual(got, s) {
		t.Errorf("slice: got %v", got)
	}

	b := []byte{1, 2, 3, 4, 5}
	got, _ = roundTrip(t, r, b)
	if !bytes.Equal(got.([]byte), b) {
		t.Errorf("bytes: got %v", got)
	}

	a := [4]int16{9, 8, 7, 6}
	got, _ = roundTrip(t, r, a)
	if got != a {
		t.Errorf("array: got %v", got)
	}

	m := map[string]int32{"x": 1, "y": 2}
	got, _ = roundTrip(t, r, m)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("map: got %v", got)
	}

	var empty []int32
	got, _ = roundTrip(t, r, empty)
	if len(got.([]int32)) != 0 {
		t.Errorf("empty slice: got %v", got)
	}
}

func TestMapEncodingDeterministic(t *testing.T) {
	r := NewRegistry()
	m := map[int32]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	f := r.MustCompile(reflect.TypeOf(m))
	var first []byte
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(m)); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatal("map encoding is nondeterministic across runs")
		}
	}
}

type pointStruct struct{ X, Y, Z int16 }

func TestPointerDefaultShallow(t *testing.T) {
	r := NewRegistry()
	p := &pointStruct{X: 1, Y: 2, Z: 3}
	got, _ := roundTrip(t, r, p)
	g := got.(*pointStruct)
	if g == nil || *g != *p {
		t.Errorf("got %+v want %+v", g, p)
	}

	var nilP *pointStruct
	got, _ = roundTrip(t, r, nilP)
	if got.(*pointStruct) != nil {
		t.Errorf("nil pointer round trip: got %v", got)
	}
}

// The paper's default pointer bundler "does not make a transitive closure
// of pointers; it bundles only the object referred to by the pointer". A
// tree node's children must therefore arrive nil.
func TestDefaultPointerIsNotTransitive(t *testing.T) {
	r := NewRegistry()
	root := NewTree(3) // 7 nodes
	got, n := roundTrip(t, r, root)
	g := got.(*TreeNode)
	if g == nil {
		t.Fatal("root lost")
	}
	if g.Key != root.Key || g.Val != root.Val {
		t.Errorf("node payload: got %+v", g)
	}
	if g.Left != nil || g.Right != nil || g.Thread != nil {
		t.Errorf("default bundler followed pointers: %+v", g)
	}
	// The encoding must be node-sized, not tree-sized.
	if n > 64 {
		t.Errorf("node-only encoding took %d bytes", n)
	}
}

func TestClosureBundlerShipsWholeTreeWithIdentity(t *testing.T) {
	r := NewRegistry()
	root := NewTree(4) // 15 nodes
	f, err := r.CompileClosure(reflect.TypeOf(root))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(root)); err != nil {
		t.Fatal(err)
	}
	out := reflect.New(reflect.TypeOf(root)).Elem()
	if err := f(&Ctx{}, xdr.NewDecoder(&buf), out); err != nil {
		t.Fatal(err)
	}
	g := out.Interface().(*TreeNode)
	if CountNodes(g) != 15 {
		t.Fatalf("closure decoded %d nodes, want 15", CountNodes(g))
	}
	// Identity and cycles: the root's thread points at itself; children's
	// threads point at their parent.
	if g.Thread != g {
		t.Error("root thread lost self-cycle")
	}
	if g.Left.Thread != g || g.Right.Thread != g {
		t.Error("child threads lost parent identity")
	}
	if g.Left.Left.Thread != g.Left {
		t.Error("grandchild thread lost identity")
	}
}

func TestClosureSharedSubstructure(t *testing.T) {
	r := NewRegistry()
	shared := &TreeNode{Key: 42}
	root := &TreeNode{Key: 1, Left: shared, Right: shared}
	f, err := r.CompileClosure(reflect.TypeOf(root))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(root)); err != nil {
		t.Fatal(err)
	}
	out := reflect.New(reflect.TypeOf(root)).Elem()
	if err := f(&Ctx{}, xdr.NewDecoder(&buf), out); err != nil {
		t.Fatal(err)
	}
	g := out.Interface().(*TreeNode)
	if g.Left != g.Right {
		t.Error("shared node duplicated by closure bundler")
	}
	if g.Left.Key != 42 {
		t.Errorf("shared node payload: %d", g.Left.Key)
	}
}

// Closure encodings must grow with the tree while node-only stays flat —
// the §3.1 performance argument.
func TestClosureVsDefaultSize(t *testing.T) {
	r := NewRegistry()
	root := NewTree(6) // 63 nodes
	typ := reflect.TypeOf(root)

	fDefault := r.MustCompile(typ)
	fClosure, err := r.CompileClosure(typ)
	if err != nil {
		t.Fatal(err)
	}
	size := func(f Func) int {
		var buf bytes.Buffer
		if err := f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(root)); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	d, c := size(fDefault), size(fClosure)
	if c < 10*d {
		t.Errorf("closure (%dB) should dwarf node-only (%dB) on a 63-node tree", c, d)
	}
}

func TestUserBundlerNodeAndChildren(t *testing.T) {
	r := NewRegistry()
	r.RegisterType(reflect.TypeOf((*TreeNode)(nil)), NodeAndChildrenBundler)
	root := NewTree(5)
	got, _ := roundTrip(t, r, root)
	g := got.(*TreeNode)
	if g.Key != root.Key {
		t.Errorf("root key %d", g.Key)
	}
	if g.Left == nil || g.Right == nil {
		t.Fatal("user bundler dropped the children it promised")
	}
	if g.Left.Key != root.Left.Key || g.Right.Key != root.Right.Key {
		t.Error("children payload wrong")
	}
	if g.Left.Left != nil || g.Thread != nil {
		t.Error("user bundler shipped more than one level")
	}
}

// Typedef-style custom bundler: registering for the type makes every use of
// the type bundle through it.
func TestRegisterTypeOverridesAutomatic(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.RegisterType(reflect.TypeOf(int32(0)), func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
		calls++
		x := int32(v.Int())
		if err := s.Int32(&x); err != nil {
			return err
		}
		if s.Op() == xdr.Decode {
			v.SetInt(int64(x))
		}
		return nil
	})
	got, _ := roundTrip(t, r, int32(11))
	if got != int32(11) || calls != 2 {
		t.Errorf("got %v, custom bundler calls = %d (want 2)", got, calls)
	}
}

type taggedStruct struct {
	P *pointStruct `clam:"bundler=pt_bundler"`
}

// In-place bundler via struct tag wins over the typedef-style registration,
// matching "the in place bundler will be used".
func TestInPlaceBundlerWinsOverTypedef(t *testing.T) {
	r := NewRegistry()
	typedefCalls, inplaceCalls := 0, 0
	ptType := reflect.TypeOf((*pointStruct)(nil))
	ptBundler := func(counter *int) Func {
		return func(_ *Ctx, s *xdr.Stream, v reflect.Value) error {
			*counter++
			if s.Op() == xdr.Decode && v.IsNil() {
				v.Set(reflect.New(ptType.Elem()))
			}
			p := v.Interface().(*pointStruct)
			s.Short(&p.X)
			s.Short(&p.Y)
			s.Short(&p.Z)
			return s.Err()
		}
	}
	r.RegisterType(ptType, ptBundler(&typedefCalls))
	r.RegisterNamed("pt_bundler", ptBundler(&inplaceCalls))

	got, _ := roundTrip(t, r, taggedStruct{P: &pointStruct{X: 1}})
	if got.(taggedStruct).P.X != 1 {
		t.Errorf("payload lost: %+v", got)
	}
	if inplaceCalls != 2 {
		t.Errorf("in-place bundler calls = %d, want 2", inplaceCalls)
	}
	if typedefCalls != 0 {
		t.Errorf("typedef bundler ran %d times despite in-place override", typedefCalls)
	}
}

func TestUnknownNamedBundler(t *testing.T) {
	r := NewRegistry()
	type bad struct {
		X int32 `clam:"bundler=missing"`
	}
	if _, err := r.Compile(reflect.TypeOf(bad{})); err == nil {
		t.Error("compiling with unknown named bundler succeeded")
	}
	if _, err := r.Named("nope"); err == nil {
		t.Error("Named(nope) succeeded")
	}
}

func TestUnbundlableKinds(t *testing.T) {
	r := NewRegistry()
	for _, v := range []any{make(chan int), complex(1, 2), uintptr(1)} {
		if _, err := r.Compile(reflect.TypeOf(v)); !errors.Is(err, ErrNoBundler) {
			t.Errorf("%T: err = %v, want ErrNoBundler", v, err)
		}
	}
}

func TestFuncWithoutProcHook(t *testing.T) {
	r := NewRegistry()
	f, err := r.Compile(reflect.TypeOf(func(int) {}))
	if err != nil {
		t.Fatalf("compiling func type should succeed (hook checked at call time): %v", err)
	}
	var buf bytes.Buffer
	err = f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(func(int) {}))
	if !errors.Is(err, ErrNoProcHook) {
		t.Errorf("err = %v, want ErrNoProcHook", err)
	}
}

// A stub ProcHook proving the hook is consulted for func-typed values.
type recordingProcHook struct{ bundled int }

func (h *recordingProcHook) BundleProc(s *xdr.Stream, v reflect.Value) error {
	h.bundled++
	id := uint32(7)
	return s.Uint32(&id)
}

func TestFuncUsesProcHook(t *testing.T) {
	r := NewRegistry()
	type carrier struct {
		Name string
		Fn   func(int32)
	}
	f, err := r.Compile(reflect.TypeOf(carrier{}))
	if err != nil {
		t.Fatal(err)
	}
	hook := &recordingProcHook{}
	var buf bytes.Buffer
	v := carrier{Name: "reg", Fn: func(int32) {}}
	if err := f(&Ctx{Procs: hook}, xdr.NewEncoder(&buf), reflect.ValueOf(v)); err != nil {
		t.Fatal(err)
	}
	if hook.bundled != 1 {
		t.Errorf("proc hook bundled %d times, want 1", hook.bundled)
	}
}

// A stub ObjectHook proving class-instance pointers are diverted to the
// handle path while ordinary pointers are not.
type classMarker struct{ ID int32 }

type recordingObjectHook struct{ bundled int }

func (h *recordingObjectHook) IsClass(t reflect.Type) bool {
	return t == reflect.TypeOf(classMarker{})
}

func (h *recordingObjectHook) BundleObject(s *xdr.Stream, v reflect.Value) error {
	h.bundled++
	id := uint32(99)
	if err := s.Uint32(&id); err != nil {
		return err
	}
	if s.Op() == xdr.Decode {
		v.Set(reflect.ValueOf(&classMarker{ID: int32(id)}))
	}
	return nil
}

func TestObjectPointerUsesHook(t *testing.T) {
	r := NewRegistry()
	hook := &recordingObjectHook{}
	ctx := &Ctx{Objects: hook}

	f := r.MustCompile(reflect.TypeOf((*classMarker)(nil)))
	var buf bytes.Buffer
	if err := f(ctx, xdr.NewEncoder(&buf), reflect.ValueOf(&classMarker{ID: 1})); err != nil {
		t.Fatal(err)
	}
	out := reflect.New(reflect.TypeOf((*classMarker)(nil))).Elem()
	if err := f(ctx, xdr.NewDecoder(&buf), out); err != nil {
		t.Fatal(err)
	}
	if hook.bundled != 2 {
		t.Errorf("object hook consulted %d times, want 2", hook.bundled)
	}
	if out.Interface().(*classMarker).ID != 99 {
		t.Errorf("hook-decoded object: %+v", out.Interface())
	}

	// A non-class pointer must take the ordinary path.
	g := r.MustCompile(reflect.TypeOf((*pointStruct)(nil)))
	var buf2 bytes.Buffer
	if err := g(ctx, xdr.NewEncoder(&buf2), reflect.ValueOf(&pointStruct{X: 5})); err != nil {
		t.Fatal(err)
	}
	if hook.bundled != 2 {
		t.Error("object hook consulted for a non-class pointer")
	}
}

// Nested structs with pointers inside a bundled pointee arrive nil
// (non-transitive default), but nested values arrive intact.
type outer struct {
	Name  string
	Inner inner
}

type inner struct {
	N    int32
	Next *outer
}

func TestNestedValueStructsTravel(t *testing.T) {
	r := NewRegistry()
	o := &outer{Name: "a", Inner: inner{N: 5, Next: &outer{Name: "b"}}}
	got, _ := roundTrip(t, r, o)
	g := got.(*outer)
	if g.Name != "a" || g.Inner.N != 5 {
		t.Errorf("value parts lost: %+v", g)
	}
	if g.Inner.Next != nil {
		t.Error("pointer nested under a bundled pointee travelled")
	}
}

func TestCompileIsMemoized(t *testing.T) {
	r := NewRegistry()
	t1 := reflect.TypeOf(flatStruct{})
	f1, err := r.Compile(t1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := r.Compile(t1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(f1).Pointer() != reflect.ValueOf(f2).Pointer() {
		t.Error("Compile not memoized")
	}
}

// Property: automatic bundling is the identity on pointer-free values.
func TestQuickStructRoundTrip(t *testing.T) {
	type wire struct {
		A int64
		B uint32
		C string
		D []byte
		E bool
		F float64
		G [3]int16
	}
	r := NewRegistry()
	f := r.MustCompile(reflect.TypeOf(wire{}))
	prop := func(w wire) bool {
		var buf bytes.Buffer
		if f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(w)) != nil {
			return false
		}
		out := reflect.New(reflect.TypeOf(wire{})).Elem()
		if f(&Ctx{}, xdr.NewDecoder(&buf), out) != nil {
			return false
		}
		g := out.Interface().(wire)
		if len(w.D) == 0 && len(g.D) == 0 {
			g.D, w.D = nil, nil
		}
		return reflect.DeepEqual(g, w) ||
			(w.F != w.F && g.F != g.F && equalExceptF(g, w)) // NaN
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func equalExceptF(a, b any) bool {
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < av.NumField(); i++ {
		if av.Type().Field(i).Name == "F" {
			continue
		}
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			return false
		}
	}
	return true
}

// Property: closure bundling preserves the node count of random trees.
func TestQuickClosurePreservesShape(t *testing.T) {
	r := NewRegistry()
	f, err := r.CompileClosure(reflect.TypeOf((*TreeNode)(nil)))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(depth uint8) bool {
		d := int(depth%5) + 1
		root := NewTree(d)
		var buf bytes.Buffer
		if f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(root)) != nil {
			return false
		}
		out := reflect.New(reflect.TypeOf(root)).Elem()
		if f(&Ctx{}, xdr.NewDecoder(&buf), out) != nil {
			return false
		}
		return CountNodes(out.Interface().(*TreeNode)) == CountNodes(root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
