package bundle

import (
	"bytes"
	"reflect"
	"testing"

	"clam/internal/xdr"
)

func TestMustCompilePanicsOnBadType(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("MustCompile(chan) did not panic")
		}
	}()
	r.MustCompile(reflect.TypeOf(make(chan int)))
}

func TestMapKeyKinds(t *testing.T) {
	r := NewRegistry()
	cases := []any{
		map[bool]int32{true: 1, false: 2},
		map[uint16]int32{3: 1, 1: 2, 2: 3},
		map[float64]int32{1.5: 1, 0.5: 2},
		map[int8]string{-1: "a", 5: "b"},
	}
	for _, m := range cases {
		got, _ := roundTrip(t, r, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T: got %v want %v", m, got, m)
		}
	}
}

func TestMapWithStructKeys(t *testing.T) {
	// Struct keys are unordered (not sortable): round trip must still
	// succeed, just without deterministic encoding.
	type key struct{ A int32 }
	r := NewRegistry()
	m := map[key]int32{{A: 1}: 10, {A: 2}: 20}
	got, _ := roundTrip(t, r, m)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %v", got)
	}
}

func TestMapWithUnbundlableElem(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Compile(reflect.TypeOf(map[string]chan int{})); err == nil {
		t.Error("map with chan elem compiled")
	}
	if _, err := r.Compile(reflect.TypeOf(map[complex128]int{})); err == nil {
		t.Error("map with complex key compiled")
	}
}

func TestSliceOfUnbundlable(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Compile(reflect.TypeOf([]chan int{})); err == nil {
		t.Error("slice of chan compiled")
	}
	if _, err := r.Compile(reflect.TypeOf([2]chan int{})); err == nil {
		t.Error("array of chan compiled")
	}
}

func TestStructWithUnbundlableField(t *testing.T) {
	type bad struct{ C chan int }
	r := NewRegistry()
	if _, err := r.Compile(reflect.TypeOf(bad{})); err == nil {
		t.Error("struct with chan field compiled")
	}
}

func TestClosureOfSliceOfPointers(t *testing.T) {
	r := NewRegistry()
	type node struct {
		V    int32
		Next *node
	}
	type box struct{ Items []*node }
	shared := &node{V: 1}
	b := box{Items: []*node{shared, shared, {V: 2}}}
	f, err := r.CompileClosure(reflect.TypeOf(b))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f(&Ctx{}, xdr.NewEncoder(&buf), reflect.ValueOf(b)); err != nil {
		t.Fatal(err)
	}
	out := reflect.New(reflect.TypeOf(b)).Elem()
	if err := f(&Ctx{}, xdr.NewDecoder(&buf), out); err != nil {
		t.Fatal(err)
	}
	g := out.Interface().(box)
	if len(g.Items) != 3 || g.Items[0] != g.Items[1] {
		t.Error("shared pointers in slice lost identity")
	}
	if g.Items[0].V != 1 || g.Items[2].V != 2 {
		t.Error("payload wrong")
	}
}

func TestClosureRequiresCtx(t *testing.T) {
	r := NewRegistry()
	f, err := r.CompileClosure(reflect.TypeOf((*TreeNode)(nil)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f(nil, xdr.NewEncoder(&buf), reflect.ValueOf(NewTree(2))); err == nil {
		t.Error("closure bundler ran without a Ctx")
	}
}

func TestClosureUnbundlableType(t *testing.T) {
	r := NewRegistry()
	type bad struct{ C chan int }
	if _, err := r.CompileClosure(reflect.TypeOf(&bad{})); err == nil {
		t.Error("closure of chan field compiled")
	}
}

func TestSpecParamHelpers(t *testing.T) {
	var nilSpec *MethodSpec
	if nilSpec.Param(0) != nil {
		t.Error("nil spec param")
	}
	s := &MethodSpec{Params: []*ParamSpec{{Mode: Out}}}
	if s.Param(0) == nil || s.Param(0).Mode != Out {
		t.Error("param 0")
	}
	if s.Param(1) != nil || s.Param(-1) != nil {
		t.Error("out-of-range params")
	}
}

func TestCountNodesNil(t *testing.T) {
	if CountNodes(nil) != 0 {
		t.Error("nil tree count")
	}
	if NewTree(0) != nil {
		t.Error("depth-0 tree not nil")
	}
}
