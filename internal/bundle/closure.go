package bundle

import (
	"fmt"
	"reflect"

	"clam/internal/xdr"
)

// This file implements the transitive-closure bundling strategy the paper
// attributes to rpcgen (§3.1): "take the transitive closure starting at the
// node by following its pointers recursively. ... This method produces
// correct results but can have a significant performance penalty." It is
// the baseline against which the default (node-only) and user-defined
// bundlers are compared in the A-4 ablation.
//
// The closure encoder assigns each distinct pointee an id in traversal
// order and sends the payload only on first sight, so shared structure and
// cycles round-trip with identity preserved.

// CompileClosure returns a bundler for t that bundles pointers by taking
// the transitive closure of the object graph. Per-call traversal state
// lives on the Ctx, keeping the bundler itself stateless per §3.3.
func (r *Registry) CompileClosure(t reflect.Type) (Func, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closureCache == nil {
		r.closureCache = make(map[reflect.Type]Func)
	}
	return r.compileClosureLocked(t)
}

func (r *Registry) compileClosureLocked(t reflect.Type) (Func, error) {
	if f, ok := r.closureCache[t]; ok {
		return f, nil
	}
	var real Func
	fwd := func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
		return real(ctx, s, v)
	}
	r.closureCache[t] = fwd
	f, err := r.generateClosure(t)
	if err != nil {
		delete(r.closureCache, t)
		return nil, err
	}
	real = f
	return fwd, nil
}

func (r *Registry) generateClosure(t reflect.Type) (Func, error) {
	switch t.Kind() {
	case reflect.Ptr:
		pointee, err := r.compileClosureLocked(t.Elem())
		if err != nil {
			return nil, err
		}
		elemT := t.Elem()
		return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			if ctx == nil {
				return fmt.Errorf("bundle: closure bundler requires a Ctx")
			}
			switch s.Op() {
			case xdr.Encode:
				if v.IsNil() {
					zero := uint32(0)
					return s.Uint32(&zero)
				}
				if ctx.encSeen == nil {
					ctx.encSeen = make(map[uintptr]uint32)
				}
				addr := v.Pointer()
				if id, ok := ctx.encSeen[addr]; ok {
					return s.Uint32(&id) // back-reference, payload already sent
				}
				ctx.nextID++
				id := ctx.nextID
				ctx.encSeen[addr] = id
				if err := s.Uint32(&id); err != nil {
					return err
				}
				return pointee(ctx, s, v.Elem())
			default:
				var id uint32
				if err := s.Uint32(&id); err != nil {
					return err
				}
				if id == 0 {
					v.Set(reflect.Zero(t))
					return nil
				}
				if ctx.decSeen == nil {
					ctx.decSeen = make(map[uint32]reflect.Value)
				}
				if p, ok := ctx.decSeen[id]; ok {
					v.Set(p)
					return nil
				}
				p := reflect.New(elemT)
				ctx.decSeen[id] = p
				v.Set(p)
				return pointee(ctx, s, p.Elem())
			}
		}, nil
	case reflect.Struct:
		type fieldBundler struct {
			idx int
			f   Func
		}
		var fields []fieldBundler
		for i := 0; i < t.NumField(); i++ {
			sf := t.Field(i)
			if !sf.IsExported() || sf.Tag.Get("clam") == "-" {
				continue
			}
			f, err := r.compileClosureLocked(sf.Type)
			if err != nil {
				return nil, fmt.Errorf("bundle: closure field %s.%s: %w", t, sf.Name, err)
			}
			fields = append(fields, fieldBundler{idx: i, f: f})
		}
		return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			for _, fb := range fields {
				if err := fb.f(ctx, s, v.Field(fb.idx)); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return r.compileLocked(t, false)
		}
		elem, err := r.compileClosureLocked(t.Elem())
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, s *xdr.Stream, v reflect.Value) error {
			n := v.Len()
			if err := s.Len(&n); err != nil {
				return err
			}
			if s.Op() == xdr.Decode {
				v.Set(reflect.MakeSlice(t, n, n))
			}
			for i := 0; i < n; i++ {
				if err := elem(ctx, s, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		}, nil
	default:
		// Non-pointer leaves bundle exactly as the automatic path does.
		return r.compileLocked(t, false)
	}
}
