package xdr

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// roundTrip encodes with enc, then decodes into a fresh value with dec, and
// returns the bytes produced.
func encodeBuf(t *testing.T, enc func(s *Stream) error) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	s := NewEncoder(&buf)
	if err := enc(s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return &buf
}

func TestOpString(t *testing.T) {
	if got := Encode.String(); got != "XDR_ENCODE" {
		t.Errorf("Encode.String() = %q", got)
	}
	if got := Decode.String(); got != "XDR_DECODE" {
		t.Errorf("Decode.String() = %q", got)
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	for _, want := range []uint32{0, 1, 0x7fffffff, 0x80000000, 0xffffffff} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.Uint32(&v) })
		if buf.Len() != 4 {
			t.Fatalf("uint32 encoded to %d bytes, want 4", buf.Len())
		}
		var got uint32
		if err := NewDecoder(buf).Uint32(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Errorf("round trip %#x: got %#x", want, got)
		}
	}
}

func TestUint32BigEndian(t *testing.T) {
	v := uint32(0x01020304)
	buf := encodeBuf(t, func(s *Stream) error { return s.Uint32(&v) })
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wire bytes = %v, want %v", buf.Bytes(), want)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	for _, want := range []int32{0, 1, -1, math.MinInt32, math.MaxInt32} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.Int32(&v) })
		var got int32
		if err := NewDecoder(buf).Int32(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Errorf("round trip %d: got %d", want, got)
		}
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, want := range []int64{0, -1, math.MinInt64, math.MaxInt64, 1 << 40} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.Int64(&v) })
		if buf.Len() != 8 {
			t.Fatalf("int64 encoded to %d bytes, want 8", buf.Len())
		}
		var got int64
		if err := NewDecoder(buf).Int64(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Errorf("round trip %d: got %d", want, got)
		}
	}
}

func TestIntAndUintRoundTrip(t *testing.T) {
	iv := -123456789
	buf := encodeBuf(t, func(s *Stream) error { return s.Int(&iv) })
	var gotI int
	if err := NewDecoder(buf).Int(&gotI); err != nil || gotI != -123456789 {
		t.Errorf("int round trip: got %d, err %v", gotI, err)
	}
	uv := uint(0xdeadbeef)
	buf = encodeBuf(t, func(s *Stream) error { return s.Uint(&uv) })
	var gotU uint
	if err := NewDecoder(buf).Uint(&gotU); err != nil || gotU != 0xdeadbeef {
		t.Errorf("uint round trip: got %#x, err %v", gotU, err)
	}
}

func TestShortRoundTrip(t *testing.T) {
	for _, want := range []int16{0, -1, math.MinInt16, math.MaxInt16, 42} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.Short(&v) })
		if buf.Len() != 4 {
			t.Fatalf("short encoded to %d bytes, want a full word", buf.Len())
		}
		var got int16
		if err := NewDecoder(buf).Short(&got); err != nil || got != want {
			t.Errorf("round trip %d: got %d err %v", want, got, err)
		}
	}
}

func TestUshortByteRoundTrip(t *testing.T) {
	uv := uint16(65535)
	buf := encodeBuf(t, func(s *Stream) error { return s.Ushort(&uv) })
	var gotU uint16
	if err := NewDecoder(buf).Ushort(&gotU); err != nil || gotU != 65535 {
		t.Errorf("ushort round trip: got %d err %v", gotU, err)
	}
	bv := byte(0xab)
	buf = encodeBuf(t, func(s *Stream) error { return s.Byte(&bv) })
	var gotB byte
	if err := NewDecoder(buf).Byte(&gotB); err != nil || gotB != 0xab {
		t.Errorf("byte round trip: got %#x err %v", gotB, err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, want := range []bool{true, false} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.Bool(&v) })
		var got bool
		if err := NewDecoder(buf).Bool(&got); err != nil || got != want {
			t.Errorf("round trip %v: got %v err %v", want, got, err)
		}
	}
}

func TestBoolRejectsBadEncoding(t *testing.T) {
	var buf bytes.Buffer
	v := uint32(2)
	if err := NewEncoder(&buf).Uint32(&v); err != nil {
		t.Fatal(err)
	}
	var got bool
	if err := NewDecoder(&buf).Bool(&got); err == nil {
		t.Error("decoding bool value 2 succeeded, want error")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, want := range []float64{0, 1.5, -2.75, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.Float64(&v) })
		var got float64
		if err := NewDecoder(buf).Float64(&got); err != nil || got != want {
			t.Errorf("float64 round trip %v: got %v err %v", want, got, err)
		}
	}
	f := float32(3.25)
	buf := encodeBuf(t, func(s *Stream) error { return s.Float32(&f) })
	var got32 float32
	if err := NewDecoder(buf).Float32(&got32); err != nil || got32 != 3.25 {
		t.Errorf("float32 round trip: got %v err %v", got32, err)
	}
}

func TestFloatNaN(t *testing.T) {
	v := math.NaN()
	buf := encodeBuf(t, func(s *Stream) error { return s.Float64(&v) })
	var got float64
	if err := NewDecoder(buf).Float64(&got); err != nil || !math.IsNaN(got) {
		t.Errorf("NaN round trip: got %v err %v", got, err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, want := range []string{"", "a", "abc", "abcd", "hello, 世界", strings.Repeat("x", 1000)} {
		v := want
		buf := encodeBuf(t, func(s *Stream) error { return s.String(&v) })
		if buf.Len()%4 != 0 {
			t.Errorf("string %q encoding not word aligned: %d bytes", want, buf.Len())
		}
		var got string
		if err := NewDecoder(buf).String(&got); err != nil || got != want {
			t.Errorf("round trip %q: got %q err %v", want, got, err)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 255} {
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(i * 7)
		}
		v := append([]byte(nil), want...)
		buf := encodeBuf(t, func(s *Stream) error { return s.Bytes(&v) })
		var got []byte
		if err := NewDecoder(buf).Bytes(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("round trip len %d: got %v want %v", n, got, want)
		}
	}
}

func TestBytesReusesCapacity(t *testing.T) {
	src := []byte{1, 2, 3}
	buf := encodeBuf(t, func(s *Stream) error { return s.Bytes(&src) })
	dst := make([]byte, 0, 16)
	if err := NewDecoder(buf).Bytes(&dst); err != nil {
		t.Fatal(err)
	}
	if cap(dst) != 16 {
		t.Errorf("decode reallocated despite capacity: cap=%d", cap(dst))
	}
	if !bytes.Equal(dst, src) {
		t.Errorf("got %v want %v", dst, src)
	}
}

func TestBytesLengthLimit(t *testing.T) {
	var buf bytes.Buffer
	huge := uint32(MaxBytesLimit() + 1)
	if err := NewEncoder(&buf).Uint32(&huge); err != nil {
		t.Fatal(err)
	}
	var got []byte
	err := NewDecoder(&buf).Bytes(&got)
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized length: err = %v, want ErrTooLarge", err)
	}
}

func TestLenLimit(t *testing.T) {
	var buf bytes.Buffer
	huge := uint32(MaxElems + 1)
	if err := NewEncoder(&buf).Uint32(&huge); err != nil {
		t.Fatal(err)
	}
	var n int
	err := NewDecoder(&buf).Len(&n)
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized count: err = %v, want ErrTooLarge", err)
	}
}

func TestOpaquePadding(t *testing.T) {
	p := []byte{9, 9, 9}
	buf := encodeBuf(t, func(s *Stream) error { return s.Opaque(p) })
	if buf.Len() != 4 {
		t.Fatalf("3-byte opaque encoded to %d bytes, want 4", buf.Len())
	}
	got := make([]byte, 3)
	if err := NewDecoder(buf).Opaque(got); err != nil || !bytes.Equal(got, p) {
		t.Errorf("opaque round trip: got %v err %v", got, err)
	}
}

func TestStickyErrorOnShortRead(t *testing.T) {
	s := NewDecoder(bytes.NewReader([]byte{1, 2})) // truncated word
	var v uint32
	if err := s.Uint32(&v); err == nil {
		t.Fatal("short read succeeded")
	}
	first := s.Err()
	var w uint32
	if err := s.Uint32(&w); !errors.Is(err, first) && err != first {
		t.Errorf("error not sticky: %v then %v", first, err)
	}
	if w != 0 {
		t.Errorf("value modified after error: %d", w)
	}
}

func TestEncodeOnDecodeStreamFails(t *testing.T) {
	s := NewDecoder(bytes.NewReader(nil))
	// Force the encode path via Opaque, which writes in Encode mode only;
	// instead check that a decode-mode stream with an empty reader errors.
	var v uint32
	if err := s.Uint32(&v); err == nil {
		t.Error("decode from empty reader succeeded")
	}
	e := NewEncoder(io.Discard)
	// A decode on an encoder must fail once the op dispatches to read.
	var g uint32
	e.op = Decode
	if err := e.Uint32(&g); err == nil {
		t.Error("decode on writer-only stream succeeded")
	}
}

func TestSetErrFirstWins(t *testing.T) {
	s := NewEncoder(io.Discard)
	e1 := errors.New("first")
	e2 := errors.New("second")
	s.SetErr(e1)
	s.SetErr(e2)
	if s.Err() != e1 {
		t.Errorf("Err() = %v, want first error", s.Err())
	}
	s.SetErr(nil)
	if s.Err() != e1 {
		t.Error("SetErr(nil) cleared the error")
	}
}

func TestWrittenAndReadCount(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	v := "abcde"
	if err := e.String(&v); err != nil {
		t.Fatal(err)
	}
	// 4 length + 5 data + 3 pad = 12.
	if e.Written() != 12 {
		t.Errorf("Written() = %d, want 12", e.Written())
	}
	d := NewDecoder(&buf)
	var got string
	if err := d.String(&got); err != nil {
		t.Fatal(err)
	}
	if d.ReadCount() != 12 {
		t.Errorf("ReadCount() = %d, want 12", d.ReadCount())
	}
}

func TestInvalidOp(t *testing.T) {
	s := &Stream{op: 0, w: io.Discard, r: bytes.NewReader(nil)}
	var v uint32
	if err := s.Uint32(&v); err == nil {
		t.Error("invalid op succeeded")
	}
}

// Property: every primitive filter is the identity under encode∘decode.
func TestQuickPrimitivesRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	if err := quick.Check(func(want int64) bool {
		v := want
		var buf bytes.Buffer
		if NewEncoder(&buf).Int64(&v) != nil {
			return false
		}
		var got int64
		return NewDecoder(&buf).Int64(&got) == nil && got == want
	}, cfg); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(want string) bool {
		v := want
		var buf bytes.Buffer
		if NewEncoder(&buf).String(&v) != nil {
			return false
		}
		var got string
		return NewDecoder(&buf).String(&got) == nil && got == want
	}, cfg); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(want []byte) bool {
		v := append([]byte(nil), want...)
		var buf bytes.Buffer
		if NewEncoder(&buf).Bytes(&v) != nil {
			return false
		}
		var got []byte
		if NewDecoder(&buf).Bytes(&got) != nil {
			return false
		}
		return bytes.Equal(got, want)
	}, cfg); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(want float64) bool {
		v := want
		var buf bytes.Buffer
		if NewEncoder(&buf).Float64(&v) != nil {
			return false
		}
		var got float64
		if NewDecoder(&buf).Float64(&got) != nil {
			return false
		}
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: concatenated encodings decode in order (stream composition).
func TestQuickSequenceRoundTrip(t *testing.T) {
	f := func(a int32, b string, c bool, d []byte) bool {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		av, bv, cv, dv := a, b, c, append([]byte(nil), d...)
		e.Int32(&av)
		e.String(&bv)
		e.Bool(&cv)
		e.Bytes(&dv)
		if e.Err() != nil {
			return false
		}
		dec := NewDecoder(&buf)
		var ga int32
		var gb string
		var gc bool
		var gd []byte
		dec.Int32(&ga)
		dec.String(&gb)
		dec.Bool(&gc)
		dec.Bytes(&gd)
		return dec.Err() == nil && ga == a && gb == b && gc == c && bytes.Equal(gd, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The paper's Figure 3.2 bundler, transliterated: a single bidirectional
// function bundles or unbundles a Point depending on the stream op,
// allocating storage when unbundling into a nil pointer.
type figPoint struct{ x, y, z int16 }

func figPointBundler(s *Stream, p *figPoint) *figPoint {
	if p == nil && s.Op() == Decode {
		p = new(figPoint)
	}
	s.Short(&p.x)
	s.Short(&p.y)
	s.Short(&p.z)
	return p
}

func TestFigure32BundlerStyle(t *testing.T) {
	want := figPoint{x: 1, y: -2, z: 300}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	in := want
	figPointBundler(enc, &in)
	if enc.Err() != nil {
		t.Fatal(enc.Err())
	}
	dec := NewDecoder(&buf)
	got := figPointBundler(dec, nil) // nil pointer: bundler allocates
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
	if *got != want {
		t.Errorf("got %+v want %+v", *got, want)
	}
}
