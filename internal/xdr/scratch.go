package xdr

import (
	"errors"
	"io"
)

// Reusable encode/decode scratch. The paper's cost table (§5) attributes
// most of a CLAM call to message handling; on a modern runtime that cost
// is dominated by per-message allocation, so the hot paths rearm one
// growing buffer and one Stream per workspace instead of constructing
// fresh ones per call. See rpc.Scratch for the pooled composition.

// Buffer is a minimal growing byte buffer for encoders: an io.Writer
// whose backing array survives Reset, so repeated encodes into the same
// Buffer stop allocating once it has grown to the working-set size.
type Buffer struct {
	// B is the encoded payload so far. Callers may hand B to the wire
	// layer directly; it remains valid until the next Reset or Write.
	B []byte
}

// Write appends p, growing the backing array as needed.
func (b *Buffer) Write(p []byte) (int, error) {
	b.B = append(b.B, p...)
	return len(p), nil
}

// WriteString appends s without converting it to a byte slice first,
// letting Stream.String encode straight from the string's storage.
func (b *Buffer) WriteString(s string) (int, error) {
	b.B = append(b.B, s...)
	return len(s), nil
}

// Bytes returns the accumulated payload.
func (b *Buffer) Bytes() []byte { return b.B }

// Len reports the accumulated payload length.
func (b *Buffer) Len() int { return len(b.B) }

// Reset empties the buffer, keeping its capacity.
func (b *Buffer) Reset() { b.B = b.B[:0] }

// Truncate discards all but the first n bytes, so a caller can roll back
// a partially encoded item (e.g. one failed call entry in a batch).
func (b *Buffer) Truncate(n int) {
	if n >= 0 && n <= len(b.B) {
		b.B = b.B[:n]
	}
}

// ErrExhausted reports a read past the end of a Reader's payload — the
// decode-side peer of io.ErrUnexpectedEOF for in-memory message bodies.
var ErrExhausted = errors.New("xdr: message body exhausted")

// Reader is an allocation-free io.Reader over a byte slice. Unlike
// bytes.Reader it can be rearmed with Reset, so a pooled decoder never
// allocates a reader per message.
type Reader struct {
	b []byte
	i int
}

// Reset rearms the reader over b.
func (r *Reader) Reset(b []byte) {
	r.b = b
	r.i = 0
}

// Read copies the next chunk of the payload into p.
func (r *Reader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, ErrExhausted
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.i }

// ResetEncode rearms s as an encoder writing to w, clearing the sticky
// error and the byte counters. It makes the zero Stream usable, so a
// long-lived workspace can hold a Stream by value.
func (s *Stream) ResetEncode(w io.Writer) { *s = Stream{op: Encode, w: w} }

// ResetDecode rearms s as a decoder reading from r.
func (s *Stream) ResetDecode(r io.Reader) { *s = Stream{op: Decode, r: r} }
