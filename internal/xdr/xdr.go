// Package xdr implements bidirectional, machine-independent data streams
// patterned after the Sun XDR filters that CLAM's bundlers are built on
// (Cohrs, Miller & Call, ICDCS 1988, §3.3 and Figure 3.2).
//
// A Stream is created in one of two operating modes, Encode or Decode. Every
// filter method is bidirectional: the same call either writes the value it is
// handed to the stream or overwrites that value with data read from the
// stream, depending on the stream's mode. This mirrors the paper's rule that
// a bundler "must be able to both bundle its first parameter or unbundle data
// from its machine independent form", so a single user-written bundler serves
// both directions.
//
// The wire format follows the XDR conventions: big-endian, with every item
// padded to a four-byte boundary.
package xdr

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Op selects the direction a Stream operates in.
type Op int

const (
	// Encode converts values to their machine-independent form.
	Encode Op = iota + 1
	// Decode converts machine-independent data back into values.
	Decode
)

// String returns the conventional XDR name for the operation.
func (op Op) String() string {
	switch op {
	case Encode:
		return "XDR_ENCODE"
	case Decode:
		return "XDR_DECODE"
	default:
		return fmt.Sprintf("xdr.Op(%d)", int(op))
	}
}

// Limits protecting a decoder from hostile or corrupt length prefixes.
const (
	// DefaultMaxBytes is the default cap on a variable-length opaque or
	// string, and — because the wire layer shares the limit (see
	// wire.BodyLimit) — on a whole frame body.
	DefaultMaxBytes = 16 << 20
	// MaxElems is the largest element count a Stream will decode for a
	// counted array.
	MaxElems = 1 << 20
)

// maxBytes is the configurable byte-length limit, shared by this package's
// decoders and the frame layer so an oversized payload is rejected before
// it is ever allocated or read, not mid-decode.
var maxBytes atomic.Int64

func init() { maxBytes.Store(DefaultMaxBytes) }

// MaxBytesLimit reports the current byte-length limit.
func MaxBytesLimit() int { return int(maxBytes.Load()) }

// SetMaxBytesLimit sets the byte-length limit shared by the xdr and wire
// layers and returns the previous value. n <= 0 restores the default.
// Raise it only in deployments that genuinely ship frames past 16 MiB;
// both peers must agree or large frames fail on one side only.
func SetMaxBytesLimit(n int) (prev int) {
	if n <= 0 {
		n = DefaultMaxBytes
	}
	return int(maxBytes.Swap(int64(n)))
}

// Common stream errors.
var (
	ErrTooLarge = errors.New("xdr: length prefix exceeds limit")
	errNoReader = errors.New("xdr: decode on encode-only stream")
	errNoWriter = errors.New("xdr: encode on decode-only stream")
)

// Stream is a bidirectional XDR filter stream. The zero value is not usable;
// construct one with NewEncoder or NewDecoder.
//
// Errors are sticky: after the first failure every subsequent filter call
// returns the same error and leaves its argument untouched, so a bundler may
// chain many filter calls and check the error once at the end.
type Stream struct {
	op  Op
	w   io.Writer
	r   io.Reader
	err error
	buf [8]byte
	// nw and nr count payload bytes written and read, used by tests and by
	// the wire layer to account for message sizes.
	nw int
	nr int
}

// NewEncoder returns a Stream that bundles values into w.
func NewEncoder(w io.Writer) *Stream { return &Stream{op: Encode, w: w} }

// NewDecoder returns a Stream that unbundles values from r.
func NewDecoder(r io.Reader) *Stream { return &Stream{op: Decode, r: r} }

// Op reports the direction of the stream. Bundlers use it for the rare
// asymmetric step, such as allocating space for a result while decoding
// (Figure 3.2 of the paper).
func (s *Stream) Op() Op { return s.op }

// Err returns the first error encountered by the stream, if any.
func (s *Stream) Err() error { return s.err }

// SetErr records err as the stream's sticky error if none is set. Bundlers
// use it to report semantic failures discovered mid-bundle.
func (s *Stream) SetErr(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// Written returns the number of payload bytes encoded so far.
func (s *Stream) Written() int { return s.nw }

// ReadCount returns the number of payload bytes decoded so far.
func (s *Stream) ReadCount() int { return s.nr }

func (s *Stream) write(p []byte) {
	if s.err != nil {
		return
	}
	if s.w == nil {
		s.err = errNoWriter
		return
	}
	n, err := s.w.Write(p)
	s.nw += n
	if err != nil {
		s.err = fmt.Errorf("xdr: write: %w", err)
	}
}

func (s *Stream) read(p []byte) {
	if s.err != nil {
		return
	}
	if s.r == nil {
		s.err = errNoReader
		return
	}
	n, err := io.ReadFull(s.r, p)
	s.nr += n
	if err != nil {
		s.err = fmt.Errorf("xdr: read: %w", err)
	}
}

// word transfers one four-byte big-endian word.
func (s *Stream) word(v *uint32) {
	b := s.buf[:4]
	switch s.op {
	case Encode:
		b[0] = byte(*v >> 24)
		b[1] = byte(*v >> 16)
		b[2] = byte(*v >> 8)
		b[3] = byte(*v)
		s.write(b)
	case Decode:
		s.read(b)
		if s.err == nil {
			*v = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		}
	default:
		s.SetErr(fmt.Errorf("xdr: invalid op %d", int(s.op)))
	}
}

// dword transfers one eight-byte big-endian doubleword (XDR hyper).
func (s *Stream) dword(v *uint64) {
	b := s.buf[:8]
	switch s.op {
	case Encode:
		for i := 0; i < 8; i++ {
			b[i] = byte(*v >> (56 - 8*i))
		}
		s.write(b)
	case Decode:
		s.read(b)
		if s.err == nil {
			var x uint64
			for i := 0; i < 8; i++ {
				x = x<<8 | uint64(b[i])
			}
			*v = x
		}
	default:
		s.SetErr(fmt.Errorf("xdr: invalid op %d", int(s.op)))
	}
}

// Uint32 transfers a 32-bit unsigned integer.
func (s *Stream) Uint32(v *uint32) error {
	s.word(v)
	return s.err
}

// Int32 transfers a 32-bit signed integer.
func (s *Stream) Int32(v *int32) error {
	u := uint32(*v)
	s.word(&u)
	if s.op == Decode && s.err == nil {
		*v = int32(u)
	}
	return s.err
}

// Uint64 transfers a 64-bit unsigned integer (XDR unsigned hyper).
func (s *Stream) Uint64(v *uint64) error {
	s.dword(v)
	return s.err
}

// Int64 transfers a 64-bit signed integer (XDR hyper).
func (s *Stream) Int64(v *int64) error {
	u := uint64(*v)
	s.dword(&u)
	if s.op == Decode && s.err == nil {
		*v = int64(u)
	}
	return s.err
}

// Int transfers a Go int as a 64-bit quantity so the format is identical on
// all word sizes.
func (s *Stream) Int(v *int) error {
	x := int64(*v)
	s.Int64(&x)
	if s.op == Decode && s.err == nil {
		*v = int(x)
	}
	return s.err
}

// Uint transfers a Go uint as a 64-bit quantity.
func (s *Stream) Uint(v *uint) error {
	x := uint64(*v)
	s.Uint64(&x)
	if s.op == Decode && s.err == nil {
		*v = uint(x)
	}
	return s.err
}

// Short transfers a 16-bit signed integer. XDR carries shorts in a full
// word, exactly as the VAX CLAM implementation did for the Point type of
// Figure 3.1.
func (s *Stream) Short(v *int16) error {
	x := int32(*v)
	s.Int32(&x)
	if s.op == Decode && s.err == nil {
		*v = int16(x)
	}
	return s.err
}

// Ushort transfers a 16-bit unsigned integer in a full word.
func (s *Stream) Ushort(v *uint16) error {
	x := uint32(*v)
	s.Uint32(&x)
	if s.op == Decode && s.err == nil {
		*v = uint16(x)
	}
	return s.err
}

// Byte transfers a single byte in a full word, per XDR padding rules.
func (s *Stream) Byte(v *byte) error {
	x := uint32(*v)
	s.Uint32(&x)
	if s.op == Decode && s.err == nil {
		*v = byte(x)
	}
	return s.err
}

// Bool transfers a boolean as a word holding 0 or 1.
func (s *Stream) Bool(v *bool) error {
	var x uint32
	if *v {
		x = 1
	}
	s.word(&x)
	if s.op == Decode && s.err == nil {
		switch x {
		case 0:
			*v = false
		case 1:
			*v = true
		default:
			s.SetErr(fmt.Errorf("xdr: bool encoding %d out of range", x))
		}
	}
	return s.err
}

// Float32 transfers an IEEE-754 single-precision float.
func (s *Stream) Float32(v *float32) error {
	x := math.Float32bits(*v)
	s.word(&x)
	if s.op == Decode && s.err == nil {
		*v = math.Float32frombits(x)
	}
	return s.err
}

// Float64 transfers an IEEE-754 double-precision float.
func (s *Stream) Float64(v *float64) error {
	x := math.Float64bits(*v)
	s.dword(&x)
	if s.op == Decode && s.err == nil {
		*v = math.Float64frombits(x)
	}
	return s.err
}

// pad holds up to three zero bytes for four-byte alignment.
var pad [4]byte

// Opaque transfers exactly len(p) raw bytes plus alignment padding. The
// caller fixes the length on both sides, as with XDR fixed-length opaque
// data.
func (s *Stream) Opaque(p []byte) error {
	n := len(p)
	switch s.op {
	case Encode:
		s.write(p)
		if r := n % 4; r != 0 {
			s.write(pad[:4-r])
		}
	case Decode:
		s.read(p)
		if r := n % 4; r != 0 {
			var scratch [4]byte
			s.read(scratch[:4-r])
		}
	default:
		s.SetErr(fmt.Errorf("xdr: invalid op %d", int(s.op)))
	}
	return s.err
}

// Bytes transfers a variable-length byte slice: a length word followed by
// the data and padding. While decoding, the slice is reallocated to the
// received length; a nil slice decodes as nil only when the length is zero.
func (s *Stream) Bytes(p *[]byte) error {
	n := uint32(len(*p))
	s.word(&n)
	if s.err != nil {
		return s.err
	}
	if s.op == Decode {
		if int64(n) > maxBytes.Load() {
			s.SetErr(fmt.Errorf("%w: %d bytes", ErrTooLarge, n))
			return s.err
		}
		if uint32(cap(*p)) >= n {
			*p = (*p)[:n]
		} else {
			*p = make([]byte, n)
		}
	}
	return s.Opaque(*p)
}

// String transfers a string as a counted sequence of bytes. Encoding to a
// writer that supports io.StringWriter (e.g. the Buffer scratch) copies
// the string directly, without the per-call []byte conversion.
func (s *Stream) String(v *string) error {
	switch s.op {
	case Encode:
		n := uint32(len(*v))
		s.word(&n)
		if s.err != nil {
			return s.err
		}
		if sw, ok := s.w.(io.StringWriter); ok {
			nn, err := sw.WriteString(*v)
			s.nw += nn
			if err != nil {
				s.err = fmt.Errorf("xdr: write: %w", err)
				return s.err
			}
			if r := len(*v) % 4; r != 0 {
				s.write(pad[:4-r])
			}
		} else {
			s.Opaque([]byte(*v))
		}
	case Decode:
		var b []byte
		if s.Bytes(&b) == nil {
			*v = string(b)
		}
	default:
		s.SetErr(fmt.Errorf("xdr: invalid op %d", int(s.op)))
	}
	return s.err
}

// Len transfers an element count for a counted array, enforcing MaxElems on
// decode. On encode the caller passes the count to write; on decode the
// count is overwritten with the received value.
func (s *Stream) Len(n *int) error {
	x := uint32(*n)
	s.word(&x)
	if s.err != nil {
		return s.err
	}
	if s.op == Decode {
		if x > MaxElems {
			s.SetErr(fmt.Errorf("%w: %d elements", ErrTooLarge, x))
			return s.err
		}
		*n = int(x)
	}
	return s.err
}
