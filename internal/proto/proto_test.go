package proto

import (
	"bytes"
	"testing"
	"testing/quick"

	"clam/internal/dynload"
)

func TestFrameRoundTrip(t *testing.T) {
	f := NewFramer()
	var got []Frame
	f.OnFrame(func(fr Frame) { got = append(got, fr) })
	b, err := EncodeFrame([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	f.Feed(b)
	if len(got) != 1 || string(got[0].Payload) != "hello" {
		t.Fatalf("got %v", got)
	}
	good, bad := f.Stats()
	if good != 1 || bad != 0 {
		t.Errorf("stats: %d good %d bad", good, bad)
	}
}

func TestFramerHandlesArbitraryChunking(t *testing.T) {
	f := NewFramer()
	var got []string
	f.OnFrame(func(fr Frame) { got = append(got, string(fr.Payload)) })
	var stream []byte
	for _, msg := range []string{"one", "two", "three"} {
		b, _ := EncodeFrame([]byte(msg))
		stream = append(stream, b...)
	}
	// Feed a byte at a time.
	for _, b := range stream {
		f.Feed([]byte{b})
	}
	if len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Errorf("got %v", got)
	}
}

func TestFramerDiscardsCorruptFrames(t *testing.T) {
	f := NewFramer()
	var got []string
	f.OnFrame(func(fr Frame) { got = append(got, string(fr.Payload)) })
	good, _ := EncodeFrame([]byte("ok"))
	corrupt, _ := EncodeFrame([]byte("bad"))
	corrupt[4] ^= 0xff // flip a payload byte: checksum fails
	var stream []byte
	stream = append(stream, corrupt...)
	stream = append(stream, good...)
	f.Feed(stream)
	if len(got) != 1 || got[0] != "ok" {
		t.Errorf("got %v", got)
	}
	_, bad := f.Stats()
	if bad == 0 {
		t.Error("corruption not counted")
	}
}

func TestFramerResyncsPastGarbage(t *testing.T) {
	f := NewFramer()
	var got []string
	f.OnFrame(func(fr Frame) { got = append(got, string(fr.Payload)) })
	b, _ := EncodeFrame([]byte("x"))
	stream := append([]byte{0x00, 0x01, 0x02}, b...)
	f.Feed(stream)
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("got %v", got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	if _, err := EncodeFrame(make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("oversized frame encoded")
	}
}

func TestPacketCodec(t *testing.T) {
	p := Packet{Seq: 7, Last: true, Data: []byte("abc")}
	got, err := DecodePacket(EncodePacket(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || !got.Last || !bytes.Equal(got.Data, p.Data) {
		t.Errorf("got %+v", got)
	}
	if _, err := DecodePacket([]byte{1, 2}); err == nil {
		t.Error("short packet decoded")
	}
}

func feedPacket(t *testing.T, f *Framer, p Packet) {
	t.Helper()
	b, err := EncodeFrame(EncodePacket(p))
	if err != nil {
		t.Fatal(err)
	}
	f.Feed(b)
}

func stack(t *testing.T) (*Framer, *Transport, *Assembler) {
	t.Helper()
	f := NewFramer()
	tr := NewTransport()
	tr.Attach(f)
	a := NewAssembler()
	a.Attach(tr)
	return f, tr, a
}

func TestTransportReordersPackets(t *testing.T) {
	f, tr, _ := stack(t)
	var seqs []uint32
	tr.OnPacket(func(p Packet) { seqs = append(seqs, p.Seq) })
	// Deliver 2, 0, 1: the layer queues 2, passes 0, then drains 1 and 2.
	feedPacket(t, f, Packet{Seq: 2, Data: []byte("c")})
	feedPacket(t, f, Packet{Seq: 0, Data: []byte("a")})
	feedPacket(t, f, Packet{Seq: 1, Data: []byte("b")})
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Errorf("delivery order %v", seqs)
	}
	_, queued, next := tr.Stats()
	if queued != 1 || next != 3 {
		t.Errorf("queued=%d next=%d", queued, next)
	}
}

func TestTransportDropsDuplicates(t *testing.T) {
	f, tr, _ := stack(t)
	var n int
	tr.OnPacket(func(Packet) { n++ })
	feedPacket(t, f, Packet{Seq: 0, Data: []byte("a")})
	feedPacket(t, f, Packet{Seq: 0, Data: []byte("a")}) // dup (stale)
	feedPacket(t, f, Packet{Seq: 2, Data: []byte("c")})
	feedPacket(t, f, Packet{Seq: 2, Data: []byte("c")}) // dup (queued)
	if n != 1 {
		t.Errorf("delivered %d", n)
	}
	dups, _, _ := tr.Stats()
	if dups != 2 {
		t.Errorf("dups = %d", dups)
	}
}

func TestAssemblerReassembles(t *testing.T) {
	f, _, a := stack(t)
	var msgs []Message
	a.OnMessage(func(m Message) { msgs = append(msgs, m) })
	feedPacket(t, f, Packet{Seq: 0, Data: []byte("hello ")})
	feedPacket(t, f, Packet{Seq: 1, Data: []byte("world")})
	if len(msgs) != 0 {
		t.Fatal("message completed early")
	}
	feedPacket(t, f, Packet{Seq: 2, Last: true, Data: []byte("!")})
	if len(msgs) != 1 || string(msgs[0].Data) != "hello world!" || msgs[0].Packets != 3 {
		t.Fatalf("msgs = %+v", msgs)
	}
	if a.MessageCount() != 1 {
		t.Errorf("MessageCount = %d", a.MessageCount())
	}
}

func TestSenderEndToEnd(t *testing.T) {
	f, _, a := stack(t)
	var msgs []string
	a.OnMessage(func(m Message) { msgs = append(msgs, string(m.Data)) })
	s := NewSender(4)
	for _, text := range []string{"first message", "x", "second, longer message body"} {
		b, err := s.Send([]byte(text))
		if err != nil {
			t.Fatal(err)
		}
		f.Feed(b)
	}
	if len(msgs) != 3 || msgs[0] != "first message" || msgs[2] != "second, longer message body" {
		t.Errorf("msgs = %q", msgs)
	}
}

// Property: any payload survives the full stack under any MTU and any
// feed chunking.
func TestQuickStackDelivery(t *testing.T) {
	prop := func(data []byte, mtu uint8, chunk uint8) bool {
		f, _, a := stack(t)
		var got []byte
		done := false
		a.OnMessage(func(m Message) {
			got = m.Data
			done = true
		})
		s := NewSender(int(mtu%32) + 1)
		stream, err := s.Send(data)
		if err != nil {
			return false
		}
		c := int(chunk%16) + 1
		for off := 0; off < len(stream); off += c {
			end := off + c
			if end > len(stream) {
				end = len(stream)
			}
			f.Feed(stream[off:end])
		}
		return done && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: random corruption never produces a wrong message — either the
// right data arrives or nothing does.
func TestQuickCorruptionSafety(t *testing.T) {
	prop := func(data []byte, flip uint16) bool {
		if len(data) == 0 {
			return true
		}
		f, _, a := stack(t)
		var got []byte
		done := false
		a.OnMessage(func(m Message) {
			got = m.Data
			done = true
		})
		s := NewSender(8)
		stream, err := s.Send(data)
		if err != nil {
			return false
		}
		pos := int(flip) % len(stream)
		stream[pos] ^= 0xA5
		f.Feed(stream)
		if !done {
			return true // lost entirely: acceptable
		}
		return bytes.Equal(got, data) // delivered: must be intact
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegisterClasses(t *testing.T) {
	lib := dynload.NewLibrary()
	MustRegister(lib)
	ld := dynload.NewLoader(lib)
	fr, err := ld.Load("framer", 0)
	if err != nil {
		t.Fatal(err)
	}
	fobj, err := fr.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	named := map[string]any{"framer": fobj}
	env := namedMap(named)

	trc, err := ld.Load("transport", 0)
	if err != nil {
		t.Fatal(err)
	}
	tobj, err := trc.New(env)
	if err != nil {
		t.Fatal(err)
	}
	named["transport"] = tobj

	asc, err := ld.Load("assembler", 0)
	if err != nil {
		t.Fatal(err)
	}
	aobj, err := asc.New(env)
	if err != nil {
		t.Fatal(err)
	}

	// The auto-wired stack delivers end to end.
	var got string
	aobj.(*Assembler).OnMessage(func(m Message) { got = string(m.Data) })
	s := NewSender(4)
	b, _ := s.Send([]byte("wired"))
	fobj.(*Framer).Feed(b)
	if got != "wired" {
		t.Errorf("got %q", got)
	}
}

type namedMap map[string]any

func (m namedMap) Named(name string) (any, bool) {
	v, ok := m[name]
	return v, ok
}
