package proto

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Reliable delivery over a lossy device: an ARQ extension of the stack.
// The base Transport already restores order and drops duplicates; this
// file adds the missing halves — cumulative acknowledgments flowing back
// and a sending peer that retransmits unacknowledged packets — so the
// stack delivers every message across a link that loses or corrupts
// frames. The receiver's dedup makes retransmission idempotent.
//
// Acks ride in ordinary packets with the ack flag set: the frame layer
// neither knows nor cares, which keeps the layering clean.

// EncodeAck produces the frame payload of a cumulative acknowledgment:
// "everything below next has been delivered upward".
func EncodeAck(next uint32) []byte {
	out := make([]byte, 0, packetHeader)
	out = binary.BigEndian.AppendUint32(out, next)
	out = append(out, 2) // flags bit 1: ack
	return out
}

// IsAck reports whether a decoded packet is an acknowledgment and, if so,
// its cumulative value.
func IsAck(b []byte) (uint32, bool) {
	if len(b) < packetHeader || b[4]&2 == 0 {
		return 0, false
	}
	return binary.BigEndian.Uint32(b[0:4]), true
}

// EmitAcks registers an acknowledgment sink: after every in-order
// delivery the transport reports its new next-expected sequence. The sink
// typically frames an ack and writes it to the reverse channel.
func (t *Transport) EmitAcks(sink func(next uint32)) {
	t.mu.Lock()
	t.ackSink = sink
	t.mu.Unlock()
}

// ReliableSender fragments messages into framed packets, tracks
// unacknowledged packets, and retransmits them on Tick. It is the peer
// half of a stack whose Transport emits acks.
type ReliableSender struct {
	mu      sync.Mutex
	mtu     int
	seq     uint32
	unacked map[uint32][]byte // seq → framed bytes, ready to resend
	out     func([]byte)      // device write

	sent        uint64
	retransmits uint64
	ackedCount  uint64
}

// NewReliableSender returns a sender fragmenting at mtu payload bytes and
// writing device bytes through out.
func NewReliableSender(mtu int, out func([]byte)) *ReliableSender {
	if mtu <= 0 {
		mtu = 512
	}
	return &ReliableSender{
		mtu:     mtu,
		unacked: make(map[uint32][]byte),
		out:     out,
	}
}

// Send fragments and transmits data, retaining every packet until it is
// acknowledged. Transmission happens outside the sender's lock: on a
// synchronous test link the bytes can loop straight back as an
// acknowledgment into HandleAck.
func (s *ReliableSender) Send(data []byte) error {
	s.mu.Lock()
	var frames [][]byte
	for off := 0; ; off += s.mtu {
		end := off + s.mtu
		last := false
		if end >= len(data) {
			end = len(data)
			last = true
		}
		fb, err := EncodeFrame(EncodePacket(Packet{Seq: s.seq, Last: last, Data: data[off:end]}))
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("proto: reliable send: %w", err)
		}
		s.unacked[s.seq] = fb
		s.seq++
		s.sent++
		frames = append(frames, fb)
		if last {
			break
		}
	}
	out := s.out
	s.mu.Unlock()
	for _, fb := range frames {
		out(fb)
	}
	return nil
}

// HandleAck processes a cumulative acknowledgment arriving on the reverse
// channel (typically wired as a Framer OnFrame handler via AttachReverse).
func (s *ReliableSender) HandleAck(next uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for seq := range s.unacked {
		if seq < next {
			delete(s.unacked, seq)
			s.ackedCount++
		}
	}
}

// AttachReverse registers the sender with the framer carrying the reverse
// channel, so acknowledgments flow in automatically.
func (s *ReliableSender) AttachReverse(f *Framer) {
	f.OnFrame(func(fr Frame) {
		if next, ok := IsAck(fr.Payload); ok {
			s.HandleAck(next)
		}
	})
}

// Tick retransmits every unacknowledged packet — a coarse retransmission
// timer driven by the caller. It returns how many packets were resent.
func (s *ReliableSender) Tick() int {
	s.mu.Lock()
	frames := make([][]byte, 0, len(s.unacked))
	for _, fb := range s.unacked {
		frames = append(frames, fb)
	}
	s.retransmits += uint64(len(frames))
	out := s.out
	s.mu.Unlock()
	for _, fb := range frames {
		out(fb)
	}
	return len(frames)
}

// Outstanding reports the number of unacknowledged packets.
func (s *ReliableSender) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.unacked)
}

// Stats reports packets sent, retransmitted and acknowledged.
func (s *ReliableSender) Stats() (sent, retransmits, acked int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.sent), int64(s.retransmits), int64(s.ackedCount)
}
