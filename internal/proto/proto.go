// Package proto is a small layered network-protocol stack built on
// upcalls — the paper's other motivating workload (§1): "There are
// natural applications for this upwards calling structure in servers
// supporting layered network protocols", e.g. "when a network server
// needs to signal to an upper layer in a protocol."
//
// The stack has three layers, each registered with the one below and each
// exercising one of the §1 options for an asynchronous event — map it,
// queue it, discard it, or pass it up:
//
//	device bytes → Framer    (discards corrupt frames, maps bytes→frames)
//	             → Transport (queues out-of-order packets, drops duplicates)
//	             → Assembler (maps packet runs→messages, passes them up)
//
// Each layer's classes are registered for dynamic loading, so the stack
// can live inside a CLAM server with the top-layer upcall crossing to a
// client as a distributed upcall.
package proto

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Frame is what the framing layer delivers upward: one validated payload.
type Frame struct {
	Payload []byte
}

// Packet is what the transport layer delivers upward: an in-order,
// deduplicated datagram.
type Packet struct {
	Seq  uint32
	Last bool
	Data []byte
}

// Message is what the assembly layer delivers upward: a complete message
// reassembled from one or more packets.
type Message struct {
	Data    []byte
	Packets int32
}

// Frame wire format: magic byte, big-endian length, payload, additive
// 16-bit checksum.
const (
	frameMagic  = 0xC3
	frameMinLen = 1 + 2 + 2 // magic + length + checksum
	// MaxFramePayload bounds one frame's payload.
	MaxFramePayload = 1 << 14
)

func checksum(p []byte) uint16 {
	var sum uint16
	for _, b := range p {
		sum += uint16(b)
	}
	return sum
}

// EncodeFrame produces the device-byte representation of one frame.
func EncodeFrame(payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("proto: payload %d exceeds frame limit", len(payload))
	}
	out := make([]byte, 0, len(payload)+frameMinLen)
	out = append(out, frameMagic)
	out = binary.BigEndian.AppendUint16(out, uint16(len(payload)))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint16(out, checksum(payload))
	return out, nil
}

// Framer is the lowest layer: it turns an arbitrarily chunked device byte
// stream into validated frames. Corrupt frames are discarded — "if there
// are no higher layers interested in the event, then the lower level
// object decides what to do with the event."
type Framer struct {
	mu   sync.Mutex
	buf  []byte
	fns  []func(Frame)
	good uint64
	bad  uint64
}

// NewFramer returns an empty framer.
func NewFramer() *Framer { return &Framer{} }

// OnFrame registers a procedure for validated frames.
func (f *Framer) OnFrame(fn func(Frame)) {
	if fn == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fns = append(f.fns, fn)
}

// Feed pushes device bytes into the framer; complete frames are upcalled
// in arrival order before Feed returns.
func (f *Framer) Feed(data []byte) {
	f.mu.Lock()
	f.buf = append(f.buf, data...)
	var deliver []Frame
	for {
		frame, ok := f.nextFrameLocked()
		if !ok {
			break
		}
		deliver = append(deliver, frame)
	}
	fns := append(([]func(Frame))(nil), f.fns...)
	f.mu.Unlock()
	for _, fr := range deliver {
		for _, fn := range fns {
			fn(fr)
		}
	}
}

// nextFrameLocked extracts one frame, resynchronizing past garbage.
func (f *Framer) nextFrameLocked() (Frame, bool) {
	for {
		// Resync: skip to the next magic byte.
		start := 0
		for start < len(f.buf) && f.buf[start] != frameMagic {
			start++
		}
		if start > 0 {
			f.buf = f.buf[start:]
			f.bad++ // garbage discarded
		}
		if len(f.buf) < frameMinLen {
			return Frame{}, false
		}
		n := int(binary.BigEndian.Uint16(f.buf[1:3]))
		if n > MaxFramePayload {
			f.buf = f.buf[1:]
			f.bad++
			continue
		}
		total := frameMinLen + n
		if len(f.buf) < total {
			return Frame{}, false
		}
		payload := f.buf[3 : 3+n]
		want := binary.BigEndian.Uint16(f.buf[3+n : 3+n+2])
		if checksum(payload) != want {
			// Corrupt: discard the magic byte and resync.
			f.buf = f.buf[1:]
			f.bad++
			continue
		}
		out := append([]byte(nil), payload...)
		f.buf = f.buf[total:]
		f.good++
		return Frame{Payload: out}, true
	}
}

// Stats reports validated and discarded frame counts.
func (f *Framer) Stats() (good, bad int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(f.good), int64(f.bad)
}

// Packet wire format inside a frame payload: seq, flags, data.
const packetHeader = 4 + 1

// EncodePacket produces a frame payload for one packet.
func EncodePacket(p Packet) []byte {
	out := make([]byte, 0, packetHeader+len(p.Data))
	out = binary.BigEndian.AppendUint32(out, p.Seq)
	var flags byte
	if p.Last {
		flags = 1
	}
	out = append(out, flags)
	return append(out, p.Data...)
}

// DecodePacket parses a frame payload.
func DecodePacket(b []byte) (Packet, error) {
	if len(b) < packetHeader {
		return Packet{}, fmt.Errorf("proto: short packet (%d bytes)", len(b))
	}
	return Packet{
		Seq:  binary.BigEndian.Uint32(b[0:4]),
		Last: b[4]&1 != 0,
		Data: append([]byte(nil), b[packetHeader:]...),
	}, nil
}

// Transport is the middle layer: it restores order. In-order packets pass
// up immediately; future packets are queued ("it may queue up the event
// for later use"); duplicates and stale packets are dropped.
type Transport struct {
	mu      sync.Mutex
	next    uint32
	pending map[uint32]Packet
	fns     []func(Packet)
	dups    uint64
	queued  uint64
	maxHeld int
	// ackSink, when set by EmitAcks, receives the next-expected sequence
	// after every in-order delivery (see arq.go).
	ackSink func(uint32)
}

// NewTransport returns a transport expecting sequence 0 first.
func NewTransport() *Transport {
	return &Transport{pending: make(map[uint32]Packet), maxHeld: 1024}
}

// Attach registers the transport's upcall procedure with the framing
// layer — the inter-layer registration of §4.1.
func (t *Transport) Attach(f *Framer) {
	f.OnFrame(t.Frame)
}

// OnPacket registers a procedure for in-order packets.
func (t *Transport) OnPacket(fn func(Packet)) {
	if fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fns = append(t.fns, fn)
}

// Frame is the transport's upcall procedure for the framing layer.
func (t *Transport) Frame(fr Frame) {
	if _, isAck := IsAck(fr.Payload); isAck {
		return // acks belong to the sending peer, not this direction
	}
	p, err := DecodePacket(fr.Payload)
	if err != nil {
		return // malformed: this layer discards it
	}
	t.mu.Lock()
	var deliver []Packet
	switch {
	case p.Seq < t.next:
		t.dups++ // stale or duplicate
	case p.Seq > t.next:
		if len(t.pending) < t.maxHeld {
			if _, dup := t.pending[p.Seq]; !dup {
				t.pending[p.Seq] = p
				t.queued++
			} else {
				t.dups++
			}
		}
	default:
		deliver = append(deliver, p)
		t.next++
		for {
			q, ok := t.pending[t.next]
			if !ok {
				break
			}
			delete(t.pending, t.next)
			deliver = append(deliver, q)
			t.next++
		}
	}
	fns := append(([]func(Packet))(nil), t.fns...)
	ackSink := t.ackSink
	next := t.next
	t.mu.Unlock()
	for _, d := range deliver {
		for _, fn := range fns {
			fn(d)
		}
	}
	if ackSink != nil && len(deliver) > 0 {
		ackSink(next)
	}
}

// Stats reports duplicate-drop and queue counts plus the next expected
// sequence number.
func (t *Transport) Stats() (dups, queued, next int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(t.dups), int64(t.queued), int64(t.next)
}

// Assembler is the top layer inside the stack: it concatenates packet
// runs into messages and passes each complete message up — in a CLAM
// deployment, typically through a distributed upcall into the client.
type Assembler struct {
	mu      sync.Mutex
	partial []byte
	count   int32
	fns     []func(Message)
	done    uint64
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler { return &Assembler{} }

// Attach registers the assembler with the transport layer.
func (a *Assembler) Attach(t *Transport) {
	t.OnPacket(a.Packet)
}

// OnMessage registers a procedure for complete messages.
func (a *Assembler) OnMessage(fn func(Message)) {
	if fn == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fns = append(a.fns, fn)
}

// Packet is the assembler's upcall procedure for the transport layer.
func (a *Assembler) Packet(p Packet) {
	a.mu.Lock()
	a.partial = append(a.partial, p.Data...)
	a.count++
	var msg *Message
	if p.Last {
		msg = &Message{Data: a.partial, Packets: a.count}
		a.partial = nil
		a.count = 0
		a.done++
	}
	fns := append(([]func(Message))(nil), a.fns...)
	a.mu.Unlock()
	if msg != nil {
		for _, fn := range fns {
			fn(*msg)
		}
	}
}

// MessageCount reports completed messages.
func (a *Assembler) MessageCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.done)
}

// Sender produces the device-byte stream for messages — the peer end of
// the stack, used by tests, examples and benchmarks.
type Sender struct {
	mu  sync.Mutex
	seq uint32
	mtu int
}

// NewSender returns a sender fragmenting at mtu bytes of payload per
// packet.
func NewSender(mtu int) *Sender {
	if mtu <= 0 {
		mtu = 512
	}
	return &Sender{mtu: mtu}
}

// Send encodes data as a sequence of framed packets and returns the
// device bytes.
func (s *Sender) Send(data []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []byte
	for off := 0; ; off += s.mtu {
		end := off + s.mtu
		last := false
		if end >= len(data) {
			end = len(data)
			last = true
		}
		chunk := data[off:end]
		fb, err := EncodeFrame(EncodePacket(Packet{Seq: s.seq, Last: last, Data: chunk}))
		if err != nil {
			return nil, err
		}
		s.seq++
		out = append(out, fb...)
		if last {
			break
		}
	}
	return out, nil
}
