package proto

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// lossyLink forwards byte chunks, dropping some fraction deterministically.
type lossyLink struct {
	rng  *rand.Rand
	rate float64
	fwd  func([]byte)
	lost int
}

func (l *lossyLink) write(b []byte) {
	if l.rng.Float64() < l.rate {
		l.lost++
		return
	}
	l.fwd(b)
}

// reliablePair wires a full bidirectional reliable stack: sender →
// (lossy) forward link → receiver stack; receiver acks → (lossy) reverse
// link → sender.
func reliablePair(lossRate float64, seed uint64, mtu int) (*ReliableSender, *Assembler, *lossyLink, *lossyLink) {
	rxFramer := NewFramer()
	rxTransport := NewTransport()
	rxTransport.Attach(rxFramer)
	rxAssembler := NewAssembler()
	rxAssembler.Attach(rxTransport)

	ackFramer := NewFramer() // the sender's reverse-channel framer

	fwd := &lossyLink{rng: rand.New(rand.NewPCG(seed, 1)), rate: lossRate, fwd: rxFramer.Feed}
	rev := &lossyLink{rng: rand.New(rand.NewPCG(seed, 2)), rate: lossRate, fwd: ackFramer.Feed}

	sender := NewReliableSender(mtu, fwd.write)
	sender.AttachReverse(ackFramer)
	rxTransport.EmitAcks(func(next uint32) {
		fb, err := EncodeFrame(EncodeAck(next))
		if err != nil {
			return
		}
		rev.write(fb)
	})
	return sender, rxAssembler, fwd, rev
}

func TestReliableDeliveryNoLoss(t *testing.T) {
	sender, asm, _, _ := reliablePair(0, 1, 4)
	var got []string
	asm.OnMessage(func(m Message) { got = append(got, string(m.Data)) })
	if err := sender.Send([]byte("hello reliable world")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello reliable world" {
		t.Fatalf("got %q", got)
	}
	if sender.Outstanding() != 0 {
		t.Errorf("%d packets unacked on a lossless link", sender.Outstanding())
	}
	sent, retrans, acked := sender.Stats()
	if retrans != 0 || acked != sent {
		t.Errorf("stats: sent=%d retrans=%d acked=%d", sent, retrans, acked)
	}
}

func TestReliableDeliverySurvivesLoss(t *testing.T) {
	sender, asm, fwd, _ := reliablePair(0.3, 42, 4)
	var got []byte
	done := false
	asm.OnMessage(func(m Message) { got, done = m.Data, true })
	payload := []byte("this message crosses a 30% lossy link and still arrives intact")
	if err := sender.Send(payload); err != nil {
		t.Fatal(err)
	}
	for round := 0; !done && round < 200; round++ {
		sender.Tick()
	}
	if !done {
		t.Fatal("message never completed despite retransmission")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload corrupted: %q", got)
	}
	if fwd.lost == 0 {
		t.Error("the lossy link dropped nothing; test proves little")
	}
	_, retrans, _ := sender.Stats()
	if retrans == 0 {
		t.Error("no retransmissions despite loss")
	}
}

func TestAckCodec(t *testing.T) {
	b := EncodeAck(77)
	next, ok := IsAck(b)
	if !ok || next != 77 {
		t.Errorf("IsAck = %d, %v", next, ok)
	}
	// A data packet is not an ack.
	if _, ok := IsAck(EncodePacket(Packet{Seq: 1, Data: []byte("x")})); ok {
		t.Error("data packet classified as ack")
	}
	if _, ok := IsAck([]byte{1}); ok {
		t.Error("short payload classified as ack")
	}
}

func TestTransportIgnoresForwardAcks(t *testing.T) {
	f := NewFramer()
	tr := NewTransport()
	tr.Attach(f)
	delivered := 0
	tr.OnPacket(func(Packet) { delivered++ })
	fb, _ := EncodeFrame(EncodeAck(5))
	f.Feed(fb)
	if delivered != 0 {
		t.Error("ack delivered as data")
	}
	_, _, next := tr.Stats()
	if next != 0 {
		t.Error("ack advanced the receive window")
	}
}

func TestAcksAreCumulative(t *testing.T) {
	sender, _, _, _ := reliablePair(0, 7, 4)
	if err := sender.Send([]byte("0123456789abcdef")); err != nil { // 4 packets
		t.Fatal(err)
	}
	// On a lossless link the final cumulative ack clears everything.
	if sender.Outstanding() != 0 {
		t.Errorf("outstanding = %d", sender.Outstanding())
	}
}

func TestTickResendsOnlyUnacked(t *testing.T) {
	var wire [][]byte
	sender := NewReliableSender(4, func(b []byte) { wire = append(wire, append([]byte(nil), b...)) })
	if err := sender.Send([]byte("abcdefgh")); err != nil { // 2 packets
		t.Fatal(err)
	}
	sender.HandleAck(1) // first packet acknowledged
	if n := sender.Tick(); n != 1 {
		t.Errorf("Tick resent %d packets, want 1", n)
	}
}

// Property: for any payload, loss rate up to 40%, and MTU, the message
// either arrives intact within a bounded number of retransmission rounds.
func TestQuickReliableDelivery(t *testing.T) {
	prop := func(data []byte, seed uint64, loss uint8, mtu uint8) bool {
		rate := float64(loss%40) / 100
		sender, asm, _, _ := reliablePair(rate, seed|1, int(mtu%16)+1)
		var got []byte
		done := false
		asm.OnMessage(func(m Message) { got, done = m.Data, true })
		if err := sender.Send(data); err != nil {
			return false
		}
		for round := 0; !done && round < 500; round++ {
			sender.Tick()
		}
		return done && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: multiple messages in sequence all arrive, in order, under
// loss.
func TestQuickReliableSequence(t *testing.T) {
	prop := func(seed uint64, loss uint8) bool {
		rate := float64(loss%35) / 100
		sender, asm, _, _ := reliablePair(rate, seed|1, 3)
		var got []string
		asm.OnMessage(func(m Message) { got = append(got, string(m.Data)) })
		msgs := []string{"first", "second message", "third-and-final"}
		for _, m := range msgs {
			if err := sender.Send([]byte(m)); err != nil {
				return false
			}
		}
		for round := 0; len(got) < len(msgs) && round < 500; round++ {
			sender.Tick()
		}
		if len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if got[i] != msgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
