package proto

import (
	"reflect"

	"clam/internal/dynload"
)

// Register adds the protocol-stack classes to lib so a CLAM server can
// load them. A freshly constructed stack is wired at creation when the
// environment publishes lower layers under well-known names; otherwise
// layers attach explicitly via their Attach methods.
func Register(lib *dynload.Library) error {
	type namedEnv interface{ Named(string) (any, bool) }
	lookup := func(env any, name string) (any, bool) {
		if ne, ok := env.(namedEnv); ok {
			return ne.Named(name)
		}
		return nil, false
	}
	classes := []dynload.Class{
		{
			Name: "framer", Version: 1, Type: reflect.TypeOf(&Framer{}),
			New: func(any) (any, error) { return NewFramer(), nil },
		},
		{
			Name: "transport", Version: 1, Type: reflect.TypeOf(&Transport{}),
			New: func(env any) (any, error) {
				t := NewTransport()
				if obj, ok := lookup(env, "framer"); ok {
					if f, ok := obj.(*Framer); ok {
						t.Attach(f)
					}
				}
				return t, nil
			},
		},
		{
			Name: "assembler", Version: 1, Type: reflect.TypeOf(&Assembler{}),
			New: func(env any) (any, error) {
				a := NewAssembler()
				if obj, ok := lookup(env, "transport"); ok {
					if t, ok := obj.(*Transport); ok {
						a.Attach(t)
					}
				}
				return a, nil
			},
		},
	}
	for _, c := range classes {
		if err := lib.Register(c); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register but panics on error.
func MustRegister(lib *dynload.Library) {
	if err := Register(lib); err != nil {
		panic(err)
	}
}
