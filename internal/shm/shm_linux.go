//go:build linux

// Package shm is the same-host shared-memory transport: a pair of mmap'd
// single-producer/single-consumer byte rings (one per direction — the
// paper's two-streams-per-client design mapped onto two ring directions)
// with eventfd doorbells armed only when a side is about to sleep. The hot
// path is a lock-free ring copy with zero syscalls; the slow path is one
// write(2) to wake the parked peer. A Conn implements net.Conn, so
// wire.NewConn frames over it exactly as over a socket and the whole
// session protocol — hello/resume, heartbeats, journal, mesh, fan-out —
// rides unchanged.
//
// Rendezvous is a tiny unix-socket exchange: the server listens on
// <addr>.shm, and per accepted connection creates a segment plus four
// eventfds and passes them to the client with SCM_RIGHTS. The rendezvous
// socket then stays open as the connection's lifeline: neither side writes
// to it again, so a read returning is the peer-death (or close) signal
// that tears the rings down — which is how ring death feeds the same
// resume machinery as socket death.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Supported reports whether this platform has the shm transport.
func Supported() bool { return true }

// Segment layout. One header page, then the two rings back to back:
//
//	off 0      magic "CLAMSHM1"
//	off 8      ring size S (bytes, power of two)
//	off 64     ring 0 (client→server) cursors: head, tail, prodWait,
//	           consWait — each on its own 64-byte line
//	off 320    ring 1 (server→client) cursors, same shape
//	off 4096   ring 0 data (S bytes)
//	off 4096+S ring 1 data (S bytes)
//
// head and tail are monotonic uint64 byte counts (position = cursor & S-1),
// so used = head - tail with no empty/full ambiguity. Each cursor has
// exactly one writer: the producer owns head and prodWait, the consumer
// owns tail and consWait (the opposite side clears the wait flags with a
// Swap when it rings the doorbell).
const (
	segMagic   = 0x434c414d53484d31 // "CLAMSHM1"
	hdrBytes   = 4096
	cursorBase = 64
	cursorLine = 64
	ringStride = 4 * cursorLine

	// MinRing / MaxRing bound the per-direction ring size.
	MinRing = 64 << 10
	MaxRing = 64 << 20
	// DefaultRing is the per-direction ring size when the caller passes 0.
	DefaultRing = 1 << 20
)

// handshake message: magic, ring size, reserved.
const helloBytes = 24

// spinReads bounds the busy-wait before a starved consumer (or a producer
// facing a full ring) arms its doorbell and parks: long enough that a
// same-host round trip completes inside the window (so steady ping-pong
// never syscalls), short enough that an idle connection parks within a
// few microseconds.
const spinReads = 4096

// spinYieldMask picks how often the spin loop yields the processor. On a
// multi-core host the peer runs concurrently, so the loop mostly watches
// the cursor and yields rarely; on a single core nothing can change
// between yields — the peer needs our processor to make progress — so
// spinning between them is pure waste and the loop yields every pass.
var spinYieldMask = func() int {
	if runtime.NumCPU() <= 1 {
		return 0
	}
	return 63
}()

// Package-wide counters for TransportStats.
var (
	statDials     atomic.Uint64
	statAccepts   atomic.Uint64
	statWakeups   atomic.Uint64 // doorbell write(2)s issued
	statSleeps    atomic.Uint64 // times a side armed its doorbell and parked
	statHighWater atomic.Uint64 // max bytes observed queued in any ring
)

// Stats is a snapshot of process-wide shm transport activity.
type Stats struct {
	Dials           uint64 // successful client rendezvous
	Accepts         uint64 // successful server rendezvous
	DoorbellWakeups uint64 // eventfd writes (slow-path wakeups)
	DoorbellSleeps  uint64 // parks behind an armed doorbell
	RingHighWater   uint64 // max bytes queued in any ring
}

// Snapshot returns the current transport counters.
func Snapshot() Stats {
	return Stats{
		Dials:           statDials.Load(),
		Accepts:         statAccepts.Load(),
		DoorbellWakeups: statWakeups.Load(),
		DoorbellSleeps:  statSleeps.Load(),
		RingHighWater:   statHighWater.Load(),
	}
}

func maxHighWater(n uint64) {
	for {
		cur := statHighWater.Load()
		if n <= cur || statHighWater.CompareAndSwap(cur, n) {
			return
		}
	}
}

// segment is one mmap'd region shared by the two ends. The mapping is
// released by a finalizer, never explicitly: a Conn may die while the
// peer's copies of the doorbells are still live, and unmapping under a
// concurrent ring copy would fault.
type segment struct {
	mem []byte
}

func newSegmentMap(mem []byte) *segment {
	s := &segment{mem: mem}
	runtime.SetFinalizer(s, func(s *segment) { syscall.Munmap(s.mem) })
	return s
}

func (s *segment) u64(off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&s.mem[off]))
}

// ring is one direction of the segment.
type ring struct {
	data     []byte
	size     uint64
	head     *atomic.Uint64 // producer cursor
	tail     *atomic.Uint64 // consumer cursor
	prodWait *atomic.Uint64 // producer armed its space doorbell
	consWait *atomic.Uint64 // consumer armed its data doorbell
}

func (s *segment) ring(i int, size uint64) *ring {
	base := cursorBase + i*ringStride
	dataOff := hdrBytes + uint64(i)*size
	return &ring{
		data:     s.mem[dataOff : dataOff+size : dataOff+size],
		size:     size,
		head:     s.u64(base),
		tail:     s.u64(base + cursorLine),
		prodWait: s.u64(base + 2*cursorLine),
		consWait: s.u64(base + 3*cursorLine),
	}
}

// roundRing normalizes a requested per-direction ring size: 0 means
// DefaultRing, otherwise clamp to [MinRing, MaxRing] and round up to a
// power of two (the cursors mask with size-1).
func roundRing(n int) uint64 {
	if n <= 0 {
		return DefaultRing
	}
	if n < MinRing {
		n = MinRing
	}
	if n > MaxRing {
		n = MaxRing
	}
	s := uint64(MinRing)
	for s < uint64(n) {
		s <<= 1
	}
	return s
}

// Addr is the address of an shm endpoint; Network is "shm", which is how
// the server's accept path tells ring sessions from socket fallbacks.
type Addr struct{ Path string }

func (a Addr) Network() string { return "shm" }
func (a Addr) String() string  { return a.Path }

// Conn is one end of a ring pair. It implements net.Conn; deadlines are
// accepted and ignored (nothing above this transport sets them).
type Conn struct {
	seg *segment
	rd  *ring // ring this end consumes
	wr  *ring // ring this end produces

	rdData  *os.File // parked on when rd is empty (peer writes it)
	rdSpace *os.File // written to wake the peer when rd drains
	wrData  *os.File // written to wake the peer when wr fills
	wrSpace *os.File // parked on when wr is full (peer writes it)

	lifeline net.Conn
	addr     Addr

	closed    atomic.Bool
	closeOnce sync.Once
	hw        uint64 // producer-side high-water for this conn's write ring
}

func newConn(seg *segment, size uint64, server bool, efds [4]*os.File, life net.Conn, addr Addr) *Conn {
	c := &Conn{seg: seg, lifeline: life, addr: addr}
	if server {
		c.rd, c.wr = seg.ring(0, size), seg.ring(1, size)
		c.rdData, c.rdSpace = efds[0], efds[1]
		c.wrData, c.wrSpace = efds[2], efds[3]
	} else {
		c.rd, c.wr = seg.ring(1, size), seg.ring(0, size)
		c.rdData, c.rdSpace = efds[2], efds[3]
		c.wrData, c.wrSpace = efds[0], efds[1]
	}
	// The lifeline carries no bytes after the handshake: a read returning
	// at all means the peer closed or died, so tear our end down, which
	// wakes anything parked on a doorbell into io.EOF.
	go func() {
		var b [1]byte
		c.lifeline.Read(b[:])
		c.Close()
	}()
	return c
}

// ringDoorbell wakes the peer parked on f. Errors are ignored: the only
// failure modes are a concurrently-closed file (shutdown race) and an
// eventfd counter at max, both of which mean no wakeup is needed.
func ringDoorbell(f *os.File) {
	var one [8]byte
	one[7] = 1
	f.Write(one[:])
	statWakeups.Add(1)
}

// park blocks until the peer rings f (the runtime poller parks the
// goroutine; a pending doorbell returns immediately and drains the
// counter). Returns io.EOF if the conn closed while parked.
func (c *Conn) park(f *os.File) error {
	statSleeps.Add(1)
	var buf [8]byte
	_, err := f.Read(buf[:])
	if err != nil {
		if c.closed.Load() {
			return io.EOF
		}
		return err
	}
	return nil
}

// Read copies out whatever the read ring holds, blocking (spin, then
// doorbell park) while it is empty. Returns io.EOF once the conn is
// closed, which wire maps to its ErrClosed family — the same shape as a
// dead socket.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	r := c.rd
	for {
		if c.closed.Load() {
			return 0, io.EOF
		}
		tail := r.tail.Load()
		avail := r.head.Load() - tail
		if avail == 0 {
			if !c.waitData(r, tail) {
				continue // woke or data raced in; re-evaluate
			}
			return 0, io.EOF
		}
		n := uint64(len(p))
		if n > avail {
			n = avail
		}
		pos := tail & (r.size - 1)
		first := r.size - pos
		if first >= n {
			copy(p, r.data[pos:pos+n])
		} else {
			copy(p, r.data[pos:])
			copy(p[first:], r.data[:n-first])
		}
		r.tail.Store(tail + n)
		if r.prodWait.Swap(0) == 1 {
			ringDoorbell(c.rdSpace)
		}
		return int(n), nil
	}
}

// waitData blocks until the ring has bytes past tail (returns false) or
// the conn dies (returns true). Spin first; then arm the doorbell and
// recheck before parking — the recheck, ordered after the armed flag by
// the sequentially consistent atomics, is what makes the lost-wakeup
// window impossible (the producer publishes head before it swaps the
// flag, so either it sees the flag and rings, or the recheck sees head).
func (c *Conn) waitData(r *ring, tail uint64) (dead bool) {
	for i := 0; i < spinReads; i++ {
		if r.head.Load() != tail {
			return false
		}
		if i&spinYieldMask == spinYieldMask {
			if c.closed.Load() {
				return true
			}
			runtime.Gosched()
		}
	}
	r.consWait.Store(1)
	if r.head.Load() != tail {
		r.consWait.Store(0)
		return false
	}
	if c.closed.Load() {
		return true
	}
	if c.park(c.rdData) != nil {
		return true
	}
	return false
}

// Write copies p into the write ring, blocking (spin, then doorbell park)
// whenever the ring is full — the transport's backpressure. Short writes
// never happen: either all of p is queued or the conn died.
func (c *Conn) Write(p []byte) (int, error) {
	w := c.wr
	total := len(p)
	for len(p) > 0 {
		if c.closed.Load() {
			return total - len(p), io.ErrClosedPipe
		}
		head := w.head.Load()
		used := head - w.tail.Load()
		free := w.size - used
		if free == 0 {
			if c.waitSpace(w, head) {
				return total - len(p), io.ErrClosedPipe
			}
			continue
		}
		n := uint64(len(p))
		if n > free {
			n = free
		}
		pos := head & (w.size - 1)
		first := w.size - pos
		if first >= n {
			copy(w.data[pos:], p[:n])
		} else {
			copy(w.data[pos:], p[:first])
			copy(w.data, p[first:n])
		}
		w.head.Store(head + n)
		if q := used + n; q > c.hw {
			c.hw = q
			maxHighWater(q)
		}
		if w.consWait.Swap(0) == 1 {
			ringDoorbell(c.wrData)
		}
		p = p[n:]
	}
	return total, nil
}

// waitSpace is waitData's mirror for a full ring.
func (c *Conn) waitSpace(w *ring, head uint64) (dead bool) {
	for i := 0; i < spinReads; i++ {
		if head-w.tail.Load() < w.size {
			return false
		}
		if i&spinYieldMask == spinYieldMask {
			if c.closed.Load() {
				return true
			}
			runtime.Gosched()
		}
	}
	w.prodWait.Store(1)
	if head-w.tail.Load() < w.size {
		w.prodWait.Store(0)
		return false
	}
	if c.closed.Load() {
		return true
	}
	if c.park(c.wrSpace) != nil {
		return true
	}
	return false
}

// Close tears this end down: marks the conn dead, closes the doorbells
// this end parks on (interrupting a parked Read/Write), and closes the
// lifeline so the peer's watcher fires and does the same over there.
// The mapping itself is released by the segment finalizer once neither
// ring can be touched.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.rdData.Close()
		c.wrSpace.Close()
		c.lifeline.Close()
		// Ring the peer's doorbells before dropping our write ends: if it
		// is parked it wakes now instead of waiting for its lifeline watcher.
		ringDoorbell(c.rdSpace)
		ringDoorbell(c.wrData)
		c.rdSpace.Close()
		c.wrData.Close()
	})
	return nil
}

func (c *Conn) LocalAddr() net.Addr                { return c.addr }
func (c *Conn) RemoteAddr() net.Addr               { return c.addr }
func (c *Conn) SetDeadline(t time.Time) error      { return nil }
func (c *Conn) SetReadDeadline(t time.Time) error  { return nil }
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// --- segment construction and rendezvous ------------------------------------

// createSegment makes the backing file (tmpfs when available, unlinked
// immediately so it can never outlive its fds), sizes it, and maps it.
// The returned fd is still open — the broker needs it for SCM_RIGHTS.
func createSegment(size uint64) (*segment, int, error) {
	total := int64(hdrBytes + 2*size)
	f, err := os.CreateTemp("/dev/shm", "clam-ring-*")
	if err != nil {
		if f, err = os.CreateTemp("", "clam-ring-*"); err != nil {
			return nil, -1, fmt.Errorf("shm: segment create: %w", err)
		}
	}
	os.Remove(f.Name())
	if err := f.Truncate(total); err != nil {
		f.Close()
		return nil, -1, fmt.Errorf("shm: segment size: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(total),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, -1, fmt.Errorf("shm: mmap: %w", err)
	}
	seg := newSegmentMap(mem)
	seg.u64(0).Store(segMagic)
	seg.u64(8).Store(size)
	// Hand the raw fd to the caller; keep f from closing it via finalizer.
	fd, err := syscall.Dup(int(f.Fd()))
	f.Close()
	if err != nil {
		return nil, -1, fmt.Errorf("shm: dup: %w", err)
	}
	return seg, fd, nil
}

func mapSegment(fd int) (*segment, uint64, error) {
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return nil, 0, fmt.Errorf("shm: fstat segment: %w", err)
	}
	mem, err := syscall.Mmap(fd, 0, int(st.Size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, 0, fmt.Errorf("shm: mmap segment: %w", err)
	}
	seg := newSegmentMap(mem)
	if seg.u64(0).Load() != segMagic {
		return nil, 0, errors.New("shm: bad segment magic")
	}
	size := seg.u64(8).Load()
	if size < MinRing || size > MaxRing || size&(size-1) != 0 ||
		uint64(len(mem)) != hdrBytes+2*size {
		return nil, 0, fmt.Errorf("shm: bad segment geometry (ring %d, map %d)", size, len(mem))
	}
	return seg, size, nil
}

// newEventfd returns a nonblocking close-on-exec eventfd.
func newEventfd() (int, error) {
	fd, _, errno := syscall.Syscall(syscall.SYS_EVENTFD2, 0,
		uintptr(syscall.O_CLOEXEC|syscall.O_NONBLOCK), 0)
	if errno != 0 {
		return -1, fmt.Errorf("shm: eventfd: %w", errno)
	}
	return int(fd), nil
}

// listener is the rendezvous broker: a unix listener whose Accept performs
// the segment/fd handshake and returns the server end of a ring pair.
type listener struct {
	ln       *net.UnixListener
	ringSize uint64
	path     string
}

// Listen starts an shm rendezvous broker at path (conventionally the
// serving socket's path + ".shm"). ringBytes is the per-direction ring
// size; 0 means DefaultRing. The returned listener yields *Conn values
// from Accept, so it can be fed straight into an ordinary serve loop.
func Listen(path string, ringBytes int) (net.Listener, error) {
	os.Remove(path)
	ln, err := net.ListenUnix("unix", &net.UnixAddr{Name: path, Net: "unix"})
	if err != nil {
		return nil, fmt.Errorf("shm: broker listen: %w", err)
	}
	return &listener{ln: ln, ringSize: roundRing(ringBytes), path: path}, nil
}

func (l *listener) Addr() net.Addr { return Addr{Path: l.path} }
func (l *listener) Close() error   { return l.ln.Close() }

func (l *listener) Accept() (net.Conn, error) {
	for {
		uc, err := l.ln.AcceptUnix()
		if err != nil {
			return nil, err
		}
		c, err := l.handshake(uc)
		if err != nil {
			// A broken rendezvous (client vanished mid-handshake, fd limit)
			// poisons one client, not the broker: drop it and keep accepting.
			uc.Close()
			continue
		}
		statAccepts.Add(1)
		return c, nil
	}
}

// handshake builds the segment and doorbells for one client and ships
// them with SCM_RIGHTS. The unix conn stays open as the lifeline.
func (l *listener) handshake(uc *net.UnixConn) (*Conn, error) {
	seg, segFD, err := createSegment(l.ringSize)
	if err != nil {
		return nil, err
	}
	defer syscall.Close(segFD)
	raw := make([]int, 0, 4)
	closeRaw := func() {
		for _, fd := range raw {
			syscall.Close(fd)
		}
	}
	for i := 0; i < 4; i++ {
		fd, err := newEventfd()
		if err != nil {
			closeRaw()
			return nil, err
		}
		raw = append(raw, fd)
	}
	var hello [helloBytes]byte
	binary.BigEndian.PutUint64(hello[0:8], segMagic)
	binary.BigEndian.PutUint64(hello[8:16], l.ringSize)
	rights := syscall.UnixRights(segFD, raw[0], raw[1], raw[2], raw[3])
	uc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := uc.WriteMsgUnix(hello[:], rights, nil); err != nil {
		closeRaw()
		return nil, fmt.Errorf("shm: send rendezvous: %w", err)
	}
	uc.SetDeadline(time.Time{})
	var efds [4]*os.File
	for i, fd := range raw {
		efds[i] = os.NewFile(uintptr(fd), fmt.Sprintf("shm-doorbell-%d", i))
	}
	return newConn(seg, l.ringSize, true, efds, uc, Addr{Path: l.path}), nil
}

// Dial connects to the rendezvous broker at path and returns the client
// end of a fresh ring pair. Failure is cheap and clean (no broker, wrong
// magic, timeout), which is what makes shm-first-with-socket-fallback a
// safe default.
func Dial(path string) (net.Conn, error) {
	uc, err := net.DialUnix("unix", nil, &net.UnixAddr{Name: path, Net: "unix"})
	if err != nil {
		return nil, err
	}
	c, err := dialHandshake(uc, path)
	if err != nil {
		uc.Close()
		return nil, err
	}
	statDials.Add(1)
	return c, nil
}

func dialHandshake(uc *net.UnixConn, path string) (*Conn, error) {
	uc.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, helloBytes)
	oob := make([]byte, syscall.CmsgSpace(5*4))
	n, oobn, _, _, err := uc.ReadMsgUnix(buf, oob)
	if err != nil {
		return nil, fmt.Errorf("shm: rendezvous read: %w", err)
	}
	uc.SetDeadline(time.Time{})
	if n < helloBytes || binary.BigEndian.Uint64(buf[0:8]) != segMagic {
		return nil, errors.New("shm: bad rendezvous hello")
	}
	msgs, err := syscall.ParseSocketControlMessage(oob[:oobn])
	if err != nil || len(msgs) != 1 {
		return nil, errors.New("shm: bad rendezvous control message")
	}
	fds, err := syscall.ParseUnixRights(&msgs[0])
	if err != nil || len(fds) != 5 {
		for _, fd := range fds {
			syscall.Close(fd)
		}
		return nil, errors.New("shm: rendezvous did not carry 5 fds")
	}
	seg, size, err := mapSegment(fds[0])
	syscall.Close(fds[0])
	if err != nil {
		for _, fd := range fds[1:] {
			syscall.Close(fd)
		}
		return nil, err
	}
	if size != roundRing(int(binary.BigEndian.Uint64(buf[8:16]))) {
		// Trust the mapped geometry; the hello is advisory.
		_ = size
	}
	var efds [4]*os.File
	for i, fd := range fds[1:] {
		syscall.SetNonblock(fd, true)
		efds[i] = os.NewFile(uintptr(fd), fmt.Sprintf("shm-doorbell-%d", i))
	}
	return newConn(seg, size, false, efds, uc, Addr{Path: path}), nil
}

// BrokerPath is the rendezvous socket path derived from a serving
// address: the well-known suffix both ends agree on.
func BrokerPath(addr string) string { return addr + ".shm" }
