//go:build !linux

// Package shm is the same-host shared-memory transport. On platforms
// without eventfd it compiles to a stub: Supported reports false and the
// dial/listen entry points fail cleanly, so callers fall back to sockets.
package shm

import (
	"errors"
	"net"
)

// ErrUnsupported is returned by Listen and Dial on platforms without the
// shm transport.
var ErrUnsupported = errors.New("shm: not supported on this platform")

// Supported reports whether this platform has the shm transport.
func Supported() bool { return false }

// Stats is a snapshot of process-wide shm transport activity.
type Stats struct {
	Dials           uint64
	Accepts         uint64
	DoorbellWakeups uint64
	DoorbellSleeps  uint64
	RingHighWater   uint64
}

// Snapshot returns the current transport counters (all zero here).
func Snapshot() Stats { return Stats{} }

// Listen fails with ErrUnsupported.
func Listen(path string, ringBytes int) (net.Listener, error) { return nil, ErrUnsupported }

// Dial fails with ErrUnsupported.
func Dial(path string) (net.Conn, error) { return nil, ErrUnsupported }

// BrokerPath is the rendezvous socket path derived from a serving address.
func BrokerPath(addr string) string { return addr + ".shm" }
