//go:build linux

package shm

import (
	"bytes"
	"errors"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clam/internal/wire"
)

// pair dials through a real broker and returns both ends.
func pair(t *testing.T, ringBytes int) (client, server net.Conn) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "b.shm")
	ln, err := Listen(path, ringBytes)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cl, err := Dial(path)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("Accept: %v", r.err)
	}
	t.Cleanup(func() { cl.Close(); r.c.Close() })
	return cl, r.c
}

func TestRoundTrip(t *testing.T) {
	cl, sv := pair(t, 0)
	msg := []byte("hello over the ring")
	if _, err := cl.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(sv, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if _, err := sv.Write(msg); err != nil {
		t.Fatalf("server write: %v", err)
	}
	if _, err := io.ReadFull(cl, got); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reply got %q want %q", got, msg)
	}
}

// TestWraparound pushes enough traffic through a minimum-size ring that
// every copy position is exercised, with message sizes chosen to land
// frames across the wrap boundary, and checks byte-exact delivery.
func TestWraparound(t *testing.T) {
	cl, sv := pair(t, MinRing)
	const total = 8 * MinRing
	pattern := make([]byte, 7919) // prime length so the wrap point walks
	for i := range pattern {
		pattern[i] = byte(i * 31)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sent := 0
		for sent < total {
			n := len(pattern)
			if total-sent < n {
				n = total - sent
			}
			if _, err := cl.Write(pattern[:n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			sent += n
		}
	}()
	got := make([]byte, total)
	if _, err := io.ReadFull(sv, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	wg.Wait()
	for i := range got {
		want := pattern[i%len(pattern)]
		if got[i] != want {
			t.Fatalf("byte %d: got %d want %d", i, got[i], want)
		}
	}
}

// TestBackpressure fills the ring with no consumer, proves the producer
// blocks, then drains and proves it completes without losing a byte.
func TestBackpressure(t *testing.T) {
	cl, sv := pair(t, MinRing)
	payload := make([]byte, 2*MinRing) // twice the ring: must block midway
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Write(payload)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("write of 2x ring completed with no consumer (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// blocked, as it must be
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(sv, got); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("write after drain: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across backpressure stall")
	}
	if s := Snapshot(); s.DoorbellSleeps == 0 {
		t.Error("expected at least one doorbell park during backpressure")
	}
}

// TestTornFrameAtBoundary frames real wire messages over the ring and
// sizes them so frames repeatedly straddle the wrap point; every frame
// must reassemble intact.
func TestTornFrameAtBoundary(t *testing.T) {
	cl, sv := pair(t, MinRing)
	wc, ws := wire.NewConn(cl), wire.NewConn(sv)
	body := make([]byte, MinRing/3+101) // ~1/3 ring so every third frame wraps
	for i := range body {
		body[i] = byte(i * 7)
	}
	const frames = 64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			if err := ws.Send(&wire.Msg{Type: wire.MsgUpcall, Seq: uint64(i), Body: body}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < frames; i++ {
		m, err := wc.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Seq != uint64(i) || !bytes.Equal(m.Body, body) {
			t.Fatalf("frame %d torn: seq=%d len=%d", i, m.Seq, len(m.Body))
		}
		m.Release()
	}
	wg.Wait()
}

// TestCloseWakesReader parks a reader on an empty ring, closes the same
// end, and expects a prompt EOF.
func TestCloseWakesReader(t *testing.T) {
	cl, sv := pair(t, 0)
	_ = sv
	errc := make(chan error, 1)
	go func() {
		var b [8]byte
		_, err := cl.Read(b[:])
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it park
	cl.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("reader got %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still parked after close")
	}
}

// TestPeerDeathWakesReader kills the far end and expects this end's
// parked reader to be torn down via the lifeline, just as a socket
// reader sees a reset.
func TestPeerDeathWakesReader(t *testing.T) {
	cl, sv := pair(t, 0)
	errc := make(chan error, 1)
	go func() {
		var b [8]byte
		_, err := sv.Read(b[:])
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cl.Close() // "peer dies"
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("server reader got %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server reader not woken by peer death")
	}
}

// TestPeerDeathUnblocksWriter blocks a writer against a full ring and
// kills the consumer side; the writer must fail out instead of hanging.
func TestPeerDeathUnblocksWriter(t *testing.T) {
	cl, sv := pair(t, MinRing)
	errc := make(chan error, 1)
	go func() {
		big := make([]byte, 4*MinRing)
		_, err := cl.Write(big)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // writer fills the ring and parks
	sv.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blocked writer completed after peer death")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer still parked after peer death")
	}
}

// TestFallbackDialFails proves a dial against a missing broker fails fast
// (that failure is the fallback trigger).
func TestFallbackDialFails(t *testing.T) {
	start := time.Now()
	if _, err := Dial(filepath.Join(t.TempDir(), "nope.shm")); err == nil {
		t.Fatal("dial of missing broker succeeded")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("missing-broker dial took %v, want fast failure", d)
	}
}

// TestConcurrentBidirectional runs full-duplex traffic with the race
// detector watching the cursor protocol.
func TestConcurrentBidirectional(t *testing.T) {
	cl, sv := pair(t, MinRing)
	const total = 2 * MinRing
	run := func(w net.Conn, r net.Conn, seed byte, errc chan<- error) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := range buf {
				buf[i] = seed
			}
			for sent := 0; sent < total; sent += len(buf) {
				if _, err := w.Write(buf); err != nil {
					errc <- err
					return
				}
			}
		}()
		got := make([]byte, total)
		if _, err := io.ReadFull(r, got); err != nil {
			errc <- err
			return
		}
		for i := range got {
			if got[i] != seed {
				errc <- errors.New("cross-direction corruption")
				return
			}
		}
		wg.Wait()
		errc <- nil
	}
	e1, e2 := make(chan error, 2), make(chan error, 2)
	go run(cl, sv, 0xAA, e1) // client→server with seed AA
	go run(sv, cl, 0x55, e2) // server→client with seed 55
	if err := <-e1; err != nil {
		t.Fatalf("c2s: %v", err)
	}
	if err := <-e2; err != nil {
		t.Fatalf("s2c: %v", err)
	}
}
