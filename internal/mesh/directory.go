// Package mesh implements the consistent-hash directory behind CLAM's
// federated server mesh (core's JoinMesh).
//
// The paper composes address spaces vertically — each call or upcall hops
// one layer down or up (§1, §2). The mesh generalizes the same hop
// horizontally: N peer servers share one object space, partitioned by
// hashing object-handle tags (and well-known names) onto a ring of
// virtual nodes. Every peer computes the same ring from the same
// membership, so any peer can answer "who owns this?" locally, with no
// directory service in the call path.
//
// The directory is membership + arithmetic only. It holds no connections
// and does no I/O; core wires its answers to peer links, breakers and
// heartbeats. Ownership is deliberately sticky: a peer marked down KEEPS
// its arcs — its objects are unreachable (fail fast with ErrPeerDown),
// not silently re-homed, because handles are capabilities into one
// specific server's table and cannot float to a peer that never minted
// them.
package mesh

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is how many ring points each member projects when the
// caller does not choose. 64 keeps the arc-size spread within a few
// percent for small meshes while the full ring stays tiny (N×64 points).
const DefaultVNodes = 64

// Peer describes one mesh member as the directory knows it.
type Peer struct {
	// Name is the member's unique mesh name.
	Name string
	// Network and Addr are where the member listens, as given to Add —
	// dialing information for peers that want a link. Either may be empty
	// for in-process members.
	Network, Addr string
	// Up reports the membership layer's current belief about liveness.
	Up bool
}

type member struct {
	network, addr string
	up            bool
}

// point is one virtual node: a position on the 64-bit ring owned by a
// member.
type point struct {
	hash  uint64
	owner string
}

// Directory is a consistent-hash ring over the mesh's members. All
// methods are safe for concurrent use. The zero value is not usable;
// call New.
type Directory struct {
	self   string
	vnodes int

	mu      sync.RWMutex
	members map[string]*member
	ring    []point // sorted by hash
}

// New returns a directory for a mesh this process joins as self (listening
// on network/addr, recorded for peers who fetch the roster). vnodes <= 0
// selects DefaultVNodes. Self starts as the only member, up.
func New(self, network, addr string, vnodes int) *Directory {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	d := &Directory{
		self:    self,
		vnodes:  vnodes,
		members: make(map[string]*member),
	}
	d.members[self] = &member{network: network, addr: addr, up: true}
	d.rebuild()
	return d
}

// Self returns this member's name.
func (d *Directory) Self() string { return d.self }

// Add introduces (or re-announces) a member. Ring points move minimally:
// only keys whose nearest point now belongs to the new member change
// owners. Re-adding an existing member updates its address and marks it
// up. Adding is idempotent.
func (d *Directory) Add(name, network, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.members[name]
	if m == nil {
		m = &member{}
		d.members[name] = m
	}
	m.network, m.addr, m.up = network, addr, true
	d.rebuild()
}

// Remove withdraws a member and its ring points entirely — permanent
// departure, not failure. Keys it owned redistribute to ring successors.
// Removing self is ignored.
func (d *Directory) Remove(name string) {
	if name == d.self {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.members[name]; !ok {
		return
	}
	delete(d.members, name)
	d.rebuild()
}

// SetUp records the membership layer's liveness belief about name. A down
// member keeps its ring arcs (see the package comment); only routing
// callers consult Up to fail fast.
func (d *Directory) SetUp(name string, up bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[name]; ok {
		m.up = up
	}
}

// Up reports the current liveness belief about name; unknown members are
// down.
func (d *Directory) Up(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m, ok := d.members[name]
	return ok && m.up
}

// Owner maps a key — an object-handle tag, or a hashed name — to the
// member owning its ring arc.
func (d *Directory) Owner(key uint64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.ring) == 0 {
		return d.self
	}
	// The owner is the first ring point at or after the key, wrapping.
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= key })
	if i == len(d.ring) {
		i = 0
	}
	return d.ring[i].owner
}

// OwnerOfName maps a well-known object name to its owning member.
func (d *Directory) OwnerOfName(name string) string {
	return d.Owner(HashName(name))
}

// Owns reports whether this member owns key's arc.
func (d *Directory) Owns(key uint64) bool { return d.Owner(key) == d.self }

// Peers returns the membership roster, sorted by name, self included.
func (d *Directory) Peers() []Peer {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Peer, 0, len(d.members))
	for name, m := range d.members {
		out = append(out, Peer{Name: name, Network: m.network, Addr: m.addr, Up: m.up})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the member count, self included.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.members)
}

// UpCount reports how many members are currently believed up.
func (d *Directory) UpCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, m := range d.members {
		if m.up {
			n++
		}
	}
	return n
}

// rebuild recomputes the ring from the membership. Caller holds d.mu.
// Each member projects vnodes points at fnv64a("name#i"); because a
// member's points depend only on its own name, membership changes move
// only the arcs adjacent to the changed member's points — the consistent
// hashing property.
func (d *Directory) rebuild() {
	ring := make([]point, 0, len(d.members)*d.vnodes)
	for name := range d.members {
		for i := 0; i < d.vnodes; i++ {
			ring = append(ring, point{hash: HashName(fmt.Sprintf("%s#%d", name, i)), owner: name})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].owner < ring[j].owner // deterministic on (vanishingly rare) collisions
	})
	d.ring = ring
}

// HashName is the mesh's one hash function — 64-bit FNV-1a finished with
// a splitmix64 avalanche — used for ring points, name keys and (through
// the tag minter's arcs) handle tags, so every peer computes identical
// placements. The finisher matters: raw FNV-1a barely diffuses the short,
// similar strings vnodes produce ("a#0", "a#1", …), which clusters a
// member's points and ruins arc balance.
func HashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
