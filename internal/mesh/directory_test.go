package mesh

import (
	"fmt"
	"testing"
)

func TestDirectorySelfOnly(t *testing.T) {
	d := New("a", "unix", "/tmp/a.sock", 0)
	if d.Self() != "a" {
		t.Fatalf("Self = %q", d.Self())
	}
	if d.Len() != 1 || d.UpCount() != 1 {
		t.Fatalf("Len=%d UpCount=%d, want 1/1", d.Len(), d.UpCount())
	}
	for _, key := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		if got := d.Owner(key); got != "a" {
			t.Fatalf("Owner(%d) = %q, want a", key, got)
		}
	}
	if !d.Owns(HashName("anything")) {
		t.Fatal("sole member must own every key")
	}
}

func TestDirectoryAgreement(t *testing.T) {
	// Every member computes the same ring from the same membership.
	mk := func(self string) *Directory {
		d := New(self, "unix", "/"+self, 0)
		for _, n := range []string{"a", "b", "c"} {
			if n != self {
				d.Add(n, "unix", "/"+n)
			}
		}
		return d
	}
	da, db, dc := mk("a"), mk("b"), mk("c")
	for i := 0; i < 1000; i++ {
		key := HashName(fmt.Sprintf("obj-%d", i))
		oa, ob, oc := da.Owner(key), db.Owner(key), dc.Owner(key)
		if oa != ob || ob != oc {
			t.Fatalf("key %d: owners disagree: a=%q b=%q c=%q", key, oa, ob, oc)
		}
	}
}

func TestDirectoryBalance(t *testing.T) {
	d := New("a", "", "", 0)
	d.Add("b", "", "")
	d.Add("c", "", "")
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[d.Owner(HashName(fmt.Sprintf("key-%d", i)))]++
	}
	for _, name := range []string{"a", "b", "c"} {
		n := counts[name]
		// With 64 vnodes each, every member should land well within 2x of
		// its fair share — the test guards against a broken ring, not
		// variance.
		if n < keys/6 || n > keys/2+keys/6 {
			t.Fatalf("member %q owns %d of %d keys: badly unbalanced (%v)", name, n, keys, counts)
		}
	}
}

func TestDirectoryMinimalMovement(t *testing.T) {
	d := New("a", "", "", 0)
	d.Add("b", "", "")
	const keys = 2000
	before := make([]string, keys)
	for i := range before {
		before[i] = d.Owner(HashName(fmt.Sprintf("key-%d", i)))
	}
	d.Add("c", "", "")
	moved, toNew := 0, 0
	for i := range before {
		after := d.Owner(HashName(fmt.Sprintf("key-%d", i)))
		if after != before[i] {
			moved++
			if after == "c" {
				toNew++
			}
		}
	}
	if moved != toNew {
		t.Fatalf("%d keys moved but only %d moved to the new member — keys must never shuffle between survivors", moved, toNew)
	}
	// c should take roughly a third; anything past half signals churn.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding one member moved %d of %d keys", moved, keys)
	}
}

func TestDirectoryDownKeepsOwnership(t *testing.T) {
	d := New("a", "", "", 0)
	d.Add("b", "", "")
	var key uint64
	for i := 0; ; i++ {
		key = HashName(fmt.Sprintf("probe-%d", i))
		if d.Owner(key) == "b" {
			break
		}
	}
	d.SetUp("b", false)
	if d.Up("b") {
		t.Fatal("b should be down")
	}
	if got := d.Owner(key); got != "b" {
		t.Fatalf("down member lost ownership: Owner = %q", got)
	}
	if d.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", d.UpCount())
	}
	d.Add("b", "", "") // re-announce marks it up again
	if !d.Up("b") {
		t.Fatal("re-added member should be up")
	}
}

func TestDirectoryRemove(t *testing.T) {
	d := New("a", "", "", 0)
	d.Add("b", "", "")
	d.Remove("b")
	if d.Len() != 1 {
		t.Fatalf("Len = %d after remove, want 1", d.Len())
	}
	d.Remove("a") // removing self is a no-op
	if d.Len() != 1 {
		t.Fatal("self must not be removable")
	}
	if d.Up("b") {
		t.Fatal("removed member must read as down")
	}
}

func TestDirectoryPeersRoster(t *testing.T) {
	d := New("b", "unix", "/b", 0)
	d.Add("a", "tcp", "127.0.0.1:9")
	d.SetUp("a", false)
	ps := d.Peers()
	if len(ps) != 2 || ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("Peers = %+v", ps)
	}
	if ps[0].Up || !ps[1].Up {
		t.Fatalf("up flags wrong: %+v", ps)
	}
	if ps[0].Network != "tcp" || ps[0].Addr != "127.0.0.1:9" {
		t.Fatalf("address not kept: %+v", ps[0])
	}
}
