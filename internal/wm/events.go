package wm

import "fmt"

// Input events. "Input is inherently asynchronous at some level.
// Asynchronous input events should be able to propagate up through the
// layers in a system, with each layer given the opportunity to map the
// event, queue it, discard it, or pass it up to the next layer" (§2).
// These are the payloads that flow through those upcalls; they are flat
// structs so the automatic bundlers handle them.

// Mouse event kinds.
const (
	MouseMove int16 = iota + 1
	MouseDown
	MouseUp
)

// Mouse buttons (bit mask).
const (
	ButtonLeft uint16 = 1 << iota
	ButtonMiddle
	ButtonRight
)

// MouseEvent is a low-level pointing-device event. X and Y are in the
// coordinate space of whichever layer delivers the event; each layer
// translates as it maps the event upward — "the return values from the
// procedures form an upward mapping of the input abstraction".
type MouseEvent struct {
	Kind    int16
	X, Y    int16
	Buttons uint16
}

// Pos returns the event position.
func (e MouseEvent) Pos() Point { return Point{X: e.X, Y: e.Y} }

// Translated returns the event shifted into a child coordinate space.
func (e MouseEvent) Translated(dx, dy int16) MouseEvent {
	e.X += dx
	e.Y += dy
	return e
}

// String renders the event.
func (e MouseEvent) String() string {
	kind := "move"
	switch e.Kind {
	case MouseDown:
		kind = "down"
	case MouseUp:
		kind = "up"
	}
	return fmt.Sprintf("mouse-%s@(%d,%d) buttons=%#x", kind, e.X, e.Y, e.Buttons)
}

// KeyEvent is a low-level keyboard event.
type KeyEvent struct {
	Code int32
	Down bool
}

// String renders the event.
func (e KeyEvent) String() string {
	dir := "up"
	if e.Down {
		dir = "down"
	}
	return fmt.Sprintf("key-%s %d", dir, e.Code)
}
