package wm

import (
	"sync"
)

// Sweep implements the paper's running example (§2.1): "allow the user to
// be able to 'sweep' out a new window. The user invokes this function,
// and then uses the mouse to drag one corner of the window outline until
// it has the desired size and shape."
//
// "Upcalls provide a simple solution. The code to sweep out a window is
// dynamically loaded into the CLAM server. Clients can decide the details
// of window creation and load an appropriate version of the sweeping
// code. ... Low level input routines would perform an upcall to the
// sweeping layer (module). This layer would process the event, redrawing
// the window border with [each] new event. Events would be processed
// quickly, since upcalls are basically procedure calls. When the user
// finishes sweeping (indicated by pressing a mouse button), the sweeping
// layer makes an upcall to the next layer, passing the single 'window
// created' event. This last upcall could pass to an application layer
// loaded into the server or be a distributed upcall to a layer residing
// in a client."
//
// The options the paper says a built-in implementation would freeze —
// "window alignment and transparency of the sweep window" — are exactly
// the knobs this module exposes, so different clients can load different
// configurations (or different versions of the class).
type Sweep struct {
	mu  sync.Mutex
	win *Window

	active     bool
	anchor     Point
	cur        Point
	lastBorder Rect

	// Options, settable per loaded instance.
	grid        int16 // alignment: snap the final rect to this grid (0 = off)
	borderColor int64
	transparent bool // transparent sweep: skip the rubber-band redraws

	// done procedures receive the single "window created" event.
	done []func(Rect)

	// moves counts the per-motion events handled inside this layer —
	// events that never cross to the client (experiment A-2).
	moves uint64
}

// NewSweep creates a sweeping layer. Attach it to a window before
// injecting input.
func NewSweep() *Sweep {
	return &Sweep{borderColor: 255}
}

// Attach registers the sweep layer's mouse procedure with the window —
// an ordinary upcall registration; both objects live in the server, so
// each subsequent input event is handled with local procedure calls.
func (s *Sweep) Attach(w *Window) {
	s.mu.Lock()
	s.win = w
	s.mu.Unlock()
	w.PostMouse(s.Mouse)
}

// SetGrid enables alignment: the swept rectangle snaps to multiples of n.
func (s *Sweep) SetGrid(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grid = int16(n)
}

// SetTransparent selects a transparent sweep: no rubber-band border is
// drawn during the drag.
func (s *Sweep) SetTransparent(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transparent = v
}

// SetBorderColor selects the rubber-band color.
func (s *Sweep) SetBorderColor(c int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.borderColor = c
}

// OnCreated registers a procedure for the final "window created" event.
// When called remotely the procedure is a distributed-upcall proxy and
// only this single event crosses the address-space boundary.
func (s *Sweep) OnCreated(fn func(Rect)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = append(s.done, fn)
}

// Mouse is the sweeping layer's upcall procedure.
func (s *Sweep) Mouse(ev MouseEvent) {
	s.mu.Lock()
	win := s.win
	if win == nil {
		s.mu.Unlock()
		return
	}
	switch ev.Kind {
	case MouseDown:
		s.active = true
		s.anchor = ev.Pos()
		s.cur = ev.Pos()
		s.lastBorder = Rect{}
		s.mu.Unlock()
	case MouseMove:
		if !s.active {
			s.mu.Unlock()
			return
		}
		s.moves++
		s.cur = ev.Pos()
		old := s.lastBorder
		r := s.rubberLocked()
		s.lastBorder = r
		transparent := s.transparent
		color := s.borderColor
		s.mu.Unlock()
		if !transparent {
			// Erase the previous band, draw the new one: the smooth
			// visual effect the paper wants from server-side sweeping.
			if !old.Empty() {
				win.BorderRect(old, win.Background())
			}
			if !r.Empty() {
				win.BorderRect(r, color)
			}
		}
	case MouseUp:
		if !s.active {
			s.mu.Unlock()
			return
		}
		s.active = false
		s.cur = ev.Pos()
		old := s.lastBorder
		r := s.finalLocked()
		fns := append(([]func(Rect))(nil), s.done...)
		transparent := s.transparent
		s.lastBorder = Rect{}
		s.mu.Unlock()
		if !transparent && !old.Empty() {
			win.BorderRect(old, win.Background())
		}
		// The single "window created" event passes to the next layer.
		for _, fn := range fns {
			fn(r)
		}
	default:
		s.mu.Unlock()
	}
}

// rubberLocked computes the current rubber-band rectangle; s.mu held.
func (s *Sweep) rubberLocked() Rect {
	return Rect{
		X: s.anchor.X,
		Y: s.anchor.Y,
		W: s.cur.X - s.anchor.X,
		H: s.cur.Y - s.anchor.Y,
	}.Canon()
}

// finalLocked computes the finished rectangle with grid alignment; s.mu
// held.
func (s *Sweep) finalLocked() Rect {
	r := s.rubberLocked()
	if s.grid > 1 {
		g := s.grid
		snap := func(v int16) int16 { return (v / g) * g }
		snapUp := func(v int16) int16 { return ((v + g - 1) / g) * g }
		x2, y2 := snapUp(r.X+r.W), snapUp(r.Y+r.H)
		r.X, r.Y = snap(r.X), snap(r.Y)
		r.W, r.H = x2-r.X, y2-r.Y
	}
	return r
}

// MoveCount reports how many motion events the layer absorbed locally.
func (s *Sweep) MoveCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.moves)
}

// Active reports whether a sweep is in progress.
func (s *Sweep) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}
