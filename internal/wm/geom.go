// Package wm is the window-management class library built on CLAM — the
// paper's driving application (§2): "The initial use of CLAM was to build
// an extensible user interface manager, and the basic classes for screen
// and window management are running. This includes 10 main classes."
//
// None of this code is linked into the server: every class registers with
// a dynload.Library and is loaded on demand, so "the server itself ...
// contains no code specific to window management".
package wm

import "fmt"

// Point is a screen coordinate. The paper's Point uses shorts (Figure
// 3.1); int16 matches and keeps the wire format tight.
type Point struct {
	X, Y int16
}

// Add translates p by q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub translates p by -q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// In reports whether p lies inside r.
func (p Point) In(r Rect) bool {
	return p.X >= r.X && p.X < r.X+r.W && p.Y >= r.Y && p.Y < r.Y+r.H
}

// String renders the point.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle: origin (X, Y), extent (W, H). A Rect
// with W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H int16
}

// R is shorthand for constructing a Rect.
func R(x, y, w, h int16) Rect { return Rect{X: x, Y: y, W: w, H: h} }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the number of points in r.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return int(r.W) * int(r.H)
}

// Canon returns r normalized so the extent is non-negative, flipping the
// origin if needed — useful when a sweep drags up-left.
func (r Rect) Canon() Rect {
	if r.W < 0 {
		r.X += r.W
		r.W = -r.W
	}
	if r.H < 0 {
		r.Y += r.H
		r.H = -r.H
	}
	return r
}

// Min returns the top-left corner.
func (r Rect) Min() Point { return Point{X: r.X, Y: r.Y} }

// Max returns the exclusive bottom-right corner.
func (r Rect) Max() Point { return Point{X: r.X + r.W, Y: r.Y + r.H} }

// Translate shifts r by (dx, dy).
func (r Rect) Translate(dx, dy int16) Rect {
	r.X += dx
	r.Y += dy
	return r
}

// Intersect returns the common area of r and s (empty if disjoint).
func (r Rect) Intersect(s Rect) Rect {
	x1 := max16(r.X, s.X)
	y1 := max16(r.Y, s.Y)
	x2 := min16(r.X+r.W, s.X+s.W)
	y2 := min16(r.Y+r.H, s.Y+s.H)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Overlaps reports whether r and s share any point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X >= r.X && s.Y >= r.Y && s.X+s.W <= r.X+r.W && s.Y+s.H <= r.Y+r.H
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x1 := min16(r.X, s.X)
	y1 := min16(r.Y, s.Y)
	x2 := max16(r.X+r.W, s.X+s.W)
	y2 := max16(r.Y+r.H, s.Y+s.H)
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Inset shrinks r by n on every side.
func (r Rect) Inset(n int16) Rect {
	r.X += n
	r.Y += n
	r.W -= 2 * n
	r.H -= 2 * n
	if r.Empty() {
		return Rect{}
	}
	return r
}

// String renders the rectangle.
func (r Rect) String() string { return fmt.Sprintf("[%d,%d %dx%d]", r.X, r.Y, r.W, r.H) }

// Subtract returns r minus s as up to four disjoint rectangles.
func (r Rect) Subtract(s Rect) []Rect {
	is := r.Intersect(s)
	if is.Empty() {
		if r.Empty() {
			return nil
		}
		return []Rect{r}
	}
	if is == r {
		return nil
	}
	var out []Rect
	// Top band.
	if is.Y > r.Y {
		out = append(out, Rect{X: r.X, Y: r.Y, W: r.W, H: is.Y - r.Y})
	}
	// Bottom band.
	if is.Y+is.H < r.Y+r.H {
		out = append(out, Rect{X: r.X, Y: is.Y + is.H, W: r.W, H: r.Y + r.H - (is.Y + is.H)})
	}
	// Left band (middle rows only).
	if is.X > r.X {
		out = append(out, Rect{X: r.X, Y: is.Y, W: is.X - r.X, H: is.H})
	}
	// Right band (middle rows only).
	if is.X+is.W < r.X+r.W {
		out = append(out, Rect{X: is.X + is.W, Y: is.Y, W: r.X + r.W - (is.X + is.W), H: is.H})
	}
	return out
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

// Region is a set of points represented as disjoint rectangles — the
// damage/clipping machinery every window system needs.
type Region struct {
	rects []Rect
}

// NewRegion returns a region covering the given rectangles.
func NewRegion(rects ...Rect) Region {
	var g Region
	for _, r := range rects {
		g.Add(r)
	}
	return g
}

// Rects returns the disjoint rectangles of the region. The slice is a
// copy.
func (g *Region) Rects() []Rect { return append([]Rect(nil), g.rects...) }

// Empty reports whether the region has no points.
func (g *Region) Empty() bool { return len(g.rects) == 0 }

// Area returns the number of points covered.
func (g *Region) Area() int {
	n := 0
	for _, r := range g.rects {
		n += r.Area()
	}
	return n
}

// Contains reports whether the region covers p.
func (g *Region) Contains(p Point) bool {
	for _, r := range g.rects {
		if p.In(r) {
			return true
		}
	}
	return false
}

// Add unions r into the region, keeping the representation disjoint.
func (g *Region) Add(r Rect) {
	if r.Empty() {
		return
	}
	pending := []Rect{r}
	for _, have := range g.rects {
		var next []Rect
		for _, p := range pending {
			next = append(next, p.Subtract(have)...)
		}
		pending = next
		if len(pending) == 0 {
			return
		}
	}
	g.rects = append(g.rects, pending...)
}

// Remove subtracts r from the region.
func (g *Region) Remove(r Rect) {
	if r.Empty() || len(g.rects) == 0 {
		return
	}
	var out []Rect
	for _, have := range g.rects {
		out = append(out, have.Subtract(r)...)
	}
	g.rects = out
}

// IntersectRect clips the region to r.
func (g *Region) IntersectRect(r Rect) {
	var out []Rect
	for _, have := range g.rects {
		if is := have.Intersect(r); !is.Empty() {
			out = append(out, is)
		}
	}
	g.rects = out
}

// Clear empties the region.
func (g *Region) Clear() { g.rects = nil }

// Bounds returns the smallest rectangle covering the region.
func (g *Region) Bounds() Rect {
	var b Rect
	for _, r := range g.rects {
		b = b.Union(r)
	}
	return b
}
