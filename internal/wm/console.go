package wm

import (
	"strings"
	"sync"
)

// Console is a scrolling text pane: lines are appended at the bottom and
// scroll up when the pane fills — the terminal-emulator primitive of a
// window library, and a convenient remote logging target (clients Async
// lines into it).
type Console struct {
	mu    sync.Mutex
	win   *Window
	lines []string
	ink   int64
	// lineH is the pixel pitch between lines.
	lineH int16
}

// NewConsole returns an unattached console.
func NewConsole() *Console {
	return &Console{ink: 255, lineH: GlyphHeight + 2}
}

// Attach binds the console to a window and clears it.
func (c *Console) Attach(w *Window) {
	c.mu.Lock()
	c.win = w
	c.lines = nil
	c.mu.Unlock()
	c.repaint()
}

// Rows reports how many lines fit in the attached window.
func (c *Console) Rows() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(c.rowsLocked())
}

func (c *Console) rowsLocked() int {
	if c.win == nil {
		return 0
	}
	return int(c.win.Bounds().H / c.lineH)
}

// Println appends a line (split on newlines), scrolling as needed.
func (c *Console) Println(text string) {
	c.mu.Lock()
	for _, line := range strings.Split(text, "\n") {
		c.lines = append(c.lines, line)
	}
	if rows := c.rowsLocked(); rows > 0 && len(c.lines) > rows {
		c.lines = c.lines[len(c.lines)-rows:]
	}
	c.mu.Unlock()
	c.repaint()
}

// Clear empties the pane.
func (c *Console) Clear() {
	c.mu.Lock()
	c.lines = nil
	c.mu.Unlock()
	c.repaint()
}

// LineCount reports the retained lines.
func (c *Console) LineCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.lines))
}

// Line returns the i-th retained line (empty when out of range).
func (c *Console) Line(i int64) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= int64(len(c.lines)) {
		return ""
	}
	return c.lines[i]
}

// SetInk changes the text color.
func (c *Console) SetInk(color int64) {
	c.mu.Lock()
	c.ink = color
	c.mu.Unlock()
	c.repaint()
}

func (c *Console) repaint() {
	c.mu.Lock()
	win := c.win
	if win == nil {
		c.mu.Unlock()
		return
	}
	lines := append([]string(nil), c.lines...)
	ink := c.ink
	lineH := c.lineH
	c.mu.Unlock()

	win.Fill(win.Background())
	dx, dy := win.screenOffset()
	for i, line := range lines {
		win.scr.DrawText(dx+2, dy+2+int16(i)*lineH, line, ink)
	}
}
