package wm_test

// End-to-end reproduction of the paper's running examples over real CLAM
// sessions: Figure 4.1's registration topology and the §2.1 sweep. These
// tests drive the whole stack — wm classes dynamically loaded into a
// server, clients registering distributed upcalls, input events flowing
// upward across the address-space boundary.

import (
	"path/filepath"
	"testing"
	"time"

	"clam/internal/core"
	"clam/internal/dynload"
	"clam/internal/wm"
)

// bootWMServer builds the §4.2 topology: a server with the wm library,
// screen instance S and base window BaseW created at startup and
// published by name.
func bootWMServer(t testing.TB) (*core.Server, *wm.Screen, *wm.Window, string) {
	t.Helper()
	lib := dynload.NewLibrary()
	wm.MustRegister(lib, wm.Config{Width: 200, Height: 150})
	srv := core.NewServer(lib,
		core.WithServerLog(func(format string, args ...any) { t.Logf(format, args...) }))

	sobj, _, err := srv.CreateInstance("screen", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	scr := sobj.(*wm.Screen)
	srv.SetNamed("screen", scr)

	wobj, _, err := srv.CreateInstance("window", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := wobj.(*wm.Window)
	srv.SetNamed("basewindow", base)

	path := filepath.Join(t.TempDir(), "wm.sock")
	if _, err := srv.Listen("unix", path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, scr, base, path
}

// Figure 4.1: U1, a client-resident layer, creates a window W1 and
// registers user1::mouse to receive mouse events; a button press inside
// W1 reaches U1 through a distributed upcall.
func TestFigure41RegistrationAndUpcall(t *testing.T) {
	_, scr, _, path := bootWMServer(t)

	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	// U1 creates a window W1...
	var w1 *core.Remote
	if err := baseRem.CallInto("Create", []any{&w1}, wm.R(50, 50, 60, 40), int64(3)); err != nil {
		t.Fatal(err)
	}
	// ...and registers its user1::mouse procedure to receive mouse events.
	events := make(chan wm.MouseEvent, 8)
	if err := w1.Call("PostMouse", func(ev wm.MouseEvent) { events <- ev }); err != nil {
		t.Fatal(err)
	}

	// A mouse button is pressed inside W1: screen::mouse sees it, BaseW
	// routes it, and the registration fires a distributed upcall to U1.
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseDown, X: 55, Y: 60, Buttons: wm.ButtonLeft})
	select {
	case ev := <-events:
		// Coordinates arrive translated into W1's space.
		if ev.X != 5 || ev.Y != 10 || ev.Kind != wm.MouseDown {
			t.Errorf("client saw %v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("distributed upcall never arrived")
	}

	// A press outside W1 must not reach U1.
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseDown, X: 5, Y: 5})
	select {
	case ev := <-events:
		t.Errorf("event outside W1 leaked to the client: %v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

// §2.1: the sweep module is dynamically loaded into the server; the
// per-motion events stay server-side and only the final "window created"
// event crosses to the client, whose handler then creates the window with
// a reentrant call.
func TestSweepExampleEndToEnd(t *testing.T) {
	_, scr, base, path := bootWMServer(t)

	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	// Load the sweeping code into the server (version 1: opaque band).
	sweepRem, err := c.NewExact("sweep", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweepRem.Call("Attach", baseRem); err != nil {
		t.Fatal(err)
	}
	// Client decides the details of window creation: grid alignment on.
	if err := sweepRem.Call("SetGrid", int64(10)); err != nil {
		t.Fatal(err)
	}

	created := make(chan wm.Rect, 1)
	winMade := make(chan error, 1)
	if err := sweepRem.Call("OnCreated", func(r wm.Rect) {
		// The single "window created" event: create the window via a
		// reentrant RPC while the server-side upcall is still active.
		var w *core.Remote
		err := baseRem.CallInto("Create", []any{&w}, r, int64(9))
		winMade <- err
		created <- r
	}); err != nil {
		t.Fatal(err)
	}

	// Drive the sweep from the device layer: down, many motions, up.
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseDown, X: 20, Y: 20, Buttons: wm.ButtonLeft})
	for x := int16(21); x <= 80; x++ {
		scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseMove, X: x, Y: x / 2})
	}
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseUp, X: 80, Y: 40})

	select {
	case r := <-created:
		if r != wm.R(20, 20, 60, 20) {
			t.Errorf("created rect %v, want [20,20 60x20]", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("window-created upcall never arrived")
	}
	if err := <-winMade; err != nil {
		t.Fatalf("reentrant Create failed: %v", err)
	}

	// The motion events were absorbed inside the server's sweeping layer:
	// 60 moves handled, only one upcall crossed.
	var moves int64
	if err := sweepRem.CallInto("MoveCount", []any{&moves}); err != nil {
		t.Fatal(err)
	}
	if moves != 60 {
		t.Errorf("server-side layer handled %d moves, want 60", moves)
	}
	if base.ChildCount() != 1 {
		t.Errorf("base has %d children", base.ChildCount())
	}
	// The created window is painted.
	if scr.CountColor(9) != 60*20 {
		t.Errorf("window pixels = %d", scr.CountColor(9))
	}
}

// Two clients load different versions of the sweeping class side by side
// (§2.1: "Different clients could have different versions").
func TestCoexistingSweepVersions(t *testing.T) {
	_, _, _, path := bootWMServer(t)

	c1, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	s1, err := c1.NewExact("sweep", 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.NewExact("sweep", 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version() != 1 || s2.Version() != 2 {
		t.Errorf("versions: %d, %d", s1.Version(), s2.Version())
	}
	if s1.ClassID() == s2.ClassID() {
		t.Error("both versions share a class id")
	}
}

// The button widget clicked from the device layer upcalls into the client.
func TestRemoteButtonClick(t *testing.T) {
	_, scr, _, path := bootWMServer(t)
	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	btn, err := c.New("button", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := btn.Call("Attach", baseRem, wm.R(10, 10, 20, 10)); err != nil {
		t.Fatal(err)
	}
	clicks := make(chan int64, 4)
	if err := btn.Call("OnClick", func(n int64) { clicks <- n }); err != nil {
		t.Fatal(err)
	}
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseDown, X: 15, Y: 15})
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseUp, X: 15, Y: 15})
	select {
	case n := <-clicks:
		if n != 1 {
			t.Errorf("click count %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("click upcall never arrived")
	}
}

// Remote drawing through layers: fill a window from the client, verify on
// the server's framebuffer, and read the pixel back remotely.
func TestRemoteDrawing(t *testing.T) {
	_, scr, _, path := bootWMServer(t)
	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	scrRem, err := c.NamedObject("screen")
	if err != nil {
		t.Fatal(err)
	}
	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	var w *core.Remote
	if err := baseRem.CallInto("Create", []any{&w}, wm.R(0, 0, 10, 10), int64(5)); err != nil {
		t.Fatal(err)
	}
	// Asynchronous drawing calls, then a synchronous pixel read that
	// flushes the batch.
	if err := w.Async("FillRect", wm.R(2, 2, 3, 3), int64(8)); err != nil {
		t.Fatal(err)
	}
	var pix int64
	if err := scrRem.CallInto("PixelAt", []any{&pix}, int64(3), int64(3)); err != nil {
		t.Fatal(err)
	}
	if pix != 8 {
		t.Errorf("remote pixel = %d, want 8", pix)
	}
	if scr.PixelAt(3, 3) != 8 {
		t.Error("server framebuffer disagrees")
	}
}
